(** Identity of a ReLU unit within a network architecture.

    A ReLU is addressed by the index of the layer whose activation it
    belongs to and the neuron index within that layer.  ReLU identities
    are a function of the architecture only, which is what lets a
    specification tree built for network [N] be replayed on any updated
    network with the same architecture (paper §2.2). *)

type t = { layer : int; index : int }

val make : layer:int -> index:int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
