(** Post-training quantization.

    Simulates TFLite-style symmetric per-tensor quantization: every
    weight tensor is rounded to a signed [bits]-wide integer grid scaled
    by its own maximum magnitude, then dequantized back to float.  This
    is the network-update class used throughout the paper's evaluation
    (int16 and int8 columns of Tables 2–4, Figures 6–9). *)

type scheme = Int8 | Int16 | Bits of int

val bits_of_scheme : scheme -> int

val scheme_name : scheme -> string

val quantize_value : scale:float -> float -> float
(** Round a single value to the grid of step [scale] (dequantized). *)

val tensor_scale : bits:int -> float array -> float
(** Symmetric per-tensor scale: [max_abs / (2^(bits-1) - 1)]; zero for an
    all-zero tensor. *)

val network : scheme -> Network.t -> Network.t
(** Quantize-dequantize every layer's weights and biases, per tensor. *)
