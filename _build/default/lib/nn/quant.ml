module Mat = Ivan_tensor.Mat
module Vec = Ivan_tensor.Vec

type scheme = Int8 | Int16 | Bits of int

let bits_of_scheme = function Int8 -> 8 | Int16 -> 16 | Bits b -> b

let scheme_name = function Int8 -> "int8" | Int16 -> "int16" | Bits b -> Printf.sprintf "int%d" b

let quantize_value ~scale v = if scale = 0.0 then 0.0 else Float.round (v /. scale) *. scale

let tensor_scale ~bits values =
  if bits < 2 then invalid_arg "Quant.tensor_scale: need at least 2 bits";
  let max_abs = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 values in
  let levels = float_of_int ((1 lsl (bits - 1)) - 1) in
  if max_abs = 0.0 then 0.0 else max_abs /. levels

let quantize_array ~bits a =
  let scale = tensor_scale ~bits a in
  Array.map (quantize_value ~scale) a

let quantize_layer ~bits layer =
  let affine =
    match Layer.affine layer with
    | Layer.Dense { weights; bias } ->
        let flat = Array.concat (Array.to_list (Mat.to_arrays weights)) in
        let scale = tensor_scale ~bits flat in
        let weights = Mat.map (quantize_value ~scale) weights in
        let bias = quantize_array ~bits bias in
        Layer.Dense { weights; bias }
    | Layer.Conv2d { spec; kernel; bias } ->
        let kernel = quantize_array ~bits kernel in
        let bias = quantize_array ~bits bias in
        Layer.Conv2d { spec; kernel; bias }
  in
  Layer.make affine (Layer.activation layer)

let network scheme n =
  let bits = bits_of_scheme scheme in
  Network.make (List.map (quantize_layer ~bits) (Array.to_list (Network.layers n)))
