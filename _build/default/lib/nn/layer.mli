(** Network layers.

    A layer applies an affine function (dense matrix or 2-D convolution)
    followed by an activation, matching the paper's
    [N_i(x) = act(A_i x + B_i)] shape.  Convolutions operate on inputs
    flattened in channel-major (C, H, W) order and can be lowered to an
    equivalent dense affine map for the analyzers. *)

type activation =
  | Relu
  | Identity
  | Leaky_relu of float
      (** [Leaky_relu slope] with [0 < slope < 1]: [max(x, slope*x)].
          Piecewise linear, so activation splitting still yields
          complete verification (paper §3.2). *)
  | Sigmoid
  | Tanh
      (** Smooth activations: verification stays sound but not complete
          (no activation splitting); input splitting still refines —
          paper §3.2 cases (2) and (3). *)

(** How an activation behaves for analysis purposes. *)
type activation_kind =
  | Linear_activation  (** the identity: analysis passes through *)
  | Piecewise of float
      (** two linear pieces meeting at 0 with the given negative-side
          slope (0 for ReLU): exactly splittable *)
  | Smooth of { f : float -> float; df : float -> float }
      (** monotone S-shaped function with its derivative (max slope at
          0, decreasing away from it) *)

val classify : activation -> activation_kind

type conv_spec = {
  in_channels : int;
  in_height : int;
  in_width : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
}

type affine =
  | Dense of { weights : Ivan_tensor.Mat.t; bias : Ivan_tensor.Vec.t }
      (** [weights] is [out_dim × in_dim]. *)
  | Conv2d of {
      spec : conv_spec;
      kernel : float array;
          (** flattened [out_c × in_c × kh × kw], row-major in that order *)
      bias : Ivan_tensor.Vec.t;  (** per output channel, length [out_c] *)
    }

type t

val make : affine -> activation -> t
(** @raise Invalid_argument on inconsistent shapes (e.g. dense bias not
    matching the weight rows, or conv bias not matching [out_channels]). *)

val affine : t -> affine

val activation : t -> activation

val negative_slope : activation -> float option
(** The slope applied to negative pre-activations: [Some 0.] for ReLU,
    [Some a] for leaky ReLU, [None] for the identity.  Lets split-aware
    analyses treat all piecewise-linear activations uniformly. *)

val apply_activation : activation -> Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t

val input_dim : t -> int

val output_dim : t -> int

val conv_out_height : conv_spec -> int

val conv_out_width : conv_spec -> int

val pre_activation : t -> Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t
(** Affine part only: [A x + b]. *)

val forward : t -> Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t
(** Full layer: activation applied to the affine output. *)

val dense_affine : t -> Ivan_tensor.Mat.t * Ivan_tensor.Vec.t
(** The layer's affine map as an explicit (weights, bias) pair.
    Convolutions are lowered on first use and the result is cached. *)

val map_weights : (float -> float) -> t -> t
(** Apply [f] to every weight and bias entry, preserving structure. *)

val num_params : t -> int
