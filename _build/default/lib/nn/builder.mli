(** Random network construction.

    He-style initialization used both as the starting point for training
    and for architecture-only tests. *)

val dense_net : rng:Ivan_tensor.Rng.t -> dims:int list -> Network.t
(** [dense_net ~rng ~dims:[d0; d1; ...; dk]] builds a fully-connected
    ReLU network with layer sizes [d0 -> d1 -> ... -> dk]; every layer
    has a ReLU activation except the last (identity).
    @raise Invalid_argument if fewer than two dims are given. *)

val dense_net_act :
  hidden_activation:Layer.activation -> rng:Ivan_tensor.Rng.t -> dims:int list -> Network.t
(** {!dense_net} with an explicit hidden activation (e.g.
    [Layer.Leaky_relu 0.1]). *)

type conv_stage = { out_channels : int; kernel : int; stride : int; padding : int }

val conv_net :
  rng:Ivan_tensor.Rng.t ->
  in_channels:int ->
  in_height:int ->
  in_width:int ->
  convs:conv_stage list ->
  dense:int list ->
  Network.t
(** Convolutional stages (each ReLU-activated) followed by dense layers;
    the last dense layer has identity activation.
    @raise Invalid_argument if [dense] is empty. *)
