(** Input gradients.

    Backpropagation of a linear output functional to the input — the
    primitive behind gradient-guided falsification (PGD) and
    gradient-based branching scores in the literature.  The gradient is
    exact wherever the network is differentiable; on ReLU kinks the
    subgradient of the active piece at the evaluation point is used. *)

val objective_gradient :
  Network.t -> c:Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t
(** [objective_gradient net ~c x] is [d(c . net(x)) / dx].
    @raise Invalid_argument on dimension mismatches. *)
