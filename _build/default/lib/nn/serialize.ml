module Mat = Ivan_tensor.Mat

let activation_name = function
  | Layer.Relu -> "relu"
  | Layer.Identity -> "identity"
  | Layer.Leaky_relu slope -> Printf.sprintf "leaky:%h" slope
  | Layer.Sigmoid -> "sigmoid"
  | Layer.Tanh -> "tanh"

let activation_of_name s =
  match s with
  | "relu" -> Layer.Relu
  | "identity" -> Layer.Identity
  | "sigmoid" -> Layer.Sigmoid
  | "tanh" -> Layer.Tanh
  | _ -> (
      match String.split_on_char ':' s with
      | [ "leaky"; slope ] -> Layer.Leaky_relu (float_of_string slope)
      | _ -> failwith (Printf.sprintf "Serialize: unknown activation %S" s))

let floats_line prefix values =
  let buf = Buffer.create (16 * Array.length values) in
  Buffer.add_string buf prefix;
  Array.iter
    (fun v ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%h" v))
    values;
  Buffer.contents buf

let parse_floats_line expected_prefix line =
  match String.split_on_char ' ' (String.trim line) with
  | prefix :: rest when prefix = expected_prefix ->
      Array.of_list (List.map (fun s -> float_of_string s) rest)
  | _ -> failwith (Printf.sprintf "Serialize: expected %S line, got %S" expected_prefix line)

let to_string n =
  let buf = Buffer.create 4096 in
  let layers = Network.layers n in
  Buffer.add_string buf (Printf.sprintf "network %d\n" (Array.length layers));
  Array.iter
    (fun layer ->
      (match Layer.affine layer with
      | Layer.Dense { weights; bias } ->
          Buffer.add_string buf
            (Printf.sprintf "layer dense %d %d %s\n" (Mat.rows weights) (Mat.cols weights)
               (activation_name (Layer.activation layer)));
          Buffer.add_string buf (floats_line "bias:" bias);
          Buffer.add_char buf '\n';
          for i = 0 to Mat.rows weights - 1 do
            Buffer.add_string buf (floats_line "row:" (Mat.row weights i));
            Buffer.add_char buf '\n'
          done
      | Layer.Conv2d { spec; kernel; bias } ->
          Buffer.add_string buf
            (Printf.sprintf "layer conv %d %d %d %d %d %d %d %d %s\n" spec.in_channels
               spec.in_height spec.in_width spec.out_channels spec.kernel_h spec.kernel_w
               spec.stride spec.padding
               (activation_name (Layer.activation layer)));
          Buffer.add_string buf (floats_line "bias:" bias);
          Buffer.add_char buf '\n';
          Buffer.add_string buf (floats_line "kernel:" kernel);
          Buffer.add_char buf '\n'))
    layers;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  let lines = ref lines in
  let next () =
    match !lines with
    | [] -> failwith "Serialize: unexpected end of input"
    | l :: rest ->
        lines := rest;
        String.trim l
  in
  let header = next () in
  let count =
    match String.split_on_char ' ' header with
    | [ "network"; c ] -> int_of_string c
    | _ -> failwith (Printf.sprintf "Serialize: bad header %S" header)
  in
  let parse_layer () =
    let decl = next () in
    match String.split_on_char ' ' decl with
    | [ "layer"; "dense"; rows; cols; act ] ->
        let rows = int_of_string rows and cols = int_of_string cols in
        let bias = parse_floats_line "bias:" (next ()) in
        let weight_rows = Array.init rows (fun _ -> parse_floats_line "row:" (next ())) in
        Array.iter
          (fun r ->
            if Array.length r <> cols then failwith "Serialize: dense row length mismatch")
          weight_rows;
        Layer.make
          (Layer.Dense { weights = Mat.of_arrays weight_rows; bias })
          (activation_of_name act)
    | [ "layer"; "conv"; in_c; in_h; in_w; out_c; kh; kw; stride; pad; act ] ->
        let spec =
          {
            Layer.in_channels = int_of_string in_c;
            in_height = int_of_string in_h;
            in_width = int_of_string in_w;
            out_channels = int_of_string out_c;
            kernel_h = int_of_string kh;
            kernel_w = int_of_string kw;
            stride = int_of_string stride;
            padding = int_of_string pad;
          }
        in
        let bias = parse_floats_line "bias:" (next ()) in
        let kernel = parse_floats_line "kernel:" (next ()) in
        Layer.make (Layer.Conv2d { spec; kernel; bias }) (activation_of_name act)
    | _ -> failwith (Printf.sprintf "Serialize: bad layer declaration %S" decl)
  in
  Network.make (List.init count (fun _ -> parse_layer ()))

let to_file path n =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string n))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
