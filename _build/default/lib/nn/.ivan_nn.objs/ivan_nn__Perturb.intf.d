lib/nn/perturb.mli: Ivan_tensor Network
