lib/nn/serialize.mli: Network
