lib/nn/relu_id.mli: Format Map Set
