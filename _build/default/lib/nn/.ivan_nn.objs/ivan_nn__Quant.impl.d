lib/nn/quant.ml: Array Float Ivan_tensor Layer List Network Printf
