lib/nn/builder.mli: Ivan_tensor Layer Network
