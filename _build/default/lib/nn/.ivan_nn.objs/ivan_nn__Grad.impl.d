lib/nn/grad.ml: Array Ivan_tensor Layer Network
