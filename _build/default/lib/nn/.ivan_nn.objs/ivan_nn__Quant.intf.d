lib/nn/quant.mli: Network
