lib/nn/product.ml: Array Ivan_tensor Layer List Network
