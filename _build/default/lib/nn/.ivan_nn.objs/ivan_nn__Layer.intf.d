lib/nn/layer.mli: Ivan_tensor
