lib/nn/network.ml: Array Format Ivan_tensor Layer Printf Relu_id
