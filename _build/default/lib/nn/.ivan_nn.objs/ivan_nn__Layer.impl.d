lib/nn/layer.ml: Array Float Ivan_tensor
