lib/nn/grad.mli: Ivan_tensor Network
