lib/nn/perturb.ml: Array Float Ivan_tensor Layer List Network
