lib/nn/relu_id.ml: Format Int Map Printf Set
