lib/nn/serialize.ml: Array Buffer Fun In_channel Ivan_tensor Layer List Network Printf String
