lib/nn/builder.ml: Array Ivan_tensor Layer List Network
