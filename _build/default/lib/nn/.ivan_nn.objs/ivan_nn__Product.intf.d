lib/nn/product.mli: Network
