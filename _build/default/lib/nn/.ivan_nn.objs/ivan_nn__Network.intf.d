lib/nn/network.mli: Format Ivan_tensor Layer Relu_id
