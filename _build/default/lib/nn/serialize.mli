(** Network (de)serialization.

    A line-oriented text format with hexadecimal float literals, so a
    save/load round trip is bit-exact.  Format:

    {v network <layer-count>
layer dense <rows> <cols> <relu|identity>
bias: <hex floats>
row: <hex floats>          (one line per weight row)
layer conv <in_c> <in_h> <in_w> <out_c> <kh> <kw> <stride> <pad> <relu|identity>
bias: <hex floats>
kernel: <hex floats> v} *)

val to_string : Network.t -> string

val of_string : string -> Network.t
(** @raise Failure on malformed input. *)

val to_file : string -> Network.t -> unit

val of_file : string -> Network.t
(** @raise Sys_error if the file cannot be read; [Failure] if malformed. *)
