module Mat = Ivan_tensor.Mat
module Vec = Ivan_tensor.Vec

let objective_gradient net ~c x =
  if Vec.dim c <> Network.output_dim net then
    invalid_arg "Grad.objective_gradient: objective dimension mismatch";
  let trace = Network.forward_trace net x in
  let count = Network.num_layers net in
  let delta = ref (Vec.copy c) in
  for li = count - 1 downto 0 do
    (* Through the activation: multiply by the active piece's slope. *)
    let masked =
      match Layer.classify (Layer.activation (Network.layers net).(li)) with
      | Layer.Linear_activation -> !delta
      | Layer.Piecewise slope ->
          Array.mapi
            (fun k d -> if trace.Network.pre.(li).(k) > 0.0 then d else slope *. d)
            !delta
      | Layer.Smooth { df; f = _ } ->
          Array.mapi (fun k d -> d *. df trace.Network.pre.(li).(k)) !delta
    in
    (* Through the affine map: transpose multiply. *)
    let w, _ = Network.layer_dense net li in
    delta := Mat.matvec_t w masked
  done;
  !delta
