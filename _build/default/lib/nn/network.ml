module Mat = Ivan_tensor.Mat
module Vec = Ivan_tensor.Vec

type t = { layers : Layer.t array }

type trace = { pre : Vec.t array; post : Vec.t array }

let make layer_list =
  let layers = Array.of_list layer_list in
  if Array.length layers = 0 then invalid_arg "Network.make: empty network";
  for i = 0 to Array.length layers - 2 do
    if Layer.output_dim layers.(i) <> Layer.input_dim layers.(i + 1) then
      invalid_arg
        (Printf.sprintf "Network.make: layer %d outputs %d but layer %d expects %d" i
           (Layer.output_dim layers.(i)) (i + 1)
           (Layer.input_dim layers.(i + 1)))
  done;
  { layers }

let layers n = n.layers

let num_layers n = Array.length n.layers

let input_dim n = Layer.input_dim n.layers.(0)

let output_dim n = Layer.output_dim n.layers.(Array.length n.layers - 1)

let forward n x =
  if Vec.dim x <> input_dim n then invalid_arg "Network.forward: input dimension mismatch";
  Array.fold_left (fun acc layer -> Layer.forward layer acc) x n.layers

let forward_trace n x =
  if Vec.dim x <> input_dim n then invalid_arg "Network.forward_trace: input dimension mismatch";
  let count = Array.length n.layers in
  let pre = Array.make count [||] in
  let post = Array.make count [||] in
  let current = ref x in
  for i = 0 to count - 1 do
    let p = Layer.pre_activation n.layers.(i) !current in
    pre.(i) <- p;
    let q = Layer.apply_activation (Layer.activation n.layers.(i)) p in
    post.(i) <- q;
    current := q
  done;
  { pre; post }

let relu_ids n =
  let ids = ref [] in
  for layer = Array.length n.layers - 1 downto 0 do
    match Layer.negative_slope (Layer.activation n.layers.(layer)) with
    | Some _ ->
        for index = Layer.output_dim n.layers.(layer) - 1 downto 0 do
          ids := Relu_id.make ~layer ~index :: !ids
        done
    | None -> ()
  done;
  Array.of_list !ids

let num_relus n =
  Array.fold_left
    (fun acc l ->
      match Layer.negative_slope (Layer.activation l) with
      | Some _ -> acc + Layer.output_dim l
      | None -> acc)
    0 n.layers

let num_neurons n = Array.fold_left (fun acc l -> acc + Layer.output_dim l) 0 n.layers

let layer_dense n i = Layer.dense_affine n.layers.(i)

let precompute_dense n = Array.iter (fun l -> ignore (Layer.dense_affine l)) n.layers

let map_weights f n = { layers = Array.map (Layer.map_weights f) n.layers }

let same_architecture a b =
  Array.length a.layers = Array.length b.layers
  && Array.for_all2
       (fun la lb ->
         Layer.input_dim la = Layer.input_dim lb
         && Layer.output_dim la = Layer.output_dim lb
         && Layer.activation la = Layer.activation lb)
       a.layers b.layers

let last_dense n =
  let last = n.layers.(Array.length n.layers - 1) in
  match Layer.affine last with
  | Layer.Dense { weights; bias } -> (weights, bias)
  | Layer.Conv2d _ -> invalid_arg "Network.last_dense: final layer is a convolution"

let replace_last_dense n weights =
  let count = Array.length n.layers in
  let last = n.layers.(count - 1) in
  match Layer.affine last with
  | Layer.Conv2d _ -> invalid_arg "Network.replace_last_dense: final layer is a convolution"
  | Layer.Dense { weights = old; bias } ->
      if Mat.rows weights <> Mat.rows old || Mat.cols weights <> Mat.cols old then
        invalid_arg "Network.replace_last_dense: shape mismatch";
      let replaced = Layer.make (Layer.Dense { weights; bias }) (Layer.activation last) in
      { layers = Array.init count (fun i -> if i = count - 1 then replaced else n.layers.(i)) }

let pp_summary fmt n =
  Format.fprintf fmt "@[<v>network: %d layers, %d neurons, %d relus@," (num_layers n)
    (num_neurons n) (num_relus n);
  Array.iteri
    (fun i l ->
      let kind =
        match Layer.affine l with Layer.Dense _ -> "dense" | Layer.Conv2d _ -> "conv2d"
      in
      let act =
        match Layer.activation l with
        | Layer.Relu -> "relu"
        | Layer.Identity -> "id"
        | Layer.Leaky_relu slope -> Printf.sprintf "leaky(%g)" slope
        | Layer.Sigmoid -> "sigmoid"
        | Layer.Tanh -> "tanh"
      in
      Format.fprintf fmt "  layer %d: %s %d -> %d, %s@," i kind (Layer.input_dim l)
        (Layer.output_dim l) act)
    n.layers;
  Format.fprintf fmt "@]"
