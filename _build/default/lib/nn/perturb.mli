(** Network weight perturbations.

    The update classes the paper evaluates besides quantization:
    uniform random relative noise (the §6.5 stress test) and bounded
    last-layer perturbation (the §4.4 theory setting). *)

val random_relative : rng:Ivan_tensor.Rng.t -> fraction:float -> Network.t -> Network.t
(** Multiply every weight and bias by [1 + u] with [u] uniform in
    [\[-fraction, fraction\]].  [fraction = 0.02] is the paper's "2%"
    column. *)

val random_additive : rng:Ivan_tensor.Rng.t -> magnitude:float -> Network.t -> Network.t
(** Add independent uniform noise in [\[-magnitude, magnitude\]] to every
    weight and bias. *)

val last_layer : rng:Ivan_tensor.Rng.t -> delta:float -> Network.t -> Network.t
(** Add to the final dense layer's weight matrix a random perturbation
    matrix [E] scaled so that its Frobenius norm is exactly [delta]
    (Definition 11's [M(N, delta)] with a tight budget).
    @raise Invalid_argument if the final layer is a convolution. *)

val magnitude_prune : fraction:float -> Network.t -> Network.t
(** Weight pruning (the intro's third approximation class): zero out the
    smallest-magnitude [fraction] of each layer's weights (biases are
    kept).  @raise Invalid_argument unless [0 <= fraction <= 1]. *)
