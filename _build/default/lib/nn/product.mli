(** Product networks.

    [product a b] is a single network over the shared input computing
    the concatenation [a(x) ++ b(x)]: each layer is the block-diagonal
    combination of the two networks' layers (convolutions are lowered to
    their dense form).  Differential properties of the pair — "outputs
    differ by at most delta" — become ordinary linear properties of the
    product, so the whole complete-verification stack (including
    incremental verification) applies to differential verification, the
    §7 "complementary to ReluDiff" direction of the paper. *)

val product : Network.t -> Network.t -> Network.t
(** @raise Invalid_argument unless the networks have the same input
    dimension, the same number of layers, and matching activations per
    layer. *)

val output_split : Network.t -> Network.t -> int
(** Where the first network's outputs end in the product's output
    vector (= [Network.output_dim a]). *)
