module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng

let he_weight rng fan_in = Rng.gaussian rng *. sqrt (2.0 /. float_of_int fan_in)

let dense_layer rng ~in_dim ~out_dim ~activation =
  let weights = Mat.init out_dim in_dim (fun _ _ -> he_weight rng in_dim) in
  let bias = Array.init out_dim (fun _ -> 0.01 *. Rng.gaussian rng) in
  Layer.make (Layer.Dense { weights; bias }) activation

let dense_net_act ~hidden_activation ~rng ~dims =
  match dims with
  | [] | [ _ ] -> invalid_arg "Builder.dense_net: need at least input and output dims"
  | first :: rest ->
      let count = List.length rest in
      let layers =
        List.mapi
          (fun i out_dim ->
            let in_dim = if i = 0 then first else List.nth rest (i - 1) in
            let activation = if i = count - 1 then Layer.Identity else hidden_activation in
            dense_layer rng ~in_dim ~out_dim ~activation)
          rest
      in
      Network.make layers

let dense_net ~rng ~dims = dense_net_act ~hidden_activation:Layer.Relu ~rng ~dims

type conv_stage = { out_channels : int; kernel : int; stride : int; padding : int }

let conv_layer rng ~in_channels ~in_height ~in_width ~stage =
  let spec =
    {
      Layer.in_channels;
      in_height;
      in_width;
      out_channels = stage.out_channels;
      kernel_h = stage.kernel;
      kernel_w = stage.kernel;
      stride = stage.stride;
      padding = stage.padding;
    }
  in
  let fan_in = in_channels * stage.kernel * stage.kernel in
  let kernel =
    Array.init
      (stage.out_channels * in_channels * stage.kernel * stage.kernel)
      (fun _ -> he_weight rng fan_in)
  in
  let bias = Array.init stage.out_channels (fun _ -> 0.01 *. Rng.gaussian rng) in
  Layer.make (Layer.Conv2d { spec; kernel; bias }) Layer.Relu

let conv_net ~rng ~in_channels ~in_height ~in_width ~convs ~dense =
  if dense = [] then invalid_arg "Builder.conv_net: need at least one dense layer";
  let rec build_convs acc ~c ~h ~w = function
    | [] -> (List.rev acc, c * h * w)
    | stage :: rest ->
        let layer = conv_layer rng ~in_channels:c ~in_height:h ~in_width:w ~stage in
        let spec =
          match Layer.affine layer with
          | Layer.Conv2d { spec; _ } -> spec
          | Layer.Dense _ -> assert false
        in
        build_convs (layer :: acc) ~c:stage.out_channels ~h:(Layer.conv_out_height spec)
          ~w:(Layer.conv_out_width spec) rest
  in
  let conv_layers, flat_dim = build_convs [] ~c:in_channels ~h:in_height ~w:in_width convs in
  let count = List.length dense in
  let dense_layers =
    List.mapi
      (fun i out_dim ->
        let in_dim = if i = 0 then flat_dim else List.nth dense (i - 1) in
        let activation = if i = count - 1 then Layer.Identity else Layer.Relu in
        dense_layer rng ~in_dim ~out_dim ~activation)
      dense
  in
  Network.make (conv_layers @ dense_layers)
