module Mat = Ivan_tensor.Mat
module Vec = Ivan_tensor.Vec

type activation = Relu | Identity | Leaky_relu of float | Sigmoid | Tanh

type activation_kind =
  | Linear_activation
  | Piecewise of float
  | Smooth of { f : float -> float; df : float -> float }

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let sigmoid' x =
  let s = sigmoid x in
  s *. (1.0 -. s)

let tanh' x =
  let t = Float.tanh x in
  1.0 -. (t *. t)

let classify = function
  | Identity -> Linear_activation
  | Relu -> Piecewise 0.0
  | Leaky_relu slope -> Piecewise slope
  | Sigmoid -> Smooth { f = sigmoid; df = sigmoid' }
  | Tanh -> Smooth { f = Float.tanh; df = tanh' }

type conv_spec = {
  in_channels : int;
  in_height : int;
  in_width : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
}

type affine =
  | Dense of { weights : Mat.t; bias : Vec.t }
  | Conv2d of { spec : conv_spec; kernel : float array; bias : Vec.t }

type t = { affine : affine; activation : activation; mutable dense_cache : (Mat.t * Vec.t) option }

let conv_out_height spec = ((spec.in_height + (2 * spec.padding) - spec.kernel_h) / spec.stride) + 1

let conv_out_width spec = ((spec.in_width + (2 * spec.padding) - spec.kernel_w) / spec.stride) + 1

let conv_in_dim spec = spec.in_channels * spec.in_height * spec.in_width

let conv_out_dim spec = spec.out_channels * conv_out_height spec * conv_out_width spec

let validate = function
  | Dense { weights; bias } ->
      if Mat.rows weights <> Vec.dim bias then
        invalid_arg "Layer.make: dense bias length must equal weight rows"
  | Conv2d { spec; kernel; bias } ->
      if spec.stride <= 0 then invalid_arg "Layer.make: conv stride must be positive";
      if spec.padding < 0 then invalid_arg "Layer.make: conv padding must be non-negative";
      if conv_out_height spec <= 0 || conv_out_width spec <= 0 then
        invalid_arg "Layer.make: conv output collapses to zero size";
      let expected = spec.out_channels * spec.in_channels * spec.kernel_h * spec.kernel_w in
      if Array.length kernel <> expected then
        invalid_arg "Layer.make: conv kernel has wrong number of entries";
      if Vec.dim bias <> spec.out_channels then
        invalid_arg "Layer.make: conv bias length must equal out_channels"

let validate_activation = function
  | Relu | Identity | Sigmoid | Tanh -> ()
  | Leaky_relu slope ->
      if slope <= 0.0 || slope >= 1.0 then
        invalid_arg "Layer.make: leaky relu slope must be in (0, 1)"

let make affine activation =
  validate affine;
  validate_activation activation;
  { affine; activation; dense_cache = None }

let affine l = l.affine

let activation l = l.activation

let input_dim l =
  match l.affine with Dense { weights; _ } -> Mat.cols weights | Conv2d { spec; _ } -> conv_in_dim spec

let output_dim l =
  match l.affine with Dense { weights; _ } -> Mat.rows weights | Conv2d { spec; _ } -> conv_out_dim spec

(* Index of kernel entry (oc, ic, kh, kw) in the flat kernel array. *)
let kernel_index spec oc ic kh kw =
  (((((oc * spec.in_channels) + ic) * spec.kernel_h) + kh) * spec.kernel_w) + kw

(* Index of pixel (c, y, x) in a flattened (C, H, W) input. *)
let pixel_index ~channels:_ ~height ~width c y x = (((c * height) + y) * width) + x

let conv_forward spec kernel bias x =
  let oh = conv_out_height spec and ow = conv_out_width spec in
  let out = Array.make (spec.out_channels * oh * ow) 0.0 in
  for oc = 0 to spec.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref (Vec.get bias oc) in
        for ic = 0 to spec.in_channels - 1 do
          for kh = 0 to spec.kernel_h - 1 do
            for kw = 0 to spec.kernel_w - 1 do
              let iy = (oy * spec.stride) + kh - spec.padding in
              let ix = (ox * spec.stride) + kw - spec.padding in
              if iy >= 0 && iy < spec.in_height && ix >= 0 && ix < spec.in_width then begin
                let src =
                  pixel_index ~channels:spec.in_channels ~height:spec.in_height
                    ~width:spec.in_width ic iy ix
                in
                acc := !acc +. (kernel.(kernel_index spec oc ic kh kw) *. x.(src))
              end
            done
          done
        done;
        out.(pixel_index ~channels:spec.out_channels ~height:oh ~width:ow oc oy ox) <- !acc
      done
    done
  done;
  out

let pre_activation l x =
  match l.affine with
  | Dense { weights; bias } -> Vec.add (Mat.matvec weights x) bias
  | Conv2d { spec; kernel; bias } ->
      if Array.length x <> conv_in_dim spec then
        invalid_arg "Layer.pre_activation: input dimension mismatch";
      conv_forward spec kernel bias x

let negative_slope = function
  | Relu -> Some 0.0
  | Identity | Sigmoid | Tanh -> None
  | Leaky_relu slope -> Some slope

let apply_activation act v =
  match act with
  | Relu -> Vec.relu v
  | Identity -> v
  | Leaky_relu slope -> Vec.map (fun x -> if x >= 0.0 then x else slope *. x) v
  | Sigmoid -> Vec.map sigmoid v
  | Tanh -> Vec.map Float.tanh v

let forward l x = apply_activation l.activation (pre_activation l x)

(* Lower a convolution to an explicit dense matrix by probing with unit
   vectors of the weight structure (direct index computation, no probing
   passes needed). *)
let conv_to_dense spec kernel bias =
  let oh = conv_out_height spec and ow = conv_out_width spec in
  let out_dim = spec.out_channels * oh * ow in
  let in_dim = conv_in_dim spec in
  let w = Mat.zeros out_dim in_dim in
  let full_bias = Array.make out_dim 0.0 in
  for oc = 0 to spec.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let row = pixel_index ~channels:spec.out_channels ~height:oh ~width:ow oc oy ox in
        full_bias.(row) <- Vec.get bias oc;
        for ic = 0 to spec.in_channels - 1 do
          for kh = 0 to spec.kernel_h - 1 do
            for kw = 0 to spec.kernel_w - 1 do
              let iy = (oy * spec.stride) + kh - spec.padding in
              let ix = (ox * spec.stride) + kw - spec.padding in
              if iy >= 0 && iy < spec.in_height && ix >= 0 && ix < spec.in_width then begin
                let col =
                  pixel_index ~channels:spec.in_channels ~height:spec.in_height
                    ~width:spec.in_width ic iy ix
                in
                Mat.set w row col (Mat.get w row col +. kernel.(kernel_index spec oc ic kh kw))
              end
            done
          done
        done
      done
    done
  done;
  (w, full_bias)

let dense_affine l =
  match l.dense_cache with
  | Some cached -> cached
  | None ->
      let result =
        match l.affine with
        | Dense { weights; bias } -> (weights, bias)
        | Conv2d { spec; kernel; bias } -> conv_to_dense spec kernel bias
      in
      l.dense_cache <- Some result;
      result

let map_weights f l =
  let affine =
    match l.affine with
    | Dense { weights; bias } -> Dense { weights = Mat.map f weights; bias = Vec.map f bias }
    | Conv2d { spec; kernel; bias } ->
        Conv2d { spec; kernel = Array.map f kernel; bias = Vec.map f bias }
  in
  make affine l.activation

let num_params l =
  match l.affine with
  | Dense { weights; bias } -> (Mat.rows weights * Mat.cols weights) + Vec.dim bias
  | Conv2d { spec; kernel; bias } ->
      ignore spec;
      Array.length kernel + Vec.dim bias
