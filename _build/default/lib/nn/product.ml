module Mat = Ivan_tensor.Mat
module Vec = Ivan_tensor.Vec

(* First layer: both blocks read the shared input; deeper layers are
   block-diagonal. *)
let combine_layers ~first la lb =
  let wa, ba = Layer.dense_affine la in
  let wb, bb = Layer.dense_affine lb in
  let rows_a = Mat.rows wa and rows_b = Mat.rows wb in
  let cols_a = Mat.cols wa and cols_b = Mat.cols wb in
  let weights =
    if first then
      Mat.init (rows_a + rows_b) cols_a (fun i j ->
          if i < rows_a then Mat.get wa i j else Mat.get wb (i - rows_a) j)
    else
      Mat.init (rows_a + rows_b) (cols_a + cols_b) (fun i j ->
          if i < rows_a then if j < cols_a then Mat.get wa i j else 0.0
          else if j >= cols_a then Mat.get wb (i - rows_a) (j - cols_a)
          else 0.0)
  in
  let bias = Array.append ba bb in
  Layer.make (Layer.Dense { weights; bias }) (Layer.activation la)

let product a b =
  if Network.input_dim a <> Network.input_dim b then
    invalid_arg "Product.product: input dimensions differ";
  if Network.num_layers a <> Network.num_layers b then
    invalid_arg "Product.product: layer counts differ";
  let la = Network.layers a and lb = Network.layers b in
  Array.iteri
    (fun i l ->
      if Layer.activation l <> Layer.activation lb.(i) then
        invalid_arg "Product.product: activations differ")
    la;
  Network.make
    (List.init (Array.length la) (fun i -> combine_layers ~first:(i = 0) la.(i) lb.(i)))

let output_split a _b = Network.output_dim a
