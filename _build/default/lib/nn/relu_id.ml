type t = { layer : int; index : int }

let make ~layer ~index = { layer; index }

let compare a b =
  match Int.compare a.layer b.layer with 0 -> Int.compare a.index b.index | c -> c

let equal a b = compare a b = 0

let hash t = (t.layer * 8191) + t.index

let pp fmt t = Format.fprintf fmt "r[%d,%d]" t.layer t.index

let to_string t = Printf.sprintf "r[%d,%d]" t.layer t.index

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
