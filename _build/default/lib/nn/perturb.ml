module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng

let random_relative ~rng ~fraction n =
  Network.map_weights (fun w -> w *. (1.0 +. Rng.uniform rng (-.fraction) fraction)) n

let random_additive ~rng ~magnitude n =
  Network.map_weights (fun w -> w +. Rng.uniform rng (-.magnitude) magnitude) n

let last_layer ~rng ~delta n =
  let weights, _bias = Network.last_dense n in
  let rows = Mat.rows weights and cols = Mat.cols weights in
  let raw = Mat.init rows cols (fun _ _ -> Rng.gaussian rng) in
  let norm = Mat.frobenius_norm raw in
  let e = if norm = 0.0 then raw else Mat.scale (delta /. norm) raw in
  Network.replace_last_dense n (Mat.add weights e)

(* Per-tensor threshold at the [fraction] quantile of |w|. *)
let prune_threshold ~fraction magnitudes =
  if Array.length magnitudes = 0 then 0.0
  else begin
    let sorted = Array.copy magnitudes in
    Array.sort compare sorted;
    let k = int_of_float (fraction *. float_of_int (Array.length sorted)) in
    if k <= 0 then -1.0 (* prune nothing: every |w| > -1 *)
    else sorted.(min (k - 1) (Array.length sorted - 1))
  end

let magnitude_prune ~fraction n =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Perturb.magnitude_prune: fraction must be in [0, 1]";
  let prune_layer layer =
    let affine =
      match Layer.affine layer with
      | Layer.Dense { weights; bias } ->
          let flat = Array.concat (Array.to_list (Mat.to_arrays weights)) in
          let threshold = prune_threshold ~fraction (Array.map Float.abs flat) in
          let weights = Mat.map (fun w -> if Float.abs w <= threshold then 0.0 else w) weights in
          Layer.Dense { weights; bias }
      | Layer.Conv2d { spec; kernel; bias } ->
          let threshold = prune_threshold ~fraction (Array.map Float.abs kernel) in
          let kernel = Array.map (fun w -> if Float.abs w <= threshold then 0.0 else w) kernel in
          Layer.Conv2d { spec; kernel; bias }
    in
    Layer.make affine (Layer.activation layer)
  in
  Network.make (List.map prune_layer (Array.to_list (Network.layers n)))
