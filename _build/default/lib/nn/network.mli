(** Layered feed-forward networks.

    A network is a sequential composition of {!Layer.t}; consecutive
    layer dimensions must chain.  Networks are immutable; weight updates
    produce fresh networks. *)

type t

type trace = {
  pre : Ivan_tensor.Vec.t array;  (** pre-activation of each layer *)
  post : Ivan_tensor.Vec.t array;  (** post-activation of each layer *)
}

val make : Layer.t list -> t
(** @raise Invalid_argument on an empty list or mismatched dimensions. *)

val layers : t -> Layer.t array
(** The underlying layers; do not mutate. *)

val num_layers : t -> int

val input_dim : t -> int

val output_dim : t -> int

val forward : t -> Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t
(** Network output for a concrete input.
    @raise Invalid_argument on input dimension mismatch. *)

val forward_trace : t -> Ivan_tensor.Vec.t -> trace
(** Output along with all intermediate pre/post activations. *)

val relu_ids : t -> Relu_id.t array
(** Every ReLU unit of the architecture, in (layer, index) order. *)

val num_relus : t -> int

val num_neurons : t -> int
(** Total hidden + output neurons (the paper's "#Neurons" column). *)

val layer_dense : t -> int -> Ivan_tensor.Mat.t * Ivan_tensor.Vec.t
(** Dense affine map of layer [i] (convolutions lowered and cached). *)

val precompute_dense : t -> unit
(** Force every layer's dense lowering into its cache.  The lazy cache
    writes are not synchronized, so call this before sharing a network
    across domains. *)

val map_weights : (float -> float) -> t -> t

val same_architecture : t -> t -> bool
(** True when the two networks have identical layer shapes and
    activations (weights may differ) — the precondition for replaying a
    specification tree. *)

val replace_last_dense : t -> Ivan_tensor.Mat.t -> t
(** Replace the weight matrix of the final layer, which must be dense.
    Used by last-layer perturbation experiments (paper §4.4).
    @raise Invalid_argument if the last layer is a convolution or the
    shape differs. *)

val last_dense : t -> Ivan_tensor.Mat.t * Ivan_tensor.Vec.t
(** Weights and bias of the final layer.  @raise Invalid_argument if the
    final layer is a convolution. *)

val pp_summary : Format.formatter -> t -> unit
