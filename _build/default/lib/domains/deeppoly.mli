(** DeepPoly-style polyhedral abstract interpreter.

    Every neuron carries one symbolic lower and one symbolic upper
    linear bound over the previous layer; concrete bounds are obtained
    by back-substituting these expressions down to the input box (Singh
    et al. POPL 2019).  Split assumptions fix ReLU phases exactly.

    This is the bound engine behind the LP analyzer: the triangle
    relaxation needs tight pre-activation intervals for every ambiguous
    ReLU. *)

type analysis

type result = Feasible of analysis | Infeasible

val analyze : Ivan_nn.Network.t -> box:Ivan_spec.Box.t -> splits:Splits.t -> result
(** @raise Invalid_argument on box/network dimension mismatch. *)

val bounds : analysis -> Bounds.t

val objective_itv : analysis -> c:Ivan_tensor.Vec.t -> offset:float -> Itv.t
(** Bound on [c . Y + offset] obtained by back-substituting the
    objective through the whole network — tighter than combining
    per-output interval bounds. *)
