(** Interval (box) abstract interpreter.

    The cheapest sound analyzer: propagates per-neuron intervals through
    the network.  Split assumptions refine the intervals (a phase that
    contradicts the bounds proves the subproblem region empty). *)

type result = Feasible of Bounds.t | Infeasible

val analyze : Ivan_nn.Network.t -> box:Ivan_spec.Box.t -> splits:Splits.t -> result
(** @raise Invalid_argument if the box dimension differs from the
    network input dimension. *)
