module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Network = Ivan_nn.Network
module Layer = Ivan_nn.Layer
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box

type result = Feasible of Bounds.t | Infeasible

exception Empty_region

(* Interval matvec: for W x + b with x in [xlo, xhi]. *)
let affine_bounds w b xlo xhi =
  let rows = Mat.rows w in
  let lo = Array.make rows 0.0 and hi = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let alo = ref b.(i) and ahi = ref b.(i) in
    for j = 0 to Mat.cols w - 1 do
      let wij = Mat.get w i j in
      if wij >= 0.0 then begin
        alo := !alo +. (wij *. xlo.(j));
        ahi := !ahi +. (wij *. xhi.(j))
      end
      else begin
        alo := !alo +. (wij *. xhi.(j));
        ahi := !ahi +. (wij *. xlo.(j))
      end
    done;
    lo.(i) <- !alo;
    hi.(i) <- !ahi
  done;
  (lo, hi)

(* Refine a pre-activation interval with the split phase and give the
   post-activation interval for a piecewise-linear activation with the
   given negative-side [slope] (0 for ReLU).  The activation is
   monotone, so the unsplit image is just the endpoint image.  Raises
   [Empty_region] on contradiction. *)
let apply_relu_phase ~slope ~phase ~lo ~hi =
  let act v = if v >= 0.0 then v else slope *. v in
  match phase with
  | None -> (lo, hi, act lo, act hi)
  | Some Splits.Pos ->
      if hi < 0.0 then raise Empty_region;
      let lo' = Float.max 0.0 lo in
      (lo', hi, lo', hi)
  | Some Splits.Neg ->
      if lo > 0.0 then raise Empty_region;
      let hi' = Float.min 0.0 hi in
      (lo, hi', slope *. lo, slope *. hi')

let analyze net ~box ~splits =
  if Box.dim box <> Network.input_dim net then
    invalid_arg "Interval_dom.analyze: box dimension mismatch";
  let layers = Network.layers net in
  let result = Array.make (Array.length layers) None in
  try
    let xlo = ref (Box.lo box) and xhi = ref (Box.hi box) in
    Array.iteri
      (fun li layer ->
        let w, b = Layer.dense_affine layer in
        let pre_lo, pre_hi = affine_bounds w b !xlo !xhi in
        let dim = Vec.dim pre_lo in
        let post_lo = Array.make dim 0.0 and post_hi = Array.make dim 0.0 in
        (match Layer.classify (Layer.activation layer) with
        | Layer.Linear_activation ->
            Array.blit pre_lo 0 post_lo 0 dim;
            Array.blit pre_hi 0 post_hi 0 dim
        | Layer.Smooth { f; df = _ } ->
            (* Monotone: the image is the endpoint image.  Smooth units
               are never split. *)
            for idx = 0 to dim - 1 do
              post_lo.(idx) <- f pre_lo.(idx);
              post_hi.(idx) <- f pre_hi.(idx)
            done
        | Layer.Piecewise slope ->
            for idx = 0 to dim - 1 do
              let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
              let plo, phi, qlo, qhi =
                apply_relu_phase ~slope ~phase ~lo:pre_lo.(idx) ~hi:pre_hi.(idx)
              in
              pre_lo.(idx) <- plo;
              pre_hi.(idx) <- phi;
              post_lo.(idx) <- qlo;
              post_hi.(idx) <- qhi
            done);
        result.(li) <- Some { Bounds.pre_lo; pre_hi; post_lo; post_hi };
        xlo := post_lo;
        xhi := post_hi)
      layers;
    let layers_bounds =
      Array.map (function Some l -> l | None -> assert false) result
    in
    Feasible { Bounds.layers = layers_bounds }
  with Empty_region -> Infeasible
