module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Network = Ivan_nn.Network
module Layer = Ivan_nn.Layer
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box

type analysis = {
  bounds : Bounds.t;
  output_center : Vec.t;
  output_gen : float array array;
  relu_terms : int Relu_id.Map.t;
  nterms : int;
  input_box : Box.t;
}

type result = Feasible of analysis | Infeasible

exception Empty_region

(* Interval concretization of an affine form. *)
let form_radius gen = Array.fold_left (fun acc g -> acc +. Float.abs g) 0.0 gen

let form_itv center gen =
  let r = form_radius gen in
  (center -. r, center +. r)

(* Affine image: given per-neuron (center, gen) of the previous layer,
   compute the same for W x + b.  Hot path: raw weight rows, structural
   zeros skipped. *)
let affine_image w b centers gens nterms =
  let rows = Mat.rows w and cols = Mat.cols w in
  let out_centers = Array.make rows 0.0 in
  let out_gens = Array.init rows (fun _ -> Array.make nterms 0.0) in
  for i = 0 to rows - 1 do
    let wrow = Mat.row w i in
    let acc = ref b.(i) in
    let row_gen = out_gens.(i) in
    for j = 0 to cols - 1 do
      let wij = wrow.(j) in
      if wij <> 0.0 then begin
        acc := !acc +. (wij *. centers.(j));
        let g = gens.(j) in
        for t = 0 to nterms - 1 do
          let gt = g.(t) in
          if gt <> 0.0 then row_gen.(t) <- row_gen.(t) +. (wij *. gt)
        done
      end
    done;
    out_centers.(i) <- !acc
  done;
  (out_centers, out_gens)

let analyze net ~box ~splits =
  let d = Box.dim box in
  if d <> Network.input_dim net then invalid_arg "Zonotope.analyze: box dimension mismatch";
  (* Input forms: x_j = mid_j + rad_j * eps_j. *)
  let centers = ref (Array.init d (fun j -> 0.5 *. (Box.lo_at box j +. Box.hi_at box j))) in
  let gens =
    ref
      (Array.init d (fun j ->
           let g = Array.make d 0.0 in
           g.(j) <- 0.5 *. Box.width box j;
           g))
  in
  let nterms = ref d in
  let relu_terms = ref Relu_id.Map.empty in
  let layers = Network.layers net in
  let bounds_layers = Array.make (Array.length layers) None in
  try
    Array.iteri
      (fun li layer ->
        let w, b = Layer.dense_affine layer in
        let pre_centers, pre_gens = affine_image w b !centers !gens !nterms in
        let dim = Array.length pre_centers in
        let pre_lo = Array.make dim 0.0 and pre_hi = Array.make dim 0.0 in
        for idx = 0 to dim - 1 do
          let lo, hi = form_itv pre_centers.(idx) pre_gens.(idx) in
          pre_lo.(idx) <- lo;
          pre_hi.(idx) <- hi
        done;
        match Layer.classify (Layer.activation layer) with
        | Layer.Linear_activation ->
            bounds_layers.(li) <-
              Some
                {
                  Bounds.pre_lo;
                  pre_hi;
                  post_lo = Array.copy pre_lo;
                  post_hi = Array.copy pre_hi;
                };
            centers := pre_centers;
            gens := pre_gens
        | Layer.Smooth { f; df } ->
            (* Minimal parallelogram for a monotone S-shaped function:
               slope min(f'(l), f'(u)) keeps f(x) - lambda*x
               nondecreasing, so its range is the endpoint image.  One
               fresh symbol per neuron. *)
            let nterms' = !nterms + dim in
            let post_centers = Array.make dim 0.0 in
            let post_gens = Array.init dim (fun _ -> Array.make nterms' 0.0) in
            let post_lo = Array.make dim 0.0 and post_hi = Array.make dim 0.0 in
            for idx = 0 to dim - 1 do
              let l = pre_lo.(idx) and u = pre_hi.(idx) in
              let lambda = Float.min (df l) (df u) in
              let g_lo = f l -. (lambda *. l) and g_hi = f u -. (lambda *. u) in
              let mid = 0.5 *. (g_lo +. g_hi) and rad = 0.5 *. (g_hi -. g_lo) in
              post_centers.(idx) <- (lambda *. pre_centers.(idx)) +. mid;
              let g = post_gens.(idx) and pg = pre_gens.(idx) in
              for t = 0 to !nterms - 1 do
                g.(t) <- lambda *. pg.(t)
              done;
              g.(!nterms + idx) <- rad;
              let lo, hi = form_itv post_centers.(idx) post_gens.(idx) in
              post_lo.(idx) <- Float.max lo (f l);
              post_hi.(idx) <- Float.min hi (f u)
            done;
            bounds_layers.(li) <- Some { Bounds.pre_lo; pre_hi; post_lo; post_hi };
            centers := post_centers;
            gens := post_gens;
            nterms := nterms'
        | Layer.Piecewise slope ->
            (* Classify neurons, checking split phases and counting the
               fresh noise symbols needed.  [`Linear s]: the activation
               acts as y = s*x on the neuron's (possibly phase-refined)
               range. *)
            let kind = Array.make dim (`Linear 1.0) in
            let fresh = ref 0 in
            for idx = 0 to dim - 1 do
              let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
              (match phase with
              | Some Splits.Pos ->
                  if pre_hi.(idx) < 0.0 then raise Empty_region;
                  pre_lo.(idx) <- Float.max 0.0 pre_lo.(idx);
                  kind.(idx) <- `Linear 1.0
              | Some Splits.Neg ->
                  if pre_lo.(idx) > 0.0 then raise Empty_region;
                  pre_hi.(idx) <- Float.min 0.0 pre_hi.(idx);
                  kind.(idx) <- `Linear slope
              | None ->
                  if pre_lo.(idx) >= 0.0 then kind.(idx) <- `Linear 1.0
                  else if pre_hi.(idx) <= 0.0 then kind.(idx) <- `Linear slope
                  else begin
                    kind.(idx) <- `Ambiguous !fresh;
                    incr fresh
                  end)
            done;
            let nterms' = !nterms + !fresh in
            let post_centers = Array.make dim 0.0 in
            let post_gens = Array.init dim (fun _ -> Array.make nterms' 0.0) in
            let post_lo = Array.make dim 0.0 and post_hi = Array.make dim 0.0 in
            let act v = if v >= 0.0 then v else slope *. v in
            for idx = 0 to dim - 1 do
              (match kind.(idx) with
              | `Linear s ->
                  post_centers.(idx) <- s *. pre_centers.(idx);
                  let g = post_gens.(idx) and pg = pre_gens.(idx) in
                  for t = 0 to !nterms - 1 do
                    g.(t) <- s *. pg.(t)
                  done
              | `Ambiguous k ->
                  (* Minimal-area parallelogram for the two-piece
                     activation: chord slope lambda through the
                     endpoints, vertical half-width mu. *)
                  let lb = pre_lo.(idx) and ub = pre_hi.(idx) in
                  let lambda = (ub -. (slope *. lb)) /. (ub -. lb) in
                  let mu = (1.0 -. slope) *. ub *. -.lb /. (ub -. lb) /. 2.0 in
                  post_centers.(idx) <- (lambda *. pre_centers.(idx)) +. mu;
                  let g = post_gens.(idx) in
                  let pg = pre_gens.(idx) in
                  for t = 0 to !nterms - 1 do
                    g.(t) <- lambda *. pg.(t)
                  done;
                  g.(!nterms + k) <- mu;
                  relu_terms :=
                    Relu_id.Map.add (Relu_id.make ~layer:li ~index:idx) (!nterms + k) !relu_terms);
              let lo, hi = form_itv post_centers.(idx) post_gens.(idx) in
              (* The exact post-activation range is also within the
                 activation image of the pre bounds; meet the two. *)
              post_lo.(idx) <- Float.max lo (act pre_lo.(idx));
              post_hi.(idx) <- Float.min hi (act pre_hi.(idx))
            done;
            bounds_layers.(li) <- Some { Bounds.pre_lo; pre_hi; post_lo; post_hi };
            centers := post_centers;
            gens := post_gens;
            nterms := nterms')
      layers;
    let layers_bounds = Array.map (function Some l -> l | None -> assert false) bounds_layers in
    Feasible
      {
        bounds = { Bounds.layers = layers_bounds };
        output_center = !centers;
        output_gen = !gens;
        relu_terms = !relu_terms;
        nterms = !nterms;
        input_box = box;
      }
  with Empty_region -> Infeasible

let objective_coeffs a ~c =
  let obj = Array.make a.nterms 0.0 in
  Array.iteri
    (fun i ci ->
      if ci <> 0.0 then
        let g = a.output_gen.(i) in
        for t = 0 to a.nterms - 1 do
          obj.(t) <- obj.(t) +. (ci *. g.(t))
        done)
    c;
  obj

let objective_itv a ~c ~offset =
  let center = Vec.dot c a.output_center +. offset in
  let radius = form_radius (objective_coeffs a ~c) in
  Itv.make (center -. radius) (center +. radius)

let relu_score_from_coeffs a obj r =
  match Relu_id.Map.find_opt r a.relu_terms with None -> 0.0 | Some t -> Float.abs obj.(t)

let relu_score a ~c r = relu_score_from_coeffs a (objective_coeffs a ~c) r

let minimizing_input a ~c =
  let obj = objective_coeffs a ~c in
  let d = Box.dim a.input_box in
  Array.init d (fun j ->
      let mid = 0.5 *. (Box.lo_at a.input_box j +. Box.hi_at a.input_box j) in
      let rad = 0.5 *. Box.width a.input_box j in
      if obj.(j) > 0.0 then mid -. rad else if obj.(j) < 0.0 then mid +. rad else mid)
