module Relu_id = Ivan_nn.Relu_id

type phase = Pos | Neg

type t = phase Relu_id.Map.t

let empty = Relu_id.Map.empty

let is_empty = Relu_id.Map.is_empty

let add r phase t =
  if Relu_id.Map.mem r t then
    invalid_arg (Printf.sprintf "Splits.add: %s already split" (Relu_id.to_string r));
  Relu_id.Map.add r phase t

let find r t = Relu_id.Map.find_opt r t

let mem r t = Relu_id.Map.mem r t

let cardinal = Relu_id.Map.cardinal

let bindings = Relu_id.Map.bindings

let negate = function Pos -> Neg | Neg -> Pos

let phase_name = function Pos -> "+" | Neg -> "-"

let pp fmt t =
  Format.fprintf fmt "{";
  List.iter
    (fun (r, p) -> Format.fprintf fmt "%a%s " Relu_id.pp r (phase_name p))
    (bindings t);
  Format.fprintf fmt "}"
