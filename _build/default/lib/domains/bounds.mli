(** Per-neuron bounds produced by an abstract interpreter run. *)

type layer = {
  pre_lo : Ivan_tensor.Vec.t;
  pre_hi : Ivan_tensor.Vec.t;
  post_lo : Ivan_tensor.Vec.t;
  post_hi : Ivan_tensor.Vec.t;
}

type t = { layers : layer array }

val output_lo : t -> Ivan_tensor.Vec.t
(** Post-activation lower bounds of the final layer. *)

val output_hi : t -> Ivan_tensor.Vec.t

val pre_itv : t -> Ivan_nn.Relu_id.t -> Itv.t
(** Pre-activation interval of a ReLU unit. *)

val ambiguous_relus : t -> Ivan_nn.Network.t -> splits:Splits.t -> Ivan_nn.Relu_id.t list
(** ReLUs whose pre-activation straddles zero and that are not already
    split — the branching candidates at a node. *)

val objective_itv : t -> c:Ivan_tensor.Vec.t -> offset:float -> Itv.t
(** Interval bound on [c . Y + offset] from the output-layer bounds. *)
