module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Network = Ivan_nn.Network
module Layer = Ivan_nn.Layer
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box

(* Symbolic post-activation bounds of one layer, expressed over the
   previous layer's post-activations (the input for layer 0):
   lw x + lb <= post <= uw x + ub, row per neuron.  Stored as raw row
   arrays — this module is the analyzer stack's hot path. *)
type sym = { lw : float array array; lconst : Vec.t; uw : float array array; uconst : Vec.t }

type analysis = { syms : sym array; bounds : Bounds.t; box : Box.t }

type result = Feasible of analysis | Infeasible

exception Empty_region

(* One back-substitution step: rewrite the expression rows (w, c) over
   layer [k]'s posts into rows over layer [k-1]'s posts using layer
   [k]'s symbolic bounds.  [lower] selects which bound a positive
   coefficient takes. *)
let step ~lower sym w c =
  let rows = Array.length w in
  let inner = Array.length sym.lw in
  let prev = if inner = 0 then 0 else Array.length sym.lw.(0) in
  let w' = Array.make_matrix rows prev 0.0 in
  let c' = Array.copy c in
  for r = 0 to rows - 1 do
    let wr = w.(r) in
    let wr' = w'.(r) in
    for j = 0 to inner - 1 do
      let coeff = wr.(j) in
      if coeff <> 0.0 then begin
        let take_lower = if lower then coeff > 0.0 else coeff < 0.0 in
        let srow = if take_lower then sym.lw.(j) else sym.uw.(j) in
        let sconst = if take_lower then sym.lconst.(j) else sym.uconst.(j) in
        c'.(r) <- c'.(r) +. (coeff *. sconst);
        for p = 0 to prev - 1 do
          let s = srow.(p) in
          if s <> 0.0 then wr'.(p) <- wr'.(p) +. (coeff *. s)
        done
      end
    done
  done;
  (w', c')

(* Evaluate an input-level expression over the box. *)
let eval ~lower box w c =
  Array.init (Array.length w) (fun r ->
      let wr = w.(r) in
      let acc = ref c.(r) in
      for j = 0 to Array.length wr - 1 do
        let coeff = wr.(j) in
        if coeff <> 0.0 then
          let take_lo = if lower then coeff >= 0.0 else coeff < 0.0 in
          acc := !acc +. (coeff *. if take_lo then Box.lo_at box j else Box.hi_at box j)
      done;
      !acc)

(* Concrete bounds of an expression over layer [upto - 1]'s posts (or
   the input if [upto = 0]), back-substituting through syms. *)
let backsub ~lower syms box ~upto w c =
  let w = ref w and c = ref c in
  for k = upto - 1 downto 0 do
    let w', c' = step ~lower syms.(k) !w !c in
    w := w';
    c := c'
  done;
  eval ~lower box !w !c

let backsub_lower syms box ~upto w c = backsub ~lower:true syms box ~upto w c

let backsub_upper syms box ~upto w c = backsub ~lower:false syms box ~upto w c

let rows_of_mat m = Array.init (Mat.rows m) (fun i -> Mat.row m i)

let analyze net ~box ~splits =
  if Box.dim box <> Network.input_dim net then
    invalid_arg "Deeppoly.analyze: box dimension mismatch";
  let layers = Network.layers net in
  let count = Array.length layers in
  let syms = Array.make count { lw = [||]; lconst = [||]; uw = [||]; uconst = [||] } in
  let bounds_layers = Array.make count None in
  try
    for li = 0 to count - 1 do
      let wm, b = Network.layer_dense net li in
      let w = rows_of_mat wm in
      let dim = Array.length w in
      let cols = Mat.cols wm in
      (* Concrete pre-activation bounds by back-substitution. *)
      let pre_lo = backsub_lower syms box ~upto:li w b in
      let pre_hi = backsub_upper syms box ~upto:li w b in
      match Layer.classify (Layer.activation layers.(li)) with
      | Layer.Linear_activation ->
          syms.(li) <- { lw = w; lconst = b; uw = w; uconst = b };
          bounds_layers.(li) <-
            Some
              {
                Bounds.pre_lo;
                pre_hi;
                post_lo = Array.copy pre_lo;
                post_hi = Array.copy pre_hi;
              }
      | Layer.Smooth { f; df } ->
          (* Two parallel lines of slope min(f'(l), f'(u)) sandwich a
             monotone S-shaped activation on [l, u]. *)
          let lw = Array.make_matrix dim cols 0.0 in
          let uw = Array.make_matrix dim cols 0.0 in
          let lconst = Array.make dim 0.0 in
          let uconst = Array.make dim 0.0 in
          let post_lo = Array.make dim 0.0 and post_hi = Array.make dim 0.0 in
          for idx = 0 to dim - 1 do
            let l = pre_lo.(idx) and u = pre_hi.(idx) in
            let lambda = Float.min (df l) (df u) in
            let wrow = w.(idx) in
            let scale target trow_const const_add =
              let trow = target.(idx) in
              for p = 0 to cols - 1 do
                trow.(p) <- lambda *. wrow.(p)
              done;
              trow_const.(idx) <- (lambda *. b.(idx)) +. const_add
            in
            scale lw lconst (f l -. (lambda *. l));
            scale uw uconst (f u -. (lambda *. u));
            post_lo.(idx) <- f l;
            post_hi.(idx) <- f u
          done;
          syms.(li) <- { lw; lconst; uw; uconst };
          bounds_layers.(li) <- Some { Bounds.pre_lo; pre_hi; post_lo; post_hi }
      | Layer.Piecewise slope ->
          (* Per-neuron activation relaxation slopes; the symbolic bound
             of the post in terms of the PREVIOUS layer composes the
             relaxation with the affine row.  [slope] is the
             activation's negative-side slope (0 for ReLU). *)
          let lw = Array.make_matrix dim cols 0.0 in
          let uw = Array.make_matrix dim cols 0.0 in
          let lconst = Array.make dim 0.0 in
          let uconst = Array.make dim 0.0 in
          let post_lo = Array.make dim 0.0 and post_hi = Array.make dim 0.0 in
          let act v = if v >= 0.0 then v else slope *. v in
          for idx = 0 to dim - 1 do
            let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
            let lb = pre_lo.(idx) and ub = pre_hi.(idx) in
            let wrow = w.(idx) in
            let copy_row ~scale target const_arr const_add =
              let trow = target.(idx) in
              for p = 0 to cols - 1 do
                trow.(p) <- scale *. wrow.(p)
              done;
              const_arr.(idx) <- (scale *. b.(idx)) +. const_add
            in
            (* Both bounds are the exact line y = s*x. *)
            let linear s =
              copy_row ~scale:s lw lconst 0.0;
              copy_row ~scale:s uw uconst 0.0
            in
            match phase with
            | Some Splits.Pos ->
                if ub < 0.0 then raise Empty_region;
                pre_lo.(idx) <- Float.max 0.0 lb;
                linear 1.0;
                post_lo.(idx) <- pre_lo.(idx);
                post_hi.(idx) <- ub
            | Some Splits.Neg ->
                if lb > 0.0 then raise Empty_region;
                pre_hi.(idx) <- Float.min 0.0 ub;
                linear slope;
                post_lo.(idx) <- slope *. lb;
                post_hi.(idx) <- slope *. pre_hi.(idx)
            | None ->
                if lb >= 0.0 then begin
                  linear 1.0;
                  post_lo.(idx) <- lb;
                  post_hi.(idx) <- ub
                end
                else if ub <= 0.0 then begin
                  linear slope;
                  post_lo.(idx) <- slope *. lb;
                  post_hi.(idx) <- slope *. ub
                end
                else begin
                  (* Ambiguous: upper chord through the endpoints, lower
                     slope by min-area between the two exact pieces. *)
                  let lambda_u = (ub -. (slope *. lb)) /. (ub -. lb) in
                  let mu_u = lb *. (slope -. lambda_u) in
                  copy_row ~scale:lambda_u uw uconst mu_u;
                  let lambda_l = if ub >= -.lb then 1.0 else slope in
                  copy_row ~scale:lambda_l lw lconst 0.0;
                  post_lo.(idx) <- act lb;
                  post_hi.(idx) <- ub
                end
          done;
          syms.(li) <- { lw; lconst; uw; uconst };
          bounds_layers.(li) <- Some { Bounds.pre_lo; pre_hi; post_lo; post_hi }
    done;
    let layers_bounds = Array.map (function Some l -> l | None -> assert false) bounds_layers in
    Feasible { syms; bounds = { Bounds.layers = layers_bounds }; box }
  with Empty_region -> Infeasible

let bounds a = a.bounds

let objective_itv a ~c ~offset =
  let count = Array.length a.syms in
  let row = [| Vec.copy c |] in
  let const = [| offset |] in
  let lo = backsub_lower a.syms a.box ~upto:count row const in
  let hi = backsub_upper a.syms a.box ~upto:count row const in
  Itv.make lo.(0) hi.(0)
