(** Zonotope abstract interpreter (DeepZ-style).

    Every neuron's value is over-approximated by an affine form
    [c + sum_k g_k eps_k] with noise symbols [eps_k] ranging over
    [-1, 1].  The first [Box.dim] noise symbols parameterize the input
    box; each ambiguous ReLU adds one fresh symbol (the minimal-area
    parallelogram transformer of Singh et al. 2018).

    Besides bounds, the analysis exposes the coefficient that each
    ambiguous ReLU's noise symbol contributes to the output objective —
    the "indirect effect" branching score of Henriksen & Lomuscio 2021
    used as the default heuristic H. *)

type analysis = {
  bounds : Bounds.t;
  output_center : Ivan_tensor.Vec.t;
  output_gen : float array array;  (** per output neuron, per noise term *)
  relu_terms : int Ivan_nn.Relu_id.Map.t;  (** ambiguous ReLU -> its term *)
  nterms : int;
  input_box : Ivan_spec.Box.t;
}

type result = Feasible of analysis | Infeasible

val analyze : Ivan_nn.Network.t -> box:Ivan_spec.Box.t -> splits:Splits.t -> result
(** @raise Invalid_argument on box/network dimension mismatch. *)

val objective_itv : analysis -> c:Ivan_tensor.Vec.t -> offset:float -> Itv.t
(** Zonotope bound on [c . Y + offset]; at least as tight as the
    interval bound from [bounds]. *)

val objective_coeffs : analysis -> c:Ivan_tensor.Vec.t -> float array
(** Noise-term coefficients of the objective [c . Y]; index [t] is the
    coefficient of [eps_t].  Compute once and reuse when scoring many
    ReLUs. *)

val relu_score : analysis -> c:Ivan_tensor.Vec.t -> Ivan_nn.Relu_id.t -> float
(** Magnitude of the ReLU's noise-term coefficient in the objective;
    [0.] for ReLUs that did not introduce a term. *)

val relu_score_from_coeffs : analysis -> float array -> Ivan_nn.Relu_id.t -> float
(** Same as {!relu_score} given precomputed {!objective_coeffs}. *)

val minimizing_input : analysis -> c:Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t
(** The corner of the input box that minimizes the input-symbol part of
    the objective — the counterexample candidate. *)
