lib/domains/diff.ml: Array Float Ivan_nn Ivan_spec Ivan_tensor Queue Splits Zonotope
