lib/domains/bounds.mli: Itv Ivan_nn Ivan_tensor Splits
