lib/domains/splits.ml: Format Ivan_nn List Printf
