lib/domains/zonotope.ml: Array Bounds Float Itv Ivan_nn Ivan_spec Ivan_tensor Splits
