lib/domains/diff.mli: Ivan_nn Ivan_spec Ivan_tensor
