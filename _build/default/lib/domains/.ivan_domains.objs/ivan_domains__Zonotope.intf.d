lib/domains/zonotope.mli: Bounds Itv Ivan_nn Ivan_spec Ivan_tensor Splits
