lib/domains/bounds.ml: Array Itv Ivan_nn Ivan_tensor Splits
