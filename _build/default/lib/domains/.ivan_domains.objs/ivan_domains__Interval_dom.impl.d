lib/domains/interval_dom.ml: Array Bounds Float Ivan_nn Ivan_spec Ivan_tensor Splits
