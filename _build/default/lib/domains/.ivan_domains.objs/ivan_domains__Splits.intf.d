lib/domains/splits.mli: Format Ivan_nn
