lib/domains/interval_dom.mli: Bounds Ivan_nn Ivan_spec Splits
