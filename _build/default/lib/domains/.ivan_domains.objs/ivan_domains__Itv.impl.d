lib/domains/itv.ml: Float Format
