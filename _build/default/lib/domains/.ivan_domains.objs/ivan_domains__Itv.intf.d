lib/domains/itv.mli: Format
