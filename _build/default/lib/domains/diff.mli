(** Differential bounds between two networks (ReluDiff-flavoured).

    Bounds each coordinate of [N(x) - N'(x)] over an input box by
    running the zonotope analysis on both networks with {e shared} input
    noise symbols: the affine parts cancel exactly, and only the two
    networks' independent ReLU-approximation symbols contribute slack.
    This is the differential-verification setting of Paulsen et al.
    (ReluDiff, ICSE 2020) that the paper positions as complementary
    (§7); refinement is by recursive input splitting. *)

type bound = { lo : Ivan_tensor.Vec.t; hi : Ivan_tensor.Vec.t }
(** Per-output bounds on the difference [N(x) - N'(x)]. *)

val output_difference : Ivan_nn.Network.t -> Ivan_nn.Network.t -> box:Ivan_spec.Box.t -> bound option
(** [None] when either analysis reports the region empty (cannot happen
    without split assumptions, but kept total).
    @raise Invalid_argument if the networks' input/output dimensions
    differ or do not match the box. *)

type verdict =
  | Equivalent  (** [||N(x) - N'(x)||_inf <= delta] proved on the whole box *)
  | Deviation of Ivan_tensor.Vec.t
      (** a concrete input where some output differs by more than delta *)
  | Unknown  (** budget exhausted *)

val verify_equivalence :
  ?max_boxes:int ->
  Ivan_nn.Network.t ->
  Ivan_nn.Network.t ->
  box:Ivan_spec.Box.t ->
  delta:float ->
  verdict
(** Complete-style differential check by branch and bound over input
    splits (widest dimension first), up to [max_boxes] sub-boxes
    (default 1000). *)
