(** ReLU split assumptions.

    A subproblem of BaB with ReLU splitting carries, for a subset of the
    architecture's ReLUs, the assumed phase: [Pos] for the predicate
    [x_hat >= 0] (the paper's [r+]) and [Neg] for [x_hat < 0] ([r-]). *)

type phase = Pos | Neg

type t

val empty : t

val is_empty : t -> bool

val add : Ivan_nn.Relu_id.t -> phase -> t -> t
(** @raise Invalid_argument if the ReLU is already split (a BaB path
    never splits the same unit twice). *)

val find : Ivan_nn.Relu_id.t -> t -> phase option

val mem : Ivan_nn.Relu_id.t -> t -> bool

val cardinal : t -> int

val bindings : t -> (Ivan_nn.Relu_id.t * phase) list

val negate : phase -> phase

val phase_name : phase -> string

val pp : Format.formatter -> t -> unit
