(** Scalar intervals. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** @raise Invalid_argument if [lo > hi]. *)

val point : float -> t

val zero : t

val add : t -> t -> t

val neg : t -> t

val scale : float -> t -> t
(** Multiplication by a constant (sign-aware). *)

val add_scaled : t -> float -> t -> t
(** [add_scaled acc k x] is [acc + k*x]. *)

val relu : t -> t

val meet : t -> t -> t option
(** Intersection; [None] when empty. *)

val contains : t -> float -> bool

val width : t -> float

val is_nonneg : t -> bool

val is_nonpos : t -> bool

val pp : Format.formatter -> t -> unit
