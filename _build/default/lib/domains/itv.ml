type t = { lo : float; hi : float }

let make lo hi =
  if lo > hi then invalid_arg "Itv.make: lo > hi";
  { lo; hi }

let point v = { lo = v; hi = v }

let zero = point 0.0

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let neg a = { lo = -.a.hi; hi = -.a.lo }

let scale k a = if k >= 0.0 then { lo = k *. a.lo; hi = k *. a.hi } else { lo = k *. a.hi; hi = k *. a.lo }

let add_scaled acc k x = add acc (scale k x)

let relu a = { lo = Float.max 0.0 a.lo; hi = Float.max 0.0 a.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let contains a v = v >= a.lo && v <= a.hi

let width a = a.hi -. a.lo

let is_nonneg a = a.lo >= 0.0

let is_nonpos a = a.hi <= 0.0

let pp fmt a = Format.fprintf fmt "[%g, %g]" a.lo a.hi
