module Vec = Ivan_tensor.Vec
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box

type bound = { lo : Vec.t; hi : Vec.t }

(* The first [Box.dim box] noise symbols of a zonotope analysis are the
   input symbols, identical across analyses of the same box; all later
   symbols are network-specific ReLU error terms and independent. *)
let difference_of_analyses box (a : Zonotope.analysis) (b : Zonotope.analysis) =
  let d = Box.dim box in
  let outputs = Vec.dim a.Zonotope.output_center in
  let lo = Array.make outputs 0.0 and hi = Array.make outputs 0.0 in
  for i = 0 to outputs - 1 do
    let center = a.Zonotope.output_center.(i) -. b.Zonotope.output_center.(i) in
    let ga = a.Zonotope.output_gen.(i) and gb = b.Zonotope.output_gen.(i) in
    let radius = ref 0.0 in
    (* Shared input symbols cancel coefficient-wise... *)
    for t = 0 to d - 1 do
      radius := !radius +. Float.abs (ga.(t) -. gb.(t))
    done;
    (* ...while each network's own ReLU symbols contribute fully. *)
    for t = d to a.Zonotope.nterms - 1 do
      radius := !radius +. Float.abs ga.(t)
    done;
    for t = d to b.Zonotope.nterms - 1 do
      radius := !radius +. Float.abs gb.(t)
    done;
    lo.(i) <- center -. !radius;
    hi.(i) <- center +. !radius
  done;
  { lo; hi }

let output_difference n n' ~box =
  if Network.input_dim n <> Network.input_dim n' || Network.output_dim n <> Network.output_dim n'
  then invalid_arg "Diff.output_difference: network shapes differ";
  if Box.dim box <> Network.input_dim n then
    invalid_arg "Diff.output_difference: box dimension mismatch";
  match
    ( Zonotope.analyze n ~box ~splits:Splits.empty,
      Zonotope.analyze n' ~box ~splits:Splits.empty )
  with
  | Zonotope.Feasible a, Zonotope.Feasible b -> Some (difference_of_analyses box a b)
  | Zonotope.Infeasible, _ | _, Zonotope.Infeasible -> None

type verdict = Equivalent | Deviation of Vec.t | Unknown

(* Index of the widest dimension of a box. *)
let widest_dim box =
  let best = ref 0 in
  for j = 1 to Box.dim box - 1 do
    if Box.width box j > Box.width box !best then best := j
  done;
  !best

let max_deviation n n' x =
  let ya = Network.forward n x and yb = Network.forward n' x in
  Vec.norm_inf (Vec.sub ya yb)

let verify_equivalence ?(max_boxes = 1000) n n' ~box ~delta =
  if delta < 0.0 then invalid_arg "Diff.verify_equivalence: negative delta";
  let queue = Queue.create () in
  Queue.add box queue;
  let boxes = ref 0 in
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    if !boxes >= max_boxes then result := Some Unknown
    else begin
      incr boxes;
      let current = Queue.pop queue in
      (* Concrete falsification probe at the centre. *)
      let center = Box.center current in
      if max_deviation n n' center > delta then result := Some (Deviation center)
      else
        match output_difference n n' ~box:current with
        | None -> () (* empty region: vacuously fine *)
        | Some { lo; hi } ->
            let worst =
              Array.fold_left
                (fun acc (v : float) -> Float.max acc v)
                0.0
                (Array.mapi (fun i l -> Float.max (Float.abs l) (Float.abs hi.(i))) lo)
            in
            if worst > delta then begin
              let left, right = Box.split_dim current (widest_dim current) in
              Queue.add left queue;
              Queue.add right queue
            end
    end
  done;
  match !result with None -> Equivalent | Some r -> r
