module Vec = Ivan_tensor.Vec
module Network = Ivan_nn.Network
module Layer = Ivan_nn.Layer
module Relu_id = Ivan_nn.Relu_id

type layer = { pre_lo : Vec.t; pre_hi : Vec.t; post_lo : Vec.t; post_hi : Vec.t }

type t = { layers : layer array }

let output_lo t = t.layers.(Array.length t.layers - 1).post_lo

let output_hi t = t.layers.(Array.length t.layers - 1).post_hi

let pre_itv t (r : Relu_id.t) =
  let layer = t.layers.(r.layer) in
  Itv.make layer.pre_lo.(r.index) layer.pre_hi.(r.index)

let ambiguous_relus t net ~splits =
  let acc = ref [] in
  let layers = Network.layers net in
  for li = Array.length layers - 1 downto 0 do
    match Layer.negative_slope (Layer.activation layers.(li)) with
    | None -> ()
    | Some _ ->
        let lb = t.layers.(li).pre_lo and ub = t.layers.(li).pre_hi in
        for idx = Vec.dim lb - 1 downto 0 do
          let r = Relu_id.make ~layer:li ~index:idx in
          if lb.(idx) < 0.0 && ub.(idx) > 0.0 && not (Splits.mem r splits) then acc := r :: !acc
        done
  done;
  !acc

let objective_itv t ~c ~offset =
  let lo = output_lo t and hi = output_hi t in
  let acc = ref (Itv.point offset) in
  for i = 0 to Vec.dim c - 1 do
    acc := Itv.add_scaled !acc c.(i) (Itv.make lo.(i) hi.(i))
  done;
  !acc
