lib/lp/lp.ml: Array Float Format Ivan_tensor List
