(* Row-major storage in a flat array: entry (i, j) lives at [i * cols + j]. *)
type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.0

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let rows m = m.rows

let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows") a;
  init rows cols (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let map f m = { m with data = Array.map f m.data }

let matvec m x =
  if Array.length x <> m.cols then
    invalid_arg (Printf.sprintf "Mat.matvec: %dx%d with vector of dim %d" m.rows m.cols (Array.length x));
  let y = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let matvec_t m x =
  if Array.length x <> m.rows then
    invalid_arg (Printf.sprintf "Mat.matvec_t: %dx%d with vector of dim %d" m.rows m.cols (Array.length x));
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(base + j) *. xi)
      done
  done;
  y

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Mat.matmul: %dx%d times %dx%d" a.rows a.cols b.rows b.cols);
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let frobenius_norm m =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. (x *. x)) m.data;
  sqrt !acc

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for k = 0 to Array.length a.data - 1 do
         if Float.abs (a.data.(k) -. b.data.(k)) > eps then ok := false
       done;
       !ok
     end

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "%a@," Vec.pp (row m i)
  done;
  Format.fprintf fmt "@]"
