type t = float array

let create n x = Array.make n x

let zeros n = Array.make n 0.0

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dims "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let mul a b =
  check_dims "mul" a b;
  Array.init (Array.length a) (fun i -> a.(i) *. b.(i))

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a

let max_elt a =
  if Array.length a = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max a.(0) a

let min_elt a =
  if Array.length a = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left Float.min a.(0) a

let argmax a =
  if Array.length a = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let map = Array.map

let map2 f a b =
  check_dims "map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let relu a = Array.map (fun x -> Float.max 0.0 x) a

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         if Float.abs (a.(i) -. b.(i)) > eps then ok := false
       done;
       !ok
     end

let pp fmt v =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") (fun f x -> Format.fprintf f "%g" x))
    (Array.to_list v)
