lib/tensor/vec.ml: Array Float Format Printf
