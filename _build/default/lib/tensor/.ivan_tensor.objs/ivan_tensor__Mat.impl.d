lib/tensor/mat.ml: Array Float Format Printf Vec
