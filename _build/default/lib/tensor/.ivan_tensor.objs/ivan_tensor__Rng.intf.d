lib/tensor/rng.mli:
