(** Dense row-major float matrices. *)

type t

val create : int -> int -> float -> t
(** [create rows cols x] is the [rows × cols] matrix filled with [x]. *)

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val of_arrays : float array array -> t
(** @raise Invalid_argument if rows have unequal lengths. *)

val to_arrays : t -> float array array

val row : t -> int -> Vec.t
(** [row m i] is a fresh copy of row [i]. *)

val col : t -> int -> Vec.t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val map : (float -> float) -> t -> t

val matvec : t -> Vec.t -> Vec.t
(** [matvec m x] is [m · x].  @raise Invalid_argument on mismatch. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m x] is [mᵀ · x] without materializing the transpose. *)

val matmul : t -> t -> t

val frobenius_norm : t -> float

val max_abs : t -> float
(** Largest absolute entry. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
