(** Dense float vectors.

    A thin layer over [float array] providing the linear-algebra
    operations the verifier needs.  All operations allocate fresh vectors
    unless suffixed [_inplace]. *)

type t = float array

val create : int -> float -> t
(** [create n x] is the length-[n] vector with every entry [x]. *)

val zeros : int -> t

val init : int -> (int -> float) -> t

val dim : t -> int

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val get : t -> int -> float

val set : t -> int -> float -> unit

val add : t -> t -> t
(** Pointwise sum.  @raise Invalid_argument on dimension mismatch. *)

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- a*x + y] in place. *)

val mul : t -> t -> t
(** Pointwise (Hadamard) product. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val max_elt : t -> float
(** @raise Invalid_argument on the empty vector. *)

val min_elt : t -> float

val argmax : t -> int
(** Index of the first maximal element. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val relu : t -> t
(** Pointwise [max 0]. *)

val equal : ?eps:float -> t -> t -> bool
(** Pointwise comparison with absolute tolerance [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
