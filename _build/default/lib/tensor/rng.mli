(** Deterministic pseudo-random number generation.

    A splitmix64 generator: fast, statistically sound for simulation
    purposes, and fully reproducible from a 64-bit seed.  Every source of
    randomness in the repository flows through this module so that all
    experiments are deterministic given a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created with
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future stream equals the
    future stream of [t] at the time of the call. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are independent for practical purposes. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
