type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 core: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively;
     modulo bias is negligible for the bounds used here (< 2^30). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t x =
  (* 53 random bits mapped to [0, 1), scaled. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let unit = float_of_int bits /. 9007199254740992.0 in
  unit *. x

let uniform t lo hi = lo +. float t (hi -. lo)

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
