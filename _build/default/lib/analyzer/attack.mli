(** Gradient-guided falsification (projected gradient descent).

    A cheap complement to complete verification: search the property's
    input region for a concrete counterexample by descending the
    objective margin [c . N(x) + d], projecting back onto the box after
    every step.  Finding one settles the instance without any BaB; not
    finding one proves nothing. *)

val pgd :
  ?steps:int ->
  ?restarts:int ->
  ?step_size:float ->
  rng:Ivan_tensor.Rng.t ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_tensor.Vec.t option
(** [pgd ~rng net ~prop] returns a genuine counterexample (checked with
    {!Analyzer.check_concrete}) or [None].  Defaults: 40 steps, 5
    restarts, step size of 1/10th of the widest box dimension.  The
    first restart starts from the box centre, the rest from uniform
    samples. *)

val best_margin :
  ?steps:int ->
  ?restarts:int ->
  ?step_size:float ->
  rng:Ivan_tensor.Rng.t ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  float * Ivan_tensor.Vec.t
(** The lowest margin found and its input — an upper bound on the true
    minimum margin, useful as a MILP warm-start incumbent. *)
