lib/analyzer/analyzer.mli: Ivan_domains Ivan_nn Ivan_spec Ivan_tensor
