lib/analyzer/analyzer.ml: Array Float Ivan_domains Ivan_lp Ivan_nn Ivan_spec Ivan_tensor List
