lib/analyzer/attack.mli: Ivan_nn Ivan_spec Ivan_tensor
