lib/analyzer/attack.ml: Analyzer Float Ivan_nn Ivan_spec Ivan_tensor
