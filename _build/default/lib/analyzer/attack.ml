module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Grad = Ivan_nn.Grad
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop

let default_steps = 40

let default_restarts = 5

let descend ~steps ~step_size net ~prop start =
  let box = prop.Prop.input in
  let x = ref (Vec.copy start) in
  let best = ref (Prop.margin prop (Network.forward net !x)) in
  let best_x = ref (Vec.copy !x) in
  for _ = 1 to steps do
    (* Signed step (FGSM-style) is robust to gradient magnitude. *)
    let g = Grad.objective_gradient net ~c:prop.Prop.c !x in
    let next =
      Box.clamp box
        (Vec.map2
           (fun xi gi ->
             if gi > 0.0 then xi -. step_size else if gi < 0.0 then xi +. step_size else xi)
           !x g)
    in
    x := next;
    let margin = Prop.margin prop (Network.forward net !x) in
    if margin < !best then begin
      best := margin;
      best_x := Vec.copy !x
    end
  done;
  (!best, !best_x)

let run ?(steps = default_steps) ?(restarts = default_restarts) ?step_size ~rng net ~prop =
  let box = prop.Prop.input in
  let step_size =
    match step_size with Some s -> s | None -> Float.max 1e-6 (Box.max_width box /. 10.0)
  in
  let best = ref infinity and best_x = ref (Box.center box) in
  for attempt = 1 to max 1 restarts do
    let start = if attempt = 1 then Box.center box else Box.sample ~rng box in
    let margin, x = descend ~steps ~step_size net ~prop start in
    if margin < !best then begin
      best := margin;
      best_x := x
    end
  done;
  (!best, !best_x)

let best_margin ?steps ?restarts ?step_size ~rng net ~prop =
  run ?steps ?restarts ?step_size ~rng net ~prop

let pgd ?steps ?restarts ?step_size ~rng net ~prop =
  let margin, x = run ?steps ?restarts ?step_size ~rng net ~prop in
  if margin < 0.0 && Analyzer.check_concrete net ~prop x then Some x else None
