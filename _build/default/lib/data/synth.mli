(** Synthetic image classification datasets.

    Substitute for MNIST/CIFAR10: each class is a smooth random
    luminance pattern; samples add Gaussian pixel noise and clip to
    [0, 1].  "mnist-like" uses one channel and well-separated classes;
    "cifar-like" uses three channels and noisier, overlapping classes —
    mirroring the relative hardness of the paper's datasets. *)

type t = {
  inputs : Ivan_tensor.Vec.t array;  (** flattened (C, H, W) pixels in [0, 1] *)
  labels : int array;
  num_classes : int;
  channels : int;
  side : int;
}

val generate :
  rng:Ivan_tensor.Rng.t ->
  channels:int ->
  side:int ->
  num_classes:int ->
  count:int ->
  noise:float ->
  t
(** Balanced dataset of [count] samples.  @raise Invalid_argument on
    non-positive sizes. *)

val mnist_like : rng:Ivan_tensor.Rng.t -> count:int -> t
(** 1 x 8 x 8, 10 classes, mild noise. *)

val cifar_like : rng:Ivan_tensor.Rng.t -> count:int -> t
(** 3 x 8 x 8, 10 classes, heavier noise. *)

val split : t -> train_fraction:float -> t * t
(** Deterministic prefix split (the data is already shuffled). *)
