module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Serialize = Ivan_nn.Serialize
module Sgd = Ivan_train.Sgd

type kind = Acas | Image_classifier

type spec = { name : string; kind : kind; eps : float; seed : int; description : string }

let acas =
  {
    name = "acas";
    kind = Acas;
    eps = 0.0;
    seed = 1001;
    description = "6 x 50 linear layers, 300 neurons, advisory regression";
  }

let fcn_mnist =
  {
    name = "fcn-mnist";
    kind = Image_classifier;
    eps = 0.10;
    seed = 1002;
    description = "2 x 32 linear layers on 1x8x8 synthetic digits";
  }

let conv_mnist =
  {
    name = "conv-mnist";
    kind = Image_classifier;
    eps = 0.06;
    seed = 1003;
    description = "2 conv + 2 linear layers on 1x8x8 synthetic digits";
  }

let conv_cifar =
  {
    name = "conv-cifar";
    kind = Image_classifier;
    eps = 0.05;
    seed = 1004;
    description = "2 conv + 2 linear layers on 3x8x8 synthetic cifar";
  }

let conv_cifar_wide =
  {
    name = "conv-cifar-wide";
    kind = Image_classifier;
    eps = 0.055;
    seed = 1005;
    description = "2 wide conv + 2 linear layers on 3x8x8 synthetic cifar";
  }

let conv_cifar_deep =
  {
    name = "conv-cifar-deep";
    kind = Image_classifier;
    eps = 0.035;
    seed = 1006;
    description = "4 conv + 2 linear layers on 3x8x8 synthetic cifar";
  }

let table1 = [ acas; fcn_mnist; conv_mnist; conv_cifar; conv_cifar_wide; conv_cifar_deep ]

let classifiers = [ fcn_mnist; conv_mnist; conv_cifar; conv_cifar_wide; conv_cifar_deep ]

let find name = List.find (fun s -> s.name = name) table1

let stage out_channels = { Builder.out_channels; kernel = 3; stride = 2; padding = 1 }

let architecture spec rng =
  match spec.name with
  | "acas" -> Ivan_nn.Builder.dense_net ~rng ~dims:[ 5; 50; 50; 50; 50; 50; 50; 5 ]
  | "fcn-mnist" -> Builder.dense_net ~rng ~dims:[ 64; 32; 32; 10 ]
  | "conv-mnist" ->
      Builder.conv_net ~rng ~in_channels:1 ~in_height:8 ~in_width:8
        ~convs:[ stage 4; stage 8 ] ~dense:[ 32; 10 ]
  | "conv-cifar" ->
      Builder.conv_net ~rng ~in_channels:3 ~in_height:8 ~in_width:8
        ~convs:[ stage 4; stage 8 ] ~dense:[ 32; 10 ]
  | "conv-cifar-wide" ->
      Builder.conv_net ~rng ~in_channels:3 ~in_height:8 ~in_width:8
        ~convs:[ stage 8; stage 16 ] ~dense:[ 48; 10 ]
  | "conv-cifar-deep" ->
      Builder.conv_net ~rng ~in_channels:3 ~in_height:8 ~in_width:8
        ~convs:
          [
            { Builder.out_channels = 3; kernel = 3; stride = 1; padding = 1 };
            stage 4;
            { Builder.out_channels = 6; kernel = 3; stride = 1; padding = 1 };
            stage 6;
          ]
        ~dense:[ 24; 10 ]
  | other -> invalid_arg (Printf.sprintf "Zoo.architecture: unknown model %s" other)

let image_data spec ~count rng =
  match spec.name with
  | "fcn-mnist" | "conv-mnist" ->
      let d = Synth.mnist_like ~rng ~count in
      (d.Synth.inputs, d.Synth.labels)
  | "conv-cifar" | "conv-cifar-wide" | "conv-cifar-deep" ->
      let d = Synth.cifar_like ~rng ~count in
      (d.Synth.inputs, d.Synth.labels)
  | other -> invalid_arg (Printf.sprintf "Zoo.image_data: not a classifier: %s" other)

(* Dedicated RNG streams: data generation must be reproducible
   independently of how many RNG draws architecture init or SGD
   shuffling consume. *)
let data_rng spec = Rng.create spec.seed

let arch_rng spec = Rng.create (spec.seed lxor 0x5EED_CAFE)

let sgd_rng spec = Rng.create (spec.seed lxor 0x7EA_0001)

let train_count = 600

let test_count = 200

let training_set spec =
  match spec.kind with
  | Acas -> Acas.dataset ~rng:(data_rng spec) ~count:2000
  | Image_classifier -> image_data spec ~count:train_count (data_rng spec)

let test_set spec =
  match spec.kind with
  | Acas -> Acas.dataset ~rng:(Rng.create (spec.seed + 500_000)) ~count:500
  | Image_classifier ->
      (* Same prototypes and sample stream as training (same seed); the
         tail beyond [train_count] is disjoint fresh data. *)
      let inputs, labels = image_data spec ~count:(train_count + test_count) (data_rng spec) in
      (Array.sub inputs train_count test_count, Array.sub labels train_count test_count)

let untrained spec = architecture spec (arch_rng spec)

let train spec =
  let net = architecture spec (arch_rng spec) in
  let inputs, labels = training_set spec in
  let config =
    match spec.kind with
    | Acas -> { Sgd.default_config with epochs = 40; learning_rate = 0.03 }
    | Image_classifier ->
        (* The deep conv stack diverges at the default rate. *)
        let learning_rate = if spec.name = "conv-cifar-deep" then 0.02 else 0.04 in
        { Sgd.default_config with epochs = 30; learning_rate }
  in
  Sgd.train_classifier ~rng:(sgd_rng spec) ~config net ~inputs ~labels

let cache_dir_default () =
  match Sys.getenv_opt "IVAN_ZOO_CACHE" with Some d -> d | None -> "_zoo_cache"

let load_or_train ?cache_dir spec =
  let dir = match cache_dir with Some d -> d | None -> cache_dir_default () in
  let path = Filename.concat dir (spec.name ^ ".net") in
  if Sys.file_exists path then Serialize.of_file path
  else begin
    let net = train spec in
    (try
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       Serialize.to_file path net
     with Sys_error _ -> () (* caching is best-effort *));
    net
  end

let accuracy spec net =
  let inputs, labels = test_set spec in
  Sgd.accuracy net ~inputs ~labels
