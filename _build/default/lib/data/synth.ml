module Rng = Ivan_tensor.Rng

type t = {
  inputs : Ivan_tensor.Vec.t array;
  labels : int array;
  num_classes : int;
  channels : int;
  side : int;
}

(* A class prototype: per channel, a smooth sinusoidal luminance field
   with class-specific frequency and phase. *)
type prototype = { fx : float array; fy : float array; phase : float array }

let make_prototype rng channels =
  {
    fx = Array.init channels (fun _ -> Rng.uniform rng 0.5 2.5);
    fy = Array.init channels (fun _ -> Rng.uniform rng 0.5 2.5);
    phase = Array.init channels (fun _ -> Rng.uniform rng 0.0 (2.0 *. Float.pi));
  }

let prototype_pixel p ~side ~c ~y ~x =
  let fy = p.fy.(c) and fx = p.fx.(c) and phase = p.phase.(c) in
  let u = float_of_int x /. float_of_int side and v = float_of_int y /. float_of_int side in
  0.5 +. (0.35 *. sin ((2.0 *. Float.pi *. ((fx *. u) +. (fy *. v))) +. phase))

let clip01 v = Float.max 0.0 (Float.min 1.0 v)

let generate ~rng ~channels ~side ~num_classes ~count ~noise =
  if channels <= 0 || side <= 0 || num_classes <= 0 || count <= 0 then
    invalid_arg "Synth.generate: sizes must be positive";
  let prototypes = Array.init num_classes (fun _ -> make_prototype rng channels) in
  let dim = channels * side * side in
  let inputs = Array.make count [||] in
  let labels = Array.make count 0 in
  for i = 0 to count - 1 do
    let label = i mod num_classes in
    labels.(i) <- label;
    let p = prototypes.(label) in
    inputs.(i) <-
      Array.init dim (fun flat ->
          let c = flat / (side * side) in
          let rem = flat mod (side * side) in
          let y = rem / side and x = rem mod side in
          clip01 (prototype_pixel p ~side ~c ~y ~x +. (noise *. Rng.gaussian rng)))
  done;
  (* Order stays round-robin by class (balanced); training shuffles per
     epoch anyway, and a deterministic order keeps prefix/suffix splits
     disjoint across different [count] values on the same seed. *)
  { inputs; labels; num_classes; channels; side }

let mnist_like ~rng ~count =
  generate ~rng ~channels:1 ~side:8 ~num_classes:10 ~count ~noise:0.08

let cifar_like ~rng ~count =
  generate ~rng ~channels:3 ~side:8 ~num_classes:10 ~count ~noise:0.18

let split t ~train_fraction =
  if train_fraction <= 0.0 || train_fraction >= 1.0 then
    invalid_arg "Synth.split: fraction must be in (0, 1)";
  let count = Array.length t.inputs in
  let cut = int_of_float (train_fraction *. float_of_int count) in
  let take lo hi =
    {
      t with
      inputs = Array.sub t.inputs lo (hi - lo);
      labels = Array.sub t.labels lo (hi - lo);
    }
  in
  (take 0 cut, take cut count)
