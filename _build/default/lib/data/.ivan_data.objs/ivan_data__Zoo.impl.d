lib/data/zoo.ml: Acas Array Filename Ivan_nn Ivan_tensor Ivan_train List Printf Synth Sys
