lib/data/acas.ml: Array Float Ivan_domains Ivan_nn Ivan_spec Ivan_tensor Ivan_train List Printf
