lib/data/synth.mli: Ivan_tensor
