lib/data/zoo.mli: Ivan_nn Ivan_tensor
