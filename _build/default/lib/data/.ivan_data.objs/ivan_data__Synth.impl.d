lib/data/synth.ml: Array Float Ivan_tensor
