lib/data/acas.mli: Ivan_nn Ivan_spec Ivan_tensor
