module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Sgd = Ivan_train.Sgd
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop

type advisory = Clear_of_conflict | Weak_left | Strong_left | Weak_right | Strong_right

let advisory_index = function
  | Clear_of_conflict -> 0
  | Weak_left -> 1
  | Strong_left -> 2
  | Weak_right -> 3
  | Strong_right -> 4

let num_advisories = 5

let input_dim = 5

(* State: x = (rho, theta, psi, v_own, v_int), all normalized to [0,1].
   rho: distance to intruder; theta: bearing (0 = far left, 1 = far
   right, 0.5 = dead ahead); psi: relative heading; v_own / v_int:
   speeds.  The advisory logic: distant traffic is clear of conflict;
   close traffic triggers a turn away from the intruder's side, strong
   when the closing urgency (proximity x speeds x head-on geometry) is
   high. *)
let urgency x =
  let rho = x.(0) and psi = x.(2) and v_own = x.(3) and v_int = x.(4) in
  let closing = 0.5 *. (v_own +. v_int) in
  let head_on = 1.0 -. Float.abs (psi -. 0.5) in
  (1.0 -. rho) *. (0.4 +. (0.6 *. closing)) *. (0.6 +. (0.4 *. head_on))

let oracle x =
  if Array.length x <> input_dim then invalid_arg "Acas.oracle: expected a 5-dimensional state";
  let rho = x.(0) and theta = x.(1) in
  if rho > 0.65 then Clear_of_conflict
  else begin
    let u = urgency x in
    if u < 0.18 then Clear_of_conflict
    else if theta >= 0.5 then if u > 0.45 then Strong_left else Weak_left
    else if u > 0.45 then Strong_right
    else Weak_right
  end

let dataset ~rng ~count =
  let inputs = Array.init count (fun _ -> Array.init input_dim (fun _ -> Rng.float rng 1.0)) in
  let labels = Array.map (fun x -> advisory_index (oracle x)) inputs in
  (inputs, labels)

let architecture ~rng = Builder.dense_net ~rng ~dims:[ 5; 50; 50; 50; 50; 50; 50; 5 ]

let train ~rng ?(epochs = 40) ?(samples = 2000) () =
  let net = architecture ~rng in
  let inputs, labels = dataset ~rng ~count:samples in
  let config = { Sgd.default_config with epochs; learning_rate = 0.03 } in
  Sgd.train_classifier ~rng ~config net ~inputs ~labels

let box lo hi = Box.make ~lo:(Vec.of_list lo) ~hi:(Vec.of_list hi)

let property_regions =
  [
    (* phi1-style: distant traffic, whole bearing range. *)
    ("distant", box [ 0.75; 0.0; 0.0; 0.3; 0.3 ] [ 1.0; 1.0; 1.0; 1.0; 1.0 ]);
    (* phi2-style: close, nearly head-on, fast closure. *)
    ("head-on", box [ 0.0; 0.45; 0.4; 0.5; 0.5 ] [ 0.25; 0.55; 0.6; 1.0; 1.0 ]);
    (* phi3-style: close traffic on the left side. *)
    ("left-crossing", box [ 0.1; 0.55; 0.2; 0.3; 0.3 ] [ 0.4; 0.9; 0.8; 0.9; 0.9 ]);
    (* phi4-style: close traffic on the right side, slow intruder. *)
    ("right-crossing", box [ 0.1; 0.1; 0.2; 0.3; 0.1 ] [ 0.4; 0.45; 0.8; 0.9; 0.5 ]);
  ]

(* Properties bound a chosen output score from above on a region, which
   in C^T Y + offset >= 0 form is offset = bound, C = -e_i.  The bound
   is calibrated between a sampled maximum (a lower bound on the true
   maximum) and the zonotope root upper bound (certified): [margin] in
   (0, 1] interpolates — small margins give hard, many-split instances;
   margins near 1 are provable at the root.  This mirrors the varying
   hardness of the VNN-COMP ACAS-XU suite. *)
let properties ~net ~margin ~rng =
  List.map
    (fun (name, region) ->
      let target =
        (* Bound the advisory that should NOT fire in this region:
           distant traffic must keep strong advisories low; close
           traffic must keep clear-of-conflict low. *)
        if name = "distant" then advisory_index Strong_left else advisory_index Clear_of_conflict
      in
      let sampled_max = ref neg_infinity in
      for _ = 1 to 3000 do
        let x = Box.sample ~rng region in
        let y = Network.forward net x in
        sampled_max := Float.max !sampled_max y.(target)
      done;
      let certified_max =
        match Ivan_domains.Zonotope.analyze net ~box:region ~splits:Ivan_domains.Splits.empty with
        | Ivan_domains.Zonotope.Infeasible -> !sampled_max
        | Ivan_domains.Zonotope.Feasible a ->
            let c = Vec.zeros num_advisories in
            c.(target) <- 1.0;
            (Ivan_domains.Zonotope.objective_itv a ~c ~offset:0.0).Ivan_domains.Itv.hi
      in
      let bound = !sampled_max +. (margin *. (certified_max -. !sampled_max)) in
      Prop.output_upper
        ~name:(Printf.sprintf "acas-%s" name)
        ~input:region ~index:target ~bound ~num_outputs:num_advisories)
    property_regions
