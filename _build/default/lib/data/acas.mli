(** ACAS-XU stand-in: a collision-avoidance advisory task.

    The paper evaluates input-splitting BaB on the ACAS-XU networks
    (6 x 50 fully-connected, 5 inputs, 5 advisory outputs) against the
    VNN-COMP property suite.  Neither the pretrained networks nor the
    aviation data are reproducible here, so we model the same shape of
    problem: a geometric advisory function over normalized encounter
    state (distance, bearing, heading, speeds), networks of the same
    6 x 50 architecture trained to mimic it, and box-input / linear-
    output global properties modeled on ACAS-XU phi_1 .. phi_4. *)

(** Advisory classes, mirroring ACAS-XU's five outputs. *)
type advisory = Clear_of_conflict | Weak_left | Strong_left | Weak_right | Strong_right

val advisory_index : advisory -> int

val num_advisories : int

val input_dim : int
(** 5: distance, bearing, relative heading, own speed, intruder speed,
    each normalized to [0, 1]. *)

val oracle : Ivan_tensor.Vec.t -> advisory
(** The ground-truth advisory for a normalized encounter state.
    @raise Invalid_argument on wrong dimension. *)

val dataset : rng:Ivan_tensor.Rng.t -> count:int -> Ivan_tensor.Vec.t array * int array
(** Uniformly sampled states with oracle labels. *)

val architecture : rng:Ivan_tensor.Rng.t -> Ivan_nn.Network.t
(** Untrained 6 x 50 network (5 -> 50 x6 -> 5). *)

val train : rng:Ivan_tensor.Rng.t -> ?epochs:int -> ?samples:int -> unit -> Ivan_nn.Network.t
(** Train the 6 x 50 network on the oracle (defaults: 40 epochs, 2000
    samples). *)

val property_regions : (string * Ivan_spec.Box.t) list
(** Named input regions modeled on the VNN-COMP ACAS-XU properties:
    distant encounters, head-on close encounters, left and right
    crossing traffic. *)

val properties :
  net:Ivan_nn.Network.t -> margin:float -> rng:Ivan_tensor.Rng.t -> Ivan_spec.Prop.t list
(** Calibrated global properties: for each region, bound an output score
    from above.  The bound interpolates between the sampled maximum (a
    lower bound on the truth) and the certified zonotope root upper
    bound: [margin] in (0, 1] controls hardness — small margins force
    many input splits, margins near 1 are provable at the root, exactly
    the hardness spread of the VNN-COMP ACAS-XU suite. *)
