(** The model zoo: Table 1 analogues.

    Six models mirroring the paper's evaluation set — the ACAS-XU
    6 x 50 network and five image classifiers (one fully-connected, four
    convolutional) — scaled down so the hand-rolled LP analyzer handles
    them, trained from scratch on the synthetic datasets.  Training is
    deterministic in the model's seed; [load_or_train] caches trained
    weights on disk so repeated experiment runs skip training. *)

type kind = Acas | Image_classifier

type spec = {
  name : string;
  kind : kind;
  eps : float;  (** Table 1's robustness radius for classifier models *)
  seed : int;
  description : string;  (** architecture summary for the Table 1 printout *)
}

val acas : spec

val fcn_mnist : spec

val conv_mnist : spec

val conv_cifar : spec

val conv_cifar_wide : spec

val conv_cifar_deep : spec

val table1 : spec list
(** All six, in the paper's order. *)

val classifiers : spec list
(** The five image classifiers (everything except ACAS). *)

val find : string -> spec
(** Look up a spec by name.  @raise Not_found. *)

val untrained : spec -> Ivan_nn.Network.t
(** The model's architecture with fresh (untrained) weights — cheap, for
    inspecting shapes and parameter counts. *)

val train : spec -> Ivan_nn.Network.t
(** Train the model from scratch (deterministic in [spec.seed]). *)

val training_set : spec -> Ivan_tensor.Vec.t array * int array
(** The (deterministic) training data used by {!train}. *)

val test_set : spec -> Ivan_tensor.Vec.t array * int array
(** Held-out samples from the same distribution, used to pick
    verification instances. *)

val load_or_train : ?cache_dir:string -> spec -> Ivan_nn.Network.t
(** Load the trained network from [cache_dir] (default
    ["_zoo_cache"], overridable with the [IVAN_ZOO_CACHE] environment
    variable), training and saving it on a cache miss. *)

val accuracy : spec -> Ivan_nn.Network.t -> float
(** Test-set accuracy of a (trained) network for this spec. *)
