module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  momentum : float;
  weight_decay : float;
}

let default_config =
  { epochs = 20; batch_size = 32; learning_rate = 0.05; momentum = 0.9; weight_decay = 0.0 }

(* Mutable mirror of a layer holding parameters, gradient accumulators
   and momentum buffers. *)
type work_layer = {
  spec : Layer.conv_spec option;  (* None for dense *)
  act : Layer.activation;
  w : float array;  (* dense: row-major rows*cols; conv: flat kernel *)
  b : float array;
  gw : float array;
  gb : float array;
  vw : float array;
  vb : float array;
  in_dim : int;
  out_dim : int;
}

let work_of_layer layer =
  match Layer.affine layer with
  | Layer.Dense { weights; bias } ->
      let rows = Mat.rows weights and cols = Mat.cols weights in
      let w = Array.make (rows * cols) 0.0 in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          w.((i * cols) + j) <- Mat.get weights i j
        done
      done;
      {
        spec = None;
        act = Layer.activation layer;
        w;
        b = Array.copy bias;
        gw = Array.make (rows * cols) 0.0;
        gb = Array.make rows 0.0;
        vw = Array.make (rows * cols) 0.0;
        vb = Array.make rows 0.0;
        in_dim = cols;
        out_dim = rows;
      }
  | Layer.Conv2d { spec; kernel; bias } ->
      {
        spec = Some spec;
        act = Layer.activation layer;
        w = Array.copy kernel;
        b = Array.copy bias;
        gw = Array.make (Array.length kernel) 0.0;
        gb = Array.make (Array.length bias) 0.0;
        vw = Array.make (Array.length kernel) 0.0;
        vb = Array.make (Array.length bias) 0.0;
        in_dim = Layer.input_dim layer;
        out_dim = Layer.output_dim layer;
      }

let layer_of_work wl =
  let affine =
    match wl.spec with
    | None ->
        let weights = Mat.init wl.out_dim wl.in_dim (fun i j -> wl.w.((i * wl.in_dim) + j)) in
        Layer.Dense { weights; bias = Array.copy wl.b }
    | Some spec -> Layer.Conv2d { spec; kernel = Array.copy wl.w; bias = Array.copy wl.b }
  in
  Layer.make affine wl.act

let kernel_index (spec : Layer.conv_spec) oc ic kh kw =
  (((((oc * spec.in_channels) + ic) * spec.kernel_h) + kh) * spec.kernel_w) + kw

let pixel_index ~height ~width c y x = (((c * height) + y) * width) + x

let forward_work wl x =
  match wl.spec with
  | None ->
      let out = Array.make wl.out_dim 0.0 in
      for i = 0 to wl.out_dim - 1 do
        let base = i * wl.in_dim in
        let acc = ref wl.b.(i) in
        for j = 0 to wl.in_dim - 1 do
          acc := !acc +. (wl.w.(base + j) *. x.(j))
        done;
        out.(i) <- !acc
      done;
      out
  | Some spec ->
      let oh = Layer.conv_out_height spec and ow = Layer.conv_out_width spec in
      let out = Array.make wl.out_dim 0.0 in
      for oc = 0 to spec.out_channels - 1 do
        for oy = 0 to oh - 1 do
          for ox = 0 to ow - 1 do
            let acc = ref wl.b.(oc) in
            for ic = 0 to spec.in_channels - 1 do
              for kh = 0 to spec.kernel_h - 1 do
                for kw = 0 to spec.kernel_w - 1 do
                  let iy = (oy * spec.stride) + kh - spec.padding in
                  let ix = (ox * spec.stride) + kw - spec.padding in
                  if iy >= 0 && iy < spec.in_height && ix >= 0 && ix < spec.in_width then
                    acc :=
                      !acc
                      +. wl.w.(kernel_index spec oc ic kh kw)
                         *. x.(pixel_index ~height:spec.in_height ~width:spec.in_width ic iy ix)
                done
              done
            done;
            out.(pixel_index ~height:oh ~width:ow oc oy ox) <- !acc
          done
        done
      done;
      out

(* Accumulate gradients for one sample.  [x] is the layer input,
   [delta] is dL/d(pre-activation); returns dL/d(input). *)
let backward_work wl x delta =
  match wl.spec with
  | None ->
      let dx = Array.make wl.in_dim 0.0 in
      for i = 0 to wl.out_dim - 1 do
        let d = delta.(i) in
        if d <> 0.0 then begin
          let base = i * wl.in_dim in
          wl.gb.(i) <- wl.gb.(i) +. d;
          for j = 0 to wl.in_dim - 1 do
            wl.gw.(base + j) <- wl.gw.(base + j) +. (d *. x.(j));
            dx.(j) <- dx.(j) +. (wl.w.(base + j) *. d)
          done
        end
      done;
      dx
  | Some spec ->
      let oh = Layer.conv_out_height spec and ow = Layer.conv_out_width spec in
      let dx = Array.make wl.in_dim 0.0 in
      for oc = 0 to spec.out_channels - 1 do
        for oy = 0 to oh - 1 do
          for ox = 0 to ow - 1 do
            let d = delta.(pixel_index ~height:oh ~width:ow oc oy ox) in
            if d <> 0.0 then begin
              wl.gb.(oc) <- wl.gb.(oc) +. d;
              for ic = 0 to spec.in_channels - 1 do
                for kh = 0 to spec.kernel_h - 1 do
                  for kw = 0 to spec.kernel_w - 1 do
                    let iy = (oy * spec.stride) + kh - spec.padding in
                    let ix = (ox * spec.stride) + kw - spec.padding in
                    if iy >= 0 && iy < spec.in_height && ix >= 0 && ix < spec.in_width then begin
                      let src = pixel_index ~height:spec.in_height ~width:spec.in_width ic iy ix in
                      let ki = kernel_index spec oc ic kh kw in
                      wl.gw.(ki) <- wl.gw.(ki) +. (d *. x.(src));
                      dx.(src) <- dx.(src) +. (wl.w.(ki) *. d)
                    end
                  done
                done
              done
            end
          done
        done
      done;
      dx

let zero_grads layers =
  Array.iter
    (fun wl ->
      Array.fill wl.gw 0 (Array.length wl.gw) 0.0;
      Array.fill wl.gb 0 (Array.length wl.gb) 0.0)
    layers

let apply_update cfg layers batch_count =
  let scale = 1.0 /. float_of_int batch_count in
  Array.iter
    (fun wl ->
      let step arr grad vel =
        for k = 0 to Array.length arr - 1 do
          let g = (grad.(k) *. scale) +. (cfg.weight_decay *. arr.(k)) in
          vel.(k) <- (cfg.momentum *. vel.(k)) +. g;
          arr.(k) <- arr.(k) -. (cfg.learning_rate *. vel.(k))
        done
      in
      step wl.w wl.gw wl.vw;
      step wl.b wl.gb wl.vb)
    layers

let softmax logits =
  let m = Vec.max_elt logits in
  let exps = Array.map (fun v -> exp (v -. m)) logits in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps

(* Shared training loop; [output_delta logits sample_index] gives
   dL/d(network output) for one sample. *)
let train_loop ~rng ~cfg net ~inputs ~output_delta =
  if Array.length inputs = 0 then invalid_arg "Sgd: empty training set";
  let layers = Array.map work_of_layer (Network.layers net) in
  let count = Array.length inputs in
  let order = Array.init count (fun i -> i) in
  for _epoch = 1 to cfg.epochs do
    Rng.shuffle rng order;
    let pos = ref 0 in
    while !pos < count do
      let batch_end = min count (!pos + cfg.batch_size) in
      let batch_count = batch_end - !pos in
      zero_grads layers;
      for b = !pos to batch_end - 1 do
        let sample = order.(b) in
        let x = inputs.(sample) in
        (* Forward, keeping per-layer inputs and pre-activations. *)
        let layer_inputs = Array.make (Array.length layers) [||] in
        let pres = Array.make (Array.length layers) [||] in
        let current = ref x in
        Array.iteri
          (fun i wl ->
            layer_inputs.(i) <- !current;
            let pre = forward_work wl !current in
            pres.(i) <- pre;
            current := Layer.apply_activation wl.act pre)
          layers;
        (* Backward. *)
        let delta = ref (output_delta !current sample) in
        for i = Array.length layers - 1 downto 0 do
          let wl = layers.(i) in
          let d_pre =
            match Layer.classify wl.act with
            | Layer.Linear_activation -> !delta
            | Layer.Piecewise slope ->
                Array.mapi (fun k d -> if pres.(i).(k) > 0.0 then d else slope *. d) !delta
            | Layer.Smooth { df; f = _ } ->
                Array.mapi (fun k d -> d *. df pres.(i).(k)) !delta
          in
          delta := backward_work wl layer_inputs.(i) d_pre
        done
      done;
      apply_update cfg layers batch_count;
      pos := batch_end
    done
  done;
  Network.make (Array.to_list (Array.map layer_of_work layers))

let train_classifier ~rng ~config net ~inputs ~labels =
  if Array.length inputs <> Array.length labels then
    invalid_arg "Sgd.train_classifier: inputs and labels differ in length";
  let output_delta logits sample =
    let p = softmax logits in
    let d = Array.copy p in
    d.(labels.(sample)) <- d.(labels.(sample)) -. 1.0;
    d
  in
  train_loop ~rng ~cfg:config net ~inputs ~output_delta

let train_regressor ~rng ~config net ~inputs ~targets =
  if Array.length inputs <> Array.length targets then
    invalid_arg "Sgd.train_regressor: inputs and targets differ in length";
  let output_delta out sample =
    let t = targets.(sample) in
    let scale = 2.0 /. float_of_int (Array.length out) in
    Array.mapi (fun k v -> scale *. (v -. t.(k))) out
  in
  train_loop ~rng ~cfg:config net ~inputs ~output_delta

let accuracy net ~inputs ~labels =
  if Array.length inputs = 0 then invalid_arg "Sgd.accuracy: empty dataset";
  let correct = ref 0 in
  Array.iteri
    (fun i x -> if Vec.argmax (Network.forward net x) = labels.(i) then incr correct)
    inputs;
  float_of_int !correct /. float_of_int (Array.length inputs)

let mean_squared_error net ~inputs ~targets =
  if Array.length inputs = 0 then invalid_arg "Sgd.mean_squared_error: empty dataset";
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let diff = Vec.sub (Network.forward net x) targets.(i) in
      acc := !acc +. (Vec.dot diff diff /. float_of_int (Vec.dim diff)))
    inputs;
  !acc /. float_of_int (Array.length inputs)

let cross_entropy net ~inputs ~labels =
  if Array.length inputs = 0 then invalid_arg "Sgd.cross_entropy: empty dataset";
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let p = softmax (Network.forward net x) in
      acc := !acc -. log (Float.max 1e-12 p.(labels.(i))))
    inputs;
  !acc /. float_of_int (Array.length inputs)
