(** Mini-batch stochastic gradient descent.

    A small, dependency-free trainer used to manufacture the model zoo:
    the paper evaluates pretrained MNIST/CIFAR/ACAS-XU networks, which we
    substitute by training scaled-down analogues from scratch on
    synthetic data.  Gradients are computed by hand-rolled
    backpropagation through dense and convolutional layers. *)

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  momentum : float;  (** classical momentum; 0 disables it *)
  weight_decay : float;  (** L2 penalty coefficient; 0 disables it *)
}

val default_config : config
(** 20 epochs, batch 32, lr 0.05, momentum 0.9, no weight decay. *)

val train_classifier :
  rng:Ivan_tensor.Rng.t ->
  config:config ->
  Ivan_nn.Network.t ->
  inputs:Ivan_tensor.Vec.t array ->
  labels:int array ->
  Ivan_nn.Network.t
(** Minimize softmax cross-entropy.  Labels index network outputs.
    @raise Invalid_argument on empty data or mismatched lengths. *)

val train_regressor :
  rng:Ivan_tensor.Rng.t ->
  config:config ->
  Ivan_nn.Network.t ->
  inputs:Ivan_tensor.Vec.t array ->
  targets:Ivan_tensor.Vec.t array ->
  Ivan_nn.Network.t
(** Minimize mean squared error against vector targets. *)

val accuracy : Ivan_nn.Network.t -> inputs:Ivan_tensor.Vec.t array -> labels:int array -> float
(** Fraction of inputs whose argmax output matches the label. *)

val mean_squared_error :
  Ivan_nn.Network.t -> inputs:Ivan_tensor.Vec.t array -> targets:Ivan_tensor.Vec.t array -> float

val cross_entropy :
  Ivan_nn.Network.t -> inputs:Ivan_tensor.Vec.t array -> labels:int array -> float
(** Mean softmax cross-entropy loss over the dataset. *)
