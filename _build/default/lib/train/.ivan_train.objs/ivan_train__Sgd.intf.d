lib/train/sgd.mli: Ivan_nn Ivan_tensor
