lib/train/sgd.ml: Array Float Ivan_nn Ivan_tensor
