lib/spectree/decision.mli: Format Ivan_domains Ivan_nn
