lib/spectree/decision.ml: Format Int Ivan_domains Ivan_nn Printf String
