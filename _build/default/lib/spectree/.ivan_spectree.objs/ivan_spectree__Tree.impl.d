lib/spectree/tree.ml: Buffer Decision Float Format Ivan_domains Ivan_spec List Printf String
