lib/spectree/tree.mli: Decision Format Ivan_domains Ivan_spec
