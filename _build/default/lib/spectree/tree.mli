(** The specification tree (Definition 8).

    A rooted full binary tree recording the trace of BaB: the root
    stands for the whole property [(phi, psi)]; an internal node's two
    out-edges carry the two sides of its branching decision; every node
    stores the analyzer's lower bound [LB_N(n)] for its subproblem.

    The tree is the carrier of incremental verification: built while
    verifying [N], then pruned/reused to seed the verification of the
    updated [N^a] (paper §4).  Trees are mutable (BaB extends them in
    place); {!copy} gives an independent clone. *)

type t

type node

val create : unit -> t
(** A fresh tree with a single root node encoding [(phi, psi)]. *)

val root : t -> node

val node_id : node -> int
(** Stable within a tree; the root has id 0. *)

val is_leaf : node -> bool

val decision : node -> Decision.t option
(** The branching decision taken at this node, if internal. *)

val children : node -> (node * node) option
(** [(left, right)] children, present iff the node is internal. *)

val parent : node -> node option

val edge : node -> (Decision.t * Decision.side) option
(** The labelled edge from the parent into this node; [None] at root. *)

val lb : node -> float
(** The recorded [LB_N(n)]; [nan] until {!set_lb} is called. *)

val set_lb : node -> float -> unit

val split : t -> node -> Decision.t -> node * node
(** Algorithm 2: attach two children to a leaf.
    @raise Invalid_argument if the node is internal, or if a ReLU split
    repeats one already taken on the path from the root (a BaB path
    never re-splits the same ReLU; re-halving an input dimension is
    legitimate refinement and allowed). *)

val leaves : t -> node list
(** Left-to-right leaf order (deterministic). *)

val size : t -> int
(** [|Nodes(T)|]. *)

val num_leaves : t -> int

val depth : t -> int
(** Edge-count height; 0 for a single-node tree. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Pre-order traversal. *)

val internal_nodes : t -> node list

val path_decisions : node -> (Decision.t * Decision.side) list
(** Root-to-node list of labelled edges. *)

val subproblem : root_box:Ivan_spec.Box.t -> node -> Ivan_spec.Box.t * Ivan_domains.Splits.t
(** The specification split encoded by the node (Definition 7): the
    refined input box (input splits applied root-down) and the assumed
    ReLU phases. *)

val copy : t -> t
(** Deep copy preserving ids, decisions and LB annotations. *)

val well_formed : t -> bool
(** Structural invariant behind Lemma 1: every internal node has exactly
    two children on complementary sides of its decision, and no ReLU
    split repeats along any root-to-leaf path. *)

val to_string : t -> string
(** Serialize structure, decisions and LB values. *)

val of_string : string -> t
(** @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Compact ASCII rendering for debugging. *)

val to_dot : t -> string
(** Graphviz rendering: nodes labelled with id and LB, edges with the
    split predicate ([r+]/[r-] or the input half). *)
