(** Branching decisions labelling specification-tree edges.

    A decision at a node says how its subproblem was partitioned: by
    splitting a ReLU's phase (the paper's main setting) or by halving an
    input dimension (the ACAS-XU setting of §6.4).  The two children of
    a node take the two sides of the decision. *)

type t = Relu_split of Ivan_nn.Relu_id.t | Input_split of int

type side = Left | Right
(** [Left] is the [r+] (respectively lower-half) child; [Right] is [r-]
    (upper half). *)

val compare : t -> t -> int

val equal : t -> t -> bool

val other_side : side -> side

val relu_phase : side -> Ivan_domains.Splits.phase
(** Phase assumed by the child on the given side of a ReLU split. *)

val pp : Format.formatter -> t -> unit

val pp_edge : Format.formatter -> t * side -> unit

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}.  @raise Failure on malformed input. *)
