module Relu_id = Ivan_nn.Relu_id
module Splits = Ivan_domains.Splits

type t = Relu_split of Relu_id.t | Input_split of int

type side = Left | Right

let compare a b =
  match (a, b) with
  | Relu_split ra, Relu_split rb -> Relu_id.compare ra rb
  | Relu_split _, Input_split _ -> -1
  | Input_split _, Relu_split _ -> 1
  | Input_split da, Input_split db -> Int.compare da db

let equal a b = compare a b = 0

let other_side = function Left -> Right | Right -> Left

let relu_phase = function Left -> Splits.Pos | Right -> Splits.Neg

let pp fmt = function
  | Relu_split r -> Relu_id.pp fmt r
  | Input_split d -> Format.fprintf fmt "x[%d]" d

let pp_edge fmt (d, side) =
  match d with
  | Relu_split r -> Format.fprintf fmt "%a%s" Relu_id.pp r (match side with Left -> "+" | Right -> "-")
  | Input_split dim ->
      Format.fprintf fmt "x[%d]%s" dim (match side with Left -> "lo" | Right -> "hi")

let to_string = function
  | Relu_split r -> Printf.sprintf "relu %d %d" r.Relu_id.layer r.Relu_id.index
  | Input_split d -> Printf.sprintf "input %d" d

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "relu"; layer; index ] ->
      Relu_split (Relu_id.make ~layer:(int_of_string layer) ~index:(int_of_string index))
  | [ "input"; d ] -> Input_split (int_of_string d)
  | _ -> failwith (Printf.sprintf "Decision.of_string: malformed %S" s)
