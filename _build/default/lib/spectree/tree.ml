module Box = Ivan_spec.Box
module Splits = Ivan_domains.Splits

type node = {
  id : int;
  mutable decision : Decision.t option;
  mutable kids : (node * node) option;
  mutable lb_value : float;
  parent_link : node option;
  edge_label : (Decision.t * Decision.side) option;
}

type t = { mutable next_id : int; root_node : node }

let fresh_node t ~parent ~edge =
  let id = t.next_id in
  t.next_id <- id + 1;
  { id; decision = None; kids = None; lb_value = nan; parent_link = parent; edge_label = edge }

let create () =
  let root =
    { id = 0; decision = None; kids = None; lb_value = nan; parent_link = None; edge_label = None }
  in
  { next_id = 1; root_node = root }

let root t = t.root_node

let node_id n = n.id

let is_leaf n = n.kids = None

let decision n = n.decision

let children n = n.kids

let parent n = n.parent_link

let edge n = n.edge_label

let lb n = n.lb_value

let set_lb n v = n.lb_value <- v

let rec path_on p n =
  match n.parent_link with
  | None -> false
  | Some up -> (
      match up.decision with
      | Some d when Decision.equal d p -> true
      | Some _ | None -> path_on p up)

(* Re-splitting the same ReLU on a path is meaningless (its phase is
   already fixed); re-halving the same input dimension is legitimate
   refinement. *)
let repeat_forbidden = function Decision.Relu_split _ -> true | Decision.Input_split _ -> false

let split t n d =
  if not (is_leaf n) then invalid_arg "Tree.split: node is not a leaf";
  if repeat_forbidden d && path_on d n then
    invalid_arg "Tree.split: decision already taken on this path";
  let left = fresh_node t ~parent:(Some n) ~edge:(Some (d, Decision.Left)) in
  let right = fresh_node t ~parent:(Some n) ~edge:(Some (d, Decision.Right)) in
  n.decision <- Some d;
  n.kids <- Some (left, right);
  (left, right)

let rec fold_nodes f acc n =
  let acc = f acc n in
  match n.kids with None -> acc | Some (l, r) -> fold_nodes f (fold_nodes f acc l) r

let leaves t =
  List.rev (fold_nodes (fun acc n -> if is_leaf n then n :: acc else acc) [] t.root_node)

let size t = fold_nodes (fun acc _ -> acc + 1) 0 t.root_node

let num_leaves t = fold_nodes (fun acc n -> if is_leaf n then acc + 1 else acc) 0 t.root_node

let depth t =
  let rec go n = match n.kids with None -> 0 | Some (l, r) -> 1 + max (go l) (go r) in
  go t.root_node

let iter_nodes t f = fold_nodes (fun () n -> f n) () t.root_node

let internal_nodes t =
  List.rev (fold_nodes (fun acc n -> if is_leaf n then acc else n :: acc) [] t.root_node)

let path_decisions n =
  let rec up acc n = match (n.parent_link, n.edge_label) with
    | None, _ -> acc
    | Some p, Some e -> up (e :: acc) p
    | Some _, None -> assert false
  in
  up [] n

let subproblem ~root_box n =
  List.fold_left
    (fun (box, splits) (d, side) ->
      match d with
      | Decision.Relu_split r -> (box, Splits.add r (Decision.relu_phase side) splits)
      | Decision.Input_split dim ->
          let lo_half, hi_half = Box.split_dim box dim in
          ((match side with Decision.Left -> lo_half | Decision.Right -> hi_half), splits))
    (root_box, Splits.empty) (path_decisions n)

let copy t =
  let rec clone parent edge n =
    let fresh =
      {
        id = n.id;
        decision = n.decision;
        kids = None;
        lb_value = n.lb_value;
        parent_link = parent;
        edge_label = edge;
      }
    in
    (match n.kids with
    | None -> ()
    | Some (l, r) ->
        let cl = clone (Some fresh) l.edge_label l in
        let cr = clone (Some fresh) r.edge_label r in
        fresh.kids <- Some (cl, cr));
    fresh
  in
  { next_id = t.next_id; root_node = clone None None t.root_node }

let well_formed t =
  let ok = ref true in
  let rec check seen n =
    match (n.decision, n.kids) with
    | None, None -> ()
    | Some d, Some (l, r) ->
        if repeat_forbidden d && List.exists (Decision.equal d) seen then ok := false;
        (match (l.edge_label, r.edge_label) with
        | Some (dl, Decision.Left), Some (dr, Decision.Right)
          when Decision.equal dl d && Decision.equal dr d ->
            ()
        | _, _ -> ok := false);
        let seen = d :: seen in
        check seen l;
        check seen r
    | Some _, None | None, Some _ -> ok := false
  in
  check [] t.root_node;
  !ok

(* ---------------- serialization ---------------- *)

let float_to_token v =
  if Float.is_nan v then "nan"
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else Printf.sprintf "%h" v

let float_of_token = function
  | "nan" -> nan
  | "inf" -> infinity
  | "-inf" -> neg_infinity
  | s -> float_of_string s

let to_string t =
  let buf = Buffer.create 1024 in
  let rec emit n =
    match n.decision with
    | None -> Buffer.add_string buf (Printf.sprintf "leaf %d %s\n" n.id (float_to_token n.lb_value))
    | Some d ->
        Buffer.add_string buf
          (Printf.sprintf "node %d %s %s\n" n.id (float_to_token n.lb_value) (Decision.to_string d));
        (match n.kids with
        | Some (l, r) ->
            emit l;
            emit r
        | None -> assert false)
  in
  emit t.root_node;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  let lines = ref lines in
  let next () =
    match !lines with
    | [] -> failwith "Tree.of_string: unexpected end of input"
    | l :: rest ->
        lines := rest;
        String.trim l
  in
  let max_id = ref 0 in
  let rec parse parent edge =
    let line = next () in
    match String.split_on_char ' ' line with
    | "leaf" :: id :: lbtok :: [] ->
        let id = int_of_string id in
        max_id := max !max_id id;
        {
          id;
          decision = None;
          kids = None;
          lb_value = float_of_token lbtok;
          parent_link = parent;
          edge_label = edge;
        }
    | "node" :: id :: lbtok :: dtokens ->
        let id = int_of_string id in
        max_id := max !max_id id;
        let d = Decision.of_string (String.concat " " dtokens) in
        let n =
          {
            id;
            decision = Some d;
            kids = None;
            lb_value = float_of_token lbtok;
            parent_link = parent;
            edge_label = edge;
          }
        in
        let l = parse (Some n) (Some (d, Decision.Left)) in
        let r = parse (Some n) (Some (d, Decision.Right)) in
        n.kids <- Some (l, r);
        n
    | _ -> failwith (Printf.sprintf "Tree.of_string: malformed line %S" line)
  in
  let root = parse None None in
  if !lines <> [] then failwith "Tree.of_string: trailing input";
  { next_id = !max_id + 1; root_node = root }

let pp fmt t =
  let rec go indent n =
    let lbs = if Float.is_nan n.lb_value then "?" else Printf.sprintf "%.4g" n.lb_value in
    (match n.edge_label with
    | None -> Format.fprintf fmt "%s#%d lb=%s" indent n.id lbs
    | Some e -> Format.fprintf fmt "%s%a -> #%d lb=%s" indent Decision.pp_edge e n.id lbs);
    Format.pp_print_newline fmt ();
    match n.kids with
    | None -> ()
    | Some (l, r) ->
        go (indent ^ "  ") l;
        go (indent ^ "  ") r
  in
  go "" t.root_node

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph spectree {\n  node [shape=box, fontsize=10];\n";
  let rec emit n =
    let lb =
      if Float.is_nan n.lb_value then "?"
      else if n.lb_value = infinity then "inf"
      else Printf.sprintf "%.3g" n.lb_value
    in
    let fill = if n.kids = None then ", style=filled, fillcolor=lightgrey" else "" in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"#%d\\nlb=%s\"%s];\n" n.id n.id lb fill);
    match n.kids with
    | None -> ()
    | Some (l, r) ->
        let edge child =
          let label =
            match child.edge_label with
            | Some e -> Format.asprintf "%a" Decision.pp_edge e
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\", fontsize=9];\n" n.id child.id label)
        in
        edge l;
        edge r;
        emit l;
        emit r
  in
  emit t.root_node;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
