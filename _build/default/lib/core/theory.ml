module Vec = Ivan_tensor.Vec
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Bounds = Ivan_domains.Bounds
module Analyzer = Ivan_analyzer.Analyzer
module Tree = Ivan_spectree.Tree

let leaf_outcome ~analyzer net ~prop leaf =
  let box, splits = Tree.subproblem ~root_box:prop.Prop.input leaf in
  analyzer.Analyzer.run net ~prop ~box ~splits

let fold_leaves ~analyzer net ~prop tree ~init ~f =
  List.fold_left
    (fun acc leaf -> f acc (leaf_outcome ~analyzer net ~prop leaf))
    init (Tree.leaves tree)

let leaf_objective_lb ~analyzer net ~prop tree =
  fold_leaves ~analyzer net ~prop tree ~init:infinity ~f:(fun acc outcome ->
      Float.min acc outcome.Analyzer.lb)

(* L2-norm bound of the penultimate layer's post-activations for one
   leaf, from the analyzer's per-neuron bounds; the input box itself
   plays that role for single-layer networks. *)
let leaf_eta net ~prop outcome =
  let penultimate = Network.num_layers net - 2 in
  if penultimate < 0 then begin
    let box = prop.Prop.input in
    let acc = ref 0.0 in
    for j = 0 to Box.dim box - 1 do
      let m = Float.max (Float.abs (Box.lo_at box j)) (Float.abs (Box.hi_at box j)) in
      acc := !acc +. (m *. m)
    done;
    Some (sqrt !acc)
  end
  else
    match outcome.Analyzer.bounds with
    | None -> None (* vacuous leaf: contributes nothing *)
    | Some bounds ->
        let layer = bounds.Bounds.layers.(penultimate) in
        let acc = ref 0.0 in
        for j = 0 to Vec.dim layer.Bounds.post_lo - 1 do
          let m =
            Float.max (Float.abs layer.Bounds.post_lo.(j)) (Float.abs layer.Bounds.post_hi.(j))
          in
          acc := !acc +. (m *. m)
        done;
        Some (sqrt !acc)

let eta ~analyzer net ~prop tree =
  fold_leaves ~analyzer net ~prop tree ~init:0.0 ~f:(fun acc outcome ->
      match leaf_eta net ~prop outcome with None -> acc | Some v -> Float.max acc v)

let delta_bound ~analyzer net ~prop tree =
  let lb = leaf_objective_lb ~analyzer net ~prop tree in
  let e = eta ~analyzer net ~prop tree in
  let cnorm = Vec.norm2 prop.Prop.c in
  if e = 0.0 || cnorm = 0.0 || lb = infinity then infinity
  else Float.abs lb /. (cnorm *. e)

let verified_with_tree ~analyzer net ~prop tree =
  List.for_all
    (fun leaf ->
      match (leaf_outcome ~analyzer net ~prop leaf).Analyzer.status with
      | Analyzer.Verified -> true
      | Analyzer.Counterexample _ | Analyzer.Unknown -> false)
    (Tree.leaves tree)
