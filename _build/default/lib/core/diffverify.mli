(** Complete and incremental differential verification.

    Decides [forall x in box: ||N(x) - N'(x)||_inf <= delta] exactly by
    verifying, on the {!Ivan_nn.Product} network, the 2m linear
    properties [delta - (y_i - y'_i) >= 0] and [delta + (y_i - y'_i) >= 0]
    with BaB.  Because the product of [N] with any same-architecture
    update is itself architecture-stable, the specification trees of one
    differential proof seed the next — incremental differential
    verification over a sequence of updated networks (the direction the
    paper's §7 sketches on top of ReluDiff). *)

type verdict =
  | Equivalent
  | Deviation of Ivan_tensor.Vec.t
      (** concrete input where some output pair differs by more than
          delta *)
  | Unknown  (** some sub-property exhausted its budget *)

type proof = {
  verdict : verdict;
  runs : Ivan_bab.Bab.run list;  (** one per directional output property *)
  total_calls : int;
}

val properties :
  outputs:int -> box:Ivan_spec.Box.t -> delta:float -> Ivan_spec.Prop.t list
(** The 2m product-network properties.  @raise Invalid_argument if
    [delta < 0] or [outputs <= 0]. *)

val verify :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?budget:Ivan_bab.Bab.budget ->
  Ivan_nn.Network.t ->
  Ivan_nn.Network.t ->
  box:Ivan_spec.Box.t ->
  delta:float ->
  proof
(** From-scratch complete differential verification. *)

val verify_incremental :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?config:Ivan.config ->
  previous:proof ->
  Ivan_nn.Network.t ->
  Ivan_nn.Network.t ->
  box:Ivan_spec.Box.t ->
  delta:float ->
  proof
(** Differentially verify a new pair by reusing the per-property proof
    trees of [previous] (which must come from a pair of the same
    architecture, e.g. the same original against an earlier update). *)
