module Tree = Ivan_spectree.Tree
module Decision = Ivan_spectree.Decision

let lb_clamp = 1e6

let clamp v =
  if Float.is_nan v then nan
  else if v > lb_clamp then lb_clamp
  else if v < -.lb_clamp then -.lb_clamp
  else v

let improvement node =
  match Tree.children node with
  | None -> None
  | Some (l, r) ->
      let lb_n = clamp (Tree.lb node) in
      let lb_l = clamp (Tree.lb l) in
      let lb_r = clamp (Tree.lb r) in
      if Float.is_nan lb_n || Float.is_nan lb_l || Float.is_nan lb_r then None
      else Some (Float.min (lb_l -. lb_n) (lb_r -. lb_n))

module Dmap = Map.Make (struct
  type t = Decision.t

  let compare = Decision.compare
end)

type table = float Dmap.t

let observe tree =
  let sums = ref Dmap.empty in
  Tree.iter_nodes tree (fun n ->
      match (Tree.decision n, improvement n) with
      | Some d, Some imp ->
          let total, count = match Dmap.find_opt d !sums with None -> (0.0, 0) | Some tc -> tc in
          sums := Dmap.add d (total +. imp, count + 1) !sums
      | Some _, None | None, _ -> ());
  Dmap.map (fun (total, count) -> total /. float_of_int count) !sums

let score table d = Dmap.find_opt d table

let max_abs_score table = Dmap.fold (fun _ v acc -> Float.max acc (Float.abs v)) table 0.0

let bindings table = Dmap.bindings table
