(** Network perturbation bounds (paper §4.4, Theorem 4).

    For last-layer perturbations with Frobenius norm at most
    [delta <= |LB(F(N_l, T))| / (||C||_2 * eta(N, T))], proving or
    disproving the property with specification tree [T] transfers from
    [N] to the perturbed network.  The quantities are computed with the
    same analyzer [A] the verifier uses, evaluated on the tree's leaf
    subproblems: [LB(F(N_l, T))] is the least leaf objective bound, and
    [eta] bounds the L2 norm of the penultimate layer's activations. *)

val leaf_objective_lb :
  analyzer:Ivan_analyzer.Analyzer.t ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_spectree.Tree.t ->
  float
(** [min] over leaves of the analyzer's objective lower bound; [+inf]
    when every leaf region is empty. *)

val eta :
  analyzer:Ivan_analyzer.Analyzer.t ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_spectree.Tree.t ->
  float
(** [eta(N, T)]: max over leaves of the L2-norm bound on the
    penultimate layer's output (from the analyzer's per-neuron bounds). *)

val delta_bound :
  analyzer:Ivan_analyzer.Analyzer.t ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_spectree.Tree.t ->
  float
(** Theorem 4's perturbation budget; [+inf] if the penultimate layer is
    identically zero or every leaf is vacuous. *)

val verified_with_tree :
  analyzer:Ivan_analyzer.Analyzer.t ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_spectree.Tree.t ->
  bool
(** [V_T(N, T)]: every leaf subproblem is proved by the analyzer without
    further branching. *)
