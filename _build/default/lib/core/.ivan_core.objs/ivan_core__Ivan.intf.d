lib/core/ivan.mli: Ivan_analyzer Ivan_bab Ivan_nn Ivan_spec Ivan_spectree
