lib/core/theory.mli: Ivan_analyzer Ivan_nn Ivan_spec Ivan_spectree
