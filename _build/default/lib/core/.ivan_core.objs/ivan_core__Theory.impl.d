lib/core/theory.ml: Array Float Ivan_analyzer Ivan_domains Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor List
