lib/core/proof.ml: Fun In_channel Ivan_bab Ivan_spec Ivan_spectree Printf String
