lib/core/prune.mli: Ivan_spectree
