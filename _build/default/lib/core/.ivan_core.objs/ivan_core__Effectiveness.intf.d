lib/core/effectiveness.mli: Ivan_spectree
