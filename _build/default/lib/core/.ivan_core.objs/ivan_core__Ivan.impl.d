lib/core/ivan.ml: Effectiveness Hdelta Ivan_bab Ivan_nn List Prune
