lib/core/effectiveness.ml: Float Ivan_spectree Map
