lib/core/prune.ml: Effectiveness Float Ivan_spectree Queue
