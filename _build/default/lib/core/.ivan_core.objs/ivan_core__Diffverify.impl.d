lib/core/diffverify.ml: Array Ivan Ivan_bab Ivan_nn Ivan_spec Ivan_tensor List Printf
