lib/core/hdelta.mli: Effectiveness Ivan_bab
