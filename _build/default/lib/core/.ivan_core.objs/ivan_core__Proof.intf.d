lib/core/proof.mli: Ivan_bab Ivan_spec Ivan_spectree
