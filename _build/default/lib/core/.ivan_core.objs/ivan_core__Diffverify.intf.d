lib/core/diffverify.mli: Ivan Ivan_analyzer Ivan_bab Ivan_nn Ivan_spec Ivan_tensor
