lib/core/hdelta.ml: Effectiveness Float Ivan_bab List Printf
