(** Observed split effectiveness (paper Equations 5 and 6).

    From the final specification tree of verifying [N], each internal
    node [n] split by decision [r] yields the improvement
    [I_N(n, r) = min(LB(n_l) - LB(n), LB(n_r) - LB(n))]; the observed
    score [H_obs(r)] averages the improvement over every node where [r]
    was split.  Infinite LB values (vacuously verified children) are
    clamped so scores stay finite. *)

val lb_clamp : float
(** Magnitude to which node LB values are clamped (1e6). *)

val improvement : Ivan_spectree.Tree.node -> float option
(** [I_N(n, r)] for an internal node; [None] for leaves and for nodes
    missing an LB on themselves or a child. *)

type table
(** [H_obs]: observed effectiveness per decision. *)

val observe : Ivan_spectree.Tree.t -> table
(** Equation 6 over the whole tree. *)

val score : table -> Ivan_spectree.Decision.t -> float option
(** [H_obs(r)]; [None] when [r] was never split in the observed tree. *)

val max_abs_score : table -> float
(** Largest |H_obs| in the table; [0.] for an empty table.  Used to
    normalize observed scores against heuristic scores. *)

val bindings : table -> (Ivan_spectree.Decision.t * float) list
(** Sorted by decision. *)
