module Heuristic = Ivan_bab.Heuristic

let make ~base ~observed ~alpha ~theta =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Hdelta.make: alpha must be in [0, 1]";
  let obs_norm = Effectiveness.max_abs_score observed in
  let scores ctx =
    let raw = base.Heuristic.scores ctx in
    let base_norm =
      List.fold_left (fun acc (_, s) -> Float.max acc (Float.abs s)) 0.0 raw
    in
    let normalize norm s = if norm > 0.0 then s /. norm else s in
    List.map
      (fun (d, s) ->
        let observed_term =
          match Effectiveness.score observed d with
          | None -> 0.0
          | Some h_obs -> normalize obs_norm h_obs -. theta
        in
        (d, (alpha *. normalize base_norm s) +. ((1.0 -. alpha) *. observed_term)))
      raw
  in
  { Heuristic.name = Printf.sprintf "hdelta(%s,a=%g,t=%g)" base.Heuristic.name alpha theta; scores }
