(** The augmented branching heuristic [H_Delta] (paper Equation 7).

    [H_Delta(n, r) = alpha * H(n, r) + (1 - alpha) * (H_obs(r) - theta)].

    The base heuristic's scores and the observed scores live on
    different scales (zonotope coefficients vs. LB improvements), so
    both are normalized to at most 1 in magnitude — base scores within
    each node's candidate list, observed scores over the whole table —
    before mixing.  Decisions that were never observed keep a neutral
    observed term of 0 (neither boosted nor penalized). *)

val make :
  base:Ivan_bab.Heuristic.t ->
  observed:Effectiveness.table ->
  alpha:float ->
  theta:float ->
  Ivan_bab.Heuristic.t
(** @raise Invalid_argument unless [0 <= alpha <= 1]. *)
