(** Persistent proofs.

    The deliverable of a verification run that incremental verification
    consumes later — possibly in another process, after the network has
    been re-quantized or fine-tuned: the property's identity, the
    verdict, and the final specification tree with its LB annotations.
    Stored as a small text format (the tree uses
    {!Ivan_spectree.Tree.to_string}). *)

type verdict = Proved | Disproved | Exhausted

type t = {
  property_name : string;
  verdict : verdict;
  analyzer_calls : int;
  tree : Ivan_spectree.Tree.t;
}

val of_run : prop:Ivan_spec.Prop.t -> Ivan_bab.Bab.run -> t

val verdict_of_run : Ivan_bab.Bab.run -> verdict

val to_string : t -> string

val of_string : string -> t
(** @raise Failure on malformed input. *)

val to_file : string -> t -> unit

val of_file : string -> t
(** @raise Sys_error / [Failure]. *)
