module Vec = Ivan_tensor.Vec
module Network = Ivan_nn.Network
module Product = Ivan_nn.Product
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Bab = Ivan_bab.Bab

type verdict = Equivalent | Deviation of Vec.t | Unknown

type proof = { verdict : verdict; runs : Bab.run list; total_calls : int }

let properties ~outputs ~box ~delta =
  if delta < 0.0 then invalid_arg "Diffverify.properties: negative delta";
  if outputs <= 0 then invalid_arg "Diffverify.properties: need at least one output";
  List.concat_map
    (fun i ->
      let c_upper = Vec.zeros (2 * outputs) in
      (* delta - (y_i - y'_i) >= 0 *)
      c_upper.(i) <- -1.0;
      c_upper.(outputs + i) <- 1.0;
      let c_lower = Vec.map (fun v -> -.v) c_upper in
      [
        Prop.make ~name:(Printf.sprintf "diff-upper-%d" i) ~input:box ~c:c_upper ~offset:delta;
        Prop.make ~name:(Printf.sprintf "diff-lower-%d" i) ~input:box ~c:c_lower ~offset:delta;
      ])
    (List.init outputs (fun i -> i))

(* Combine per-property verdicts; a single counterexample input in the
   product is an input where the pair deviates. *)
let conclude runs =
  let verdict =
    List.fold_left
      (fun acc (run : Bab.run) ->
        match (acc, run.Bab.verdict) with
        | Deviation x, _ -> Deviation x
        | _, Bab.Disproved x -> Deviation x
        | Unknown, _ -> Unknown
        | _, Bab.Exhausted -> Unknown
        | Equivalent, Bab.Proved -> Equivalent)
      Equivalent runs
  in
  {
    verdict;
    runs;
    total_calls = List.fold_left (fun acc r -> acc + r.Bab.stats.Bab.analyzer_calls) 0 runs;
  }

let verify ~analyzer ~heuristic ?(budget = Bab.default_budget) a b ~box ~delta =
  let combined = Product.product a b in
  let props = properties ~outputs:(Network.output_dim a) ~box ~delta in
  conclude (List.map (fun prop -> Bab.verify ~analyzer ~heuristic ~budget ~net:combined ~prop ()) props)

let verify_incremental ~analyzer ~heuristic ?(config = Ivan.default_config) ~previous a b ~box
    ~delta =
  let combined = Product.product a b in
  let props = properties ~outputs:(Network.output_dim a) ~box ~delta in
  if List.length props <> List.length previous.runs then
    invalid_arg "Diffverify.verify_incremental: previous proof has a different shape";
  conclude
    (List.map2
       (fun prop (prev : Bab.run) ->
         Ivan.verify_updated_with_tree ~analyzer ~heuristic ~config ~original_tree:prev.Bab.tree
           ~updated:combined ~prop)
       props previous.runs)
