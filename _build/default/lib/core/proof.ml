module Bab = Ivan_bab.Bab
module Tree = Ivan_spectree.Tree

type verdict = Proved | Disproved | Exhausted

type t = { property_name : string; verdict : verdict; analyzer_calls : int; tree : Tree.t }

let verdict_of_run (run : Bab.run) =
  match run.Bab.verdict with
  | Bab.Proved -> Proved
  | Bab.Disproved _ -> Disproved
  | Bab.Exhausted -> Exhausted

let of_run ~prop (run : Bab.run) =
  {
    property_name = prop.Ivan_spec.Prop.name;
    verdict = verdict_of_run run;
    analyzer_calls = run.Bab.stats.Bab.analyzer_calls;
    tree = Tree.copy run.Bab.tree;
  }

let verdict_name = function Proved -> "proved" | Disproved -> "disproved" | Exhausted -> "exhausted"

let verdict_of_name = function
  | "proved" -> Proved
  | "disproved" -> Disproved
  | "exhausted" -> Exhausted
  | s -> failwith (Printf.sprintf "Proof: unknown verdict %S" s)

let to_string p =
  Printf.sprintf "ivan-proof 1\nproperty: %s\nverdict: %s\ncalls: %d\ntree:\n%s" p.property_name
    (verdict_name p.verdict) p.analyzer_calls (Tree.to_string p.tree)

let of_string s =
  match String.split_on_char '\n' s with
  | header :: prop_line :: verdict_line :: calls_line :: tree_marker :: tree_lines ->
      if String.trim header <> "ivan-proof 1" then
        failwith "Proof.of_string: missing ivan-proof header";
      let field prefix line =
        let line = String.trim line in
        let plen = String.length prefix in
        if String.length line < plen || String.sub line 0 plen <> prefix then
          failwith (Printf.sprintf "Proof.of_string: expected %S line" prefix)
        else String.trim (String.sub line plen (String.length line - plen))
      in
      let property_name = field "property:" prop_line in
      let verdict = verdict_of_name (field "verdict:" verdict_line) in
      let analyzer_calls = int_of_string (field "calls:" calls_line) in
      if String.trim tree_marker <> "tree:" then failwith "Proof.of_string: expected tree marker";
      let tree = Tree.of_string (String.concat "\n" tree_lines) in
      { property_name; verdict; analyzer_calls; tree }
  | _ -> failwith "Proof.of_string: truncated input"

let to_file path p =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string p))

let of_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_string (In_channel.input_all ic))
