module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Tree = Ivan_spectree.Tree

type budget = { max_analyzer_calls : int; max_seconds : float }

let default_budget = { max_analyzer_calls = 10_000; max_seconds = infinity }

type stats = {
  analyzer_calls : int;
  branchings : int;
  tree_size : int;
  tree_leaves : int;
  elapsed_seconds : float;
}

type verdict = Proved | Disproved of Ivan_tensor.Vec.t | Exhausted

type run = { verdict : verdict; tree : Tree.t; stats : stats }

let verify ~analyzer ~heuristic ?(budget = default_budget) ?initial_tree ~net ~prop () =
  if Box.dim prop.Prop.input <> Network.input_dim net then
    invalid_arg "Bab.verify: property dimension does not match the network";
  let tree = match initial_tree with None -> Tree.create () | Some t -> Tree.copy t in
  let started = Unix.gettimeofday () in
  let calls = ref 0 in
  let branchings = ref 0 in
  (* FIFO over active nodes: breadth-first, deterministic. *)
  let active = Queue.create () in
  List.iter (fun n -> Queue.add n active) (Tree.leaves tree);
  let out_of_budget () =
    !calls >= budget.max_analyzer_calls || Unix.gettimeofday () -. started > budget.max_seconds
  in
  let rec loop () =
    if Queue.is_empty active then Proved
    else if out_of_budget () then Exhausted
    else begin
      let node = Queue.pop active in
      let box, splits = Tree.subproblem ~root_box:prop.Prop.input node in
      incr calls;
      let outcome = analyzer.Analyzer.run net ~prop ~box ~splits in
      Tree.set_lb node outcome.Analyzer.lb;
      match outcome.Analyzer.status with
      | Analyzer.Verified -> loop ()
      | Analyzer.Counterexample x -> Disproved x
      | Analyzer.Unknown -> (
          let ctx = { Heuristic.net; prop; box; splits; outcome } in
          match Heuristic.best (heuristic.Heuristic.scores ctx) with
          | None ->
              (* No decision can refine this node further; the analyzer
                 is exact here, so this only happens on numerical
                 failure.  Surface it as budget exhaustion. *)
              Exhausted
          | Some d ->
              let left, right = Tree.split tree node d in
              incr branchings;
              Queue.add left active;
              Queue.add right active;
              loop ())
    end
  in
  let verdict = loop () in
  {
    verdict;
    tree;
    stats =
      {
        analyzer_calls = !calls;
        branchings = !branchings;
        tree_size = Tree.size tree;
        tree_leaves = Tree.num_leaves tree;
        elapsed_seconds = Unix.gettimeofday () -. started;
      };
  }
