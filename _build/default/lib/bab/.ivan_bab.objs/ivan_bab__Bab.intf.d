lib/bab/bab.mli: Heuristic Ivan_analyzer Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor
