lib/bab/bab.ml: Heuristic Ivan_analyzer Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor List Queue Unix
