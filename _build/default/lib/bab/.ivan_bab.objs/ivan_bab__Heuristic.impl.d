lib/bab/heuristic.ml: Array Float Hashtbl Ivan_analyzer Ivan_domains Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor List Printf
