lib/bab/heuristic.mli: Ivan_analyzer Ivan_domains Ivan_nn Ivan_spec Ivan_spectree
