(** Branching heuristics (Definition 9).

    A heuristic scores the candidate branching decisions of an unsolved
    node; BaB splits on the argmax.  Scores are computed from the
    analyzer's outcome at that node, so a heuristic is a function of the
    exact subproblem — [phi], [psi], the network, and the splits made so
    far — as in the paper. *)

type context = {
  net : Ivan_nn.Network.t;
  prop : Ivan_spec.Prop.t;
  box : Ivan_spec.Box.t;  (** subproblem input box *)
  splits : Ivan_domains.Splits.t;
  outcome : Ivan_analyzer.Analyzer.outcome;
}

type t = { name : string; scores : context -> (Ivan_spectree.Decision.t * float) list }
(** [scores] lists every candidate decision with its score; an empty
    list means the node cannot be branched further. *)

val best : (Ivan_spectree.Decision.t * float) list -> Ivan_spectree.Decision.t option
(** Argmax with deterministic tie-breaking (smaller decision wins). *)

val zono_coeff : t
(** ReLU splitting scored by the zonotope noise-coefficient of each
    ambiguous ReLU in the objective — the indirect-effect estimate of
    Henriksen & Lomuscio 2021 (the paper's default H).  Falls back to
    {!width} scores when the outcome has no zonotope run. *)

val width : t
(** ReLU splitting scored by [min(-lb, ub)] of the pre-activation — a
    cheap BaBSR-flavoured ambiguity measure. *)

val random : seed:int -> t
(** ReLU splitting with pseudo-random scores (Ehlers 2017 / Katz et al.
    2017 style), deterministic in [seed] and the ReLU identity. *)

val input_widest : t
(** Input splitting on the widest box dimension. *)

val input_smear : t
(** Input splitting on the dimension maximizing width times accumulated
    absolute weight influence on the objective (a smear heuristic; the
    "strong branching strategy" stand-in for the §6.4 baseline). *)
