module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Prop = Ivan_spec.Prop
module Zoo = Ivan_data.Zoo
module Acas = Ivan_data.Acas

type instance = { id : int; prop : Prop.t }

let runner_up y label =
  let best = ref (if label = 0 then 1 else 0) in
  Array.iteri (fun j v -> if j <> label && v > y.(!best) then best := j) y;
  !best

let robustness_instances ~spec ~net ~count =
  let inputs, labels = Zoo.test_set spec in
  let acc = ref [] in
  let made = ref 0 in
  let i = ref 0 in
  while !made < count && !i < Array.length inputs do
    let x = inputs.(!i) and label = labels.(!i) in
    let y = Network.forward net x in
    if Vec.argmax y = label then begin
      let adversary = runner_up y label in
      let prop =
        Prop.robustness
          ~name:(Printf.sprintf "%s-rob-%d" spec.Zoo.name !i)
          ~center:x ~eps:spec.Zoo.eps ~target:label ~adversary
          ~num_outputs:(Network.output_dim net) ~clip:(Some (0.0, 1.0))
      in
      acc := { id = !made; prop } :: !acc;
      incr made
    end;
    incr i
  done;
  List.rev !acc

let acas_instances ~net ~margins ~seed =
  let id = ref (-1) in
  List.concat_map
    (fun margin ->
      let props = Acas.properties ~net ~margin ~rng:(Rng.create seed) in
      List.map
        (fun prop ->
          incr id;
          let prop = { prop with Prop.name = Printf.sprintf "%s-m%.2f" prop.Prop.name margin } in
          { id = !id; prop })
        props)
    margins
