lib/harness/tune.mli: Ivan_core Ivan_nn Runner Workload
