lib/harness/report.ml: Buffer Float Ivan_bab Ivan_core Ivan_spec List Printf Runner Workload
