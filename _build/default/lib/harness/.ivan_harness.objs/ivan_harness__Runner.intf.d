lib/harness/runner.mli: Ivan_analyzer Ivan_bab Ivan_core Ivan_nn Workload
