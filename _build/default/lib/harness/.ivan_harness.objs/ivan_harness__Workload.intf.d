lib/harness/workload.mli: Ivan_data Ivan_nn Ivan_spec
