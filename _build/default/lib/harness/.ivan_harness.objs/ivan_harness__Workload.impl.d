lib/harness/workload.ml: Array Ivan_data Ivan_nn Ivan_spec Ivan_tensor List Printf
