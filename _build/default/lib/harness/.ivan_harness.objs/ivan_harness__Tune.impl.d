lib/harness/tune.ml: Ivan_bab Ivan_core Ivan_tensor List Runner Unix Workload
