lib/harness/report.mli: Ivan_core Runner
