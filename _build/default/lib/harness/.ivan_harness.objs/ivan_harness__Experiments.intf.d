lib/harness/experiments.mli: Format Ivan_bab Ivan_data Ivan_nn Runner
