lib/harness/runner.ml: Array Atomic Domain Ivan_analyzer Ivan_bab Ivan_core Ivan_nn List Unix Workload
