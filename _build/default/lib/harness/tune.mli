(** Hyperparameter tuning for (alpha, theta).

    The paper tunes IVAN's two hyperparameters with Optuna (§5); this is
    the equivalent in-repo facility: randomized search over the unit
    square (alpha) and a log-ish theta range, scoring each candidate by
    the overall speedup on a calibration workload, with the original and
    baseline runs shared across candidates so a trial only pays for the
    incremental runs. *)

type trial = { alpha : float; theta : float; speedup : float }

type outcome = {
  best : trial;
  trials : trial list;  (** every evaluated candidate, in order *)
}

val search :
  ?trials:int ->
  ?seed:int ->
  setting:Runner.setting ->
  technique:Ivan_core.Ivan.technique ->
  net:Ivan_nn.Network.t ->
  updated:Ivan_nn.Network.t ->
  Workload.instance list ->
  outcome
(** [search ~setting ~technique ~net ~updated instances] evaluates
    [trials] (default 20) random [(alpha, theta)] pairs — always
    including the paper's default (0.25, 0.01) as the first trial — and
    returns the best by overall time speedup against the shared
    baseline.  @raise Invalid_argument on an empty instance list. *)
