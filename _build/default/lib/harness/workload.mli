(** Verification workloads: the property suites of the evaluation.

    Local robustness instances follow the paper's protocol — one
    property per correctly-classified test image, pitting the true class
    against the runner-up inside an L-infinity ball of the model's
    Table-1 epsilon.  ACAS instances are the calibrated global
    properties across a hardness spread of margins. *)

type instance = { id : int; prop : Ivan_spec.Prop.t }

val robustness_instances :
  spec:Ivan_data.Zoo.spec -> net:Ivan_nn.Network.t -> count:int -> instance list
(** Up to [count] instances from the model's held-out test set (fewer if
    the network classifies fewer points correctly).  Deterministic. *)

val acas_instances :
  net:Ivan_nn.Network.t -> margins:float list -> seed:int -> instance list
(** One instance per (region, margin) pair. *)
