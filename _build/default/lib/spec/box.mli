(** Axis-aligned boxes — the input regions [phi] of Definition 1.

    All local-robustness and ACAS-XU input specifications in the paper
    are boxes (L-infinity balls or the VNN-COMP input ranges). *)

type t

val make : lo:Ivan_tensor.Vec.t -> hi:Ivan_tensor.Vec.t -> t
(** @raise Invalid_argument if dims differ or some [lo > hi]. *)

val of_center : center:Ivan_tensor.Vec.t -> radius:float -> t
(** The L-infinity ball of the given radius. *)

val clip : lo:float -> hi:float -> t -> t
(** Intersect every dimension with [\[lo, hi\]] (e.g. valid pixel range).
    @raise Invalid_argument if the intersection is empty in some dim. *)

val dim : t -> int

val lo : t -> Ivan_tensor.Vec.t
(** Fresh copy of the lower corner. *)

val hi : t -> Ivan_tensor.Vec.t

val lo_at : t -> int -> float

val hi_at : t -> int -> float

val width : t -> int -> float

val max_width : t -> float

val center : t -> Ivan_tensor.Vec.t

val contains : t -> Ivan_tensor.Vec.t -> bool

val clamp : t -> Ivan_tensor.Vec.t -> Ivan_tensor.Vec.t
(** Project a point onto the box. *)

val sample : rng:Ivan_tensor.Rng.t -> t -> Ivan_tensor.Vec.t
(** Uniform sample from the box. *)

val split_dim : t -> int -> t * t
(** Halve the box along the given dimension (input-splitting branching).
    @raise Invalid_argument on an out-of-range dimension. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
