module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng

type t = { lo : Vec.t; hi : Vec.t }

let make ~lo ~hi =
  if Vec.dim lo <> Vec.dim hi then invalid_arg "Box.make: dimension mismatch";
  Array.iteri (fun i l -> if l > hi.(i) then invalid_arg "Box.make: lo > hi") lo;
  { lo = Vec.copy lo; hi = Vec.copy hi }

let of_center ~center ~radius =
  if radius < 0.0 then invalid_arg "Box.of_center: negative radius";
  {
    lo = Vec.map (fun v -> v -. radius) center;
    hi = Vec.map (fun v -> v +. radius) center;
  }

let clip ~lo:l ~hi:h b =
  let lo = Vec.map (fun v -> Float.max v l) b.lo in
  let hi = Vec.map (fun v -> Float.min v h) b.hi in
  Array.iteri (fun i v -> if v > hi.(i) then invalid_arg "Box.clip: empty intersection") lo;
  { lo; hi }

let dim b = Vec.dim b.lo

let lo b = Vec.copy b.lo

let hi b = Vec.copy b.hi

let lo_at b i = b.lo.(i)

let hi_at b i = b.hi.(i)

let width b i = b.hi.(i) -. b.lo.(i)

let max_width b =
  let best = ref 0.0 in
  for i = 0 to dim b - 1 do
    best := Float.max !best (width b i)
  done;
  !best

let center b = Vec.map2 (fun l h -> 0.5 *. (l +. h)) b.lo b.hi

let contains b x =
  Vec.dim x = dim b
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if v < b.lo.(i) -. 1e-12 || v > b.hi.(i) +. 1e-12 then ok := false) x;
       !ok
     end

let clamp b x = Vec.map2 (fun v l -> Float.max v l) x b.lo |> fun v -> Vec.map2 (fun v h -> Float.min v h) v b.hi

let sample ~rng b = Vec.map2 (fun l h -> if l = h then l else Rng.uniform rng l h) b.lo b.hi

let split_dim b i =
  if i < 0 || i >= dim b then invalid_arg "Box.split_dim: dimension out of range";
  let mid = 0.5 *. (b.lo.(i) +. b.hi.(i)) in
  let hi_left = Vec.copy b.hi in
  hi_left.(i) <- mid;
  let lo_right = Vec.copy b.lo in
  lo_right.(i) <- mid;
  ({ lo = Vec.copy b.lo; hi = hi_left }, { lo = lo_right; hi = Vec.copy b.hi })

let equal ?(eps = 1e-12) a b = Vec.equal ~eps a.lo b.lo && Vec.equal ~eps a.hi b.hi

let pp fmt b =
  Format.fprintf fmt "@[box lo=%a hi=%a@]" Vec.pp b.lo Vec.pp b.hi
