(** Verification properties.

    A property pairs an input box [phi] with an output predicate
    [psi(Y) = (c . Y + offset >= 0)], the linear form of the paper's
    Equation 1 (the constant offset lets us express threshold properties
    such as ACAS-XU's "COC score stays below 1500"). *)

type t = {
  name : string;
  input : Box.t;  (** the region [phi_t] *)
  c : Ivan_tensor.Vec.t;  (** output coefficient vector [C] *)
  offset : float;
}

val make : name:string -> input:Box.t -> c:Ivan_tensor.Vec.t -> offset:float -> t

val holds_at : t -> Ivan_tensor.Vec.t -> bool
(** [holds_at p y] checks [psi] on a concrete output vector. *)

val margin : t -> Ivan_tensor.Vec.t -> float
(** [c . y + offset]; negative means violated. *)

val robustness :
  name:string ->
  center:Ivan_tensor.Vec.t ->
  eps:float ->
  target:int ->
  adversary:int ->
  num_outputs:int ->
  clip:(float * float) option ->
  t
(** Local L-infinity robustness: inside the eps-ball around [center]
    (optionally clipped to a pixel range), the [target] logit stays
    above the [adversary] logit: [y_target - y_adversary >= 0]. *)

val output_upper : name:string -> input:Box.t -> index:int -> bound:float -> num_outputs:int -> t
(** Global property [y_index <= bound], i.e. [bound - y_index >= 0]. *)

val output_lower : name:string -> input:Box.t -> index:int -> bound:float -> num_outputs:int -> t
(** Global property [y_index >= bound]. *)

val output_pairwise :
  name:string -> input:Box.t -> ge:int -> le:int -> num_outputs:int -> t
(** Global property [y_ge >= y_le]. *)

val pp : Format.formatter -> t -> unit
