lib/spec/vnnlib.mli: Prop
