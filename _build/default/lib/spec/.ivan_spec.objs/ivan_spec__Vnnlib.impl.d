lib/spec/vnnlib.ml: Array Box Buffer Filename Float Fun In_channel Ivan_tensor List Printf Prop String
