lib/spec/prop.mli: Box Format Ivan_tensor
