lib/spec/box.mli: Format Ivan_tensor
