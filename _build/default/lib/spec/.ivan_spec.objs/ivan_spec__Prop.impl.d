lib/spec/prop.ml: Array Box Format Ivan_tensor
