lib/spec/box.ml: Array Float Format Ivan_tensor
