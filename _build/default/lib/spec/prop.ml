module Vec = Ivan_tensor.Vec

type t = { name : string; input : Box.t; c : Vec.t; offset : float }

let make ~name ~input ~c ~offset = { name; input; c = Vec.copy c; offset }

let margin p y = Vec.dot p.c y +. p.offset

let holds_at p y = margin p y >= 0.0

let unit_diff ~plus ~minus ~num_outputs =
  let c = Vec.zeros num_outputs in
  c.(plus) <- c.(plus) +. 1.0;
  c.(minus) <- c.(minus) -. 1.0;
  c

let robustness ~name ~center ~eps ~target ~adversary ~num_outputs ~clip =
  if target = adversary then invalid_arg "Prop.robustness: target equals adversary";
  let ball = Box.of_center ~center ~radius:eps in
  let input = match clip with None -> ball | Some (lo, hi) -> Box.clip ~lo ~hi ball in
  { name; input; c = unit_diff ~plus:target ~minus:adversary ~num_outputs; offset = 0.0 }

let unit_vec ~index ~sign ~num_outputs =
  let c = Vec.zeros num_outputs in
  c.(index) <- sign;
  c

let output_upper ~name ~input ~index ~bound ~num_outputs =
  { name; input; c = unit_vec ~index ~sign:(-1.0) ~num_outputs; offset = bound }

let output_lower ~name ~input ~index ~bound ~num_outputs =
  { name; input; c = unit_vec ~index ~sign:1.0 ~num_outputs; offset = -.bound }

let output_pairwise ~name ~input ~ge ~le ~num_outputs =
  { name; input; c = unit_diff ~plus:ge ~minus:le ~num_outputs; offset = 0.0 }

let pp fmt p =
  Format.fprintf fmt "@[<h>%s: forall x in %a. c.y + %g >= 0 with c=%a@]" p.name Box.pp p.input
    p.offset Vec.pp p.c
