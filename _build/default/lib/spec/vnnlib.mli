(** VNN-LIB property files (the VNN-COMP exchange subset).

    A VNN-LIB file declares input variables [X_i] and output variables
    [Y_j] and asserts (a) bounds on every input — the box — and (b)
    constraints on the outputs describing the {e unsafe} set; the
    property holds when no input in the box reaches the unsafe set.

    This parser supports the fragment that maps onto this library's
    property form: box input constraints and exactly one linear output
    assertion (so its negation is again one linear constraint).
    Disjunctions ([or]) and multiple output assertions are rejected with
    a clear error rather than silently mis-handled. *)

val parse : string -> name:string -> Prop.t
(** Parse the file contents into a property: the input box, and
    [psi = not (unsafe constraint)] in [C^T Y + d >= 0] form.
    @raise Failure on syntax errors, unbounded inputs, or unsupported
    fragments. *)

val parse_file : string -> Prop.t
(** Parse from a path, using the file name as property name.
    @raise Sys_error / [Failure]. *)

val print : Prop.t -> string
(** Render a property back to VNN-LIB (input bounds plus the negated
    output constraint as the unsafe set).  [parse (print p)] yields a
    property equivalent to [p]. *)
