(* Differential verification: certify that deployment variants stay
   close to the reference model.

   Two levels, mirroring the paper's §7 positioning relative to
   ReluDiff:
   - a fast zonotope differential bound with input-split refinement,
   - complete differential verification on the product network, which
     inherits the whole IVAN machinery — so certifying the *second*
     variant reuses the proof trees of the first.

   Run with:  dune exec examples/differential.exe *)

module Vec = Ivan_tensor.Vec
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Box = Ivan_spec.Box
module Diff = Ivan_domains.Diff
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Diffverify = Ivan_core.Diffverify
module Zoo = Ivan_data.Zoo

let () =
  let spec = Zoo.fcn_mnist in
  Format.printf "training (or loading) %s...@." spec.Zoo.name;
  let net = Zoo.load_or_train spec in
  (* Certify closeness on a neighbourhood of a test image. *)
  let inputs, _ = Zoo.test_set spec in
  let box = Box.clip ~lo:0.0 ~hi:1.0 (Box.of_center ~center:inputs.(0) ~radius:0.02) in

  (* Level 1: one-shot zonotope differential bound. *)
  Format.printf "@.[zonotope differential bounds, int16 variant]@.";
  let u16 = Quant.network Quant.Int16 net in
  let level1_worst =
    match Diff.output_difference net u16 ~box with
    | None ->
        Format.printf "empty region@.";
        0.1
    | Some { Diff.lo; hi } ->
        let worst =
          Array.fold_left Float.max 0.0
            (Array.mapi (fun i l -> Float.max (Float.abs l) (Float.abs hi.(i))) lo)
        in
        Format.printf "certified: every logit moves by at most %.5f on the whole box@." worst;
        worst
  in

  (* Level 2: complete differential verification of two variants, the
     second incrementally.  A delta below the one-shot bound makes the
     BaB actually work for its verdict. *)
  let delta = 0.75 *. level1_worst in
  let analyzer = Analyzer.lp_triangle () in
  let budget = { Ivan_bab.Bab.max_analyzer_calls = 100; max_seconds = 10.0 } in
  let verdict_name = function
    | Diffverify.Equivalent -> "equivalent"
    | Diffverify.Deviation _ -> "deviates"
    | Diffverify.Unknown -> "unknown"
  in
  Format.printf "@.[complete differential verification, delta = %.3f]@." delta;
  let t0 = Unix.gettimeofday () in
  let first =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~budget net u16 ~box ~delta
  in
  let t1 = Unix.gettimeofday () in
  Format.printf "int16 variant: %-10s (%d analyzer calls, %.2fs, from scratch)@."
    (verdict_name first.Diffverify.verdict) first.Diffverify.total_calls (t1 -. t0);
  let u8 = Quant.network Quant.Int8 net in
  let scratch =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~budget net u8 ~box ~delta
  in
  let t2 = Unix.gettimeofday () in
  let second =
    Diffverify.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff
      ~config:{ Ivan_core.Ivan.default_config with budget }
      ~previous:first net u8 ~box ~delta
  in
  let t3 = Unix.gettimeofday () in
  Format.printf "int8 variant:  %-10s (%d calls from scratch vs %d incremental, %.2fx)@."
    (verdict_name second.Diffverify.verdict) scratch.Diffverify.total_calls
    second.Diffverify.total_calls
    (float_of_int scratch.Diffverify.total_calls
    /. float_of_int (max 1 second.Diffverify.total_calls));
  ignore (t2, t3)
