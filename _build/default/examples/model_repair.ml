(* Model repair: fine-tuning an updated network and re-certifying it.

   The intro's motivating loop: a deployed classifier misbehaves on some
   inputs; a few SGD steps repair it; the repaired network must be
   re-verified.  Fine-tuning perturbs weights across every layer — the
   update class the paper targets — so IVAN re-proves the robustness
   properties by reusing the original proofs.

   Run with:  dune exec examples/model_repair.exe *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Sgd = Ivan_train.Sgd
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Zoo = Ivan_data.Zoo
module Runner = Ivan_harness.Runner
module Report = Ivan_harness.Report
module Workload = Ivan_harness.Workload

let () =
  let spec = Zoo.conv_mnist in
  Format.printf "training (or loading) %s...@." spec.Zoo.name;
  let net = Zoo.load_or_train spec in
  let test_inputs, test_labels = Zoo.test_set spec in
  Format.printf "accuracy before repair: %.3f@."
    (Sgd.accuracy net ~inputs:test_inputs ~labels:test_labels);

  (* "Buggy" inputs: corrupted test samples the model should also get
     right.  Repair = a couple of low-rate epochs on original + buggy
     data (so the fix does not forget the training set). *)
  let rng = Rng.create 777 in
  let corrupt x =
    Array.map (fun v -> Float.max 0.0 (Float.min 1.0 (v +. (0.15 *. Rng.gaussian rng)))) x
  in
  let buggy_inputs = Array.map corrupt (Array.sub test_inputs 0 40) in
  let buggy_labels = Array.sub test_labels 0 40 in
  let train_inputs, train_labels = Zoo.training_set spec in
  let inputs = Array.append train_inputs buggy_inputs in
  let labels = Array.append train_labels buggy_labels in
  let config = { Sgd.default_config with epochs = 2; learning_rate = 0.005 } in
  let repaired = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  Format.printf "accuracy after repair:  %.3f (buggy subset: %.3f -> %.3f)@.@."
    (Sgd.accuracy repaired ~inputs:test_inputs ~labels:test_labels)
    (Sgd.accuracy net ~inputs:buggy_inputs ~labels:buggy_labels)
    (Sgd.accuracy repaired ~inputs:buggy_inputs ~labels:buggy_labels);

  (* Quantify how far the repair moved the weights. *)
  let drift =
    let total = ref 0.0 in
    Array.iteri
      (fun i la ->
        let wa, _ = Ivan_nn.Layer.dense_affine la in
        let wb, _ = Ivan_nn.Layer.dense_affine (Network.layers repaired).(i) in
        total := !total +. Ivan_tensor.Mat.frobenius_norm (Ivan_tensor.Mat.sub wa wb))
      (Network.layers net);
    !total
  in
  Format.printf "total weight drift (Frobenius): %.4f@.@." drift;

  (* Re-certify the robustness properties on the repaired network. *)
  let setting = Runner.classifier_setting () in
  let instances = Workload.robustness_instances ~spec ~net ~count:10 in
  let comparisons =
    Runner.run_all setting ~net ~updated:repaired ~techniques:[ Ivan.Reuse; Ivan.Full ]
      ~alpha:0.25 ~theta:0.01 instances
  in
  Format.printf "%-22s %14s %14s %14s@." "property" "baseline" "IVAN[reuse]" "IVAN";
  List.iter
    (fun (c : Runner.comparison) ->
      let cell (m : Runner.measurement) =
        let v =
          match m.Runner.verdict with
          | Bab.Proved -> 'V'
          | Bab.Disproved _ -> 'C'
          | Bab.Exhausted -> 'U'
        in
        Printf.sprintf "%c %4d calls" v m.Runner.calls
      in
      Format.printf "%-22s %14s %14s %14s@." c.Runner.instance.Workload.prop.Ivan_spec.Prop.name
        (cell c.Runner.baseline)
        (cell (Report.technique_measurement c Ivan.Reuse))
        (cell (Report.technique_measurement c Ivan.Full)))
    comparisons;
  let s = Report.summarize comparisons Ivan.Full in
  Format.printf "@.overall IVAN speedup on re-certification: %.2fx (calls %.2fx)@."
    s.Report.sp_time s.Report.sp_calls
