examples/acasxu_global.ml: Format Ivan_analyzer Ivan_bab Ivan_core Ivan_data Ivan_nn Ivan_spec Ivan_tensor List
