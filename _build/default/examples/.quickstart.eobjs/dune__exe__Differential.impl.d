examples/differential.ml: Array Float Format Ivan_analyzer Ivan_bab Ivan_core Ivan_data Ivan_domains Ivan_nn Ivan_spec Ivan_tensor Unix
