examples/quickstart.ml: Format Ivan_analyzer Ivan_bab Ivan_core Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor
