examples/differential.mli:
