examples/quantization_sweep.mli:
