examples/quickstart.mli:
