examples/acasxu_global.mli:
