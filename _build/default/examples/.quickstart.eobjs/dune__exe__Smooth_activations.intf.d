examples/smooth_activations.mli:
