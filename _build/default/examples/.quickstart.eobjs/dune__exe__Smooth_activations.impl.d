examples/smooth_activations.ml: Array Format Ivan_analyzer Ivan_bab Ivan_core Ivan_domains Ivan_nn Ivan_spec Ivan_tensor Ivan_train
