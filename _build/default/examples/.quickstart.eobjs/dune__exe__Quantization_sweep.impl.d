examples/quantization_sweep.ml: Format Ivan_bab Ivan_core Ivan_data Ivan_harness Ivan_nn List
