examples/model_repair.ml: Array Float Format Ivan_bab Ivan_core Ivan_data Ivan_harness Ivan_nn Ivan_spec Ivan_tensor Ivan_train List Printf
