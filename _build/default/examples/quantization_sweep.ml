(* Quantization sweep: the deployment scenario from the paper's intro.

   A trained classifier is repeatedly approximated for deployment —
   int16, int8, int6 — and each variant must be re-certified.  The
   sweep verifies the same robustness properties on every variant,
   comparing the from-scratch baseline against IVAN, which carries the
   proof of the previous float model forward.

   Run with:  dune exec examples/quantization_sweep.exe *)

module Quant = Ivan_nn.Quant
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Zoo = Ivan_data.Zoo
module Runner = Ivan_harness.Runner
module Report = Ivan_harness.Report
module Workload = Ivan_harness.Workload

let schemes = [ Quant.Int16; Quant.Int8; Quant.Bits 6 ]

let () =
  let spec = Zoo.fcn_mnist in
  Format.printf "training (or loading) %s...@." spec.Zoo.name;
  let net = Zoo.load_or_train spec in
  Format.printf "float model test accuracy: %.3f@." (Zoo.accuracy spec net);
  let setting = Runner.classifier_setting () in
  let instances = Workload.robustness_instances ~spec ~net ~count:12 in
  Format.printf "verifying %d robustness properties per variant (eps = %.3f)@.@."
    (List.length instances) spec.Zoo.eps;
  Format.printf "%-8s %8s | %10s %10s | %10s %10s | %7s@." "scheme" "acc" "base-calls"
    "base-time" "ivan-calls" "ivan-time" "speedup";
  List.iter
    (fun scheme ->
      let updated = Quant.network scheme net in
      let acc = Zoo.accuracy spec updated in
      let comparisons =
        Runner.run_all setting ~net ~updated ~techniques:[ Ivan.Full ] ~alpha:0.25 ~theta:0.01
          instances
      in
      let total f = List.fold_left (fun a c -> a +. f c) 0.0 comparisons in
      let base_calls = total (fun c -> float_of_int c.Runner.baseline.Runner.calls) in
      let base_time = total (fun c -> c.Runner.baseline.Runner.seconds) in
      let ivan_of c = Report.technique_measurement c Ivan.Full in
      let ivan_calls = total (fun c -> float_of_int (ivan_of c).Runner.calls) in
      let ivan_time = total (fun c -> (ivan_of c).Runner.seconds) in
      let s = Report.summarize comparisons Ivan.Full in
      Format.printf "%-8s %8.3f | %10.0f %9.2fs | %10.0f %9.2fs | %6.2fx@."
        (Quant.scheme_name scheme) acc base_calls base_time ivan_calls ivan_time s.Report.sp_time)
    schemes;
  Format.printf
    "@.The coarser the quantization, the further the proof tree drifts from the@.\
     original's — speedups shrink (and can dip below 1x) exactly as in the@.\
     paper's Table 3 stress test.@."
