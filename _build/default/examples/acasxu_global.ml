(* ACAS-XU global properties with input splitting (paper §6.4).

   Global safety properties over whole regions of the encounter space —
   "distant traffic must stay clear-of-conflict", "close head-on
   traffic must trigger an advisory" — are proved by splitting the
   5-dimensional input box, with the zonotope analyzer doing the
   bounding (the RefineZono-style stack).  After int16 quantization the
   properties are re-proved incrementally.

   Run with:  dune exec examples/acasxu_global.exe *)

module Rng = Ivan_tensor.Rng
module Quant = Ivan_nn.Quant
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Zoo = Ivan_data.Zoo
module Acas = Ivan_data.Acas

let () =
  Format.printf "training (or loading) the 6x50 ACAS-XU surrogate...@.";
  let net = Zoo.load_or_train Zoo.acas in
  Format.printf "advisory accuracy on held-out states: %.3f@.@." (Zoo.accuracy Zoo.acas net);
  let props = Acas.properties ~net ~margin:0.15 ~rng:(Rng.create 333) in
  let analyzer = Analyzer.zonotope () in
  let heuristic = Heuristic.input_smear in
  let budget = { Bab.max_analyzer_calls = 3000; max_seconds = 60.0 } in
  let updated = Quant.network Quant.Int16 net in
  Format.printf "%-24s | %-9s %6s %6s | %-9s %6s | %7s@." "property" "original" "calls" "splits"
    "quantized" "calls" "speedup";
  List.iter
    (fun prop ->
      let original = Bab.verify ~analyzer ~heuristic ~budget ~net ~prop () in
      let baseline = Bab.verify ~analyzer ~heuristic ~budget ~net:updated ~prop () in
      let incremental =
        Ivan.verify_updated ~analyzer ~heuristic
          ~config:{ Ivan.default_config with budget }
          ~original_run:original ~updated ~prop
      in
      let verdict r =
        match r.Bab.verdict with
        | Bab.Proved -> "proved"
        | Bab.Disproved _ -> "falsified"
        | Bab.Exhausted -> "unknown"
      in
      Format.printf "%-24s | %-9s %6d %6d | %-9s %6d | %6.2fx@." prop.Prop.name
        (verdict original) original.Bab.stats.Bab.analyzer_calls
        original.Bab.stats.Bab.branchings
        (verdict incremental) incremental.Bab.stats.Bab.analyzer_calls
        (float_of_int baseline.Bab.stats.Bab.analyzer_calls
        /. float_of_int incremental.Bab.stats.Bab.analyzer_calls))
    props;
  Format.printf
    "@.Input splitting handles the low-dimensional ACAS inputs; the reused@.\
     (pruned) specification tree lets IVAN skip re-deriving the splits.@."
