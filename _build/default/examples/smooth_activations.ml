(* Smooth activations: sound verification beyond ReLU (paper §3.2).

   For tanh/sigmoid networks, activation splitting is unavailable — no
   phase to split — so BaB falls back to input splitting, which is sound
   for any activation and refines the zonotope bounds until the property
   is decided (cases (2) and (3) of the paper's §3.2 discussion).

   Run with:  dune exec examples/smooth_activations.exe *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Quant = Ivan_nn.Quant
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Zonotope = Ivan_domains.Zonotope
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Sgd = Ivan_train.Sgd

let () =
  (* A small tanh classifier on two separable blobs. *)
  let rng = Rng.create 2026 in
  let net =
    Builder.dense_net_act ~hidden_activation:Layer.Tanh ~rng ~dims:[ 2; 12; 8; 2 ]
  in
  let count = 300 in
  let inputs = Array.make count [||] in
  let labels = Array.make count 0 in
  for i = 0 to count - 1 do
    let label = i mod 2 in
    let cx = if label = 0 then 0.3 else 0.7 in
    inputs.(i) <-
      [| cx +. (0.07 *. Rng.gaussian rng); 0.5 +. (0.12 *. Rng.gaussian rng) |];
    labels.(i) <- label
  done;
  let config = { Sgd.default_config with epochs = 40 } in
  let trained = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  Format.printf "tanh classifier accuracy: %.3f@."
    (Sgd.accuracy trained ~inputs ~labels);
  Format.printf "splittable activation units: %d (none: tanh has no phases)@.@."
    (Network.num_relus trained);

  (* Robustness of a correctly-classified point, with the radius grown
     until the root bound alone cannot decide it — so the splitting has
     real work to do. *)
  let center = inputs.(0) in
  let label = labels.(0) in
  let prop_of eps =
    Prop.robustness ~name:"tanh-robustness" ~center ~eps ~target:label
      ~adversary:(1 - label) ~num_outputs:2 ~clip:(Some (0.0, 1.0))
  in
  let rec calibrate eps =
    if eps >= 0.5 then prop_of eps
    else
      let prop = prop_of eps in
      match Zonotope.analyze trained ~box:prop.Prop.input ~splits:Splits.empty with
      | Zonotope.Infeasible -> prop
      | Zonotope.Feasible a ->
          let itv = Zonotope.objective_itv a ~c:prop.Prop.c ~offset:prop.Prop.offset in
          if itv.Ivan_domains.Itv.lo >= 0.0 then calibrate (eps *. 1.4) else prop
  in
  let prop = calibrate 0.05 in
  Format.printf "calibrated radius: eps = %.4f@."
    (0.5 *. Box.max_width prop.Prop.input);

  (* The one-shot zonotope bound vs input-splitting refinement. *)
  (match Zonotope.analyze trained ~box:prop.Prop.input ~splits:Splits.empty with
  | Zonotope.Infeasible -> ()
  | Zonotope.Feasible a ->
      let itv = Zonotope.objective_itv a ~c:prop.Prop.c ~offset:prop.Prop.offset in
      Format.printf "root zonotope margin bound: [%.4f, %.4f]%s@." itv.Ivan_domains.Itv.lo
        itv.Ivan_domains.Itv.hi
        (if itv.Ivan_domains.Itv.lo >= 0.0 then " — already proves it" else " — inconclusive"));
  let budget = { Bab.max_analyzer_calls = 2000; max_seconds = 30.0 } in
  let run =
    Bab.verify ~analyzer:(Analyzer.zonotope ()) ~heuristic:Heuristic.input_smear ~budget
      ~net:trained ~prop ()
  in
  (match run.Bab.verdict with
  | Bab.Proved ->
      Format.printf "input splitting PROVES the property: %d bounding calls, %d splits@."
        run.Bab.stats.Bab.analyzer_calls run.Bab.stats.Bab.branchings
  | Bab.Disproved _ -> Format.printf "property is falsified@."
  | Bab.Exhausted -> Format.printf "undecided within budget (soundness kept)@.");

  (* And incrementally after quantization, like any other network. *)
  let updated = Quant.network Quant.Int16 trained in
  let baseline =
    Bab.verify ~analyzer:(Analyzer.zonotope ()) ~heuristic:Heuristic.input_smear ~budget
      ~net:updated ~prop ()
  in
  let incremental =
    Ivan.verify_updated ~analyzer:(Analyzer.zonotope ()) ~heuristic:Heuristic.input_smear
      ~config:{ Ivan.default_config with budget }
      ~original_run:run ~updated ~prop
  in
  Format.printf "int16 re-certification: baseline %d calls, IVAN %d calls (%.2fx)@."
    baseline.Bab.stats.Bab.analyzer_calls incremental.Bab.stats.Bab.analyzer_calls
    (float_of_int baseline.Bab.stats.Bab.analyzer_calls
    /. float_of_int (max 1 incremental.Bab.stats.Bab.analyzer_calls))
