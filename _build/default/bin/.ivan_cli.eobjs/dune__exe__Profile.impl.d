bin/profile.ml: Array Ivan_analyzer Ivan_data Ivan_domains Ivan_spec Printf Sys Unix
