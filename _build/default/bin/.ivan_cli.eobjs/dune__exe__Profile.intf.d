bin/profile.mli:
