bin/ivan_cli.ml: Arg Array Cmd Cmdliner Float Format Ivan_analyzer Ivan_bab Ivan_core Ivan_data Ivan_domains Ivan_harness Ivan_nn Ivan_spec Ivan_tensor List Printf String Term Unix
