bin/ivan_cli.mli:
