(* Tests for the analyzers: soundness of verdicts, LP tightness,
   counterexample validity, split exactness. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Analyzer = Ivan_analyzer.Analyzer

let analyzers () = [ Analyzer.interval (); Analyzer.zonotope (); Analyzer.lp_triangle () ]

let run_analyzer (a : Analyzer.t) net prop =
  a.Analyzer.run net ~prop ~box:prop.Prop.input ~splits:Splits.empty

(* The paper's property holds comfortably: every analyzer proves it. *)
let test_paper_property_verified () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop () in
  List.iter
    (fun a ->
      match (run_analyzer a net prop).Analyzer.status with
      | Analyzer.Verified -> ()
      | Analyzer.Counterexample _ | Analyzer.Unknown ->
          Alcotest.failf "%s failed to verify the easy paper property" a.Analyzer.name)
    (analyzers ())

(* A false property must never be "Verified"; the LP analyzer should
   find a concrete counterexample. *)
let test_false_property () =
  let net = Fixtures.paper_net () in
  (* o1 ranges down to -2 on the box; demand o1 >= -1. *)
  let prop = Fixtures.paper_prop_with_offset 1.0 in
  List.iter
    (fun a ->
      match (run_analyzer a net prop).Analyzer.status with
      | Analyzer.Verified -> Alcotest.failf "%s verified a false property" a.Analyzer.name
      | Analyzer.Counterexample x ->
          Alcotest.(check bool)
            (a.Analyzer.name ^ " returns a genuine counterexample")
            true
            (Analyzer.check_concrete net ~prop x)
      | Analyzer.Unknown -> ())
    (analyzers ())

(* Soundness of the reported lower bound: no sampled point goes below. *)
let test_lb_sound () =
  for seed = 1 to 5 do
    let net = Fixtures.random_net ~seed ~dims:[ 3; 6; 4; 2 ] in
    let input = Box.make ~lo:(Vec.zeros 3) ~hi:(Vec.create 3 1.0) in
    let prop = Prop.make ~name:"t" ~input ~c:(Vec.of_list [ 1.0; -1.0 ]) ~offset:0.0 in
    List.iter
      (fun a ->
        let o = run_analyzer a net prop in
        if o.Analyzer.lb < infinity then
          Alcotest.(check bool)
            (a.Analyzer.name ^ " lb sound")
            true
            (Fixtures.check_margin_lb ~seed net prop o.Analyzer.lb))
      (analyzers ())
  done

(* LP with triangle relaxation is at least as tight as pure interval. *)
let test_lp_tighter_than_interval () =
  for seed = 11 to 15 do
    let net = Fixtures.random_net ~seed ~dims:[ 3; 6; 4; 2 ] in
    let input = Box.make ~lo:(Vec.zeros 3) ~hi:(Vec.create 3 1.0) in
    let prop = Prop.make ~name:"t" ~input ~c:(Vec.of_list [ 1.0; -1.0 ]) ~offset:0.0 in
    let lp = run_analyzer (Analyzer.lp_triangle ~deeppoly_shortcut:false ()) net prop in
    let itv = run_analyzer (Analyzer.interval ()) net prop in
    Alcotest.(check bool) "lp lb >= interval lb" true (lp.Analyzer.lb >= itv.Analyzer.lb -. 1e-6)
  done

(* With every ReLU split, the LP encoding is exact: the minimum over
   all 2^|R| phase patterns equals the true minimum of the objective,
   which for the paper network is exactly -1.5 (at input (0.5, 1)). *)
let test_fully_split_exact () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 0.0 in
  let relus = Network.relu_ids net in
  let lp = Analyzer.lp_triangle ~deeppoly_shortcut:false () in
  (* Enumerate all 2^4 phase patterns. *)
  let count = Array.length relus in
  let best = ref infinity in
  for mask = 0 to (1 lsl count) - 1 do
    let splits = ref Splits.empty in
    Array.iteri
      (fun i r ->
        let phase = if (mask lsr i) land 1 = 1 then Splits.Pos else Splits.Neg in
        splits := Splits.add r phase !splits)
      relus;
    let o = lp.Analyzer.run net ~prop ~box:prop.Prop.input ~splits:!splits in
    if o.Analyzer.lb < !best then best := o.Analyzer.lb
  done;
  Alcotest.(check (float 1e-6)) "exact min over full split" (-1.5) !best;
  (* Sampling can only overestimate the minimum. *)
  let sampled = Fixtures.approx_min_margin ~seed:7 net prop in
  Alcotest.(check bool) "sampled min above exact" true (sampled >= !best -. 1e-9)

(* Vacuous subproblems: a contradictory phase makes the analyzer return
   Verified with an infinite lb. *)
let test_vacuous_verified () =
  let net = Fixtures.paper_net () in
  (* On [0.2, 1]^2 the relu r[0,1] has pre = i1 + i2 >= 0.4 strictly, so
     assuming its Neg phase empties the region. *)
  let input = Box.make ~lo:(Vec.of_list [ 0.2; 0.2 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  let prop = Prop.make ~name:"vacuous" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
  let r = Ivan_nn.Relu_id.make ~layer:0 ~index:1 in
  let splits = Splits.add r Splits.Neg Splits.empty in
  List.iter
    (fun (a : Analyzer.t) ->
      let o = a.Analyzer.run net ~prop ~box:prop.Prop.input ~splits in
      match o.Analyzer.status with
      | Analyzer.Verified -> Alcotest.(check bool) "lb inf" true (o.Analyzer.lb = infinity)
      | Analyzer.Counterexample _ | Analyzer.Unknown ->
          Alcotest.failf "%s did not detect the empty region" a.Analyzer.name)
    (analyzers ())

(* check_concrete rejects points outside the region and points that
   satisfy psi. *)
let test_check_concrete () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.0 in
  (* (0, 1): layer1 post (0, 1); layer2 pre (-2, 1) post (0, 1); o1 = -1.
     margin = -1 + 1 = 0 -> psi holds (>= 0), not a counterexample. *)
  Alcotest.(check bool) "boundary point not a CE" false
    (Analyzer.check_concrete net ~prop (Vec.of_list [ 0.0; 1.0 ]));
  (* Outside the box. *)
  Alcotest.(check bool) "outside box" false
    (Analyzer.check_concrete net ~prop (Vec.of_list [ 2.0; 2.0 ]));
  (* A genuinely violating point for a stricter property: margin at
     (0, 1) is -1 + 0.5 = -0.5 < 0. *)
  let strict = Fixtures.paper_prop_with_offset 0.5 in
  Alcotest.(check bool) "violating point accepted" true
    (Analyzer.check_concrete net ~prop:strict (Vec.of_list [ 0.0; 1.0 ]))

let test_lp_shortcut_consistent () =
  (* With and without the DeepPoly shortcut, the verdict agrees on easy
     verified instances. *)
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop () in
  let a1 = run_analyzer (Analyzer.lp_triangle ~deeppoly_shortcut:true ()) net prop in
  let a2 = run_analyzer (Analyzer.lp_triangle ~deeppoly_shortcut:false ()) net prop in
  match (a1.Analyzer.status, a2.Analyzer.status) with
  | Analyzer.Verified, Analyzer.Verified -> ()
  | _, _ -> Alcotest.fail "shortcut changed the verdict"

let prop_analyzer_never_unsound =
  QCheck.Test.make ~name:"analyzer verdicts sound on random instances" ~count:15
    QCheck.(make QCheck.Gen.(pair (int_range 1 10_000) (float_range (-2.0) 2.0)))
    (fun (seed, offset) ->
      let net = Fixtures.random_net ~seed ~dims:[ 2; 5; 3; 1 ] in
      let input = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
      let prop = Prop.make ~name:"q" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset in
      let sampled_min = Fixtures.approx_min_margin ~seed net prop in
      List.for_all
        (fun (a : Analyzer.t) ->
          let o = a.Analyzer.run net ~prop ~box:input ~splits:Splits.empty in
          match o.Analyzer.status with
          | Analyzer.Verified -> sampled_min >= -1e-6 (* claim must match reality *)
          | Analyzer.Counterexample x -> Analyzer.check_concrete net ~prop x
          | Analyzer.Unknown -> true)
        (analyzers ()))



(* ---------------- MILP exact analyzer ---------------- *)

(* The MILP analyzer decides the paper network's property in one call,
   with the exact minimum -1.5. *)
let test_milp_exact_paper_net () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 0.0 in
  let o =
    Analyzer.milp_verify net ~prop ~box:prop.Prop.input ~splits:Splits.empty
  in
  Alcotest.(check (float 1e-6)) "exact minimum" (-1.5) o.Analyzer.milp_lb;
  (match o.Analyzer.milp_status with
  | Analyzer.Counterexample x ->
      Alcotest.(check bool) "CE genuine" true (Analyzer.check_concrete net ~prop x)
  | Analyzer.Verified | Analyzer.Unknown -> Alcotest.fail "expected a counterexample");
  (* The same property shifted above the minimum verifies in one call. *)
  let proved = Fixtures.paper_prop_with_offset 1.6 in
  let o2 =
    Analyzer.milp_verify net ~prop:proved ~box:proved.Prop.input ~splits:Splits.empty
  in
  Alcotest.(check bool) "verified" true (o2.Analyzer.milp_status = Analyzer.Verified);
  (* Verification cutoff: a verified run reports the cutoff 0, not the
     exact (positive) margin. *)
  Alcotest.(check (float 1e-6)) "cutoff lb" 0.0 o2.Analyzer.milp_lb

(* MILP agrees with BaB (which is complete) on random instances. *)
let test_milp_matches_bab () =
  let milp = Analyzer.milp_exact () in
  for seed = 61 to 66 do
    let net = Fixtures.random_net ~seed ~dims:[ 2; 4; 3; 1 ] in
    let input = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
    let prop = Prop.make ~name:"m" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset:0.3 in
    let milp_out = milp.Analyzer.run net ~prop ~box:input ~splits:Splits.empty in
    let bab =
      Ivan_bab.Bab.verify ~analyzer:(Analyzer.lp_triangle ())
        ~heuristic:Ivan_bab.Heuristic.zono_coeff ~net ~prop ()
    in
    match (milp_out.Analyzer.status, bab.Ivan_bab.Bab.verdict) with
    | Analyzer.Verified, Ivan_bab.Bab.Proved -> ()
    | Analyzer.Counterexample _, Ivan_bab.Bab.Disproved _ -> ()
    | Analyzer.Unknown, _ | _, Ivan_bab.Bab.Exhausted -> ()
    | _, _ -> Alcotest.failf "seed %d: MILP and BaB verdicts disagree" seed
  done

(* MILP with split assumptions agrees with the fully-split LP. *)
let test_milp_respects_splits () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 0.0 in
  let r = Ivan_nn.Relu_id.make ~layer:0 ~index:0 in
  List.iter
    (fun phase ->
      let splits = Splits.add r phase Splits.empty in
      let o = Analyzer.milp_verify net ~prop ~box:prop.Prop.input ~splits in
      (* The split subproblem minimum is at least the global minimum. *)
      Alcotest.(check bool) "split min >= global min" true (o.Analyzer.milp_lb >= -1.5 -. 1e-9))
    [ Splits.Pos; Splits.Neg ]

(* Warm starting: for instances that end up verified, a positive warm
   margin cannot tighten the 0 cutoff, so node counts are identical (the
   paper's "insignificant speedup").  For falsified instances a negative
   warm margin prunes. *)
let test_milp_warm_start () =
  let net = Fixtures.paper_net () in
  (* Verified case: warm bound is positive -> cutoff unchanged. *)
  let proved = Fixtures.paper_prop_with_offset 1.6 in
  let cold =
    Analyzer.milp_verify net ~prop:proved ~box:proved.Prop.input ~splits:Splits.empty
  in
  let warm =
    Analyzer.milp_verify ~incumbent:0.5 net ~prop:proved ~box:proved.Prop.input
      ~splits:Splits.empty
  in
  Alcotest.(check bool) "both verified" true
    (cold.Analyzer.milp_status = Analyzer.Verified && warm.Analyzer.milp_status = Analyzer.Verified);
  Alcotest.(check int) "identical node counts" cold.Analyzer.nodes warm.Analyzer.nodes;
  (* Falsified case: warm start with the known violating margin. *)
  let falsified = Fixtures.paper_prop_with_offset 1.4 in
  let cold_f =
    Analyzer.milp_verify net ~prop:falsified ~box:falsified.Prop.input ~splits:Splits.empty
  in
  (match cold_f.Analyzer.milp_status with
  | Analyzer.Counterexample x ->
      Alcotest.(check bool) "CE genuine" true (Analyzer.check_concrete net ~prop:falsified x)
  | Analyzer.Verified | Analyzer.Unknown -> Alcotest.fail "expected counterexample");
  let warm_f =
    Analyzer.milp_verify ~incumbent:(-0.1 +. 0.0) net ~prop:falsified ~box:falsified.Prop.input
      ~splits:Splits.empty
  in
  Alcotest.(check bool) "warm explores no more nodes" true
    (warm_f.Analyzer.nodes <= cold_f.Analyzer.nodes)

let test_milp_rejects_leaky () =
  let net =
    Ivan_nn.Builder.dense_net_act ~hidden_activation:(Ivan_nn.Layer.Leaky_relu 0.1)
      ~rng:(Ivan_tensor.Rng.create 1) ~dims:[ 2; 3; 1 ]
  in
  let input = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
  let prop = Prop.make ~name:"l" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
  Alcotest.check_raises "leaky rejected"
    (Invalid_argument "Analyzer.milp: only plain ReLU networks are supported") (fun () ->
      ignore (Analyzer.milp_verify net ~prop ~box:input ~splits:Splits.empty))



(* ---------------- Grad / PGD falsification ---------------- *)

module Attack = Ivan_analyzer.Attack
module Grad = Ivan_nn.Grad

(* Gradient matches finite differences away from ReLU kinks. *)
let test_gradient_finite_difference () =
  let rng = Rng.create 301 in
  for seed = 1 to 5 do
    let net = Fixtures.random_net ~seed ~dims:[ 3; 5; 4; 2 ] in
    let c = Vec.of_list [ 1.0; -0.5 ] in
    let x = Array.init 3 (fun _ -> Rng.uniform rng 0.1 0.9) in
    let g = Grad.objective_gradient net ~c x in
    let f v = Vec.dot c (Network.forward net v) in
    let h = 1e-6 in
    for j = 0 to 2 do
      let xp = Vec.copy x and xm = Vec.copy x in
      xp.(j) <- xp.(j) +. h;
      xm.(j) <- xm.(j) -. h;
      let fd = (f xp -. f xm) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d dim %d grad %.4f fd %.4f" seed j g.(j) fd)
        true
        (Float.abs (g.(j) -. fd) < 1e-3)
    done
  done

let test_gradient_dim_check () =
  let net = Fixtures.paper_net () in
  Alcotest.check_raises "dims"
    (Invalid_argument "Grad.objective_gradient: objective dimension mismatch") (fun () ->
      ignore (Grad.objective_gradient net ~c:(Vec.zeros 3) (Vec.zeros 2)))

(* PGD finds the known violation of the paper network's tight property
   and never "finds" one for a true property. *)
let test_pgd_finds_violation () =
  let net = Fixtures.paper_net () in
  let falsified = Fixtures.paper_prop_with_offset 1.3 in
  (match Attack.pgd ~rng:(Rng.create 302) net ~prop:falsified with
  | Some x ->
      Alcotest.(check bool) "genuine CE" true (Analyzer.check_concrete net ~prop:falsified x)
  | None -> Alcotest.fail "PGD missed an easy violation");
  let proved = Fixtures.paper_prop_with_offset 2.0 in
  match Attack.pgd ~rng:(Rng.create 303) net ~prop:proved with
  | None -> ()
  | Some _ -> Alcotest.fail "PGD claimed a CE for a true property"

(* best_margin upper-bounds the true minimum and improves on the naive
   centre evaluation. *)
let test_pgd_best_margin () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 0.0 in
  let margin, x = Attack.best_margin ~rng:(Rng.create 304) net ~prop in
  Alcotest.(check bool) "achievable" true
    (Float.abs (Prop.margin prop (Network.forward net x) -. margin) < 1e-9);
  Alcotest.(check bool) "above the true min" true (margin >= -1.5 -. 1e-9);
  Alcotest.(check bool) "close to the true min" true (margin < -1.3)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("paper property verified", `Quick, test_paper_property_verified);
    ("false property", `Quick, test_false_property);
    ("lb sound", `Quick, test_lb_sound);
    ("lp tighter than interval", `Quick, test_lp_tighter_than_interval);
    ("fully split exact", `Quick, test_fully_split_exact);
    ("vacuous verified", `Quick, test_vacuous_verified);
    ("check concrete", `Quick, test_check_concrete);
    ("lp shortcut consistent", `Quick, test_lp_shortcut_consistent);
    q prop_analyzer_never_unsound;
    ("milp exact on paper net", `Quick, test_milp_exact_paper_net);
    ("milp matches bab", `Quick, test_milp_matches_bab);
    ("milp respects splits", `Quick, test_milp_respects_splits);
    ("milp warm start", `Quick, test_milp_warm_start);
    ("milp rejects leaky", `Quick, test_milp_rejects_leaky);
    ("gradient finite difference", `Quick, test_gradient_finite_difference);
    ("gradient dim check", `Quick, test_gradient_dim_check);
    ("pgd finds violation", `Quick, test_pgd_finds_violation);
    ("pgd best margin", `Quick, test_pgd_best_margin);
  ]
