(* Tests for the specification layer: boxes, properties, and the
   VNN-LIB parser/printer. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Vnnlib = Ivan_spec.Vnnlib

(* ---------------- Box ---------------- *)

let test_box_basics () =
  let b = Box.make ~lo:(Vec.of_list [ 0.0; -1.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  Alcotest.(check int) "dim" 2 (Box.dim b);
  Alcotest.(check (float 1e-12)) "width0" 1.0 (Box.width b 0);
  Alcotest.(check (float 1e-12)) "max width" 2.0 (Box.max_width b);
  Alcotest.(check bool) "contains center" true (Box.contains b (Box.center b));
  Alcotest.(check bool) "outside" false (Box.contains b (Vec.of_list [ 2.0; 0.0 ]))

let test_box_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Box.make: lo > hi") (fun () ->
      ignore (Box.make ~lo:(Vec.of_list [ 1.0 ]) ~hi:(Vec.of_list [ 0.0 ])))

let test_box_split () =
  let b = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 2.0; 4.0 ]) in
  let lo_half, hi_half = Box.split_dim b 1 in
  Alcotest.(check (float 1e-12)) "left hi" 2.0 (Box.hi_at lo_half 1);
  Alcotest.(check (float 1e-12)) "right lo" 2.0 (Box.lo_at hi_half 1);
  Alcotest.(check (float 1e-12)) "other dim intact" 2.0 (Box.hi_at lo_half 0)

let test_box_clamp_and_sample () =
  let b = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  let clamped = Box.clamp b (Vec.of_list [ -5.0; 7.0 ]) in
  Alcotest.(check bool) "clamped inside" true (Box.contains b clamped);
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "sample inside" true (Box.contains b (Box.sample ~rng b))
  done

let test_box_clip () =
  let b = Box.of_center ~center:(Vec.of_list [ 0.05; 0.95 ]) ~radius:0.1 in
  let clipped = Box.clip ~lo:0.0 ~hi:1.0 b in
  Alcotest.(check (float 1e-12)) "lo clipped" 0.0 (Box.lo_at clipped 0);
  Alcotest.(check (float 1e-12)) "hi clipped" 1.0 (Box.hi_at clipped 1)

(* ---------------- Prop ---------------- *)

let test_prop_margin () =
  let input = Box.make ~lo:(Vec.zeros 1) ~hi:(Vec.create 1 1.0) in
  let p = Prop.make ~name:"m" ~input ~c:(Vec.of_list [ 2.0; -1.0 ]) ~offset:0.5 in
  Alcotest.(check (float 1e-12)) "margin" 1.5 (Prop.margin p (Vec.of_list [ 1.0; 1.0 ]));
  Alcotest.(check bool) "holds" true (Prop.holds_at p (Vec.of_list [ 1.0; 1.0 ]));
  Alcotest.(check bool) "fails" false (Prop.holds_at p (Vec.of_list [ 0.0; 1.0 ]))

let test_prop_robustness () =
  let center = Vec.of_list [ 0.5; 0.5 ] in
  let p =
    Prop.robustness ~name:"r" ~center ~eps:0.1 ~target:1 ~adversary:0 ~num_outputs:3
      ~clip:(Some (0.0, 1.0))
  in
  Alcotest.(check (float 1e-12)) "target margin" 1.0 (Prop.margin p (Vec.of_list [ 1.0; 2.0; 5.0 ]));
  Alcotest.check_raises "self adversary"
    (Invalid_argument "Prop.robustness: target equals adversary") (fun () ->
      ignore
        (Prop.robustness ~name:"x" ~center ~eps:0.1 ~target:1 ~adversary:1 ~num_outputs:3
           ~clip:None))

let test_prop_output_constructors () =
  let input = Box.make ~lo:(Vec.zeros 1) ~hi:(Vec.create 1 1.0) in
  let upper = Prop.output_upper ~name:"u" ~input ~index:1 ~bound:3.0 ~num_outputs:2 in
  Alcotest.(check bool) "below bound holds" true (Prop.holds_at upper (Vec.of_list [ 0.0; 2.0 ]));
  Alcotest.(check bool) "above bound fails" false (Prop.holds_at upper (Vec.of_list [ 0.0; 4.0 ]));
  let lower = Prop.output_lower ~name:"l" ~input ~index:0 ~bound:1.0 ~num_outputs:2 in
  Alcotest.(check bool) "above holds" true (Prop.holds_at lower (Vec.of_list [ 2.0; 0.0 ]));
  let pairwise = Prop.output_pairwise ~name:"p" ~input ~ge:0 ~le:1 ~num_outputs:2 in
  Alcotest.(check bool) "ge holds" true (Prop.holds_at pairwise (Vec.of_list [ 2.0; 1.0 ]))

(* ---------------- Vnnlib ---------------- *)

let acas_like_text =
  {|; ACAS-like property
(declare-const X_0 Real)
(declare-const X_1 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(assert (>= X_0 0.6))
(assert (<= X_0 0.7))
(assert (>= X_1 -0.5))
(assert (<= X_1 0.5))
; unsafe: Y_0 exceeds 3.99
(assert (>= Y_0 3.99))
|}

let test_vnnlib_parse_basic () =
  let p = Vnnlib.parse acas_like_text ~name:"acas-like" in
  Alcotest.(check int) "input dim" 2 (Box.dim p.Prop.input);
  Alcotest.(check (float 1e-12)) "lo0" 0.6 (Box.lo_at p.Prop.input 0);
  Alcotest.(check (float 1e-12)) "hi1" 0.5 (Box.hi_at p.Prop.input 1);
  (* Safety: Y_0 < 3.99, i.e. margin = 3.99 - Y_0. *)
  Alcotest.(check (float 1e-9)) "margin safe" 1.0 (Prop.margin p (Vec.of_list [ 2.99; 0.0 ]));
  Alcotest.(check bool) "unsafe output violates" false
    (Prop.holds_at p (Vec.of_list [ 5.0; 0.0 ]))

let test_vnnlib_linear_combination () =
  let text =
    {|(declare-const X_0 Real)
(declare-const Y_0 Real)
(declare-const Y_1 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (<= (+ (* 1.0 Y_0) (* -1.0 Y_1)) -0.5))
|}
  in
  (* Unsafe: Y_0 - Y_1 <= -0.5; safe: Y_0 - Y_1 > -0.5. *)
  let p = Vnnlib.parse text ~name:"lin" in
  Alcotest.(check bool) "clearly safe point" true (Prop.holds_at p (Vec.of_list [ 1.0; 0.0 ]));
  Alcotest.(check bool) "unsafe point" false (Prop.holds_at p (Vec.of_list [ 0.0; 1.0 ]))

let test_vnnlib_constant_side_flip () =
  let text =
    {|(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (<= 0.25 X_0))
(assert (>= 0.75 X_0))
(assert (>= Y_0 1.0))
|}
  in
  let p = Vnnlib.parse text ~name:"flip" in
  Alcotest.(check (float 1e-12)) "lo" 0.25 (Box.lo_at p.Prop.input 0);
  Alcotest.(check (float 1e-12)) "hi" 0.75 (Box.hi_at p.Prop.input 0)

let test_vnnlib_roundtrip () =
  let input = Box.make ~lo:(Vec.of_list [ 0.1; -0.2 ]) ~hi:(Vec.of_list [ 0.9; 0.3 ]) in
  let p = Prop.make ~name:"rt" ~input ~c:(Vec.of_list [ 1.0; -2.0; 0.0 ]) ~offset:0.75 in
  let p' = Vnnlib.parse (Vnnlib.print p) ~name:"rt" in
  Alcotest.(check bool) "box equal" true (Box.equal p.Prop.input p'.Prop.input);
  Alcotest.(check bool) "c equal" true (Vec.equal ~eps:1e-12 p.Prop.c p'.Prop.c);
  Alcotest.(check (float 1e-12)) "offset equal" p.Prop.offset p'.Prop.offset

let test_vnnlib_rejects_unsupported () =
  let expect_failure text =
    match Vnnlib.parse text ~name:"bad" with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected Failure"
  in
  (* Disjunction. *)
  expect_failure
    {|(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (or (>= Y_0 1.0) (<= Y_0 -1.0)))
|};
  (* Two output assertions. *)
  expect_failure
    {|(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (>= Y_0 1.0))
(assert (<= Y_0 2.0))
|};
  (* Unbounded input. *)
  expect_failure
    {|(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (>= Y_0 1.0))
|};
  (* Non-linear. *)
  expect_failure
    {|(declare-const X_0 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (>= (* Y_0 Y_0) 1.0))
|}

let test_vnnlib_verifies_end_to_end () =
  (* Parse a property and verify it on the paper network. *)
  let net = Fixtures.paper_net () in
  let text =
    {|(declare-const X_0 Real)
(declare-const X_1 Real)
(declare-const Y_0 Real)
(assert (>= X_0 0.0))
(assert (<= X_0 1.0))
(assert (>= X_1 0.0))
(assert (<= X_1 1.0))
; unsafe: o1 drops below -1.6 (never happens: min is -1.5)
(assert (<= Y_0 -1.6))
|}
  in
  let prop = Vnnlib.parse text ~name:"paper-vnnlib" in
  let run =
    Ivan_bab.Bab.verify
      ~analyzer:(Ivan_analyzer.Analyzer.lp_triangle ())
      ~heuristic:Ivan_bab.Heuristic.zono_coeff ~net ~prop ()
  in
  Alcotest.(check bool) "verified" true (run.Ivan_bab.Bab.verdict = Ivan_bab.Bab.Proved)

let suite =
  [
    ("box basics", `Quick, test_box_basics);
    ("box invalid", `Quick, test_box_invalid);
    ("box split", `Quick, test_box_split);
    ("box clamp/sample", `Quick, test_box_clamp_and_sample);
    ("box clip", `Quick, test_box_clip);
    ("prop margin", `Quick, test_prop_margin);
    ("prop robustness", `Quick, test_prop_robustness);
    ("prop output constructors", `Quick, test_prop_output_constructors);
    ("vnnlib parse basic", `Quick, test_vnnlib_parse_basic);
    ("vnnlib linear combination", `Quick, test_vnnlib_linear_combination);
    ("vnnlib constant side flip", `Quick, test_vnnlib_constant_side_flip);
    ("vnnlib roundtrip", `Quick, test_vnnlib_roundtrip);
    ("vnnlib rejects unsupported", `Quick, test_vnnlib_rejects_unsupported);
    ("vnnlib end to end", `Quick, test_vnnlib_verifies_end_to_end);
  ]
