(* Tests for the SGD trainer: backprop correctness (via numerical
   gradients), convergence on separable data, regression fits. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Builder = Ivan_nn.Builder
module Network = Ivan_nn.Network
module Sgd = Ivan_train.Sgd

(* Two separable Gaussian blobs in 2-D. *)
let blobs ~rng ~count =
  let inputs = Array.make count [||] in
  let labels = Array.make count 0 in
  for i = 0 to count - 1 do
    let label = i mod 2 in
    let cx = if label = 0 then -1.5 else 1.5 in
    inputs.(i) <- [| cx +. (0.3 *. Rng.gaussian rng); 0.3 *. Rng.gaussian rng |];
    labels.(i) <- label
  done;
  (inputs, labels)

let test_classifier_learns () =
  let rng = Rng.create 42 in
  let net = Builder.dense_net ~rng ~dims:[ 2; 8; 2 ] in
  let inputs, labels = blobs ~rng ~count:200 in
  let before = Sgd.accuracy net ~inputs ~labels in
  let config = { Sgd.default_config with epochs = 30 } in
  let trained = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  let after = Sgd.accuracy trained ~inputs ~labels in
  Alcotest.(check bool) "accuracy >= 0.95" true (after >= 0.95);
  Alcotest.(check bool) "training helped" true (after >= before)

let test_loss_decreases () =
  let rng = Rng.create 43 in
  let net = Builder.dense_net ~rng ~dims:[ 2; 8; 2 ] in
  let inputs, labels = blobs ~rng ~count:100 in
  let before = Sgd.cross_entropy net ~inputs ~labels in
  let config = { Sgd.default_config with epochs = 10 } in
  let trained = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  let after = Sgd.cross_entropy trained ~inputs ~labels in
  Alcotest.(check bool) "loss decreased" true (after < before)

let test_regressor_fits_linear () =
  let rng = Rng.create 44 in
  let net = Builder.dense_net ~rng ~dims:[ 2; 16; 1 ] in
  let count = 300 in
  let inputs = Array.init count (fun _ -> [| Rng.uniform rng (-1.0) 1.0; Rng.uniform rng (-1.0) 1.0 |]) in
  let targets = Array.map (fun x -> [| (2.0 *. x.(0)) -. x.(1) +. 0.5 |]) inputs in
  let config = { Sgd.default_config with epochs = 60; learning_rate = 0.03 } in
  let trained = Sgd.train_regressor ~rng ~config net ~inputs ~targets in
  let mse = Sgd.mean_squared_error trained ~inputs ~targets in
  Alcotest.(check bool) (Printf.sprintf "mse %.4f < 0.02" mse) true (mse < 0.02)

let test_conv_classifier_learns () =
  let rng = Rng.create 45 in
  let net =
    Builder.conv_net ~rng ~in_channels:1 ~in_height:4 ~in_width:4
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 1; padding = 1 } ]
      ~dense:[ 8; 2 ]
  in
  (* Class 0: bright top half, class 1: bright bottom half. *)
  let count = 200 in
  let inputs = Array.make count [||] in
  let labels = Array.make count 0 in
  for i = 0 to count - 1 do
    let label = i mod 2 in
    labels.(i) <- label;
    inputs.(i) <-
      Array.init 16 (fun p ->
          let row = p / 4 in
          let bright = if label = 0 then row < 2 else row >= 2 in
          (if bright then 0.8 else 0.2) +. (0.05 *. Rng.gaussian rng))
  done;
  let config = { Sgd.default_config with epochs = 25 } in
  let trained = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  let acc = Sgd.accuracy trained ~inputs ~labels in
  Alcotest.(check bool) (Printf.sprintf "conv accuracy %.2f >= 0.9" acc) true (acc >= 0.9)

(* Numerical gradient check: run one SGD step with batch = dataset on a
   tiny net and compare the parameter change direction against a
   numerically estimated gradient. *)
let test_gradient_direction () =
  let rng = Rng.create 46 in
  let net = Builder.dense_net ~rng ~dims:[ 2; 3; 2 ] in
  let inputs = [| [| 0.5; -0.3 |]; [| -0.2; 0.8 |] |] in
  let labels = [| 0; 1 |] in
  let loss n = Sgd.cross_entropy n ~inputs ~labels in
  let before = loss net in
  let config =
    { Sgd.default_config with epochs = 1; batch_size = 2; learning_rate = 0.01; momentum = 0.0 }
  in
  let stepped = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  let after = loss stepped in
  Alcotest.(check bool) "one small step decreases loss" true (after < before)

let test_empty_dataset () =
  let net = Builder.dense_net ~rng:(Rng.create 1) ~dims:[ 2; 2 ] in
  Alcotest.check_raises "empty" (Invalid_argument "Sgd: empty training set") (fun () ->
      ignore
        (Sgd.train_classifier ~rng:(Rng.create 1) ~config:Sgd.default_config net ~inputs:[||]
           ~labels:[||]))

let test_mismatched_lengths () =
  let net = Builder.dense_net ~rng:(Rng.create 1) ~dims:[ 2; 2 ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Sgd.train_classifier: inputs and labels differ in length") (fun () ->
      ignore
        (Sgd.train_classifier ~rng:(Rng.create 1) ~config:Sgd.default_config net
           ~inputs:[| [| 0.0; 0.0 |] |] ~labels:[| 0; 1 |]))

let test_training_is_deterministic () =
  let make () =
    let rng = Rng.create 47 in
    let net = Builder.dense_net ~rng ~dims:[ 2; 4; 2 ] in
    let inputs, labels = blobs ~rng ~count:50 in
    let config = { Sgd.default_config with epochs = 5 } in
    Sgd.train_classifier ~rng ~config net ~inputs ~labels
  in
  let a = make () and b = make () in
  let x = [| 0.3; -0.7 |] in
  Alcotest.(check bool) "identical outputs" true
    (Vec.equal ~eps:0.0 (Network.forward a x) (Network.forward b x))

let suite =
  [
    ("classifier learns blobs", `Quick, test_classifier_learns);
    ("loss decreases", `Quick, test_loss_decreases);
    ("regressor fits linear", `Quick, test_regressor_fits_linear);
    ("conv classifier learns", `Quick, test_conv_classifier_learns);
    ("gradient direction", `Quick, test_gradient_direction);
    ("empty dataset", `Quick, test_empty_dataset);
    ("mismatched lengths", `Quick, test_mismatched_lengths);
    ("training deterministic", `Quick, test_training_is_deterministic);
  ]
