(* Smooth (sigmoid/tanh) activations: sound, incomplete verification
   with input splitting — paper §3.2 cases (2) and (3). *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Quant = Ivan_nn.Quant
module Serialize = Ivan_nn.Serialize
module Grad = Ivan_nn.Grad
module Sgd = Ivan_train.Sgd
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Itv = Ivan_domains.Itv
module Splits = Ivan_domains.Splits
module Interval_dom = Ivan_domains.Interval_dom
module Zonotope = Ivan_domains.Zonotope
module Deeppoly = Ivan_domains.Deeppoly
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan

let smooth_net ~activation ~seed ~dims =
  Builder.dense_net_act ~hidden_activation:activation ~rng:(Rng.create seed) ~dims

let unit_box d = Box.make ~lo:(Vec.zeros d) ~hi:(Vec.create d 1.0)

let test_forward_semantics () =
  let l act =
    Layer.make
      (Layer.Dense { weights = Ivan_tensor.Mat.of_arrays [| [| 1.0 |] |]; bias = [| 0.0 |] })
      act
  in
  Alcotest.(check (float 1e-12)) "sigmoid(0)" 0.5 (Layer.forward (l Layer.Sigmoid) [| 0.0 |]).(0);
  Alcotest.(check (float 1e-9)) "tanh(0)" 0.0 (Layer.forward (l Layer.Tanh) [| 0.0 |]).(0);
  Alcotest.(check bool) "sigmoid bounded" true
    ((Layer.forward (l Layer.Sigmoid) [| 100.0 |]).(0) <= 1.0);
  Alcotest.(check (float 1e-6)) "tanh(1)" (Float.tanh 1.0)
    (Layer.forward (l Layer.Tanh) [| 1.0 |]).(0)

let test_no_split_candidates () =
  let net = smooth_net ~activation:Layer.Tanh ~seed:1 ~dims:[ 2; 5; 3; 1 ] in
  Alcotest.(check int) "no splittable units" 0 (Network.num_relus net);
  Alcotest.(check int) "no relu ids" 0 (Array.length (Network.relu_ids net))

let test_serialize_roundtrip () =
  List.iter
    (fun activation ->
      let net = smooth_net ~activation ~seed:2 ~dims:[ 3; 4; 2 ] in
      let net' = Serialize.of_string (Serialize.to_string net) in
      let x = [| 0.3; -0.2; 0.9 |] in
      Alcotest.(check bool) "outputs equal" true
        (Vec.equal ~eps:0.0 (Network.forward net x) (Network.forward net' x)))
    [ Layer.Sigmoid; Layer.Tanh ]

let test_training_learns () =
  let rng = Rng.create 3 in
  let net = smooth_net ~activation:Layer.Tanh ~seed:3 ~dims:[ 2; 8; 2 ] in
  let count = 200 in
  let inputs = Array.make count [||] in
  let labels = Array.make count 0 in
  for i = 0 to count - 1 do
    let label = i mod 2 in
    let cx = if label = 0 then -1.0 else 1.0 in
    inputs.(i) <- [| cx +. (0.3 *. Rng.gaussian rng); 0.3 *. Rng.gaussian rng |];
    labels.(i) <- label
  done;
  let config = { Sgd.default_config with epochs = 30 } in
  let trained = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  Alcotest.(check bool) "tanh net learns" true (Sgd.accuracy trained ~inputs ~labels >= 0.95)

let test_gradient_finite_difference () =
  let net = smooth_net ~activation:Layer.Sigmoid ~seed:4 ~dims:[ 3; 5; 2 ] in
  let c = Vec.of_list [ 1.0; -1.0 ] in
  let x = [| 0.2; 0.7; 0.4 |] in
  let g = Grad.objective_gradient net ~c x in
  let f v = Vec.dot c (Network.forward net v) in
  let h = 1e-6 in
  for j = 0 to 2 do
    let xp = Vec.copy x and xm = Vec.copy x in
    xp.(j) <- xp.(j) +. h;
    xm.(j) <- xm.(j) -. h;
    let fd = (f xp -. f xm) /. (2.0 *. h) in
    Alcotest.(check bool) "smooth grad matches fd" true (Float.abs (g.(j) -. fd) < 1e-4)
  done

(* All three domains stay sound on smooth networks. *)
let test_domains_sound () =
  List.iter
    (fun activation ->
      for seed = 11 to 13 do
        let net = smooth_net ~activation ~seed ~dims:[ 3; 5; 4; 2 ] in
        let box = unit_box 3 in
        let rng = Rng.create seed in
        let check name (bounds : Ivan_domains.Bounds.t) =
          for _ = 1 to 300 do
            let x = Box.sample ~rng box in
            let tr = Network.forward_trace net x in
            Array.iteri
              (fun li layer ->
                Array.iteri
                  (fun idx v ->
                    Alcotest.(check bool) (name ^ " post sound") true
                      (v >= layer.Ivan_domains.Bounds.post_lo.(idx) -. 1e-6
                      && v <= layer.Ivan_domains.Bounds.post_hi.(idx) +. 1e-6))
                  tr.Network.post.(li))
              bounds.Ivan_domains.Bounds.layers
          done
        in
        (match Interval_dom.analyze net ~box ~splits:Splits.empty with
        | Interval_dom.Feasible b -> check "interval" b
        | Interval_dom.Infeasible -> Alcotest.fail "interval infeasible");
        (match Zonotope.analyze net ~box ~splits:Splits.empty with
        | Zonotope.Feasible a -> check "zonotope" a.Zonotope.bounds
        | Zonotope.Infeasible -> Alcotest.fail "zonotope infeasible");
        match Deeppoly.analyze net ~box ~splits:Splits.empty with
        | Deeppoly.Feasible a -> check "deeppoly" (Deeppoly.bounds a)
        | Deeppoly.Infeasible -> Alcotest.fail "deeppoly infeasible"
      done)
    [ Layer.Sigmoid; Layer.Tanh ]

(* Analyzer lower bounds are sound on smooth networks. *)
let test_analyzer_lb_sound () =
  for seed = 21 to 23 do
    let net = smooth_net ~activation:Layer.Tanh ~seed ~dims:[ 2; 5; 3; 1 ] in
    let box = unit_box 2 in
    let prop = Prop.make ~name:"s" ~input:box ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
    List.iter
      (fun (a : Analyzer.t) ->
        let o = a.Analyzer.run net ~prop ~box ~splits:Splits.empty in
        if o.Analyzer.lb < infinity then
          Alcotest.(check bool)
            (a.Analyzer.name ^ " lb sound on smooth")
            true
            (Fixtures.check_margin_lb ~seed net prop o.Analyzer.lb))
      [ Analyzer.interval (); Analyzer.zonotope (); Analyzer.lp_triangle () ]
  done

(* Input splitting refines smooth-network bounds: the paper's §3.2(3)
   claim that input splitting applies to any activation.  A property
   unprovable at the root becomes provable with splits. *)
let test_input_splitting_refines () =
  let rec find_case seed =
    if seed > 60 then Alcotest.fail "no suitable fixture found"
    else begin
      let net = smooth_net ~activation:Layer.Tanh ~seed ~dims:[ 2; 6; 4; 1 ] in
      let box = unit_box 2 in
      let base = Prop.make ~name:"r" ~input:box ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
      let sampled = Fixtures.approx_min_margin ~seed net base in
      let prop = { base with Prop.offset = -.sampled +. 0.05 } in
      let root =
        (Analyzer.zonotope ()).Analyzer.run net ~prop ~box ~splits:Splits.empty
      in
      match root.Analyzer.status with
      | Analyzer.Unknown -> (net, prop)
      | Analyzer.Verified | Analyzer.Counterexample _ -> find_case (seed + 1)
    end
  in
  let net, prop = find_case 31 in
  let run =
    Bab.verify ~analyzer:(Analyzer.zonotope ()) ~heuristic:Heuristic.input_smear
      ~budget:{ Bab.max_analyzer_calls = 2000; max_seconds = 30.0 }
      ~net ~prop ()
  in
  match run.Bab.verdict with
  | Bab.Proved -> Alcotest.(check bool) "needed branching" true (run.Bab.stats.Bab.branchings > 0)
  | Bab.Disproved x ->
      Alcotest.(check bool) "genuine CE" true (Analyzer.check_concrete net ~prop x)
  | Bab.Exhausted -> Alcotest.fail "input splitting failed to refine"

(* IVAN incremental verification with input splitting on a smooth
   network. *)
let test_incremental_smooth () =
  let net = smooth_net ~activation:Layer.Sigmoid ~seed:41 ~dims:[ 2; 6; 1 ] in
  let box = unit_box 2 in
  let base = Prop.make ~name:"i" ~input:box ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
  let sampled = Fixtures.approx_min_margin ~seed:41 net base in
  let prop = { base with Prop.offset = -.sampled +. 0.02 } in
  let updated = Quant.network Quant.Int16 net in
  let analyzer = Analyzer.zonotope () in
  let result =
    Ivan.verify_incremental ~analyzer ~heuristic:Heuristic.input_smear
      ~config:
        {
          Ivan.default_config with
          budget = { Bab.max_analyzer_calls = 2000; max_seconds = 30.0 };
        }
      ~net ~updated ~prop ()
  in
  match (result.Ivan.original.Bab.verdict, result.Ivan.updated.Bab.verdict) with
  | Bab.Exhausted, _ | _, Bab.Exhausted -> Alcotest.fail "smooth incremental exhausted"
  | _, _ -> ()

let suite =
  [
    ("forward semantics", `Quick, test_forward_semantics);
    ("no split candidates", `Quick, test_no_split_candidates);
    ("serialize roundtrip", `Quick, test_serialize_roundtrip);
    ("training learns", `Quick, test_training_learns);
    ("gradient finite difference", `Quick, test_gradient_finite_difference);
    ("domains sound", `Quick, test_domains_sound);
    ("analyzer lb sound", `Quick, test_analyzer_lb_sound);
    ("input splitting refines", `Quick, test_input_splitting_refines);
    ("incremental smooth", `Quick, test_incremental_smooth);
  ]
