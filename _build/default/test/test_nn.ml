(* Tests for the network substrate: layers, conv lowering, quantization,
   perturbations, serialization. *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Quant = Ivan_nn.Quant
module Perturb = Ivan_nn.Perturb
module Serialize = Ivan_nn.Serialize
module Relu_id = Ivan_nn.Relu_id

let dense_layer ?(activation = Layer.Relu) weights bias =
  Layer.make (Layer.Dense { weights = Mat.of_arrays weights; bias }) activation

(* The running-example network N from the paper's Fig. 2 is a handy
   ground truth: 2 inputs, two hidden ReLU layers of width 2, 1 output. *)
let paper_network () =
  Network.make
    [
      dense_layer [| [| 2.0; -1.0 |]; [| 1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense_layer [| [| 1.0; -2.0 |]; [| -1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense_layer ~activation:Layer.Identity [| [| 1.0; -1.0 |] |] [| 0.0 |];
    ]

let test_layer_forward () =
  let l = dense_layer [| [| 1.0; -1.0 |]; [| 2.0; 0.0 |] |] [| 0.5; -3.0 |] in
  let out = Layer.forward l (Vec.of_list [ 1.0; 2.0 ]) in
  Alcotest.(check bool) "relu clamps" true (Vec.equal out (Vec.of_list [ 0.0; 0.0 ]));
  let pre = Layer.pre_activation l (Vec.of_list [ 1.0; 2.0 ]) in
  Alcotest.(check bool) "pre-activation" true (Vec.equal pre (Vec.of_list [ -0.5; -1.0 ]))

let test_layer_bad_bias () =
  Alcotest.check_raises "bias mismatch"
    (Invalid_argument "Layer.make: dense bias length must equal weight rows") (fun () ->
      ignore (dense_layer [| [| 1.0 |] |] [| 1.0; 2.0 |]))

let test_network_dims () =
  let n = paper_network () in
  Alcotest.(check int) "input" 2 (Network.input_dim n);
  Alcotest.(check int) "output" 1 (Network.output_dim n);
  Alcotest.(check int) "layers" 3 (Network.num_layers n);
  Alcotest.(check int) "relus" 4 (Network.num_relus n);
  Alcotest.(check int) "neurons" 5 (Network.num_neurons n)

let test_network_mismatch () =
  let l1 = dense_layer [| [| 1.0; 1.0 |] |] [| 0.0 |] in
  let l2 = dense_layer [| [| 1.0; 1.0 |] |] [| 0.0 |] in
  Alcotest.check_raises "chain mismatch"
    (Invalid_argument "Network.make: layer 0 outputs 1 but layer 1 expects 2") (fun () ->
      ignore (Network.make [ l1; l2 ]))

let test_network_forward () =
  let n = paper_network () in
  (* x = (1, 0): layer1 pre (2, 1) -> post (2, 1); layer2 pre (0, -1) ->
     post (0, 0); output 0. *)
  let y = Network.forward n (Vec.of_list [ 1.0; 0.0 ]) in
  Alcotest.(check (float 1e-12)) "forward" 0.0 (Vec.get y 0)

let test_forward_trace () =
  let n = paper_network () in
  let tr = Network.forward_trace n (Vec.of_list [ 1.0; 0.0 ]) in
  Alcotest.(check bool) "pre layer0" true (Vec.equal tr.pre.(0) (Vec.of_list [ 2.0; 1.0 ]));
  Alcotest.(check bool) "post layer0" true (Vec.equal tr.post.(0) (Vec.of_list [ 2.0; 1.0 ]));
  Alcotest.(check bool) "pre layer1" true (Vec.equal tr.pre.(1) (Vec.of_list [ 0.0; -1.0 ]));
  Alcotest.(check bool) "post layer1" true (Vec.equal tr.post.(1) (Vec.of_list [ 0.0; 0.0 ]))

let test_relu_ids () =
  let n = paper_network () in
  let ids = Network.relu_ids n in
  Alcotest.(check int) "count" 4 (Array.length ids);
  Alcotest.(check bool) "first" true (Relu_id.equal ids.(0) (Relu_id.make ~layer:0 ~index:0));
  Alcotest.(check bool) "last" true (Relu_id.equal ids.(3) (Relu_id.make ~layer:1 ~index:1))

let test_same_architecture () =
  let n = paper_network () in
  let m = Network.map_weights (fun w -> w +. 0.25) n in
  Alcotest.(check bool) "same arch after update" true (Network.same_architecture n m);
  let other = Builder.dense_net ~rng:(Rng.create 1) ~dims:[ 2; 3; 1 ] in
  Alcotest.(check bool) "different arch" false (Network.same_architecture n other)

(* Conv layer vs direct dense lowering: forward must agree. *)
let conv_fixture rng =
  let spec =
    {
      Layer.in_channels = 2;
      in_height = 4;
      in_width = 4;
      out_channels = 3;
      kernel_h = 3;
      kernel_w = 3;
      stride = 1;
      padding = 1;
    }
  in
  let kernel = Array.init (3 * 2 * 3 * 3) (fun _ -> Rng.gaussian rng) in
  let bias = Array.init 3 (fun _ -> Rng.gaussian rng) in
  Layer.make (Layer.Conv2d { spec; kernel; bias }) Layer.Relu

let test_conv_dims () =
  let l = conv_fixture (Rng.create 5) in
  Alcotest.(check int) "in" 32 (Layer.input_dim l);
  Alcotest.(check int) "out" 48 (Layer.output_dim l)

let test_conv_dense_agree () =
  let rng = Rng.create 6 in
  let l = conv_fixture rng in
  let w, b = Layer.dense_affine l in
  for _ = 1 to 10 do
    let x = Array.init (Layer.input_dim l) (fun _ -> Rng.gaussian rng) in
    let direct = Layer.pre_activation l x in
    let lowered = Vec.add (Mat.matvec w x) b in
    Alcotest.(check bool) "conv = dense lowering" true (Vec.equal ~eps:1e-9 direct lowered)
  done

let test_conv_stride_padding () =
  let spec =
    {
      Layer.in_channels = 1;
      in_height = 5;
      in_width = 5;
      out_channels = 1;
      kernel_h = 3;
      kernel_w = 3;
      stride = 2;
      padding = 0;
    }
  in
  Alcotest.(check int) "out height" 2 (Layer.conv_out_height spec);
  Alcotest.(check int) "out width" 2 (Layer.conv_out_width spec);
  (* Sum kernel over an all-ones image gives 9 per window. *)
  let kernel = Array.make 9 1.0 in
  let l = Layer.make (Layer.Conv2d { spec; kernel; bias = [| 0.0 |] }) Layer.Identity in
  let out = Layer.forward l (Array.make 25 1.0) in
  Alcotest.(check bool) "windows sum to 9" true (Vec.equal out (Vec.of_list [ 9.0; 9.0; 9.0; 9.0 ]))

let test_builder_dense_shapes () =
  let n = Builder.dense_net ~rng:(Rng.create 7) ~dims:[ 4; 8; 8; 3 ] in
  Alcotest.(check int) "input" 4 (Network.input_dim n);
  Alcotest.(check int) "output" 3 (Network.output_dim n);
  Alcotest.(check int) "relus" 16 (Network.num_relus n);
  let last = (Network.layers n).(2) in
  Alcotest.(check bool) "last layer identity" true (Layer.activation last = Layer.Identity)

let test_builder_conv_shapes () =
  let n =
    Builder.conv_net ~rng:(Rng.create 8) ~in_channels:1 ~in_height:6 ~in_width:6
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 1; padding = 0 } ]
      ~dense:[ 10; 2 ]
  in
  Alcotest.(check int) "input" 36 (Network.input_dim n);
  Alcotest.(check int) "output" 2 (Network.output_dim n);
  (* conv out: 2 x 4 x 4 = 32 relus, plus 10 hidden = 42. *)
  Alcotest.(check int) "relus" 42 (Network.num_relus n)

let test_quant_idempotent_on_grid () =
  let scale = Quant.tensor_scale ~bits:8 [| 1.0; -0.5; 0.25 |] in
  let q = Quant.quantize_value ~scale 0.7 in
  Alcotest.(check (float 1e-12)) "re-quantizing is identity" q (Quant.quantize_value ~scale q)

let test_quant_error_bound () =
  let rng = Rng.create 9 in
  let values = Array.init 100 (fun _ -> Rng.uniform rng (-2.0) 2.0) in
  let scale = Quant.tensor_scale ~bits:8 values in
  Array.iter
    (fun v ->
      let q = Quant.quantize_value ~scale v in
      Alcotest.(check bool) "error <= scale/2" true (Float.abs (q -. v) <= (scale /. 2.0) +. 1e-12))
    values

let test_quant_int16_closer_than_int8 () =
  let rng = Rng.create 10 in
  let n = Builder.dense_net ~rng ~dims:[ 3; 8; 2 ] in
  let distance a b =
    let da = Network.layers a and db = Network.layers b in
    let acc = ref 0.0 in
    Array.iteri
      (fun i la ->
        let wa, ba = Layer.dense_affine la and wb, bb = Layer.dense_affine db.(i) in
        acc := !acc +. Mat.frobenius_norm (Mat.sub wa wb) +. Vec.norm2 (Vec.sub ba bb))
      da;
    !acc
  in
  let d16 = distance n (Quant.network Quant.Int16 n) in
  let d8 = distance n (Quant.network Quant.Int8 n) in
  Alcotest.(check bool) "int16 distance < int8 distance" true (d16 < d8);
  Alcotest.(check bool) "int16 perturbs at all" true (d16 > 0.0)

let test_quant_preserves_architecture () =
  let n = Builder.dense_net ~rng:(Rng.create 11) ~dims:[ 3; 5; 2 ] in
  Alcotest.(check bool) "same arch" true (Network.same_architecture n (Quant.network Quant.Int8 n))

let test_perturb_relative_bound () =
  let rng = Rng.create 12 in
  let n = Builder.dense_net ~rng ~dims:[ 3; 6; 2 ] in
  let p = Perturb.random_relative ~rng ~fraction:0.05 n in
  let wn, _ = Network.last_dense n and wp, _ = Network.last_dense p in
  for i = 0 to Mat.rows wn - 1 do
    for j = 0 to Mat.cols wn - 1 do
      let orig = Mat.get wn i j and pert = Mat.get wp i j in
      Alcotest.(check bool) "within 5%" true
        (Float.abs (pert -. orig) <= (Float.abs orig *. 0.05) +. 1e-12)
    done
  done

let test_perturb_last_layer_norm () =
  let rng = Rng.create 13 in
  let n = Builder.dense_net ~rng ~dims:[ 3; 6; 2 ] in
  let delta = 0.1 in
  let p = Perturb.last_layer ~rng ~delta n in
  let wn, _ = Network.last_dense n and wp, _ = Network.last_dense p in
  Alcotest.(check (float 1e-9)) "frobenius norm = delta" delta (Mat.frobenius_norm (Mat.sub wp wn));
  (* Earlier layers untouched. *)
  let l0n = (Network.layers n).(0) and l0p = (Network.layers p).(0) in
  let w0n, _ = Layer.dense_affine l0n and w0p, _ = Layer.dense_affine l0p in
  Alcotest.(check bool) "first layer unchanged" true (Mat.equal w0n w0p)

let test_serialize_roundtrip_dense () =
  let n = Builder.dense_net ~rng:(Rng.create 14) ~dims:[ 4; 7; 3 ] in
  let n' = Serialize.of_string (Serialize.to_string n) in
  Alcotest.(check bool) "same arch" true (Network.same_architecture n n');
  let rng = Rng.create 15 in
  for _ = 1 to 5 do
    let x = Array.init 4 (fun _ -> Rng.gaussian rng) in
    Alcotest.(check bool) "same outputs" true
      (Vec.equal ~eps:0.0 (Network.forward n x) (Network.forward n' x))
  done

let test_serialize_roundtrip_conv () =
  let n =
    Builder.conv_net ~rng:(Rng.create 16) ~in_channels:1 ~in_height:5 ~in_width:5
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 2; padding = 1 } ]
      ~dense:[ 6; 2 ]
  in
  let n' = Serialize.of_string (Serialize.to_string n) in
  let x = Array.init 25 (fun i -> float_of_int i /. 25.0) in
  Alcotest.(check bool) "conv roundtrip outputs" true
    (Vec.equal ~eps:0.0 (Network.forward n x) (Network.forward n' x))

let test_serialize_file_roundtrip () =
  let n = Builder.dense_net ~rng:(Rng.create 17) ~dims:[ 2; 3; 1 ] in
  let path = Filename.temp_file "ivan_net" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.to_file path n;
      let n' = Serialize.of_file path in
      Alcotest.(check bool) "file roundtrip" true (Network.same_architecture n n'))

let test_serialize_malformed () =
  (match Serialize.of_string "garbage" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on garbage");
  match Serialize.of_string "network 1\nlayer dense 1 1 bogus\nbias: 0x0p+0\nrow: 0x0p+0" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on bad activation"

let prop_quant_error_shrinks_with_bits =
  QCheck.Test.make ~name:"quantization error shrinks with more bits" ~count:100
    QCheck.(make QCheck.Gen.(array_size (return 12) (float_range (-3.0) 3.0)))
    (fun values ->
      QCheck.assume (Array.exists (fun v -> Float.abs v > 1e-6) values);
      let err bits =
        let scale = Quant.tensor_scale ~bits values in
        Array.fold_left
          (fun acc v -> acc +. Float.abs (Quant.quantize_value ~scale v -. v))
          0.0 values
      in
      err 16 <= err 8 +. 1e-12)

let prop_relu_id_ordering =
  QCheck.Test.make ~name:"relu ids sorted" ~count:50
    QCheck.(make QCheck.Gen.(pair (int_range 2 5) (int_range 1 6)))
    (fun (layers, width) ->
      let dims = List.init (layers + 1) (fun _ -> width) in
      let n = Builder.dense_net ~rng:(Rng.create 99) ~dims in
      let ids = Network.relu_ids n in
      let sorted = Array.copy ids in
      Array.sort Relu_id.compare sorted;
      Array.for_all2 Relu_id.equal ids sorted)



(* ---------------- Product networks ---------------- *)

module Product = Ivan_nn.Product

let test_product_forward () =
  let a = Builder.dense_net ~rng:(Rng.create 81) ~dims:[ 3; 5; 2 ] in
  let b = Builder.dense_net ~rng:(Rng.create 82) ~dims:[ 3; 5; 2 ] in
  let p = Product.product a b in
  Alcotest.(check int) "input" 3 (Network.input_dim p);
  Alcotest.(check int) "output" 4 (Network.output_dim p);
  Alcotest.(check int) "split" 2 (Product.output_split a b);
  let rng = Rng.create 83 in
  for _ = 1 to 20 do
    let x = Array.init 3 (fun _ -> Rng.gaussian rng) in
    let y = Network.forward p x in
    let ya = Network.forward a x and yb = Network.forward b x in
    Alcotest.(check bool) "first block" true (Vec.equal ~eps:1e-9 (Array.sub y 0 2) ya);
    Alcotest.(check bool) "second block" true (Vec.equal ~eps:1e-9 (Array.sub y 2 2) yb)
  done

let test_product_conv () =
  let mk seed =
    Builder.conv_net ~rng:(Rng.create seed) ~in_channels:1 ~in_height:4 ~in_width:4
      ~convs:[ { Builder.out_channels = 2; kernel = 3; stride = 1; padding = 1 } ]
      ~dense:[ 6; 2 ]
  in
  let a = mk 84 and b = mk 85 in
  let p = Product.product a b in
  let x = Array.init 16 (fun i -> float_of_int i /. 16.0) in
  let y = Network.forward p x in
  Alcotest.(check bool) "conv product forward" true
    (Vec.equal ~eps:1e-9 (Array.sub y 0 2) (Network.forward a x)
    && Vec.equal ~eps:1e-9 (Array.sub y 2 2) (Network.forward b x))

let test_product_shape_checks () =
  let a = Builder.dense_net ~rng:(Rng.create 86) ~dims:[ 2; 3; 1 ] in
  let b = Builder.dense_net ~rng:(Rng.create 87) ~dims:[ 3; 3; 1 ] in
  Alcotest.check_raises "input dims" (Invalid_argument "Product.product: input dimensions differ")
    (fun () -> ignore (Product.product a b));
  let c = Builder.dense_net ~rng:(Rng.create 88) ~dims:[ 2; 3; 3; 1 ] in
  Alcotest.check_raises "layer counts" (Invalid_argument "Product.product: layer counts differ")
    (fun () -> ignore (Product.product a c))

let test_product_same_architecture_of_updates () =
  (* Products with different updates of the same base share an
     architecture -- the precondition for incremental differential
     verification. *)
  let base = Builder.dense_net ~rng:(Rng.create 89) ~dims:[ 2; 4; 2 ] in
  let u1 = Quant.network Quant.Int16 base in
  let u2 = Quant.network Quant.Int8 base in
  Alcotest.(check bool) "products share architecture" true
    (Network.same_architecture (Product.product base u1) (Product.product base u2))



(* ---------------- Magnitude pruning ---------------- *)

let test_magnitude_prune_fraction () =
  let n = Builder.dense_net ~rng:(Rng.create 91) ~dims:[ 4; 10; 3 ] in
  let p = Perturb.magnitude_prune ~fraction:0.5 n in
  Alcotest.(check bool) "same arch" true (Network.same_architecture n p);
  (* Roughly half of each layer's weights become zero. *)
  Array.iteri
    (fun i layer ->
      let w, _ = Layer.dense_affine layer in
      let total = Mat.rows w * Mat.cols w in
      let zeros = ref 0 in
      for r = 0 to Mat.rows w - 1 do
        for c = 0 to Mat.cols w - 1 do
          if Mat.get w r c = 0.0 then incr zeros
        done
      done;
      Alcotest.(check bool)
        (Printf.sprintf "layer %d about half pruned (%d/%d)" i !zeros total)
        true
        (float_of_int !zeros >= 0.4 *. float_of_int total))
    (Network.layers p)

let test_magnitude_prune_extremes () =
  let n = Builder.dense_net ~rng:(Rng.create 92) ~dims:[ 3; 5; 2 ] in
  (* fraction 0: identity on the weights. *)
  let p0 = Perturb.magnitude_prune ~fraction:0.0 n in
  let w, _ = Network.last_dense n and w0, _ = Network.last_dense p0 in
  Alcotest.(check bool) "fraction 0 unchanged" true (Mat.equal w w0);
  (* fraction 1: everything zero. *)
  let p1 = Perturb.magnitude_prune ~fraction:1.0 n in
  let w1, _ = Network.last_dense p1 in
  Alcotest.(check (float 0.0)) "fraction 1 zero" 0.0 (Mat.max_abs w1);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Perturb.magnitude_prune: fraction must be in [0, 1]") (fun () ->
      ignore (Perturb.magnitude_prune ~fraction:1.5 n))

let test_magnitude_prune_keeps_large_weights () =
  let n = Builder.dense_net ~rng:(Rng.create 93) ~dims:[ 3; 6; 2 ] in
  let p = Perturb.magnitude_prune ~fraction:0.3 n in
  let w, _ = Network.last_dense n and wp, _ = Network.last_dense p in
  (* The largest-magnitude weight always survives. *)
  let best = ref (0, 0) in
  for r = 0 to Mat.rows w - 1 do
    for c = 0 to Mat.cols w - 1 do
      let br, bc = !best in
      if Float.abs (Mat.get w r c) > Float.abs (Mat.get w br bc) then best := (r, c)
    done
  done;
  let br, bc = !best in
  Alcotest.(check (float 0.0)) "max weight survives" (Mat.get w br bc) (Mat.get wp br bc)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("layer forward", `Quick, test_layer_forward);
    ("layer bad bias", `Quick, test_layer_bad_bias);
    ("network dims", `Quick, test_network_dims);
    ("network mismatch", `Quick, test_network_mismatch);
    ("network forward", `Quick, test_network_forward);
    ("forward trace", `Quick, test_forward_trace);
    ("relu ids", `Quick, test_relu_ids);
    ("same architecture", `Quick, test_same_architecture);
    ("conv dims", `Quick, test_conv_dims);
    ("conv dense lowering agrees", `Quick, test_conv_dense_agree);
    ("conv stride/padding", `Quick, test_conv_stride_padding);
    ("builder dense shapes", `Quick, test_builder_dense_shapes);
    ("builder conv shapes", `Quick, test_builder_conv_shapes);
    ("quant idempotent on grid", `Quick, test_quant_idempotent_on_grid);
    ("quant error bound", `Quick, test_quant_error_bound);
    ("quant int16 closer than int8", `Quick, test_quant_int16_closer_than_int8);
    ("quant preserves architecture", `Quick, test_quant_preserves_architecture);
    ("perturb relative bound", `Quick, test_perturb_relative_bound);
    ("perturb last layer norm", `Quick, test_perturb_last_layer_norm);
    ("serialize dense roundtrip", `Quick, test_serialize_roundtrip_dense);
    ("serialize conv roundtrip", `Quick, test_serialize_roundtrip_conv);
    ("serialize file roundtrip", `Quick, test_serialize_file_roundtrip);
    ("serialize malformed", `Quick, test_serialize_malformed);
    q prop_quant_error_shrinks_with_bits;
    q prop_relu_id_ordering;
    ("product forward", `Quick, test_product_forward);
    ("product conv", `Quick, test_product_conv);
    ("product shape checks", `Quick, test_product_shape_checks);
    ("product arch of updates", `Quick, test_product_same_architecture_of_updates);
    ("magnitude prune fraction", `Quick, test_magnitude_prune_fraction);
    ("magnitude prune extremes", `Quick, test_magnitude_prune_extremes);
    ("magnitude prune keeps large", `Quick, test_magnitude_prune_keeps_large_weights);
  ]
