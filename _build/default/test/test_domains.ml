(* Tests for the abstract domains: interval, zonotope, DeepPoly —
   soundness against sampled executions, precision ordering, split
   handling, infeasibility detection. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box
module Itv = Ivan_domains.Itv
module Splits = Ivan_domains.Splits
module Bounds = Ivan_domains.Bounds
module Interval_dom = Ivan_domains.Interval_dom
module Zonotope = Ivan_domains.Zonotope
module Deeppoly = Ivan_domains.Deeppoly

let unit_box d = Box.make ~lo:(Vec.zeros d) ~hi:(Vec.create d 1.0)

(* ---------------- Itv ---------------- *)

let test_itv_ops () =
  let a = Itv.make (-1.0) 2.0 in
  let b = Itv.make 0.5 1.0 in
  Alcotest.(check (float 1e-12)) "add lo" (-0.5) (Itv.add a b).Itv.lo;
  Alcotest.(check (float 1e-12)) "scale neg hi" 2.0 (Itv.scale (-2.0) a).Itv.hi;
  Alcotest.(check (float 1e-12)) "relu lo" 0.0 (Itv.relu a).Itv.lo;
  Alcotest.(check bool) "meet" true (Itv.meet a b = Some b);
  Alcotest.(check bool) "empty meet" true (Itv.meet (Itv.make 0.0 1.0) (Itv.make 2.0 3.0) = None)

let test_itv_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Itv.make: lo > hi") (fun () ->
      ignore (Itv.make 1.0 0.0))

(* ---------------- Splits ---------------- *)

let test_splits_basic () =
  let r0 = Relu_id.make ~layer:0 ~index:0 in
  let s = Splits.add r0 Splits.Pos Splits.empty in
  Alcotest.(check bool) "mem" true (Splits.mem r0 s);
  Alcotest.(check bool) "find" true (Splits.find r0 s = Some Splits.Pos);
  Alcotest.(check int) "cardinal" 1 (Splits.cardinal s);
  Alcotest.check_raises "double split" (Invalid_argument "Splits.add: r[0,0] already split")
    (fun () -> ignore (Splits.add r0 Splits.Neg s))

(* ---------------- soundness harness ---------------- *)

(* For each sampled input consistent with the splits, the trace's pre
   and post activations must lie within the claimed bounds. *)
let check_bounds_sound ~seed net box splits (bounds : Bounds.t) =
  let rng = Rng.create seed in
  let violations = ref 0 in
  let checked = ref 0 in
  for _ = 1 to 500 do
    let x = Box.sample ~rng box in
    let tr = Network.forward_trace net x in
    (* Respect the split assumptions: skip samples that violate them. *)
    let consistent =
      List.for_all
        (fun ((r : Relu_id.t), phase) ->
          let v = tr.Network.pre.(r.Relu_id.layer).(r.Relu_id.index) in
          match phase with Splits.Pos -> v >= 0.0 | Splits.Neg -> v < 0.0)
        (Splits.bindings splits)
    in
    if consistent then begin
      incr checked;
      Array.iteri
        (fun li layer ->
          Array.iteri
            (fun idx v ->
              if
                v < layer.Bounds.pre_lo.(idx) -. 1e-6 || v > layer.Bounds.pre_hi.(idx) +. 1e-6
              then incr violations)
            tr.Network.pre.(li);
          Array.iteri
            (fun idx v ->
              if
                v < layer.Bounds.post_lo.(idx) -. 1e-6 || v > layer.Bounds.post_hi.(idx) +. 1e-6
              then incr violations)
            tr.Network.post.(li))
        bounds.Bounds.layers
    end
  done;
  (!violations, !checked)

let random_case seed =
  let net = Fixtures.random_net ~seed ~dims:[ 3; 6; 5; 2 ] in
  let box = unit_box 3 in
  (net, box)

let test_interval_sound () =
  for seed = 1 to 5 do
    let net, box = random_case seed in
    match Interval_dom.analyze net ~box ~splits:Splits.empty with
    | Interval_dom.Infeasible -> Alcotest.fail "unexpected infeasible"
    | Interval_dom.Feasible bounds ->
        let violations, checked = check_bounds_sound ~seed net box Splits.empty bounds in
        Alcotest.(check int) "no violations" 0 violations;
        Alcotest.(check bool) "checked some points" true (checked > 0)
  done

let test_zonotope_sound () =
  for seed = 1 to 5 do
    let net, box = random_case seed in
    match Zonotope.analyze net ~box ~splits:Splits.empty with
    | Zonotope.Infeasible -> Alcotest.fail "unexpected infeasible"
    | Zonotope.Feasible a ->
        let violations, _ = check_bounds_sound ~seed net box Splits.empty a.Zonotope.bounds in
        Alcotest.(check int) "no violations" 0 violations
  done

let test_deeppoly_sound () =
  for seed = 1 to 5 do
    let net, box = random_case seed in
    match Deeppoly.analyze net ~box ~splits:Splits.empty with
    | Deeppoly.Infeasible -> Alcotest.fail "unexpected infeasible"
    | Deeppoly.Feasible a ->
        let violations, _ = check_bounds_sound ~seed net box Splits.empty (Deeppoly.bounds a) in
        Alcotest.(check int) "no violations" 0 violations
  done

(* On the first layer (a pure affine image of the box) the zonotope is
   exact, hence equal to the interval bounds, and on deeper layers the
   zonotope's *second* affine image retains input correlations that
   intervals lose: verify on a network where the correlation matters
   (y = x - x is exactly 0 for zonotopes, [-1, 1] for intervals). *)
let test_zonotope_exactness_vs_interval () =
  let net, box = random_case 11 in
  (match
     ( Interval_dom.analyze net ~box ~splits:Splits.empty,
       Zonotope.analyze net ~box ~splits:Splits.empty )
   with
  | Interval_dom.Feasible ib, Zonotope.Feasible za ->
      let il = ib.Bounds.layers.(0) and zl = za.Zonotope.bounds.Bounds.layers.(0) in
      for j = 0 to Vec.dim il.Bounds.pre_lo - 1 do
        Alcotest.(check (float 1e-9)) "first layer pre lo equal" il.Bounds.pre_lo.(j)
          zl.Bounds.pre_lo.(j);
        Alcotest.(check (float 1e-9)) "first layer pre hi equal" il.Bounds.pre_hi.(j)
          zl.Bounds.pre_hi.(j)
      done
  | _, _ -> Alcotest.fail "unexpected infeasible");
  (* Cancellation network: two identity-activation layers computing
     y = (x) then (x - x). *)
  let open Ivan_nn in
  let l1 =
    Layer.make
      (Layer.Dense { weights = Ivan_tensor.Mat.of_arrays [| [| 1.0 |]; [| 1.0 |] |]; bias = [| 0.0; 0.0 |] })
      Layer.Identity
  in
  let l2 =
    Layer.make
      (Layer.Dense { weights = Ivan_tensor.Mat.of_arrays [| [| 1.0; -1.0 |] |]; bias = [| 0.0 |] })
      Layer.Identity
  in
  let cancel = Network.make [ l1; l2 ] in
  let b = Box.make ~lo:(Vec.of_list [ -1.0 ]) ~hi:(Vec.of_list [ 1.0 ]) in
  match
    ( Interval_dom.analyze cancel ~box:b ~splits:Splits.empty,
      Zonotope.analyze cancel ~box:b ~splits:Splits.empty )
  with
  | Interval_dom.Feasible ib, Zonotope.Feasible za ->
      Alcotest.(check (float 1e-12)) "interval lo -2" (-2.0) (Bounds.output_lo ib).(0);
      Alcotest.(check (float 1e-12)) "zonotope lo 0" 0.0 (Bounds.output_lo za.Zonotope.bounds).(0);
      Alcotest.(check (float 1e-12)) "zonotope hi 0" 0.0 (Bounds.output_hi za.Zonotope.bounds).(0)
  | _, _ -> Alcotest.fail "unexpected infeasible"

(* DeepPoly objective backsubstitution is sound and at least as tight as
   its own output-layer interval combination. *)
let test_deeppoly_objective () =
  for seed = 21 to 25 do
    let net, box = random_case seed in
    let c = Vec.of_list [ 1.0; -1.0 ] in
    match Deeppoly.analyze net ~box ~splits:Splits.empty with
    | Deeppoly.Infeasible -> Alcotest.fail "unexpected infeasible"
    | Deeppoly.Feasible a ->
        let itv = Deeppoly.objective_itv a ~c ~offset:0.0 in
        let naive = Bounds.objective_itv (Deeppoly.bounds a) ~c ~offset:0.0 in
        Alcotest.(check bool) "tighter than naive" true
          (itv.Itv.lo >= naive.Itv.lo -. 1e-9 && itv.Itv.hi <= naive.Itv.hi +. 1e-9);
        (* soundness against samples *)
        let rng = Rng.create seed in
        for _ = 1 to 300 do
          let x = Box.sample ~rng box in
          let y = Network.forward net x in
          let v = Vec.dot c y in
          Alcotest.(check bool) "within" true (v >= itv.Itv.lo -. 1e-6 && v <= itv.Itv.hi +. 1e-6)
        done
  done

(* Splitting a ReLU must refine the bounds on the corresponding side. *)
let find_ambiguous net box =
  match Deeppoly.analyze net ~box ~splits:Splits.empty with
  | Deeppoly.Infeasible -> None
  | Deeppoly.Feasible a -> (
      match Bounds.ambiguous_relus (Deeppoly.bounds a) net ~splits:Splits.empty with
      | [] -> None
      | r :: _ -> Some r)

let test_split_refines () =
  let net, box = random_case 31 in
  match find_ambiguous net box with
  | None -> Alcotest.fail "fixture has no ambiguous relu"
  | Some r -> (
      let splits = Splits.add r Splits.Pos Splits.empty in
      match (Deeppoly.analyze net ~box ~splits:Splits.empty, Deeppoly.analyze net ~box ~splits) with
      | Deeppoly.Feasible base, Deeppoly.Feasible pos ->
          let pre_base = Bounds.pre_itv (Deeppoly.bounds base) r in
          let pre_pos = Bounds.pre_itv (Deeppoly.bounds pos) r in
          Alcotest.(check bool) "pos split clips lb to 0" true (pre_pos.Itv.lo >= 0.0);
          Alcotest.(check bool) "pos split within base" true (pre_pos.Itv.hi <= pre_base.Itv.hi +. 1e-9)
      | _, _ -> Alcotest.fail "unexpected infeasible")

let test_split_soundness_on_consistent_points () =
  let net, box = random_case 32 in
  match find_ambiguous net box with
  | None -> Alcotest.fail "fixture has no ambiguous relu"
  | Some r ->
      List.iter
        (fun phase ->
          let splits = Splits.add r phase Splits.empty in
          match Zonotope.analyze net ~box ~splits with
          | Zonotope.Infeasible -> Alcotest.fail "split side unexpectedly empty"
          | Zonotope.Feasible a ->
              let violations, checked = check_bounds_sound ~seed:32 net box splits a.Zonotope.bounds in
              Alcotest.(check int) "no violations on consistent points" 0 violations;
              Alcotest.(check bool) "some consistent points" true (checked > 0))
        [ Splits.Pos; Splits.Neg ]

(* Forcing an impossible phase must be reported as infeasible. *)
let stable_relu_with_sign net box =
  match Deeppoly.analyze net ~box ~splits:Splits.empty with
  | Deeppoly.Infeasible -> None
  | Deeppoly.Feasible a ->
      let bounds = Deeppoly.bounds a in
      let found = ref None in
      Array.iteri
        (fun li layer ->
          match Ivan_nn.Layer.negative_slope (Ivan_nn.Layer.activation (Network.layers net).(li)) with
          | None -> ()
          | Some _ ->
              Array.iteri
                (fun idx lo ->
                  if !found = None then
                    if lo > 0.01 then found := Some (Relu_id.make ~layer:li ~index:idx, Splits.Neg)
                    else if layer.Bounds.pre_hi.(idx) < -0.01 then
                      found := Some (Relu_id.make ~layer:li ~index:idx, Splits.Pos))
                layer.Bounds.pre_lo)
        bounds.Bounds.layers;
      !found

let test_infeasible_detection () =
  (* Search a few seeds for a network with a stable relu. *)
  let rec go seed =
    if seed > 60 then Alcotest.fail "no stable relu found in fixtures"
    else
      let net, box = random_case seed in
      match stable_relu_with_sign net box with
      | None -> go (seed + 1)
      | Some (r, impossible_phase) ->
          let splits = Splits.add r impossible_phase Splits.empty in
          (match Interval_dom.analyze net ~box ~splits with
          | Interval_dom.Infeasible -> ()
          | Interval_dom.Feasible _ -> Alcotest.fail "interval missed infeasibility");
          (match Zonotope.analyze net ~box ~splits with
          | Zonotope.Infeasible -> ()
          | Zonotope.Feasible _ -> Alcotest.fail "zonotope missed infeasibility");
          (match Deeppoly.analyze net ~box ~splits with
          | Deeppoly.Infeasible -> ()
          | Deeppoly.Feasible _ -> Alcotest.fail "deeppoly missed infeasibility")
  in
  go 41

let test_zonotope_relu_terms () =
  let net, box = random_case 51 in
  match Zonotope.analyze net ~box ~splits:Splits.empty with
  | Zonotope.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Zonotope.Feasible a ->
      let ambiguous =
        Bounds.ambiguous_relus a.Zonotope.bounds net ~splits:Splits.empty |> List.length
      in
      Alcotest.(check int) "one term per ambiguous relu"
        (Box.dim box + ambiguous)
        a.Zonotope.nterms;
      (* scores are non-negative and only nonzero for term-bearing relus *)
      let c = Vec.of_list [ 1.0; 0.0 ] in
      let coeffs = Zonotope.objective_coeffs a ~c in
      Ivan_nn.Relu_id.Map.iter
        (fun r _ ->
          Alcotest.(check bool) "score >= 0" true (Zonotope.relu_score_from_coeffs a coeffs r >= 0.0))
        a.Zonotope.relu_terms

let test_degenerate_box () =
  (* A zero-width box: all domains collapse to the single forward run. *)
  let net = Fixtures.paper_net () in
  let x = Vec.of_list [ 0.5; 0.5 ] in
  let box = Box.make ~lo:x ~hi:x in
  let y = Network.forward net x in
  (match Interval_dom.analyze net ~box ~splits:Splits.empty with
  | Interval_dom.Feasible b ->
      Alcotest.(check (float 1e-9)) "interval exact" y.(0) (Bounds.output_lo b).(0)
  | Interval_dom.Infeasible -> Alcotest.fail "infeasible");
  (match Deeppoly.analyze net ~box ~splits:Splits.empty with
  | Deeppoly.Feasible a ->
      Alcotest.(check (float 1e-9)) "deeppoly exact" y.(0) (Bounds.output_lo (Deeppoly.bounds a)).(0)
  | Deeppoly.Infeasible -> Alcotest.fail "infeasible")

let prop_domains_sound_random =
  QCheck.Test.make ~name:"all domains sound on random nets" ~count:20
    QCheck.(make QCheck.Gen.(int_range 100 10_000))
    (fun seed ->
      let net = Fixtures.random_net ~seed ~dims:[ 2; 4; 3; 1 ] in
      let box = unit_box 2 in
      let sound bounds =
        let v, _ = check_bounds_sound ~seed net box Splits.empty bounds in
        v = 0
      in
      let i_ok =
        match Interval_dom.analyze net ~box ~splits:Splits.empty with
        | Interval_dom.Feasible b -> sound b
        | Interval_dom.Infeasible -> false
      in
      let z_ok =
        match Zonotope.analyze net ~box ~splits:Splits.empty with
        | Zonotope.Feasible a -> sound a.Zonotope.bounds
        | Zonotope.Infeasible -> false
      in
      let d_ok =
        match Deeppoly.analyze net ~box ~splits:Splits.empty with
        | Deeppoly.Feasible a -> sound (Deeppoly.bounds a)
        | Deeppoly.Infeasible -> false
      in
      i_ok && z_ok && d_ok)



(* ---------------- Differential bounds (Diff) ---------------- *)

module Diff = Ivan_domains.Diff
module Quant = Ivan_nn.Quant
module Perturb = Ivan_nn.Perturb

let test_diff_identical_networks () =
  let net, box = random_case 71 in
  match Diff.output_difference net net ~box with
  | None -> Alcotest.fail "unexpected empty region"
  | Some { Diff.lo; hi } ->
      (* Affine parts cancel exactly; only the (duplicated) relu error
         symbols remain, so bounds are symmetric around 0. *)
      Array.iteri
        (fun i l ->
          Alcotest.(check bool) "contains 0" true (l <= 1e-9 && hi.(i) >= -1e-9);
          Alcotest.(check (float 1e-9)) "symmetric" (Float.abs l) (Float.abs hi.(i)))
        lo

let test_diff_sound () =
  let net, box = random_case 72 in
  let rng = Rng.create 72 in
  let perturbed = Perturb.random_relative ~rng ~fraction:0.05 net in
  match Diff.output_difference net perturbed ~box with
  | None -> Alcotest.fail "unexpected empty region"
  | Some { Diff.lo; hi } ->
      for _ = 1 to 400 do
        let x = Box.sample ~rng box in
        let d = Vec.sub (Network.forward net x) (Network.forward perturbed x) in
        Array.iteri
          (fun i v ->
            Alcotest.(check bool) "within diff bounds" true
              (v >= lo.(i) -. 1e-6 && v <= hi.(i) +. 1e-6))
          d
      done

let test_diff_shape_mismatch () =
  let a = Fixtures.random_net ~seed:1 ~dims:[ 2; 3; 1 ] in
  let b = Fixtures.random_net ~seed:2 ~dims:[ 3; 3; 1 ] in
  Alcotest.check_raises "shapes" (Invalid_argument "Diff.output_difference: network shapes differ")
    (fun () -> ignore (Diff.output_difference a b ~box:(unit_box 2)))

let test_diff_equivalence_identical () =
  let net, box = random_case 73 in
  match Diff.verify_equivalence net net ~box ~delta:0.5 with
  | Diff.Equivalent -> ()
  | Diff.Deviation _ -> Alcotest.fail "identical networks deviated"
  | Diff.Unknown -> Alcotest.fail "identical networks unknown"

let test_diff_equivalence_quantized () =
  (* int16 quantization perturbs outputs far less than a loose delta. *)
  let net, box = random_case 74 in
  let updated = Quant.network Quant.Int16 net in
  match Diff.verify_equivalence ~max_boxes:2000 net updated ~box ~delta:0.5 with
  | Diff.Equivalent -> ()
  | Diff.Deviation x ->
      Alcotest.failf "claimed deviation %.4f"
        (Vec.norm_inf (Vec.sub (Network.forward net x) (Network.forward updated x)))
  | Diff.Unknown -> Alcotest.fail "should converge"

let test_diff_detects_deviation () =
  let net, box = random_case 75 in
  (* A large additive perturbation must be caught with a tiny delta. *)
  let rng = Rng.create 75 in
  let changed = Perturb.random_additive ~rng ~magnitude:0.5 net in
  match Diff.verify_equivalence net changed ~box ~delta:1e-4 with
  | Diff.Deviation x ->
      Alcotest.(check bool) "deviation genuine" true
        (Vec.norm_inf (Vec.sub (Network.forward net x) (Network.forward changed x)) > 1e-4)
  | Diff.Equivalent -> Alcotest.fail "missed a large deviation"
  | Diff.Unknown -> Alcotest.fail "budget too small for an obvious deviation"

let test_diff_budget () =
  let net, box = random_case 76 in
  let rng = Rng.create 76 in
  let changed = Perturb.random_relative ~rng ~fraction:0.02 net in
  (* delta slightly below what the root bound proves, with a 1-box
     budget: must give up rather than guess. *)
  match Diff.output_difference net changed ~box with
  | None -> Alcotest.fail "empty"
  | Some { Diff.lo; hi } ->
      let worst =
        Array.fold_left Float.max 0.0
          (Array.mapi (fun i l -> Float.max (Float.abs l) (Float.abs hi.(i))) lo)
      in
      let delta = worst /. 2.0 in
      (match Diff.verify_equivalence ~max_boxes:1 net changed ~box ~delta with
      | Diff.Unknown -> ()
      | Diff.Deviation _ -> () (* centre probe may legitimately catch it *)
      | Diff.Equivalent -> Alcotest.fail "cannot be proved with one box")

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("itv ops", `Quick, test_itv_ops);
    ("itv invalid", `Quick, test_itv_invalid);
    ("splits basic", `Quick, test_splits_basic);
    ("interval sound", `Quick, test_interval_sound);
    ("zonotope sound", `Quick, test_zonotope_sound);
    ("deeppoly sound", `Quick, test_deeppoly_sound);
    ("zonotope exactness vs interval", `Quick, test_zonotope_exactness_vs_interval);
    ("deeppoly objective", `Quick, test_deeppoly_objective);
    ("split refines", `Quick, test_split_refines);
    ("split soundness", `Quick, test_split_soundness_on_consistent_points);
    ("infeasible detection", `Quick, test_infeasible_detection);
    ("zonotope relu terms", `Quick, test_zonotope_relu_terms);
    ("degenerate box", `Quick, test_degenerate_box);
    q prop_domains_sound_random;
    ("diff identical networks", `Quick, test_diff_identical_networks);
    ("diff sound", `Quick, test_diff_sound);
    ("diff shape mismatch", `Quick, test_diff_shape_mismatch);
    ("diff equivalence identical", `Quick, test_diff_equivalence_identical);
    ("diff equivalence quantized", `Quick, test_diff_equivalence_quantized);
    ("diff detects deviation", `Quick, test_diff_detects_deviation);
    ("diff budget", `Quick, test_diff_budget);
  ]
