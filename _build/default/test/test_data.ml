(* Tests for the data layer: synthetic datasets, the ACAS oracle and
   property suite, the model zoo. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Synth = Ivan_data.Synth
module Acas = Ivan_data.Acas
module Zoo = Ivan_data.Zoo

(* ---------------- Synth ---------------- *)

let test_synth_shapes () =
  let d = Synth.generate ~rng:(Rng.create 1) ~channels:3 ~side:5 ~num_classes:4 ~count:40 ~noise:0.1 in
  Alcotest.(check int) "count" 40 (Array.length d.Synth.inputs);
  Alcotest.(check int) "labels" 40 (Array.length d.Synth.labels);
  Array.iter (fun x -> Alcotest.(check int) "dim" 75 (Vec.dim x)) d.Synth.inputs

let test_synth_range () =
  let d = Synth.mnist_like ~rng:(Rng.create 2) ~count:50 in
  Array.iter
    (fun x -> Array.iter (fun v -> Alcotest.(check bool) "pixel in [0,1]" true (v >= 0.0 && v <= 1.0)) x)
    d.Synth.inputs

let test_synth_balanced () =
  let d = Synth.generate ~rng:(Rng.create 3) ~channels:1 ~side:4 ~num_classes:5 ~count:50 ~noise:0.05 in
  let counts = Array.make 5 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) d.Synth.labels;
  Array.iter (fun c -> Alcotest.(check int) "balanced" 10 c) counts

let test_synth_deterministic () =
  let a = Synth.mnist_like ~rng:(Rng.create 4) ~count:10 in
  let b = Synth.mnist_like ~rng:(Rng.create 4) ~count:10 in
  Alcotest.(check bool) "same inputs" true
    (Array.for_all2 (fun x y -> Vec.equal ~eps:0.0 x y) a.Synth.inputs b.Synth.inputs)

let test_synth_prefix_stable () =
  (* Same seed, larger count: the prefix must coincide (disjoint
     train/test splitting depends on this). *)
  let small = Synth.mnist_like ~rng:(Rng.create 5) ~count:20 in
  let large = Synth.mnist_like ~rng:(Rng.create 5) ~count:30 in
  for i = 0 to 19 do
    Alcotest.(check bool) "prefix equal" true
      (Vec.equal ~eps:0.0 small.Synth.inputs.(i) large.Synth.inputs.(i));
    Alcotest.(check int) "label equal" small.Synth.labels.(i) large.Synth.labels.(i)
  done

let test_synth_split () =
  let d = Synth.mnist_like ~rng:(Rng.create 6) ~count:40 in
  let train, test = Synth.split d ~train_fraction:0.75 in
  Alcotest.(check int) "train" 30 (Array.length train.Synth.inputs);
  Alcotest.(check int) "test" 10 (Array.length test.Synth.inputs)

let test_synth_invalid () =
  Alcotest.check_raises "bad sizes" (Invalid_argument "Synth.generate: sizes must be positive")
    (fun () ->
      ignore (Synth.generate ~rng:(Rng.create 1) ~channels:0 ~side:4 ~num_classes:2 ~count:4 ~noise:0.1))

(* ---------------- Acas ---------------- *)

let test_acas_oracle_distant () =
  (* Distant traffic is clear of conflict regardless of other state. *)
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let x = [| Rng.uniform rng 0.7 1.0; Rng.float rng 1.0; Rng.float rng 1.0; Rng.float rng 1.0; Rng.float rng 1.0 |] in
    Alcotest.(check bool) "clear" true (Acas.oracle x = Acas.Clear_of_conflict)
  done

let test_acas_oracle_sides () =
  (* Close urgent traffic turns away from the intruder's side. *)
  let left_intruder = [| 0.1; 0.9; 0.5; 0.9; 0.9 |] in
  (match Acas.oracle left_intruder with
  | Acas.Weak_left | Acas.Strong_left -> ()
  | _ -> Alcotest.fail "expected a left advisory");
  let right_intruder = [| 0.1; 0.1; 0.5; 0.9; 0.9 |] in
  match Acas.oracle right_intruder with
  | Acas.Weak_right | Acas.Strong_right -> ()
  | _ -> Alcotest.fail "expected a right advisory"

let test_acas_oracle_dim () =
  Alcotest.check_raises "dim" (Invalid_argument "Acas.oracle: expected a 5-dimensional state")
    (fun () -> ignore (Acas.oracle [| 0.0 |]))

let test_acas_dataset () =
  let inputs, labels = Acas.dataset ~rng:(Rng.create 8) ~count:100 in
  Alcotest.(check int) "count" 100 (Array.length inputs);
  Array.iteri
    (fun i x -> Alcotest.(check int) "label = oracle" (Acas.advisory_index (Acas.oracle x)) labels.(i))
    inputs

let test_acas_architecture () =
  let net = Acas.architecture ~rng:(Rng.create 9) in
  Alcotest.(check int) "inputs" 5 (Network.input_dim net);
  Alcotest.(check int) "outputs" 5 (Network.output_dim net);
  Alcotest.(check int) "relus" 300 (Network.num_relus net);
  Alcotest.(check int) "layers" 7 (Network.num_layers net)

let test_acas_regions_within_unit_box () =
  List.iter
    (fun (_, region) ->
      Alcotest.(check int) "dim" 5 (Box.dim region);
      for j = 0 to 4 do
        Alcotest.(check bool) "within [0,1]" true
          (Box.lo_at region j >= 0.0 && Box.hi_at region j <= 1.0)
      done)
    Acas.property_regions

let test_acas_properties_shape () =
  (* Use a small untrained network: properties only need forward
     evaluation for calibration. *)
  let net = Ivan_nn.Builder.dense_net ~rng:(Rng.create 10) ~dims:[ 5; 8; 5 ] in
  let props = Acas.properties ~net ~margin:0.5 ~rng:(Rng.create 11) in
  Alcotest.(check int) "one per region" (List.length Acas.property_regions) (List.length props);
  List.iter
    (fun p ->
      (* The bound sits between the sampled max and the certified max,
         so the property holds at sampled points. *)
      let rng = Rng.create 12 in
      for _ = 1 to 200 do
        let x = Box.sample ~rng p.Prop.input in
        Alcotest.(check bool) "holds at samples" true (Prop.holds_at p (Network.forward net x))
      done)
    props

(* ---------------- Zoo ---------------- *)

let test_zoo_find () =
  Alcotest.(check string) "found" "conv-cifar" (Zoo.find "conv-cifar").Zoo.name;
  match Zoo.find "nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_zoo_untrained_shapes () =
  List.iter
    (fun spec ->
      let net = Zoo.untrained spec in
      let expected_in = if spec.Zoo.kind = Zoo.Acas then 5 else Network.input_dim net in
      Alcotest.(check int) (spec.Zoo.name ^ " input dim") expected_in (Network.input_dim net);
      let expected_out = if spec.Zoo.kind = Zoo.Acas then 5 else 10 in
      Alcotest.(check int) (spec.Zoo.name ^ " output dim") expected_out (Network.output_dim net))
    Zoo.table1

let test_zoo_datasets_disjoint () =
  let spec = Zoo.fcn_mnist in
  let train_inputs, _ = Zoo.training_set spec in
  let test_inputs, _ = Zoo.test_set spec in
  (* No test input equals any train input (fresh noise). *)
  Array.iter
    (fun t ->
      Alcotest.(check bool) "disjoint" false
        (Array.exists (fun tr -> Vec.equal ~eps:0.0 tr t) train_inputs))
    (Array.sub test_inputs 0 10)

let test_zoo_train_deterministic_and_accurate () =
  let spec = Zoo.fcn_mnist in
  let a = Zoo.train spec in
  let b = Zoo.train spec in
  let x = (fst (Zoo.test_set spec)).(0) in
  Alcotest.(check bool) "deterministic" true
    (Vec.equal ~eps:0.0 (Network.forward a x) (Network.forward b x));
  Alcotest.(check bool) "accurate" true (Zoo.accuracy spec a >= 0.9)

let test_zoo_cache_roundtrip () =
  let spec = Zoo.fcn_mnist in
  let dir = Filename.temp_file "ivan_zoo" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let first = Zoo.load_or_train ~cache_dir:dir spec in
      Alcotest.(check bool) "cache file created" true
        (Sys.file_exists (Filename.concat dir (spec.Zoo.name ^ ".net")));
      let second = Zoo.load_or_train ~cache_dir:dir spec in
      let x = (fst (Zoo.test_set spec)).(0) in
      Alcotest.(check bool) "cached equals trained" true
        (Vec.equal ~eps:0.0 (Network.forward first x) (Network.forward second x)))

let suite =
  [
    ("synth shapes", `Quick, test_synth_shapes);
    ("synth range", `Quick, test_synth_range);
    ("synth balanced", `Quick, test_synth_balanced);
    ("synth deterministic", `Quick, test_synth_deterministic);
    ("synth prefix stable", `Quick, test_synth_prefix_stable);
    ("synth split", `Quick, test_synth_split);
    ("synth invalid", `Quick, test_synth_invalid);
    ("acas oracle distant", `Quick, test_acas_oracle_distant);
    ("acas oracle sides", `Quick, test_acas_oracle_sides);
    ("acas oracle dim", `Quick, test_acas_oracle_dim);
    ("acas dataset", `Quick, test_acas_dataset);
    ("acas architecture", `Quick, test_acas_architecture);
    ("acas regions in unit box", `Quick, test_acas_regions_within_unit_box);
    ("acas properties shape", `Quick, test_acas_properties_shape);
    ("zoo find", `Quick, test_zoo_find);
    ("zoo untrained shapes", `Quick, test_zoo_untrained_shapes);
    ("zoo datasets disjoint", `Quick, test_zoo_datasets_disjoint);
    ("zoo train deterministic", `Quick, test_zoo_train_deterministic_and_accurate);
    ("zoo cache roundtrip", `Quick, test_zoo_cache_roundtrip);
  ]
