(* Leaky-ReLU support across the stack: forward semantics, training,
   domains soundness, LP exactness under full splitting, complete BaB,
   and incremental verification — the paper's §3.2 claim that activation
   splitting extends to any piecewise-linear activation. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Quant = Ivan_nn.Quant
module Serialize = Ivan_nn.Serialize
module Sgd = Ivan_train.Sgd
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Interval_dom = Ivan_domains.Interval_dom
module Zonotope = Ivan_domains.Zonotope
module Deeppoly = Ivan_domains.Deeppoly
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan

let slope = 0.1

let leaky_net ~seed ~dims =
  Builder.dense_net_act ~hidden_activation:(Layer.Leaky_relu slope) ~rng:(Rng.create seed) ~dims

let unit_box d = Box.make ~lo:(Vec.zeros d) ~hi:(Vec.create d 1.0)

let test_forward_semantics () =
  let l =
    Layer.make
      (Layer.Dense { weights = Ivan_tensor.Mat.of_arrays [| [| 1.0 |] |]; bias = [| 0.0 |] })
      (Layer.Leaky_relu slope)
  in
  Alcotest.(check (float 1e-12)) "positive passes" 2.0 (Layer.forward l [| 2.0 |]).(0);
  Alcotest.(check (float 1e-12)) "negative scaled" (-0.3) (Layer.forward l [| -3.0 |]).(0)

let test_invalid_slope () =
  let mk s =
    Layer.make
      (Layer.Dense { weights = Ivan_tensor.Mat.of_arrays [| [| 1.0 |] |]; bias = [| 0.0 |] })
      (Layer.Leaky_relu s)
  in
  Alcotest.check_raises "slope 0" (Invalid_argument "Layer.make: leaky relu slope must be in (0, 1)")
    (fun () -> ignore (mk 0.0));
  Alcotest.check_raises "slope 1" (Invalid_argument "Layer.make: leaky relu slope must be in (0, 1)")
    (fun () -> ignore (mk 1.0))

let test_relu_ids_include_leaky () =
  let net = leaky_net ~seed:1 ~dims:[ 2; 4; 3; 1 ] in
  Alcotest.(check int) "leaky units are splittable" 7 (Network.num_relus net);
  Alcotest.(check int) "ids length" 7 (Array.length (Network.relu_ids net))

let test_serialize_roundtrip () =
  let net = leaky_net ~seed:2 ~dims:[ 3; 5; 2 ] in
  let net' = Serialize.of_string (Serialize.to_string net) in
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let x = Array.init 3 (fun _ -> Rng.gaussian rng) in
    Alcotest.(check bool) "outputs equal" true
      (Vec.equal ~eps:0.0 (Network.forward net x) (Network.forward net' x))
  done

let test_training_learns () =
  let rng = Rng.create 4 in
  let net = leaky_net ~seed:4 ~dims:[ 2; 8; 2 ] in
  let count = 200 in
  let inputs = Array.make count [||] in
  let labels = Array.make count 0 in
  for i = 0 to count - 1 do
    let label = i mod 2 in
    let cx = if label = 0 then -1.0 else 1.0 in
    inputs.(i) <- [| cx +. (0.3 *. Rng.gaussian rng); 0.3 *. Rng.gaussian rng |];
    labels.(i) <- label
  done;
  let config = { Sgd.default_config with epochs = 25 } in
  let trained = Sgd.train_classifier ~rng ~config net ~inputs ~labels in
  Alcotest.(check bool) "accuracy" true (Sgd.accuracy trained ~inputs ~labels >= 0.95)

(* Soundness of all three domains against sampled executions. *)
let test_domains_sound () =
  for seed = 11 to 14 do
    let net = leaky_net ~seed ~dims:[ 3; 6; 4; 2 ] in
    let box = unit_box 3 in
    let check_bounds (bounds : Ivan_domains.Bounds.t) name =
      let rng = Rng.create seed in
      for _ = 1 to 300 do
        let x = Box.sample ~rng box in
        let tr = Network.forward_trace net x in
        Array.iteri
          (fun li layer ->
            Array.iteri
              (fun idx v ->
                Alcotest.(check bool) (name ^ " pre sound") true
                  (v >= layer.Ivan_domains.Bounds.pre_lo.(idx) -. 1e-6
                  && v <= layer.Ivan_domains.Bounds.pre_hi.(idx) +. 1e-6))
              tr.Network.pre.(li);
            Array.iteri
              (fun idx v ->
                Alcotest.(check bool) (name ^ " post sound") true
                  (v >= layer.Ivan_domains.Bounds.post_lo.(idx) -. 1e-6
                  && v <= layer.Ivan_domains.Bounds.post_hi.(idx) +. 1e-6))
              tr.Network.post.(li))
          bounds.Ivan_domains.Bounds.layers
      done
    in
    (match Interval_dom.analyze net ~box ~splits:Splits.empty with
    | Interval_dom.Feasible b -> check_bounds b "interval"
    | Interval_dom.Infeasible -> Alcotest.fail "interval infeasible");
    (match Zonotope.analyze net ~box ~splits:Splits.empty with
    | Zonotope.Feasible a -> check_bounds a.Zonotope.bounds "zonotope"
    | Zonotope.Infeasible -> Alcotest.fail "zonotope infeasible");
    match Deeppoly.analyze net ~box ~splits:Splits.empty with
    | Deeppoly.Feasible a -> check_bounds (Deeppoly.bounds a) "deeppoly"
    | Deeppoly.Infeasible -> Alcotest.fail "deeppoly infeasible"
  done

(* Splitting a leaky unit Neg forces the y = slope*x piece; points with
   negative pre-activation must still satisfy the refined bounds. *)
let test_split_semantics () =
  let net = leaky_net ~seed:21 ~dims:[ 2; 4; 1 ] in
  let box = unit_box 2 in
  match Deeppoly.analyze net ~box ~splits:Splits.empty with
  | Deeppoly.Infeasible -> Alcotest.fail "infeasible"
  | Deeppoly.Feasible a -> (
      match Ivan_domains.Bounds.ambiguous_relus (Deeppoly.bounds a) net ~splits:Splits.empty with
      | [] -> Alcotest.fail "no ambiguous unit in fixture"
      | r :: _ -> (
          let splits = Splits.add r Splits.Neg Splits.empty in
          match Deeppoly.analyze net ~box ~splits with
          | Deeppoly.Infeasible -> Alcotest.fail "neg side empty"
          | Deeppoly.Feasible refined ->
              let b = Deeppoly.bounds refined in
              let layer = b.Ivan_domains.Bounds.layers.(r.Ivan_nn.Relu_id.layer) in
              let idx = r.Ivan_nn.Relu_id.index in
              Alcotest.(check bool) "pre clipped to <= 0" true
                (layer.Ivan_domains.Bounds.pre_hi.(idx) <= 1e-12);
              (* post = slope * pre on this side: post bounds scale. *)
              Alcotest.(check (float 1e-9)) "post lo = slope*pre lo"
                (slope *. layer.Ivan_domains.Bounds.pre_lo.(idx))
                layer.Ivan_domains.Bounds.post_lo.(idx)))

(* Full splitting makes the LP exact: min over all phase patterns equals
   the sampled minimum (within sampling error, from above). *)
let test_fully_split_exact () =
  let net = leaky_net ~seed:31 ~dims:[ 2; 3; 1 ] in
  let box = unit_box 2 in
  let prop = Prop.make ~name:"leaky" ~input:box ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
  let relus = Network.relu_ids net in
  let lp = Analyzer.lp_triangle ~deeppoly_shortcut:false () in
  let count = Array.length relus in
  let best = ref infinity in
  for mask = 0 to (1 lsl count) - 1 do
    let splits = ref Splits.empty in
    Array.iteri
      (fun i r ->
        let phase = if (mask lsr i) land 1 = 1 then Splits.Pos else Splits.Neg in
        splits := Splits.add r phase !splits)
      relus;
    let o = lp.Analyzer.run net ~prop ~box ~splits:!splits in
    if o.Analyzer.lb < !best then best := o.Analyzer.lb
  done;
  let sampled = Fixtures.approx_min_margin ~seed:32 net prop in
  Alcotest.(check bool) "exact min <= sampled min" true (!best <= sampled +. 1e-9);
  Alcotest.(check bool) "close to sampled min" true (sampled -. !best < 0.05)

(* Complete BaB on leaky networks: verdicts match sampled reality. *)
let test_bab_complete () =
  let analyzer = Analyzer.lp_triangle () in
  for seed = 41 to 45 do
    let net = leaky_net ~seed ~dims:[ 2; 4; 3; 1 ] in
    let box = unit_box 2 in
    let base = Prop.make ~name:"b" ~input:box ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
    let sampled = Fixtures.approx_min_margin ~seed net base in
    (* Choose offsets straddling the sampled min. *)
    List.iter
      (fun delta ->
        let prop = { base with Prop.offset = -.sampled +. delta } in
        let run =
          Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff
            ~budget:{ Bab.max_analyzer_calls = 300; max_seconds = 20.0 }
            ~net ~prop ()
        in
        match run.Bab.verdict with
        | Bab.Proved ->
            Alcotest.(check bool) "proved implies above sampled min" true (delta >= -1e-9)
        | Bab.Disproved x ->
            Alcotest.(check bool) "genuine CE" true (Analyzer.check_concrete net ~prop x)
        | Bab.Exhausted -> ())
      [ -0.05; 0.05; 0.2 ]
  done

let test_incremental_on_leaky () =
  let net = leaky_net ~seed:51 ~dims:[ 2; 5; 3; 1 ] in
  let box = unit_box 2 in
  let base = Prop.make ~name:"inc" ~input:box ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
  let sampled = Fixtures.approx_min_margin ~seed:51 net base in
  let prop = { base with Prop.offset = -.sampled +. 0.1 } in
  let updated = Quant.network Quant.Int8 net in
  let analyzer = Analyzer.lp_triangle () in
  let result =
    Ivan.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~updated ~prop ()
  in
  (match (result.Ivan.original.Bab.verdict, result.Ivan.updated.Bab.verdict) with
  | Bab.Proved, Bab.Proved | Bab.Proved, Bab.Disproved _ -> ()
  | Bab.Disproved _, _ -> ()
  | v, _ ->
      ignore v;
      Alcotest.fail "unexpected exhaustion on tiny leaky instance");
  (* Quantization of a leaky network preserves the architecture. *)
  Alcotest.(check bool) "arch preserved" true (Network.same_architecture net updated)

let suite =
  [
    ("forward semantics", `Quick, test_forward_semantics);
    ("invalid slope", `Quick, test_invalid_slope);
    ("relu ids include leaky", `Quick, test_relu_ids_include_leaky);
    ("serialize roundtrip", `Quick, test_serialize_roundtrip);
    ("training learns", `Quick, test_training_learns);
    ("domains sound", `Quick, test_domains_sound);
    ("split semantics", `Quick, test_split_semantics);
    ("fully split exact", `Quick, test_fully_split_exact);
    ("bab complete", `Quick, test_bab_complete);
    ("incremental on leaky", `Quick, test_incremental_on_leaky);
  ]
