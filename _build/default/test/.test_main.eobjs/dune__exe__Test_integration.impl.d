test/test_integration.ml: Alcotest Array Buffer Filename Format Fun Ivan_analyzer Ivan_bab Ivan_core Ivan_data Ivan_harness Ivan_nn Ivan_spec Ivan_tensor Lazy List String Sys
