test/test_spec.ml: Alcotest Fixtures Ivan_analyzer Ivan_bab Ivan_spec Ivan_tensor
