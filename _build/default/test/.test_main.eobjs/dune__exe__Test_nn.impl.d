test/test_nn.ml: Alcotest Array Filename Float Fun Ivan_nn Ivan_tensor List Printf QCheck QCheck_alcotest Sys
