test/fixtures.ml: Array Float Ivan_nn Ivan_spec Ivan_tensor Printf
