test/test_train.ml: Alcotest Array Ivan_nn Ivan_tensor Ivan_train Printf
