test/test_bab.ml: Alcotest Fixtures Float Ivan_analyzer Ivan_bab Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor List Printf QCheck QCheck_alcotest
