test/test_lp.ml: Alcotest Array Float Ivan_lp Ivan_tensor List QCheck QCheck_alcotest
