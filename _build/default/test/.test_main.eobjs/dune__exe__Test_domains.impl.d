test/test_domains.ml: Alcotest Array Fixtures Float Ivan_domains Ivan_nn Ivan_spec Ivan_tensor Layer List QCheck QCheck_alcotest
