test/test_leaky.ml: Alcotest Array Fixtures Ivan_analyzer Ivan_bab Ivan_core Ivan_domains Ivan_nn Ivan_spec Ivan_tensor Ivan_train List
