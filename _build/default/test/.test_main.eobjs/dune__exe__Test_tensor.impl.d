test/test_tensor.ml: Alcotest Array Float Ivan_tensor QCheck QCheck_alcotest
