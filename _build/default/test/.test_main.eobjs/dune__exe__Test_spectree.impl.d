test/test_spectree.ml: Alcotest Array Fixtures Float Ivan_domains Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor List QCheck QCheck_alcotest
