test/test_harness.ml: Alcotest Ivan_bab Ivan_core Ivan_data Ivan_harness Ivan_nn Ivan_spec Ivan_tensor Lazy List
