test/test_smooth.ml: Alcotest Array Fixtures Float Ivan_analyzer Ivan_bab Ivan_core Ivan_domains Ivan_nn Ivan_spec Ivan_tensor Ivan_train List
