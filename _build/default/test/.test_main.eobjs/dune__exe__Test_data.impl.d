test/test_data.ml: Alcotest Array Filename Fun Ivan_data Ivan_nn Ivan_spec Ivan_tensor List Sys
