test/test_analyzer.ml: Alcotest Array Fixtures Float Ivan_analyzer Ivan_bab Ivan_domains Ivan_nn Ivan_spec Ivan_tensor List Printf QCheck QCheck_alcotest
