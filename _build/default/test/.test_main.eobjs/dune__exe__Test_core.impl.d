test/test_core.ml: Alcotest Array Filename Fixtures Float Fun Ivan_analyzer Ivan_bab Ivan_core Ivan_domains Ivan_nn Ivan_spec Ivan_spectree Ivan_tensor List QCheck QCheck_alcotest String Sys
