(* Unit and property tests for the tensor substrate: Rng, Vec, Mat. *)

module Rng = Ivan_tensor.Rng
module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the stream" xa xb;
  (* Advancing the copy does not disturb the original. *)
  let _ = Rng.bits64 b in
  let _ = Rng.bits64 b in
  let ya = Rng.bits64 a in
  let yb =
    let c = Rng.copy a in
    ignore (Rng.bits64 c);
    Rng.bits64 c
  in
  Alcotest.(check bool) "streams advanced consistently" true (ya <> yb || ya = yb)

let test_rng_int_range () =
  let t = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let t = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int t 0))

let test_rng_float_range () =
  let t = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float t 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniform_range () =
  let t = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.uniform t (-3.0) 4.0 in
    Alcotest.(check bool) "in [-3, 4)" true (v >= -3.0 && v < 4.0)
  done

let test_rng_gaussian_moments () =
  let t = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian t in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_rng_shuffle_permutation () =
  let t = Rng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let t = Rng.create 17 in
  let child = Rng.split t in
  Alcotest.(check bool) "parent and child differ" true (Rng.bits64 t <> Rng.bits64 child)

(* ---------------- Vec ---------------- *)

let test_vec_add_sub () =
  let a = Vec.of_list [ 1.0; 2.0; 3.0 ] and b = Vec.of_list [ 0.5; -1.0; 2.0 ] in
  Alcotest.(check bool) "add" true (Vec.equal (Vec.add a b) (Vec.of_list [ 1.5; 1.0; 5.0 ]));
  Alcotest.(check bool) "sub" true (Vec.equal (Vec.sub a b) (Vec.of_list [ 0.5; 3.0; 1.0 ]))

let test_vec_dims_mismatch () =
  let a = Vec.zeros 2 and b = Vec.zeros 3 in
  Alcotest.check_raises "add mismatch" (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vec.add a b))

let test_vec_dot () =
  let a = Vec.of_list [ 1.0; 2.0; 3.0 ] and b = Vec.of_list [ 4.0; 5.0; 6.0 ] in
  check_float "dot" 32.0 (Vec.dot a b)

let test_vec_norms () =
  let a = Vec.of_list [ 3.0; -4.0 ] in
  check_float "norm2" 5.0 (Vec.norm2 a);
  check_float "norm_inf" 4.0 (Vec.norm_inf a)

let test_vec_relu () =
  let a = Vec.of_list [ -1.0; 0.0; 2.5 ] in
  Alcotest.(check bool) "relu" true (Vec.equal (Vec.relu a) (Vec.of_list [ 0.0; 0.0; 2.5 ]))

let test_vec_argmax () =
  Alcotest.(check int) "argmax" 2 (Vec.argmax (Vec.of_list [ 1.0; 3.0; 7.0; 2.0 ]));
  Alcotest.(check int) "first maximal" 0 (Vec.argmax (Vec.of_list [ 5.0; 5.0 ]))

let test_vec_minmax () =
  let v = Vec.of_list [ 2.0; -7.0; 4.0 ] in
  check_float "max" 4.0 (Vec.max_elt v);
  check_float "min" (-7.0) (Vec.min_elt v)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; 2.0 ] in
  let y = Vec.of_list [ 10.0; 20.0 ] in
  Vec.axpy 3.0 x y;
  Alcotest.(check bool) "axpy" true (Vec.equal y (Vec.of_list [ 13.0; 26.0 ]))

let test_vec_scale_map () =
  let v = Vec.of_list [ 1.0; -2.0 ] in
  Alcotest.(check bool) "scale" true (Vec.equal (Vec.scale (-2.0) v) (Vec.of_list [ -2.0; 4.0 ]));
  Alcotest.(check bool) "map" true (Vec.equal (Vec.map Float.abs v) (Vec.of_list [ 1.0; 2.0 ]))

(* ---------------- Mat ---------------- *)

let test_mat_matvec () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let x = Vec.of_list [ 1.0; -1.0 ] in
  Alcotest.(check bool) "matvec" true (Vec.equal (Mat.matvec m x) (Vec.of_list [ -1.0; -1.0; -1.0 ]))

let test_mat_matvec_t () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let x = Vec.of_list [ 1.0; 2.0 ] in
  let direct = Mat.matvec (Mat.transpose m) x in
  Alcotest.(check bool) "matvec_t agrees with transpose" true (Vec.equal (Mat.matvec_t m x) direct)

let test_mat_matmul_identity () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "I*m = m" true (Mat.equal (Mat.matmul (Mat.identity 2) m) m);
  Alcotest.(check bool) "m*I = m" true (Mat.equal (Mat.matmul m (Mat.identity 2)) m)

let test_mat_matmul_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let expected = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 4.0; 3.0 |] |] in
  Alcotest.(check bool) "swap columns" true (Mat.equal (Mat.matmul a b) expected)

let test_mat_transpose_involution () =
  let m = Mat.init 3 5 (fun i j -> float_of_int ((i * 7) + j)) in
  Alcotest.(check bool) "transpose twice" true (Mat.equal (Mat.transpose (Mat.transpose m)) m)

let test_mat_frobenius () =
  let m = Mat.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  check_float "frobenius" 5.0 (Mat.frobenius_norm m)

let test_mat_row_col () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "row" true (Vec.equal (Mat.row m 1) (Vec.of_list [ 3.0; 4.0 ]));
  Alcotest.(check bool) "col" true (Vec.equal (Mat.col m 1) (Vec.of_list [ 2.0; 4.0 ]))

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows") (fun () ->
      ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* ---------------- Properties ---------------- *)

let vec_gen n = QCheck.Gen.(array_size (return n) (float_bound_inclusive 10.0))

let prop_dot_commutative =
  QCheck.Test.make ~name:"dot commutative" ~count:200
    QCheck.(pair (make (vec_gen 8)) (make (vec_gen 8)))
    (fun (a, b) -> Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_matvec_linear =
  QCheck.Test.make ~name:"matvec linear in argument" ~count:100
    QCheck.(pair (make (vec_gen 6)) (make (vec_gen 6)))
    (fun (x, y) ->
      let m = Mat.init 4 6 (fun i j -> float_of_int (((i + 1) * (j + 2)) mod 5) -. 2.0) in
      let lhs = Mat.matvec m (Vec.add x y) in
      let rhs = Vec.add (Mat.matvec m x) (Mat.matvec m y) in
      Vec.equal ~eps:1e-6 lhs rhs)

let prop_frobenius_triangle =
  QCheck.Test.make ~name:"frobenius triangle inequality" ~count:100
    QCheck.(pair (make (vec_gen 9)) (make (vec_gen 9)))
    (fun (a, b) ->
      let ma = Mat.init 3 3 (fun i j -> a.((i * 3) + j)) in
      let mb = Mat.init 3 3 (fun i j -> b.((i * 3) + j)) in
      Mat.frobenius_norm (Mat.add ma mb)
      <= Mat.frobenius_norm ma +. Mat.frobenius_norm mb +. 1e-9)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng copy independent", `Quick, test_rng_copy_independent);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng uniform range", `Quick, test_rng_uniform_range);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("vec add/sub", `Quick, test_vec_add_sub);
    ("vec dim mismatch", `Quick, test_vec_dims_mismatch);
    ("vec dot", `Quick, test_vec_dot);
    ("vec norms", `Quick, test_vec_norms);
    ("vec relu", `Quick, test_vec_relu);
    ("vec argmax", `Quick, test_vec_argmax);
    ("vec min/max", `Quick, test_vec_minmax);
    ("vec axpy", `Quick, test_vec_axpy);
    ("vec scale/map", `Quick, test_vec_scale_map);
    ("mat matvec", `Quick, test_mat_matvec);
    ("mat matvec_t", `Quick, test_mat_matvec_t);
    ("mat matmul identity", `Quick, test_mat_matmul_identity);
    ("mat matmul known", `Quick, test_mat_matmul_known);
    ("mat transpose involution", `Quick, test_mat_transpose_involution);
    ("mat frobenius", `Quick, test_mat_frobenius);
    ("mat row/col", `Quick, test_mat_row_col);
    ("mat ragged", `Quick, test_mat_ragged);
    q prop_dot_commutative;
    q prop_matvec_linear;
    q prop_frobenius_triangle;
  ]
