(* Tests for the specification tree: split operation, traversals,
   subproblem reconstruction, Lemma-1-style partition property,
   serialization, copying. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Relu_id = Ivan_nn.Relu_id
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Splits = Ivan_domains.Splits
module Decision = Ivan_spectree.Decision
module Tree = Ivan_spectree.Tree

let r l i = Decision.Relu_split (Relu_id.make ~layer:l ~index:i)

let test_single_node () =
  let t = Tree.create () in
  Alcotest.(check int) "size" 1 (Tree.size t);
  Alcotest.(check int) "leaves" 1 (Tree.num_leaves t);
  Alcotest.(check int) "depth" 0 (Tree.depth t);
  Alcotest.(check bool) "root is leaf" true (Tree.is_leaf (Tree.root t));
  Alcotest.(check bool) "well formed" true (Tree.well_formed t)

let test_split_grows () =
  let t = Tree.create () in
  let l, rgt = Tree.split t (Tree.root t) (r 0 0) in
  Alcotest.(check int) "size" 3 (Tree.size t);
  Alcotest.(check int) "leaves" 2 (Tree.num_leaves t);
  Alcotest.(check int) "depth" 1 (Tree.depth t);
  Alcotest.(check bool) "root no longer leaf" false (Tree.is_leaf (Tree.root t));
  Alcotest.(check bool) "children are leaves" true (Tree.is_leaf l && Tree.is_leaf rgt);
  Alcotest.(check bool) "edges" true
    (Tree.edge l = Some (r 0 0, Decision.Left) && Tree.edge rgt = Some (r 0 0, Decision.Right));
  Alcotest.(check bool) "well formed" true (Tree.well_formed t)

let test_split_non_leaf_rejected () =
  let t = Tree.create () in
  let _ = Tree.split t (Tree.root t) (r 0 0) in
  Alcotest.check_raises "non-leaf" (Invalid_argument "Tree.split: node is not a leaf") (fun () ->
      ignore (Tree.split t (Tree.root t) (r 0 1)))

let test_split_repeat_rejected () =
  let t = Tree.create () in
  let l, _ = Tree.split t (Tree.root t) (r 0 0) in
  Alcotest.check_raises "repeat"
    (Invalid_argument "Tree.split: decision already taken on this path") (fun () ->
      ignore (Tree.split t l (r 0 0)))

let test_sibling_can_reuse_decision () =
  (* The same decision on a *different* path is legal. *)
  let t = Tree.create () in
  let l, rgt = Tree.split t (Tree.root t) (r 0 0) in
  let _ = Tree.split t l (r 0 1) in
  let _ = Tree.split t rgt (r 0 1) in
  Alcotest.(check bool) "well formed" true (Tree.well_formed t);
  Alcotest.(check int) "size" 7 (Tree.size t)

let test_leaves_order_left_to_right () =
  let t = Tree.create () in
  let l, rgt = Tree.split t (Tree.root t) (r 0 0) in
  let ll, lr = Tree.split t l (r 0 1) in
  let ids = List.map Tree.node_id (Tree.leaves t) in
  Alcotest.(check (list int)) "order" [ Tree.node_id ll; Tree.node_id lr; Tree.node_id rgt ] ids

let test_subproblem_relu () =
  let t = Tree.create () in
  let l, _ = Tree.split t (Tree.root t) (r 0 0) in
  let _, lr = Tree.split t l (r 1 1) in
  let box = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
  let sub_box, splits = Tree.subproblem ~root_box:box lr in
  Alcotest.(check bool) "box unchanged" true (Box.equal box sub_box);
  Alcotest.(check int) "two splits" 2 (Splits.cardinal splits);
  Alcotest.(check bool) "r00 pos" true
    (Splits.find (Relu_id.make ~layer:0 ~index:0) splits = Some Splits.Pos);
  Alcotest.(check bool) "r11 neg" true
    (Splits.find (Relu_id.make ~layer:1 ~index:1) splits = Some Splits.Neg)

let test_subproblem_input_split () =
  let t = Tree.create () in
  let l, rgt = Tree.split t (Tree.root t) (Decision.Input_split 0) in
  let _, lr = Tree.split t l (Decision.Input_split 1) in
  ignore rgt;
  let box = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
  let sub_box, splits = Tree.subproblem ~root_box:box lr in
  Alcotest.(check bool) "no relu splits" true (Splits.is_empty splits);
  (* Left of dim 0 then right of dim 1: [0, 0.5] x [0.5, 1]. *)
  Alcotest.(check (float 1e-12)) "lo0" 0.0 (Box.lo_at sub_box 0);
  Alcotest.(check (float 1e-12)) "hi0" 0.5 (Box.hi_at sub_box 0);
  Alcotest.(check (float 1e-12)) "lo1" 0.5 (Box.lo_at sub_box 1);
  Alcotest.(check (float 1e-12)) "hi1" 1.0 (Box.hi_at sub_box 1)

(* Lemma-1 flavoured partition check: for a tree over input splits, the
   leaf boxes tile the root box — every interior point lies in exactly
   one leaf box. *)
let test_leaf_boxes_partition () =
  let t = Tree.create () in
  let rng = Rng.create 7 in
  (* Grow a random input-split tree. *)
  for _ = 1 to 6 do
    let leaves = Array.of_list (Tree.leaves t) in
    let leaf = leaves.(Rng.int rng (Array.length leaves)) in
    let dim = Rng.int rng 2 in
    ignore (Tree.split t leaf (Decision.Input_split dim))
  done;
  let box = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
  let leaf_boxes =
    List.map (fun n -> fst (Tree.subproblem ~root_box:box n)) (Tree.leaves t)
  in
  for _ = 1 to 500 do
    let x = Box.sample ~rng box in
    let containing = List.filter (fun b -> Box.contains b x) leaf_boxes in
    (* On split boundaries a point may fall in two boxes; almost surely
       interior, so require at least one and at most two. *)
    let n = List.length containing in
    Alcotest.(check bool) "covered" true (n >= 1 && n <= 2)
  done

(* Lemma-1 flavoured check for ReLU splits: each input's activation
   pattern matches the split assumptions of exactly one leaf. *)
let test_leaf_phases_partition () =
  let net = Fixtures.paper_net () in
  let t = Tree.create () in
  let l, _ = Tree.split t (Tree.root t) (r 0 0) in
  let _ = Tree.split t l (r 1 0) in
  let box = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
  let rng = Rng.create 11 in
  let leaves = Tree.leaves t in
  for _ = 1 to 300 do
    let x = Box.sample ~rng box in
    let tr = Network.forward_trace net x in
    let matching =
      List.filter
        (fun leaf ->
          let _, splits = Tree.subproblem ~root_box:box leaf in
          List.for_all
            (fun ((ri : Relu_id.t), phase) ->
              let v = tr.Network.pre.(ri.Relu_id.layer).(ri.Relu_id.index) in
              match phase with Splits.Pos -> v >= 0.0 | Splits.Neg -> v < 0.0)
            (Splits.bindings splits))
        leaves
    in
    Alcotest.(check int) "exactly one leaf matches" 1 (List.length matching)
  done

let test_lb_roundtrip () =
  let t = Tree.create () in
  Alcotest.(check bool) "initially nan" true (Float.is_nan (Tree.lb (Tree.root t)));
  Tree.set_lb (Tree.root t) (-7.0);
  Alcotest.(check (float 0.0)) "stored" (-7.0) (Tree.lb (Tree.root t))

let test_copy_independent () =
  let t = Tree.create () in
  let l, _ = Tree.split t (Tree.root t) (r 0 0) in
  Tree.set_lb (Tree.root t) 1.0;
  let c = Tree.copy t in
  (* Mutate the original: the copy must not change. *)
  let _ = Tree.split t l (r 0 1) in
  Tree.set_lb (Tree.root t) 2.0;
  Alcotest.(check int) "copy size unchanged" 3 (Tree.size c);
  Alcotest.(check (float 0.0)) "copy lb unchanged" 1.0 (Tree.lb (Tree.root c));
  Alcotest.(check int) "original grew" 5 (Tree.size t)

let test_serialization_roundtrip () =
  let t = Tree.create () in
  let l, rgt = Tree.split t (Tree.root t) (r 0 0) in
  let _ = Tree.split t l (Decision.Input_split 3) in
  Tree.set_lb (Tree.root t) (-7.0);
  Tree.set_lb l (-5.0);
  Tree.set_lb rgt infinity;
  let t' = Tree.of_string (Tree.to_string t) in
  Alcotest.(check int) "size" (Tree.size t) (Tree.size t');
  Alcotest.(check int) "leaves" (Tree.num_leaves t) (Tree.num_leaves t');
  Alcotest.(check (float 0.0)) "root lb" (-7.0) (Tree.lb (Tree.root t'));
  Alcotest.(check bool) "well formed" true (Tree.well_formed t');
  (match Tree.children (Tree.root t') with
  | Some (l', r') ->
      Alcotest.(check (float 0.0)) "left lb" (-5.0) (Tree.lb l');
      Alcotest.(check bool) "right lb inf" true (Tree.lb r' = infinity);
      Alcotest.(check bool) "left decision" true (Tree.decision l' = Some (Decision.Input_split 3))
  | None -> Alcotest.fail "root lost children");
  (* Round trip again: fixpoint. *)
  Alcotest.(check string) "stable" (Tree.to_string t') (Tree.to_string (Tree.of_string (Tree.to_string t')))

let test_serialization_malformed () =
  (match Tree.of_string "bogus" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Tree.of_string "node 0 nan relu 0 0\nleaf 1 nan" with
  | exception Failure _ -> () (* missing second child *)
  | _ -> Alcotest.fail "expected Failure on truncated tree"

let test_path_decisions () =
  let t = Tree.create () in
  let l, _ = Tree.split t (Tree.root t) (r 0 0) in
  let _, lr = Tree.split t l (r 0 1) in
  let path = Tree.path_decisions lr in
  Alcotest.(check int) "two edges" 2 (List.length path);
  Alcotest.(check bool) "order root-down" true
    (match path with
    | [ (d1, Decision.Left); (d2, Decision.Right) ] ->
        Decision.equal d1 (r 0 0) && Decision.equal d2 (r 0 1)
    | _ -> false)

let prop_random_trees_well_formed =
  QCheck.Test.make ~name:"random grown trees stay well-formed" ~count:50
    QCheck.(make QCheck.Gen.(int_range 0 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let t = Tree.create () in
      for _ = 1 to 10 do
        let leaves = Array.of_list (Tree.leaves t) in
        let leaf = leaves.(Rng.int rng (Array.length leaves)) in
        let d = r (Rng.int rng 3) (Rng.int rng 4) in
        (* Skip if the decision already appears on the path. *)
        let on_path =
          List.exists (fun (pd, _) -> Decision.equal pd d) (Tree.path_decisions leaf)
        in
        if not on_path then ignore (Tree.split t leaf d)
      done;
      Tree.well_formed t
      && Tree.size t = (2 * Tree.num_leaves t) - 1
      && Tree.to_string (Tree.of_string (Tree.to_string t)) = Tree.to_string t)



let test_decision_string_roundtrip () =
  let cases =
    [ r 0 0; r 3 17; Decision.Input_split 0; Decision.Input_split 4 ]
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "roundtrip" true
        (Decision.equal d (Decision.of_string (Decision.to_string d))))
    cases;
  match Decision.of_string "nonsense" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

let test_decision_ordering () =
  (* Relu splits order before input splits; within each kind, by index. *)
  Alcotest.(check bool) "relu < input" true (Decision.compare (r 9 9) (Decision.Input_split 0) < 0);
  Alcotest.(check bool) "relu order" true (Decision.compare (r 0 1) (r 1 0) < 0);
  Alcotest.(check bool) "input order" true
    (Decision.compare (Decision.Input_split 1) (Decision.Input_split 2) < 0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("single node", `Quick, test_single_node);
    ("split grows", `Quick, test_split_grows);
    ("split non-leaf rejected", `Quick, test_split_non_leaf_rejected);
    ("split repeat rejected", `Quick, test_split_repeat_rejected);
    ("sibling reuse decision", `Quick, test_sibling_can_reuse_decision);
    ("leaves order", `Quick, test_leaves_order_left_to_right);
    ("subproblem relu", `Quick, test_subproblem_relu);
    ("subproblem input split", `Quick, test_subproblem_input_split);
    ("leaf boxes partition", `Quick, test_leaf_boxes_partition);
    ("leaf phases partition", `Quick, test_leaf_phases_partition);
    ("lb roundtrip", `Quick, test_lb_roundtrip);
    ("copy independent", `Quick, test_copy_independent);
    ("serialization roundtrip", `Quick, test_serialization_roundtrip);
    ("serialization malformed", `Quick, test_serialization_malformed);
    ("path decisions", `Quick, test_path_decisions);
    q prop_random_trees_well_formed;
    ("decision string roundtrip", `Quick, test_decision_string_roundtrip);
    ("decision ordering", `Quick, test_decision_ordering);
  ]
