(* Shared test fixtures: small networks and properties with known
   behaviour. *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Builder = Ivan_nn.Builder
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop

let dense ?(activation = Layer.Relu) weights bias =
  Layer.make (Layer.Dense { weights = Mat.of_arrays weights; bias }) activation

(* The paper's running example (Fig. 2): N with weights as printed.
   Layer 1: x1 = relu(2 i1 - i2), x2 = relu(i1 + i2)
   Layer 2: x3 = relu(x1 - 2 x2), x4 = relu(-x1 + x2)
   Output:  o1 = x3 - x4. *)
let paper_net () =
  Network.make
    [
      dense [| [| 2.0; -1.0 |]; [| 1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense [| [| 1.0; -2.0 |]; [| -1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense ~activation:Layer.Identity [| [| 1.0; -1.0 |] |] [| 0.0 |];
    ]

(* The paper's property: phi = [0,1]^2, psi = (o1 + 14 >= 0).  o1 is
   bounded well above -14 on this network, so the property holds. *)
let paper_prop () =
  let input = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  Prop.make ~name:"paper" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset:14.0

(* A tight version of the same property: the exact minimum of o1 over
   [0,1]^2 is -1.5 (attained at (0.5, 1)), so psi = o1 + k >= 0 is true
   iff k >= 1.5. *)
let paper_prop_with_offset k =
  let input = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  Prop.make ~name:(Printf.sprintf "paper+%g" k) ~input ~c:(Vec.of_list [ 1.0 ]) ~offset:k

(* A random trained-ish network: random weights scaled down so outputs
   stay moderate. *)
let random_net ~seed ~dims =
  let rng = Rng.create seed in
  Builder.dense_net ~rng ~dims

(* Sample-based soundness check: every sampled point's objective margin
   must respect a claimed lower bound. *)
let check_margin_lb ?(samples = 200) ~seed net prop lb =
  let rng = Rng.create seed in
  let ok = ref true in
  for _ = 1 to samples do
    let x = Box.sample ~rng prop.Prop.input in
    if Prop.margin prop (Network.forward net x) < lb -. 1e-6 then ok := false
  done;
  !ok

(* Brute-force approximate minimum of the objective over the box. *)
let approx_min_margin ?(samples = 2000) ~seed net prop =
  let rng = Rng.create seed in
  let best = ref infinity in
  for _ = 1 to samples do
    let x = Box.sample ~rng prop.Prop.input in
    best := Float.min !best (Prop.margin prop (Network.forward net x))
  done;
  (* also probe the corners of low-dimensional boxes *)
  let d = Box.dim prop.Prop.input in
  if d <= 12 then begin
    let corners = 1 lsl d in
    for mask = 0 to corners - 1 do
      let x =
        Array.init d (fun j ->
            if (mask lsr j) land 1 = 1 then Box.hi_at prop.Prop.input j
            else Box.lo_at prop.Prop.input j)
      in
      best := Float.min !best (Prop.margin prop (Network.forward net x))
    done
  end;
  !best
