module Vec = Ivan_tensor.Vec

(* ---------------- s-expressions ---------------- *)

type sexp = Atom of string | List of sexp list

let tokenize s =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let in_comment = ref false in
  String.iter
    (fun ch ->
      if !in_comment then begin if ch = '\n' then in_comment := false end
      else
        match ch with
        | ';' ->
            flush ();
            in_comment := true
        | '(' ->
            flush ();
            tokens := "(" :: !tokens
        | ')' ->
            flush ();
            tokens := ")" :: !tokens
        | ' ' | '\t' | '\n' | '\r' -> flush ()
        | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !tokens

let parse_sexps tokens =
  let rec parse_one = function
    | [] -> failwith "Vnnlib: unexpected end of input"
    | "(" :: rest ->
        let items, rest = parse_list rest in
        (List items, rest)
    | ")" :: _ -> failwith "Vnnlib: unexpected ')'"
    | atom :: rest -> (Atom atom, rest)
  and parse_list tokens =
    match tokens with
    | ")" :: rest -> ([], rest)
    | [] -> failwith "Vnnlib: unbalanced parentheses"
    | _ ->
        let item, rest = parse_one tokens in
        let items, rest = parse_list rest in
        (item :: items, rest)
  in
  let rec top acc = function
    | [] -> List.rev acc
    | tokens ->
        let item, rest = parse_one tokens in
        top (item :: acc) rest
  in
  top [] tokens

(* ---------------- variables ---------------- *)

type var = Input of int | Output of int

(* Cap on variable indices: "X_999999999" in a corrupt file must be a
   parse error, not a giga-element bound array. *)
let max_var_index = 100_000

let var_of_name name =
  let parse_index prefix =
    let plen = String.length prefix in
    if String.length name > plen && String.sub name 0 plen = prefix then
      match int_of_string_opt (String.sub name plen (String.length name - plen)) with
      | Some i when i >= 0 && i <= max_var_index -> Some i
      | Some _ | None -> None
    else None
  in
  match parse_index "X_" with
  | Some i -> Some (Input i)
  | None -> ( match parse_index "Y_" with Some j -> Some (Output j) | None -> None)

(* Linear expression over outputs: coefficients per Y_j plus constant.
   Inputs are not allowed inside output assertions (and vice versa). *)
type linexp = { coeffs : (int * float) list; const : float }

let const_exp c = { coeffs = []; const = c }

let add_exp a b = { coeffs = a.coeffs @ b.coeffs; const = a.const +. b.const }

let scale_exp k e =
  { coeffs = List.map (fun (j, c) -> (j, k *. c)) e.coeffs; const = k *. e.const }

let rec linexp_of_sexp = function
  | Atom a -> (
      match var_of_name a with
      | Some (Output j) -> { coeffs = [ (j, 1.0) ]; const = 0.0 }
      | Some (Input _) -> failwith "Vnnlib: input variable inside an output expression"
      | None -> (
          match float_of_string_opt a with
          | Some c -> const_exp c
          | None -> failwith (Printf.sprintf "Vnnlib: unknown atom %S" a)))
  | List (Atom "+" :: args) ->
      List.fold_left (fun acc e -> add_exp acc (linexp_of_sexp e)) (const_exp 0.0) args
  | List [ Atom "-"; a ] -> scale_exp (-1.0) (linexp_of_sexp a)
  | List (Atom "-" :: a :: rest) ->
      List.fold_left
        (fun acc e -> add_exp acc (scale_exp (-1.0) (linexp_of_sexp e)))
        (linexp_of_sexp a) rest
  | List [ Atom "*"; a; b ] -> (
      match (linexp_of_sexp a, linexp_of_sexp b) with
      | { coeffs = []; const = k }, e | e, { coeffs = []; const = k } -> scale_exp k e
      | _, _ -> failwith "Vnnlib: non-linear product")
  | List _ -> failwith "Vnnlib: unsupported expression form"

(* ---------------- assertions ---------------- *)

type parsed = {
  mutable input_lo : (int * float) list;
  mutable input_hi : (int * float) list;
  mutable num_inputs : int;
  mutable num_outputs : int;
  (* the single unsafe-set constraint, as "expr >= 0" *)
  mutable unsafe : linexp option;
}

let record_output_constraint p exp =
  match p.unsafe with
  | Some _ ->
      failwith
        "Vnnlib: multiple output assertions (conjunctive unsafe sets) are outside the supported \
         fragment"
  | None -> p.unsafe <- Some exp

(* (op lhs rhs): an input bound or an output constraint. *)
let handle_assert p op lhs rhs =
  let as_input_bound side =
    match (lhs, rhs) with
    | Atom a, Atom b -> (
        match (var_of_name a, float_of_string_opt b) with
        | Some (Input i), Some c -> Some (i, c, side)
        | _, _ -> (
            match (float_of_string_opt a, var_of_name b) with
            | Some c, Some (Input i) ->
                (* constant op var: flip the side *)
                Some (i, c, not side)
            | _, _ -> None))
    | _, _ -> None
  in
  (* side = true means "var <= const". *)
  let upper = op = "<=" in
  match as_input_bound upper with
  | Some (i, c, true) -> p.input_hi <- (i, c) :: p.input_hi
  | Some (i, c, false) -> p.input_lo <- (i, c) :: p.input_lo
  | None ->
      (* Output constraint: normalize to expr >= 0 describing UNSAFE. *)
      let l = linexp_of_sexp lhs and r = linexp_of_sexp rhs in
      let exp =
        if op = ">=" then add_exp l (scale_exp (-1.0) r) else add_exp r (scale_exp (-1.0) l)
      in
      record_output_constraint p exp

let parse_exn text ~name =
  let sexps = parse_sexps (tokenize text) in
  let p = { input_lo = []; input_hi = []; num_inputs = 0; num_outputs = 0; unsafe = None } in
  List.iter
    (fun sexp ->
      match sexp with
      | List [ Atom "declare-const"; Atom v; Atom "Real" ] -> (
          match var_of_name v with
          | Some (Input i) -> p.num_inputs <- max p.num_inputs (i + 1)
          | Some (Output j) -> p.num_outputs <- max p.num_outputs (j + 1)
          | None -> failwith (Printf.sprintf "Vnnlib: unrecognized variable %S" v))
      | List [ Atom "assert"; List [ Atom (("<=" | ">=") as op); lhs; rhs ] ] ->
          handle_assert p op lhs rhs
      | List (Atom "assert" :: List (Atom "or" :: _) :: _) ->
          failwith "Vnnlib: disjunctive properties are outside the supported fragment"
      | List (Atom "assert" :: _) -> failwith "Vnnlib: unsupported assertion form"
      | List (Atom other :: _) -> failwith (Printf.sprintf "Vnnlib: unsupported command %S" other)
      | Atom a -> failwith (Printf.sprintf "Vnnlib: stray atom %S" a)
      | List _ -> failwith "Vnnlib: unsupported form")
    sexps;
  if p.num_inputs = 0 then failwith "Vnnlib: no input variables declared";
  if p.num_outputs = 0 then failwith "Vnnlib: no output variables declared";
  let lo = Array.make p.num_inputs nan and hi = Array.make p.num_inputs nan in
  let declared_input i =
    if i >= p.num_inputs then
      failwith (Printf.sprintf "Vnnlib: bound on undeclared input X_%d" i)
  in
  List.iter
    (fun (i, c) ->
      declared_input i;
      if Float.is_nan lo.(i) || c > lo.(i) then lo.(i) <- c)
    p.input_lo;
  List.iter
    (fun (i, c) ->
      declared_input i;
      if Float.is_nan hi.(i) || c < hi.(i) then hi.(i) <- c)
    p.input_hi;
  Array.iteri
    (fun i v ->
      if Float.is_nan v || Float.is_nan hi.(i) then
        failwith (Printf.sprintf "Vnnlib: input X_%d is not bounded on both sides" i))
    lo;
  let input = Box.make ~lo ~hi in
  match p.unsafe with
  | None -> failwith "Vnnlib: no output assertion found"
  | Some unsafe ->
      (* Unsafe set: unsafe_expr >= 0.  The property (safety) is its
         negation: -unsafe_expr > 0, represented in the closed >= form. *)
      let c = Vec.zeros p.num_outputs in
      List.iter
        (fun (j, k) ->
          if j >= p.num_outputs then
            failwith (Printf.sprintf "Vnnlib: assertion on undeclared output Y_%d" j);
          c.(j) <- c.(j) -. k)
        unsafe.coeffs;
      Prop.make ~name ~input ~c ~offset:(-.unsafe.const)

let parse text ~name =
  (* Box.make rejects lo > hi with Invalid_argument, and pathological
     nesting can exhaust the parser's stack; both must surface as the
     documented Failure. *)
  match parse_exn text ~name with
  | prop -> prop
  | exception Invalid_argument msg -> failwith ("Vnnlib: invalid property: " ^ msg)
  | exception Stack_overflow -> failwith "Vnnlib: expression nesting too deep"

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic) ~name:(Filename.basename path))

let print (prop : Prop.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "; property %s\n" prop.Prop.name);
  let d = Box.dim prop.Prop.input in
  for i = 0 to d - 1 do
    Buffer.add_string buf (Printf.sprintf "(declare-const X_%d Real)\n" i)
  done;
  let m = Vec.dim prop.Prop.c in
  for j = 0 to m - 1 do
    Buffer.add_string buf (Printf.sprintf "(declare-const Y_%d Real)\n" j)
  done;
  for i = 0 to d - 1 do
    Buffer.add_string buf
      (Printf.sprintf "(assert (>= X_%d %.17g))\n(assert (<= X_%d %.17g))\n" i
         (Box.lo_at prop.Prop.input i) i (Box.hi_at prop.Prop.input i))
  done;
  (* Unsafe set = negation of psi: -(c . Y) - offset >= 0. *)
  let terms =
    List.filter_map
      (fun j ->
        let k = -.prop.Prop.c.(j) in
        if k = 0.0 then None else Some (Printf.sprintf "(* %.17g Y_%d)" k j))
      (List.init m (fun j -> j))
  in
  let sum =
    match terms with
    | [] -> "0.0"
    | [ t ] -> t
    | ts -> Printf.sprintf "(+ %s)" (String.concat " " ts)
  in
  Buffer.add_string buf (Printf.sprintf "(assert (>= %s %.17g))\n" sum prop.Prop.offset);
  Buffer.contents buf
