(* Pluggable node-selection strategies for the BaB engine. *)

type strategy = Fifo | Lifo | Best_first

let strategy_name = function Fifo -> "fifo" | Lifo -> "lifo" | Best_first -> "best"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "fifo" | "bfs" -> Some Fifo
  | "lifo" | "dfs" -> Some Lifo
  | "best" | "best-first" | "best_first" -> Some Best_first
  | _ -> None

let all_strategies = [ Fifo; Lifo; Best_first ]

(* Min-heap over (priority, seq): among equal priorities the earliest
   push wins, so Best_first is deterministic. *)
type 'a heap = { mutable arr : (float * int * 'a) array; mutable len : int }

let heap_less (p1, s1, _) (p2, s2, _) = p1 < p2 || (p1 = p2 && s1 < s2)

let heap_push h entry =
  if h.len = Array.length h.arr then begin
    let grown = Array.make (max 8 (2 * h.len)) entry in
    Array.blit h.arr 0 grown 0 h.len;
    h.arr <- grown
  end;
  h.arr.(h.len) <- entry;
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    heap_less h.arr.(!i) h.arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.arr.(parent) in
    h.arr.(parent) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := parent
  done

let heap_pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && heap_less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && heap_less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    let _, _, v = top in
    Some v
  end

(* Every representation stores the push priority alongside the item so a
   frontier can be serialized ({!elements}) and rebuilt exactly. *)
type 'a repr =
  | Queue of (float * 'a) Queue.t
  | Stack of (float * 'a) list ref
  | Heap of 'a heap

type 'a t = { strategy : strategy; repr : 'a repr; mutable count : int; mutable seq : int }

let create strategy =
  let repr =
    match strategy with
    | Fifo -> Queue (Queue.create ())
    | Lifo -> Stack (ref [])
    | Best_first -> Heap { arr = [||]; len = 0 }
  in
  { strategy; repr; count = 0; seq = 0 }

let strategy t = t.strategy

let length t = t.count

let is_empty t = t.count = 0

let push t ~priority x =
  (* NaN priorities (unbounded nodes, e.g. fresh leaves of a reused
     tree) sort first: nothing is known about them yet. *)
  let priority = if Float.is_nan priority then neg_infinity else priority in
  (match t.repr with
  | Queue q -> Queue.add (priority, x) q
  | Stack s -> s := (priority, x) :: !s
  | Heap h -> heap_push h (priority, t.seq, x));
  t.seq <- t.seq + 1;
  t.count <- t.count + 1

let pop t =
  let popped =
    match t.repr with
    | Queue q -> if Queue.is_empty q then None else Some (snd (Queue.pop q))
    | Stack s -> ( match !s with [] -> None | (_, x) :: rest -> s := rest; Some x)
    | Heap h -> heap_pop h
  in
  (match popped with Some _ -> t.count <- t.count - 1 | None -> ());
  popped

let elements t =
  match t.repr with
  | Queue q -> List.rev (Queue.fold (fun acc e -> e :: acc) [] q)
  | Stack s -> List.rev !s
  | Heap h ->
      let entries = Array.sub h.arr 0 h.len in
      Array.sort (fun (p1, s1, _) (p2, s2, _) -> compare (p1, s1) (p2, s2)) entries;
      Array.to_list (Array.map (fun (p, _, x) -> (p, x)) entries)
