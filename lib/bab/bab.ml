module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop

type budget = Engine.budget = { max_analyzer_calls : int; max_seconds : float }

let default_budget = Engine.default_budget

type stats = Engine.stats = {
  analyzer_calls : int;
  branchings : int;
  tree_size : int;
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
  max_frontier : int;
  max_depth : int;
  heuristic_failures : int;
  retries : int;
  fallback_bounds : int;
  faults_absorbed : int;
  lp_warm_hits : int;
  lp_warm_misses : int;
  lp_cold_solves : int;
  lp_pivots : int;
  certs_emitted : int;
  certs_unavailable : int;
}

type verdict = Engine.verdict = Proved | Disproved of Ivan_tensor.Vec.t | Exhausted

type run = Engine.run = {
  verdict : verdict;
  tree : Ivan_spectree.Tree.t;
  stats : stats;
  artifact : Ivan_cert.Cert.Artifact.t option;
}

let verify ~analyzer ~heuristic ?strategy ?trace ?(budget = default_budget) ?policy ?certify
    ?journal ?journal_every ?initial_tree ~net ~prop () =
  if Box.dim prop.Prop.input <> Network.input_dim net then
    invalid_arg "Bab.verify: property dimension does not match the network";
  Engine.run
    (Engine.create ~analyzer ~heuristic ?strategy ?trace ~budget ?policy ?certify ?journal
       ?journal_every ?initial_tree ~net ~prop ())
