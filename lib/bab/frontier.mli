(** Pluggable node-selection strategies for the BaB engine.

    A frontier holds the unprocessed subproblems of a branch-and-bound
    run and decides which one the engine bounds next.  [Fifo] reproduces
    the classic breadth-first active list exactly (the order of the
    paper's Algorithm 1 reproduction); [Lifo] explores depth-first,
    keeping the frontier — and therefore memory — proportional to the
    tree depth; [Best_first] always pops the node with the lowest
    analyzer lower bound, following the "Fast and Complete" observation
    that frontier ordering is a primary BaB performance lever. *)

type strategy = Fifo | Lifo | Best_first

val strategy_name : strategy -> string
(** ["fifo"], ["lifo"], ["best"] — the CLI spellings. *)

val strategy_of_string : string -> strategy option
(** Accepts the {!strategy_name} spellings plus the aliases [bfs],
    [dfs], [best-first] and [best_first] (case-insensitive). *)

val all_strategies : strategy list

type 'a t
(** A mutable frontier of ['a] items. *)

val create : strategy -> 'a t

val strategy : 'a t -> strategy

val push : 'a t -> priority:float -> 'a -> unit
(** [priority] is the analyzer lower bound associated with the item (its
    parent's bound for freshly split children).  Only [Best_first]
    orders by it — lowest first, ties broken by insertion order so every
    strategy is deterministic.  A [nan] priority sorts first. *)

val pop : 'a t -> 'a option

val is_empty : 'a t -> bool

val length : 'a t -> int

val elements : 'a t -> (float * 'a) list
(** The frontier's (priority, item) pairs in re-push order: feeding them
    back to {!push} on a fresh frontier of the same strategy reproduces
    the original pop order exactly.  The frontier is not modified.  Used
    by the engine's checkpoint serialization. *)
