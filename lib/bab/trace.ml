(* Structured event stream of a verification run. *)

module Decision = Ivan_spectree.Decision

type event =
  | Dequeued of { node : int; depth : int; frontier : int }
  | Analyzed of { node : int; status : string; lb : float; seconds : float }
  | Lp_solved of { node : int; warm_hits : int; warm_misses : int; cold_solves : int; pivots : int }
  | Split of { node : int; decision : Decision.t; left : int; right : int }
  | Pruned of { node : int }
  | Stuck of { node : int }
  | Retried of { node : int; analyzer : string; attempt : int; reason : string }
  | Fallback of { node : int; analyzer : string; reason : string }
  | Absorbed of { node : int; analyzer : string; reason : string }
  | Certified of { node : int; kind : string }
  | Verdict of { verdict : string; calls : int; seconds : float }

(* ---------------- sinks ---------------- *)

type ring = { capacity : int; items : event Queue.t }

type sink =
  | Null
  | Ring of ring
  | Channel of out_channel
  | Hook of (event -> unit)
  | Tee of sink * sink

let null = Null

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  Ring { capacity; items = Queue.create () }

let ring_contents = function
  | Ring r -> List.of_seq (Queue.to_seq r.items)
  | Null | Channel _ | Hook _ | Tee _ -> []

let channel oc = Channel oc

let hook f = Hook f

let tee a b = Tee (a, b)

(* ---------------- JSONL serialization ---------------- *)

(* Floats print with enough digits to round-trip binary64 exactly; the
   three non-finite values, which JSON cannot represent as numbers, are
   encoded as strings the parser recognizes. *)
let float_token v =
  if Float.is_nan v then "\"nan\""
  else if v = infinity then "\"inf\""
  else if v = neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" v

let float_of_token = function
  | "nan" -> nan
  | "inf" -> infinity
  | "-inf" -> neg_infinity
  | s -> float_of_string s

let event_to_json = function
  | Dequeued { node; depth; frontier } ->
      Printf.sprintf {|{"ev":"dequeued","node":%d,"depth":%d,"frontier":%d}|} node depth frontier
  | Analyzed { node; status; lb; seconds } ->
      Printf.sprintf {|{"ev":"analyzed","node":%d,"status":%S,"lb":%s,"seconds":%s}|} node status
        (float_token lb) (float_token seconds)
  | Lp_solved { node; warm_hits; warm_misses; cold_solves; pivots } ->
      Printf.sprintf
        {|{"ev":"lp","node":%d,"warm_hits":%d,"warm_misses":%d,"cold_solves":%d,"pivots":%d}|} node
        warm_hits warm_misses cold_solves pivots
  | Split { node; decision; left; right } ->
      Printf.sprintf {|{"ev":"split","node":%d,"decision":%S,"left":%d,"right":%d}|} node
        (Decision.to_string decision) left right
  | Pruned { node } -> Printf.sprintf {|{"ev":"pruned","node":%d}|} node
  | Stuck { node } -> Printf.sprintf {|{"ev":"stuck","node":%d}|} node
  | Retried { node; analyzer; attempt; reason } ->
      Printf.sprintf {|{"ev":"retried","node":%d,"analyzer":%S,"attempt":%d,"reason":%S}|} node
        analyzer attempt reason
  | Fallback { node; analyzer; reason } ->
      Printf.sprintf {|{"ev":"fallback","node":%d,"analyzer":%S,"reason":%S}|} node analyzer reason
  | Absorbed { node; analyzer; reason } ->
      Printf.sprintf {|{"ev":"absorbed","node":%d,"analyzer":%S,"reason":%S}|} node analyzer reason
  | Certified { node; kind } ->
      Printf.sprintf {|{"ev":"certified","node":%d,"kind":%S}|} node kind
  | Verdict { verdict; calls; seconds } ->
      Printf.sprintf {|{"ev":"verdict","verdict":%S,"calls":%d,"seconds":%s}|} verdict calls
        (float_token seconds)

(* Minimal parser for the flat one-line objects emitted above: string
   keys mapping to either quoted strings or bare number tokens. *)
let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Trace.event_of_json: %s in %S" msg line) in
  let skip_ws () = while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do incr pos done in
  let expect c =
    skip_ws ();
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected %c" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      if !pos >= n then fail "unterminated string";
      (match line.[!pos] with
      | '"' -> closed := true
      | '\\' ->
          if !pos + 1 >= n then fail "dangling escape";
          incr pos;
          Buffer.add_char buf
            (match line.[!pos] with
            | 'n' -> '\n'
            | 't' -> '\t'
            | 'r' -> '\r'
            | c -> c)
      | c -> Buffer.add_char buf c);
      incr pos
    done;
    Buffer.contents buf
  in
  let parse_bare () =
    skip_ws ();
    let start = !pos in
    while !pos < n && (match line.[!pos] with ',' | '}' | ' ' -> false | _ -> true) do
      incr pos
    done;
    if !pos = start then fail "empty value";
    String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let continue = ref true in
    while !continue do
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        if !pos < n && line.[!pos] = '"' then `Str (parse_string ()) else `Bare (parse_bare ())
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then incr pos
      else begin
        expect '}';
        continue := false
      end
    done
  end;
  List.rev !fields

let event_of_json line =
  let fields = parse_flat line in
  let fail key = failwith (Printf.sprintf "Trace.event_of_json: missing field %S in %S" key line) in
  let str key =
    match List.assoc_opt key fields with Some (`Str s) -> s | Some (`Bare s) -> s | None -> fail key
  in
  let int key = int_of_string (str key) in
  let float key =
    match List.assoc_opt key fields with
    | Some (`Str s) -> float_of_token s
    | Some (`Bare s) -> float_of_string s
    | None -> fail key
  in
  match str "ev" with
  | "dequeued" -> Dequeued { node = int "node"; depth = int "depth"; frontier = int "frontier" }
  | "analyzed" ->
      Analyzed { node = int "node"; status = str "status"; lb = float "lb"; seconds = float "seconds" }
  | "lp" ->
      Lp_solved
        {
          node = int "node";
          warm_hits = int "warm_hits";
          warm_misses = int "warm_misses";
          cold_solves = int "cold_solves";
          pivots = int "pivots";
        }
  | "split" ->
      Split
        {
          node = int "node";
          decision = Decision.of_string (str "decision");
          left = int "left";
          right = int "right";
        }
  | "pruned" -> Pruned { node = int "node" }
  | "stuck" -> Stuck { node = int "node" }
  | "retried" ->
      Retried
        { node = int "node"; analyzer = str "analyzer"; attempt = int "attempt"; reason = str "reason" }
  | "fallback" -> Fallback { node = int "node"; analyzer = str "analyzer"; reason = str "reason" }
  | "absorbed" -> Absorbed { node = int "node"; analyzer = str "analyzer"; reason = str "reason" }
  | "certified" -> Certified { node = int "node"; kind = str "kind" }
  | "verdict" -> Verdict { verdict = str "verdict"; calls = int "calls"; seconds = float "seconds" }
  | ev -> failwith (Printf.sprintf "Trace.event_of_json: unknown event %S" ev)

let rec emit sink ev =
  match sink with
  | Null -> ()
  | Ring r ->
      Queue.add ev r.items;
      if Queue.length r.items > r.capacity then ignore (Queue.pop r.items)
  | Channel oc ->
      output_string oc (event_to_json ev);
      output_char oc '\n'
  | Hook f -> f ev
  | Tee (a, b) ->
      emit a ev;
      emit b ev

let with_jsonl_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (Channel oc))

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then events := event_of_json line :: !events
         done
       with End_of_file -> ());
      List.rev !events)

(* ---------------- aggregation ---------------- *)

type aggregate = {
  events : int;
  analyzer_calls : int;
  analyzer_seconds : float;
  branchings : int;
  pruned : int;
  stuck : int;
  retries : int;
  fallbacks : int;
  absorbed : int;
  max_frontier : int;
  max_depth : int;
  lp_warm_hits : int;
  lp_warm_misses : int;
  lp_cold_solves : int;
  lp_pivots : int;
  certified : int;
  certs_unavailable : int;
  verdict : string option;
}

let empty_aggregate =
  {
    events = 0;
    analyzer_calls = 0;
    analyzer_seconds = 0.0;
    branchings = 0;
    pruned = 0;
    stuck = 0;
    retries = 0;
    fallbacks = 0;
    absorbed = 0;
    max_frontier = 0;
    max_depth = 0;
    lp_warm_hits = 0;
    lp_warm_misses = 0;
    lp_cold_solves = 0;
    lp_pivots = 0;
    certified = 0;
    certs_unavailable = 0;
    verdict = None;
  }

let aggregate events =
  List.fold_left
    (fun acc ev ->
      let acc = { acc with events = acc.events + 1 } in
      match ev with
      | Dequeued { depth; frontier; _ } ->
          {
            acc with
            max_frontier = max acc.max_frontier frontier;
            max_depth = max acc.max_depth depth;
          }
      | Analyzed { seconds; _ } ->
          {
            acc with
            analyzer_calls = acc.analyzer_calls + 1;
            analyzer_seconds = acc.analyzer_seconds +. seconds;
          }
      | Lp_solved { warm_hits; warm_misses; cold_solves; pivots; _ } ->
          {
            acc with
            lp_warm_hits = acc.lp_warm_hits + warm_hits;
            lp_warm_misses = acc.lp_warm_misses + warm_misses;
            lp_cold_solves = acc.lp_cold_solves + cold_solves;
            lp_pivots = acc.lp_pivots + pivots;
          }
      | Split _ -> { acc with branchings = acc.branchings + 1 }
      | Pruned _ -> { acc with pruned = acc.pruned + 1 }
      | Stuck _ -> { acc with stuck = acc.stuck + 1 }
      | Retried _ -> { acc with retries = acc.retries + 1 }
      | Fallback _ -> { acc with fallbacks = acc.fallbacks + 1 }
      | Absorbed _ -> { acc with absorbed = acc.absorbed + 1 }
      | Certified { kind; _ } ->
          if kind = "unavailable" then { acc with certs_unavailable = acc.certs_unavailable + 1 }
          else { acc with certified = acc.certified + 1 }
      | Verdict { verdict; _ } -> { acc with verdict = Some verdict })
    empty_aggregate events

let pp_aggregate fmt a =
  Format.fprintf fmt "%d calls (%.3fs in analyzer), %d splits, frontier peak %d, depth %d"
    a.analyzer_calls a.analyzer_seconds a.branchings a.max_frontier a.max_depth;
  if a.pruned > 0 then Format.fprintf fmt ", %d pruned" a.pruned;
  if a.stuck > 0 then Format.fprintf fmt ", %d heuristic failures" a.stuck;
  if a.retries > 0 then Format.fprintf fmt ", %d retries" a.retries;
  if a.fallbacks > 0 then Format.fprintf fmt ", %d fallback bounds" a.fallbacks;
  if a.absorbed > 0 then Format.fprintf fmt ", %d faults absorbed" a.absorbed;
  if a.lp_warm_hits + a.lp_warm_misses + a.lp_cold_solves > 0 then
    Format.fprintf fmt ", LP %d warm / %d miss / %d cold (%d pivots)" a.lp_warm_hits a.lp_warm_misses
      a.lp_cold_solves a.lp_pivots;
  if a.certified > 0 || a.certs_unavailable > 0 then
    Format.fprintf fmt ", %d certified / %d uncertified" a.certified a.certs_unavailable;
  match a.verdict with None -> () | Some v -> Format.fprintf fmt ", verdict %s" v
