(** Structured event stream of a verification run.

    The {!Engine} (and the tree pruner) emit one {!event} per observable
    step of branch and bound; a {!sink} decides where events go — thrown
    away ([null]), kept in a bounded in-memory buffer ([ring]), written
    as JSON Lines ([channel] / {!with_jsonl_file}), or handed to a
    callback ([hook]).  A recorded JSONL trace {!read_jsonl}s back into
    the same events, and {!aggregate} replays any event list into the
    run's summary statistics — so a trace file is a complete,
    machine-readable account of where the verifier spent its effort. *)

type event =
  | Dequeued of { node : int; depth : int; frontier : int }
      (** a node left the frontier; [frontier] is the frontier length
          including this node, [depth] its tree depth *)
  | Analyzed of { node : int; status : string; lb : float; seconds : float }
      (** an analyzer call bounded the node's subproblem ([status] is
          [verified], [counterexample] or [unknown]) *)
  | Lp_solved of { node : int; warm_hits : int; warm_misses : int; cold_solves : int; pivots : int }
      (** the analyzer call solved LPs: how many warm-started from a
          parent basis, how many warm attempts fell back to cold, how
          many never attempted one, and the total simplex pivots *)
  | Split of { node : int; decision : Ivan_spectree.Decision.t; left : int; right : int }
      (** the node branched into children [left]/[right] *)
  | Pruned of { node : int }  (** reuse-prune: an ineffective split was skipped *)
  | Stuck of { node : int }
      (** the heuristic produced no decision on an unsolved node — a
          numerical failure, not budget exhaustion *)
  | Retried of { node : int; analyzer : string; attempt : int; reason : string }
      (** the resilience layer re-attempted a failing analyzer *)
  | Fallback of { node : int; analyzer : string; reason : string }
      (** a degraded (non-primary) analyzer's bound was accepted *)
  | Absorbed of { node : int; analyzer : string; reason : string }
      (** an analyzer failure was swallowed instead of crashing the run *)
  | Certified of { node : int; kind : string }
      (** certificate collection on a verified leaf: [kind] is ["dual"]
          or ["farkas"] when a checkable certificate was emitted, and
          ["unavailable"] when the leaf's verdict carried none (or the
          emission-time exact self-check rejected it) *)
  | Verdict of { verdict : string; calls : int; seconds : float }
      (** terminal event: [proved], [disproved] or [exhausted] *)

type sink

val null : sink
(** Discards everything (the default; tracing costs nothing). *)

val ring : capacity:int -> sink
(** Keeps the most recent [capacity] events in memory.
    @raise Invalid_argument if [capacity <= 0]. *)

val ring_contents : sink -> event list
(** Buffered events, oldest first; [[]] for non-ring sinks. *)

val channel : out_channel -> sink
(** Writes each event as one JSON line.  The caller owns the channel. *)

val hook : (event -> unit) -> sink

val tee : sink -> sink -> sink
(** Duplicates every event to both sinks. *)

val emit : sink -> event -> unit

val with_jsonl_file : string -> (sink -> 'a) -> 'a
(** [with_jsonl_file path f] opens [path], runs [f] with a JSONL sink
    writing to it, and closes the file (also on exceptions). *)

val event_to_json : event -> string
(** One-line JSON object; floats round-trip exactly (non-finite values
    are encoded as the strings ["nan"], ["inf"], ["-inf"]). *)

val event_of_json : string -> event
(** Inverse of {!event_to_json}.  @raise Failure on malformed input. *)

val read_jsonl : string -> event list
(** Parse a file of {!event_to_json} lines (blank lines are skipped). *)

type aggregate = {
  events : int;
  analyzer_calls : int;  (** [Analyzed] events *)
  analyzer_seconds : float;  (** summed analyzer time *)
  branchings : int;  (** [Split] events *)
  pruned : int;
  stuck : int;
  retries : int;  (** [Retried] events *)
  fallbacks : int;  (** [Fallback] events *)
  absorbed : int;  (** [Absorbed] events *)
  max_frontier : int;  (** largest frontier observed at a dequeue *)
  max_depth : int;  (** deepest node dequeued *)
  lp_warm_hits : int;  (** summed from [Lp_solved] events *)
  lp_warm_misses : int;
  lp_cold_solves : int;
  lp_pivots : int;
  certified : int;  (** [Certified] events with an emitted certificate *)
  certs_unavailable : int;  (** [Certified] events with kind ["unavailable"] *)
  verdict : string option;  (** from the terminal [Verdict] event *)
}

val aggregate : event list -> aggregate
(** Replay an event list into summary statistics.  On a full engine
    trace this reproduces the run's {!Engine.stats} counters
    (analyzer calls, branchings, analyzer seconds, frontier peak,
    max depth) exactly. *)

val pp_aggregate : Format.formatter -> aggregate -> unit
