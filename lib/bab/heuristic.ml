module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Network = Ivan_nn.Network
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Bounds = Ivan_domains.Bounds
module Itv = Ivan_domains.Itv
module Zonotope = Ivan_domains.Zonotope
module Analyzer = Ivan_analyzer.Analyzer
module Decision = Ivan_spectree.Decision

type context = {
  net : Network.t;
  prop : Prop.t;
  box : Box.t;
  splits : Splits.t;
  outcome : Analyzer.outcome;
}

type t = { name : string; scores : context -> (Decision.t * float) list }

let best scored =
  let pick acc (d, s) =
    (* A NaN score compares false against everything, which would make
       the winner depend on list order; treat it as "no score". *)
    if Float.is_nan s then acc
    else
      match acc with
      | None -> Some (d, s)
      | Some (d0, s0) -> if s > s0 || (s = s0 && Decision.compare d d0 < 0) then Some (d, s) else acc
  in
  match List.fold_left pick None scored with None -> None | Some (d, _) -> Some d

let candidates ctx =
  match ctx.outcome.Analyzer.bounds with
  | None -> []
  | Some bounds -> Bounds.ambiguous_relus bounds ctx.net ~splits:ctx.splits

let width_score bounds r =
  let itv = Bounds.pre_itv bounds r in
  Float.min (-.itv.Itv.lo) itv.Itv.hi

let width =
  {
    name = "width";
    scores =
      (fun ctx ->
        match ctx.outcome.Analyzer.bounds with
        | None -> []
        | Some bounds ->
            List.map (fun r -> (Decision.Relu_split r, width_score bounds r)) (candidates ctx));
  }

let zono_coeff =
  {
    name = "zono-coeff";
    scores =
      (fun ctx ->
        match (ctx.outcome.Analyzer.bounds, ctx.outcome.Analyzer.zono) with
        | None, _ -> []
        | Some bounds, None ->
            List.map (fun r -> (Decision.Relu_split r, width_score bounds r)) (candidates ctx)
        | Some _, Some zono ->
            let coeffs = Zonotope.objective_coeffs zono ~c:ctx.prop.Prop.c in
            List.map
              (fun r -> (Decision.Relu_split r, Zonotope.relu_score_from_coeffs zono coeffs r))
              (candidates ctx));
  }

(* Deterministic pseudo-random score from the seed and the ReLU id, so
   the "random" heuristic is still a pure function of (node, relu). *)
let random ~seed =
  {
    name = Printf.sprintf "random-%d" seed;
    scores =
      (fun ctx ->
        List.map
          (fun r ->
            let h = Hashtbl.hash (seed, r.Relu_id.layer, r.Relu_id.index, Splits.cardinal ctx.splits) in
            (Decision.Relu_split r, float_of_int (h land 0xFFFFFF)))
          (candidates ctx));
  }

let input_widest =
  {
    name = "input-widest";
    scores =
      (fun ctx ->
        List.init (Box.dim ctx.box) (fun dim -> (Decision.Input_split dim, Box.width ctx.box dim)));
  }

(* Accumulated absolute influence of each input dimension on the
   objective: |c|^T |W_L| ... |W_1| computed by backward sweeps. *)
let influence net c =
  let count = Network.num_layers net in
  let acc = ref (Vec.map Float.abs c) in
  for li = count - 1 downto 0 do
    let w, _ = Network.layer_dense net li in
    let absw = Mat.map Float.abs w in
    acc := Mat.matvec_t absw !acc
  done;
  !acc

let input_smear =
  {
    name = "input-smear";
    scores =
      (fun ctx ->
        let infl = influence ctx.net ctx.prop.Prop.c in
        List.init (Box.dim ctx.box) (fun dim ->
            (Decision.Input_split dim, Box.width ctx.box dim *. infl.(dim))));
  }
