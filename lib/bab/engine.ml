module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Tree = Ivan_spectree.Tree
module Lp = Ivan_lp.Lp
module Cert = Ivan_cert.Cert
module Clock = Ivan_clock.Clock

type budget = { max_analyzer_calls : int; max_seconds : float }

let default_budget = { max_analyzer_calls = 10_000; max_seconds = infinity }

type stats = {
  analyzer_calls : int;
  branchings : int;
  tree_size : int;
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
  max_frontier : int;
  max_depth : int;
  heuristic_failures : int;
  retries : int;
  fallback_bounds : int;
  faults_absorbed : int;
  lp_warm_hits : int;
  lp_warm_misses : int;
  lp_cold_solves : int;
  lp_pivots : int;
  certs_emitted : int;
  certs_unavailable : int;
}

type verdict = Proved | Disproved of Ivan_tensor.Vec.t | Exhausted

type run = {
  verdict : verdict;
  tree : Tree.t;
  stats : stats;
  artifact : Cert.Artifact.t option;
}

(* The resilience counters are refs rather than mutable fields: the
   fallback [notify] closure is built before the record exists (the
   wrapped analyzer is a [create]-time input of the record). *)
type t = {
  analyzer : Analyzer.t;  (* instrumented: each call records into [last_call] *)
  heuristic : Heuristic.t;
  budget : budget;
  check_time_every : int;
  trace : Trace.sink;
  net : Network.t;
  prop : Prop.t;
  tree : Tree.t;
  frontier : Tree.node Frontier.t;
  started : float;
  last_call : float ref;
  current_node : int ref;  (* node id under analysis, for resilience events *)
  retries : int ref;
  fallback_bounds : int ref;
  faults_absorbed : int ref;
  (* Warm-start plumbing: frontier nodes whose parent solved an LP have
     the parent's optimal basis parked here until they are dequeued.
     The table is engine-local bookkeeping, not verification state — a
     restored checkpoint simply starts its nodes cold. *)
  bases : (int, Lp.Basis.t) Hashtbl.t;
  certify : bool;
  (* Per-leaf certificates keyed by node id, self-checked in exact
     arithmetic before being admitted; assembled into the run's proof
     artifact at [finish].  Like [bases], the table is engine-local:
     checkpoints serialize only the counters, so a restored run cannot
     produce a complete artifact for leaves verified before the
     checkpoint (they count as unavailable in the final artifact check,
     never as silently certified). *)
  certs : (int, Cert.leaf) Hashtbl.t;
  mutable steps : int;
  mutable calls : int;
  mutable branchings : int;
  mutable analyzer_seconds : float;
  mutable max_frontier : int;
  mutable max_depth : int;
  mutable heuristic_failures : int;
  mutable lp_warm_hits : int;
  mutable lp_warm_misses : int;
  mutable lp_cold_solves : int;
  mutable lp_pivots : int;
  mutable certs_emitted : int;
  mutable certs_unavailable : int;
  mutable finished : run option;
}

let verdict_label = function
  | Proved -> "proved"
  | Disproved _ -> "disproved"
  | Exhausted -> "exhausted"

let status_label = function
  | Analyzer.Verified -> "verified"
  | Analyzer.Counterexample _ -> "counterexample"
  | Analyzer.Unknown -> "unknown"

(* Shared constructor behind [create] and [restore]: wires the
   resilience wrapper and instrumentation around the analyzer and seeds
   the counters; the frontier starts empty and is filled by the
   caller. *)
let make ~analyzer ~heuristic ~strategy ~trace ~budget ~check_time_every ~policy ~certify ~tree
    ~net ~prop ~started ~steps ~calls ~branchings ~analyzer_seconds ~max_frontier ~max_depth
    ~heuristic_failures ~retries:retries0 ~fallback_bounds:fallback_bounds0
    ~faults_absorbed:faults_absorbed0 ~lp_warm_hits ~lp_warm_misses ~lp_cold_solves ~lp_pivots
    ~certs_emitted ~certs_unavailable () =
  if Box.dim prop.Prop.input <> Network.input_dim net then
    invalid_arg "Engine.create: property dimension does not match the network";
  if check_time_every <= 0 then invalid_arg "Engine.create: check_time_every must be positive";
  let last_call = ref 0.0 in
  let current_node = ref (-1) in
  let retries = ref retries0 in
  let fallback_bounds = ref fallback_bounds0 in
  let faults_absorbed = ref faults_absorbed0 in
  let analyzer =
    match policy with
    | None -> analyzer
    | Some policy ->
        let notify = function
          | Analyzer.Retried { analyzer; attempt; reason } ->
              incr retries;
              Trace.emit trace (Trace.Retried { node = !current_node; analyzer; attempt; reason })
          | Analyzer.Fell_back { analyzer; reason } ->
              incr fallback_bounds;
              Trace.emit trace (Trace.Fallback { node = !current_node; analyzer; reason })
          | Analyzer.Absorbed { analyzer; reason } ->
              incr faults_absorbed;
              Trace.emit trace (Trace.Absorbed { node = !current_node; analyzer; reason })
        in
        Analyzer.with_fallback ~notify ~policy analyzer
  in
  let analyzer =
    (* Instrument outside the fallback wrapper so [analyzer_seconds]
       includes time burnt in retries and degraded attempts. *)
    Analyzer.instrument ~on_run:(fun ~name:_ ~elapsed ~outcome:_ -> last_call := elapsed) analyzer
  in
  {
    analyzer;
    heuristic;
    budget;
    check_time_every;
    trace;
    net;
    prop;
    tree;
    frontier = Frontier.create strategy;
    started;
    last_call;
    current_node;
    retries;
    fallback_bounds;
    faults_absorbed;
    bases = Hashtbl.create 64;
    certify;
    certs = Hashtbl.create 64;
    steps;
    calls;
    branchings;
    analyzer_seconds;
    max_frontier;
    max_depth;
    heuristic_failures;
    lp_warm_hits;
    lp_warm_misses;
    lp_cold_solves;
    lp_pivots;
    certs_emitted;
    certs_unavailable;
    finished = None;
  }

let create ~analyzer ~heuristic ?(strategy = Frontier.Fifo) ?(trace = Trace.null)
    ?(budget = default_budget) ?(check_time_every = 8) ?policy ?(certify = false) ?initial_tree
    ~net ~prop () =
  let tree = match initial_tree with None -> Tree.create () | Some t -> Tree.copy t in
  let t =
    make ~analyzer ~heuristic ~strategy ~trace ~budget ~check_time_every ~policy ~certify ~tree
      ~net ~prop ~started:(Clock.monotonic ()) ~steps:0 ~calls:0 ~branchings:0
      ~analyzer_seconds:0.0 ~max_frontier:0 ~max_depth:0 ~heuristic_failures:0 ~retries:0
      ~fallback_bounds:0 ~faults_absorbed:0 ~lp_warm_hits:0 ~lp_warm_misses:0 ~lp_cold_solves:0
      ~lp_pivots:0 ~certs_emitted:0 ~certs_unavailable:0 ()
  in
  List.iter (fun n -> Frontier.push t.frontier ~priority:(Tree.lb n) n) (Tree.leaves tree);
  t

let tree t = t.tree

let calls t = t.calls

let frontier_length t = Frontier.length t.frontier

let finished t = t.finished

let stats_of t ~elapsed =
  {
    analyzer_calls = t.calls;
    branchings = t.branchings;
    tree_size = Tree.size t.tree;
    tree_leaves = Tree.num_leaves t.tree;
    elapsed_seconds = elapsed;
    analyzer_seconds = t.analyzer_seconds;
    max_frontier = t.max_frontier;
    max_depth = t.max_depth;
    heuristic_failures = t.heuristic_failures;
    retries = !(t.retries);
    fallback_bounds = !(t.fallback_bounds);
    faults_absorbed = !(t.faults_absorbed);
    lp_warm_hits = t.lp_warm_hits;
    lp_warm_misses = t.lp_warm_misses;
    lp_cold_solves = t.lp_cold_solves;
    lp_pivots = t.lp_pivots;
    certs_emitted = t.certs_emitted;
    certs_unavailable = t.certs_unavailable;
  }

(* The proof artifact of a certified run: the final tree with one
   checked certificate per verified leaf ([Proved]), or the concrete
   counterexample ([Disproved]).  Leaves whose certificate was
   unavailable are simply absent from [leaves] — [Cert.check_artifact]
   reports them as missing rather than this code guessing.  An
   [Exhausted] run proves nothing, so it carries no artifact. *)
let artifact_of t verdict =
  if not t.certify then None
  else
    match verdict with
    | Exhausted -> None
    | Proved ->
        let leaves =
          List.filter_map
            (fun n -> Hashtbl.find_opt t.certs (Tree.node_id n))
            (Tree.leaves t.tree)
        in
        Some
          {
            Cert.Artifact.net = t.net;
            prop = t.prop;
            verdict = Cert.Artifact.Proved;
            tree = t.tree;
            leaves;
          }
    | Disproved x ->
        Some
          {
            Cert.Artifact.net = t.net;
            prop = t.prop;
            verdict = Cert.Artifact.Disproved (Array.copy x);
            tree = t.tree;
            leaves = [];
          }

let finish t verdict =
  let elapsed = Clock.monotonic () -. t.started in
  let run =
    { verdict; tree = t.tree; stats = stats_of t ~elapsed; artifact = artifact_of t verdict }
  in
  Trace.emit t.trace
    (Trace.Verdict { verdict = verdict_label verdict; calls = t.calls; seconds = elapsed });
  t.finished <- Some run;
  run

(* The wall-clock budget is checked centrally, once every
   [check_time_every] steps (including step 0, so a zero budget fires
   before any analyzer call), instead of reading the clock per node.
   [>=] rather than [>]: a 0-second budget must exhaust even when the
   clock has not advanced a full tick since [create]. *)
let out_of_time t =
  t.budget.max_seconds < infinity
  && t.steps mod t.check_time_every = 0
  && Clock.monotonic () -. t.started >= t.budget.max_seconds

type status = Running | Finished of run

let step t =
  match t.finished with
  | Some run -> Finished run
  | None ->
      if Frontier.is_empty t.frontier then Finished (finish t Proved)
      else if t.calls >= t.budget.max_analyzer_calls || out_of_time t then
        Finished (finish t Exhausted)
      else begin
        t.steps <- t.steps + 1;
        let frontier_now = Frontier.length t.frontier in
        t.max_frontier <- max t.max_frontier frontier_now;
        let node = match Frontier.pop t.frontier with Some n -> n | None -> assert false in
        let id = Tree.node_id node in
        let depth = List.length (Tree.path_decisions node) in
        t.max_depth <- max t.max_depth depth;
        Trace.emit t.trace (Trace.Dequeued { node = id; depth; frontier = frontier_now });
        let box, splits = Tree.subproblem ~root_box:t.prop.Prop.input node in
        t.calls <- t.calls + 1;
        t.current_node := id;
        (* Stage the parent's simplex basis (if the parent solved an LP)
           for the analyzer's warm start; otherwise make sure no stale
           hint from an earlier node is lying around. *)
        (match Hashtbl.find_opt t.bases id with
        | Some b ->
            Hashtbl.remove t.bases id;
            Analyzer.Warm.offer b
        | None -> Analyzer.Warm.clear ());
        let outcome =
          (* Last line of defense: even without a resilience policy, a
             non-fatal analyzer exception degrades this node to Unknown
             instead of crashing a run holding a reusable tree. *)
          try t.analyzer.Analyzer.run t.net ~prop:t.prop ~box ~splits
          with e when not (Analyzer.fatal_exn e) ->
            incr t.faults_absorbed;
            Trace.emit t.trace
              (Trace.Absorbed
                 { node = id; analyzer = t.analyzer.Analyzer.name; reason = Printexc.to_string e });
            { Analyzer.status = Analyzer.Unknown; lb = neg_infinity; bounds = None; zono = None; cert = None }
        in
        t.analyzer_seconds <- t.analyzer_seconds +. !(t.last_call);
        (* Collect the LP report, if the analyzer solved any: counters
           for the run's stats, and the node's optimal basis to hand to
           its children (below, if it splits). *)
        let solved_basis =
          match Analyzer.Warm.collect () with
          | None -> None
          | Some info ->
              t.lp_warm_hits <- t.lp_warm_hits + info.Analyzer.Warm.warm_hits;
              t.lp_warm_misses <- t.lp_warm_misses + info.Analyzer.Warm.warm_misses;
              t.lp_cold_solves <- t.lp_cold_solves + info.Analyzer.Warm.cold_solves;
              t.lp_pivots <- t.lp_pivots + info.Analyzer.Warm.pivots;
              Trace.emit t.trace
                (Trace.Lp_solved
                   {
                     node = id;
                     warm_hits = info.Analyzer.Warm.warm_hits;
                     warm_misses = info.Analyzer.Warm.warm_misses;
                     cold_solves = info.Analyzer.Warm.cold_solves;
                     pivots = info.Analyzer.Warm.pivots;
                   });
              info.Analyzer.Warm.basis
        in
        Trace.emit t.trace
          (Trace.Analyzed
             {
               node = id;
               status = status_label outcome.Analyzer.status;
               lb = outcome.Analyzer.lb;
               seconds = !(t.last_call);
             });
        Tree.set_lb node outcome.Analyzer.lb;
        match outcome.Analyzer.status with
        | Analyzer.Verified ->
            (* Certificate collection: re-check the analyzer's evidence
               in exact arithmetic right now, so the table only ever
               holds certificates the independent checker will accept —
               a float-drift cert that fails the exact check is counted
               unavailable, never emitted broken. *)
            if t.certify then begin
              let kind =
                match outcome.Analyzer.cert with
                | None -> "unavailable"
                | Some evidence -> (
                    let leaf =
                      {
                        Cert.node = id;
                        splits = Cert.splits_fingerprint (Tree.path_decisions node);
                        evidence;
                      }
                    in
                    match Cert.check_leaf ~box:t.prop.Prop.input leaf with
                    | Ok () ->
                        Hashtbl.replace t.certs id leaf;
                        (match evidence.Cert.witness with
                        | Lp.Certificate.Dual _ -> "dual"
                        | Lp.Certificate.Farkas _ -> "farkas")
                    | Error _ -> "unavailable")
              in
              if kind = "unavailable" then t.certs_unavailable <- t.certs_unavailable + 1
              else t.certs_emitted <- t.certs_emitted + 1;
              Trace.emit t.trace (Trace.Certified { node = id; kind })
            end;
            Running
        | Analyzer.Counterexample x -> Finished (finish t (Disproved x))
        | Analyzer.Unknown -> (
            let ctx = { Heuristic.net = t.net; prop = t.prop; box; splits; outcome } in
            match Heuristic.best (t.heuristic.Heuristic.scores ctx) with
            | None ->
                (* No decision can refine this node further; the
                   analyzer is exact here, so this only happens on
                   numerical failure.  Count and trace it distinctly,
                   then stop — the budget was not the problem. *)
                t.heuristic_failures <- t.heuristic_failures + 1;
                Trace.emit t.trace (Trace.Stuck { node = id });
                Finished (finish t Exhausted)
            | Some d ->
                let left, right = Tree.split t.tree node d in
                t.branchings <- t.branchings + 1;
                Trace.emit t.trace
                  (Trace.Split
                     {
                       node = id;
                       decision = d;
                       left = Tree.node_id left;
                       right = Tree.node_id right;
                     });
                (* Children inherit the parent's freshly computed bound
                   as their best-first priority until analyzed, and the
                   parent's simplex basis as their warm start. *)
                (match solved_basis with
                | None -> ()
                | Some b ->
                    Hashtbl.replace t.bases (Tree.node_id left) b;
                    Hashtbl.replace t.bases (Tree.node_id right) b);
                Frontier.push t.frontier ~priority:outcome.Analyzer.lb left;
                Frontier.push t.frontier ~priority:outcome.Analyzer.lb right;
                Running)
      end

let run t =
  let rec go () = match step t with Finished r -> r | Running -> go () in
  go ()

let cancel t = match t.finished with Some r -> r | None -> finish t Exhausted

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore.

   A checkpoint is a self-delimiting text document: a fixed-order header
   of counters, the terminal state, the frontier as (node id, priority)
   pairs in re-push order, and the specification tree in its
   {!Tree.to_string} format (which preserves node ids, so the frontier
   references survive the round trip).  The analyzer, heuristic and
   network are code, not state — [restore] takes them as arguments. *)

let float_token v = Printf.sprintf "%.17g" v

(* [float_of_string] accepts the "inf"/"-inf"/"nan" spellings %.17g
   produces for non-finite values, so no special casing is needed. *)
let float_of_token = float_of_string

let verdict_to_tokens = function
  | Proved -> "proved"
  | Exhausted -> "exhausted"
  | Disproved x ->
      "disproved"
      ^ String.concat "" (List.map (fun v -> " " ^ float_token v) (Array.to_list x))

let checkpoint t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let elapsed =
    match t.finished with
    | Some r -> r.stats.elapsed_seconds
    | None -> Clock.monotonic () -. t.started
  in
  add "ivan-checkpoint 3";
  add "strategy: %s" (Frontier.strategy_name (Frontier.strategy t.frontier));
  add "max_calls: %d" t.budget.max_analyzer_calls;
  add "max_seconds: %s" (float_token t.budget.max_seconds);
  add "check_time_every: %d" t.check_time_every;
  add "steps: %d" t.steps;
  add "calls: %d" t.calls;
  add "branchings: %d" t.branchings;
  add "analyzer_seconds: %s" (float_token t.analyzer_seconds);
  add "max_frontier: %d" t.max_frontier;
  add "max_depth: %d" t.max_depth;
  add "heuristic_failures: %d" t.heuristic_failures;
  add "retries: %d" !(t.retries);
  add "fallback_bounds: %d" !(t.fallback_bounds);
  add "faults_absorbed: %d" !(t.faults_absorbed);
  add "lp_warm_hits: %d" t.lp_warm_hits;
  add "lp_warm_misses: %d" t.lp_warm_misses;
  add "lp_cold_solves: %d" t.lp_cold_solves;
  add "lp_pivots: %d" t.lp_pivots;
  add "certs_emitted: %d" t.certs_emitted;
  add "certs_unavailable: %d" t.certs_unavailable;
  add "elapsed: %s" (float_token elapsed);
  add "finished: %s"
    (match t.finished with None -> "running" | Some r -> verdict_to_tokens r.verdict);
  add "frontier:%s"
    (String.concat ""
       (List.map
          (fun (p, n) -> Printf.sprintf " %d %s" (Tree.node_id n) (float_token p))
          (Frontier.elements t.frontier)));
  add "tree:";
  Buffer.add_string buf (Tree.to_string t.tree);
  Buffer.contents buf

let checkpoint_to_file t path =
  (* Write-then-rename so a crash mid-write never leaves a truncated
     checkpoint at the target path. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (checkpoint t));
  Sys.rename tmp path

let restore ~analyzer ~heuristic ?(trace = Trace.null) ?policy ?(certify = false) ?budget ~net
    ~prop data =
  let fail fmt = Printf.ksprintf (fun s -> failwith ("Engine.restore: " ^ s)) fmt in
  let marker = "\ntree:\n" in
  let mpos =
    let n = String.length data and m = String.length marker in
    let rec go i =
      if i + m > n then fail "missing tree section"
      else if String.sub data i m = marker then i
      else go (i + 1)
    in
    go 0
  in
  let header = String.sub data 0 mpos in
  let tree_text =
    let start = mpos + String.length marker in
    String.sub data start (String.length data - start)
  in
  let field prefix line =
    let pl = String.length prefix in
    if String.length line >= pl && String.sub line 0 pl = prefix then
      String.trim (String.sub line pl (String.length line - pl))
    else fail "expected %S, got %S" prefix line
  in
  let lines = String.split_on_char '\n' header in
  (* Version 1 checkpoints predate the warm-start counters; splice in
     zero-valued lines so both versions parse through one path. *)
  let lines =
    match lines with
    | "ivan-checkpoint 1" :: rest ->
        let rec widen = function
          | [] -> fail "truncated version-1 header"
          | l :: rest when String.length l >= 8 && String.sub l 0 8 = "elapsed:" ->
              "lp_warm_hits: 0" :: "lp_warm_misses: 0" :: "lp_cold_solves: 0" :: "lp_pivots: 0"
              :: l :: rest
          | l :: rest -> l :: widen rest
        in
        "ivan-checkpoint 2" :: widen rest
    | _ -> lines
  in
  (* Likewise version 2 predates the certificate counters. *)
  let lines =
    match lines with
    | "ivan-checkpoint 2" :: rest ->
        let rec widen = function
          | [] -> fail "truncated version-2 header"
          | l :: rest when String.length l >= 8 && String.sub l 0 8 = "elapsed:" ->
              "certs_emitted: 0" :: "certs_unavailable: 0" :: l :: rest
          | l :: rest -> l :: widen rest
        in
        "ivan-checkpoint 3" :: widen rest
    | _ -> lines
  in
  match lines with
  | [
   version;
   strategy_l;
   max_calls_l;
   max_seconds_l;
   check_every_l;
   steps_l;
   calls_l;
   branchings_l;
   analyzer_seconds_l;
   max_frontier_l;
   max_depth_l;
   heuristic_failures_l;
   retries_l;
   fallback_bounds_l;
   faults_absorbed_l;
   lp_warm_hits_l;
   lp_warm_misses_l;
   lp_cold_solves_l;
   lp_pivots_l;
   certs_emitted_l;
   certs_unavailable_l;
   elapsed_l;
   finished_l;
   frontier_l;
  ] ->
      if version <> "ivan-checkpoint 3" then fail "unsupported header %S" version;
      let strategy =
        let s = field "strategy:" strategy_l in
        match Frontier.strategy_of_string s with
        | Some st -> st
        | None -> fail "unknown strategy %S" s
      in
      let budget_overridden = budget <> None in
      let budget =
        match budget with
        | Some b -> b
        | None ->
            {
              max_analyzer_calls = int_of_string (field "max_calls:" max_calls_l);
              max_seconds = float_of_token (field "max_seconds:" max_seconds_l);
            }
      in
      let elapsed = float_of_token (field "elapsed:" elapsed_l) in
      let tree = Tree.of_string tree_text in
      let t =
        make ~analyzer ~heuristic ~strategy ~trace ~budget
          ~check_time_every:(int_of_string (field "check_time_every:" check_every_l))
          ~policy ~certify ~tree ~net ~prop
          ~started:(Clock.monotonic () -. elapsed)
          ~steps:(int_of_string (field "steps:" steps_l))
          ~calls:(int_of_string (field "calls:" calls_l))
          ~branchings:(int_of_string (field "branchings:" branchings_l))
          ~analyzer_seconds:(float_of_token (field "analyzer_seconds:" analyzer_seconds_l))
          ~max_frontier:(int_of_string (field "max_frontier:" max_frontier_l))
          ~max_depth:(int_of_string (field "max_depth:" max_depth_l))
          ~heuristic_failures:(int_of_string (field "heuristic_failures:" heuristic_failures_l))
          ~retries:(int_of_string (field "retries:" retries_l))
          ~fallback_bounds:(int_of_string (field "fallback_bounds:" fallback_bounds_l))
          ~faults_absorbed:(int_of_string (field "faults_absorbed:" faults_absorbed_l))
          ~lp_warm_hits:(int_of_string (field "lp_warm_hits:" lp_warm_hits_l))
          ~lp_warm_misses:(int_of_string (field "lp_warm_misses:" lp_warm_misses_l))
          ~lp_cold_solves:(int_of_string (field "lp_cold_solves:" lp_cold_solves_l))
          ~lp_pivots:(int_of_string (field "lp_pivots:" lp_pivots_l))
          ~certs_emitted:(int_of_string (field "certs_emitted:" certs_emitted_l))
          ~certs_unavailable:(int_of_string (field "certs_unavailable:" certs_unavailable_l))
          ()
      in
      let nodes = Hashtbl.create 64 in
      Tree.iter_nodes tree (fun n -> Hashtbl.replace nodes (Tree.node_id n) n);
      let rec push_frontier = function
        | [] -> ()
        | [ tok ] -> fail "dangling frontier token %S" tok
        | id :: prio :: rest ->
            let id = int_of_string id in
            (match Hashtbl.find_opt nodes id with
            | Some n -> Frontier.push t.frontier ~priority:(float_of_token prio) n
            | None -> fail "frontier references unknown node %d" id);
            push_frontier rest
      in
      push_frontier
        (List.filter
           (fun s -> s <> "")
           (String.split_on_char ' ' (field "frontier:" frontier_l)));
      (* Terminal runs rebuilt from a checkpoint re-derive their
         artifact through [artifact_of]: a [Disproved] artifact needs
         only the recorded counterexample, while a restored [Proved] one
         has an empty certificate table (leaf certificates are not
         checkpointed) and [Cert.check_artifact] will truthfully report
         every leaf as missing its certificate. *)
      let finish_restored verdict =
        t.finished <-
          Some { verdict; tree; stats = stats_of t ~elapsed; artifact = artifact_of t verdict }
      in
      (match String.split_on_char ' ' (field "finished:" finished_l) with
      | [ "running" ] -> ()
      | [ "proved" ] -> finish_restored Proved
      | [ "exhausted" ] ->
          (* A budget-exhausted run is the one terminal state worth
             continuing: with a fresh budget and live frontier nodes the
             engine picks the search back up instead of replaying the
             recorded Exhausted verdict. *)
          if not (budget_overridden && Frontier.length t.frontier > 0) then
            finish_restored Exhausted
      | "disproved" :: toks when toks <> [] ->
          let x = Array.of_list (List.map float_of_token toks) in
          finish_restored (Disproved x)
      | _ -> fail "malformed finished line %S" finished_l);
      t
  | _ -> fail "malformed header"

let restore_from_file ~analyzer ~heuristic ?trace ?policy ?certify ?budget ~net ~prop path =
  let ic = open_in path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  restore ~analyzer ~heuristic ?trace ?policy ?certify ?budget ~net ~prop data
