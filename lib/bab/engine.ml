module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Tree = Ivan_spectree.Tree
module Lp = Ivan_lp.Lp
module Cert = Ivan_cert.Cert
module Clock = Ivan_clock.Clock
module Journal = Ivan_resilience.Journal

type budget = { max_analyzer_calls : int; max_seconds : float }

let default_budget = { max_analyzer_calls = 10_000; max_seconds = infinity }

let default_journal_every = 32

type stats = {
  analyzer_calls : int;
  branchings : int;
  tree_size : int;
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
  max_frontier : int;
  max_depth : int;
  heuristic_failures : int;
  retries : int;
  fallback_bounds : int;
  faults_absorbed : int;
  lp_warm_hits : int;
  lp_warm_misses : int;
  lp_cold_solves : int;
  lp_pivots : int;
  certs_emitted : int;
  certs_unavailable : int;
}

type verdict = Proved | Disproved of Ivan_tensor.Vec.t | Exhausted

type run = {
  verdict : verdict;
  tree : Tree.t;
  stats : stats;
  artifact : Cert.Artifact.t option;
}

(* The resilience counters are refs rather than mutable fields: the
   fallback [notify] closure is built before the record exists (the
   wrapped analyzer is a [create]-time input of the record).  The same
   holds for the journal event buffer [jbuf] and the [journaling] flag —
   resilience events raised inside an analyzer call must land in the
   step's journal frame too. *)
type t = {
  analyzer : Analyzer.t;  (* instrumented: each call records into [last_call] *)
  heuristic : Heuristic.t;
  budget : budget;
  check_time_every : int;
  trace : Trace.sink;
  net : Network.t;
  prop : Prop.t;
  tree : Tree.t;
  frontier : Tree.node Frontier.t;
  started : float;
  last_call : float ref;
  current_node : int ref;  (* node id under analysis, for resilience events *)
  retries : int ref;
  fallback_bounds : int ref;
  faults_absorbed : int ref;
  (* Warm-start plumbing: frontier nodes whose parent solved an LP have
     the parent's optimal basis parked here until they are dequeued.
     The table is engine-local bookkeeping, not verification state — a
     restored checkpoint simply starts its nodes cold. *)
  bases : (int, Lp.Basis.t) Hashtbl.t;
  certify : bool;
  (* Per-leaf certificates keyed by node id, self-checked in exact
     arithmetic before being admitted; assembled into the run's proof
     artifact at [finish].  Like [bases], the table is engine-local:
     checkpoints serialize only the counters, so a restored run cannot
     produce a complete artifact for leaves verified before the
     checkpoint (they count as unavailable in the final artifact check,
     never as silently certified). *)
  certs : (int, Cert.leaf) Hashtbl.t;
  (* Write-ahead journal: events of the step in flight accumulate in
     [jbuf] (newest first) and are flushed as one atomic Step frame when
     the step completes; every [journal_every] Step frames (and at the
     terminal step) a Checkpoint frame folds the whole prefix. *)
  mutable journal : Journal.writer option;
  mutable journal_every : int;
  journaling : bool ref;
  jbuf : Trace.event list ref;
  mutable jsteps : int;  (* Step frames since the last Checkpoint frame *)
  mutable steps : int;
  mutable calls : int;
  mutable branchings : int;
  mutable analyzer_seconds : float;
  mutable max_frontier : int;
  mutable max_depth : int;
  mutable heuristic_failures : int;
  mutable lp_warm_hits : int;
  mutable lp_warm_misses : int;
  mutable lp_cold_solves : int;
  mutable lp_pivots : int;
  mutable certs_emitted : int;
  mutable certs_unavailable : int;
  mutable finished : run option;
}

let verdict_label = function
  | Proved -> "proved"
  | Disproved _ -> "disproved"
  | Exhausted -> "exhausted"

let status_label = function
  | Analyzer.Verified -> "verified"
  | Analyzer.Counterexample _ -> "counterexample"
  | Analyzer.Unknown -> "unknown"

(* Shared constructor behind [create] and [restore]: wires the
   resilience wrapper and instrumentation around the analyzer and seeds
   the counters; the frontier starts empty and is filled by the
   caller. *)
let make ~analyzer ~heuristic ~strategy ~trace ~budget ~check_time_every ~policy ~certify
    ~journal ~journal_every ~tree ~net ~prop ~started ~steps ~calls ~branchings
    ~analyzer_seconds ~max_frontier ~max_depth ~heuristic_failures ~retries:retries0
    ~fallback_bounds:fallback_bounds0 ~faults_absorbed:faults_absorbed0 ~lp_warm_hits
    ~lp_warm_misses ~lp_cold_solves ~lp_pivots ~certs_emitted ~certs_unavailable () =
  if Box.dim prop.Prop.input <> Network.input_dim net then
    invalid_arg "Engine.create: property dimension does not match the network";
  if check_time_every <= 0 then invalid_arg "Engine.create: check_time_every must be positive";
  if journal_every <= 0 then invalid_arg "Engine.create: journal_every must be positive";
  let last_call = ref 0.0 in
  let current_node = ref (-1) in
  let retries = ref retries0 in
  let fallback_bounds = ref fallback_bounds0 in
  let faults_absorbed = ref faults_absorbed0 in
  let journaling = ref (journal <> None) in
  let jbuf = ref [] in
  let analyzer =
    match policy with
    | None -> analyzer
    | Some policy ->
        let notify reason =
          let ev =
            match reason with
            | Analyzer.Retried { analyzer; attempt; reason } ->
                incr retries;
                Trace.Retried { node = !current_node; analyzer; attempt; reason }
            | Analyzer.Fell_back { analyzer; reason } ->
                incr fallback_bounds;
                Trace.Fallback { node = !current_node; analyzer; reason }
            | Analyzer.Absorbed { analyzer; reason } ->
                incr faults_absorbed;
                Trace.Absorbed { node = !current_node; analyzer; reason }
          in
          Trace.emit trace ev;
          if !journaling then jbuf := ev :: !jbuf
        in
        Analyzer.with_fallback ~notify ~policy analyzer
  in
  let analyzer =
    (* Instrument outside the fallback wrapper so [analyzer_seconds]
       includes time burnt in retries and degraded attempts. *)
    Analyzer.instrument ~on_run:(fun ~name:_ ~elapsed ~outcome:_ -> last_call := elapsed) analyzer
  in
  {
    analyzer;
    heuristic;
    budget;
    check_time_every;
    trace;
    net;
    prop;
    tree;
    frontier = Frontier.create strategy;
    started;
    last_call;
    current_node;
    retries;
    fallback_bounds;
    faults_absorbed;
    bases = Hashtbl.create 64;
    certify;
    certs = Hashtbl.create 64;
    journal;
    journal_every;
    journaling;
    jbuf;
    jsteps = 0;
    steps;
    calls;
    branchings;
    analyzer_seconds;
    max_frontier;
    max_depth;
    heuristic_failures;
    lp_warm_hits;
    lp_warm_misses;
    lp_cold_solves;
    lp_pivots;
    certs_emitted;
    certs_unavailable;
    finished = None;
  }

(* Emit to the trace sink and, when a journal is attached, buffer the
   event for the step's journal frame. *)
let emit t ev =
  Trace.emit t.trace ev;
  if !(t.journaling) then t.jbuf := ev :: !(t.jbuf)

let tree t = t.tree

let calls t = t.calls

let frontier_length t = Frontier.length t.frontier

let finished t = t.finished

let stats_of t ~elapsed =
  {
    analyzer_calls = t.calls;
    branchings = t.branchings;
    tree_size = Tree.size t.tree;
    tree_leaves = Tree.num_leaves t.tree;
    elapsed_seconds = elapsed;
    analyzer_seconds = t.analyzer_seconds;
    max_frontier = t.max_frontier;
    max_depth = t.max_depth;
    heuristic_failures = t.heuristic_failures;
    retries = !(t.retries);
    fallback_bounds = !(t.fallback_bounds);
    faults_absorbed = !(t.faults_absorbed);
    lp_warm_hits = t.lp_warm_hits;
    lp_warm_misses = t.lp_warm_misses;
    lp_cold_solves = t.lp_cold_solves;
    lp_pivots = t.lp_pivots;
    certs_emitted = t.certs_emitted;
    certs_unavailable = t.certs_unavailable;
  }

(* The proof artifact of a certified run: the final tree with one
   checked certificate per verified leaf ([Proved]), or the concrete
   counterexample ([Disproved]).  Leaves whose certificate was
   unavailable are simply absent from [leaves] — [Cert.check_artifact]
   reports them as missing rather than this code guessing.  An
   [Exhausted] run proves nothing, so it carries no artifact. *)
let artifact_of t verdict =
  if not t.certify then None
  else
    match verdict with
    | Exhausted -> None
    | Proved ->
        let leaves =
          List.filter_map
            (fun n -> Hashtbl.find_opt t.certs (Tree.node_id n))
            (Tree.leaves t.tree)
        in
        Some
          {
            Cert.Artifact.net = t.net;
            prop = t.prop;
            verdict = Cert.Artifact.Proved;
            tree = t.tree;
            leaves;
          }
    | Disproved x ->
        Some
          {
            Cert.Artifact.net = t.net;
            prop = t.prop;
            verdict = Cert.Artifact.Disproved (Array.copy x);
            tree = t.tree;
            leaves = [];
          }

let finish t verdict =
  let elapsed = Clock.monotonic () -. t.started in
  let run =
    { verdict; tree = t.tree; stats = stats_of t ~elapsed; artifact = artifact_of t verdict }
  in
  emit t (Trace.Verdict { verdict = verdict_label verdict; calls = t.calls; seconds = elapsed });
  t.finished <- Some run;
  run

(* The wall-clock budget is checked centrally, once every
   [check_time_every] steps (including step 0, so a zero budget fires
   before any analyzer call), instead of reading the clock per node.
   [>=] rather than [>]: a 0-second budget must exhaust even when the
   clock has not advanced a full tick since [create]. *)
let out_of_time t =
  t.budget.max_seconds < infinity
  && t.steps mod t.check_time_every = 0
  && Clock.monotonic () -. t.started >= t.budget.max_seconds

type status = Running | Finished of run

let step_once t =
  match t.finished with
  | Some run -> Finished run
  | None ->
      if Frontier.is_empty t.frontier then Finished (finish t Proved)
      else if t.calls >= t.budget.max_analyzer_calls || out_of_time t then
        Finished (finish t Exhausted)
      else begin
        t.steps <- t.steps + 1;
        let frontier_now = Frontier.length t.frontier in
        t.max_frontier <- max t.max_frontier frontier_now;
        let node = match Frontier.pop t.frontier with Some n -> n | None -> assert false in
        let id = Tree.node_id node in
        let depth = List.length (Tree.path_decisions node) in
        t.max_depth <- max t.max_depth depth;
        emit t (Trace.Dequeued { node = id; depth; frontier = frontier_now });
        let box, splits = Tree.subproblem ~root_box:t.prop.Prop.input node in
        t.calls <- t.calls + 1;
        t.current_node := id;
        (* Stage the parent's simplex basis (if the parent solved an LP)
           for the analyzer's warm start; otherwise make sure no stale
           hint from an earlier node is lying around. *)
        (match Hashtbl.find_opt t.bases id with
        | Some b ->
            Hashtbl.remove t.bases id;
            Analyzer.Warm.offer b
        | None -> Analyzer.Warm.clear ());
        let outcome =
          (* Last line of defense: even without a resilience policy, a
             non-fatal analyzer exception degrades this node to Unknown
             instead of crashing a run holding a reusable tree. *)
          try t.analyzer.Analyzer.run t.net ~prop:t.prop ~box ~splits
          with e when not (Analyzer.fatal_exn e) ->
            incr t.faults_absorbed;
            emit t
              (Trace.Absorbed
                 { node = id; analyzer = t.analyzer.Analyzer.name; reason = Printexc.to_string e });
            { Analyzer.status = Analyzer.Unknown; lb = neg_infinity; bounds = None; zono = None; cert = None }
        in
        t.analyzer_seconds <- t.analyzer_seconds +. !(t.last_call);
        (* Collect the LP report, if the analyzer solved any: counters
           for the run's stats, and the node's optimal basis to hand to
           its children (below, if it splits). *)
        let solved_basis =
          match Analyzer.Warm.collect () with
          | None -> None
          | Some info ->
              t.lp_warm_hits <- t.lp_warm_hits + info.Analyzer.Warm.warm_hits;
              t.lp_warm_misses <- t.lp_warm_misses + info.Analyzer.Warm.warm_misses;
              t.lp_cold_solves <- t.lp_cold_solves + info.Analyzer.Warm.cold_solves;
              t.lp_pivots <- t.lp_pivots + info.Analyzer.Warm.pivots;
              emit t
                (Trace.Lp_solved
                   {
                     node = id;
                     warm_hits = info.Analyzer.Warm.warm_hits;
                     warm_misses = info.Analyzer.Warm.warm_misses;
                     cold_solves = info.Analyzer.Warm.cold_solves;
                     pivots = info.Analyzer.Warm.pivots;
                   });
              info.Analyzer.Warm.basis
        in
        emit t
          (Trace.Analyzed
             {
               node = id;
               status = status_label outcome.Analyzer.status;
               lb = outcome.Analyzer.lb;
               seconds = !(t.last_call);
             });
        Tree.set_lb node outcome.Analyzer.lb;
        match outcome.Analyzer.status with
        | Analyzer.Verified ->
            (* Certificate collection: re-check the analyzer's evidence
               in exact arithmetic right now, so the table only ever
               holds certificates the independent checker will accept —
               a float-drift cert that fails the exact check is counted
               unavailable, never emitted broken. *)
            if t.certify then begin
              let kind =
                match outcome.Analyzer.cert with
                | None -> "unavailable"
                | Some evidence -> (
                    let leaf =
                      {
                        Cert.node = id;
                        splits = Cert.splits_fingerprint (Tree.path_decisions node);
                        evidence;
                      }
                    in
                    match Cert.check_leaf ~box:t.prop.Prop.input leaf with
                    | Ok () ->
                        Hashtbl.replace t.certs id leaf;
                        (match evidence.Cert.witness with
                        | Lp.Certificate.Dual _ -> "dual"
                        | Lp.Certificate.Farkas _ -> "farkas")
                    | Error _ -> "unavailable")
              in
              if kind = "unavailable" then t.certs_unavailable <- t.certs_unavailable + 1
              else t.certs_emitted <- t.certs_emitted + 1;
              emit t (Trace.Certified { node = id; kind })
            end;
            Running
        | Analyzer.Counterexample x -> Finished (finish t (Disproved x))
        | Analyzer.Unknown -> (
            let ctx = { Heuristic.net = t.net; prop = t.prop; box; splits; outcome } in
            match Heuristic.best (t.heuristic.Heuristic.scores ctx) with
            | None ->
                (* No decision can refine this node further; the
                   analyzer is exact here, so this only happens on
                   numerical failure.  Count and trace it distinctly,
                   then stop — the budget was not the problem. *)
                t.heuristic_failures <- t.heuristic_failures + 1;
                emit t (Trace.Stuck { node = id });
                Finished (finish t Exhausted)
            | Some d ->
                let left, right = Tree.split t.tree node d in
                t.branchings <- t.branchings + 1;
                emit t
                  (Trace.Split
                     {
                       node = id;
                       decision = d;
                       left = Tree.node_id left;
                       right = Tree.node_id right;
                     });
                (* Children inherit the parent's freshly computed bound
                   as their best-first priority until analyzed, and the
                   parent's simplex basis as their warm start. *)
                (match solved_basis with
                | None -> ()
                | Some b ->
                    Hashtbl.replace t.bases (Tree.node_id left) b;
                    Hashtbl.replace t.bases (Tree.node_id right) b);
                Frontier.push t.frontier ~priority:outcome.Analyzer.lb left;
                Frontier.push t.frontier ~priority:outcome.Analyzer.lb right;
                Running)
      end

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore.

   A checkpoint is a self-delimiting text document: a fixed-order header
   of counters, the terminal state, the frontier as (node id, priority)
   pairs in re-push order, and the specification tree in its
   {!Tree.to_string} format (which preserves node ids, so the frontier
   references survive the round trip).  The analyzer, heuristic and
   network are code, not state — [restore] takes them as arguments. *)

(* [float_of_string_opt] accepts the "inf"/"-inf"/"nan" spellings %.17g
   produces for non-finite values, so no special casing is needed when
   reading tokens back. *)
let float_token v = Printf.sprintf "%.17g" v

let verdict_to_tokens = function
  | Proved -> "proved"
  | Exhausted -> "exhausted"
  | Disproved x ->
      "disproved"
      ^ String.concat "" (List.map (fun v -> " " ^ float_token v) (Array.to_list x))

let checkpoint t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let elapsed =
    match t.finished with
    | Some r -> r.stats.elapsed_seconds
    | None -> Clock.monotonic () -. t.started
  in
  add "ivan-checkpoint 3";
  add "strategy: %s" (Frontier.strategy_name (Frontier.strategy t.frontier));
  add "max_calls: %d" t.budget.max_analyzer_calls;
  add "max_seconds: %s" (float_token t.budget.max_seconds);
  add "check_time_every: %d" t.check_time_every;
  add "steps: %d" t.steps;
  add "calls: %d" t.calls;
  add "branchings: %d" t.branchings;
  add "analyzer_seconds: %s" (float_token t.analyzer_seconds);
  add "max_frontier: %d" t.max_frontier;
  add "max_depth: %d" t.max_depth;
  add "heuristic_failures: %d" t.heuristic_failures;
  add "retries: %d" !(t.retries);
  add "fallback_bounds: %d" !(t.fallback_bounds);
  add "faults_absorbed: %d" !(t.faults_absorbed);
  add "lp_warm_hits: %d" t.lp_warm_hits;
  add "lp_warm_misses: %d" t.lp_warm_misses;
  add "lp_cold_solves: %d" t.lp_cold_solves;
  add "lp_pivots: %d" t.lp_pivots;
  add "certs_emitted: %d" t.certs_emitted;
  add "certs_unavailable: %d" t.certs_unavailable;
  add "elapsed: %s" (float_token elapsed);
  add "finished: %s"
    (match t.finished with None -> "running" | Some r -> verdict_to_tokens r.verdict);
  add "frontier:%s"
    (String.concat ""
       (List.map
          (fun (p, n) -> Printf.sprintf " %d %s" (Tree.node_id n) (float_token p))
          (Frontier.elements t.frontier)));
  add "tree:";
  Buffer.add_string buf (Tree.to_string t.tree);
  Buffer.contents buf

let checkpoint_to_file t path =
  (* Write-then-rename so a crash mid-write never leaves a truncated
     checkpoint at the target path. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (checkpoint t));
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Write-ahead journal.

   Frame protocol (see {!Ivan_resilience.Journal} for the byte layout):
   a Header frame carrying the config fingerprint opens every run; each
   completed engine step appends exactly one Step frame holding the
   step's trace events as JSONL (atomic: a step is journaled whole or
   not at all); every [journal_every] steps — and always at the terminal
   step — a Checkpoint frame folds the entire prefix, bounding recovery
   replay.  Frames are flushed as they are appended, so after a kill the
   journal is a valid prefix plus at most one torn frame, which
   {!Journal.scan} drops. *)

let fingerprint ~net ~prop =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Ivan_nn.Serialize.to_string net);
  Buffer.add_char buf '\000';
  let box = prop.Prop.input in
  for i = 0 to Box.dim box - 1 do
    Buffer.add_string buf (float_token (Box.lo_at box i));
    Buffer.add_char buf ' ';
    Buffer.add_string buf (float_token (Box.hi_at box i));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_char buf '\000';
  Array.iter
    (fun c ->
      Buffer.add_string buf (float_token c);
      Buffer.add_char buf ' ')
    prop.Prop.c;
  Buffer.add_string buf (float_token prop.Prop.offset);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let journal_checkpoint t w =
  Journal.append w Journal.Checkpoint (checkpoint t);
  t.jsteps <- 0

(* Attach a journal sink to an engine.  [fresh_run] appends a Header
   frame unconditionally (a new run in a possibly shared journal);
   otherwise the Header is only written when the sink is empty, so
   restoring into an existing journal continues its current run. *)
let attach_journal t ~fresh_run journal journal_every =
  match journal with
  | None -> ()
  | Some w ->
      t.journal <- Some w;
      t.journal_every <- journal_every;
      t.journaling := true;
      if fresh_run || Journal.appends w = 0 then
        Journal.append w Journal.Header (fingerprint ~net:t.net ~prop:t.prop);
      journal_checkpoint t w

let flush_step t =
  match t.journal with
  | None -> t.jbuf := []
  | Some w -> (
      match List.rev !(t.jbuf) with
      | [] -> ()
      | events ->
          t.jbuf := [];
          let payload = String.concat "\n" (List.map Trace.event_to_json events) in
          Journal.append w Journal.Step payload;
          t.jsteps <- t.jsteps + 1;
          if t.finished <> None || t.jsteps >= t.journal_every then journal_checkpoint t w)

let step t =
  let r = step_once t in
  flush_step t;
  r

let run t =
  let rec go () = match step t with Finished r -> r | Running -> go () in
  go ()

let cancel t =
  match t.finished with
  | Some r -> r
  | None ->
      let r = finish t Exhausted in
      flush_step t;
      r

let create ~analyzer ~heuristic ?(strategy = Frontier.Fifo) ?(trace = Trace.null)
    ?(budget = default_budget) ?(check_time_every = 8) ?policy ?(certify = false) ?journal
    ?(journal_every = default_journal_every) ?initial_tree ~net ~prop () =
  let tree = match initial_tree with None -> Tree.create () | Some t -> Tree.copy t in
  let t =
    make ~analyzer ~heuristic ~strategy ~trace ~budget ~check_time_every ~policy ~certify
      ~journal:None ~journal_every ~tree ~net ~prop ~started:(Clock.monotonic ()) ~steps:0
      ~calls:0 ~branchings:0 ~analyzer_seconds:0.0 ~max_frontier:0 ~max_depth:0
      ~heuristic_failures:0 ~retries:0 ~fallback_bounds:0 ~faults_absorbed:0 ~lp_warm_hits:0
      ~lp_warm_misses:0 ~lp_cold_solves:0 ~lp_pivots:0 ~certs_emitted:0 ~certs_unavailable:0 ()
  in
  List.iter (fun n -> Frontier.push t.frontier ~priority:(Tree.lb n) n) (Tree.leaves tree);
  attach_journal t ~fresh_run:true journal journal_every;
  t

(* ------------------------------------------------------------------ *)
(* Restore *)

let restore_exn ~analyzer ~heuristic ?(trace = Trace.null) ?policy ?(certify = false) ?budget
    ~net ~prop data =
  let fail fmt = Printf.ksprintf (fun s -> failwith ("Engine.restore: " ^ s)) fmt in
  let marker = "\ntree:\n" in
  let mpos =
    let n = String.length data and m = String.length marker in
    let rec go i =
      if i + m > n then fail "missing tree section"
      else if String.sub data i m = marker then i
      else go (i + 1)
    in
    go 0
  in
  let header = String.sub data 0 mpos in
  let tree_text =
    let start = mpos + String.length marker in
    String.sub data start (String.length data - start)
  in
  let field prefix line =
    let pl = String.length prefix in
    if String.length line >= pl && String.sub line 0 pl = prefix then
      String.trim (String.sub line pl (String.length line - pl))
    else fail "expected %S, got %S" prefix line
  in
  let int_field prefix line =
    let v = field prefix line in
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail "field %S is not an integer: %S" prefix v
  in
  let float_field prefix line =
    let v = field prefix line in
    match float_of_string_opt v with
    | Some x -> x
    | None -> fail "field %S is not a number: %S" prefix v
  in
  let lines = String.split_on_char '\n' header in
  (* Version 1 checkpoints predate the warm-start counters; splice in
     zero-valued lines so both versions parse through one path. *)
  let lines =
    match lines with
    | "ivan-checkpoint 1" :: rest ->
        let rec widen = function
          | [] -> fail "truncated version-1 header"
          | l :: rest when String.length l >= 8 && String.sub l 0 8 = "elapsed:" ->
              "lp_warm_hits: 0" :: "lp_warm_misses: 0" :: "lp_cold_solves: 0" :: "lp_pivots: 0"
              :: l :: rest
          | l :: rest -> l :: widen rest
        in
        "ivan-checkpoint 2" :: widen rest
    | _ -> lines
  in
  (* Likewise version 2 predates the certificate counters. *)
  let lines =
    match lines with
    | "ivan-checkpoint 2" :: rest ->
        let rec widen = function
          | [] -> fail "truncated version-2 header"
          | l :: rest when String.length l >= 8 && String.sub l 0 8 = "elapsed:" ->
              "certs_emitted: 0" :: "certs_unavailable: 0" :: l :: rest
          | l :: rest -> l :: widen rest
        in
        "ivan-checkpoint 3" :: widen rest
    | _ -> lines
  in
  match lines with
  | [
   version;
   strategy_l;
   max_calls_l;
   max_seconds_l;
   check_every_l;
   steps_l;
   calls_l;
   branchings_l;
   analyzer_seconds_l;
   max_frontier_l;
   max_depth_l;
   heuristic_failures_l;
   retries_l;
   fallback_bounds_l;
   faults_absorbed_l;
   lp_warm_hits_l;
   lp_warm_misses_l;
   lp_cold_solves_l;
   lp_pivots_l;
   certs_emitted_l;
   certs_unavailable_l;
   elapsed_l;
   finished_l;
   frontier_l;
  ] ->
      if version <> "ivan-checkpoint 3" then fail "unsupported header %S" version;
      let strategy =
        let s = field "strategy:" strategy_l in
        match Frontier.strategy_of_string s with
        | Some st -> st
        | None -> fail "unknown strategy %S" s
      in
      let budget_overridden = budget <> None in
      let budget =
        match budget with
        | Some b -> b
        | None ->
            {
              max_analyzer_calls = int_field "max_calls:" max_calls_l;
              max_seconds = float_field "max_seconds:" max_seconds_l;
            }
      in
      let elapsed = float_field "elapsed:" elapsed_l in
      let tree = Tree.of_string tree_text in
      let t =
        make ~analyzer ~heuristic ~strategy ~trace ~budget
          ~check_time_every:(int_field "check_time_every:" check_every_l)
          ~policy ~certify ~journal:None ~journal_every:default_journal_every ~tree ~net ~prop
          ~started:(Clock.monotonic () -. elapsed)
          ~steps:(int_field "steps:" steps_l)
          ~calls:(int_field "calls:" calls_l)
          ~branchings:(int_field "branchings:" branchings_l)
          ~analyzer_seconds:(float_field "analyzer_seconds:" analyzer_seconds_l)
          ~max_frontier:(int_field "max_frontier:" max_frontier_l)
          ~max_depth:(int_field "max_depth:" max_depth_l)
          ~heuristic_failures:(int_field "heuristic_failures:" heuristic_failures_l)
          ~retries:(int_field "retries:" retries_l)
          ~fallback_bounds:(int_field "fallback_bounds:" fallback_bounds_l)
          ~faults_absorbed:(int_field "faults_absorbed:" faults_absorbed_l)
          ~lp_warm_hits:(int_field "lp_warm_hits:" lp_warm_hits_l)
          ~lp_warm_misses:(int_field "lp_warm_misses:" lp_warm_misses_l)
          ~lp_cold_solves:(int_field "lp_cold_solves:" lp_cold_solves_l)
          ~lp_pivots:(int_field "lp_pivots:" lp_pivots_l)
          ~certs_emitted:(int_field "certs_emitted:" certs_emitted_l)
          ~certs_unavailable:(int_field "certs_unavailable:" certs_unavailable_l)
          ()
      in
      let nodes = Hashtbl.create 64 in
      Tree.iter_nodes tree (fun n -> Hashtbl.replace nodes (Tree.node_id n) n);
      let rec push_frontier = function
        | [] -> ()
        | [ tok ] -> fail "dangling frontier token %S" tok
        | id :: prio :: rest ->
            let id =
              match int_of_string_opt id with
              | Some i -> i
              | None -> fail "frontier id %S is not an integer" id
            in
            let prio =
              match float_of_string_opt prio with
              | Some p -> p
              | None -> fail "frontier priority %S is not a number" prio
            in
            (match Hashtbl.find_opt nodes id with
            | Some n -> Frontier.push t.frontier ~priority:prio n
            | None -> fail "frontier references unknown node %d" id);
            push_frontier rest
      in
      push_frontier
        (List.filter
           (fun s -> s <> "")
           (String.split_on_char ' ' (field "frontier:" frontier_l)));
      (* Terminal runs rebuilt from a checkpoint re-derive their
         artifact through [artifact_of]: a [Disproved] artifact needs
         only the recorded counterexample, while a restored [Proved] one
         has an empty certificate table (leaf certificates are not
         checkpointed) and [Cert.check_artifact] will truthfully report
         every leaf as missing its certificate. *)
      let finish_restored verdict =
        t.finished <-
          Some { verdict; tree; stats = stats_of t ~elapsed; artifact = artifact_of t verdict }
      in
      (match String.split_on_char ' ' (field "finished:" finished_l) with
      | [ "running" ] -> ()
      | [ "proved" ] -> finish_restored Proved
      | [ "exhausted" ] ->
          (* A budget-exhausted run is the one terminal state worth
             continuing: with a fresh budget and live frontier nodes the
             engine picks the search back up instead of replaying the
             recorded Exhausted verdict. *)
          if not (budget_overridden && Frontier.length t.frontier > 0) then
            finish_restored Exhausted
      | "disproved" :: toks when toks <> [] ->
          let x =
            Array.of_list
              (List.map
                 (fun tok ->
                   match float_of_string_opt tok with
                   | Some v -> v
                   | None -> fail "counterexample token %S is not a number" tok)
                 toks)
          in
          finish_restored (Disproved x)
      | _ -> fail "malformed finished line %S" finished_l);
      t
  | _ -> fail "malformed header"

let restore ~analyzer ~heuristic ?trace ?policy ?certify ?budget ?journal
    ?(journal_every = default_journal_every) ~net ~prop data =
  match restore_exn ~analyzer ~heuristic ?trace ?policy ?certify ?budget ~net ~prop data with
  | t ->
      attach_journal t ~fresh_run:false journal journal_every;
      Ok t
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error ("Engine.restore: " ^ msg)

let restore_from_file ~analyzer ~heuristic ?trace ?policy ?certify ?budget ?journal
    ?journal_every ~net ~prop path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data ->
      restore ~analyzer ~heuristic ?trace ?policy ?certify ?budget ?journal ?journal_every ~net
        ~prop data
  | exception Sys_error msg -> Error ("Engine.restore: cannot read checkpoint: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Journal resume: restore from the newest embedded checkpoint, then
   replay the Step frames after it. *)

type resume_info = {
  replayed_steps : int;
  replayed_calls : int;
  valid_bytes : int;
  dropped_bytes : int;
}

(* Re-apply one journaled step's events to an engine restored from the
   preceding checkpoint.  Replay is pure bookkeeping — no analyzer or LP
   runs: the journal records what the original run computed, and the
   tree and frontier evolve exactly as they did live ({!Tree.of_string}
   restores the id counter, so replayed splits mint the same child ids).
   Any divergence raises [Failure]: a diverging journal means the config
   fingerprint lied, and the caller turns it into [Error]. *)
let replay_events t ~nodes ~budget_overridden events =
  let fail fmt = Printf.ksprintf (fun s -> failwith ("Engine.resume_journal: " ^ s)) fmt in
  let find_node id =
    match Hashtbl.find_opt nodes id with
    | Some n -> n
    | None -> fail "journal references unknown node %d" id
  in
  let last_lb = ref neg_infinity in
  let finish_replayed verdict =
    let elapsed = Clock.monotonic () -. t.started in
    t.finished <-
      Some
        { verdict; tree = t.tree; stats = stats_of t ~elapsed; artifact = artifact_of t verdict }
  in
  List.iter
    (fun ev ->
      if t.finished <> None then fail "journal has events after the terminal verdict"
      else
        match ev with
        | Trace.Dequeued { node; depth = _; frontier } ->
            let now = Frontier.length t.frontier in
            if now <> frontier then
              fail "frontier length diverged at node %d (journal %d, engine %d)" node frontier
                now;
            t.steps <- t.steps + 1;
            t.max_frontier <- max t.max_frontier now;
            (match Frontier.pop t.frontier with
            | None -> fail "journal dequeues node %d from an empty frontier" node
            | Some n ->
                if Tree.node_id n <> node then
                  fail "frontier order diverged (journal dequeued %d, engine popped %d)" node
                    (Tree.node_id n);
                t.max_depth <- max t.max_depth (List.length (Tree.path_decisions n)))
        | Trace.Analyzed { node; status = _; lb; seconds } ->
            t.calls <- t.calls + 1;
            t.analyzer_seconds <- t.analyzer_seconds +. seconds;
            Tree.set_lb (find_node node) lb;
            last_lb := lb
        | Trace.Lp_solved { warm_hits; warm_misses; cold_solves; pivots; node = _ } ->
            t.lp_warm_hits <- t.lp_warm_hits + warm_hits;
            t.lp_warm_misses <- t.lp_warm_misses + warm_misses;
            t.lp_cold_solves <- t.lp_cold_solves + cold_solves;
            t.lp_pivots <- t.lp_pivots + pivots
        | Trace.Split { node; decision; left; right } ->
            let n = find_node node in
            let l, r = Tree.split t.tree n decision in
            if Tree.node_id l <> left || Tree.node_id r <> right then
              fail "replayed split of node %d minted ids %d/%d where the journal recorded %d/%d"
                node (Tree.node_id l) (Tree.node_id r) left right;
            Hashtbl.replace nodes left l;
            Hashtbl.replace nodes right r;
            t.branchings <- t.branchings + 1;
            Frontier.push t.frontier ~priority:!last_lb l;
            Frontier.push t.frontier ~priority:!last_lb r
        | Trace.Pruned _ -> fail "unexpected pruner event in an engine journal"
        | Trace.Stuck _ -> t.heuristic_failures <- t.heuristic_failures + 1
        | Trace.Retried _ -> incr t.retries
        | Trace.Fallback _ -> incr t.fallback_bounds
        | Trace.Absorbed _ -> incr t.faults_absorbed
        | Trace.Certified { kind; node = _ } ->
            if kind = "unavailable" then t.certs_unavailable <- t.certs_unavailable + 1
            else t.certs_emitted <- t.certs_emitted + 1
        | Trace.Verdict { verdict; calls = _; seconds = _ } -> (
            match verdict with
            | "proved" -> finish_replayed Proved
            | "exhausted" ->
                if not (budget_overridden && Frontier.length t.frontier > 0) then
                  finish_replayed Exhausted
            | "disproved" ->
                (* Unreachable: terminal disproved steps are dropped
                   before replay (the event does not carry the
                   counterexample vector) and redone live. *)
                fail "disproved verdict in replay"
            | v -> fail "unknown journaled verdict %S" v))
    events

let resume_journal ~analyzer ~heuristic ?(trace = Trace.null) ?(strategy = Frontier.Fifo)
    ?check_time_every ?policy ?(certify = false) ?budget ?journal
    ?(journal_every = default_journal_every) ~net ~prop data =
  let recovery = Journal.scan data in
  let records = Journal.last_run recovery.Journal.records in
  match records with
  | [] -> Error "Engine.resume_journal: no valid journal frames"
  | first :: rest -> (
      match
        (match first.Journal.kind with
        | Journal.Header ->
            let fp = fingerprint ~net ~prop in
            if first.Journal.payload <> fp then
              failwith
                "Engine.resume_journal: config fingerprint mismatch — the journal was written \
                 for a different network or property"
        | Journal.Step | Journal.Checkpoint ->
            failwith "Engine.resume_journal: journal has no run header");
        (* Newest checkpoint wins; only the Step frames after it replay. *)
        let ckpt, steps_rev =
          List.fold_left
            (fun (ck, steps) r ->
              match r.Journal.kind with
              | Journal.Header -> (ck, steps)
              | Journal.Checkpoint -> (Some r.Journal.payload, [])
              | Journal.Step -> (ck, r.Journal.payload :: steps))
            (None, []) rest
        in
        let parse_step payload =
          List.filter_map
            (fun line -> if String.trim line = "" then None else Some (Trace.event_of_json line))
            (String.split_on_char '\n' payload)
        in
        let steps = List.rev_map parse_step steps_rev in
        (* A terminal disproved step is dropped, not replayed: the
           Verdict event lacks the counterexample vector, so the node is
           left on the frontier and redone live — still at most one node
           of rework.  (A journal whose final Checkpoint frame landed
           records the counterexample there instead, and the fold above
           leaves no steps to replay.) *)
        let steps =
          match List.rev steps with
          | last :: prefix
            when List.exists
                   (function Trace.Verdict { verdict = "disproved"; _ } -> true | _ -> false)
                   last ->
              List.rev prefix
          | _ -> steps
        in
        let budget_overridden = budget <> None in
        let t =
          match ckpt with
          | Some doc ->
              restore_exn ~analyzer ~heuristic ~trace ?policy ~certify ?budget ~net ~prop doc
          | None ->
              (* Killed before the first checkpoint frame landed: start
                 fresh (nothing had happened yet). *)
              create ~analyzer ~heuristic ~strategy ~trace ?budget ?check_time_every ?policy
                ~certify ~net ~prop ()
        in
        let nodes = Hashtbl.create 64 in
        Tree.iter_nodes t.tree (fun n -> Hashtbl.replace nodes (Tree.node_id n) n);
        let replayed_calls = ref 0 in
        List.iter
          (fun events ->
            replay_events t ~nodes ~budget_overridden events;
            List.iter (function Trace.Analyzed _ -> incr replayed_calls | _ -> ()) events)
          steps;
        attach_journal t ~fresh_run:false journal journal_every;
        ( t,
          {
            replayed_steps = List.length steps;
            replayed_calls = !replayed_calls;
            valid_bytes = recovery.Journal.valid_bytes;
            dropped_bytes = recovery.Journal.dropped_bytes;
          } )
      with
      | result -> Ok result
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error ("Engine.resume_journal: " ^ msg))

let resume_journal_file ~analyzer ~heuristic ?trace ?strategy ?check_time_every ?policy ?certify
    ?budget ?journal ?journal_every ~net ~prop path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data ->
      resume_journal ~analyzer ~heuristic ?trace ?strategy ?check_time_every ?policy ?certify
        ?budget ?journal ?journal_every ~net ~prop data
  | exception Sys_error msg -> Error ("Engine.resume_journal: cannot read journal: " ^ msg)
