module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Tree = Ivan_spectree.Tree

type budget = { max_analyzer_calls : int; max_seconds : float }

let default_budget = { max_analyzer_calls = 10_000; max_seconds = infinity }

type stats = {
  analyzer_calls : int;
  branchings : int;
  tree_size : int;
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
  max_frontier : int;
  max_depth : int;
  heuristic_failures : int;
}

type verdict = Proved | Disproved of Ivan_tensor.Vec.t | Exhausted

type run = { verdict : verdict; tree : Tree.t; stats : stats }

type t = {
  analyzer : Analyzer.t;  (* instrumented: each call records into [last_call] *)
  heuristic : Heuristic.t;
  budget : budget;
  check_time_every : int;
  trace : Trace.sink;
  net : Network.t;
  prop : Prop.t;
  tree : Tree.t;
  frontier : Tree.node Frontier.t;
  started : float;
  last_call : float ref;
  mutable steps : int;
  mutable calls : int;
  mutable branchings : int;
  mutable analyzer_seconds : float;
  mutable max_frontier : int;
  mutable max_depth : int;
  mutable heuristic_failures : int;
  mutable finished : run option;
}

let verdict_label = function
  | Proved -> "proved"
  | Disproved _ -> "disproved"
  | Exhausted -> "exhausted"

let status_label = function
  | Analyzer.Verified -> "verified"
  | Analyzer.Counterexample _ -> "counterexample"
  | Analyzer.Unknown -> "unknown"

let create ~analyzer ~heuristic ?(strategy = Frontier.Fifo) ?(trace = Trace.null)
    ?(budget = default_budget) ?(check_time_every = 8) ?initial_tree ~net ~prop () =
  if Box.dim prop.Prop.input <> Network.input_dim net then
    invalid_arg "Engine.create: property dimension does not match the network";
  if check_time_every <= 0 then invalid_arg "Engine.create: check_time_every must be positive";
  let tree = match initial_tree with None -> Tree.create () | Some t -> Tree.copy t in
  let last_call = ref 0.0 in
  let analyzer =
    Analyzer.instrument ~on_run:(fun ~name:_ ~elapsed ~outcome:_ -> last_call := elapsed) analyzer
  in
  let frontier = Frontier.create strategy in
  List.iter (fun n -> Frontier.push frontier ~priority:(Tree.lb n) n) (Tree.leaves tree);
  {
    analyzer;
    heuristic;
    budget;
    check_time_every;
    trace;
    net;
    prop;
    tree;
    frontier;
    started = Unix.gettimeofday ();
    last_call;
    steps = 0;
    calls = 0;
    branchings = 0;
    analyzer_seconds = 0.0;
    max_frontier = 0;
    max_depth = 0;
    heuristic_failures = 0;
    finished = None;
  }

let tree t = t.tree

let calls t = t.calls

let frontier_length t = Frontier.length t.frontier

let finished t = t.finished

let finish t verdict =
  let elapsed = Unix.gettimeofday () -. t.started in
  let run =
    {
      verdict;
      tree = t.tree;
      stats =
        {
          analyzer_calls = t.calls;
          branchings = t.branchings;
          tree_size = Tree.size t.tree;
          tree_leaves = Tree.num_leaves t.tree;
          elapsed_seconds = elapsed;
          analyzer_seconds = t.analyzer_seconds;
          max_frontier = t.max_frontier;
          max_depth = t.max_depth;
          heuristic_failures = t.heuristic_failures;
        };
    }
  in
  Trace.emit t.trace
    (Trace.Verdict { verdict = verdict_label verdict; calls = t.calls; seconds = elapsed });
  t.finished <- Some run;
  run

(* The wall-clock budget is checked centrally, once every
   [check_time_every] steps (including step 0, so a zero budget fires
   before any analyzer call), instead of reading the clock per node.
   [>=] rather than [>]: a 0-second budget must exhaust even when the
   clock has not advanced a full tick since [create]. *)
let out_of_time t =
  t.budget.max_seconds < infinity
  && t.steps mod t.check_time_every = 0
  && Unix.gettimeofday () -. t.started >= t.budget.max_seconds

type status = Running | Finished of run

let step t =
  match t.finished with
  | Some run -> Finished run
  | None ->
      if Frontier.is_empty t.frontier then Finished (finish t Proved)
      else if t.calls >= t.budget.max_analyzer_calls || out_of_time t then
        Finished (finish t Exhausted)
      else begin
        t.steps <- t.steps + 1;
        let frontier_now = Frontier.length t.frontier in
        t.max_frontier <- max t.max_frontier frontier_now;
        let node = match Frontier.pop t.frontier with Some n -> n | None -> assert false in
        let id = Tree.node_id node in
        let depth = List.length (Tree.path_decisions node) in
        t.max_depth <- max t.max_depth depth;
        Trace.emit t.trace (Trace.Dequeued { node = id; depth; frontier = frontier_now });
        let box, splits = Tree.subproblem ~root_box:t.prop.Prop.input node in
        t.calls <- t.calls + 1;
        let outcome = t.analyzer.Analyzer.run t.net ~prop:t.prop ~box ~splits in
        t.analyzer_seconds <- t.analyzer_seconds +. !(t.last_call);
        Trace.emit t.trace
          (Trace.Analyzed
             {
               node = id;
               status = status_label outcome.Analyzer.status;
               lb = outcome.Analyzer.lb;
               seconds = !(t.last_call);
             });
        Tree.set_lb node outcome.Analyzer.lb;
        match outcome.Analyzer.status with
        | Analyzer.Verified -> Running
        | Analyzer.Counterexample x -> Finished (finish t (Disproved x))
        | Analyzer.Unknown -> (
            let ctx = { Heuristic.net = t.net; prop = t.prop; box; splits; outcome } in
            match Heuristic.best (t.heuristic.Heuristic.scores ctx) with
            | None ->
                (* No decision can refine this node further; the
                   analyzer is exact here, so this only happens on
                   numerical failure.  Count and trace it distinctly,
                   then stop — the budget was not the problem. *)
                t.heuristic_failures <- t.heuristic_failures + 1;
                Trace.emit t.trace (Trace.Stuck { node = id });
                Finished (finish t Exhausted)
            | Some d ->
                let left, right = Tree.split t.tree node d in
                t.branchings <- t.branchings + 1;
                Trace.emit t.trace
                  (Trace.Split
                     {
                       node = id;
                       decision = d;
                       left = Tree.node_id left;
                       right = Tree.node_id right;
                     });
                (* Children inherit the parent's freshly computed bound
                   as their best-first priority until analyzed. *)
                Frontier.push t.frontier ~priority:outcome.Analyzer.lb left;
                Frontier.push t.frontier ~priority:outcome.Analyzer.lb right;
                Running)
      end

let run t =
  let rec go () = match step t with Finished r -> r | Running -> go () in
  go ()

let cancel t = match t.finished with Some r -> r | None -> finish t Exhausted
