(** The branch-and-bound verification engine (Algorithms 1 and 3) as an
    explicit-state stepper.

    {!create} builds the engine state — the specification tree, the
    frontier of unbounded leaves, counters — and {!step} processes
    exactly one frontier node: dequeue, bound with the analyzer, then
    verify / report a counterexample / branch.  Callers can drive the
    loop themselves (interleaving verification with other work,
    checkpointing, or cancelling via {!cancel}); {!run} steps to
    completion.  [Bab.verify] is a thin wrapper over [create] + [run]
    and keeps the historical interface.

    The node-selection order is a pluggable {!Frontier.strategy}; every
    step can be observed through a {!Trace.sink}.  The wall-clock budget
    is enforced centrally — one clock read every [check_time_every]
    steps rather than per node. *)

type budget = {
  max_analyzer_calls : int;
  max_seconds : float;  (** wall-clock limit; [infinity] disables it *)
}

val default_budget : budget
(** 10_000 analyzer calls, no time limit. *)

type stats = {
  analyzer_calls : int;  (** bounding steps (the paper's Cost metric) *)
  branchings : int;  (** node branchings *)
  tree_size : int;  (** [|Nodes(T_f)|] *)
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
      (** wall-clock spent inside analyzer calls, via the
          {!Ivan_analyzer.Analyzer.instrument} hook *)
  max_frontier : int;  (** largest frontier observed at a dequeue *)
  max_depth : int;  (** deepest node dequeued *)
  heuristic_failures : int;
      (** unsolved nodes the heuristic could not branch (numerical
          failure, reported distinctly from budget exhaustion) *)
  retries : int;  (** analyzer re-attempts made by the resilience layer *)
  fallback_bounds : int;
      (** nodes whose accepted bound came from a degraded (non-primary)
          analyzer in the fallback chain *)
  faults_absorbed : int;
      (** analyzer failures (exceptions or untrustworthy outcomes)
          swallowed instead of crashing the run *)
  lp_warm_hits : int;
      (** node LP solves that warm-started from the parent's simplex
          basis ({!Ivan_lp.Lp.solve_from} succeeded) *)
  lp_warm_misses : int;
      (** warm-start attempts that fell back to an internal cold solve *)
  lp_cold_solves : int;
      (** node LP solves that never attempted a warm start (root node,
          restored checkpoints, non-reusable encodings, [--no-lp-warm]) *)
  lp_pivots : int;  (** total simplex pivots across all node LP solves *)
  certs_emitted : int;
      (** verified leaves whose certificate passed the emission-time
          exact self-check and joined the proof artifact (0 unless the
          engine was created with [certify]) *)
  certs_unavailable : int;
      (** verified leaves with no checkable certificate — the analyzer
          produced none (non-LP verdict, fallback bound) or the exact
          self-check rejected the solver's multipliers *)
}

type verdict =
  | Proved
  | Disproved of Ivan_tensor.Vec.t  (** a concrete counterexample *)
  | Exhausted  (** budget ran out — the paper's "Unknown / timeout" *)

type run = {
  verdict : verdict;
  tree : Ivan_spectree.Tree.t;
  stats : stats;
  artifact : Ivan_cert.Cert.Artifact.t option;
      (** the run's proof artifact, present iff the engine was created
          with [certify] and the verdict is [Proved] or [Disproved];
          validate with {!Ivan_cert.Cert.check_artifact} — a [Proved]
          artifact is complete only when [stats.certs_unavailable = 0] *)
}

type t
(** Mutable engine state. *)

val create :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?strategy:Frontier.strategy ->
  ?trace:Trace.sink ->
  ?budget:budget ->
  ?check_time_every:int ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?initial_tree:Ivan_spectree.Tree.t ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  t
(** [strategy] defaults to [Fifo] (the exact breadth-first order of the
    original implementation); [trace] to {!Trace.null};
    [check_time_every] (default 8) is how many steps separate wall-clock
    budget checks — the check always fires on the first step, so a zero
    time budget exhausts before any analyzer call.  [initial_tree]
    (default: a single root node) is copied, never mutated.

    [policy], when supplied, hardens the analyzer with
    {!Ivan_analyzer.Analyzer.with_fallback}: failures are retried, then
    degraded through cheaper analyzers, and counted into the run's
    [retries] / [fallback_bounds] / [faults_absorbed] stats and emitted
    as {!Trace.Retried} / {!Trace.Fallback} / {!Trace.Absorbed} events.
    Even without a policy the engine absorbs non-fatal analyzer
    exceptions, turning the node into an [Unknown] outcome rather than
    crashing the run.

    [certify] (default false) collects a proof certificate for every
    verified leaf: the analyzer's LP evidence (pass an analyzer built
    with the matching [certify] flag, e.g.
    [Analyzer.lp_triangle ~certify:true ()]) is re-checked in exact
    arithmetic on the spot and, if accepted, keyed to the leaf; the
    certificates are assembled into the run's [artifact] at completion.
    Leaves without acceptable evidence are counted in
    [stats.certs_unavailable] and traced as {!Trace.Certified} with kind
    ["unavailable"] — the engine never emits a certificate the
    independent checker would reject.
    @raise Invalid_argument if the property's box dimension does not
    match the network input, or if [check_time_every <= 0]. *)

type status = Running | Finished of run

val step : t -> status
(** Process one frontier node.  Idempotent after completion: keeps
    returning the same [Finished] run. *)

val run : t -> run
(** Step until finished. *)

val cancel : t -> run
(** Finish immediately: emits the terminal trace event and returns an
    [Exhausted] run over the tree built so far (or the already-finished
    run).  Subsequent {!step} calls return it unchanged. *)

val tree : t -> Ivan_spectree.Tree.t
(** Live view of the specification tree being grown. *)

val calls : t -> int

val frontier_length : t -> int

val finished : t -> run option

(** {2 Checkpoint / resume}

    An engine's complete resumable state — counters, budget, strategy,
    terminal state, frontier order, and the specification tree — as a
    self-delimiting text document.  The analyzer, heuristic, network,
    property, trace sink and resilience policy are code rather than
    state and are supplied again at {!restore} time; the restored engine
    continues exactly where the checkpoint was taken (the elapsed-time
    clock resumes from the recorded value).

    Parked warm-start bases are deliberately {e not} serialized — they
    are a performance cache, not verification state — so the first LP
    solve of each restored frontier node runs cold and the search
    proceeds identically otherwise.  Version-1 checkpoints (written
    before the warm-start counters existed) restore with those counters
    zeroed. *)

val checkpoint : t -> string
(** Serialize the engine's current state.  Safe at any point, including
    after completion (restoring a terminal checkpoint yields an engine
    whose {!finished} run is already set). *)

val checkpoint_to_file : t -> string -> unit
(** {!checkpoint} written atomically: the document goes to a [.tmp]
    sibling first and is renamed over the target, so a crash mid-write
    never leaves a truncated checkpoint behind. *)

val restore :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?trace:Trace.sink ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?budget:budget ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  string ->
  t
(** Rebuild an engine from a {!checkpoint} document.  [budget] overrides
    the recorded budget (e.g. to grant a resumed run more time); all
    other recorded state — strategy, counters, frontier, tree — is taken
    from the checkpoint.  Terminal checkpoints stay terminal, with one
    exception: an [Exhausted] checkpoint restored with an overriding
    [budget] and a non-empty frontier resumes the search, so a run that
    ran out of budget can be granted more and continued.

    [certify] (default false) re-enables certificate collection on the
    restored engine, but note that leaf certificates are {e not} part of
    a checkpoint (only the two counters are): leaves verified before the
    checkpoint have no certificate in the restored run, so a resumed
    [Proved] artifact will fail {!Ivan_cert.Cert.check_artifact} with
    those leaves reported missing — certification honestly requires an
    uninterrupted run.  Version-1 and version-2 checkpoints (predating
    the warm-start and certificate counters respectively) restore with
    the missing counters zeroed.
    @raise Failure on a malformed document.
    @raise Invalid_argument if [net]/[prop] do not match each other. *)

val restore_from_file :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?trace:Trace.sink ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?budget:budget ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  string ->
  t
(** {!restore} reading the document from a file path. *)
