(** The branch-and-bound verification engine (Algorithms 1 and 3) as an
    explicit-state stepper.

    {!create} builds the engine state — the specification tree, the
    frontier of unbounded leaves, counters — and {!step} processes
    exactly one frontier node: dequeue, bound with the analyzer, then
    verify / report a counterexample / branch.  Callers can drive the
    loop themselves (interleaving verification with other work,
    checkpointing, or cancelling via {!cancel}); {!run} steps to
    completion.  [Bab.verify] is a thin wrapper over [create] + [run]
    and keeps the historical interface.

    The node-selection order is a pluggable {!Frontier.strategy}; every
    step can be observed through a {!Trace.sink}.  The wall-clock budget
    is enforced centrally — one clock read every [check_time_every]
    steps rather than per node. *)

type budget = {
  max_analyzer_calls : int;
  max_seconds : float;  (** wall-clock limit; [infinity] disables it *)
}

val default_budget : budget
(** 10_000 analyzer calls, no time limit. *)

type stats = {
  analyzer_calls : int;  (** bounding steps (the paper's Cost metric) *)
  branchings : int;  (** node branchings *)
  tree_size : int;  (** [|Nodes(T_f)|] *)
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
      (** wall-clock spent inside analyzer calls, via the
          {!Ivan_analyzer.Analyzer.instrument} hook *)
  max_frontier : int;  (** largest frontier observed at a dequeue *)
  max_depth : int;  (** deepest node dequeued *)
  heuristic_failures : int;
      (** unsolved nodes the heuristic could not branch (numerical
          failure, reported distinctly from budget exhaustion) *)
}

type verdict =
  | Proved
  | Disproved of Ivan_tensor.Vec.t  (** a concrete counterexample *)
  | Exhausted  (** budget ran out — the paper's "Unknown / timeout" *)

type run = { verdict : verdict; tree : Ivan_spectree.Tree.t; stats : stats }

type t
(** Mutable engine state. *)

val create :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?strategy:Frontier.strategy ->
  ?trace:Trace.sink ->
  ?budget:budget ->
  ?check_time_every:int ->
  ?initial_tree:Ivan_spectree.Tree.t ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  t
(** [strategy] defaults to [Fifo] (the exact breadth-first order of the
    original implementation); [trace] to {!Trace.null};
    [check_time_every] (default 8) is how many steps separate wall-clock
    budget checks — the check always fires on the first step, so a zero
    time budget exhausts before any analyzer call.  [initial_tree]
    (default: a single root node) is copied, never mutated.
    @raise Invalid_argument if the property's box dimension does not
    match the network input, or if [check_time_every <= 0]. *)

type status = Running | Finished of run

val step : t -> status
(** Process one frontier node.  Idempotent after completion: keeps
    returning the same [Finished] run. *)

val run : t -> run
(** Step until finished. *)

val cancel : t -> run
(** Finish immediately: emits the terminal trace event and returns an
    [Exhausted] run over the tree built so far (or the already-finished
    run).  Subsequent {!step} calls return it unchanged. *)

val tree : t -> Ivan_spectree.Tree.t
(** Live view of the specification tree being grown. *)

val calls : t -> int

val frontier_length : t -> int

val finished : t -> run option
