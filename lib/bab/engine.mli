(** The branch-and-bound verification engine (Algorithms 1 and 3) as an
    explicit-state stepper.

    {!create} builds the engine state — the specification tree, the
    frontier of unbounded leaves, counters — and {!step} processes
    exactly one frontier node: dequeue, bound with the analyzer, then
    verify / report a counterexample / branch.  Callers can drive the
    loop themselves (interleaving verification with other work,
    checkpointing, or cancelling via {!cancel}); {!run} steps to
    completion.  [Bab.verify] is a thin wrapper over [create] + [run]
    and keeps the historical interface.

    The node-selection order is a pluggable {!Frontier.strategy}; every
    step can be observed through a {!Trace.sink}.  The wall-clock budget
    is enforced centrally — one clock read every [check_time_every]
    steps rather than per node. *)

type budget = {
  max_analyzer_calls : int;
  max_seconds : float;  (** wall-clock limit; [infinity] disables it *)
}

val default_budget : budget
(** 10_000 analyzer calls, no time limit. *)

val default_journal_every : int
(** Steps between journal Checkpoint frames (32) — the default bound on
    how many Step frames a resume must replay. *)

type stats = {
  analyzer_calls : int;  (** bounding steps (the paper's Cost metric) *)
  branchings : int;  (** node branchings *)
  tree_size : int;  (** [|Nodes(T_f)|] *)
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;
      (** wall-clock spent inside analyzer calls, via the
          {!Ivan_analyzer.Analyzer.instrument} hook *)
  max_frontier : int;  (** largest frontier observed at a dequeue *)
  max_depth : int;  (** deepest node dequeued *)
  heuristic_failures : int;
      (** unsolved nodes the heuristic could not branch (numerical
          failure, reported distinctly from budget exhaustion) *)
  retries : int;  (** analyzer re-attempts made by the resilience layer *)
  fallback_bounds : int;
      (** nodes whose accepted bound came from a degraded (non-primary)
          analyzer in the fallback chain *)
  faults_absorbed : int;
      (** analyzer failures (exceptions or untrustworthy outcomes)
          swallowed instead of crashing the run *)
  lp_warm_hits : int;
      (** node LP solves that warm-started from the parent's simplex
          basis ({!Ivan_lp.Lp.solve_from} succeeded) *)
  lp_warm_misses : int;
      (** warm-start attempts that fell back to an internal cold solve *)
  lp_cold_solves : int;
      (** node LP solves that never attempted a warm start (root node,
          restored checkpoints, non-reusable encodings, [--no-lp-warm]) *)
  lp_pivots : int;  (** total simplex pivots across all node LP solves *)
  certs_emitted : int;
      (** verified leaves whose certificate passed the emission-time
          exact self-check and joined the proof artifact (0 unless the
          engine was created with [certify]) *)
  certs_unavailable : int;
      (** verified leaves with no checkable certificate — the analyzer
          produced none (non-LP verdict, fallback bound) or the exact
          self-check rejected the solver's multipliers *)
}

type verdict =
  | Proved
  | Disproved of Ivan_tensor.Vec.t  (** a concrete counterexample *)
  | Exhausted  (** budget ran out — the paper's "Unknown / timeout" *)

type run = {
  verdict : verdict;
  tree : Ivan_spectree.Tree.t;
  stats : stats;
  artifact : Ivan_cert.Cert.Artifact.t option;
      (** the run's proof artifact, present iff the engine was created
          with [certify] and the verdict is [Proved] or [Disproved];
          validate with {!Ivan_cert.Cert.check_artifact} — a [Proved]
          artifact is complete only when [stats.certs_unavailable = 0] *)
}

type t
(** Mutable engine state. *)

val create :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?strategy:Frontier.strategy ->
  ?trace:Trace.sink ->
  ?budget:budget ->
  ?check_time_every:int ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  ?initial_tree:Ivan_spectree.Tree.t ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  t
(** [strategy] defaults to [Fifo] (the exact breadth-first order of the
    original implementation); [trace] to {!Trace.null};
    [check_time_every] (default 8) is how many steps separate wall-clock
    budget checks — the check always fires on the first step, so a zero
    time budget exhausts before any analyzer call.  [initial_tree]
    (default: a single root node) is copied, never mutated.

    [policy], when supplied, hardens the analyzer with
    {!Ivan_analyzer.Analyzer.with_fallback}: failures are retried, then
    degraded through cheaper analyzers, and counted into the run's
    [retries] / [fallback_bounds] / [faults_absorbed] stats and emitted
    as {!Trace.Retried} / {!Trace.Fallback} / {!Trace.Absorbed} events.
    Even without a policy the engine absorbs non-fatal analyzer
    exceptions, turning the node into an [Unknown] outcome rather than
    crashing the run.

    [journal], when supplied, turns on write-ahead journaling: a Header
    frame with the run's config fingerprint is appended immediately,
    then each completed step appends exactly one Step frame (the step's
    trace events as JSONL — atomic, so a kill never journals half a
    step), and every [journal_every] (default
    {!default_journal_every}) steps — plus the terminal step — a
    Checkpoint frame folds the whole prefix.  A killed run resumes from
    its journal via {!resume_journal} with at most one node of rework.
    Events produced while a journal is attached still reach [trace]
    unchanged.

    [certify] (default false) collects a proof certificate for every
    verified leaf: the analyzer's LP evidence (pass an analyzer built
    with the matching [certify] flag, e.g.
    [Analyzer.lp_triangle ~certify:true ()]) is re-checked in exact
    arithmetic on the spot and, if accepted, keyed to the leaf; the
    certificates are assembled into the run's [artifact] at completion.
    Leaves without acceptable evidence are counted in
    [stats.certs_unavailable] and traced as {!Trace.Certified} with kind
    ["unavailable"] — the engine never emits a certificate the
    independent checker would reject.
    @raise Invalid_argument if the property's box dimension does not
    match the network input, or if [check_time_every <= 0]. *)

type status = Running | Finished of run

val step : t -> status
(** Process one frontier node.  Idempotent after completion: keeps
    returning the same [Finished] run. *)

val run : t -> run
(** Step until finished. *)

val cancel : t -> run
(** Finish immediately: emits the terminal trace event and returns an
    [Exhausted] run over the tree built so far (or the already-finished
    run).  Subsequent {!step} calls return it unchanged. *)

val tree : t -> Ivan_spectree.Tree.t
(** Live view of the specification tree being grown. *)

val calls : t -> int

val frontier_length : t -> int

val finished : t -> run option

(** {2 Checkpoint / resume}

    An engine's complete resumable state — counters, budget, strategy,
    terminal state, frontier order, and the specification tree — as a
    self-delimiting text document.  The analyzer, heuristic, network,
    property, trace sink and resilience policy are code rather than
    state and are supplied again at {!restore} time; the restored engine
    continues exactly where the checkpoint was taken (the elapsed-time
    clock resumes from the recorded value).

    Parked warm-start bases are deliberately {e not} serialized — they
    are a performance cache, not verification state — so the first LP
    solve of each restored frontier node runs cold and the search
    proceeds identically otherwise.  Version-1 checkpoints (written
    before the warm-start counters existed) restore with those counters
    zeroed. *)

val checkpoint : t -> string
(** Serialize the engine's current state.  Safe at any point, including
    after completion (restoring a terminal checkpoint yields an engine
    whose {!finished} run is already set). *)

val checkpoint_to_file : t -> string -> unit
(** {!checkpoint} written atomically: the document goes to a [.tmp]
    sibling first and is renamed over the target, so a crash mid-write
    never leaves a truncated checkpoint behind. *)

val restore :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?trace:Trace.sink ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?budget:budget ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  string ->
  (t, string) result
(** Rebuild an engine from a {!checkpoint} document.  [budget] overrides
    the recorded budget (e.g. to grant a resumed run more time); all
    other recorded state — strategy, counters, frontier, tree — is taken
    from the checkpoint.  Terminal checkpoints stay terminal, with one
    exception: an [Exhausted] checkpoint restored with an overriding
    [budget] and a non-empty frontier resumes the search, so a run that
    ran out of budget can be granted more and continued.

    A truncated, corrupt or otherwise malformed document — and a
    [net]/[prop] pair that does not match it — yields [Error] with a
    diagnostic message; no parse exception escapes.

    [journal], when supplied, attaches write-ahead journaling to the
    restored engine (see {!create}); a Header frame is written only if
    the sink is empty, so restoring into an existing journal continues
    its current run.

    [certify] (default false) re-enables certificate collection on the
    restored engine, but note that leaf certificates are {e not} part of
    a checkpoint (only the two counters are): leaves verified before the
    checkpoint have no certificate in the restored run, so a resumed
    [Proved] artifact will fail {!Ivan_cert.Cert.check_artifact} with
    those leaves reported missing — certification honestly requires an
    uninterrupted run.  Version-1 and version-2 checkpoints (predating
    the warm-start and certificate counters respectively) restore with
    the missing counters zeroed. *)

val restore_from_file :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?trace:Trace.sink ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?budget:budget ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  string ->
  (t, string) result
(** {!restore} reading the document from a file path; [Error] also when
    the file cannot be read. *)

(** {2 Journal resume}

    Recovery after a kill: {!Ivan_resilience.Journal.scan} truncates the
    journal to its valid frame prefix, the engine restores from the
    newest embedded Checkpoint frame, and the Step frames recorded after
    it replay as pure bookkeeping — no analyzer or LP calls; the tree,
    frontier and counters evolve exactly as the original run's trace
    says they did.  Work is lost only for the step that was in flight
    when the process died (its Step frame never landed), so rework is
    bounded by one node. *)

type resume_info = {
  replayed_steps : int;  (** Step frames replayed onto the checkpoint *)
  replayed_calls : int;  (** analyzer calls those steps recorded *)
  valid_bytes : int;  (** journal prefix accepted by recovery *)
  dropped_bytes : int;  (** torn / corrupt tail bytes discarded *)
}

val resume_journal :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?trace:Trace.sink ->
  ?strategy:Frontier.strategy ->
  ?check_time_every:int ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?budget:budget ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  string ->
  (t * resume_info, string) result
(** Rebuild an engine from raw journal bytes (the newest run in the
    journal, per {!Ivan_resilience.Journal.last_run}).  The journal's
    Header fingerprint must match [net]/[prop] — resuming against the
    wrong problem is an [Error], as is any replay divergence, so a stale
    journal can never silently corrupt a verdict.  [strategy] and
    [check_time_every] only apply when the journal died before its first
    Checkpoint frame landed (the run is started fresh); otherwise the
    checkpoint's recorded values win.  [budget] overrides as in
    {!restore}.

    A terminal [Disproved] step whose Checkpoint frame never landed is
    redone live rather than replayed (the journaled verdict event does
    not carry the counterexample vector) — the one case where resume
    re-runs the analyzer, still within the one-node rework bound.

    [journal], when supplied, continues journaling: into the same file
    (the journal is rewritten compacted — Header, then a Checkpoint of
    the resumed state) or a fresh one. *)

val resume_journal_file :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?trace:Trace.sink ->
  ?strategy:Frontier.strategy ->
  ?check_time_every:int ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?budget:budget ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  string ->
  (t * resume_info, string) result
(** {!resume_journal} reading the journal from a file path.  Read the
    old journal fully before opening the same path as the new [journal]
    sink — {!Ivan_resilience.Journal.open_file} truncates. *)

val fingerprint : net:Ivan_nn.Network.t -> prop:Ivan_spec.Prop.t -> string
(** The config digest stored in journal Header frames: an MD5 hex digest
    over the serialized network and the property's box, coefficients and
    offset. *)
