(** Branch-and-bound complete verification (Algorithms 1 and 3).

    The verifier repeatedly bounds the subproblems of the frontier with
    an analyzer and branches the unsolved ones with a heuristic, growing
    a specification tree that records the trace.  Starting from a
    non-trivial initial tree gives the paper's incremental verifier
    [V_Delta]: the frontier is initialized with the leaves of the
    supplied tree.

    [verify] is a thin wrapper over the explicit-state {!Engine}
    ([Engine.create] + [Engine.run]); its types are the engine's, so
    runs from either interface interoperate.  Under the default [Fifo]
    strategy it reproduces the original breadth-first traversal
    exactly. *)

type budget = Engine.budget = {
  max_analyzer_calls : int;
  max_seconds : float;  (** wall-clock limit; [infinity] disables it *)
}

val default_budget : budget
(** 10_000 analyzer calls, no time limit. *)

type stats = Engine.stats = {
  analyzer_calls : int;  (** bounding steps (the paper's Cost metric) *)
  branchings : int;  (** node branchings *)
  tree_size : int;  (** [|Nodes(T_f)|] *)
  tree_leaves : int;
  elapsed_seconds : float;
  analyzer_seconds : float;  (** wall-clock spent inside analyzer calls *)
  max_frontier : int;  (** largest frontier observed at a dequeue *)
  max_depth : int;  (** deepest node dequeued *)
  heuristic_failures : int;
      (** unsolved nodes the heuristic could not branch (numerical
          failure, reported distinctly from budget exhaustion) *)
  retries : int;  (** analyzer re-attempts made by the resilience layer *)
  fallback_bounds : int;
      (** nodes whose accepted bound came from a degraded analyzer *)
  faults_absorbed : int;
      (** analyzer failures swallowed instead of crashing the run *)
  lp_warm_hits : int;  (** node LPs warm-started from the parent basis *)
  lp_warm_misses : int;  (** warm attempts that fell back to cold *)
  lp_cold_solves : int;  (** node LPs solved without a warm attempt *)
  lp_pivots : int;  (** total simplex pivots across node LP solves *)
  certs_emitted : int;
      (** verified leaves whose certificate passed the emission-time
          exact self-check (always 0 without [certify]) *)
  certs_unavailable : int;
      (** verified leaves left without a checkable certificate *)
}

type verdict = Engine.verdict =
  | Proved
  | Disproved of Ivan_tensor.Vec.t  (** a concrete counterexample *)
  | Exhausted  (** budget ran out — the paper's "Unknown / timeout" *)

type run = Engine.run = {
  verdict : verdict;
  tree : Ivan_spectree.Tree.t;
  stats : stats;
  artifact : Ivan_cert.Cert.Artifact.t option;
      (** proof artifact of a [certify] run (see {!Engine}); [None]
          without [certify] or on [Exhausted] *)
}

val verify :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Heuristic.t ->
  ?strategy:Frontier.strategy ->
  ?trace:Trace.sink ->
  ?budget:budget ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  ?initial_tree:Ivan_spectree.Tree.t ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  run
(** [strategy] (default [Fifo]) selects the frontier exploration order;
    [trace] (default {!Trace.null}) observes every engine step.
    [policy], when supplied, hardens the analyzer with
    {!Ivan_analyzer.Analyzer.with_fallback} (see {!Engine.create}).
    [journal], when supplied, write-ahead journals the run so it can be
    killed and resumed via {!Engine.resume_journal} (see
    {!Engine.create}).
    [certify] (default false) collects exact-checked per-leaf proof
    certificates into the run's [artifact] — pair it with an analyzer
    built with [certify] (e.g. [Analyzer.lp_triangle ~certify:true ()]),
    otherwise every leaf counts as certificate-unavailable.
    [initial_tree] (default: a single root node) is copied, never
    mutated: the returned tree extends the copy with the run's new
    splits and records the analyzer LB of every node it bounded.
    @raise Invalid_argument if the property's box dimension does not
    match the network input. *)
