(** Mixed 0-1 integer programming by branch and bound over {!Lp}.

    Minimizes the LP objective with a designated subset of variables
    restricted to {0, 1}.  Branching is depth-first on the most
    fractional binary (best-bound tie-breaking comes from the DFS order
    visiting the more promising side first); nodes are pruned against
    the incumbent.  Supports warm starting on two levels: an incumbent
    bound carried across solves (the setting of the paper's §7
    MILP-warm-start comparison), and — within one solve — each child
    node's LP re-priced from its parent's optimal simplex basis via
    {!Lp.solve_from}, since a child differs from its parent only in one
    binary's bounds. *)

type stats = {
  nodes : int;
  lp_solves : int;
  simplex_pivots : int;
      (** total simplex iterations across all node LPs (warm and cold) *)
  warm_hits : int;
      (** node LPs answered from the parent basis without a cold
          fallback; 0 when [warm:false] *)
}

type result =
  | Optimal of { objective : float; primal : float array; stats : stats }
  | Infeasible of stats
  | Node_limit of stats
      (** the node cap was hit before the search finished; no exact
          answer (incumbent, if any, is not returned to keep misuse
          hard) *)
  | Solver_failure of stats
      (** an inner LP raised {!Lp.Iteration_limit} or
          {!Lp.Numerical_failure}; the search is incomplete, so no exact
          answer.  Problem bounds are restored before returning. *)

val solve :
  ?max_nodes:int ->
  ?incumbent:float ->
  ?warm:bool ->
  Lp.problem ->
  integer:int list ->
  result
(** [solve p ~integer] minimizes over [p] with the [integer] variables
    binary.  The problem's bounds are temporarily tightened during the
    search and restored before returning.  [incumbent] is a known upper
    bound on the optimum (e.g. from a feasible point or a previous
    solve); branches whose LP relaxation cannot beat it are pruned, and
    if no solution improves on it the result is [Infeasible] (meaning:
    the true optimum is at least [incumbent]).  [warm] (default [true])
    re-prices each child node's LP from its parent's basis; the verdict
    and optimum are unchanged either way ({!Lp.solve_from} falls back to
    a cold solve rather than alter an answer), only the pivot count
    drops.  Binary variables must have bounds within [0, 1].
    Inner LP failures ({!Lp.Iteration_limit}, {!Lp.Numerical_failure})
    are absorbed into [Solver_failure] rather than escaping.
    @raise Invalid_argument on out-of-range or mis-bounded binaries. *)
