(** Mixed 0-1 integer programming by branch and bound over {!Lp}.

    Minimizes the LP objective with a designated subset of variables
    restricted to {0, 1}.  Branching is depth-first on the most
    fractional binary (best-bound tie-breaking comes from the DFS order
    visiting the more promising side first); nodes are pruned against
    the incumbent.  Supports warm starting by passing the previous
    solve's optimal value as an initial incumbent bound — the setting of
    the paper's §7 MILP-warm-start comparison. *)

type stats = { nodes : int; lp_solves : int }

type result =
  | Optimal of { objective : float; primal : float array; stats : stats }
  | Infeasible of stats
  | Node_limit of stats
      (** the node cap was hit before the search finished; no exact
          answer (incumbent, if any, is not returned to keep misuse
          hard) *)
  | Solver_failure of stats
      (** an inner LP raised {!Lp.Iteration_limit} or
          {!Lp.Numerical_failure}; the search is incomplete, so no exact
          answer.  Problem bounds are restored before returning. *)

val solve :
  ?max_nodes:int ->
  ?incumbent:float ->
  Lp.problem ->
  integer:int list ->
  result
(** [solve p ~integer] minimizes over [p] with the [integer] variables
    binary.  The problem's bounds are temporarily tightened during the
    search and restored before returning.  [incumbent] is a known upper
    bound on the optimum (e.g. from a feasible point or a previous
    solve); branches whose LP relaxation cannot beat it are pruned, and
    if no solution improves on it the result is [Infeasible] (meaning:
    the true optimum is at least [incumbent]).  Binary variables must
    have bounds within [0, 1].  Inner LP failures ({!Lp.Iteration_limit},
    {!Lp.Numerical_failure}) are absorbed into [Solver_failure] rather
    than escaping.
    @raise Invalid_argument on out-of-range or mis-bounded binaries. *)
