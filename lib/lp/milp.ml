type stats = { nodes : int; lp_solves : int; simplex_pivots : int; warm_hits : int }

type result =
  | Optimal of { objective : float; primal : float array; stats : stats }
  | Infeasible of stats
  | Node_limit of stats
  | Solver_failure of stats

let eps_integral = 1e-6

let eps_prune = 1e-9

exception Out_of_nodes

let solve ?(max_nodes = 100_000) ?incumbent ?(warm = true) p ~integer =
  List.iter
    (fun j ->
      if j < 0 || j >= Lp.num_vars p then invalid_arg "Milp.solve: binary out of range";
      let lo, hi = Lp.get_bounds p j in
      if lo < -.eps_integral || hi > 1.0 +. eps_integral then
        invalid_arg "Milp.solve: binary variables must have bounds within [0, 1]")
    integer;
  let saved = List.map (fun j -> (j, Lp.get_bounds p j)) integer in
  let restore () = List.iter (fun (j, (lo, hi)) -> Lp.set_bounds p j lo hi) saved in
  let best_obj = ref (match incumbent with Some v -> v | None -> infinity) in
  let best_primal = ref None in
  let nodes = ref 0 in
  let lp_solves = ref 0 in
  let simplex_pivots = ref 0 in
  let warm_hits = ref 0 in
  (* Most fractional binary of an LP solution, if any. *)
  let fractional primal =
    let best = ref None in
    List.iter
      (fun j ->
        let v = primal.(j) in
        let dist = Float.min (Float.abs v) (Float.abs (1.0 -. v)) in
        if dist > eps_integral then
          match !best with
          | Some (_, d) when d >= dist -> ()
          | Some _ | None -> best := Some (j, dist))
      integer;
    !best
  in
  (* Each node re-solves the same problem with one binary's bounds
     pinned, so the parent's optimal basis is an ideal warm start for
     both children: only bounds changed, the rows are identical. *)
  let node_solve parent_basis =
    incr lp_solves;
    let result =
      match parent_basis with
      | Some b when warm -> Lp.solve_from p b
      | Some _ | None -> Lp.solve p
    in
    (match Lp.last_stats p with
    | Some s ->
        simplex_pivots := !simplex_pivots + s.Lp.pivots;
        if s.Lp.warm = Lp.Warm_hit then incr warm_hits
    | None -> ());
    result
  in
  let rec explore parent_basis =
    if !nodes >= max_nodes then raise Out_of_nodes;
    incr nodes;
    match node_solve parent_basis with
    | Lp.Infeasible -> ()
    | Lp.Unbounded ->
        (* The relaxation must be bounded for branch and bound to make
           sense; our verification encodings always are. *)
        invalid_arg "Milp.solve: unbounded LP relaxation"
    | Lp.Optimal { objective; primal; _ } ->
        if objective >= !best_obj -. eps_prune then () (* bound: prune *)
        else begin
          match fractional primal with
          | None ->
              best_obj := objective;
              best_primal := Some (Array.copy primal)
          | Some (j, _) ->
              let lo, hi = Lp.get_bounds p j in
              let my_basis = Lp.basis p in
              (* Branch toward the relaxation's preference first. *)
              let first, second = if primal.(j) >= 0.5 then (1.0, 0.0) else (0.0, 1.0) in
              Lp.set_bounds p j first first;
              explore my_basis;
              Lp.set_bounds p j second second;
              explore my_basis;
              Lp.set_bounds p j lo hi
        end
  in
  let outcome =
    match explore None with
    | () -> `Done
    | exception Out_of_nodes -> `Capped
    | exception (Lp.Iteration_limit | Lp.Numerical_failure _) ->
        (* An inner LP gave up; the search below this node is incomplete,
           so no exact answer exists.  Surfaced as a result rather than
           an exception so callers degrade instead of crashing. *)
        `Failed
  in
  restore ();
  let stats =
    {
      nodes = !nodes;
      lp_solves = !lp_solves;
      simplex_pivots = !simplex_pivots;
      warm_hits = !warm_hits;
    }
  in
  match outcome with
  | `Capped -> Node_limit stats
  | `Failed -> Solver_failure stats
  | `Done -> (
      match !best_primal with
      | Some primal -> Optimal { objective = !best_obj; primal; stats }
      | None -> Infeasible stats)
