type cmp = Le | Ge | Eq

(* Rows are stored sparse as parallel index/coefficient arrays.  Terms
   with duplicate indices are summed when the tableau is built. *)
type row = { idx : int array; cf : float array; cmp : cmp; rhs : float }

type status = Basic | At_lower | At_upper | Free_zero

type warm = Cold | Warm_hit | Warm_miss

type solve_stats = {
  pivots : int;  (* simplex iterations: basis changes + bound flips *)
  factor_pivots : int;  (* Gauss pivots spent refactorizing a warm basis *)
  phase1 : bool;  (* a cold solve needed the artificial Phase-1 start *)
  warm : warm;
}

module Basis = struct
  (* A snapshot of the simplex basis at an optimum: which column is
     basic in each row, and the resting status of every structural and
     slack column.  Captured by [capture] below only when no artificial
     column is basic, so a snapshot can always be re-installed on a
     tableau built without artificials. *)
  type t = {
    nvars : int;
    nrows : int;
    basics : int array;  (* row -> basic column in [0, nvars + nrows) *)
    statuses : status array;  (* structural + slack columns *)
  }
end

module Certificate = struct
  (* Row multipliers extracted from the final reduced-cost row of a
     solve.  [Dual y] witnesses a lower bound on the objective by weak
     duality; [Farkas y] witnesses infeasibility (the same bound
     computation with a zero objective comes out strictly positive).
     Both are checkable in exact arithmetic by [Ivan_cert.Cert] without
     trusting the float simplex that produced them. *)
  type t = Dual of float array | Farkas of float array
end

type problem = {
  nvars : int;
  mutable obj : float array;
  lo : float array;
  hi : float array;
  mutable rows : row array;  (* first [nrows] entries are live *)
  mutable nrows : int;
  mutable last_basis : Basis.t option;
  mutable last_stats : solve_stats option;
  mutable last_certificate : Certificate.t option;
}

type solution = { objective : float; primal : float array; certificate : Certificate.t option }

type result = Optimal of solution | Infeasible | Unbounded

exception Iteration_limit

exception Numerical_failure of string

(* Observation/injection point for every solve entry.  The resilience
   layer installs a hook here to run deterministic fault campaigns;
   production code leaves it at [None].  Atomic, because [Runner] spawns
   worker domains that all route their node LPs through here. *)
let solve_hook : (problem -> unit) option Atomic.t = Atomic.make None

let set_solve_hook h = Atomic.set solve_hook h

let run_hook p = match Atomic.get solve_hook with Some f -> f p | None -> ()

let dummy_row = { idx = [||]; cf = [||]; cmp = Le; rhs = 0.0 }

let create n =
  if n < 0 then invalid_arg "Lp.create: negative variable count";
  {
    nvars = n;
    obj = Array.make n 0.0;
    lo = Array.make n neg_infinity;
    hi = Array.make n infinity;
    rows = [||];
    nrows = 0;
    last_basis = None;
    last_stats = None;
    last_certificate = None;
  }

let num_vars p = p.nvars

let num_rows p = p.nrows

let last_stats p = p.last_stats

let last_certificate p = p.last_certificate

let basis p = p.last_basis

let objective_coeffs p = Array.copy p.obj

let row p i =
  if i < 0 || i >= p.nrows then invalid_arg "Lp.row: row out of range";
  let r = p.rows.(i) in
  (Array.copy r.idx, Array.copy r.cf, r.cmp, r.rhs)

let set_objective p c =
  if Array.length c <> p.nvars then invalid_arg "Lp.set_objective: dimension mismatch";
  p.obj <- Array.copy c

let set_bounds p j lo hi =
  if j < 0 || j >= p.nvars then invalid_arg "Lp.set_bounds: variable out of range";
  if lo > hi then invalid_arg "Lp.set_bounds: lo > hi";
  p.lo.(j) <- lo;
  p.hi.(j) <- hi

let get_bounds p j =
  if j < 0 || j >= p.nvars then invalid_arg "Lp.get_bounds: variable out of range";
  (p.lo.(j), p.hi.(j))

let check_indices name p idx =
  Array.iter (fun j -> if j < 0 || j >= p.nvars then invalid_arg name) idx

let ensure_row_capacity p =
  let cap = Array.length p.rows in
  if p.nrows >= cap then begin
    let grown = Array.make (max 8 (2 * cap)) dummy_row in
    Array.blit p.rows 0 grown 0 cap;
    p.rows <- grown
  end

let add_row p idx cf cmp rhs =
  if Array.length idx <> Array.length cf then
    invalid_arg "Lp.add_row: index/coefficient length mismatch";
  check_indices "Lp.add_row: variable out of range" p idx;
  ensure_row_capacity p;
  let i = p.nrows in
  p.rows.(i) <- { idx = Array.copy idx; cf = Array.copy cf; cmp; rhs };
  p.nrows <- i + 1;
  i

let set_row p i idx cf cmp rhs =
  if i < 0 || i >= p.nrows then invalid_arg "Lp.set_row: row out of range";
  if Array.length idx <> Array.length cf then
    invalid_arg "Lp.set_row: index/coefficient length mismatch";
  check_indices "Lp.set_row: variable out of range" p idx;
  p.rows.(i) <- { idx = Array.copy idx; cf = Array.copy cf; cmp; rhs }

let add_constraint p coeffs cmp rhs =
  let len = List.length coeffs in
  let idx = Array.make len 0 in
  let cf = Array.make len 0.0 in
  List.iteri
    (fun k (j, a) ->
      idx.(k) <- j;
      cf.(k) <- a)
    coeffs;
  ignore (add_row p idx cf cmp rhs)

(* ------------------------------------------------------------------ *)
(* Bounded-variable primal simplex on a dense tableau.

   Cold-solve column layout: [0, n) structural, [n, n+m) slacks,
   [n+m, n+2m) artificials.  Row i is  a_i^T x + s_i + d_i t_i = b_i
   where the slack bound encodes the comparison and d_i = ±1 makes the
   artificial start non-negative.  Phase 1 minimizes the artificial sum
   from the all-artificial basis; phase 2 minimizes the true objective
   with the artificials pinned to zero.

   Warm solves ([solve_from]) build an artificial-free tableau
   ([0, n+m) columns only), re-install a captured parent basis by
   Gauss-Jordan refactorization, repair any primal infeasibility left
   by bound/row edits with a composite Phase-1, and run Phase 2 from
   there — falling back to a cold solve on any mismatch or numerical
   trouble. *)

let eps_cost = 1e-9
let eps_ratio = 1e-9
let eps_feas = 1e-7
let max_iterations = 50_000

type tableau = {
  m : int;  (* rows *)
  ncols : int;
  tab : float array array;  (* m x ncols: current B^{-1} A_full *)
  zrow : float array;  (* reduced costs, updated by pivots *)
  rhs_col : float array;  (* B^{-1} b *)
  lob : float array;  (* per-column lower bounds *)
  hib : float array;
  xval : float array;  (* current value of every column *)
  bval : float array;  (* value of the basic variable of each row *)
  basis : int array;  (* row -> column *)
  stat : status array;  (* column -> status *)
}

(* Initial value a nonbasic column rests at. *)
let resting_value lo hi = if lo > neg_infinity then lo else if hi < infinity then hi else 0.0

let resting_status lo hi =
  if lo > neg_infinity then At_lower else if hi < infinity then At_upper else Free_zero

(* Recompute basic values from the pivoted system: for each row,
   bval = rhs - sum over nonbasic columns of tab * xval. *)
let refresh_basic_values t =
  for i = 0 to t.m - 1 do
    let acc = ref t.rhs_col.(i) in
    let row = t.tab.(i) in
    for j = 0 to t.ncols - 1 do
      if t.stat.(j) <> Basic && t.xval.(j) <> 0.0 then acc := !acc -. (row.(j) *. t.xval.(j))
    done;
    t.bval.(i) <- !acc;
    t.xval.(t.basis.(i)) <- !acc
  done

(* Rebuild the reduced-cost row for objective [c] (length ncols). *)
let refresh_cost_row t c =
  Array.blit c 0 t.zrow 0 t.ncols;
  for i = 0 to t.m - 1 do
    let cb = c.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let row = t.tab.(i) in
      for j = 0 to t.ncols - 1 do
        t.zrow.(j) <- t.zrow.(j) -. (cb *. row.(j))
      done
    end
  done

let pivot t r j =
  let prow = t.tab.(r) in
  let piv = prow.(j) in
  (* A non-finite or collapsed pivot means the tableau has degraded past
     the point where further elimination is meaningful: dividing by it
     would spray NaN/inf across the basis.  Fail loudly instead of
     looping on garbage. *)
  if not (Float.is_finite piv) || Float.abs piv < 1e-12 then
    raise
      (Numerical_failure (Printf.sprintf "pivot element %h at row %d, column %d" piv r j));
  let inv = 1.0 /. piv in
  for k = 0 to t.ncols - 1 do
    prow.(k) <- prow.(k) *. inv
  done;
  t.rhs_col.(r) <- t.rhs_col.(r) *. inv;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let row = t.tab.(i) in
      let f = row.(j) in
      if Float.abs f > 0.0 then begin
        for k = 0 to t.ncols - 1 do
          row.(k) <- row.(k) -. (f *. prow.(k))
        done;
        row.(j) <- 0.0;
        t.rhs_col.(i) <- t.rhs_col.(i) -. (f *. t.rhs_col.(r))
      end
    end
  done;
  let f = t.zrow.(j) in
  if Float.abs f > 0.0 then begin
    for k = 0 to t.ncols - 1 do
      t.zrow.(k) <- t.zrow.(k) -. (f *. prow.(k))
    done;
    t.zrow.(j) <- 0.0
  end

type step_outcome = Step_optimal | Step_unbounded | Step_continue

(* One simplex iteration.  [bland] forces Bland's rule for entering and
   leaving choices (anti-cycling); otherwise the most-improving reduced
   cost is used. *)
let simplex_step t ~bland =
  (* Entering column selection.  Fixed columns (lo = hi) can never
     improve the objective and are skipped; this is what retires the
     artificials in phase 2. *)
  let entering = ref (-1) in
  let enter_dir = ref 1.0 in
  let best = ref eps_cost in
  let consider j gain dir =
    if gain > eps_cost && (bland || gain > !best) then begin
      entering := j;
      enter_dir := dir;
      best := gain
    end
  in
  (let j = ref 0 in
   while !j < t.ncols && not (bland && !entering >= 0) do
     if t.lob.(!j) < t.hib.(!j) then begin
       let z = t.zrow.(!j) in
       match t.stat.(!j) with
       | Basic -> ()
       | At_lower -> consider !j (-.z) 1.0
       | At_upper -> consider !j z (-1.0)
       | Free_zero -> if z < 0.0 then consider !j (-.z) 1.0 else consider !j z (-1.0)
     end;
     incr j
   done);
  if !entering < 0 then Step_optimal
  else begin
    let j = !entering in
    let dir = !enter_dir in
    (* Ratio test: entering moves by t >= 0 in direction [dir]; basic i
       changes at rate delta_i = -dir * tab[i][j]. *)
    let limit = ref infinity in
    let leaving = ref (-1) in
    let leaving_to_upper = ref false in
    for i = 0 to t.m - 1 do
      let alpha = t.tab.(i).(j) in
      let delta = -.dir *. alpha in
      if delta > eps_ratio then begin
        let b = t.basis.(i) in
        let room = t.hib.(b) -. t.bval.(i) in
        let ratio = if room <= 0.0 then 0.0 else room /. delta in
        if
          ratio < !limit -. eps_ratio
          || (ratio < !limit +. eps_ratio && !leaving >= 0 && t.basis.(i) < t.basis.(!leaving))
        then begin
          limit := Float.max 0.0 ratio;
          leaving := i;
          leaving_to_upper := true
        end
      end
      else if delta < -.eps_ratio then begin
        let b = t.basis.(i) in
        let room = t.bval.(i) -. t.lob.(b) in
        let ratio = if room <= 0.0 then 0.0 else room /. -.delta in
        if
          ratio < !limit -. eps_ratio
          || (ratio < !limit +. eps_ratio && !leaving >= 0 && t.basis.(i) < t.basis.(!leaving))
        then begin
          limit := Float.max 0.0 ratio;
          leaving := i;
          leaving_to_upper := false
        end
      end
    done;
    (* The entering variable's own opposite bound can also bind. *)
    let own_span = t.hib.(j) -. t.lob.(j) in
    let flip = own_span < !limit -. eps_ratio in
    if flip then begin
      (* Bound flip: no basis change. *)
      let step = dir *. own_span in
      for i = 0 to t.m - 1 do
        let alpha = t.tab.(i).(j) in
        if alpha <> 0.0 then begin
          t.bval.(i) <- t.bval.(i) -. (alpha *. step);
          t.xval.(t.basis.(i)) <- t.bval.(i)
        end
      done;
      t.xval.(j) <- (if dir > 0.0 then t.hib.(j) else t.lob.(j));
      t.stat.(j) <- (if dir > 0.0 then At_upper else At_lower);
      Step_continue
    end
    else if !leaving < 0 then Step_unbounded
    else begin
      let r = !leaving in
      let step = dir *. !limit in
      (* Move all basic values, then swap basis. *)
      for i = 0 to t.m - 1 do
        if i <> r then begin
          let alpha = t.tab.(i).(j) in
          if alpha <> 0.0 then begin
            t.bval.(i) <- t.bval.(i) -. (alpha *. step);
            t.xval.(t.basis.(i)) <- t.bval.(i)
          end
        end
      done;
      let out = t.basis.(r) in
      let out_value = if !leaving_to_upper then t.hib.(out) else t.lob.(out) in
      t.xval.(out) <- out_value;
      t.stat.(out) <- (if !leaving_to_upper then At_upper else At_lower);
      let enter_value = t.xval.(j) +. step in
      pivot t r j;
      t.basis.(r) <- j;
      t.stat.(j) <- Basic;
      t.xval.(j) <- enter_value;
      t.bval.(r) <- enter_value;
      Step_continue
    end
  end

(* NaN anywhere in the basic values or reduced costs silently corrupts
   the entering/leaving choices (every comparison against NaN is false),
   so the loop would either cycle forever or stop at a garbage "optimum".
   Checked at the same cadence as the periodic refresh. *)
let check_tableau_finite t =
  for i = 0 to t.m - 1 do
    if Float.is_nan t.bval.(i) || Float.is_nan t.rhs_col.(i) then
      raise (Numerical_failure (Printf.sprintf "non-finite basic value in row %d" i))
  done;
  for j = 0 to t.ncols - 1 do
    if Float.is_nan t.zrow.(j) then
      raise (Numerical_failure (Printf.sprintf "non-finite reduced cost in column %d" j))
  done

(* Run simplex iterations to optimality for the current cost row,
   accumulating the iteration count into [counter]. *)
let optimize t ~counter =
  let iter = ref 0 in
  let degenerate_streak = ref 0 in
  let finished = ref None in
  while !finished = None do
    incr iter;
    if !iter > max_iterations then raise Iteration_limit;
    if !iter mod 64 = 0 then begin
      refresh_basic_values t;
      check_tableau_finite t
    end;
    let bland = !degenerate_streak > 2 * (t.m + 1) in
    let before = Array.copy t.bval in
    (match simplex_step t ~bland with
    | Step_optimal -> finished := Some `Optimal
    | Step_unbounded -> finished := Some `Unbounded
    | Step_continue ->
        incr counter;
        let moved = ref false in
        for i = 0 to t.m - 1 do
          if Float.abs (t.bval.(i) -. before.(i)) > eps_ratio then moved := true
        done;
        if !moved then degenerate_streak := 0 else incr degenerate_streak)
  done;
  match !finished with Some `Optimal -> `Optimal | Some `Unbounded -> `Unbounded | None -> assert false

(* Reject problems that are already numerically corrupt.  Infinite
   variable bounds are legal (they mean "unbounded in that direction"),
   but NaN bounds and non-finite coefficients or right-hand sides have no
   meaning the simplex could preserve. *)
let validate_problem p =
  for j = 0 to p.nvars - 1 do
    if Float.is_nan p.lo.(j) || Float.is_nan p.hi.(j) then
      raise (Numerical_failure (Printf.sprintf "NaN bound on variable %d" j));
    if not (Float.is_finite p.obj.(j)) then
      raise (Numerical_failure (Printf.sprintf "non-finite objective coefficient on variable %d" j))
  done;
  for i = 0 to p.nrows - 1 do
    let r = p.rows.(i) in
    if not (Float.is_finite r.rhs) then raise (Numerical_failure "non-finite constraint rhs");
    Array.iteri
      (fun k a ->
        if not (Float.is_finite a) then
          raise
            (Numerical_failure (Printf.sprintf "non-finite coefficient on variable %d" r.idx.(k))))
      r.cf
  done

(* Snapshot the optimal basis.  A degenerate optimum can leave an
   artificial column basic at zero; artificials do not exist on the
   warm tableau, so such a row's basic column is substituted with the
   row's own slack when that slack is nonbasic.  The substituted
   snapshot is no longer the exact optimal basis, only a near-identical
   starting point — which is all the warm path needs, and a singular
   substitution makes the child's refactorization fall back to a cold
   solve anyway.  Only a row whose slack is already basic elsewhere
   (impossible to substitute) declines the capture. *)
let capture_basis p t =
  let n = p.nvars in
  let m = p.nrows in
  let basics = Array.sub t.basis 0 m in
  let statuses = Array.sub t.stat 0 (n + m) in
  let ok = ref true in
  for i = 0 to m - 1 do
    if basics.(i) >= n + m then begin
      let s = n + i in
      if statuses.(s) <> Basic then begin
        basics.(i) <- s;
        statuses.(s) <- Basic
      end
      else ok := false
    end
  done;
  if not !ok then None else Some { Basis.nvars = n; nrows = m; basics; statuses }

(* Row multipliers implied by the current reduced-cost row.  The slack
   of row i appears only in row i, with coefficient +1 on warm tableaus
   and the phase-1 scaling sign on cold ones; either way the scaling
   cancels and the slack's reduced cost is the negated multiplier of
   the row in its {e natural} orientation, so y_i = -zrow(n+i)
   uniformly.  Multipliers are clamped to the sign their comparison
   admits: simplex tolerances can leave a wrong-signed residue of order
   [eps_cost] which exact certificate checking would reject, and
   clamping only ever weakens the certified bound. *)
let extract_multipliers p t =
  let n = p.nvars in
  Array.init p.nrows (fun i ->
      let v = -.t.zrow.(n + i) in
      match p.rows.(i).cmp with
      | Le -> Float.min 0.0 v
      | Ge -> Float.max 0.0 v
      | Eq -> v)

let solve_cold ?(warm_note = Cold) p =
  validate_problem p;
  let n = p.nvars in
  let m = p.nrows in
  let rows = p.rows in
  let ncols = n + m + m in
  let lob = Array.make ncols 0.0 in
  let hib = Array.make ncols 0.0 in
  Array.blit p.lo 0 lob 0 n;
  Array.blit p.hi 0 hib 0 n;
  for i = 0 to m - 1 do
    (* Slack bounds encode the comparison. *)
    let slo, shi =
      match rows.(i).cmp with Le -> (0.0, infinity) | Ge -> (neg_infinity, 0.0) | Eq -> (0.0, 0.0)
    in
    lob.(n + i) <- slo;
    hib.(n + i) <- shi;
    (* Artificials: [0, inf) during phase 1. *)
    lob.(n + m + i) <- 0.0;
    hib.(n + m + i) <- infinity
  done;
  let stat = Array.make ncols At_lower in
  let xval = Array.make ncols 0.0 in
  for j = 0 to n + m - 1 do
    stat.(j) <- resting_status lob.(j) hib.(j);
    xval.(j) <- resting_value lob.(j) hib.(j)
  done;
  (* Residual of each row at the resting point (slack at zero).  Rows
     whose residual fits inside the slack's own bounds start with the
     slack basic — no artificial needed; only the remaining rows get an
     artificial, and phase 1 is skipped entirely when there are none. *)
  let resid = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let r = rows.(i) in
    let acc = ref r.rhs in
    for k = 0 to Array.length r.idx - 1 do
      acc := !acc -. (r.cf.(k) *. xval.(r.idx.(k)))
    done;
    resid.(i) <- !acc
  done;
  let tab = Array.make_matrix m ncols 0.0 in
  let rhs_col = Array.make m 0.0 in
  let basis = Array.make m 0 in
  let bval = Array.make m 0.0 in
  let artificial_rows = ref 0 in
  for i = 0 to m - 1 do
    let r = rows.(i) in
    let slack_feasible = resid.(i) >= lob.(n + i) -. 1e-12 && resid.(i) <= hib.(n + i) +. 1e-12 in
    if slack_feasible then begin
      (* Slack basis: row stays in its natural orientation; the
         artificial column is unused and pinned at 0. *)
      for k = 0 to Array.length r.idx - 1 do
        tab.(i).(r.idx.(k)) <- tab.(i).(r.idx.(k)) +. r.cf.(k)
      done;
      tab.(i).(n + i) <- 1.0;
      rhs_col.(i) <- r.rhs;
      basis.(i) <- n + i;
      stat.(n + i) <- Basic;
      hib.(n + m + i) <- 0.0;
      bval.(i) <- resid.(i);
      xval.(n + i) <- resid.(i)
    end
    else begin
      incr artificial_rows;
      let sign = if resid.(i) >= 0.0 then 1.0 else -1.0 in
      for k = 0 to Array.length r.idx - 1 do
        tab.(i).(r.idx.(k)) <- tab.(i).(r.idx.(k)) +. (sign *. r.cf.(k))
      done;
      tab.(i).(n + i) <- sign;
      tab.(i).(n + m + i) <- 1.0;
      rhs_col.(i) <- sign *. r.rhs;
      basis.(i) <- n + m + i;
      stat.(n + m + i) <- Basic;
      bval.(i) <- Float.abs resid.(i);
      xval.(n + m + i) <- bval.(i)
    end
  done;
  let t =
    { m; ncols; tab; zrow = Array.make ncols 0.0; rhs_col; lob; hib; xval; bval; basis; stat }
  in
  let counter = ref 0 in
  let used_phase1 = !artificial_rows > 0 in
  let record ?certificate result =
    p.last_stats <-
      Some { pivots = !counter; factor_pivots = 0; phase1 = used_phase1; warm = warm_note };
    p.last_basis <- (match result with Optimal _ -> capture_basis p t | _ -> None);
    p.last_certificate <- certificate;
    result
  in
  (* Phase 1: minimize the artificial sum (skipped when the slack basis
     is already feasible). *)
  let infeasible =
    used_phase1
    && begin
         let phase1_cost = Array.make ncols 0.0 in
         for i = 0 to m - 1 do
           phase1_cost.(n + m + i) <- 1.0
         done;
         refresh_cost_row t phase1_cost;
         (match optimize t ~counter with
         | `Optimal -> ()
         | `Unbounded ->
             (* The phase-1 objective is bounded below by 0; reaching
                here means numerical trouble, which we surface as a
                solver failure. *)
             raise Iteration_limit);
         refresh_basic_values t;
         let infeasibility = ref 0.0 in
         for i = 0 to m - 1 do
           infeasibility := !infeasibility +. Float.max 0.0 t.xval.(n + m + i)
         done;
         !infeasibility > eps_feas
       end
  in
  (* On infeasibility the cost row still holds the phase-1 reduced
     costs, whose multipliers are exactly a Farkas witness. *)
  if infeasible then record ~certificate:(Certificate.Farkas (extract_multipliers p t)) Infeasible
  else begin
    (* Pin artificials at zero and install the true objective. *)
    for i = 0 to m - 1 do
      lob.(n + m + i) <- 0.0;
      hib.(n + m + i) <- 0.0;
      if t.stat.(n + m + i) <> Basic then begin
        t.stat.(n + m + i) <- At_lower;
        t.xval.(n + m + i) <- 0.0
      end
    done;
    let phase2_cost = Array.make ncols 0.0 in
    Array.blit p.obj 0 phase2_cost 0 n;
    refresh_cost_row t phase2_cost;
    match optimize t ~counter with
    | `Unbounded -> record Unbounded
    | `Optimal ->
        refresh_basic_values t;
        let primal = Array.sub t.xval 0 n in
        let objective = ref 0.0 in
        for j = 0 to n - 1 do
          objective := !objective +. (p.obj.(j) *. primal.(j))
        done;
        let certificate = Certificate.Dual (extract_multipliers p t) in
        record ~certificate
          (Optimal { objective = !objective; primal; certificate = Some certificate })
  end

let solve p =
  run_hook p;
  solve_cold p

(* ------------------------------------------------------------------ *)
(* Warm start *)

exception Warm_bail

(* Artificial-free tableau over structural + slack columns, rows in
   their natural orientation with the slack identity in place. *)
let build_warm_tableau p =
  let n = p.nvars in
  let m = p.nrows in
  let ncols = n + m in
  let lob = Array.make ncols 0.0 in
  let hib = Array.make ncols 0.0 in
  Array.blit p.lo 0 lob 0 n;
  Array.blit p.hi 0 hib 0 n;
  let tab = Array.make_matrix m ncols 0.0 in
  let rhs_col = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let r = p.rows.(i) in
    let slo, shi =
      match r.cmp with Le -> (0.0, infinity) | Ge -> (neg_infinity, 0.0) | Eq -> (0.0, 0.0)
    in
    lob.(n + i) <- slo;
    hib.(n + i) <- shi;
    for k = 0 to Array.length r.idx - 1 do
      tab.(i).(r.idx.(k)) <- tab.(i).(r.idx.(k)) +. r.cf.(k)
    done;
    tab.(i).(n + i) <- 1.0;
    rhs_col.(i) <- r.rhs
  done;
  {
    m;
    ncols;
    tab;
    zrow = Array.make ncols 0.0;
    rhs_col;
    lob;
    hib;
    xval = Array.make ncols 0.0;
    bval = Array.make m 0.0;
    basis = Array.make m 0;
    stat = Array.make ncols At_lower;
  }

(* Re-derive every nonbasic column's value from its status against the
   problem's CURRENT bounds: bounds may have moved since the basis was
   captured, and the feasibility repair below parks leavers at temporary
   working bounds.  Statuses pointing at a bound that no longer exists
   are downgraded to the resting status. *)
let normalize_nonbasic t =
  for j = 0 to t.ncols - 1 do
    if t.stat.(j) <> Basic then begin
      (match t.stat.(j) with
      | At_lower when t.lob.(j) > neg_infinity -> t.xval.(j) <- t.lob.(j)
      | At_upper when t.hib.(j) < infinity -> t.xval.(j) <- t.hib.(j)
      | Free_zero when t.lob.(j) = neg_infinity && t.hib.(j) = infinity -> t.xval.(j) <- 0.0
      | _ ->
          t.stat.(j) <- resting_status t.lob.(j) t.hib.(j);
          t.xval.(j) <- resting_value t.lob.(j) t.hib.(j));
      ()
    end
  done

let basics_within_bounds t =
  let ok = ref true in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    let v = t.bval.(i) in
    if v < t.lob.(b) -. eps_feas || v > t.hib.(b) +. eps_feas then ok := false
  done;
  !ok

(* Install a captured basis on a fresh warm tableau and bring the
   tableau to that basis by Gauss-Jordan elimination.  Rows whose basic
   column is their own slack are already unit-pivoted (the slack column
   appears in no other row, so later pivots never disturb them); the
   remaining rows are pivoted greedily on the largest available pivot
   element.  When every remaining row's recorded column has collapsed —
   typically a row rewritten by {!set_row} since the capture, e.g. a
   ReLU constraint slot gone vacuous at this node — the basis is
   repaired locally: such a row takes its own slack as basic (a unit
   coefficient while the row is unpivoted) and the recorded column is
   demoted to nonbasic.  Only when no repair applies either is the
   snapshot truly singular for the current rows — bail to a cold
   solve. *)
let refactorize t (b : Basis.t) ~factor_counter =
  let m = t.m in
  let n = t.ncols - m in
  Array.blit b.Basis.basics 0 t.basis 0 m;
  Array.blit b.Basis.statuses 0 t.stat 0 t.ncols;
  (* Sanity: basics are distinct, in range, and agree with statuses. *)
  let is_basic = Array.make t.ncols false in
  Array.iter
    (fun c ->
      if c < 0 || c >= t.ncols then raise Warm_bail;
      if is_basic.(c) then raise Warm_bail;
      is_basic.(c) <- true)
    b.Basis.basics;
  for j = 0 to t.ncols - 1 do
    if is_basic.(j) <> (t.stat.(j) = Basic) then raise Warm_bail
  done;
  let pending = ref [] in
  for i = m - 1 downto 0 do
    if t.basis.(i) <> n + i then pending := i :: !pending
  done;
  while !pending <> [] do
    let best_r = ref (-1) in
    let best_mag = ref 0.0 in
    List.iter
      (fun r ->
        let mag = Float.abs t.tab.(r).(t.basis.(r)) in
        if mag > !best_mag then begin
          best_r := r;
          best_mag := mag
        end)
      !pending;
    let r =
      if !best_r >= 0 && !best_mag >= 1e-9 then !best_r
      else begin
        (* Stuck: repair one stuck row with its own slack. *)
        let candidate = ref (-1) in
        List.iter
          (fun r ->
            if
              !candidate < 0
              && (not is_basic.(n + r))
              && Float.abs t.tab.(r).(n + r) >= 1e-9
            then candidate := r)
          !pending;
        if !candidate < 0 then raise Warm_bail;
        let r = !candidate in
        let old = t.basis.(r) in
        is_basic.(old) <- false;
        t.stat.(old) <- resting_status t.lob.(old) t.hib.(old);
        is_basic.(n + r) <- true;
        t.stat.(n + r) <- Basic;
        t.basis.(r) <- n + r;
        r
      end
    in
    pivot t r t.basis.(r);
    incr factor_counter;
    pending := List.filter (fun i -> i <> r) !pending
  done

(* Composite Phase-1 from the installed basis: basic variables pushed
   outside their bounds by the edits since capture are driven back by
   minimizing the sum of violations.  Each round extends the violated
   variables' working bounds to their current values (so the search can
   only improve them) and prices +/-1 on the violation direction; the
   true bounds are restored before checking again.  Rounds are bounded —
   persistent violation means the parent basis is a bad starting point
   and the caller should solve cold. *)
let repair_primal t ~counter =
  let max_rounds = t.m + 8 in
  let rounds = ref 0 in
  let cost = Array.make t.ncols 0.0 in
  refresh_basic_values t;
  while not (basics_within_bounds t) do
    incr rounds;
    if !rounds > max_rounds then raise Warm_bail;
    Array.fill cost 0 t.ncols 0.0;
    let saved = ref [] in
    for i = 0 to t.m - 1 do
      let b = t.basis.(i) in
      let v = t.bval.(i) in
      if v < t.lob.(b) -. eps_feas then begin
        saved := (b, t.lob.(b), t.hib.(b)) :: !saved;
        cost.(b) <- -1.0;
        t.lob.(b) <- v
      end
      else if v > t.hib.(b) +. eps_feas then begin
        saved := (b, t.lob.(b), t.hib.(b)) :: !saved;
        cost.(b) <- 1.0;
        t.hib.(b) <- v
      end
    done;
    refresh_cost_row t cost;
    let outcome = optimize t ~counter in
    List.iter (fun (b, lo, hi) ->
        t.lob.(b) <- lo;
        t.hib.(b) <- hi)
      !saved;
    (match outcome with `Unbounded -> raise Warm_bail | `Optimal -> ());
    normalize_nonbasic t;
    refresh_basic_values t
  done

let warm_attempt p (b : Basis.t) =
  if b.Basis.nvars <> p.nvars || b.Basis.nrows <> p.nrows then None
  else
    match
      validate_problem p;
      let t = build_warm_tableau p in
      let counter = ref 0 in
      let factor_counter = ref 0 in
      refactorize t b ~factor_counter;
      normalize_nonbasic t;
      repair_primal t ~counter;
      (* Phase 2 from the repaired parent basis. *)
      let cost = Array.make t.ncols 0.0 in
      Array.blit p.obj 0 cost 0 p.nvars;
      refresh_cost_row t cost;
      (match optimize t ~counter with
      | `Unbounded ->
          (* Node LPs are bounded; an unbounded claim from a recycled
             basis is more likely numerical drift than truth.  Certify
             it with a cold solve instead. *)
          raise Warm_bail
      | `Optimal -> ());
      refresh_basic_values t;
      if not (basics_within_bounds t) then raise Warm_bail;
      let n = p.nvars in
      let primal = Array.sub t.xval 0 n in
      let objective = ref 0.0 in
      for j = 0 to n - 1 do
        objective := !objective +. (p.obj.(j) *. primal.(j))
      done;
      let certificate = Some (Certificate.Dual (extract_multipliers p t)) in
      (Optimal { objective = !objective; primal; certificate }, !counter, !factor_counter, t)
    with
    | exception Warm_bail -> None
    | exception Numerical_failure _ -> None
    | exception Iteration_limit -> None
    | outcome -> Some outcome

let solve_from p b =
  run_hook p;
  match warm_attempt p b with
  | Some (result, pivots, factor_pivots, t) ->
      p.last_stats <- Some { pivots; factor_pivots; phase1 = false; warm = Warm_hit };
      p.last_basis <- capture_basis p t;
      p.last_certificate <- (match result with Optimal s -> s.certificate | _ -> None);
      result
  | None -> solve_cold ~warm_note:Warm_miss p

let pp_result fmt = function
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Unbounded -> Format.fprintf fmt "unbounded"
  | Optimal { objective; primal; _ } ->
      Format.fprintf fmt "optimal %g at %a" objective Ivan_tensor.Vec.pp primal
