type cmp = Le | Ge | Eq

type row = { coeffs : (int * float) list; cmp : cmp; rhs : float }

type problem = {
  nvars : int;
  mutable obj : float array;
  lo : float array;
  hi : float array;
  mutable rows_rev : row list;
  mutable nrows : int;
}

type solution = { objective : float; primal : float array }

type result = Optimal of solution | Infeasible | Unbounded

exception Iteration_limit

exception Numerical_failure of string

(* Observation/injection point for every [solve] call.  The resilience
   layer installs a hook here to run deterministic fault campaigns;
   production code leaves it at [None].  A plain ref, not domain-safe:
   fault injection is a single-domain testing facility. *)
let solve_hook : (problem -> unit) option ref = ref None

let set_solve_hook h = solve_hook := h

let create n =
  if n < 0 then invalid_arg "Lp.create: negative variable count";
  {
    nvars = n;
    obj = Array.make n 0.0;
    lo = Array.make n neg_infinity;
    hi = Array.make n infinity;
    rows_rev = [];
    nrows = 0;
  }

let num_vars p = p.nvars

let num_rows p = p.nrows

let set_objective p c =
  if Array.length c <> p.nvars then invalid_arg "Lp.set_objective: dimension mismatch";
  p.obj <- Array.copy c

let set_bounds p j lo hi =
  if j < 0 || j >= p.nvars then invalid_arg "Lp.set_bounds: variable out of range";
  if lo > hi then invalid_arg "Lp.set_bounds: lo > hi";
  p.lo.(j) <- lo;
  p.hi.(j) <- hi

let get_bounds p j =
  if j < 0 || j >= p.nvars then invalid_arg "Lp.get_bounds: variable out of range";
  (p.lo.(j), p.hi.(j))

let add_constraint p coeffs cmp rhs =
  List.iter
    (fun (j, _) -> if j < 0 || j >= p.nvars then invalid_arg "Lp.add_constraint: variable out of range")
    coeffs;
  p.rows_rev <- { coeffs; cmp; rhs } :: p.rows_rev;
  p.nrows <- p.nrows + 1

(* ------------------------------------------------------------------ *)
(* Bounded-variable primal simplex on a dense tableau.

   Column layout: [0, n) structural, [n, n+m) slacks, [n+m, n+2m)
   artificials.  Row i is  a_i^T x + s_i + d_i t_i = b_i  where the slack
   bound encodes the comparison and d_i = ±1 makes the artificial start
   non-negative.  Phase 1 minimizes the artificial sum from the all-
   artificial basis; phase 2 minimizes the true objective with the
   artificials pinned to zero. *)

type status = Basic | At_lower | At_upper | Free_zero

let eps_cost = 1e-9
let eps_ratio = 1e-9
let eps_feas = 1e-7
let max_iterations = 50_000

type tableau = {
  m : int;  (* rows *)
  ncols : int;
  tab : float array array;  (* m x ncols: current B^{-1} A_full *)
  zrow : float array;  (* reduced costs, updated by pivots *)
  rhs_col : float array;  (* B^{-1} b *)
  lob : float array;  (* per-column lower bounds *)
  hib : float array;
  xval : float array;  (* current value of every column *)
  bval : float array;  (* value of the basic variable of each row *)
  basis : int array;  (* row -> column *)
  stat : status array;  (* column -> status *)
}

(* Initial value a nonbasic column rests at. *)
let resting_value lo hi = if lo > neg_infinity then lo else if hi < infinity then hi else 0.0

let resting_status lo hi =
  if lo > neg_infinity then At_lower else if hi < infinity then At_upper else Free_zero

(* Recompute basic values from the pivoted system: for each row,
   bval = rhs - sum over nonbasic columns of tab * xval. *)
let refresh_basic_values t =
  for i = 0 to t.m - 1 do
    let acc = ref t.rhs_col.(i) in
    let row = t.tab.(i) in
    for j = 0 to t.ncols - 1 do
      if t.stat.(j) <> Basic && t.xval.(j) <> 0.0 then acc := !acc -. (row.(j) *. t.xval.(j))
    done;
    t.bval.(i) <- !acc;
    t.xval.(t.basis.(i)) <- !acc
  done

(* Rebuild the reduced-cost row for objective [c] (length ncols). *)
let refresh_cost_row t c =
  Array.blit c 0 t.zrow 0 t.ncols;
  for i = 0 to t.m - 1 do
    let cb = c.(t.basis.(i)) in
    if cb <> 0.0 then begin
      let row = t.tab.(i) in
      for j = 0 to t.ncols - 1 do
        t.zrow.(j) <- t.zrow.(j) -. (cb *. row.(j))
      done
    end
  done

let pivot t r j =
  let prow = t.tab.(r) in
  let piv = prow.(j) in
  (* A non-finite or collapsed pivot means the tableau has degraded past
     the point where further elimination is meaningful: dividing by it
     would spray NaN/inf across the basis.  Fail loudly instead of
     looping on garbage. *)
  if not (Float.is_finite piv) || Float.abs piv < 1e-12 then
    raise
      (Numerical_failure (Printf.sprintf "pivot element %h at row %d, column %d" piv r j));
  let inv = 1.0 /. piv in
  for k = 0 to t.ncols - 1 do
    prow.(k) <- prow.(k) *. inv
  done;
  t.rhs_col.(r) <- t.rhs_col.(r) *. inv;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let row = t.tab.(i) in
      let f = row.(j) in
      if Float.abs f > 0.0 then begin
        for k = 0 to t.ncols - 1 do
          row.(k) <- row.(k) -. (f *. prow.(k))
        done;
        row.(j) <- 0.0;
        t.rhs_col.(i) <- t.rhs_col.(i) -. (f *. t.rhs_col.(r))
      end
    end
  done;
  let f = t.zrow.(j) in
  if Float.abs f > 0.0 then begin
    for k = 0 to t.ncols - 1 do
      t.zrow.(k) <- t.zrow.(k) -. (f *. prow.(k))
    done;
    t.zrow.(j) <- 0.0
  end

type step_outcome = Step_optimal | Step_unbounded | Step_continue

(* One simplex iteration.  [bland] forces Bland's rule for entering and
   leaving choices (anti-cycling); otherwise the most-improving reduced
   cost is used. *)
let simplex_step t ~bland =
  (* Entering column selection.  Fixed columns (lo = hi) can never
     improve the objective and are skipped; this is what retires the
     artificials in phase 2. *)
  let entering = ref (-1) in
  let enter_dir = ref 1.0 in
  let best = ref eps_cost in
  let consider j gain dir =
    if gain > eps_cost && (bland || gain > !best) then begin
      entering := j;
      enter_dir := dir;
      best := gain
    end
  in
  (let j = ref 0 in
   while !j < t.ncols && not (bland && !entering >= 0) do
     if t.lob.(!j) < t.hib.(!j) then begin
       let z = t.zrow.(!j) in
       match t.stat.(!j) with
       | Basic -> ()
       | At_lower -> consider !j (-.z) 1.0
       | At_upper -> consider !j z (-1.0)
       | Free_zero -> if z < 0.0 then consider !j (-.z) 1.0 else consider !j z (-1.0)
     end;
     incr j
   done);
  if !entering < 0 then Step_optimal
  else begin
    let j = !entering in
    let dir = !enter_dir in
    (* Ratio test: entering moves by t >= 0 in direction [dir]; basic i
       changes at rate delta_i = -dir * tab[i][j]. *)
    let limit = ref infinity in
    let leaving = ref (-1) in
    let leaving_to_upper = ref false in
    for i = 0 to t.m - 1 do
      let alpha = t.tab.(i).(j) in
      let delta = -.dir *. alpha in
      if delta > eps_ratio then begin
        let b = t.basis.(i) in
        let room = t.hib.(b) -. t.bval.(i) in
        let ratio = if room <= 0.0 then 0.0 else room /. delta in
        if
          ratio < !limit -. eps_ratio
          || (ratio < !limit +. eps_ratio && !leaving >= 0 && t.basis.(i) < t.basis.(!leaving))
        then begin
          limit := Float.max 0.0 ratio;
          leaving := i;
          leaving_to_upper := true
        end
      end
      else if delta < -.eps_ratio then begin
        let b = t.basis.(i) in
        let room = t.bval.(i) -. t.lob.(b) in
        let ratio = if room <= 0.0 then 0.0 else room /. -.delta in
        if
          ratio < !limit -. eps_ratio
          || (ratio < !limit +. eps_ratio && !leaving >= 0 && t.basis.(i) < t.basis.(!leaving))
        then begin
          limit := Float.max 0.0 ratio;
          leaving := i;
          leaving_to_upper := false
        end
      end
    done;
    (* The entering variable's own opposite bound can also bind. *)
    let own_span = t.hib.(j) -. t.lob.(j) in
    let flip = own_span < !limit -. eps_ratio in
    if flip then begin
      (* Bound flip: no basis change. *)
      let step = dir *. own_span in
      for i = 0 to t.m - 1 do
        let alpha = t.tab.(i).(j) in
        if alpha <> 0.0 then begin
          t.bval.(i) <- t.bval.(i) -. (alpha *. step);
          t.xval.(t.basis.(i)) <- t.bval.(i)
        end
      done;
      t.xval.(j) <- (if dir > 0.0 then t.hib.(j) else t.lob.(j));
      t.stat.(j) <- (if dir > 0.0 then At_upper else At_lower);
      Step_continue
    end
    else if !leaving < 0 then Step_unbounded
    else begin
      let r = !leaving in
      let step = dir *. !limit in
      (* Move all basic values, then swap basis. *)
      for i = 0 to t.m - 1 do
        if i <> r then begin
          let alpha = t.tab.(i).(j) in
          if alpha <> 0.0 then begin
            t.bval.(i) <- t.bval.(i) -. (alpha *. step);
            t.xval.(t.basis.(i)) <- t.bval.(i)
          end
        end
      done;
      let out = t.basis.(r) in
      let out_value = if !leaving_to_upper then t.hib.(out) else t.lob.(out) in
      t.xval.(out) <- out_value;
      t.stat.(out) <- (if !leaving_to_upper then At_upper else At_lower);
      let enter_value = t.xval.(j) +. step in
      pivot t r j;
      t.basis.(r) <- j;
      t.stat.(j) <- Basic;
      t.xval.(j) <- enter_value;
      t.bval.(r) <- enter_value;
      Step_continue
    end
  end

(* NaN anywhere in the basic values or reduced costs silently corrupts
   the entering/leaving choices (every comparison against NaN is false),
   so the loop would either cycle forever or stop at a garbage "optimum".
   Checked at the same cadence as the periodic refresh. *)
let check_tableau_finite t =
  for i = 0 to t.m - 1 do
    if Float.is_nan t.bval.(i) || Float.is_nan t.rhs_col.(i) then
      raise (Numerical_failure (Printf.sprintf "non-finite basic value in row %d" i))
  done;
  for j = 0 to t.ncols - 1 do
    if Float.is_nan t.zrow.(j) then
      raise (Numerical_failure (Printf.sprintf "non-finite reduced cost in column %d" j))
  done

(* Run simplex iterations to optimality for the current cost row. *)
let optimize t =
  let iter = ref 0 in
  let degenerate_streak = ref 0 in
  let finished = ref None in
  while !finished = None do
    incr iter;
    if !iter > max_iterations then raise Iteration_limit;
    if !iter mod 64 = 0 then begin
      refresh_basic_values t;
      check_tableau_finite t
    end;
    let bland = !degenerate_streak > 2 * (t.m + 1) in
    let before = Array.copy t.bval in
    (match simplex_step t ~bland with
    | Step_optimal -> finished := Some `Optimal
    | Step_unbounded -> finished := Some `Unbounded
    | Step_continue ->
        let moved = ref false in
        for i = 0 to t.m - 1 do
          if Float.abs (t.bval.(i) -. before.(i)) > eps_ratio then moved := true
        done;
        if !moved then degenerate_streak := 0 else incr degenerate_streak)
  done;
  match !finished with Some `Optimal -> `Optimal | Some `Unbounded -> `Unbounded | None -> assert false

(* Reject problems that are already numerically corrupt.  Infinite
   variable bounds are legal (they mean "unbounded in that direction"),
   but NaN bounds and non-finite coefficients or right-hand sides have no
   meaning the simplex could preserve. *)
let validate_problem p =
  for j = 0 to p.nvars - 1 do
    if Float.is_nan p.lo.(j) || Float.is_nan p.hi.(j) then
      raise (Numerical_failure (Printf.sprintf "NaN bound on variable %d" j));
    if not (Float.is_finite p.obj.(j)) then
      raise (Numerical_failure (Printf.sprintf "non-finite objective coefficient on variable %d" j))
  done;
  List.iter
    (fun { coeffs; rhs; _ } ->
      if not (Float.is_finite rhs) then raise (Numerical_failure "non-finite constraint rhs");
      List.iter
        (fun (j, a) ->
          if not (Float.is_finite a) then
            raise (Numerical_failure (Printf.sprintf "non-finite coefficient on variable %d" j)))
        coeffs)
    p.rows_rev

let solve p =
  (match !solve_hook with Some f -> f p | None -> ());
  validate_problem p;
  let n = p.nvars in
  let m = p.nrows in
  let rows = Array.of_list (List.rev p.rows_rev) in
  let ncols = n + m + m in
  let lob = Array.make ncols 0.0 in
  let hib = Array.make ncols 0.0 in
  Array.blit p.lo 0 lob 0 n;
  Array.blit p.hi 0 hib 0 n;
  for i = 0 to m - 1 do
    (* Slack bounds encode the comparison. *)
    let slo, shi =
      match rows.(i).cmp with Le -> (0.0, infinity) | Ge -> (neg_infinity, 0.0) | Eq -> (0.0, 0.0)
    in
    lob.(n + i) <- slo;
    hib.(n + i) <- shi;
    (* Artificials: [0, inf) during phase 1. *)
    lob.(n + m + i) <- 0.0;
    hib.(n + m + i) <- infinity
  done;
  let stat = Array.make ncols At_lower in
  let xval = Array.make ncols 0.0 in
  for j = 0 to n + m - 1 do
    stat.(j) <- resting_status lob.(j) hib.(j);
    xval.(j) <- resting_value lob.(j) hib.(j)
  done;
  (* Residual of each row at the resting point (slack at zero).  Rows
     whose residual fits inside the slack's own bounds start with the
     slack basic — no artificial needed; only the remaining rows get an
     artificial, and phase 1 is skipped entirely when there are none. *)
  let resid = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let acc = ref rows.(i).rhs in
    List.iter (fun (j, a) -> acc := !acc -. (a *. xval.(j))) rows.(i).coeffs;
    resid.(i) <- !acc
  done;
  let tab = Array.make_matrix m ncols 0.0 in
  let rhs_col = Array.make m 0.0 in
  let basis = Array.make m 0 in
  let bval = Array.make m 0.0 in
  let artificial_rows = ref 0 in
  for i = 0 to m - 1 do
    let slack_feasible = resid.(i) >= lob.(n + i) -. 1e-12 && resid.(i) <= hib.(n + i) +. 1e-12 in
    if slack_feasible then begin
      (* Slack basis: row stays in its natural orientation; the
         artificial column is unused and pinned at 0. *)
      List.iter (fun (j, a) -> tab.(i).(j) <- tab.(i).(j) +. a) rows.(i).coeffs;
      tab.(i).(n + i) <- 1.0;
      rhs_col.(i) <- rows.(i).rhs;
      basis.(i) <- n + i;
      stat.(n + i) <- Basic;
      hib.(n + m + i) <- 0.0;
      bval.(i) <- resid.(i);
      xval.(n + i) <- resid.(i)
    end
    else begin
      incr artificial_rows;
      let sign = if resid.(i) >= 0.0 then 1.0 else -1.0 in
      List.iter (fun (j, a) -> tab.(i).(j) <- tab.(i).(j) +. (sign *. a)) rows.(i).coeffs;
      tab.(i).(n + i) <- sign;
      tab.(i).(n + m + i) <- 1.0;
      rhs_col.(i) <- sign *. rows.(i).rhs;
      basis.(i) <- n + m + i;
      stat.(n + m + i) <- Basic;
      bval.(i) <- Float.abs resid.(i);
      xval.(n + m + i) <- bval.(i)
    end
  done;
  let t =
    { m; ncols; tab; zrow = Array.make ncols 0.0; rhs_col; lob; hib; xval; bval; basis; stat }
  in
  (* Phase 1: minimize the artificial sum (skipped when the slack basis
     is already feasible). *)
  let infeasible =
    !artificial_rows > 0
    && begin
         let phase1_cost = Array.make ncols 0.0 in
         for i = 0 to m - 1 do
           phase1_cost.(n + m + i) <- 1.0
         done;
         refresh_cost_row t phase1_cost;
         (match optimize t with
         | `Optimal -> ()
         | `Unbounded ->
             (* The phase-1 objective is bounded below by 0; reaching
                here means numerical trouble, which we surface as a
                solver failure. *)
             raise Iteration_limit);
         refresh_basic_values t;
         let infeasibility = ref 0.0 in
         for i = 0 to m - 1 do
           infeasibility := !infeasibility +. Float.max 0.0 t.xval.(n + m + i)
         done;
         !infeasibility > eps_feas
       end
  in
  if infeasible then Infeasible
  else begin
    (* Pin artificials at zero and install the true objective. *)
    for i = 0 to m - 1 do
      lob.(n + m + i) <- 0.0;
      hib.(n + m + i) <- 0.0;
      if t.stat.(n + m + i) <> Basic then begin
        t.stat.(n + m + i) <- At_lower;
        t.xval.(n + m + i) <- 0.0
      end
    done;
    let phase2_cost = Array.make ncols 0.0 in
    Array.blit p.obj 0 phase2_cost 0 n;
    refresh_cost_row t phase2_cost;
    match optimize t with
    | `Unbounded -> Unbounded
    | `Optimal ->
        refresh_basic_values t;
        let primal = Array.sub t.xval 0 n in
        let objective = ref 0.0 in
        for j = 0 to n - 1 do
          objective := !objective +. (p.obj.(j) *. primal.(j))
        done;
        Optimal { objective = !objective; primal }
  end

let pp_result fmt = function
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Unbounded -> Format.fprintf fmt "unbounded"
  | Optimal { objective; primal } ->
      Format.fprintf fmt "optimal %g at %a" objective Ivan_tensor.Vec.pp primal
