(** Linear programming.

    A self-contained dense simplex solver standing in for the commercial
    LP back-end (GUROBI) used by the paper.  It solves

    {v minimize    c^T x
  subject to  a_i^T x (<= | = | >=) b_i     for each row i
              lo_j <= x_j <= hi_j           for each variable j v}

    using a primal simplex on bounded variables with a Phase-1 artificial
    start and Bland's anti-cycling rule.  Problem sizes in this repository
    (at most a few hundred variables and rows) are well within dense-
    tableau territory. *)

type cmp = Le | Ge | Eq

type problem
(** A mutable LP under construction. *)

type solution = {
  objective : float;  (** optimal value of [c^T x] *)
  primal : float array;  (** optimal assignment, indexed by variable *)
}

type result = Optimal of solution | Infeasible | Unbounded

exception Iteration_limit
(** Raised by {!solve} when the simplex exceeds its internal iteration
    cap — a numerical-failure escape hatch.  Callers that need soundness
    (the verifier's analyzers) treat it as an inconclusive answer. *)

exception Numerical_failure of string
(** Raised by {!solve} when the tableau degrades past repair: a NaN bound
    or non-finite coefficient in the input, a non-finite or collapsed
    pivot element, or NaN contaminating the basic values / reduced costs
    mid-run.  Distinct from {!Iteration_limit} so callers can tell "too
    slow" apart from "numerically broken"; both must be treated as
    inconclusive, never as an optimum. *)

val set_solve_hook : (problem -> unit) option -> unit
(** Install (or clear, with [None]) a hook invoked at the start of every
    {!solve} call, before validation.  Used by the resilience layer to
    inject deterministic faults during campaigns; production code leaves
    it unset.  The hook is a plain global, not domain-safe — it is a
    single-domain testing facility. *)

val create : int -> problem
(** [create n] is a problem over [n] variables with zero objective and
    free variables ([-inf, +inf]).  @raise Invalid_argument if [n < 0]. *)

val num_vars : problem -> int

val num_rows : problem -> int

val set_objective : problem -> float array -> unit
(** Dense objective vector; minimization.
    @raise Invalid_argument on dimension mismatch. *)

val set_bounds : problem -> int -> float -> float -> unit
(** [set_bounds p j lo hi].  Use [neg_infinity] / [infinity] for
    unbounded sides.  @raise Invalid_argument if [lo > hi] or [j] is out
    of range. *)

val get_bounds : problem -> int -> float * float
(** Current (lo, hi) of a variable.  @raise Invalid_argument if [j] is
    out of range. *)

val add_constraint : problem -> (int * float) list -> cmp -> float -> unit
(** [add_constraint p coeffs cmp rhs] adds the row
    [sum_j coeff_j * x_j cmp rhs].  Terms with duplicate indices are
    summed.  @raise Invalid_argument on out-of-range variable indices. *)

val solve : problem -> result
(** Solve the problem as currently built.  The problem may be extended
    and re-solved afterwards (each call solves from scratch). *)

val pp_result : Format.formatter -> result -> unit
