(** Linear programming.

    A self-contained dense simplex solver standing in for the commercial
    LP back-end (GUROBI) used by the paper.  It solves

    {v minimize    c^T x
  subject to  a_i^T x (<= | = | >=) b_i     for each row i
              lo_j <= x_j <= hi_j           for each variable j v}

    using a primal simplex on bounded variables with a Phase-1 artificial
    start and Bland's anti-cycling rule.  Problem sizes in this repository
    (at most a few hundred variables and rows) are well within dense-
    tableau territory.

    The solver is {e incremental}: an optimal {!solve} snapshots its
    simplex basis, and {!solve_from} re-prices a near-identical problem
    (bounds moved by {!set_bounds}, rows rewritten in place by
    {!set_row}) from that snapshot instead of restarting Phase 1 — the
    branch-and-bound verifier re-solves each child node's LP from its
    parent's basis this way.  Warm starts never change answers: any
    basis mismatch, unrepairable infeasibility, or numerical trouble
    falls back to an ordinary cold solve inside {!solve_from}, and
    infeasibility verdicts are only ever issued by the cold path. *)

type cmp = Le | Ge | Eq

type problem
(** A mutable LP under construction. *)

(** {2 Proof certificates}

    Every terminal verdict of the simplex carries evidence a client can
    re-check without trusting the solver.  An [Optimal] solve yields the
    row multipliers [y] of its final reduced-cost row: by weak duality,
    for {e any} such vector the exactly recomputed value

    {v y^T b + sum_j min over [lo_j, hi_j] of (c_j - y^T A_.j) x_j v}

    (slacks included) is a sound lower bound on the LP's optimum, even
    if every float pivot was wrong.  An [Infeasible] verdict yields the
    phase-1 multipliers, a Farkas witness: the same computation with a
    zero objective comes out strictly positive, which no feasible point
    allows.  The exact-arithmetic checker lives in [Ivan_cert.Cert];
    extraction here is float-only and untrusted. *)

module Certificate : sig
  type t =
    | Dual of float array
        (** row multipliers of an optimal solve; [y.(i)] is [<= 0] for a
            [Le] row, [>= 0] for [Ge], free for [Eq] *)
    | Farkas of float array
        (** row multipliers witnessing infeasibility, same sign rules *)
end

type solution = {
  objective : float;  (** optimal value of [c^T x] *)
  primal : float array;  (** optimal assignment, indexed by variable *)
  certificate : Certificate.t option;
      (** dual certificate of this optimum (always [Some (Dual _)] from
          this solver; an option so degraded producers can decline) *)
}

type result = Optimal of solution | Infeasible | Unbounded

exception Iteration_limit
(** Raised by {!solve} when the simplex exceeds its internal iteration
    cap — a numerical-failure escape hatch.  Callers that need soundness
    (the verifier's analyzers) treat it as an inconclusive answer. *)

exception Numerical_failure of string
(** Raised by {!solve} when the tableau degrades past repair: a NaN bound
    or non-finite coefficient in the input, a non-finite or collapsed
    pivot element, or NaN contaminating the basic values / reduced costs
    mid-run.  Distinct from {!Iteration_limit} so callers can tell "too
    slow" apart from "numerically broken"; both must be treated as
    inconclusive, never as an optimum. *)

val set_solve_hook : (problem -> unit) option -> unit
(** Install (or clear, with [None]) a hook invoked at the start of every
    {!solve} / {!solve_from} call, before validation.  Used by the
    resilience layer to inject deterministic faults during campaigns;
    production code leaves it unset.  The hook cell is atomic, so
    installing and clearing it is safe even while {!Runner} worker
    domains are solving: every domain sees either the hook or [None],
    never a torn value.  ({!solve_from} triggers the hook once, even
    when it falls back to an internal cold solve.) *)

val create : int -> problem
(** [create n] is a problem over [n] variables with zero objective and
    free variables ([-inf, +inf]).  @raise Invalid_argument if [n < 0]. *)

val num_vars : problem -> int

val num_rows : problem -> int

val set_objective : problem -> float array -> unit
(** Dense objective vector; minimization.
    @raise Invalid_argument on dimension mismatch. *)

val set_bounds : problem -> int -> float -> float -> unit
(** [set_bounds p j lo hi].  Use [neg_infinity] / [infinity] for
    unbounded sides.  @raise Invalid_argument if [lo > hi] or [j] is out
    of range. *)

val get_bounds : problem -> int -> float * float
(** Current (lo, hi) of a variable.  @raise Invalid_argument if [j] is
    out of range. *)

val objective_coeffs : problem -> float array
(** A copy of the current objective vector, for snapshotting the problem
    a certificate refers to. *)

val row : problem -> int -> int array * float array * cmp * float
(** [row p i] is a copy of row [i] as (indices, coefficients, cmp, rhs).
    Duplicate indices, if any, are preserved as stored (the tableau sums
    them, and so must any checker).  @raise Invalid_argument if [i] is
    out of range. *)

val add_constraint : problem -> (int * float) list -> cmp -> float -> unit
(** [add_constraint p coeffs cmp rhs] adds the row
    [sum_j coeff_j * x_j cmp rhs].  Terms with duplicate indices are
    summed.  Convenience wrapper over {!add_row}; hot paths (the
    analyzer encoders) should build index/coefficient arrays and call
    {!add_row} directly.  @raise Invalid_argument on out-of-range
    variable indices. *)

val add_row : problem -> int array -> float array -> cmp -> float -> int
(** [add_row p idx cf cmp rhs] adds the row [sum_k cf_k * x_(idx_k) cmp
    rhs] and returns its row index, for later in-place updates via
    {!set_row}.  The arrays are copied; duplicate indices are summed.
    This is the allocation-light fast path behind {!add_constraint}.
    @raise Invalid_argument on out-of-range indices or mismatched array
    lengths. *)

val set_row : problem -> int -> int array -> float array -> cmp -> float -> unit
(** [set_row p i idx cf cmp rhs] replaces row [i] in place.  Together
    with {!set_bounds} this keeps a solved problem reusable: the
    analyzer's persistent node encoding rewrites only the rows of split
    ReLUs between solves instead of rebuilding the whole LP.  A
    previously captured {!Basis.t} remains installable afterwards (the
    problem's shape is unchanged); {!solve_from} re-prices against the
    updated rows.  @raise Invalid_argument on an out-of-range row or
    variable index, or mismatched array lengths. *)

val solve : problem -> result
(** Solve the problem as currently built, from scratch (Phase-1
    artificial start).  The problem may be extended and re-solved
    afterwards.  Records {!last_stats}, and on an [Optimal] result
    {!basis}. *)

(** {2 Warm starts} *)

module Basis : sig
  type t
  (** An opaque snapshot of an optimal simplex basis: the basic column
      of every row plus the at-bound status of every structural and
      slack column.  Immutable; safe to hold across later mutations of
      the problem it was captured from. *)
end

val basis : problem -> Basis.t option
(** The basis snapshot captured by the most recent successful solve of
    this problem, if any.  [None] before the first solve, after a
    non-[Optimal] result, or when the optimum left an artificial column
    basic (a basis the warm path could not re-install). *)

val solve_from : problem -> Basis.t -> result
(** [solve_from p b] solves [p] warm-starting from basis [b] (typically
    the parent node's {!basis}): the basis is re-installed by
    refactorization, primal feasibility is repaired with a composite
    Phase 1 if bound/row edits pushed basic variables out of bounds, and
    Phase 2 runs from there — usually a handful of pivots instead of a
    full two-phase solve.  Falls back to an internal cold {!solve} (and
    reports [Warm_miss] in {!last_stats}) whenever the snapshot does not
    fit: shape mismatch, singular or inconsistent basis, unrepairable
    infeasibility, an unbounded warm claim, or numerical failure.
    Verdicts are identical to a cold solve's — in particular
    [Infeasible] is only ever decided by the cold path. *)

(** {2 Per-solve statistics} *)

type warm =
  | Cold  (** ordinary {!solve} *)
  | Warm_hit  (** {!solve_from} succeeded from the given basis *)
  | Warm_miss  (** {!solve_from} fell back to a cold solve *)

type solve_stats = {
  pivots : int;
      (** simplex iterations performed (basis changes + bound flips),
          across all phases of the solve *)
  factor_pivots : int;
      (** Gauss-Jordan pivots spent re-installing a warm basis (0 for
          cold solves; rows whose own slack is basic are free) *)
  phase1 : bool;  (** a cold solve needed the artificial Phase-1 start *)
  warm : warm;
}

val last_stats : problem -> solve_stats option
(** Statistics of the most recent solve of this problem ([None] before
    the first).  A [Warm_miss] entry reports the pivots of the cold
    solve that answered. *)

val last_certificate : problem -> Certificate.t option
(** Certificate of the most recent solve: [Some (Dual _)] after an
    [Optimal] result (cold or warm), [Some (Farkas _)] after
    [Infeasible], [None] after [Unbounded], a raised failure, or before
    the first solve.  Refers to the problem's rows/bounds/objective as
    they were at that solve; snapshot them (via {!row},
    {!objective_coeffs}, {!get_bounds}) before mutating further. *)

val pp_result : Format.formatter -> result -> unit
