(** Pruned specification-tree construction (paper Algorithm 4).

    Rebuilds the final tree of [N]'s verification top-down, skipping
    "bad" splits — nodes whose observed improvement [I_N(n, r)] falls
    below [theta].  When a bad split is skipped, the rebuild continues
    from the child with the smaller LB increase (Equation 8), so the
    kept subtree is the better match for the branching decisions that
    would follow.

    Improvements are normalized by the largest |I_N| in the tree before
    the [theta] comparison, so the same [theta] grid is meaningful
    across instances (and matches the [H_Delta] normalization). *)

val prune :
  ?trace:Ivan_bab.Trace.sink -> theta:float -> Ivan_spectree.Tree.t -> Ivan_spectree.Tree.t
(** Returns a fresh tree; the input is not modified.  Nodes without LB
    annotations are kept as-is (their improvement is unknown, so their
    splits are never judged bad).  [trace] (default null) receives one
    [Pruned] event per skipped split. *)
