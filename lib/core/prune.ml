module Tree = Ivan_spectree.Tree

let prune ?(trace = Ivan_bab.Trace.null) ~theta tree =
  (* Normalize improvements by the tree's largest magnitude so theta is
     scale-free. *)
  let max_imp = ref 0.0 in
  Tree.iter_nodes tree (fun n ->
      match Effectiveness.improvement n with
      | Some i -> max_imp := Float.max !max_imp (Float.abs i)
      | None -> ());
  let norm = if !max_imp > 0.0 then !max_imp else 1.0 in
  let bad n =
    match Effectiveness.improvement n with None -> false | Some i -> i /. norm < theta
  in
  let pruned = Tree.create () in
  Tree.set_lb (Tree.root pruned) (Tree.lb (Tree.root tree));
  let q = Queue.create () in
  Queue.add (Tree.root tree, Tree.root pruned) q;
  while not (Queue.is_empty q) do
    let n, nhat = Queue.pop q in
    match (Tree.children n, Tree.decision n) with
    | None, _ | _, None -> ()
    | Some (l, r), Some d ->
        if not (bad n) then begin
          let hl, hr = Tree.split pruned nhat d in
          Tree.set_lb hl (Tree.lb l);
          Tree.set_lb hr (Tree.lb r);
          Queue.add (l, hl) q;
          Queue.add (r, hr) q
        end
        else begin
          Ivan_bab.Trace.emit trace (Ivan_bab.Trace.Pruned { node = Tree.node_id n });
          (* Equation 8: continue from the child whose LB is closest to
             the parent's (smaller increase); drop the other subtree. *)
          let delta_l = Tree.lb l -. Tree.lb n and delta_r = Tree.lb r -. Tree.lb n in
          let nk = if Float.is_nan delta_r || delta_l <= delta_r then l else r in
          match (Tree.children nk, Tree.decision nk) with
          | None, _ | _, None -> () (* the kept child is a leaf: nhat stays a leaf *)
          | Some (kl, kr), Some dk ->
              let hl, hr = Tree.split pruned nhat dk in
              Tree.set_lb hl (Tree.lb kl);
              Tree.set_lb hr (Tree.lb kr);
              Queue.add (kl, hl) q;
              Queue.add (kr, hr) q
        end
  done;
  pruned
