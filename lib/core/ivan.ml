module Network = Ivan_nn.Network
module Bab = Ivan_bab.Bab

type technique = Baseline | Reuse | Reorder | Full

let technique_name = function
  | Baseline -> "baseline"
  | Reuse -> "reuse"
  | Reorder -> "reorder"
  | Full -> "ivan"

type config = {
  technique : technique;
  alpha : float;
  theta : float;
  budget : Bab.budget;
  strategy : Ivan_bab.Frontier.strategy;
  policy : Ivan_analyzer.Analyzer.policy;
  certify : bool;
  journal : Ivan_resilience.Journal.writer option;
}

let default_config =
  {
    technique = Full;
    alpha = 0.25;
    theta = 0.01;
    budget = Bab.default_budget;
    strategy = Ivan_bab.Frontier.Fifo;
    policy = Ivan_analyzer.Analyzer.default_policy;
    certify = false;
    journal = None;
  }

let verify_original ~analyzer ~heuristic ?(budget = Bab.default_budget)
    ?(strategy = Ivan_bab.Frontier.Fifo) ?(policy = Ivan_analyzer.Analyzer.default_policy)
    ?(certify = false) ?journal ~net ~prop () =
  Bab.verify ~analyzer ~heuristic ~strategy ~budget ~policy ~certify ?journal ~net ~prop ()

let verify_updated_with_tree ~analyzer ~heuristic ~config ~original_tree ~updated ~prop =
  let strategy = config.strategy in
  let policy = config.policy in
  let certify = config.certify in
  let journal = config.journal in
  let hdelta () =
    let observed = Effectiveness.observe original_tree in
    Hdelta.make ~base:heuristic ~observed ~alpha:config.alpha ~theta:config.theta
  in
  match config.technique with
  | Baseline ->
      Bab.verify ~analyzer ~heuristic ~strategy ~budget:config.budget ~policy ~certify ?journal
        ~net:updated ~prop ()
  | Reuse ->
      Bab.verify ~analyzer ~heuristic ~strategy ~budget:config.budget ~policy ~certify ?journal
        ~initial_tree:original_tree ~net:updated ~prop ()
  | Reorder ->
      Bab.verify ~analyzer ~heuristic:(hdelta ()) ~strategy ~budget:config.budget ~policy ~certify
        ?journal ~net:updated ~prop ()
  | Full ->
      let pruned = Prune.prune ~theta:config.theta original_tree in
      Bab.verify ~analyzer ~heuristic:(hdelta ()) ~strategy ~budget:config.budget ~policy ~certify
        ?journal ~initial_tree:pruned ~net:updated ~prop ()

let verify_updated ~analyzer ~heuristic ~config ~original_run ~updated ~prop =
  verify_updated_with_tree ~analyzer ~heuristic ~config ~original_tree:original_run.Bab.tree
    ~updated ~prop

type result = { original : Bab.run; updated : Bab.run }

let verify_incremental ~analyzer ~heuristic ?(config = default_config) ~net ~updated ~prop () =
  if not (Network.same_architecture net updated) then
    invalid_arg "Ivan.verify_incremental: networks must share an architecture";
  let original =
    verify_original ~analyzer ~heuristic ~budget:config.budget ~strategy:config.strategy
      ~policy:config.policy ~net ~prop ()
  in
  let updated_run = verify_updated ~analyzer ~heuristic ~config ~original_run:original ~updated ~prop in
  { original; updated = updated_run }

let verify_chain ~analyzer ~heuristic ?(config = default_config) ~net ~updates ~prop () =
  List.iter
    (fun u ->
      if not (Network.same_architecture net u) then
        invalid_arg "Ivan.verify_chain: every update must share the architecture")
    updates;
  let original =
    verify_original ~analyzer ~heuristic ~budget:config.budget ~strategy:config.strategy
      ~policy:config.policy ~net ~prop ()
  in
  let _, reversed_runs =
    List.fold_left
      (fun (previous, acc) updated ->
        let run = verify_updated ~analyzer ~heuristic ~config ~original_run:previous ~updated ~prop in
        (* The freshest proof seeds the next update in the chain. *)
        (run, run :: acc))
      (original, []) updates
  in
  (original, List.rev reversed_runs)
