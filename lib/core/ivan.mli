(** The IVAN incremental verification algorithm (paper Algorithm 5).

    Verifying an updated network [N^a] reuses the proof of the same
    property on the original [N]: the final specification tree of [N]'s
    run seeds [N^a]'s run ("reuse"), pruned of ineffective splits
    (Algorithm 4), while the branching heuristic is augmented with the
    observed split effectiveness ("reorder", Equation 7).  The four
    techniques of the paper's ablation (Table 2) are selectable. *)

type technique =
  | Baseline  (** from-scratch BaB on [N^a]: the non-incremental verifier *)
  | Reuse  (** [T_0 = T_f^N], heuristic unchanged *)
  | Reorder  (** [T_0] trivial, heuristic [H_Delta] *)
  | Full  (** [T_0 = pruned T_f^N] and [H_Delta] — the IVAN default *)

val technique_name : technique -> string

type config = {
  technique : technique;
  alpha : float;  (** Equation 7 mixing weight *)
  theta : float;  (** pruning / deprioritization threshold *)
  budget : Ivan_bab.Bab.budget;
  strategy : Ivan_bab.Frontier.strategy;
      (** frontier exploration order of every BaB run this config
          drives; [Fifo] reproduces the paper's breadth-first order *)
  policy : Ivan_analyzer.Analyzer.policy;
      (** resilience policy of every BaB run this config drives: retry /
          fallback / node-timeout behavior on analyzer failures *)
  certify : bool;
      (** collect exact-checked proof certificates on every BaB run this
          config drives (see {!Ivan_bab.Bab.verify}); pair with an
          analyzer built with its matching [certify] flag *)
  journal : Ivan_resilience.Journal.writer option;
      (** write-ahead journal sink shared by every BaB run this config
          drives — successive runs append under their own Header frames,
          and {!Ivan_resilience.Journal.last_run} recovers the newest
          one after a crash (see {!Ivan_bab.Engine.resume_journal}) *)
}

val default_config : config
(** [Full] with [alpha = 0.25], [theta = 0.01] (the best cell of the
    paper's Figure 8 sweep), the default BaB budget, the [Fifo]
    frontier, {!Ivan_analyzer.Analyzer.default_policy}, certification
    off and no journal. *)

val verify_original :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?budget:Ivan_bab.Bab.budget ->
  ?strategy:Ivan_bab.Frontier.strategy ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?certify:bool ->
  ?journal:Ivan_resilience.Journal.writer ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  Ivan_bab.Bab.run
(** Step 1 of Algorithm 5: plain BaB on [N], producing [T_f^N]. *)

val verify_updated :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  config:config ->
  original_run:Ivan_bab.Bab.run ->
  updated:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_bab.Bab.run
(** Steps 2–4: build [T_0^{N^a}] and [H_Delta] according to the
    technique, then run the incremental verifier on [N^a].  The
    original run may be shared across techniques and updates. *)

val verify_updated_with_tree :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  config:config ->
  original_tree:Ivan_spectree.Tree.t ->
  updated:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Ivan_bab.Bab.run
(** Same, from a bare specification tree — e.g. one reloaded from a
    persisted {!Proof.t} in a later session. *)

type result = { original : Ivan_bab.Bab.run; updated : Ivan_bab.Bab.run }

val verify_incremental :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?config:config ->
  net:Ivan_nn.Network.t ->
  updated:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  result
(** The full Algorithm 5 pipeline.
    @raise Invalid_argument if the two networks differ in architecture
    (the specification tree is only replayable on the same
    architecture). *)

val verify_chain :
  analyzer:Ivan_analyzer.Analyzer.t ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?config:config ->
  net:Ivan_nn.Network.t ->
  updates:Ivan_nn.Network.t list ->
  prop:Ivan_spec.Prop.t ->
  unit ->
  Ivan_bab.Bab.run * Ivan_bab.Bab.run list
(** Deployment-cycle mode: verify [net] once, then each update in order,
    always seeding from the freshest proof (the previous update's tree),
    so the proof tracks the drifting network instead of the original.
    Returns the original run and one run per update.
    @raise Invalid_argument if any update differs in architecture. *)
