(** Watchdog supervision of a verification run.

    {!supervise} drives [Engine.step] under a wall-clock deadline and a
    major-heap memory watermark (sampled with [Gc.quick_stat], so checks
    are cheap enough to run every few steps).  When a budget is
    breached the supervisor does not kill the run — it escalates through
    graceful degradation:

    + a memory breach first tries [Gc.compact] (the cheap fix: most of
      the engine's garbage is short-lived analyzer state);
    + then the engine is checkpointed and restored with the next,
      cheaper analyzer from the fallback ladder (the PR-2 degradation
      chain), which both shrinks the working set and speeds up the
      remaining nodes — on a time breach the deadline is extended by the
      configured grace;
    + with the ladder exhausted, the frontier is shed to the journal
      (one extra Checkpoint frame folding the full engine state) and the
      heap compacted once more;
    + and only then does the run end, via [Engine.cancel]: a clean
      [Exhausted] verdict with the journal flushed, never a crash.

    Every rung is reported through [on_escalation] and collected in the
    outcome, so callers can tell a clean run from a degraded one. *)

module Engine = Ivan_bab.Engine
module Analyzer = Ivan_analyzer.Analyzer

type limits = {
  max_seconds : float;  (** wall-clock deadline; [infinity] disables *)
  max_major_words : float;
      (** major-heap watermark in words ([Gc.quick_stat ()].heap_words);
          [infinity] disables *)
  check_every : int;  (** engine steps between watchdog checks *)
  grace_seconds : float;
      (** extra wall-clock granted after each escalation rung, so a
          degraded run gets a chance to finish before the next rung *)
}

val default_limits : limits
(** No deadline, no watermark, a check every 8 steps, 1s grace —
    supervision that only ever watches. *)

val mb_words : float -> float
(** Convert a budget in megabytes to major-heap words for
    [max_major_words]. *)

type escalation =
  | Compacted of { reason : string; freed_words : float }
      (** a [Gc.compact] absorbed a memory breach *)
  | Degraded of { analyzer : string; reason : string }
      (** the run was checkpointed and restored onto a cheaper analyzer *)
  | Shed of { reason : string }
      (** full state folded into the journal and the heap compacted *)
  | Cancelled of { reason : string }
      (** budgets stayed breached: the run was ended cleanly *)

val escalation_to_string : escalation -> string

type outcome = {
  run : Engine.run;
  engine : Engine.t;
      (** the engine that finished — not the input engine if a
          degradation rebuilt it mid-run *)
  escalations : escalation list;  (** oldest first; [[]] = clean run *)
  checks : int;  (** watchdog checks performed *)
  peak_major_words : float;  (** largest heap sample observed *)
}

val supervise :
  limits:limits ->
  ?fallbacks:Analyzer.t list ->
  ?on_escalation:(escalation -> unit) ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?policy:Analyzer.policy ->
  ?certify:bool ->
  ?journal:Ivan_resilience.Journal.writer ->
  ?journal_every:int ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  Engine.t ->
  outcome
(** Drive the engine to completion under [limits].  [fallbacks] is the
    degradation ladder, tried in order (default
    [[Analyzer.deeppoly (); Analyzer.interval ()]]); [heuristic],
    [policy], [certify], [net], [prop] and [journal] are needed to
    rebuild the engine across a degradation (they mirror what the engine
    was created with — the engine does not expose them).  When [journal]
    is supplied, degradations journal a fresh Checkpoint frame through
    the restore path and [Shed] folds the state explicitly, so a kill at
    any escalation point still resumes. *)
