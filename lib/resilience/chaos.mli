(** Deterministic kill/resume chaos testing for journaled runs.

    The harness runs a workload once, uninterrupted, journaling into an
    in-memory buffer while recording every append's byte boundary and
    the engine's analyzer-call counter at that moment ({!golden}).  A
    simulated kill is then just a truncation of those golden bytes —
    journal frames are flushed as they are appended, so the bytes a dead
    process leaves on disk are exactly a prefix of the golden journal
    (plus, for a kill mid-write, part of one more frame):

    - {e kill-at-append k}: truncate at the k-th frame boundary;
    - {e torn write}: truncate inside the final frame, at every byte
      offset, exercising CRC/length/magic rejection on real data;
    - {e bit flip}: corrupt one byte of a frame, which must truncate
      recovery at that frame, never crash it.

    Each schedule resumes from the truncated bytes via
    [Engine.resume_journal], runs to completion, and asserts against the
    golden run: identical verdict (including the counterexample vector),
    identical stats on every deterministic counter, and — the bound the
    journal exists to provide — at most one node of rework, measured as
    the gap between the analyzer calls recorded in the surviving prefix
    and the calls the resumed engine starts from. *)

module Engine = Ivan_bab.Engine
module Analyzer = Ivan_analyzer.Analyzer

type workload = {
  name : string;
  net : Ivan_nn.Network.t;
  prop : Ivan_spec.Prop.t;
  analyzer : unit -> Analyzer.t;
      (** fresh analyzer per run, so no solver state leaks across trials *)
  heuristic : Ivan_bab.Heuristic.t;
  strategy : Ivan_bab.Frontier.strategy;
  policy : Analyzer.policy option;
  certify : bool;
  budget : Engine.budget;
  journal_every : int;
  compare_lp : bool;
      (** also assert LP counters (warm-start off / LP-free workloads
          only: parked bases are not journaled, so a resumed warm run
          legitimately solves colder) *)
}

val workload :
  name:string ->
  net:Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  analyzer:(unit -> Analyzer.t) ->
  heuristic:Ivan_bab.Heuristic.t ->
  ?strategy:Ivan_bab.Frontier.strategy ->
  ?policy:Analyzer.policy ->
  ?certify:bool ->
  ?budget:Engine.budget ->
  ?journal_every:int ->
  ?compare_lp:bool ->
  unit ->
  workload
(** Defaults: [Fifo], no policy, no certify, default budget,
    [journal_every = 4] (small, so chaos trials cross checkpoint
    boundaries often), [compare_lp = true]. *)

type golden = {
  run : Engine.run;
  journal : string;  (** the full journal bytes of the clean run *)
  boundaries : (int * int) list;
      (** per append, oldest first: (byte offset after the frame,
          engine analyzer calls at that moment) *)
}

val golden : workload -> golden
(** The uninterrupted reference run. *)

type failure = { workload : string; schedule : string; reason : string }

type report = {
  workloads : int;
  schedules : int;  (** kill/torn/flip trials executed *)
  resumed : int;  (** trials that recovered a non-empty journal *)
  fresh_restarts : int;  (** trials whose journal had no usable frame *)
  reworked_nodes : int;  (** total nodes re-analyzed across all trials *)
  failures : failure list;
}

val run_workload : workload -> report
(** The full schedule matrix for one workload: a kill at every append
    boundary, a torn tail at every byte offset of the final frame, a
    flip of every frame's first payload byte, and a double-kill chain
    (kill, resume journaling into a fresh journal, kill that one
    mid-run, resume again). *)

val run_matrix : workload list -> report
(** {!run_workload} over a suite, with merged counts. *)

val pp_report : Format.formatter -> report -> unit
