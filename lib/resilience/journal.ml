(* Append-only CRC32-framed write-ahead journal.  See the interface for
   the frame layout and the recovery model. *)

type kind = Header | Step | Checkpoint

let kind_name = function Header -> "header" | Step -> "step" | Checkpoint -> "checkpoint"

let kind_byte = function Header -> 'H' | Step -> 'S' | Checkpoint -> 'C'

let kind_of_byte = function
  | 'H' -> Some Header
  | 'S' -> Some Step
  | 'C' -> Some Checkpoint
  | _ -> None

type record = { kind : kind; payload : string }

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_extend crc s pos len =
  let table = Lazy.force crc_table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let crc32 s = crc32_extend 0l s 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* Framing *)

let magic = "IVJ1"

(* magic(4) kind(1) len(4) crc(4) *)
let frame_overhead = 13

(* Refuse lengths that cannot be a real frame: negative (high bit) or
   absurdly large.  The cap only guards recovery against allocating
   gigabytes for a corrupt length field; writers never hit it. *)
let max_payload = 1 lsl 28

let be32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  Bytes.unsafe_to_string b

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let frame_crc kind payload =
  (* Cover the kind byte too, so a bit flip in the kind is detected. *)
  crc32 (String.make 1 (kind_byte kind) ^ payload)

let encode_frame kind payload =
  let buf = Buffer.create (frame_overhead + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (kind_byte kind);
  Buffer.add_string buf (be32 (String.length payload));
  Buffer.add_string buf (be32 (Int32.to_int (frame_crc kind payload) land 0xFFFFFFFF));
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writer *)

type writer = {
  emit : string -> unit;
  flush : unit -> unit;
  release : unit -> unit;
  mutable appends : int;
  mutable closed : bool;
}

let create ?(flush = fun () -> ()) ?(close = fun () -> ()) ~emit () =
  { emit; flush; release = close; appends = 0; closed = false }

let to_buffer buf = create ~emit:(Buffer.add_string buf) ()

let open_file path =
  let oc = open_out_bin path in
  create
    ~emit:(output_string oc)
    ~flush:(fun () -> Stdlib.flush oc)
    ~close:(fun () -> close_out_noerr oc)
    ()

let append w kind payload =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  w.emit (encode_frame kind payload);
  w.flush ();
  w.appends <- w.appends + 1

let appends w = w.appends

let close w =
  if not w.closed then begin
    w.closed <- true;
    w.flush ();
    w.release ()
  end

(* ------------------------------------------------------------------ *)
(* Recovery *)

type recovery = { records : record list; valid_bytes : int; dropped_bytes : int }

let scan data =
  let n = String.length data in
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok do
    let p = !pos in
    if p + frame_overhead > n then ok := false
    else if String.sub data p 4 <> magic then ok := false
    else
      match kind_of_byte data.[p + 4] with
      | None -> ok := false
      | Some kind ->
          let len = read_be32 data (p + 5) in
          if len < 0 || len > max_payload || p + frame_overhead + len > n then ok := false
          else begin
            let crc = read_be32 data (p + 9) in
            let payload = String.sub data (p + frame_overhead) len in
            if Int32.to_int (frame_crc kind payload) land 0xFFFFFFFF <> crc then ok := false
            else begin
              records := { kind; payload } :: !records;
              pos := p + frame_overhead + len
            end
          end
  done;
  { records = List.rev !records; valid_bytes = !pos; dropped_bytes = n - !pos }

let scan_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok (scan data)
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read journal: %s" msg)

let last_run records =
  List.fold_left
    (fun acc r -> match r.kind with Header -> [ r ] | Step | Checkpoint -> r :: acc)
    [] records
  |> List.rev
