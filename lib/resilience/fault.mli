(** Deterministic, seeded fault injection for resilience campaigns.

    A {!plan} describes a reproducible per-call-site fault schedule: at
    the LP boundary (every [Lp.solve], via the solve hook) and at the
    analyzer boundary (via {!wrap_analyzer}), each call independently
    fires a fault with the site's configured rate.  The schedule is a
    pure function of [(seed, site, call index)] — no global randomness —
    so a campaign replays identically from the same plan parameters,
    which is what makes fault-matrix sweeps and failure reproduction
    possible in tests.

    The injector is sound by construction: it raises exceptions, delays
    calls, or corrupts reported bounds, but never fabricates a
    [Verified] or [Counterexample] status — so any verdict change it
    causes can only be a weakening to [Exhausted]. *)

exception Injected of string
(** The transient-fault exception — deliberately foreign to the LP and
    analyzer layers, standing in for "anything else that can go wrong"
    (a solver glitch, a dropped connection to an external back-end). *)

type kind =
  | Lp_iteration_blowup  (** the simplex hits its iteration cap *)
  | Lp_numerical  (** the tableau degrades numerically *)
  | Nan_bounds  (** a NaN bound leaks out of the analyzer *)
  | Inf_bounds  (** the analyzer's reported bound collapses to [-inf] *)
  | Latency of float  (** the call stalls for the given seconds *)
  | Transient of string  (** an arbitrary transient exception *)
  | Cert_perturb_dual
      (** a stored dual / Farkas multiplier is perturbed out of its
          admissible sign half-space — the exact checker rejects it
          unconditionally *)
  | Cert_drop  (** a leaf certificate is lost outright *)

val kind_name : kind -> string

val all_kinds : kind list
(** One representative of every {e transient} kind (latency 1 ms, a
    generic transient message) — the default mix of {!plan}.  The
    certificate-corruption kinds are deliberately excluded: they model
    proof-artifact damage, not call-site failures, and are opted into
    explicitly (fault-matrix certificate schedules, {!corrupt_artifact}
    tests). *)

type site = Lp_solve | Analyzer_run

type plan

val plan :
  ?lp_rate:float ->
  ?analyzer_rate:float ->
  ?kinds:kind list ->
  ?at:(site * int * kind) list ->
  seed:int ->
  unit ->
  plan
(** Fresh plan (call counters at zero).  Rates default to [0.0] — no
    injection at that site; [kinds] defaults to {!all_kinds}.

    [at] pins faults to exact call indices: [(site, n, kind)] fires
    [kind] on the [n]-th call (0-based) observed at [site], regardless
    of the site's rate — the precision edge-case tests need ("the very
    first LP solve fails", "the fault lands on the last frontier
    node").  Explicit entries take precedence over the seeded schedule;
    duplicate [(site, n)] entries keep the last one.
    @raise Invalid_argument on a rate outside [0, 1], an empty kind
    list, or a negative call index in [at]. *)

val injected : plan -> int
(** Faults fired so far. *)

val calls : plan -> site -> int
(** Calls observed so far at a site (fired or not). *)

val decide : plan -> site -> kind option
(** Advance the site's call counter and return the fault (if any) the
    schedule assigns to this call.  Exposed for tests; {!with_lp_faults}
    and {!wrap_analyzer} call it internally. *)

val with_lp_faults : plan -> (unit -> 'a) -> 'a
(** Run a thunk with the plan installed as the {!Ivan_lp.Lp} solve hook,
    uninstalling it afterwards (also on exceptions).  Exception-kind
    faults surface as [Lp.Iteration_limit] / [Lp.Numerical_failure] /
    {!Injected} out of [Lp.solve]; the bound-corruption kinds map onto
    [Lp.Numerical_failure] (the hook cannot alter results).  Not
    reentrant — the hook is a single global. *)

val wrap_analyzer : plan -> Ivan_analyzer.Analyzer.t -> Ivan_analyzer.Analyzer.t
(** The analyzer with the plan's faults injected at its boundary:
    exceptions and latency before the underlying call, bound corruption
    (NaN, [-inf]) on its outcome, certificate corruption
    ([Cert_perturb_dual] / [Cert_drop]) on its evidence.  Status is
    never fabricated, and corrupted certificate evidence is always
    rejected by the engine's emission-time exact self-check — injected
    faults can lose certificates, never forge one. *)

val corrupt_evidence : kind -> Ivan_cert.Cert.evidence -> Ivan_cert.Cert.evidence option
(** Apply a certificate-corruption kind to leaf evidence:
    [Cert_perturb_dual] flips a sign-constrained multiplier out of its
    admissible half-space (or returns [None] when the snapshot has only
    equality rows — the certificate is dropped rather than left possibly
    valid), [Cert_drop] returns [None], and every other kind leaves the
    evidence untouched. *)

val corrupt_artifact : kind -> Ivan_cert.Cert.Artifact.t -> Ivan_cert.Cert.Artifact.t
(** The artifact with {!corrupt_evidence} applied to its first leaf
    certificate (perturbed in place, or removed).  A corrupted [Proved]
    artifact always fails {!Ivan_cert.Cert.check_artifact} — with a
    sign-condition error or a missing-certificate report — which is the
    property the fault-matrix certificate schedules assert.  Artifacts
    without leaf certificates (e.g. [Disproved]) are returned
    unchanged. *)
