module Engine = Ivan_bab.Engine
module Frontier = Ivan_bab.Frontier
module Analyzer = Ivan_analyzer.Analyzer
module Journal = Ivan_resilience.Journal

type workload = {
  name : string;
  net : Ivan_nn.Network.t;
  prop : Ivan_spec.Prop.t;
  analyzer : unit -> Analyzer.t;
  heuristic : Ivan_bab.Heuristic.t;
  strategy : Frontier.strategy;
  policy : Analyzer.policy option;
  certify : bool;
  budget : Engine.budget;
  journal_every : int;
  compare_lp : bool;
}

let workload ~name ~net ~prop ~analyzer ~heuristic ?(strategy = Frontier.Fifo) ?policy
    ?(certify = false) ?(budget = Engine.default_budget) ?(journal_every = 4)
    ?(compare_lp = true) () =
  { name; net; prop; analyzer; heuristic; strategy; policy; certify; budget; journal_every;
    compare_lp }

type golden = { run : Engine.run; journal : string; boundaries : (int * int) list }

(* The clean reference run.  The journal writer's [emit] snoops every
   append: the byte offset of the frame's end and the engine's
   analyzer-call counter at that instant, which is exactly the state a
   process killed right after that append would have persisted. *)
let golden w =
  let buf = Buffer.create 4096 in
  let boundaries = ref [] in
  let eng = ref None in
  let jw =
    Journal.create
      ~emit:(fun s ->
        Buffer.add_string buf s;
        let calls = match !eng with None -> 0 | Some e -> Engine.calls e in
        boundaries := (Buffer.length buf, calls) :: !boundaries)
      ()
  in
  let e =
    Engine.create ~analyzer:(w.analyzer ()) ~heuristic:w.heuristic ~strategy:w.strategy
      ?policy:w.policy ~certify:w.certify ~budget:w.budget ~journal:jw
      ~journal_every:w.journal_every ~net:w.net ~prop:w.prop ()
  in
  eng := Some e;
  let run = Engine.run e in
  { run; journal = Buffer.contents buf; boundaries = List.rev !boundaries }

type failure = { workload : string; schedule : string; reason : string }

type report = {
  workloads : int;
  schedules : int;
  resumed : int;
  fresh_restarts : int;
  reworked_nodes : int;
  failures : failure list;
}

let empty_report =
  { workloads = 0; schedules = 0; resumed = 0; fresh_restarts = 0; reworked_nodes = 0;
    failures = [] }

let merge a b =
  {
    workloads = a.workloads + b.workloads;
    schedules = a.schedules + b.schedules;
    resumed = a.resumed + b.resumed;
    fresh_restarts = a.fresh_restarts + b.fresh_restarts;
    reworked_nodes = a.reworked_nodes + b.reworked_nodes;
    failures = a.failures @ b.failures;
  }

(* ------------------------------------------------------------------ *)
(* Equivalence *)

let verdict_name = function
  | Engine.Proved -> "proved"
  | Engine.Disproved _ -> "disproved"
  | Engine.Exhausted -> "exhausted"

let compare_runs w (g : Engine.run) (r : Engine.run) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (match (g.Engine.verdict, r.Engine.verdict) with
  | Engine.Proved, Engine.Proved | Engine.Exhausted, Engine.Exhausted -> ()
  | Engine.Disproved x, Engine.Disproved y ->
      if x <> y then err "counterexample vectors differ"
  | gv, rv -> err "verdict: golden %s, resumed %s" (verdict_name gv) (verdict_name rv));
  let gs = g.Engine.stats and rs = r.Engine.stats in
  let chk name a b = if a <> b then err "%s: golden %d, resumed %d" name a b in
  chk "analyzer_calls" gs.Engine.analyzer_calls rs.Engine.analyzer_calls;
  chk "branchings" gs.Engine.branchings rs.Engine.branchings;
  chk "tree_size" gs.Engine.tree_size rs.Engine.tree_size;
  chk "tree_leaves" gs.Engine.tree_leaves rs.Engine.tree_leaves;
  chk "max_frontier" gs.Engine.max_frontier rs.Engine.max_frontier;
  chk "max_depth" gs.Engine.max_depth rs.Engine.max_depth;
  chk "heuristic_failures" gs.Engine.heuristic_failures rs.Engine.heuristic_failures;
  chk "retries" gs.Engine.retries rs.Engine.retries;
  chk "fallback_bounds" gs.Engine.fallback_bounds rs.Engine.fallback_bounds;
  chk "faults_absorbed" gs.Engine.faults_absorbed rs.Engine.faults_absorbed;
  chk "certs_emitted" gs.Engine.certs_emitted rs.Engine.certs_emitted;
  chk "certs_unavailable" gs.Engine.certs_unavailable rs.Engine.certs_unavailable;
  if w.compare_lp then begin
    chk "lp_warm_hits" gs.Engine.lp_warm_hits rs.Engine.lp_warm_hits;
    chk "lp_warm_misses" gs.Engine.lp_warm_misses rs.Engine.lp_warm_misses;
    chk "lp_cold_solves" gs.Engine.lp_cold_solves rs.Engine.lp_cold_solves;
    chk "lp_pivots" gs.Engine.lp_pivots rs.Engine.lp_pivots
  end;
  (* Certificate equivalence is stats-compatible: the counters above
     must match exactly, and the artifact must agree in presence and
     verdict.  A resumed Proved artifact can carry fewer leaf
     certificates (leaf tables are not journaled), never more. *)
  (match (g.Engine.artifact, r.Engine.artifact) with
  | None, None -> ()
  | Some _, None -> err "artifact: golden has one, resumed does not"
  | None, Some _ -> err "artifact: resumed has one, golden does not"
  | Some ga, Some ra ->
      let open Ivan_cert.Cert.Artifact in
      (match (ga.verdict, ra.verdict) with
      | Proved, Proved -> ()
      | Disproved x, Disproved y -> if x <> y then err "artifact counterexamples differ"
      | _ -> err "artifact verdict kinds differ");
      if List.length ra.leaves > List.length ga.leaves then
        err "resumed artifact has more leaf certificates than golden");
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Trials *)

let fresh_run w =
  Engine.run
    (Engine.create ~analyzer:(w.analyzer ()) ~heuristic:w.heuristic ~strategy:w.strategy
       ?policy:w.policy ~certify:w.certify ~budget:w.budget ~net:w.net ~prop:w.prop ())

let resume ?journal w bytes =
  Engine.resume_journal ~analyzer:(w.analyzer ()) ~heuristic:w.heuristic ~strategy:w.strategy
    ?policy:w.policy ~certify:w.certify ?journal ~journal_every:w.journal_every ~net:w.net
    ~prop:w.prop bytes

(* The analyzer calls a process killed right after writing [valid_bytes]
   had durably recorded: the counter snapshot at the last boundary
   inside the surviving prefix. *)
let calls_at g valid_bytes =
  List.fold_left (fun acc (off, calls) -> if off <= valid_bytes then calls else acc) 0
    g.boundaries

(* One simulated kill: resume from [bytes], finish, compare.  Returns
   (mismatches, resumed?, reworked nodes). *)
let trial w g bytes =
  let prefix = Journal.scan bytes in
  let has_checkpoint =
    List.exists (fun r -> r.Journal.kind = Journal.Checkpoint) prefix.Journal.records
  in
  if not has_checkpoint then
    (* Nothing actionable survived (at most a Header): the only honest
       recovery is to start over, which must still reach the golden
       verdict. *)
    (compare_runs w g.run (fresh_run w), false, 0)
  else
    match resume w bytes with
    | Error msg -> ([ Printf.sprintf "resume failed: %s" msg ], false, 0)
    | Ok (e, info) ->
        let at_resume = Engine.calls e in
        let durable = calls_at g info.Engine.valid_bytes in
        (* Rework: calls the journal had durably recorded but the
           resumed engine will redo.  The only admissible case is the
           terminal disproved step, whose frame is dropped on replay. *)
        let rework = durable - at_resume in
        let errs = ref [] in
        if rework < 0 then
          errs :=
            Printf.sprintf "resumed engine claims %d calls, journal only recorded %d" at_resume
              durable
            :: !errs;
        if rework > 1 then
          errs := Printf.sprintf "rework of %d nodes exceeds the one-node bound" rework :: !errs;
        let run = Engine.run e in
        ((!errs @ compare_runs w g.run run : string list), true, max 0 rework)

(* Kill, resume into a second journal, kill that mid-run, resume again:
   recovery must compose. *)
let double_kill_trial w g =
  let n = List.length g.boundaries in
  if n < 2 then ([], false, 0)
  else
    let k1 = max 1 (n / 3) in
    let bytes1 = String.sub g.journal 0 (fst (List.nth g.boundaries (k1 - 1))) in
    if
      not
        (List.exists
           (fun r -> r.Journal.kind = Journal.Checkpoint)
           (Journal.scan bytes1).Journal.records)
    then ([], false, 0)
    else
      let buf2 = Buffer.create 4096 in
      match resume ~journal:(Journal.to_buffer buf2) w bytes1 with
      | Error msg -> ([ Printf.sprintf "first resume failed: %s" msg ], false, 0)
      | Ok (e, _) ->
          (* Let the resumed run make some progress, then abandon it —
             the second kill.  Its journal lives on in [buf2]. *)
          let rec step_n i =
            if i > 0 then match Engine.step e with Engine.Running -> step_n (i - 1) | _ -> ()
          in
          step_n (2 * w.journal_every);
          let bytes2 = Buffer.contents buf2 in
          (match resume w bytes2 with
          | Error msg -> ([ Printf.sprintf "second resume failed: %s" msg ], true, 0)
          | Ok (e2, _) ->
              let run = Engine.run e2 in
              (compare_runs w g.run run, true, 0))

let frame_starts g =
  let ends = List.map fst g.boundaries in
  0 :: List.filteri (fun i _ -> i < List.length ends - 1) ends

let run_workload w =
  let g = golden w in
  let total = String.length g.journal in
  let failures = ref [] in
  let schedules = ref 0 in
  let resumed_n = ref 0 in
  let fresh_n = ref 0 in
  let rework_total = ref 0 in
  let record schedule (errs, was_resumed, rework) =
    incr schedules;
    if was_resumed then incr resumed_n else incr fresh_n;
    rework_total := !rework_total + rework;
    List.iter
      (fun reason -> failures := { workload = w.name; schedule; reason } :: !failures)
      errs
  in
  (* Kill at every append boundary (the last one is the intact journal:
     resuming a completed run must reproduce its verdict too). *)
  List.iteri
    (fun i (off, _) ->
      record (Printf.sprintf "kill@append-%d" (i + 1)) (trial w g (String.sub g.journal 0 off)))
    g.boundaries;
  (* Torn write: every byte offset strictly inside the final frame. *)
  let last_start = List.fold_left (fun _ s -> s) 0 (frame_starts g) in
  for cut = last_start + 1 to total - 1 do
    record (Printf.sprintf "torn@%d" cut) (trial w g (String.sub g.journal 0 cut))
  done;
  (* Bit flip: corrupt the first payload byte of every frame — recovery
     must truncate there, and the resumed run must still agree. *)
  List.iter
    (fun start ->
      if start + 13 < total then begin
        let b = Bytes.of_string g.journal in
        Bytes.set b (start + 13) (Char.chr (Char.code (Bytes.get b (start + 13)) lxor 0xFF));
        record (Printf.sprintf "flip@%d" (start + 13)) (trial w g (Bytes.to_string b))
      end)
    (frame_starts g);
  record "double-kill" (double_kill_trial w g);
  {
    workloads = 1;
    schedules = !schedules;
    resumed = !resumed_n;
    fresh_restarts = !fresh_n;
    reworked_nodes = !rework_total;
    failures = List.rev !failures;
  }

let run_matrix ws = List.fold_left (fun acc w -> merge acc (run_workload w)) empty_report ws

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>chaos matrix: %d workloads, %d schedules (%d resumed, %d fresh restarts), %d reworked \
     nodes, %d failures@]"
    r.workloads r.schedules r.resumed r.fresh_restarts r.reworked_nodes (List.length r.failures);
  List.iter
    (fun f -> Format.fprintf fmt "@,  FAIL %s/%s: %s" f.workload f.schedule f.reason)
    r.failures
