(** Append-only write-ahead journal of verification progress.

    A journal is a flat sequence of CRC32-framed, length-prefixed
    records.  Each frame is written with a single buffered write
    followed by a flush, so after a crash the file is always a valid
    frame sequence followed by at most one torn frame.  {!scan} recovery
    embraces exactly that failure model: it walks frames from the start
    and truncates at the first missing magic, impossible length, CRC
    mismatch or short tail — everything before the damage is kept,
    everything after is reported as dropped bytes.

    Record kinds mirror the engine's durability protocol:
    - [Header] opens a run and carries the config fingerprint (net +
      property digest) so a journal is never replayed onto the wrong
      problem;
    - [Step] carries one engine step's trace events (one frame per
      step, so a step is journaled atomically or not at all);
    - [Checkpoint] carries a full engine checkpoint document folding
      the whole prefix — recovery restores from the newest one and
      replays only the [Step] frames after it.

    The journal layer itself is engine-agnostic: payloads are opaque
    strings, and the framing never raises on malformed input. *)

type kind = Header | Step | Checkpoint

val kind_name : kind -> string

type record = { kind : kind; payload : string }

(** {2 Writing} *)

type writer
(** An append-only sink.  Not thread-safe; one writer per run. *)

val create : ?flush:(unit -> unit) -> ?close:(unit -> unit) -> emit:(string -> unit) -> unit -> writer
(** A writer over an arbitrary byte sink.  [emit] receives each encoded
    frame whole; [flush] (default no-op) runs after every append —
    durability is the point of a WAL, so appends are flushed eagerly. *)

val to_buffer : Buffer.t -> writer
(** In-memory writer (the chaos harness's crash simulator). *)

val open_file : string -> writer
(** Truncate-or-create [path] and journal into it, flushing after every
    frame.  {!close} the writer when done.
    @raise Sys_error if the file cannot be opened. *)

val append : writer -> kind -> string -> unit
(** Frame the payload and hand it to the sink, then flush. *)

val appends : writer -> int
(** Frames appended so far. *)

val close : writer -> unit
(** Flush and release the underlying sink.  Idempotent. *)

(** {2 Framing} *)

val encode_frame : kind -> string -> string
(** The exact bytes {!append} writes: ["IVJ1"] magic, a kind byte, a
    4-byte big-endian payload length, a 4-byte big-endian CRC32 (over
    the kind byte and payload), then the payload. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of the whole string. *)

(** {2 Recovery} *)

type recovery = {
  records : record list;  (** the valid frame prefix, in append order *)
  valid_bytes : int;  (** length of that prefix in bytes *)
  dropped_bytes : int;  (** torn / corrupt tail bytes discarded *)
}

val scan : string -> recovery
(** Parse the longest valid frame prefix.  Total: never raises —
    arbitrary bytes yield an empty record list with everything
    dropped. *)

val scan_file : string -> (recovery, string) result
(** {!scan} over a file's contents; [Error] when the file cannot be
    read. *)

val last_run : record list -> record list
(** The records of the newest run in the journal: the suffix starting
    at the last [Header] (a journal written through {!append} by
    successive runs concatenates their records).  The whole list when
    no [Header] is present. *)
