(* Deterministic, seeded fault injection for resilience campaigns. *)

module Lp = Ivan_lp.Lp
module Analyzer = Ivan_analyzer.Analyzer
module Cert = Ivan_cert.Cert

exception Injected of string

type kind =
  | Lp_iteration_blowup
  | Lp_numerical
  | Nan_bounds
  | Inf_bounds
  | Latency of float
  | Transient of string
  | Cert_perturb_dual
  | Cert_drop

let kind_name = function
  | Lp_iteration_blowup -> "lp-iteration-blowup"
  | Lp_numerical -> "lp-numerical"
  | Nan_bounds -> "nan-bounds"
  | Inf_bounds -> "inf-bounds"
  | Latency _ -> "latency"
  | Transient _ -> "transient"
  | Cert_perturb_dual -> "cert-perturb-dual"
  | Cert_drop -> "cert-drop"

let all_kinds =
  [
    Lp_iteration_blowup;
    Lp_numerical;
    Nan_bounds;
    Inf_bounds;
    Latency 0.001;
    Transient "injected transient fault";
  ]

type site = Lp_solve | Analyzer_run

let site_tag = function Lp_solve -> 0 | Analyzer_run -> 1

type plan = {
  seed : int;
  lp_rate : float;
  analyzer_rate : float;
  kinds : kind array;
  at : (int * int, kind) Hashtbl.t;  (** (site tag, call index) -> forced fault *)
  mutable lp_calls : int;
  mutable analyzer_calls : int;
  mutable injected : int;
}

let plan ?(lp_rate = 0.0) ?(analyzer_rate = 0.0) ?(kinds = all_kinds) ?(at = []) ~seed () =
  let check name r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg (Printf.sprintf "Fault.plan: %s must lie in [0, 1]" name)
  in
  check "lp_rate" lp_rate;
  check "analyzer_rate" analyzer_rate;
  if kinds = [] then invalid_arg "Fault.plan: empty kind list";
  let schedule = Hashtbl.create (List.length at) in
  List.iter
    (fun (site, index, kind) ->
      if index < 0 then invalid_arg "Fault.plan: negative call index in at";
      Hashtbl.replace schedule (site_tag site, index) kind)
    at;
  {
    seed;
    lp_rate;
    analyzer_rate;
    kinds = Array.of_list kinds;
    at = schedule;
    lp_calls = 0;
    analyzer_calls = 0;
    injected = 0;
  }

let injected p = p.injected

let calls p = function Lp_solve -> p.lp_calls | Analyzer_run -> p.analyzer_calls

(* The whole schedule is a pure function of (seed, site, call index):
   [Hashtbl.hash] is deterministic across runs (it seeds from the value
   only), so a campaign replays identically from the same plan
   parameters.  Distinct salts decorrelate the fire decision from the
   kind choice. *)
let unit_float h = float_of_int (h land 0xFFFFF) /. 1048576.0

let fires p site n rate = rate > 0.0 && unit_float (Hashtbl.hash (p.seed, site_tag site, n, 17)) < rate

let pick_kind p site n =
  p.kinds.(Hashtbl.hash (p.seed, site_tag site, n, 31) mod Array.length p.kinds)

let decide p site =
  let n =
    match site with
    | Lp_solve ->
        let n = p.lp_calls in
        p.lp_calls <- n + 1;
        n
    | Analyzer_run ->
        let n = p.analyzer_calls in
        p.analyzer_calls <- n + 1;
        n
  in
  let rate = match site with Lp_solve -> p.lp_rate | Analyzer_run -> p.analyzer_rate in
  match Hashtbl.find_opt p.at (site_tag site, n) with
  | Some kind ->
      (* Explicit schedules trump the seeded rate: "the fault hits
         exactly the k-th call" is what edge-case tests need. *)
      p.injected <- p.injected + 1;
      Some kind
  | None ->
      if fires p site n rate then begin
        p.injected <- p.injected + 1;
        Some (pick_kind p site n)
      end
      else None

(* At the LP boundary only exceptions and latency are expressible: the
   solve hook cannot replace the result, so the bound-corruption kinds
   map onto {!Lp.Numerical_failure} (the closest observable effect of a
   NaN/inf-contaminated tableau). *)
let apply_lp_fault = function
  | Lp_iteration_blowup -> raise Lp.Iteration_limit
  | Lp_numerical -> raise (Lp.Numerical_failure "injected numerical failure")
  | Nan_bounds | Inf_bounds -> raise (Lp.Numerical_failure "injected non-finite tableau")
  | Latency s -> Unix.sleepf s
  | Transient msg -> raise (Injected msg)
  (* Certificates do not exist at the LP boundary (the hook fires before
     the solve); these kinds only act on outcomes and artifacts. *)
  | Cert_perturb_dual | Cert_drop -> ()

(* Flip the first sign-constrained multiplier out of its admissible
   half-space.  The exact checker enforces [y <= 0] on [Le] rows and
   [y >= 0] on [Ge] rows, so the result is unconditionally rejected —
   corruption can lose a certificate but never forge one that checks.
   [None] when every row is an equality (no sign condition to violate);
   callers then drop the certificate instead. *)
let perturbed_witness (evidence : Cert.evidence) =
  let corrupt y =
    let y = Array.copy y in
    let rows = evidence.Cert.snapshot.Cert.Snapshot.rows in
    let rec go i =
      if i >= Array.length y || i >= Array.length rows then None
      else
        match rows.(i).Cert.Snapshot.cmp with
        | Lp.Le ->
            y.(i) <- Float.abs y.(i) +. 1.0;
            Some y
        | Lp.Ge ->
            y.(i) <- -.(Float.abs y.(i) +. 1.0);
            Some y
        | Lp.Eq -> go (i + 1)
    in
    go 0
  in
  match evidence.Cert.witness with
  | Lp.Certificate.Dual y -> Option.map (fun y -> Lp.Certificate.Dual y) (corrupt y)
  | Lp.Certificate.Farkas y -> Option.map (fun y -> Lp.Certificate.Farkas y) (corrupt y)

let corrupt_evidence kind (evidence : Cert.evidence) =
  match kind with
  | Cert_drop -> None
  | Cert_perturb_dual -> (
      match perturbed_witness evidence with
      | Some witness -> Some { evidence with Cert.witness }
      | None -> None)
  | _ -> Some evidence

let corrupt_artifact kind (a : Cert.Artifact.t) =
  match (kind, a.Cert.Artifact.leaves) with
  | (Cert_perturb_dual | Cert_drop), (leaf : Cert.leaf) :: rest ->
      let leaves =
        match corrupt_evidence kind leaf.Cert.evidence with
        | Some evidence -> { leaf with Cert.evidence } :: rest
        | None -> rest
      in
      { a with Cert.Artifact.leaves }
  | _, _ -> a

let with_lp_faults p f =
  Lp.set_solve_hook
    (Some (fun _problem -> match decide p Lp_solve with None -> () | Some k -> apply_lp_fault k));
  Fun.protect ~finally:(fun () -> Lp.set_solve_hook None) f

let wrap_analyzer p a =
  let run net ~prop ~box ~splits =
    match decide p Analyzer_run with
    | None -> a.Analyzer.run net ~prop ~box ~splits
    | Some Lp_iteration_blowup -> raise Lp.Iteration_limit
    | Some Lp_numerical -> raise (Lp.Numerical_failure "injected numerical failure")
    | Some (Transient msg) -> raise (Injected msg)
    | Some (Latency s) ->
        Unix.sleepf s;
        a.Analyzer.run net ~prop ~box ~splits
    | Some Nan_bounds ->
        (* A corrupt "don't know" with a poisoned bound: the sanitation
           layer must reject it rather than record the NaN. *)
        { Analyzer.status = Analyzer.Unknown; lb = nan; bounds = None; zono = None; cert = None }
    | Some Inf_bounds ->
        (* Corrupt only the reported bound, never the status: a
           fabricated [Verified] would let the injector itself break
           soundness.  A genuine [Verified] carrying [-inf] is exactly
           the inconsistency the sanitation layer must distrust. *)
        let o = a.Analyzer.run net ~prop ~box ~splits in
        { o with Analyzer.lb = neg_infinity }
    | Some ((Cert_perturb_dual | Cert_drop) as kind) ->
        (* Corrupt only the certificate evidence, never verdict or
           bound: the engine's emission-time exact self-check must
           reject the damaged witness and count the leaf
           certificate-unavailable — a lost certificate, never a forged
           one. *)
        let o = a.Analyzer.run net ~prop ~box ~splits in
        { o with Analyzer.cert = Option.bind o.Analyzer.cert (corrupt_evidence kind) }
  in
  { a with Analyzer.run }
