module Engine = Ivan_bab.Engine
module Analyzer = Ivan_analyzer.Analyzer
module Journal = Ivan_resilience.Journal
module Clock = Ivan_clock.Clock

type limits = {
  max_seconds : float;
  max_major_words : float;
  check_every : int;
  grace_seconds : float;
}

let default_limits =
  { max_seconds = infinity; max_major_words = infinity; check_every = 8; grace_seconds = 1.0 }

(* One OCaml word is 8 bytes on every platform we target. *)
let mb_words mb = mb *. 1024.0 *. 1024.0 /. 8.0

type escalation =
  | Compacted of { reason : string; freed_words : float }
  | Degraded of { analyzer : string; reason : string }
  | Shed of { reason : string }
  | Cancelled of { reason : string }

let escalation_to_string = function
  | Compacted { reason; freed_words } ->
      Printf.sprintf "compacted (%s, freed %.0f words)" reason freed_words
  | Degraded { analyzer; reason } -> Printf.sprintf "degraded to %s (%s)" analyzer reason
  | Shed { reason } -> Printf.sprintf "shed state to journal (%s)" reason
  | Cancelled { reason } -> Printf.sprintf "cancelled (%s)" reason

type outcome = {
  run : Engine.run;
  engine : Engine.t;
  escalations : escalation list;
  checks : int;
  peak_major_words : float;
}

let major_words () = float_of_int (Gc.quick_stat ()).Gc.heap_words

let supervise ~limits ?fallbacks ?(on_escalation = fun _ -> ()) ~heuristic ?policy ?certify
    ?journal ?journal_every ~net ~prop engine0 =
  if limits.check_every <= 0 then invalid_arg "Supervisor.supervise: check_every must be positive";
  let fallbacks =
    match fallbacks with
    | Some l -> l
    | None -> [ Analyzer.deeppoly (); Analyzer.interval () ]
  in
  let engine = ref engine0 in
  let ladder = ref fallbacks in
  let shed_done = ref false in
  let escalations = ref [] in
  let checks = ref 0 in
  let peak = ref (major_words ()) in
  let started = Clock.monotonic () in
  let deadline = ref (started +. limits.max_seconds) in
  let record e =
    escalations := e :: !escalations;
    on_escalation e
  in
  (* One escalation rung.  Returns [false] when the ladder is exhausted
     and the caller must cancel. *)
  let escalate reason =
    match !ladder with
    | a :: rest -> (
        ladder := rest;
        let doc = Engine.checkpoint !engine in
        match
          Engine.restore ~analyzer:a ~heuristic ?policy ?certify ?journal ?journal_every ~net
            ~prop doc
        with
        | Ok e ->
            engine := e;
            deadline := Clock.monotonic () +. limits.grace_seconds;
            record (Degraded { analyzer = a.Analyzer.name; reason });
            true
        | Error _ ->
            (* A checkpoint the engine just wrote failing to restore is
               a bug, but the watchdog's job is to stay alive: fall
               through to shedding. *)
            ladder := [];
            false)
    | [] ->
        if !shed_done then false
        else begin
          shed_done := true;
          (match journal with
          | Some w -> Journal.append w Journal.Checkpoint (Engine.checkpoint !engine)
          | None -> ());
          Gc.compact ();
          deadline := Clock.monotonic () +. limits.grace_seconds;
          record (Shed { reason });
          true
        end
  in
  let cancel reason =
    record (Cancelled { reason });
    Engine.cancel !engine
  in
  let watchdog () =
    incr checks;
    let heap = major_words () in
    peak := max !peak heap;
    let over_mem = heap > limits.max_major_words in
    let over_time = limits.max_seconds < infinity && Clock.monotonic () > !deadline in
    if over_mem then begin
      (* Cheapest rung first: compaction, then re-measure. *)
      Gc.compact ();
      let after = major_words () in
      if after <= limits.max_major_words then begin
        record
          (Compacted
             {
               reason = Printf.sprintf "heap %.0f words over %.0f" heap limits.max_major_words;
               freed_words = heap -. after;
             });
        None
      end
      else if escalate (Printf.sprintf "heap %.0f words over %.0f" after limits.max_major_words)
      then None
      else Some (cancel "memory watermark breached with the ladder exhausted")
    end
    else if over_time then
      if escalate (Printf.sprintf "deadline exceeded (%.2fs budget)" limits.max_seconds) then
        None
      else Some (cancel "wall-clock budget exhausted with the ladder exhausted")
    else None
  in
  let steps_since = ref 0 in
  let rec loop () =
    match Engine.step !engine with
    | Engine.Finished run -> run
    | Engine.Running ->
        incr steps_since;
        if !steps_since >= limits.check_every then begin
          steps_since := 0;
          match watchdog () with Some run -> run | None -> loop ()
        end
        else loop ()
  in
  let run = loop () in
  {
    run;
    engine = !engine;
    escalations = List.rev !escalations;
    checks = !checks;
    peak_major_words = !peak;
  }
