(** Paper experiment drivers.

    One function per table/figure of the evaluation (the per-experiment
    index of DESIGN.md).  Each prints the corresponding rows in a layout
    mirroring the paper and returns nothing; results are also cached in
    the context so experiments sharing a workload (Figures 6/7, Tables 2
    and 4) run it once. *)

type scale = {
  label : string;
  classifier_instances : int;  (** robustness properties per model *)
  classifier_budget : Ivan_bab.Bab.budget;
  acas_margins : float list;  (** hardness spread of ACAS properties *)
  acas_budget : Ivan_bab.Bab.budget;
  sweep_alphas : float list;  (** Figure 8 grid *)
  sweep_thetas : float list;
  sweep_instances : int;
  perturb_instances : int;  (** Table 3 instances per model *)
  perturb_fractions : float list;  (** Table 3 columns (0.02 = 2%) *)
}

val quick : scale
(** Tiny workload for smoke tests (a few instances per model). *)

val full : scale
(** The bench workload (defaults tuned to finish in minutes). *)

type context

val create :
  ?cache_dir:string -> ?domains:int -> ?strategy:Ivan_bab.Frontier.strategy -> scale -> context
(** [cache_dir] is the zoo weight cache (see {!Ivan_data.Zoo});
    [domains] (default 1) parallelizes instance runs across OCaml 5
    domains; [strategy] (default [Fifo]) is the frontier exploration
    order of every BaB run the experiments drive. *)

val alpha_default : float
(** 0.25 — the best Figure-8 cell, used by every non-sweep experiment. *)

val theta_default : float
(** 0.01. *)

val campaign :
  context -> Ivan_data.Zoo.spec -> Ivan_nn.Quant.scheme -> Runner.comparison list
(** The (model, quantization) workload run with all three techniques;
    memoized. *)

val table1 : context -> Format.formatter -> unit

val fig6 : context -> Format.formatter -> unit

val fig7 : context -> Format.formatter -> unit
(** Covers the paper's Figures 7 and 10 (all four conv models). *)

val table2 : context -> Format.formatter -> unit

val fig8 : context -> Format.formatter -> unit

val fig9 : context -> Format.formatter -> unit

val table3 : context -> Format.formatter -> unit

val table4 : context -> Format.formatter -> unit

val theorem4 : context -> Format.formatter -> unit
(** Empirical check of the §4.4 bound (not a paper table, but the
    theory's reproduction). *)

val milp_warmstart : context -> Format.formatter -> unit
(** The §7 related-work comparison: exact MILP verification of the
    updated network, cold vs. warm-started with the original network's
    optimal witness, vs. IVAN — reproducing the paper's observation that
    MILP warm starting yields insignificant incremental speedup. *)

val ablation_heuristics : context -> Format.formatter -> unit
(** IVAN's speedup under different branching heuristics (zonotope
    coefficients, bound widths, random) — the paper's claim that the
    framework is heuristic-agnostic. *)

val run_all : context -> Format.formatter -> unit
(** Every experiment in paper order. *)

val export_csv : context -> dir:string -> unit
(** Write every campaign cached in the context as a CSV file
    ([<model>-<scheme>.csv]) under [dir] (created if missing). *)
