(** Aggregation of experiment results into the paper's metrics. *)

type summary = {
  cases : int;  (** instances considered *)
  base_solved : int;  (** solved by the from-scratch baseline *)
  tech_solved : int;
  plus_solved : int;  (** the paper's +Solved column *)
  sp_time : float;
      (** overall speedup: sum of baseline seconds over sum of technique
          seconds, restricted to baseline-solved cases (paper §6.2) *)
  sp_calls : float;  (** same ratio on analyzer calls *)
  geomean_time : float;  (** geometric mean of per-instance time speedups *)
  geomean_calls : float;
}

val summarize : Runner.comparison list -> Ivan_core.Ivan.technique -> summary
(** @raise Not_found if the technique was not measured. *)

val technique_measurement :
  Runner.comparison -> Ivan_core.Ivan.technique -> Runner.measurement

val verdict_counts : Runner.measurement list -> int * int * int
(** (verified, counterexample, unknown) — the paper's v/c/u columns. *)

val geomean : float list -> float
(** Geometric mean; 1.0 on the empty list. *)

val split_hard : Runner.comparison list -> Runner.comparison list * Runner.comparison list
(** Partition into easy ([|T_f^N| <= 5]) and hard instances by the
    original proof-tree size, as in the paper's Table 4. *)

val pp_engine_stats : Format.formatter -> Ivan_bab.Bab.stats -> unit
(** One-line rendering of the extended per-run engine statistics:
    analyzer calls and time share, branchings, tree size, frontier peak,
    max dequeued depth, and (when non-zero) heuristic failures, retries,
    fallback bounds and absorbed faults. *)

val stats_to_json : Ivan_bab.Bab.stats -> string
(** The full stats record as a one-line JSON object, including the
    resilience counters — consumed by the bench output so degraded-mode
    overhead is visible in the perf trajectory. *)

val to_csv : Runner.comparison list -> string
(** Machine-readable per-instance results: one row per (instance,
    technique) pair plus the baseline, with verdicts, analyzer calls,
    seconds, tree sizes and resilience counters.  Starts with a header
    row. *)
