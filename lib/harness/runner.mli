(** Experiment runner: baseline vs. incremental techniques.

    For each instance, runs the non-incremental verifier on the original
    network once (producing the reusable proof tree), the baseline
    verifier on the updated network from scratch, and each requested
    IVAN technique on the updated network — collecting the paper's cost
    metrics (analyzer calls, the hardware-independent Cost column) and
    wall-clock time. *)

type setting = {
  analyzer : Ivan_analyzer.Analyzer.t;
  heuristic : Ivan_bab.Heuristic.t;
  budget : Ivan_bab.Bab.budget;
  strategy : Ivan_bab.Frontier.strategy;
      (** frontier exploration order used by every BaB run of the
          setting (original, baseline and incremental alike) *)
  policy : Ivan_analyzer.Analyzer.policy;
      (** resilience (retry / fallback / node-timeout) policy used by
          every BaB run of the setting *)
  certify : bool;
      (** collect exact-checked proof certificates on every BaB run of
          the setting; the analyzer must be built with its matching
          [certify] flag ({!classifier_setting} does this itself) *)
  journal_dir : string option;
      (** when set, every BaB run journals to
          [<dir>/instance-<id>-<phase>.wal] (phases: [original],
          [baseline], one per technique name) — one file per run, so
          parallel instances never share a sink and a crash leaves an
          unambiguous journal to resume from
          ({!Ivan_bab.Engine.resume_journal_file}).  The directory is
          created if missing (one level). *)
}

val classifier_setting :
  ?budget:Ivan_bab.Bab.budget ->
  ?strategy:Ivan_bab.Frontier.strategy ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?lp_warm:bool ->
  ?certify:bool ->
  ?journal_dir:string ->
  unit ->
  setting
(** LP triangle analyzer + zonotope-coefficient ReLU splitting (the
    paper's §6.1 baseline stack).  Default budget: 400 calls, 30 s;
    default strategy: [Fifo]; default policy:
    {!Ivan_analyzer.Analyzer.default_policy}.  [lp_warm] (default true)
    warm-starts each node's LP from the parent's simplex basis; verdicts
    and trees are identical either way (the CLI exposes it as
    [--lp-warm] / [--no-lp-warm]).  [certify] (default false) makes
    every BaB run of the setting emit a proof artifact (the CLI's
    [--certify]); verdicts and trees are again identical, only
    certificates and their exact self-checks are added. *)

val acas_setting :
  ?budget:Ivan_bab.Bab.budget ->
  ?strategy:Ivan_bab.Frontier.strategy ->
  ?policy:Ivan_analyzer.Analyzer.policy ->
  ?journal_dir:string ->
  unit ->
  setting
(** Zonotope analyzer + smear input splitting (§6.4 stack).  Default
    budget: 3000 calls, 60 s; default strategy: [Fifo]; default policy:
    {!Ivan_analyzer.Analyzer.default_policy}. *)

type measurement = {
  verdict : Ivan_bab.Bab.verdict;
  calls : int;
  seconds : float;
  tree_size : int;
  tree_leaves : int;
  retries : int;  (** analyzer re-attempts by the resilience layer *)
  fallback_bounds : int;  (** nodes bounded by a degraded analyzer *)
  faults_absorbed : int;  (** analyzer failures swallowed *)
  certs_emitted : int;  (** leaf certificates emitted (certify runs) *)
  certs_unavailable : int;  (** verified leaves without a certificate *)
  artifact : Ivan_cert.Cert.Artifact.t option;
      (** the run's proof artifact under [certify] (see
          {!Ivan_bab.Bab.run}) *)
}

val solved : measurement -> bool
(** Proved or disproved within budget. *)

type comparison = {
  instance : Workload.instance;
  original : measurement;  (** verifying [N] from scratch *)
  baseline : measurement;  (** verifying [N^a] from scratch *)
  techniques : (Ivan_core.Ivan.technique * measurement) list;
      (** verifying [N^a] incrementally *)
}

val run_instance :
  setting ->
  net:Ivan_nn.Network.t ->
  updated:Ivan_nn.Network.t ->
  techniques:Ivan_core.Ivan.technique list ->
  alpha:float ->
  theta:float ->
  Workload.instance ->
  comparison
(** The original run is shared across all techniques of the instance. *)

val run_all :
  ?domains:int ->
  setting ->
  net:Ivan_nn.Network.t ->
  updated:Ivan_nn.Network.t ->
  techniques:Ivan_core.Ivan.technique list ->
  alpha:float ->
  theta:float ->
  Workload.instance list ->
  comparison list
(** [domains] > 1 runs instances in parallel on that many OCaml 5
    domains (default 1, sequential).  Instances are independent; the
    networks' dense caches are forced up front so the shared structures
    are read-only during the parallel section.  Results keep the input
    order.  Per-instance wall times remain meaningful; aggregate time
    speedups are unaffected because baseline and incremental runs of an
    instance stay on the same domain. *)
