module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Journal = Ivan_resilience.Journal

type setting = {
  analyzer : Analyzer.t;
  heuristic : Heuristic.t;
  budget : Bab.budget;
  strategy : Ivan_bab.Frontier.strategy;
  policy : Analyzer.policy;
  certify : bool;
  journal_dir : string option;
}

let classifier_setting ?(budget = { Bab.max_analyzer_calls = 400; max_seconds = 30.0 })
    ?(strategy = Ivan_bab.Frontier.Fifo) ?(policy = Analyzer.default_policy) ?(lp_warm = true)
    ?(certify = false) ?journal_dir () =
  {
    analyzer = Analyzer.lp_triangle ~warm:lp_warm ~certify ();
    heuristic = Heuristic.zono_coeff;
    budget;
    strategy;
    policy;
    certify;
    journal_dir;
  }

let acas_setting ?(budget = { Bab.max_analyzer_calls = 3000; max_seconds = 60.0 })
    ?(strategy = Ivan_bab.Frontier.Fifo) ?(policy = Analyzer.default_policy) ?journal_dir () =
  {
    analyzer = Analyzer.zonotope ();
    heuristic = Heuristic.input_smear;
    budget;
    strategy;
    policy;
    certify = false;
    journal_dir;
  }

(* One journal file per (instance, phase): crash recovery needs to know
   which run the surviving bytes belong to, and parallel instances must
   never share a sink. *)
let with_journal setting ~(instance : Workload.instance) ~phase f =
  match setting.journal_dir with
  | None -> f None
  | Some dir ->
      (if not (Sys.file_exists dir) then
         try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path =
        Filename.concat dir (Printf.sprintf "instance-%d-%s.wal" instance.Workload.id phase)
      in
      let w = Journal.open_file path in
      Fun.protect ~finally:(fun () -> Journal.close w) (fun () -> f (Some w))

type measurement = {
  verdict : Bab.verdict;
  calls : int;
  seconds : float;
  tree_size : int;
  tree_leaves : int;
  retries : int;
  fallback_bounds : int;
  faults_absorbed : int;
  certs_emitted : int;
  certs_unavailable : int;
  artifact : Ivan_cert.Cert.Artifact.t option;
}

let solved m = match m.verdict with Bab.Proved | Bab.Disproved _ -> true | Bab.Exhausted -> false

type comparison = {
  instance : Workload.instance;
  original : measurement;
  baseline : measurement;
  techniques : (Ivan.technique * measurement) list;
}

let measure_of_run (run : Bab.run) seconds =
  {
    verdict = run.Bab.verdict;
    calls = run.Bab.stats.Bab.analyzer_calls;
    seconds;
    tree_size = run.Bab.stats.Bab.tree_size;
    tree_leaves = run.Bab.stats.Bab.tree_leaves;
    retries = run.Bab.stats.Bab.retries;
    fallback_bounds = run.Bab.stats.Bab.fallback_bounds;
    faults_absorbed = run.Bab.stats.Bab.faults_absorbed;
    certs_emitted = run.Bab.stats.Bab.certs_emitted;
    certs_unavailable = run.Bab.stats.Bab.certs_unavailable;
    artifact = run.Bab.artifact;
  }

let run_instance setting ~net ~updated ~techniques ~alpha ~theta (instance : Workload.instance) =
  let prop = instance.Workload.prop in
  let original_run, original_time =
    with_journal setting ~instance ~phase:"original" (fun journal ->
        Clock.timed (fun () ->
            Bab.verify ~analyzer:setting.analyzer ~heuristic:setting.heuristic
              ~strategy:setting.strategy ~budget:setting.budget ~policy:setting.policy
              ~certify:setting.certify ?journal ~net ~prop ()))
  in
  let baseline_run, baseline_time =
    with_journal setting ~instance ~phase:"baseline" (fun journal ->
        Clock.timed (fun () ->
            Bab.verify ~analyzer:setting.analyzer ~heuristic:setting.heuristic
              ~strategy:setting.strategy ~budget:setting.budget ~policy:setting.policy
              ~certify:setting.certify ?journal ~net:updated ~prop ()))
  in
  let technique_runs =
    List.map
      (fun technique ->
        with_journal setting ~instance ~phase:(Ivan.technique_name technique) (fun journal ->
            let config =
              {
                Ivan.technique;
                alpha;
                theta;
                budget = setting.budget;
                strategy = setting.strategy;
                policy = setting.policy;
                certify = setting.certify;
                journal;
              }
            in
            let run, seconds =
              Clock.timed (fun () ->
                  Ivan.verify_updated ~analyzer:setting.analyzer ~heuristic:setting.heuristic
                    ~config ~original_run ~updated ~prop)
            in
            (technique, measure_of_run run seconds)))
      techniques
  in
  {
    instance;
    original = measure_of_run original_run original_time;
    baseline = measure_of_run baseline_run baseline_time;
    techniques = technique_runs;
  }

let run_all ?(domains = 1) setting ~net ~updated ~techniques ~alpha ~theta instances =
  if domains <= 1 then
    List.map (run_instance setting ~net ~updated ~techniques ~alpha ~theta) instances
  else begin
    (* Freeze the lazily-built dense lowerings before sharing the
       networks across domains. *)
    Ivan_nn.Network.precompute_dense net;
    Ivan_nn.Network.precompute_dense updated;
    let items = Array.of_list instances in
    let results = Array.make (Array.length items) None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= Array.length items then continue := false
        else results.(i) <- Some (run_instance setting ~net ~updated ~techniques ~alpha ~theta items.(i))
      done
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function Some c -> c | None -> assert false)
  end
