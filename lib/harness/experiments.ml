module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Perturb = Ivan_nn.Perturb
module Prop = Ivan_spec.Prop
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Theory = Ivan_core.Theory
module Zoo = Ivan_data.Zoo

type scale = {
  label : string;
  classifier_instances : int;
  classifier_budget : Bab.budget;
  acas_margins : float list;
  acas_budget : Bab.budget;
  sweep_alphas : float list;
  sweep_thetas : float list;
  sweep_instances : int;
  perturb_instances : int;
  perturb_fractions : float list;
}

let quick =
  {
    label = "quick";
    classifier_instances = 4;
    classifier_budget = { Bab.max_analyzer_calls = 120; max_seconds = 10.0 };
    acas_margins = [ 0.3 ];
    acas_budget = { Bab.max_analyzer_calls = 400; max_seconds = 20.0 };
    sweep_alphas = [ 0.0; 0.5; 1.0 ];
    sweep_thetas = [ 0.0; 0.05 ];
    sweep_instances = 3;
    perturb_instances = 2;
    perturb_fractions = [ 0.02 ];
  }

let full =
  {
    label = "full";
    classifier_instances = 25;
    classifier_budget = { Bab.max_analyzer_calls = 400; max_seconds = 30.0 };
    acas_margins = [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.5 ];
    acas_budget = { Bab.max_analyzer_calls = 3000; max_seconds = 60.0 };
    sweep_alphas = [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
    sweep_thetas = [ 0.0; 0.005; 0.01; 0.02; 0.05 ];
    sweep_instances = 15;
    perturb_instances = 12;
    perturb_fractions = [ 0.02; 0.05; 0.10 ];
  }

let alpha_default = 0.25

let theta_default = 0.01

type context = {
  scale : scale;
  cache_dir : string option;
  domains : int;
  strategy : Ivan_bab.Frontier.strategy;
  nets : (string, Network.t) Hashtbl.t;
  campaigns : (string, Runner.comparison list) Hashtbl.t;
}

let create ?cache_dir ?(domains = 1) ?(strategy = Ivan_bab.Frontier.Fifo) scale =
  {
    scale;
    cache_dir;
    domains;
    strategy;
    nets = Hashtbl.create 8;
    campaigns = Hashtbl.create 16;
  }

let net_of ctx spec =
  match Hashtbl.find_opt ctx.nets spec.Zoo.name with
  | Some net -> net
  | None ->
      let net = Zoo.load_or_train ?cache_dir:ctx.cache_dir spec in
      Hashtbl.add ctx.nets spec.Zoo.name net;
      net

let all_techniques = [ Ivan.Reuse; Ivan.Reorder; Ivan.Full ]

let campaign ctx spec scheme =
  let key = Printf.sprintf "%s/%s" spec.Zoo.name (Quant.scheme_name scheme) in
  match Hashtbl.find_opt ctx.campaigns key with
  | Some c -> c
  | None ->
      let net = net_of ctx spec in
      let updated = Quant.network scheme net in
      let setting, instances =
        match spec.Zoo.kind with
        | Zoo.Acas ->
            ( Runner.acas_setting ~budget:ctx.scale.acas_budget ~strategy:ctx.strategy (),
              Workload.acas_instances ~net ~margins:ctx.scale.acas_margins ~seed:333 )
        | Zoo.Image_classifier ->
            ( Runner.classifier_setting ~budget:ctx.scale.classifier_budget
                ~strategy:ctx.strategy (),
              Workload.robustness_instances ~spec ~net ~count:ctx.scale.classifier_instances )
      in
      let result =
        Runner.run_all ~domains:ctx.domains setting ~net ~updated ~techniques:all_techniques
          ~alpha:alpha_default ~theta:theta_default instances
      in
      Hashtbl.add ctx.campaigns key result;
      result

(* ---------------- printers ---------------- *)

let hr fmt = Format.fprintf fmt "%s@." (String.make 78 '-')

let section fmt title =
  Format.fprintf fmt "@.%s@." (String.make 78 '=');
  Format.fprintf fmt "%s@." title;
  Format.fprintf fmt "%s@." (String.make 78 '=')

let verdict_char = function
  | Bab.Proved -> 'V'
  | Bab.Disproved _ -> 'C'
  | Bab.Exhausted -> 'U'

let table1 ctx fmt =
  section fmt "Table 1: models used for the evaluation";
  Format.fprintf fmt "%-16s %-52s %8s %6s %8s %6s@." "Model" "Architecture" "#Neurons" "#ReLU"
    "TestAcc" "eps";
  hr fmt;
  List.iter
    (fun spec ->
      let net = net_of ctx spec in
      let eps = if spec.Zoo.kind = Zoo.Acas then "-" else Printf.sprintf "%.3f" spec.Zoo.eps in
      Format.fprintf fmt "%-16s %-52s %8d %6d %8.3f %6s@." spec.Zoo.name spec.Zoo.description
        (Network.num_neurons net) (Network.num_relus net) (Zoo.accuracy spec net) eps)
    Zoo.table1

(* Per-instance scatter (printed as rows): baseline time vs speedup. *)
let scatter fmt comparisons =
  Format.fprintf fmt "%4s %9s %9s %8s %8s %6s %6s  %s@." "id" "base(s)" "ivan(s)" "base#" "ivan#"
    "SpT" "Sp#" "verdict base/ivan";
  let rows =
    List.sort
      (fun (a : Runner.comparison) b ->
        compare a.Runner.baseline.Runner.seconds b.Runner.baseline.Runner.seconds)
      comparisons
  in
  List.iter
    (fun (c : Runner.comparison) ->
      let ivan = Report.technique_measurement c Ivan.Full in
      let base = c.Runner.baseline in
      let sp_t = if ivan.Runner.seconds > 0.0 then base.Runner.seconds /. ivan.Runner.seconds else 1.0 in
      let sp_c =
        if ivan.Runner.calls > 0 then float_of_int base.Runner.calls /. float_of_int ivan.Runner.calls
        else 1.0
      in
      Format.fprintf fmt "%4d %9.3f %9.3f %8d %8d %6.2f %6.2f  %c/%c@." c.Runner.instance.Workload.id
        base.Runner.seconds ivan.Runner.seconds base.Runner.calls ivan.Runner.calls sp_t sp_c
        (verdict_char base.Runner.verdict) (verdict_char ivan.Runner.verdict))
    rows;
  let s = Report.summarize comparisons Ivan.Full in
  Format.fprintf fmt "overall: Sp(time) %.2fx  Sp(calls) %.2fx  geomean(time) %.2fx  +solved %d@."
    s.Report.sp_time s.Report.sp_calls s.Report.geomean_time s.Report.plus_solved

let quant_schemes = [ Quant.Int16; Quant.Int8 ]

let fig6 ctx fmt =
  section fmt "Figure 6: IVAN speedup on FCN-MNIST local robustness (per-instance)";
  List.iter
    (fun scheme ->
      Format.fprintf fmt "@.[%s quantization]@." (Quant.scheme_name scheme);
      scatter fmt (campaign ctx Zoo.fcn_mnist scheme))
    quant_schemes

let fig7 ctx fmt =
  section fmt "Figures 7 and 10: IVAN speedup on convolutional models (per-instance)";
  List.iter
    (fun spec ->
      List.iter
        (fun scheme ->
          Format.fprintf fmt "@.[%s, %s]@." spec.Zoo.name (Quant.scheme_name scheme);
          scatter fmt (campaign ctx spec scheme))
        quant_schemes)
    [ Zoo.conv_mnist; Zoo.conv_cifar_wide; Zoo.conv_cifar; Zoo.conv_cifar_deep ]

let table2 ctx fmt =
  section fmt "Table 2: ablation -- overall speedup Sp and +Solved per technique";
  Format.fprintf fmt "%-16s %-6s | %-15s | %-15s | %-15s@." "Model" "Approx" "IVAN[Reuse]"
    "IVAN[Reorder]" "IVAN";
  Format.fprintf fmt "%-16s %-6s | %6s %8s | %6s %8s | %6s %8s@." "" "" "Sp" "+Solved" "Sp"
    "+Solved" "Sp" "+Solved";
  hr fmt;
  List.iter
    (fun spec ->
      List.iter
        (fun scheme ->
          let comparisons = campaign ctx spec scheme in
          let cell technique =
            let s = Report.summarize comparisons technique in
            (s.Report.sp_time, s.Report.plus_solved)
          in
          let reuse_sp, reuse_plus = cell Ivan.Reuse in
          let reorder_sp, reorder_plus = cell Ivan.Reorder in
          let full_sp, full_plus = cell Ivan.Full in
          Format.fprintf fmt "%-16s %-6s | %5.2fx %8d | %5.2fx %8d | %5.2fx %8d@." spec.Zoo.name
            (Quant.scheme_name scheme) reuse_sp reuse_plus reorder_sp reorder_plus full_sp
            full_plus)
        quant_schemes)
    Zoo.classifiers;
  (* Paper headline: geometric mean of per-model overall speedups. *)
  let geo technique =
    Report.geomean
      (List.concat_map
         (fun spec ->
           List.map
             (fun scheme -> (Report.summarize (campaign ctx spec scheme) technique).Report.sp_time)
             quant_schemes)
         Zoo.classifiers)
  in
  Format.fprintf fmt "geomean over models: reuse %.2fx  reorder %.2fx  ivan %.2fx@."
    (geo Ivan.Reuse) (geo Ivan.Reorder) (geo Ivan.Full)

(* Figure 8: hyperparameter sweep on FCN-MNIST int16.  Original and
   baseline runs are shared across the grid; only the incremental run
   depends on (alpha, theta). *)
let fig8 ctx fmt =
  section fmt "Figure 8: speedup vs (alpha, theta) on FCN-MNIST int16";
  let spec = Zoo.fcn_mnist in
  let net = net_of ctx spec in
  let updated = Quant.network Quant.Int16 net in
  let setting =
    Runner.classifier_setting ~budget:ctx.scale.classifier_budget ~strategy:ctx.strategy ()
  in
  let instances =
    Workload.robustness_instances ~spec ~net ~count:ctx.scale.sweep_instances
  in
  (* Precompute the shared runs. *)
  let prepared =
    List.map
      (fun (inst : Workload.instance) ->
        let prop = inst.Workload.prop in
        let original =
          Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
            ~strategy:setting.Runner.strategy ~budget:setting.Runner.budget ~net ~prop ()
        in
        let baseline, baseline_time =
          Clock.timed (fun () ->
              Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
                ~strategy:setting.Runner.strategy ~budget:setting.Runner.budget ~net:updated
                ~prop ())
        in
        (inst, original, baseline, baseline_time))
      instances
  in
  let cell technique alpha theta =
    let base_total = ref 0.0 and tech_total = ref 0.0 in
    List.iter
      (fun ((inst : Workload.instance), original, baseline, baseline_time) ->
        if baseline.Bab.verdict <> Bab.Exhausted then begin
          let config =
            {
              Ivan.technique;
              alpha;
              theta;
              budget = setting.Runner.budget;
              strategy = setting.Runner.strategy;
              policy = setting.Runner.policy;
              certify = setting.Runner.certify;
              journal = None;
            }
          in
          let _run, tech_time =
            Clock.timed (fun () ->
                Ivan.verify_updated ~analyzer:setting.Runner.analyzer
                  ~heuristic:setting.Runner.heuristic ~config ~original_run:original ~updated
                  ~prop:inst.Workload.prop)
          in
          base_total := !base_total +. baseline_time;
          tech_total := !tech_total +. tech_time
        end)
      prepared;
    if !tech_total > 0.0 then !base_total /. !tech_total else 1.0
  in
  let print_grid title technique =
    Format.fprintf fmt "@.[%s]@." title;
    Format.fprintf fmt "%8s" "theta\\a";
    List.iter (fun a -> Format.fprintf fmt " %6.2f" a) ctx.scale.sweep_alphas;
    Format.fprintf fmt "@.";
    List.iter
      (fun theta ->
        Format.fprintf fmt "%8.3f" theta;
        List.iter
          (fun alpha -> Format.fprintf fmt " %5.2fx" (cell technique alpha theta))
          ctx.scale.sweep_alphas;
        Format.fprintf fmt "@.")
      ctx.scale.sweep_thetas
  in
  print_grid "reorder only (Fig. 8a)" Ivan.Reorder;
  print_grid "full IVAN (Fig. 8b)" Ivan.Full

let fig9 ctx fmt =
  section fmt "Figure 9: IVAN speedup on ACAS-XU global properties (input splitting)";
  List.iter
    (fun scheme ->
      Format.fprintf fmt "@.[%s quantization]@." (Quant.scheme_name scheme);
      scatter fmt (campaign ctx Zoo.acas scheme))
    quant_schemes

let table3 ctx fmt =
  section fmt "Table 3: IVAN speedup under uniform random weight perturbation";
  Format.fprintf fmt "%-16s" "Model";
  List.iter
    (fun f -> Format.fprintf fmt " %7s" (Printf.sprintf "%g%%" (100.0 *. f)))
    ctx.scale.perturb_fractions;
  Format.fprintf fmt "@.";
  hr fmt;
  List.iter
    (fun spec ->
      let net = net_of ctx spec in
      let setting =
        Runner.classifier_setting ~budget:ctx.scale.classifier_budget ~strategy:ctx.strategy ()
      in
      let instances =
        Workload.robustness_instances ~spec ~net ~count:ctx.scale.perturb_instances
      in
      Format.fprintf fmt "%-16s" spec.Zoo.name;
      List.iter
        (fun fraction ->
          let rng = Rng.create (spec.Zoo.seed + int_of_float (fraction *. 1000.0)) in
          let updated = Perturb.random_relative ~rng ~fraction net in
          let comparisons =
            Runner.run_all ~domains:ctx.domains setting ~net ~updated ~techniques:[ Ivan.Full ]
              ~alpha:alpha_default ~theta:theta_default instances
          in
          let s = Report.summarize comparisons Ivan.Full in
          Format.fprintf fmt " %6.2fx" s.Report.sp_time)
        ctx.scale.perturb_fractions;
      Format.fprintf fmt "@.")
    Zoo.classifiers

let table4 ctx fmt =
  section fmt "Table 4: detailed statistics (easy |T_f| <= 5 vs hard instances)";
  Format.fprintf fmt
    "%-16s %-6s %5s %9s %9s %8s %8s | %5s %5s %8s %8s | %5s %5s %8s %8s@." "Model" "Approx"
    "Cases" "v/c/u(b)" "v/c/u(I)" "Cost_b" "Cost_I" "Slv_b" "Slv_I" "T_b(s)" "T_I(s)" "Slv_b"
    "Slv_I" "T_b(s)" "T_I(s)";
  hr fmt;
  List.iter
    (fun spec ->
      List.iter
        (fun scheme ->
          let comparisons = campaign ctx spec scheme in
          let ivan_of c = Report.technique_measurement c Ivan.Full in
          let bases = List.map (fun c -> c.Runner.baseline) comparisons in
          let ivans = List.map ivan_of comparisons in
          let bv, bc, bu = Report.verdict_counts bases in
          let iv, ic, iu = Report.verdict_counts ivans in
          let avg_calls ms =
            if ms = [] then 0.0
            else
              float_of_int (List.fold_left (fun acc m -> acc + m.Runner.calls) 0 ms)
              /. float_of_int (List.length ms)
          in
          let easy, hard = Report.split_hard comparisons in
          let stats cs =
            let solved_b =
              List.length (List.filter (fun c -> Runner.solved c.Runner.baseline) cs)
            in
            let solved_i = List.length (List.filter (fun c -> Runner.solved (ivan_of c)) cs) in
            let time sel = List.fold_left (fun acc c -> acc +. (sel c).Runner.seconds) 0.0 cs in
            (solved_b, solved_i, time (fun c -> c.Runner.baseline), time ivan_of)
          in
          let esb, esi, etb, eti = stats easy in
          let hsb, hsi, htb, hti = stats hard in
          Format.fprintf fmt
            "%-16s %-6s %5d %9s %9s %8.2f %8.2f | %5d %5d %8.2f %8.2f | %5d %5d %8.2f %8.2f@."
            spec.Zoo.name (Quant.scheme_name scheme) (List.length comparisons)
            (Printf.sprintf "%d/%d/%d" bv bc bu)
            (Printf.sprintf "%d/%d/%d" iv ic iu)
            (avg_calls bases) (avg_calls ivans) esb esi etb eti hsb hsi htb hti)
        quant_schemes)
    Zoo.classifiers

let theorem4 ctx fmt =
  section fmt "Theorem 4: last-layer perturbation bound (empirical check)";
  let spec = Zoo.fcn_mnist in
  let net = net_of ctx spec in
  let setting =
    Runner.classifier_setting ~budget:ctx.scale.classifier_budget ~strategy:ctx.strategy ()
  in
  let instances =
    Workload.robustness_instances ~spec ~net ~count:ctx.scale.sweep_instances
  in
  let rng = Rng.create 4242 in
  let trials = 10 in
  List.iter
    (fun (inst : Workload.instance) ->
      let prop = inst.Workload.prop in
      let run =
        Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
          ~strategy:setting.Runner.strategy ~budget:setting.Runner.budget ~net ~prop ()
      in
      if run.Bab.verdict = Bab.Proved then begin
        let tree = run.Bab.tree in
        let delta = Theory.delta_bound ~analyzer:setting.Runner.analyzer net ~prop tree in
        if Float.is_finite delta && delta > 0.0 then begin
          let preserved budget =
            let count = ref 0 in
            for _ = 1 to trials do
              let p = Perturb.last_layer ~rng ~delta:budget net in
              if Theory.verified_with_tree ~analyzer:setting.Runner.analyzer p ~prop tree then
                incr count
            done;
            !count
          in
          let within = preserved (0.9 *. delta) in
          let beyond = preserved (20.0 *. delta) in
          Format.fprintf fmt
            "%-24s delta=%.4g  preserved within 0.9*delta: %d/%d  at 20*delta: %d/%d@."
            prop.Prop.name delta within trials beyond trials
        end
      end)
    instances;
  Format.fprintf fmt "(Theorem 4 guarantees 'within' = all; beyond the bound no guarantee.)@."

(* MILP warm starting (paper §7): verify N exactly with MILP, then
   verify the quantized N^a (a) cold, (b) warm-started with the margin
   of N's optimal witness on N^a, and (c) with IVAN's incremental BaB.
   The paper observed warm starting buys almost nothing; the node
   counts below reproduce that. *)
let milp_warmstart ctx fmt =
  section fmt "Section 7 comparison: MILP warm starting vs IVAN";
  let spec = Zoo.fcn_mnist in
  let net = net_of ctx spec in
  let updated = Quant.network Quant.Int16 net in
  let setting =
    Runner.classifier_setting ~budget:ctx.scale.classifier_budget ~strategy:ctx.strategy ()
  in
  let instances = Workload.robustness_instances ~spec ~net ~count:ctx.scale.sweep_instances in
  Format.fprintf fmt "%-22s %10s %10s %10s %12s@." "property" "cold-nodes" "warm-nodes"
    "warm-gain" "ivan-calls";
  let cold_total = ref 0 and warm_total = ref 0 and ivan_total = ref 0 in
  List.iter
    (fun (inst : Workload.instance) ->
      let prop = inst.Workload.prop in
      let original =
        Ivan_analyzer.Analyzer.milp_verify ~max_nodes:4000 net ~prop ~box:prop.Ivan_spec.Prop.input
          ~splits:Ivan_domains.Splits.empty
      in
      let cold =
        Ivan_analyzer.Analyzer.milp_verify ~max_nodes:4000 updated ~prop
          ~box:prop.Ivan_spec.Prop.input ~splits:Ivan_domains.Splits.empty
      in
      (* Verified originals have no violating witness to warm start
         from — which is precisely why warm starting buys nothing on
         them; falsified ones pass the old minimizer's margin. *)
      let incumbent =
        Option.map
          (fun witness -> Ivan_spec.Prop.margin prop (Network.forward updated witness))
          original.Ivan_analyzer.Analyzer.witness
      in
      let warm =
        Ivan_analyzer.Analyzer.milp_verify ~max_nodes:4000 ?incumbent updated ~prop
          ~box:prop.Ivan_spec.Prop.input ~splits:Ivan_domains.Splits.empty
      in
      begin
          (* IVAN's incremental BaB on the same instance. *)
          let bab_original =
            Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
              ~strategy:setting.Runner.strategy ~budget:setting.Runner.budget ~net ~prop ()
          in
          let ivan_run =
            Ivan.verify_updated ~analyzer:setting.Runner.analyzer
              ~heuristic:setting.Runner.heuristic
              ~config:
                {
                  Ivan.default_config with
                  budget = setting.Runner.budget;
                  strategy = setting.Runner.strategy;
                }
              ~original_run:bab_original ~updated ~prop
          in
          cold_total := !cold_total + cold.Ivan_analyzer.Analyzer.nodes;
          warm_total := !warm_total + warm.Ivan_analyzer.Analyzer.nodes;
          ivan_total := !ivan_total + ivan_run.Bab.stats.Bab.analyzer_calls;
          Format.fprintf fmt "%-22s %10d %10d %9.2fx %12d@." prop.Ivan_spec.Prop.name
            cold.Ivan_analyzer.Analyzer.nodes warm.Ivan_analyzer.Analyzer.nodes
            (float_of_int cold.Ivan_analyzer.Analyzer.nodes
            /. float_of_int (max 1 warm.Ivan_analyzer.Analyzer.nodes))
            ivan_run.Bab.stats.Bab.analyzer_calls
      end)
    instances;
  Format.fprintf fmt "totals: cold %d nodes, warm %d nodes (gain %.2fx) -- IVAN %d calls@."
    !cold_total !warm_total
    (float_of_int !cold_total /. float_of_int (max 1 !warm_total))
    !ivan_total;
  Format.fprintf fmt
    "(Matches the paper's observation: warm-started MILP gains little, because@.\
     \ the incumbent rarely prunes the phase search; IVAN's tree reuse does.)@."

(* Heuristic-agnosticism: the incremental machinery must speed up BaB
   regardless of the base branching heuristic. *)
let ablation_heuristics ctx fmt =
  section fmt "Ablation: IVAN speedup under different branching heuristics";
  let spec = Zoo.fcn_mnist in
  let net = net_of ctx spec in
  let updated = Quant.network Quant.Int16 net in
  let instances = Workload.robustness_instances ~spec ~net ~count:ctx.scale.sweep_instances in
  Format.fprintf fmt "%-16s %8s %8s %10s@." "heuristic" "Sp(time)" "Sp(call)" "+solved";
  List.iter
    (fun heuristic ->
      let setting =
        { (Runner.classifier_setting ~budget:ctx.scale.classifier_budget
             ~strategy:ctx.strategy ())
          with
          Runner.heuristic
        }
      in
      let comparisons =
        Runner.run_all setting ~net ~updated ~techniques:[ Ivan.Full ] ~alpha:alpha_default
          ~theta:theta_default instances
      in
      let s = Report.summarize comparisons Ivan.Full in
      Format.fprintf fmt "%-16s %7.2fx %7.2fx %10d@." heuristic.Ivan_bab.Heuristic.name
        s.Report.sp_time s.Report.sp_calls s.Report.plus_solved)
    [
      Ivan_bab.Heuristic.zono_coeff;
      Ivan_bab.Heuristic.width;
      Ivan_bab.Heuristic.random ~seed:7;
    ]

let run_all ctx fmt =
  table1 ctx fmt;
  fig6 ctx fmt;
  fig7 ctx fmt;
  table2 ctx fmt;
  fig8 ctx fmt;
  fig9 ctx fmt;
  table3 ctx fmt;
  table4 ctx fmt;
  theorem4 ctx fmt;
  milp_warmstart ctx fmt;
  ablation_heuristics ctx fmt

let export_csv ctx ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Hashtbl.iter
    (fun key comparisons ->
      let file = String.map (fun c -> if c = '/' then '-' else c) key ^ ".csv" in
      let oc = open_out (Filename.concat dir file) in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Report.to_csv comparisons)))
    ctx.campaigns
