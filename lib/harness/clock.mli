(** Wall-clock helpers shared by the harness, CLI and profiler.

    One home for the [Unix.gettimeofday]-based timing previously
    duplicated across the runner, the experiment campaigns and the
    profiler. *)

val now : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]). *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result together with the
    elapsed wall-clock seconds. *)
