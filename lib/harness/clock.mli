(** Clock helpers shared by the harness, CLI and profiler.

    Re-export of {!Ivan_clock.Clock}, the shared low-level time module:
    {!now} / {!wall} for epoch timestamps, {!monotonic} for deadline
    math, {!timed} for elapsed-time measurement (monotonic-backed, so an
    NTP step mid-run cannot corrupt a measurement). *)

include module type of Ivan_clock.Clock
