include Ivan_clock.Clock
