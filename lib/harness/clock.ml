let now = Unix.gettimeofday

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
