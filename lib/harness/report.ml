module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan

type summary = {
  cases : int;
  base_solved : int;
  tech_solved : int;
  plus_solved : int;
  sp_time : float;
  sp_calls : float;
  geomean_time : float;
  geomean_calls : float;
}

let technique_measurement (c : Runner.comparison) technique = List.assoc technique c.Runner.techniques

let geomean = function
  | [] -> 1.0
  | xs ->
      let log_sum = List.fold_left (fun acc x -> acc +. log (Float.max 1e-12 x)) 0.0 xs in
      exp (log_sum /. float_of_int (List.length xs))

let summarize comparisons technique =
  let cases = List.length comparisons in
  let base_solved = ref 0 and tech_solved = ref 0 and plus_solved = ref 0 in
  let base_time = ref 0.0 and tech_time = ref 0.0 in
  let base_calls = ref 0 and tech_calls = ref 0 in
  let time_ratios = ref [] and call_ratios = ref [] in
  List.iter
    (fun (c : Runner.comparison) ->
      let tech = technique_measurement c technique in
      let base = c.Runner.baseline in
      if Runner.solved base then incr base_solved;
      if Runner.solved tech then incr tech_solved;
      if Runner.solved tech && not (Runner.solved base) then incr plus_solved;
      (* Overall speedup over the baseline-solved set, per the paper. *)
      if Runner.solved base then begin
        base_time := !base_time +. base.Runner.seconds;
        tech_time := !tech_time +. tech.Runner.seconds;
        base_calls := !base_calls + base.Runner.calls;
        tech_calls := !tech_calls + tech.Runner.calls;
        if tech.Runner.seconds > 0.0 then
          time_ratios := (base.Runner.seconds /. tech.Runner.seconds) :: !time_ratios;
        if tech.Runner.calls > 0 then
          call_ratios :=
            (float_of_int base.Runner.calls /. float_of_int tech.Runner.calls) :: !call_ratios
      end)
    comparisons;
  {
    cases;
    base_solved = !base_solved;
    tech_solved = !tech_solved;
    plus_solved = !plus_solved;
    sp_time = (if !tech_time > 0.0 then !base_time /. !tech_time else 1.0);
    sp_calls =
      (if !tech_calls > 0 then float_of_int !base_calls /. float_of_int !tech_calls else 1.0);
    geomean_time = geomean !time_ratios;
    geomean_calls = geomean !call_ratios;
  }

let verdict_counts measurements =
  List.fold_left
    (fun (v, c, u) (m : Runner.measurement) ->
      match m.Runner.verdict with
      | Bab.Proved -> (v + 1, c, u)
      | Bab.Disproved _ -> (v, c + 1, u)
      | Bab.Exhausted -> (v, c, u + 1))
    (0, 0, 0) measurements

let split_hard comparisons =
  List.partition (fun (c : Runner.comparison) -> c.Runner.original.Runner.tree_size <= 5) comparisons

let verdict_name (m : Runner.measurement) =
  match m.Runner.verdict with
  | Bab.Proved -> "verified"
  | Bab.Disproved _ -> "counterexample"
  | Bab.Exhausted -> "unknown"

let pp_engine_stats fmt (s : Bab.stats) =
  let share =
    if s.Bab.elapsed_seconds > 0.0 then
      100.0 *. s.Bab.analyzer_seconds /. s.Bab.elapsed_seconds
    else 0.0
  in
  Format.fprintf fmt
    "analyzer calls %d (%.3fs, %.0f%% of %.3fs)  branchings %d  tree %d/%d  frontier peak %d  \
     max depth %d"
    s.Bab.analyzer_calls s.Bab.analyzer_seconds share s.Bab.elapsed_seconds s.Bab.branchings
    s.Bab.tree_size s.Bab.tree_leaves s.Bab.max_frontier s.Bab.max_depth;
  if s.Bab.heuristic_failures > 0 then
    Format.fprintf fmt "  heuristic failures %d" s.Bab.heuristic_failures;
  if s.Bab.retries > 0 then Format.fprintf fmt "  retries %d" s.Bab.retries;
  if s.Bab.fallback_bounds > 0 then Format.fprintf fmt "  fallback bounds %d" s.Bab.fallback_bounds;
  if s.Bab.faults_absorbed > 0 then Format.fprintf fmt "  faults absorbed %d" s.Bab.faults_absorbed;
  if s.Bab.lp_warm_hits + s.Bab.lp_warm_misses + s.Bab.lp_cold_solves > 0 then
    Format.fprintf fmt "  LP solves %d warm / %d miss / %d cold (%d pivots)" s.Bab.lp_warm_hits
      s.Bab.lp_warm_misses s.Bab.lp_cold_solves s.Bab.lp_pivots;
  if s.Bab.certs_emitted + s.Bab.certs_unavailable > 0 then
    Format.fprintf fmt "  certificates %d emitted / %d unavailable" s.Bab.certs_emitted
      s.Bab.certs_unavailable

(* JSON floats cannot be non-finite; elapsed/analyzer seconds always
   are, so plain %g is enough here. *)
let stats_to_json (s : Bab.stats) =
  Printf.sprintf
    {|{"analyzer_calls":%d,"branchings":%d,"tree_size":%d,"tree_leaves":%d,"elapsed_seconds":%g,"analyzer_seconds":%g,"max_frontier":%d,"max_depth":%d,"heuristic_failures":%d,"retries":%d,"fallback_bounds":%d,"faults_absorbed":%d,"lp_warm_hits":%d,"lp_warm_misses":%d,"lp_cold_solves":%d,"lp_pivots":%d,"certs_emitted":%d,"certs_unavailable":%d}|}
    s.Bab.analyzer_calls s.Bab.branchings s.Bab.tree_size s.Bab.tree_leaves s.Bab.elapsed_seconds
    s.Bab.analyzer_seconds s.Bab.max_frontier s.Bab.max_depth s.Bab.heuristic_failures s.Bab.retries
    s.Bab.fallback_bounds s.Bab.faults_absorbed s.Bab.lp_warm_hits s.Bab.lp_warm_misses
    s.Bab.lp_cold_solves s.Bab.lp_pivots s.Bab.certs_emitted s.Bab.certs_unavailable

let to_csv comparisons =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "instance,property,run,verdict,calls,seconds,tree_size,tree_leaves,retries,fallback_bounds,faults_absorbed\n";
  let row id name run (m : Runner.measurement) =
    Buffer.add_string buf
      (Printf.sprintf "%d,%s,%s,%s,%d,%.6f,%d,%d,%d,%d,%d\n" id name run (verdict_name m)
         m.Runner.calls m.Runner.seconds m.Runner.tree_size m.Runner.tree_leaves m.Runner.retries
         m.Runner.fallback_bounds m.Runner.faults_absorbed)
  in
  List.iter
    (fun (c : Runner.comparison) ->
      let id = c.Runner.instance.Workload.id in
      let name = c.Runner.instance.Workload.prop.Ivan_spec.Prop.name in
      row id name "original" c.Runner.original;
      row id name "baseline" c.Runner.baseline;
      List.iter
        (fun (technique, m) -> row id name (Ivan.technique_name technique) m)
        c.Runner.techniques)
    comparisons;
  Buffer.contents buf
