module Rng = Ivan_tensor.Rng
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan

type trial = { alpha : float; theta : float; speedup : float }

type outcome = { best : trial; trials : trial list }

let search ?(trials = 20) ?(seed = 20240705) ~setting ~technique ~net ~updated instances =
  if instances = [] then invalid_arg "Tune.search: empty calibration workload";
  let rng = Rng.create seed in
  (* Shared preparation: original proof trees and baseline timings. *)
  let prepared =
    List.map
      (fun (inst : Workload.instance) ->
        let prop = inst.Workload.prop in
        let original =
          Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
            ~strategy:setting.Runner.strategy ~budget:setting.Runner.budget ~net ~prop ()
        in
        let baseline, baseline_time =
          Clock.timed (fun () ->
              Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
                ~strategy:setting.Runner.strategy ~budget:setting.Runner.budget ~net:updated
                ~prop ())
        in
        (inst, original, baseline.Bab.verdict <> Bab.Exhausted, baseline_time))
      instances
  in
  let evaluate alpha theta =
    let base_total = ref 0.0 and tech_total = ref 0.0 in
    List.iter
      (fun ((inst : Workload.instance), original, baseline_solved, baseline_time) ->
        if baseline_solved then begin
          let config =
            {
              Ivan.technique;
              alpha;
              theta;
              budget = setting.Runner.budget;
              strategy = setting.Runner.strategy;
              policy = setting.Runner.policy;
              certify = setting.Runner.certify;
              journal = None;
            }
          in
          let _run, tech_time =
            Clock.timed (fun () ->
                Ivan.verify_updated ~analyzer:setting.Runner.analyzer
                  ~heuristic:setting.Runner.heuristic ~config ~original_run:original ~updated
                  ~prop:inst.Workload.prop)
          in
          base_total := !base_total +. baseline_time;
          tech_total := !tech_total +. tech_time
        end)
      prepared;
    { alpha; theta; speedup = (if !tech_total > 0.0 then !base_total /. !tech_total else 1.0) }
  in
  let candidates =
    (Ivan.default_config.Ivan.alpha, Ivan.default_config.Ivan.theta)
    :: List.init (max 0 (trials - 1)) (fun _ ->
           let alpha = Rng.float rng 1.0 in
           (* theta: log-uniform-ish over [0.001, 0.1] plus mass at 0. *)
           let theta =
             if Rng.float rng 1.0 < 0.15 then 0.0
             else 0.001 *. exp (Rng.float rng 1.0 *. log 100.0)
           in
           (alpha, theta))
  in
  let evaluated = List.map (fun (alpha, theta) -> evaluate alpha theta) candidates in
  let best =
    List.fold_left
      (fun acc t -> if t.speedup > acc.speedup then t else acc)
      (List.hd evaluated) (List.tl evaluated)
  in
  { best; trials = evaluated }
