module Mat = Ivan_tensor.Mat

let activation_name = function
  | Layer.Relu -> "relu"
  | Layer.Identity -> "identity"
  | Layer.Leaky_relu slope -> Printf.sprintf "leaky:%h" slope
  | Layer.Sigmoid -> "sigmoid"
  | Layer.Tanh -> "tanh"

let activation_of_name s =
  match s with
  | "relu" -> Layer.Relu
  | "identity" -> Layer.Identity
  | "sigmoid" -> Layer.Sigmoid
  | "tanh" -> Layer.Tanh
  | _ -> (
      match String.split_on_char ':' s with
      | [ "leaky"; slope ] -> (
          match float_of_string_opt slope with
          | Some v -> Layer.Leaky_relu v
          | None -> failwith (Printf.sprintf "Serialize: bad leaky slope %S" slope))
      | _ -> failwith (Printf.sprintf "Serialize: unknown activation %S" s))

(* Caps on parsed counts: a corrupt or hostile file must fail with a
   parse error, not an attempted multi-gigabyte allocation. *)
let max_layers = 100_000
let max_dim = 1_000_000

let bounded_int what ~cap s =
  match int_of_string_opt s with
  | None -> failwith (Printf.sprintf "Serialize: bad %s %S" what s)
  | Some v when v < 0 || v > cap ->
      failwith (Printf.sprintf "Serialize: %s %d out of range [0, %d]" what v cap)
  | Some v -> v

let floats_line prefix values =
  let buf = Buffer.create (16 * Array.length values) in
  Buffer.add_string buf prefix;
  Array.iter
    (fun v ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%h" v))
    values;
  Buffer.contents buf

let parse_floats_line expected_prefix line =
  match String.split_on_char ' ' (String.trim line) with
  | prefix :: rest when prefix = expected_prefix ->
      Array.of_list
        (List.map
           (fun s ->
             match float_of_string_opt s with
             | Some v -> v
             | None -> failwith (Printf.sprintf "Serialize: bad float token %S" s))
           rest)
  | _ -> failwith (Printf.sprintf "Serialize: expected %S line, got %S" expected_prefix line)

let to_string n =
  let buf = Buffer.create 4096 in
  let layers = Network.layers n in
  Buffer.add_string buf (Printf.sprintf "network %d\n" (Array.length layers));
  Array.iter
    (fun layer ->
      (match Layer.affine layer with
      | Layer.Dense { weights; bias } ->
          Buffer.add_string buf
            (Printf.sprintf "layer dense %d %d %s\n" (Mat.rows weights) (Mat.cols weights)
               (activation_name (Layer.activation layer)));
          Buffer.add_string buf (floats_line "bias:" bias);
          Buffer.add_char buf '\n';
          for i = 0 to Mat.rows weights - 1 do
            Buffer.add_string buf (floats_line "row:" (Mat.row weights i));
            Buffer.add_char buf '\n'
          done
      | Layer.Conv2d { spec; kernel; bias } ->
          Buffer.add_string buf
            (Printf.sprintf "layer conv %d %d %d %d %d %d %d %d %s\n" spec.in_channels
               spec.in_height spec.in_width spec.out_channels spec.kernel_h spec.kernel_w
               spec.stride spec.padding
               (activation_name (Layer.activation layer)));
          Buffer.add_string buf (floats_line "bias:" bias);
          Buffer.add_char buf '\n';
          Buffer.add_string buf (floats_line "kernel:" kernel);
          Buffer.add_char buf '\n'))
    layers;
  Buffer.contents buf

let of_string_exn s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  let lines = ref lines in
  let next () =
    match !lines with
    | [] -> failwith "Serialize: unexpected end of input"
    | l :: rest ->
        lines := rest;
        String.trim l
  in
  let header = next () in
  let count =
    match String.split_on_char ' ' header with
    | [ "network"; c ] -> bounded_int "layer count" ~cap:max_layers c
    | _ -> failwith (Printf.sprintf "Serialize: bad header %S" header)
  in
  let parse_layer () =
    let decl = next () in
    match String.split_on_char ' ' decl with
    | [ "layer"; "dense"; rows; cols; act ] ->
        let rows = bounded_int "dense rows" ~cap:max_dim rows
        and cols = bounded_int "dense cols" ~cap:max_dim cols in
        let bias = parse_floats_line "bias:" (next ()) in
        let weight_rows = Array.init rows (fun _ -> parse_floats_line "row:" (next ())) in
        Array.iter
          (fun r ->
            if Array.length r <> cols then failwith "Serialize: dense row length mismatch")
          weight_rows;
        Layer.make
          (Layer.Dense { weights = Mat.of_arrays weight_rows; bias })
          (activation_of_name act)
    | [ "layer"; "conv"; in_c; in_h; in_w; out_c; kh; kw; stride; pad; act ] ->
        let dim what s = bounded_int what ~cap:max_dim s in
        let spec =
          {
            Layer.in_channels = dim "conv in_channels" in_c;
            in_height = dim "conv in_height" in_h;
            in_width = dim "conv in_width" in_w;
            out_channels = dim "conv out_channels" out_c;
            kernel_h = dim "conv kernel_h" kh;
            kernel_w = dim "conv kernel_w" kw;
            stride = dim "conv stride" stride;
            padding = dim "conv padding" pad;
          }
        in
        let bias = parse_floats_line "bias:" (next ()) in
        let kernel = parse_floats_line "kernel:" (next ()) in
        Layer.make (Layer.Conv2d { spec; kernel; bias }) (activation_of_name act)
    | _ -> failwith (Printf.sprintf "Serialize: bad layer declaration %S" decl)
  in
  Network.make (List.init count (fun _ -> parse_layer ()))

let of_string s =
  (* Constructor sanity checks (ragged matrices, bias length, conv
     geometry, empty networks) raise Invalid_argument; a parser must
     report them as parse failures, not let them escape untyped. *)
  try of_string_exn s
  with Invalid_argument msg -> failwith ("Serialize: invalid network: " ^ msg)

let to_file path n =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string n))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
