(** LP / MILP encodings of verification subproblems.

    Two ways to turn a (network, property, box, splits) subproblem into
    an {!Ivan_lp.Lp.problem}:

    - the {e legacy one-shot builders} {!build_lp} / {!build_milp},
      which construct a fresh minimal LP for a single subproblem; and
    - the {e persistent encodings} {!Triangle} / {!Milp}, built once per
      (network, property) pair and then {e specialized} per
      branch-and-bound node by mutating only variable bounds and the
      row slots of affected units.

    The persistent encodings are the incremental-verification fast path:
    because every node of a property shares one LP of fixed shape, a
    parent node's simplex basis ({!Ivan_lp.Lp.Basis.t}) is directly
    installable in its children, which is what makes
    {!Ivan_lp.Lp.solve_from} warm starts possible.  Specialization
    reproduces the legacy per-node polytope exactly (the extra permanent
    variables are pinned by equality rows or [0,0] bounds at nodes where
    the legacy encoding would have substituted them away), so both paths
    compute identical optima and verdicts.

    {!Triangle.specialize} / {!Milp.specialize} raise {!Mismatch} for
    subproblems the fixed shape cannot express — in practice, splits on
    units that were stable at the property root, which can occur when a
    specification tree built for one network is replayed against an
    updated network.  Callers fall back to the legacy builders. *)

module Lp = Ivan_lp.Lp
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Bounds = Ivan_domains.Bounds

exception Mismatch
(** A persistent encoding cannot represent the requested subproblem
    (wrong input dimension, a split on an unencoded unit, or corrupt
    bounds).  Recoverable: rebuild per node with the legacy builder. *)

val build_lp :
  Network.t ->
  prop:Prop.t ->
  box:Box.t ->
  splits:Splits.t ->
  bounds:Bounds.t ->
  Lp.problem * float
(** One-shot triangle-relaxation LP for a single subproblem.  Returns
    the problem and the objective constant: the subproblem's optimum is
    [lp objective + constant]. *)

val build_milp :
  Network.t ->
  prop:Prop.t ->
  box:Box.t ->
  splits:Splits.t ->
  bounds:Bounds.t ->
  Lp.problem * float * int list
(** One-shot big-M MILP for a single subproblem: problem, objective
    constant, and the indicator (binary) variable indices.
    @raise Invalid_argument on non-ReLU networks. *)

(** Persistent triangle-relaxation encoding. *)
module Triangle : sig
  type t

  val build : Network.t -> prop:Prop.t -> t option
  (** Build the per-property encoding from the property root's DeepPoly
      bounds.  [None] when the root itself is DeepPoly-infeasible (the
      property is vacuously true everywhere, so no LP is ever needed). *)

  val specialize : t -> box:Box.t -> splits:Splits.t -> bounds:Bounds.t -> unit
  (** Rewrite variable bounds and per-unit rows for one node's
      (box, splits, bounds).  After this the underlying problem is
      exactly the node's triangle LP.  @raise Mismatch when the node is
      not expressible in this encoding (caller should fall back to
      {!build_lp}). *)

  val lp : t -> Lp.problem
  (** The shared underlying problem.  Solving it records a basis usable
      by {!Ivan_lp.Lp.solve_from} on any later specialization of the
      same encoding. *)

  val const : t -> float
  (** Objective constant (fixed across specializations: root-stable
      units are substituted with node-independent expressions). *)
end

(** Persistent big-M MILP encoding (plain-ReLU networks only). *)
module Milp : sig
  type t

  val build : Network.t -> prop:Prop.t -> t option
  (** [None] for unsupported (non-ReLU) networks or a DeepPoly-infeasible
      property root. *)

  val specialize : t -> box:Box.t -> splits:Splits.t -> bounds:Bounds.t -> unit
  (** @raise Mismatch when the node is not expressible (fall back to
      {!build_milp}). *)

  val lp : t -> Lp.problem

  val const : t -> float

  val binaries : t -> int list
  (** All indicator variables, including ones pinned to a single phase
      by the current specialization (pinned binaries are integral by
      their bounds, so the MILP search never branches on them). *)
end
