module Mat = Ivan_tensor.Mat
module Lp = Ivan_lp.Lp
module Network = Ivan_nn.Network
module Layer = Ivan_nn.Layer
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Bounds = Ivan_domains.Bounds
module Deeppoly = Ivan_domains.Deeppoly

exception Mismatch

(* Linear expressions over the LP variables: dense coefficient array
   plus a constant. *)
type expr = { coeffs : float array; const : float }

let sparse_terms coeffs =
  let acc = ref [] in
  for j = Array.length coeffs - 1 downto 0 do
    if coeffs.(j) <> 0.0 then acc := (j, coeffs.(j)) :: !acc
  done;
  !acc

(* Sparse (indices, coefficients) arrays of an expression — the form
   {!Lp.add_row} / {!Lp.set_row} consume directly. *)
let sparse_arrays coeffs =
  let nnz = ref 0 in
  Array.iter (fun c -> if c <> 0.0 then incr nnz) coeffs;
  let idx = Array.make !nnz 0 in
  let cf = Array.make !nnz 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun j c ->
      if c <> 0.0 then begin
        idx.(!k) <- j;
        cf.(!k) <- c;
        incr k
      end)
    coeffs;
  (idx, cf)

(* Count the extra LP variables needed: one per ambiguous piecewise
   unit, and one error variable per smooth unit. *)
let count_extra_vars net bounds ~splits =
  let layers = Network.layers net in
  let total = ref 0 in
  Array.iteri
    (fun li layer ->
      match Layer.classify (Layer.activation layer) with
      | Layer.Linear_activation -> ()
      | Layer.Smooth _ -> total := !total + Layer.output_dim layer
      | Layer.Piecewise _ ->
          let b = bounds.Bounds.layers.(li) in
          for idx = 0 to Ivan_tensor.Vec.dim b.Bounds.pre_lo - 1 do
            let r = Relu_id.make ~layer:li ~index:idx in
            if
              b.Bounds.pre_lo.(idx) < 0.0
              && b.Bounds.pre_hi.(idx) > 0.0
              && not (Splits.mem r splits)
            then incr total
          done)
    layers;
  !total

(* Affine image of per-neuron expressions under (w, b).  Hot path:
   iterate raw weight rows and skip structural zeros (conv-lowered rows
   are sparse). *)
let affine_exprs nvars w b exprs =
  let cols = Mat.cols w in
  Array.init (Mat.rows w) (fun i ->
      let row = Mat.row w i in
      let coeffs = Array.make nvars 0.0 in
      let const = ref b.(i) in
      for j = 0 to cols - 1 do
        let wij = row.(j) in
        if wij <> 0.0 then begin
          let e = exprs.(j) in
          const := !const +. (wij *. e.const);
          let ec = e.coeffs in
          for v = 0 to nvars - 1 do
            let c = ec.(v) in
            if c <> 0.0 then coeffs.(v) <- coeffs.(v) +. (wij *. c)
          done
        end
      done;
      { coeffs; const = !const })

(* Dense objective vector and constant for [c . outputs + offset]. *)
let objective_of nvars exprs ~c ~offset =
  let obj = Array.make nvars 0.0 in
  let const = ref offset in
  Array.iteri
    (fun i ci ->
      if ci <> 0.0 then begin
        let e = exprs.(i) in
        const := !const +. (ci *. e.const);
        for v = 0 to nvars - 1 do
          obj.(v) <- obj.(v) +. (ci *. e.coeffs.(v))
        done
      end)
    c;
  (obj, !const)

(* Unit-coefficient expressions for the input variables. *)
let input_exprs nvars d =
  Array.init d (fun j ->
      let coeffs = Array.make nvars 0.0 in
      coeffs.(j) <- 1.0;
      { coeffs; const = 0.0 })

let var_expr nvars v =
  let coeffs = Array.make nvars 0.0 in
  coeffs.(v) <- 1.0;
  { coeffs; const = 0.0 }

let scale_expr s e = { coeffs = Array.map (fun c -> s *. c) e.coeffs; const = s *. e.const }

(* ------------------------------------------------------------------ *)
(* Legacy one-shot builders: a fresh LP per subproblem.  Kept as the
   fallback for subproblems the persistent encodings cannot express
   (splits on units that are stable at the property root — possible
   when a specification tree built for one network is replayed on an
   update with different root bounds). *)

let build_lp net ~prop ~box ~splits ~bounds =
  let d = Box.dim box in
  let nvars = d + count_extra_vars net bounds ~splits in
  let lp = Lp.create nvars in
  for j = 0 to d - 1 do
    Lp.set_bounds lp j (Box.lo_at box j) (Box.hi_at box j)
  done;
  let next_var = ref d in
  let exprs = ref (input_exprs nvars d) in
  let layers = Network.layers net in
  Array.iteri
    (fun li layer ->
      let w, b = Layer.dense_affine layer in
      let pre = affine_exprs nvars w b !exprs in
      let dim = Array.length pre in
      match Layer.classify (Layer.activation layer) with
      | Layer.Linear_activation -> exprs := pre
      | Layer.Smooth { f; df } ->
          (* post = lambda*pre + e with e a fresh variable bounded by
             the parallel-line sandwich (no extra rows needed). *)
          let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
          let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
          let post =
            Array.init dim (fun idx ->
                let e = pre.(idx) in
                let l = lb.(idx) and u = ub.(idx) in
                let lambda = Float.min (df l) (df u) in
                let g_lo = f l -. (lambda *. l) and g_hi = f u -. (lambda *. u) in
                let v = !next_var in
                incr next_var;
                Lp.set_bounds lp v g_lo g_hi;
                let coeffs = Array.map (fun c -> lambda *. c) e.coeffs in
                coeffs.(v) <- coeffs.(v) +. 1.0;
                { coeffs; const = lambda *. e.const })
          in
          exprs := post
      | Layer.Piecewise slope ->
          let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
          let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
          let post =
            Array.init dim (fun idx ->
                let e = pre.(idx) in
                let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
                match phase with
                | Some Splits.Pos ->
                    (* assume pre >= 0: -(pre) <= 0; the unit is exactly
                       the identity on this side. *)
                    Lp.add_constraint lp
                      (sparse_terms (Array.map (fun v -> -.v) e.coeffs))
                      Lp.Le e.const;
                    e
                | Some Splits.Neg ->
                    (* assume pre <= 0; the unit is exactly y = slope*x
                       (the zero function for ReLU). *)
                    Lp.add_constraint lp (sparse_terms e.coeffs) Lp.Le (-.e.const);
                    scale_expr slope e
                | None ->
                    if lb.(idx) >= 0.0 then e
                    else if ub.(idx) <= 0.0 then scale_expr slope e
                    else begin
                      (* Triangle relaxation with a fresh variable v:
                         v >= pre, v >= slope*pre, and v below the chord
                         through (l, slope*l) and (u, u). *)
                      let v = !next_var in
                      incr next_var;
                      let l = lb.(idx) and u = ub.(idx) in
                      Lp.set_bounds lp v (slope *. l) u;
                      (* v >= pre:  pre - v <= 0 *)
                      Lp.add_constraint lp ((v, -1.0) :: sparse_terms e.coeffs) Lp.Le (-.e.const);
                      (* v >= slope*pre (vacuous for ReLU: covered by
                         the variable's lower bound of 0). *)
                      if slope > 0.0 then
                        Lp.add_constraint lp
                          ((v, -1.0) :: sparse_terms (Array.map (fun c -> slope *. c) e.coeffs))
                          Lp.Le (-.slope *. e.const);
                      (* chord: v <= lambda*pre + mu, with
                         lambda = (u - slope*l)/(u - l) and
                         mu = l*(slope - lambda). *)
                      let lambda = (u -. (slope *. l)) /. (u -. l) in
                      let mu = l *. (slope -. lambda) in
                      let chord = Array.map (fun cv -> -.lambda *. cv) e.coeffs in
                      Lp.add_constraint lp
                        ((v, 1.0) :: sparse_terms chord)
                        Lp.Le (mu +. (lambda *. e.const));
                      let coeffs = Array.make nvars 0.0 in
                      coeffs.(v) <- 1.0;
                      { coeffs; const = 0.0 }
                    end)
          in
          exprs := post)
    layers;
  let obj, const = objective_of nvars !exprs ~c:prop.Prop.c ~offset:prop.Prop.offset in
  Lp.set_objective lp obj;
  (lp, const)

let build_milp net ~prop ~box ~splits ~bounds =
  let d = Box.dim box in
  let ambiguous = count_extra_vars net bounds ~splits in
  (* Inputs, then (v, z) pairs per ambiguous ReLU. *)
  let nvars = d + (2 * ambiguous) in
  let lp = Lp.create nvars in
  for j = 0 to d - 1 do
    Lp.set_bounds lp j (Box.lo_at box j) (Box.hi_at box j)
  done;
  let next_var = ref d in
  let binaries = ref [] in
  let exprs = ref (input_exprs nvars d) in
  let layers = Network.layers net in
  Array.iteri
    (fun li layer ->
      let w, b = Layer.dense_affine layer in
      let pre = affine_exprs nvars w b !exprs in
      let dim = Array.length pre in
      match Layer.classify (Layer.activation layer) with
      | Layer.Linear_activation -> exprs := pre
      | Layer.Smooth _ -> invalid_arg "Analyzer.milp: only plain ReLU networks are supported"
      | Layer.Piecewise slope ->
          if slope <> 0.0 then
            invalid_arg "Analyzer.milp: only plain ReLU networks are supported";
          let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
          let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
          let zero_expr = { coeffs = Array.make nvars 0.0; const = 0.0 } in
          let post =
            Array.init dim (fun idx ->
                let e = pre.(idx) in
                let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
                match phase with
                | Some Splits.Pos ->
                    Lp.add_constraint lp
                      (sparse_terms (Array.map (fun v -> -.v) e.coeffs))
                      Lp.Le e.const;
                    e
                | Some Splits.Neg ->
                    Lp.add_constraint lp (sparse_terms e.coeffs) Lp.Le (-.e.const);
                    zero_expr
                | None ->
                    if lb.(idx) >= 0.0 then e
                    else if ub.(idx) <= 0.0 then zero_expr
                    else begin
                      (* v = relu(pre) with indicator z:
                         v >= 0, v >= pre, v <= pre - l(1-z), v <= u z. *)
                      let v = !next_var in
                      let z = !next_var + 1 in
                      next_var := !next_var + 2;
                      binaries := z :: !binaries;
                      let l = lb.(idx) and u = ub.(idx) in
                      Lp.set_bounds lp v 0.0 u;
                      Lp.set_bounds lp z 0.0 1.0;
                      (* pre - v <= 0 *)
                      Lp.add_constraint lp ((v, -1.0) :: sparse_terms e.coeffs) Lp.Le (-.e.const);
                      (* v - pre - l z <= -l *)
                      Lp.add_constraint lp
                        ((v, 1.0) :: (z, -.l) :: sparse_terms (Array.map (fun c -> -.c) e.coeffs))
                        Lp.Le (-.l +. e.const);
                      (* v - u z <= 0 *)
                      Lp.add_constraint lp [ (v, 1.0); (z, -.u) ] Lp.Le 0.0;
                      let coeffs = Array.make nvars 0.0 in
                      coeffs.(v) <- 1.0;
                      { coeffs; const = 0.0 }
                    end)
          in
          exprs := post)
    layers;
  let obj, const = objective_of nvars !exprs ~c:prop.Prop.c ~offset:prop.Prop.offset in
  Lp.set_objective lp obj;
  (lp, const, List.rev !binaries)

(* ------------------------------------------------------------------ *)
(* Persistent triangle encoding.

   Built ONCE per (network, property) from the root DeepPoly bounds and
   then specialized per BaB node by mutating only variable bounds and
   the rows of the affected units — no expression recomputation, no
   fresh LP.  The key invariant making this possible: stability is
   monotone under subproblem tightening, so a unit stable at the root
   stays stable (same phase) at every node and can be substituted away
   for good, while every root-ambiguous unit gets a permanent LP
   variable [v] and four permanent row slots whose coefficients are
   rewritten per node:

     A:  pre - v <= 0                (v >= pre)
     B:  v - lambda*pre <= mu        (chord / upper equality side)
     C:  slope*pre - v <= 0          (v >= slope*pre)
     D:  +/- pre <= 0                (the node's split assumption)

   Unused slots become vacuous all-zero rows.  The per-node row/bound
   table below reproduces the legacy per-node polytope exactly (same
   feasible projection, hence the same optimum), so switching between
   the persistent and legacy builders never changes a verdict.  The
   fixed shape is also what makes warm starts work: a parent's
   {!Lp.Basis.t} maps 1:1 onto every child's problem. *)

type punit = {
  var : int;
  relu : Relu_id.t;
  li : int;
  idx : int;
  slope : float;
  pre_const : float;
  pre_idx : int array;
  pre_cf : float array;
  row_a : int;
  row_b : int;
  row_c : int;
  row_d : int;
  vrow_idx : int array;  (* [| var; pre vars... |], shared by rows A-C *)
  scratch : float array;  (* coefficient scratch, len 1 + nnz(pre) *)
  d_scratch : float array;  (* split-row scratch, len nnz(pre) *)
}

type sunit = {
  svar : int;
  sli : int;
  sidx : int;
  sf : float -> float;
  sdf : float -> float;
  spre_const : float;
  spre_idx : int array;
  spre_cf : float array;
  row_hi : int;
  row_lo : int;
  svrow_idx : int array;
  sscratch : float array;
}

module Triangle = struct
  type t = {
    lp : Lp.problem;
    const : float;
    d : int;
    punits : punit array;
    sunits : sunit array;
    encoded : Relu_id.Set.t;
  }

  let lp t = t.lp

  let const t = t.const

  let build net ~prop =
    let box = prop.Prop.input in
    match Deeppoly.analyze net ~box ~splits:Splits.empty with
    | Deeppoly.Infeasible -> None
    | Deeppoly.Feasible dp ->
        let bounds = Deeppoly.bounds dp in
        let d = Box.dim box in
        let nvars = d + count_extra_vars net bounds ~splits:Splits.empty in
        let lp = Lp.create nvars in
        for j = 0 to d - 1 do
          Lp.set_bounds lp j (Box.lo_at box j) (Box.hi_at box j)
        done;
        let next_var = ref d in
        let punits = ref [] in
        let sunits = ref [] in
        let exprs = ref (input_exprs nvars d) in
        let layers = Network.layers net in
        Array.iteri
          (fun li layer ->
            let w, b = Layer.dense_affine layer in
            let pre = affine_exprs nvars w b !exprs in
            let dim = Array.length pre in
            match Layer.classify (Layer.activation layer) with
            | Layer.Linear_activation -> exprs := pre
            | Layer.Smooth { f; df } ->
                let post =
                  Array.init dim (fun idx ->
                      let e = pre.(idx) in
                      let v = !next_var in
                      incr next_var;
                      let pre_idx, pre_cf = sparse_arrays e.coeffs in
                      let svrow_idx = Array.append [| v |] pre_idx in
                      let row_hi = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                      let row_lo = Lp.add_row lp [||] [||] Lp.Ge 0.0 in
                      sunits :=
                        {
                          svar = v;
                          sli = li;
                          sidx = idx;
                          sf = f;
                          sdf = df;
                          spre_const = e.const;
                          spre_idx = pre_idx;
                          spre_cf = pre_cf;
                          row_hi;
                          row_lo;
                          svrow_idx;
                          sscratch = Array.make (Array.length svrow_idx) 0.0;
                        }
                        :: !sunits;
                      var_expr nvars v)
                in
                exprs := post
            | Layer.Piecewise slope ->
                let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
                let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
                let post =
                  Array.init dim (fun idx ->
                      let e = pre.(idx) in
                      if lb.(idx) >= 0.0 then e
                      else if ub.(idx) <= 0.0 then scale_expr slope e
                      else begin
                        let v = !next_var in
                        incr next_var;
                        let pre_idx, pre_cf = sparse_arrays e.coeffs in
                        let vrow_idx = Array.append [| v |] pre_idx in
                        let row_a = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                        let row_b = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                        let row_c = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                        let row_d = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                        punits :=
                          {
                            var = v;
                            relu = Relu_id.make ~layer:li ~index:idx;
                            li;
                            idx;
                            slope;
                            pre_const = e.const;
                            pre_idx;
                            pre_cf;
                            row_a;
                            row_b;
                            row_c;
                            row_d;
                            vrow_idx;
                            scratch = Array.make (Array.length vrow_idx) 0.0;
                            d_scratch = Array.make (Array.length pre_idx) 0.0;
                          }
                          :: !punits;
                        var_expr nvars v
                      end)
                in
                exprs := post)
          layers;
        let obj, const = objective_of nvars !exprs ~c:prop.Prop.c ~offset:prop.Prop.offset in
        Lp.set_objective lp obj;
        let punits = Array.of_list (List.rev !punits) in
        let sunits = Array.of_list (List.rev !sunits) in
        let encoded =
          Array.fold_left (fun acc u -> Relu_id.Set.add u.relu acc) Relu_id.Set.empty punits
        in
        Some { lp; const; d; punits; sunits; encoded }

  (* Write a vacuous all-zero row into a slot (0 <= 0). *)
  let vacuous lp row = Lp.set_row lp row [||] [||] Lp.Le 0.0

  (* Row over [var; pre...]: scale*pre + vcoeff*v <= rhs. *)
  let set_vrow lp row vrow_idx scratch pre_cf ~vcoeff ~scale ~rhs =
    scratch.(0) <- vcoeff;
    for k = 0 to Array.length pre_cf - 1 do
      scratch.(k + 1) <- scale *. pre_cf.(k)
    done;
    Lp.set_row lp row vrow_idx scratch Lp.Le rhs

  let specialize t ~box ~splits ~bounds =
    if Box.dim box <> t.d then raise Mismatch;
    List.iter
      (fun (id, _) -> if not (Relu_id.Set.mem id t.encoded) then raise Mismatch)
      (Splits.bindings splits);
    for j = 0 to t.d - 1 do
      Lp.set_bounds t.lp j (Box.lo_at box j) (Box.hi_at box j)
    done;
    Array.iter
      (fun u ->
        let l = bounds.Bounds.layers.(u.li).Bounds.pre_lo.(u.idx) in
        let h = bounds.Bounds.layers.(u.li).Bounds.pre_hi.(u.idx) in
        if Float.is_nan l || Float.is_nan h || l > h then raise Mismatch;
        let s = u.slope in
        let lp = t.lp in
        let a_active () =
          (* A: pre - v <= 0 *)
          set_vrow lp u.row_a u.vrow_idx u.scratch u.pre_cf ~vcoeff:(-1.0) ~scale:1.0
            ~rhs:(-.u.pre_const)
        in
        let b_chord lambda mu =
          (* B: v - lambda*pre <= mu *)
          set_vrow lp u.row_b u.vrow_idx u.scratch u.pre_cf ~vcoeff:1.0 ~scale:(-.lambda)
            ~rhs:(mu +. (lambda *. u.pre_const))
        in
        let c_active () =
          (* C: slope*pre - v <= 0 *)
          set_vrow lp u.row_c u.vrow_idx u.scratch u.pre_cf ~vcoeff:(-1.0) ~scale:s
            ~rhs:(-.s *. u.pre_const)
        in
        let d_split sign =
          (* D: sign*pre <= 0 *)
          for k = 0 to Array.length u.pre_cf - 1 do
            u.d_scratch.(k) <- sign *. u.pre_cf.(k)
          done;
          Lp.set_row lp u.row_d u.pre_idx u.d_scratch Lp.Le (-.sign *. u.pre_const)
        in
        (* Even when rows pin [v] exactly (v = pre or v = slope*pre),
           give it the finite bounds those rows imply rather than
           leaving it free: the feasible set is unchanged, but dual
           certificates need finite variable bounds to absorb the float
           residue of reduced costs — a free variable with a nonzero
           exact reduced cost would imply a bound of -inf and the proof
           checker would have to reject the certificate. *)
        let bound_var lo hi = Lp.set_bounds lp u.var lo hi in
        match Splits.find u.relu splits with
        | Some Splits.Pos ->
            (* v = pre on this side, plus the assumption pre >= 0. *)
            a_active ();
            b_chord 1.0 0.0;
            vacuous lp u.row_c;
            d_split (-1.0);
            bound_var (Float.max l 0.0) (Float.max h 0.0)
        | Some Splits.Neg ->
            (* v = slope*pre, plus pre <= 0. *)
            vacuous lp u.row_a;
            if s > 0.0 then begin
              b_chord s 0.0;
              c_active ();
              bound_var (s *. Float.min l 0.0) (s *. Float.min h 0.0)
            end
            else begin
              vacuous lp u.row_b;
              vacuous lp u.row_c;
              Lp.set_bounds lp u.var 0.0 0.0
            end;
            d_split 1.0
        | None ->
            if l >= 0.0 then begin
              (* Stable-positive at this node: v = pre exactly. *)
              a_active ();
              b_chord 1.0 0.0;
              vacuous lp u.row_c;
              vacuous lp u.row_d;
              bound_var l h
            end
            else if h <= 0.0 then begin
              (* Stable-negative: v = slope*pre exactly. *)
              vacuous lp u.row_a;
              if s > 0.0 then begin
                b_chord s 0.0;
                c_active ();
                bound_var (s *. l) (s *. h)
              end
              else begin
                vacuous lp u.row_b;
                vacuous lp u.row_c;
                Lp.set_bounds lp u.var 0.0 0.0
              end;
              vacuous lp u.row_d
            end
            else begin
              (* Ambiguous: the triangle relaxation. *)
              a_active ();
              let lambda = (h -. (s *. l)) /. (h -. l) in
              let mu = l *. (s -. lambda) in
              b_chord lambda mu;
              if s > 0.0 then c_active () else vacuous lp u.row_c;
              vacuous lp u.row_d;
              Lp.set_bounds lp u.var (s *. l) h
            end)
      t.punits;
    Array.iter
      (fun u ->
        let l = bounds.Bounds.layers.(u.sli).Bounds.pre_lo.(u.sidx) in
        let h = bounds.Bounds.layers.(u.sli).Bounds.pre_hi.(u.sidx) in
        if Float.is_nan l || Float.is_nan h || l > h then raise Mismatch;
        let lambda = Float.min (u.sdf l) (u.sdf h) in
        let g_lo = u.sf l -. (lambda *. l) in
        let g_hi = u.sf h -. (lambda *. h) in
        (* v - lambda*pre within the sandwich [g_lo, g_hi]. *)
        u.sscratch.(0) <- 1.0;
        for k = 0 to Array.length u.spre_cf - 1 do
          u.sscratch.(k + 1) <- -.lambda *. u.spre_cf.(k)
        done;
        Lp.set_row t.lp u.row_hi u.svrow_idx u.sscratch Lp.Le (g_hi +. (lambda *. u.spre_const));
        Lp.set_row t.lp u.row_lo u.svrow_idx u.sscratch Lp.Ge (g_lo +. (lambda *. u.spre_const));
        (* Finite bounds implied by the sandwich rows and pre in [l, h]
           (same rationale as the piecewise units above: free variables
           make dual certificates uncheckable). *)
        let lo_p = Float.min (lambda *. l) (lambda *. h)
        and hi_p = Float.max (lambda *. l) (lambda *. h) in
        Lp.set_bounds t.lp u.svar
          (lo_p +. Float.min g_lo g_hi)
          (hi_p +. Float.max g_lo g_hi))
      t.sunits
end

(* ------------------------------------------------------------------ *)
(* Persistent MILP encoding: big-M indicator form with a permanent
   (v, z) pair per root-ambiguous ReLU.  Units resolved at a node
   (stable or split) keep their pair with z pinned to the known phase
   ([1,1] or [0,0]) and vacuous big-M rows, so the integral feasible
   set — and hence the exact MILP optimum — matches the legacy per-node
   encoding; pinned binaries are never fractional, so branching visits
   the same candidates.  Row slots per unit:

     M1:  pre - v <= 0          (fixed at build)
     M2:  v - pre - l*z <= -l   (per-node l; vacuous when z pinned 0)
     M3:  v - u*z <= 0          (per-node u; vacuous when z pinned)
     M4:  +/- pre <= 0          (split assumption; vacuous otherwise) *)

type munit = {
  mvar : int;
  mz : int;
  mrelu : Relu_id.t;
  mli : int;
  midx : int;
  mpre_const : float;
  mpre_idx : int array;
  mpre_cf : float array;
  row_m2 : int;
  row_m3 : int;
  row_m4 : int;
  m2_idx : int array;  (* [| v; z; pre vars... |] *)
  m2_scratch : float array;
  m4_scratch : float array;  (* len nnz(pre) *)
}

module Milp = struct
  type t = {
    lp : Lp.problem;
    const : float;
    d : int;
    munits : munit array;
    binaries : int list;
    encoded : Relu_id.Set.t;
  }

  let lp t = t.lp

  let const t = t.const

  let binaries t = t.binaries

  (* Plain-ReLU networks only; [None] for anything else (the legacy
     builder then raises the historical [Invalid_argument] at node
     time) or for a root-infeasible property. *)
  let build net ~prop =
    let supported =
      Array.for_all
        (fun layer ->
          match Layer.classify (Layer.activation layer) with
          | Layer.Linear_activation -> true
          | Layer.Smooth _ -> false
          | Layer.Piecewise slope -> slope = 0.0)
        (Network.layers net)
    in
    if not supported then None
    else
      let box = prop.Prop.input in
      match Deeppoly.analyze net ~box ~splits:Splits.empty with
      | Deeppoly.Infeasible -> None
      | Deeppoly.Feasible dp ->
          let bounds = Deeppoly.bounds dp in
          let d = Box.dim box in
          let ambiguous = count_extra_vars net bounds ~splits:Splits.empty in
          let nvars = d + (2 * ambiguous) in
          let lp = Lp.create nvars in
          for j = 0 to d - 1 do
            Lp.set_bounds lp j (Box.lo_at box j) (Box.hi_at box j)
          done;
          let next_var = ref d in
          let munits = ref [] in
          let exprs = ref (input_exprs nvars d) in
          let layers = Network.layers net in
          Array.iteri
            (fun li layer ->
              let w, b = Layer.dense_affine layer in
              let pre = affine_exprs nvars w b !exprs in
              let dim = Array.length pre in
              match Layer.classify (Layer.activation layer) with
              | Layer.Linear_activation -> exprs := pre
              | Layer.Smooth _ -> assert false
              | Layer.Piecewise _ ->
                  let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
                  let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
                  let zero_expr = { coeffs = Array.make nvars 0.0; const = 0.0 } in
                  let post =
                    Array.init dim (fun idx ->
                        let e = pre.(idx) in
                        if lb.(idx) >= 0.0 then e
                        else if ub.(idx) <= 0.0 then zero_expr
                        else begin
                          let v = !next_var in
                          let z = !next_var + 1 in
                          next_var := !next_var + 2;
                          let pre_idx, pre_cf = sparse_arrays e.coeffs in
                          (* M1 is phase-independent: v >= pre always
                             holds for ReLU. *)
                          let m1_idx = Array.append [| v |] pre_idx in
                          let m1_cf = Array.append [| -1.0 |] pre_cf in
                          ignore (Lp.add_row lp m1_idx m1_cf Lp.Le (-.e.const));
                          let row_m2 = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                          let row_m3 = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                          let row_m4 = Lp.add_row lp [||] [||] Lp.Le 0.0 in
                          let m2_idx = Array.append [| v; z |] pre_idx in
                          munits :=
                            {
                              mvar = v;
                              mz = z;
                              mrelu = Relu_id.make ~layer:li ~index:idx;
                              mli = li;
                              midx = idx;
                              mpre_const = e.const;
                              mpre_idx = pre_idx;
                              mpre_cf = pre_cf;
                              row_m2;
                              row_m3;
                              row_m4;
                              m2_idx;
                              m2_scratch = Array.make (Array.length m2_idx) 0.0;
                              m4_scratch = Array.make (Array.length pre_idx) 0.0;
                            }
                            :: !munits;
                          var_expr nvars v
                        end)
                  in
                  exprs := post)
            layers;
          let obj, const = objective_of nvars !exprs ~c:prop.Prop.c ~offset:prop.Prop.offset in
          Lp.set_objective lp obj;
          let munits = Array.of_list (List.rev !munits) in
          let binaries = Array.to_list (Array.map (fun u -> u.mz) munits) in
          let encoded =
            Array.fold_left (fun acc u -> Relu_id.Set.add u.mrelu acc) Relu_id.Set.empty munits
          in
          Some { lp; const; d; munits; binaries; encoded }

  let vacuous lp row = Lp.set_row lp row [||] [||] Lp.Le 0.0

  let specialize t ~box ~splits ~bounds =
    if Box.dim box <> t.d then raise Mismatch;
    List.iter
      (fun (id, _) -> if not (Relu_id.Set.mem id t.encoded) then raise Mismatch)
      (Splits.bindings splits);
    for j = 0 to t.d - 1 do
      Lp.set_bounds t.lp j (Box.lo_at box j) (Box.hi_at box j)
    done;
    Array.iter
      (fun u ->
        let l = bounds.Bounds.layers.(u.mli).Bounds.pre_lo.(u.midx) in
        let h = bounds.Bounds.layers.(u.mli).Bounds.pre_hi.(u.midx) in
        if Float.is_nan l || Float.is_nan h || l > h then raise Mismatch;
        let lp = t.lp in
        let m4_split sign =
          for k = 0 to Array.length u.mpre_cf - 1 do
            u.m4_scratch.(k) <- sign *. u.mpre_cf.(k)
          done;
          Lp.set_row lp u.row_m4 u.mpre_idx u.m4_scratch Lp.Le (-.sign *. u.mpre_const)
        in
        let m2_active ll =
          (* v - pre - l*z <= -l *)
          u.m2_scratch.(0) <- 1.0;
          u.m2_scratch.(1) <- -.ll;
          for k = 0 to Array.length u.mpre_cf - 1 do
            u.m2_scratch.(k + 2) <- -.u.mpre_cf.(k)
          done;
          Lp.set_row lp u.row_m2 u.m2_idx u.m2_scratch Lp.Le (-.ll +. u.mpre_const)
        in
        let phase = Splits.find u.mrelu splits in
        let known_pos = (match phase with Some Splits.Pos -> true | _ -> false) || l >= 0.0 in
        let known_neg = (match phase with Some Splits.Neg -> true | _ -> false) || h <= 0.0 in
        if known_pos then begin
          (* z pinned 1: v = pre via M1 + M2. *)
          Lp.set_bounds lp u.mz 1.0 1.0;
          Lp.set_bounds lp u.mvar 0.0 infinity;
          m2_active l;
          vacuous lp u.row_m3;
          match phase with Some Splits.Pos -> m4_split (-1.0) | _ -> vacuous lp u.row_m4
        end
        else if known_neg then begin
          (* z pinned 0: v = 0 via its bounds. *)
          Lp.set_bounds lp u.mz 0.0 0.0;
          Lp.set_bounds lp u.mvar 0.0 0.0;
          vacuous lp u.row_m2;
          vacuous lp u.row_m3;
          match phase with Some Splits.Neg -> m4_split 1.0 | _ -> vacuous lp u.row_m4
        end
        else begin
          (* Ambiguous at this node: the full big-M relaxation. *)
          Lp.set_bounds lp u.mz 0.0 1.0;
          Lp.set_bounds lp u.mvar 0.0 h;
          m2_active l;
          (* M3: v - u*z <= 0 *)
          u.m2_scratch.(0) <- 1.0;
          u.m2_scratch.(1) <- -.h;
          Lp.set_row lp u.row_m3 (Array.sub u.m2_idx 0 2) (Array.sub u.m2_scratch 0 2) Lp.Le 0.0;
          vacuous lp u.row_m4
        end)
      t.munits
end
