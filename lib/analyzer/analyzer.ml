module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Lp = Ivan_lp.Lp
module Network = Ivan_nn.Network
module Layer = Ivan_nn.Layer
module Relu_id = Ivan_nn.Relu_id
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Bounds = Ivan_domains.Bounds
module Itv = Ivan_domains.Itv
module Interval_dom = Ivan_domains.Interval_dom
module Zonotope = Ivan_domains.Zonotope
module Deeppoly = Ivan_domains.Deeppoly

type status = Verified | Counterexample of Vec.t | Unknown

type outcome = {
  status : status;
  lb : float;
  bounds : Bounds.t option;
  zono : Zonotope.analysis option;
}

type t = {
  name : string;
  run : Network.t -> prop:Prop.t -> box:Box.t -> splits:Splits.t -> outcome;
}

let vacuous = { status = Verified; lb = infinity; bounds = None; zono = None }

let instrument ~on_run t =
  {
    t with
    run =
      (fun net ~prop ~box ~splits ->
        let t0 = Unix.gettimeofday () in
        let outcome = t.run net ~prop ~box ~splits in
        on_run ~name:t.name ~elapsed:(Unix.gettimeofday () -. t0) ~outcome;
        outcome);
  }

let check_concrete net ~prop x =
  Box.contains prop.Prop.input x && Prop.margin prop (Network.forward net x) < 0.0

(* Try to promote a candidate point into a genuine counterexample. *)
let concrete_status net ~prop candidate =
  let x = Box.clamp prop.Prop.input candidate in
  if check_concrete net ~prop x then Counterexample x else Unknown

(* ------------------------------------------------------------------ *)
(* Interval analyzer *)

let interval_run net ~prop ~box ~splits =
  match Interval_dom.analyze net ~box ~splits with
  | Interval_dom.Infeasible -> vacuous
  | Interval_dom.Feasible bounds ->
      let itv = Bounds.objective_itv bounds ~c:prop.Prop.c ~offset:prop.Prop.offset in
      if itv.Itv.lo >= 0.0 then { status = Verified; lb = itv.Itv.lo; bounds = Some bounds; zono = None }
      else
        let status = concrete_status net ~prop (Box.center box) in
        { status; lb = itv.Itv.lo; bounds = Some bounds; zono = None }

let interval () = { name = "interval"; run = interval_run }

(* ------------------------------------------------------------------ *)
(* Zonotope analyzer *)

let zonotope_run net ~prop ~box ~splits =
  match Zonotope.analyze net ~box ~splits with
  | Zonotope.Infeasible -> vacuous
  | Zonotope.Feasible a ->
      let itv = Zonotope.objective_itv a ~c:prop.Prop.c ~offset:prop.Prop.offset in
      if itv.Itv.lo >= 0.0 then
        { status = Verified; lb = itv.Itv.lo; bounds = Some a.Zonotope.bounds; zono = Some a }
      else
        let candidate = Zonotope.minimizing_input a ~c:prop.Prop.c in
        let status = concrete_status net ~prop candidate in
        { status; lb = itv.Itv.lo; bounds = Some a.Zonotope.bounds; zono = Some a }

let zonotope () = { name = "zonotope"; run = zonotope_run }

(* ------------------------------------------------------------------ *)
(* DeepPoly-only analyzer: back-substituted bounds without the LP pass.
   Middle rung of the degradation ladder — cheaper and numerically far
   simpler than {!lp_triangle}, tighter than {!interval}. *)

let deeppoly_run net ~prop ~box ~splits =
  match Deeppoly.analyze net ~box ~splits with
  | Deeppoly.Infeasible -> vacuous
  | Deeppoly.Feasible dp ->
      let bounds = Deeppoly.bounds dp in
      let itv = Deeppoly.objective_itv dp ~c:prop.Prop.c ~offset:prop.Prop.offset in
      if itv.Itv.lo >= 0.0 then
        { status = Verified; lb = itv.Itv.lo; bounds = Some bounds; zono = None }
      else
        let status = concrete_status net ~prop (Box.center box) in
        { status; lb = itv.Itv.lo; bounds = Some bounds; zono = None }

let deeppoly () = { name = "deeppoly"; run = deeppoly_run }

(* ------------------------------------------------------------------ *)
(* LP analyzer with triangle relaxation *)

(* Linear expressions over the LP variables: dense coefficient array
   plus a constant. *)
type expr = { coeffs : float array; const : float }

let sparse_terms coeffs =
  let acc = ref [] in
  for j = Array.length coeffs - 1 downto 0 do
    if coeffs.(j) <> 0.0 then acc := (j, coeffs.(j)) :: !acc
  done;
  !acc

(* Count the extra LP variables needed: one per ambiguous piecewise
   unit, and one error variable per smooth unit. *)
let count_extra_vars net bounds ~splits =
  let layers = Network.layers net in
  let total = ref 0 in
  Array.iteri
    (fun li layer ->
      match Layer.classify (Layer.activation layer) with
      | Layer.Linear_activation -> ()
      | Layer.Smooth _ -> total := !total + Layer.output_dim layer
      | Layer.Piecewise _ ->
          let b = bounds.Bounds.layers.(li) in
          for idx = 0 to Vec.dim b.Bounds.pre_lo - 1 do
            let r = Relu_id.make ~layer:li ~index:idx in
            if
              b.Bounds.pre_lo.(idx) < 0.0
              && b.Bounds.pre_hi.(idx) > 0.0
              && not (Splits.mem r splits)
            then incr total
          done)
    layers;
  !total

(* Affine image of per-neuron expressions under (w, b).  Hot path:
   iterate raw weight rows and skip structural zeros (conv-lowered rows
   are sparse). *)
let affine_exprs nvars w b exprs =
  let cols = Mat.cols w in
  Array.init (Mat.rows w) (fun i ->
      let row = Mat.row w i in
      let coeffs = Array.make nvars 0.0 in
      let const = ref b.(i) in
      for j = 0 to cols - 1 do
        let wij = row.(j) in
        if wij <> 0.0 then begin
          let e = exprs.(j) in
          const := !const +. (wij *. e.const);
          let ec = e.coeffs in
          for v = 0 to nvars - 1 do
            let c = ec.(v) in
            if c <> 0.0 then coeffs.(v) <- coeffs.(v) +. (wij *. c)
          done
        end
      done;
      { coeffs; const = !const })

(* Dense objective vector and constant for [c . outputs + offset]. *)
let objective_of nvars exprs ~c ~offset =
  let obj = Array.make nvars 0.0 in
  let const = ref offset in
  Array.iteri
    (fun i ci ->
      if ci <> 0.0 then begin
        let e = exprs.(i) in
        const := !const +. (ci *. e.const);
        for v = 0 to nvars - 1 do
          obj.(v) <- obj.(v) +. (ci *. e.coeffs.(v))
        done
      end)
    c;
  (obj, !const)

(* Unit-coefficient expressions for the input variables. *)
let input_exprs nvars d =
  Array.init d (fun j ->
      let coeffs = Array.make nvars 0.0 in
      coeffs.(j) <- 1.0;
      { coeffs; const = 0.0 })

let build_lp net ~prop ~box ~splits ~bounds =
  let d = Box.dim box in
  let nvars = d + count_extra_vars net bounds ~splits in
  let lp = Lp.create nvars in
  for j = 0 to d - 1 do
    Lp.set_bounds lp j (Box.lo_at box j) (Box.hi_at box j)
  done;
  let next_var = ref d in
  let exprs = ref (input_exprs nvars d) in
  let layers = Network.layers net in
  Array.iteri
    (fun li layer ->
      let w, b = Layer.dense_affine layer in
      let pre = affine_exprs nvars w b !exprs in
      let dim = Array.length pre in
      match Layer.classify (Layer.activation layer) with
      | Layer.Linear_activation -> exprs := pre
      | Layer.Smooth { f; df } ->
          (* post = lambda*pre + e with e a fresh variable bounded by
             the parallel-line sandwich (no extra rows needed). *)
          let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
          let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
          let post =
            Array.init dim (fun idx ->
                let e = pre.(idx) in
                let l = lb.(idx) and u = ub.(idx) in
                let lambda = Float.min (df l) (df u) in
                let g_lo = f l -. (lambda *. l) and g_hi = f u -. (lambda *. u) in
                let v = !next_var in
                incr next_var;
                Lp.set_bounds lp v g_lo g_hi;
                let coeffs = Array.map (fun c -> lambda *. c) e.coeffs in
                coeffs.(v) <- coeffs.(v) +. 1.0;
                { coeffs; const = lambda *. e.const })
          in
          exprs := post
      | Layer.Piecewise slope ->
          let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
          let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
          let scale_expr s e =
            { coeffs = Array.map (fun c -> s *. c) e.coeffs; const = s *. e.const }
          in
          let post =
            Array.init dim (fun idx ->
                let e = pre.(idx) in
                let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
                match phase with
                | Some Splits.Pos ->
                    (* assume pre >= 0: -(pre) <= 0; the unit is exactly
                       the identity on this side. *)
                    Lp.add_constraint lp
                      (sparse_terms (Array.map (fun v -> -.v) e.coeffs))
                      Lp.Le e.const;
                    e
                | Some Splits.Neg ->
                    (* assume pre <= 0; the unit is exactly y = slope*x
                       (the zero function for ReLU). *)
                    Lp.add_constraint lp (sparse_terms e.coeffs) Lp.Le (-.e.const);
                    scale_expr slope e
                | None ->
                    if lb.(idx) >= 0.0 then e
                    else if ub.(idx) <= 0.0 then scale_expr slope e
                    else begin
                      (* Triangle relaxation with a fresh variable v:
                         v >= pre, v >= slope*pre, and v below the chord
                         through (l, slope*l) and (u, u). *)
                      let v = !next_var in
                      incr next_var;
                      let l = lb.(idx) and u = ub.(idx) in
                      Lp.set_bounds lp v (slope *. l) u;
                      (* v >= pre:  pre - v <= 0 *)
                      Lp.add_constraint lp ((v, -1.0) :: sparse_terms e.coeffs) Lp.Le (-.e.const);
                      (* v >= slope*pre (vacuous for ReLU: covered by
                         the variable's lower bound of 0). *)
                      if slope > 0.0 then
                        Lp.add_constraint lp
                          ((v, -1.0) :: sparse_terms (Array.map (fun c -> slope *. c) e.coeffs))
                          Lp.Le (-.slope *. e.const);
                      (* chord: v <= lambda*pre + mu, with
                         lambda = (u - slope*l)/(u - l) and
                         mu = l*(slope - lambda). *)
                      let lambda = (u -. (slope *. l)) /. (u -. l) in
                      let mu = l *. (slope -. lambda) in
                      let chord = Array.map (fun cv -> -.lambda *. cv) e.coeffs in
                      Lp.add_constraint lp
                        ((v, 1.0) :: sparse_terms chord)
                        Lp.Le (mu +. (lambda *. e.const));
                      let coeffs = Array.make nvars 0.0 in
                      coeffs.(v) <- 1.0;
                      { coeffs; const = 0.0 }
                    end)
          in
          exprs := post)
    layers;
  let obj, const = objective_of nvars !exprs ~c:prop.Prop.c ~offset:prop.Prop.offset in
  Lp.set_objective lp obj;
  (lp, const)

let lp_triangle_run ~deeppoly_shortcut net ~prop ~box ~splits =
  match Deeppoly.analyze net ~box ~splits with
  | Deeppoly.Infeasible -> vacuous
  | Deeppoly.Feasible dp -> (
      let bounds = Deeppoly.bounds dp in
      (* Zonotope pass for branching scores (and a second bound). *)
      let zono =
        match Zonotope.analyze net ~box ~splits with
        | Zonotope.Infeasible -> None
        | Zonotope.Feasible a -> Some a
      in
      let dp_itv = Deeppoly.objective_itv dp ~c:prop.Prop.c ~offset:prop.Prop.offset in
      let zono_lb =
        match zono with
        | None -> neg_infinity
        | Some a -> (Zonotope.objective_itv a ~c:prop.Prop.c ~offset:prop.Prop.offset).Itv.lo
      in
      let cheap_lb = Float.max dp_itv.Itv.lo zono_lb in
      if deeppoly_shortcut && cheap_lb >= 0.0 then
        { status = Verified; lb = cheap_lb; bounds = Some bounds; zono }
      else
        let lp, const = build_lp net ~prop ~box ~splits ~bounds in
        match Lp.solve lp with
        | exception (Lp.Iteration_limit | Lp.Numerical_failure _) ->
            (* Numerical failure: fall back on the sound cheap bound. *)
            if cheap_lb >= 0.0 then { status = Verified; lb = cheap_lb; bounds = Some bounds; zono }
            else { status = Unknown; lb = cheap_lb; bounds = Some bounds; zono }
        | Lp.Infeasible ->
            (* The relaxation is a superset of the true region, so an
               infeasible relaxation proves the region empty. *)
            { vacuous with bounds = Some bounds; zono }
        | Lp.Unbounded ->
            (* Cannot happen with a bounded input box, but stay sound. *)
            { status = Unknown; lb = cheap_lb; bounds = Some bounds; zono }
        | Lp.Optimal { objective; primal } ->
            let lb = Float.max (objective +. const) cheap_lb in
            if lb >= 0.0 then { status = Verified; lb; bounds = Some bounds; zono }
            else
              let candidate = Array.sub primal 0 (Box.dim box) in
              let status = concrete_status net ~prop candidate in
              { status; lb; bounds = Some bounds; zono })

let lp_triangle ?(deeppoly_shortcut = true) () =
  { name = "lp-triangle"; run = lp_triangle_run ~deeppoly_shortcut }

(* ------------------------------------------------------------------ *)
(* Exact MILP analyzer: big-M indicator encoding of every ambiguous
   ReLU, solved by branch and bound over the phase binaries.  One call
   decides the subproblem exactly (the "one-shot complete verifier"
   style the paper compares against in its §7 MILP discussion). *)

let build_milp net ~prop ~box ~splits ~bounds =
  let d = Box.dim box in
  let ambiguous = count_extra_vars net bounds ~splits in
  (* Inputs, then (v, z) pairs per ambiguous ReLU. *)
  let nvars = d + (2 * ambiguous) in
  let lp = Lp.create nvars in
  for j = 0 to d - 1 do
    Lp.set_bounds lp j (Box.lo_at box j) (Box.hi_at box j)
  done;
  let next_var = ref d in
  let binaries = ref [] in
  let exprs = ref (input_exprs nvars d) in
  let layers = Network.layers net in
  Array.iteri
    (fun li layer ->
      let w, b = Layer.dense_affine layer in
      let pre = affine_exprs nvars w b !exprs in
      let dim = Array.length pre in
      match Layer.classify (Layer.activation layer) with
      | Layer.Linear_activation -> exprs := pre
      | Layer.Smooth _ -> invalid_arg "Analyzer.milp: only plain ReLU networks are supported"
      | Layer.Piecewise slope ->
          if slope <> 0.0 then
            invalid_arg "Analyzer.milp: only plain ReLU networks are supported";
          let lb = bounds.Bounds.layers.(li).Bounds.pre_lo in
          let ub = bounds.Bounds.layers.(li).Bounds.pre_hi in
          let zero_expr = { coeffs = Array.make nvars 0.0; const = 0.0 } in
          let post =
            Array.init dim (fun idx ->
                let e = pre.(idx) in
                let phase = Splits.find (Relu_id.make ~layer:li ~index:idx) splits in
                match phase with
                | Some Splits.Pos ->
                    Lp.add_constraint lp
                      (sparse_terms (Array.map (fun v -> -.v) e.coeffs))
                      Lp.Le e.const;
                    e
                | Some Splits.Neg ->
                    Lp.add_constraint lp (sparse_terms e.coeffs) Lp.Le (-.e.const);
                    zero_expr
                | None ->
                    if lb.(idx) >= 0.0 then e
                    else if ub.(idx) <= 0.0 then zero_expr
                    else begin
                      (* v = relu(pre) with indicator z:
                         v >= 0, v >= pre, v <= pre - l(1-z), v <= u z. *)
                      let v = !next_var in
                      let z = !next_var + 1 in
                      next_var := !next_var + 2;
                      binaries := z :: !binaries;
                      let l = lb.(idx) and u = ub.(idx) in
                      Lp.set_bounds lp v 0.0 u;
                      Lp.set_bounds lp z 0.0 1.0;
                      (* pre - v <= 0 *)
                      Lp.add_constraint lp ((v, -1.0) :: sparse_terms e.coeffs) Lp.Le (-.e.const);
                      (* v - pre - l z <= -l *)
                      Lp.add_constraint lp
                        ((v, 1.0) :: (z, -.l) :: sparse_terms (Array.map (fun c -> -.c) e.coeffs))
                        Lp.Le (-.l +. e.const);
                      (* v - u z <= 0 *)
                      Lp.add_constraint lp [ (v, 1.0); (z, -.u) ] Lp.Le 0.0;
                      let coeffs = Array.make nvars 0.0 in
                      coeffs.(v) <- 1.0;
                      { coeffs; const = 0.0 }
                    end)
          in
          exprs := post)
    layers;
  let obj, const = objective_of nvars !exprs ~c:prop.Prop.c ~offset:prop.Prop.offset in
  Lp.set_objective lp obj;
  (lp, const, List.rev !binaries)

type milp_outcome = {
  milp_status : status;
  milp_lb : float;
  nodes : int;
  lp_solves : int;
  witness : Vec.t option;
}

let milp_verify ?(max_nodes = 100_000) ?incumbent net ~prop ~box ~splits =
  match Deeppoly.analyze net ~box ~splits with
  | Deeppoly.Infeasible ->
      { milp_status = Verified; milp_lb = infinity; nodes = 0; lp_solves = 0; witness = None }
  | Deeppoly.Feasible dp -> (
      let bounds = Deeppoly.bounds dp in
      let lp, const, binaries = build_milp net ~prop ~box ~splits ~bounds in
      (* Verification cutoff: branches that cannot push the objective
         below 0 cannot yield a counterexample, so the search always
         prunes at 0; a caller-supplied incumbent can only tighten the
         cutoff further (this is what "warm starting" amounts to). *)
      let cutoff = match incumbent with None -> 0.0 | Some v -> Float.min 0.0 v in
      match Ivan_lp.Milp.solve ~max_nodes ~incumbent:(cutoff -. const) lp ~integer:binaries with
      | Ivan_lp.Milp.Infeasible stats ->
          (* Either the region is empty or nothing goes below the
             cutoff.  With the default cutoff 0 that proves the
             property; with a negative warm cutoff it only bounds the
             minimum from below. *)
          {
            milp_status = (if cutoff >= 0.0 then Verified else Unknown);
            milp_lb = cutoff;
            nodes = stats.Ivan_lp.Milp.nodes;
            lp_solves = stats.Ivan_lp.Milp.lp_solves;
            witness = None;
          }
      | Ivan_lp.Milp.Node_limit stats | Ivan_lp.Milp.Solver_failure stats ->
          (* Capped or numerically failed search: inconclusive either
             way, never a fabricated answer. *)
          {
            milp_status = Unknown;
            milp_lb = neg_infinity;
            nodes = stats.Ivan_lp.Milp.nodes;
            lp_solves = stats.Ivan_lp.Milp.lp_solves;
            witness = None;
          }
      | Ivan_lp.Milp.Optimal { objective; primal; stats } ->
          let lb = objective +. const in
          let witness = Array.sub primal 0 (Box.dim box) in
          let status =
            if lb >= 0.0 then Verified
            else
              match concrete_status net ~prop witness with
              | Counterexample x -> Counterexample x
              | Verified | Unknown -> Unknown
          in
          {
            milp_status = status;
            milp_lb = lb;
            nodes = stats.Ivan_lp.Milp.nodes;
            lp_solves = stats.Ivan_lp.Milp.lp_solves;
            witness = Some witness;
          })

let milp_exact ?(max_nodes = 100_000) () =
  let run net ~prop ~box ~splits =
    let o = milp_verify ~max_nodes net ~prop ~box ~splits in
    { status = o.milp_status; lb = o.milp_lb; bounds = None; zono = None }
  in
  { name = "milp-exact"; run }

(* ------------------------------------------------------------------ *)
(* Resilience: retry-then-degrade fallback chains *)

type policy = { max_retries : int; node_timeout : float; fallback : bool }

let default_policy = { max_retries = 1; node_timeout = infinity; fallback = true }

type fallback_event =
  | Retried of { analyzer : string; attempt : int; reason : string }
  | Fell_back of { analyzer : string; reason : string }
  | Absorbed of { analyzer : string; reason : string }

(* Conditions the resilience layer must never swallow: they signal the
   process itself is in trouble, not one analyzer call. *)
let fatal_exn = function Out_of_memory | Stack_overflow | Sys.Break -> true | _ -> false

let degraded_outcome = { status = Unknown; lb = neg_infinity; bounds = None; zono = None }

(* An outcome produced under possible faults is only trusted when it
   cannot violate soundness: no NaN bound, [Verified] only with a
   non-negative bound, and counterexamples re-checked concretely (one
   forward pass — cheap next to any analysis). *)
let trustworthy net ~prop o =
  (not (Float.is_nan o.lb))
  &&
  match o.status with
  | Verified -> o.lb >= 0.0
  | Counterexample x -> check_concrete net ~prop x
  | Unknown -> true

let with_fallback ?chain ?(notify = fun (_ : fallback_event) -> ()) ~policy primary =
  if policy.max_retries < 0 then invalid_arg "Analyzer.with_fallback: negative max_retries";
  if policy.node_timeout <= 0.0 then invalid_arg "Analyzer.with_fallback: non-positive node_timeout";
  let chain =
    match chain with
    | Some c -> c
    | None ->
        if policy.fallback then
          List.filter (fun a -> a.name <> primary.name) [ deeppoly (); interval () ]
        else []
  in
  let run net ~prop ~box ~splits =
    let deadline =
      if policy.node_timeout < infinity then Unix.gettimeofday () +. policy.node_timeout
      else infinity
    in
    let timed_out () = deadline < infinity && Unix.gettimeofday () >= deadline in
    (* Try one analyzer with up to [max_retries] re-attempts.  The
       timeout is cooperative: analyzers are not preempted mid-call, but
       no further attempt starts past the deadline. *)
    let rec attempt a k =
      let result =
        try `Outcome (a.run net ~prop ~box ~splits)
        with e -> if fatal_exn e then raise e else `Raised (Printexc.to_string e)
      in
      let failure =
        match result with
        | `Outcome o when trustworthy net ~prop o -> None
        | `Outcome _ -> Some "untrustworthy outcome (NaN or unsound bound)"
        | `Raised msg -> Some msg
      in
      match failure with
      | None -> ( match result with `Outcome o -> `Ok o | `Raised _ -> assert false)
      | Some reason ->
          notify (Absorbed { analyzer = a.name; reason });
          if k < policy.max_retries && not (timed_out ()) then begin
            notify (Retried { analyzer = a.name; attempt = k + 1; reason });
            attempt a (k + 1)
          end
          else `Failed reason
    in
    let rec try_chain = function
      | [] -> degraded_outcome
      | a :: rest -> (
          match attempt a 0 with
          | `Ok o ->
              if a.name <> primary.name then
                notify (Fell_back { analyzer = a.name; reason = "degraded from " ^ primary.name });
              o
          | `Failed _ -> if timed_out () then degraded_outcome else try_chain rest)
    in
    try_chain (primary :: chain)
  in
  { name = primary.name; run }
