module Vec = Ivan_tensor.Vec
module Lp = Ivan_lp.Lp
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Splits = Ivan_domains.Splits
module Bounds = Ivan_domains.Bounds
module Itv = Ivan_domains.Itv
module Interval_dom = Ivan_domains.Interval_dom
module Zonotope = Ivan_domains.Zonotope
module Deeppoly = Ivan_domains.Deeppoly
module Clock = Ivan_clock.Clock

type status = Verified | Counterexample of Vec.t | Unknown

type outcome = {
  status : status;
  lb : float;
  bounds : Bounds.t option;
  zono : Zonotope.analysis option;
  cert : Ivan_cert.Cert.evidence option;
}

type t = {
  name : string;
  run : Network.t -> prop:Prop.t -> box:Box.t -> splits:Splits.t -> outcome;
}

let vacuous = { status = Verified; lb = infinity; bounds = None; zono = None; cert = None }

let instrument ~on_run t =
  {
    t with
    run =
      (fun net ~prop ~box ~splits ->
        let t0 = Clock.monotonic () in
        let outcome = t.run net ~prop ~box ~splits in
        on_run ~name:t.name ~elapsed:(Clock.monotonic () -. t0) ~outcome;
        outcome);
  }

let check_concrete net ~prop x =
  Box.contains prop.Prop.input x && Prop.margin prop (Network.forward net x) < 0.0

(* Try to promote a candidate point into a genuine counterexample. *)
let concrete_status net ~prop candidate =
  let x = Box.clamp prop.Prop.input candidate in
  if check_concrete net ~prop x then Counterexample x else Unknown

(* ------------------------------------------------------------------ *)
(* Warm-start side channel between the BaB engine and the LP-backed
   analyzers.

   The engine sits above the analyzer abstraction and only sees
   [outcome]s, while warm-starting needs two extra pieces of plumbing:
   the parent node's simplex basis flowing IN to the next analyzer call,
   and the solved node's basis plus solver statistics flowing OUT.
   Rather than widen every analyzer signature (most analyzers never
   touch an LP), both travel through a per-domain side channel: the
   engine {!Warm.offer}s a hint before calling the analyzer and
   {!Warm.collect}s the report afterwards.  Slots are domain-local
   ([Domain.DLS]), so parallel runner workers verifying different
   properties never see each other's bases, and both slots are consumed
   on read, so a retry of a failed analyzer call runs cold instead of
   reusing a hint that may have contributed to the failure. *)

module Warm = struct
  type lp_info = {
    warm_hits : int;
    warm_misses : int;
    cold_solves : int;
    pivots : int;
    basis : Lp.Basis.t option;
  }

  let hint_slot : Lp.Basis.t option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let info_slot : lp_info option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let offer b = Domain.DLS.get hint_slot := Some b

  let clear () =
    Domain.DLS.get hint_slot := None;
    Domain.DLS.get info_slot := None

  let take_hint () =
    let r = Domain.DLS.get hint_slot in
    let v = !r in
    r := None;
    v

  let record i = Domain.DLS.get info_slot := Some i

  let collect () =
    let r = Domain.DLS.get info_slot in
    let v = !r in
    r := None;
    v
end

(* Report one LP solve's statistics through the side channel.  Only
   called after a solve that returned (exceptions leave [last_stats]
   stale from some earlier solve of the same persistent problem). *)
let record_lp_info lp ~reusable =
  match Lp.last_stats lp with
  | None -> ()
  | Some s ->
      let hits, misses, cold =
        match s.Lp.warm with
        | Lp.Warm_hit -> (1, 0, 0)
        | Lp.Warm_miss -> (0, 1, 0)
        | Lp.Cold -> (0, 0, 1)
      in
      Warm.record
        {
          Warm.warm_hits = hits;
          warm_misses = misses;
          cold_solves = cold;
          pivots = s.Lp.pivots;
          (* Only a persistent-encoding basis is offered onward: a
             one-shot LP's basis fits no other problem. *)
          basis = (if reusable then Lp.basis lp else None);
        }

(* ------------------------------------------------------------------ *)
(* Interval analyzer *)

let interval_run net ~prop ~box ~splits =
  match Interval_dom.analyze net ~box ~splits with
  | Interval_dom.Infeasible -> vacuous
  | Interval_dom.Feasible bounds ->
      let itv = Bounds.objective_itv bounds ~c:prop.Prop.c ~offset:prop.Prop.offset in
      if itv.Itv.lo >= 0.0 then { status = Verified; lb = itv.Itv.lo; bounds = Some bounds; zono = None; cert = None }
      else
        let status = concrete_status net ~prop (Box.center box) in
        { status; lb = itv.Itv.lo; bounds = Some bounds; zono = None; cert = None }

let interval () = { name = "interval"; run = interval_run }

(* ------------------------------------------------------------------ *)
(* Zonotope analyzer *)

let zonotope_run net ~prop ~box ~splits =
  match Zonotope.analyze net ~box ~splits with
  | Zonotope.Infeasible -> vacuous
  | Zonotope.Feasible a ->
      let itv = Zonotope.objective_itv a ~c:prop.Prop.c ~offset:prop.Prop.offset in
      if itv.Itv.lo >= 0.0 then
        { status = Verified; lb = itv.Itv.lo; bounds = Some a.Zonotope.bounds; zono = Some a; cert = None }
      else
        let candidate = Zonotope.minimizing_input a ~c:prop.Prop.c in
        let status = concrete_status net ~prop candidate in
        { status; lb = itv.Itv.lo; bounds = Some a.Zonotope.bounds; zono = Some a; cert = None }

let zonotope () = { name = "zonotope"; run = zonotope_run }

(* ------------------------------------------------------------------ *)
(* DeepPoly-only analyzer: back-substituted bounds without the LP pass.
   Middle rung of the degradation ladder — cheaper and numerically far
   simpler than {!lp_triangle}, tighter than {!interval}. *)

let deeppoly_run net ~prop ~box ~splits =
  match Deeppoly.analyze net ~box ~splits with
  | Deeppoly.Infeasible -> vacuous
  | Deeppoly.Feasible dp ->
      let bounds = Deeppoly.bounds dp in
      let itv = Deeppoly.objective_itv dp ~c:prop.Prop.c ~offset:prop.Prop.offset in
      if itv.Itv.lo >= 0.0 then
        { status = Verified; lb = itv.Itv.lo; bounds = Some bounds; zono = None; cert = None }
      else
        let status = concrete_status net ~prop (Box.center box) in
        { status; lb = itv.Itv.lo; bounds = Some bounds; zono = None; cert = None }

let deeppoly () = { name = "deeppoly"; run = deeppoly_run }

(* ------------------------------------------------------------------ *)
(* Persistent-encoding caches.

   One encoding per (network, property) pair, rebuilt only when either
   changes — detected by physical equality, which is exactly right for
   the BaB engine (it holds one network and one property for a whole
   run and calls the analyzer once per node).  Per-domain so parallel
   runner workers each hold their own. *)

type tri_cache = { t_net : Network.t; t_prop : Prop.t; t_enc : Encoding.Triangle.t option }

let tri_slot : tri_cache option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let triangle_encoding net prop =
  let slot = Domain.DLS.get tri_slot in
  match !slot with
  | Some c when c.t_net == net && c.t_prop == prop -> c.t_enc
  | _ ->
      let enc = Encoding.Triangle.build net ~prop in
      slot := Some { t_net = net; t_prop = prop; t_enc = enc };
      enc

type milp_cache = { m_net : Network.t; m_prop : Prop.t; m_enc : Encoding.Milp.t option }

let milp_slot : milp_cache option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let milp_encoding net prop =
  let slot = Domain.DLS.get milp_slot in
  match !slot with
  | Some c when c.m_net == net && c.m_prop == prop -> c.m_enc
  | _ ->
      let enc = Encoding.Milp.build net ~prop in
      slot := Some { m_net = net; m_prop = prop; m_enc = enc };
      enc

(* ------------------------------------------------------------------ *)
(* LP analyzer with triangle relaxation *)

(* Freeze the LP and pair it with the solver's multipliers, right after
   the solve and before any further mutation of the shared encoding.
   Extraction is float-only and untrusted; the exact checker in
   [Ivan_cert.Cert] decides whether the evidence actually proves
   anything. *)
let evidence_of lp ~const =
  match Lp.last_certificate lp with
  | None -> None
  | Some witness ->
      Some
        {
          Ivan_cert.Cert.const;
          snapshot = Ivan_cert.Cert.Snapshot.of_problem lp;
          witness;
        }

let lp_triangle_run ~deeppoly_shortcut ~warm ~certify net ~prop ~box ~splits =
  match Deeppoly.analyze net ~box ~splits with
  | Deeppoly.Infeasible -> vacuous
  | Deeppoly.Feasible dp -> (
      let bounds = Deeppoly.bounds dp in
      (* Zonotope pass for branching scores (and a second bound). *)
      let zono =
        match Zonotope.analyze net ~box ~splits with
        | Zonotope.Infeasible -> None
        | Zonotope.Feasible a -> Some a
      in
      let dp_itv = Deeppoly.objective_itv dp ~c:prop.Prop.c ~offset:prop.Prop.offset in
      let zono_lb =
        match zono with
        | None -> neg_infinity
        | Some a -> (Zonotope.objective_itv a ~c:prop.Prop.c ~offset:prop.Prop.offset).Itv.lo
      in
      let cheap_lb = Float.max dp_itv.Itv.lo zono_lb in
      if deeppoly_shortcut && cheap_lb >= 0.0 then
        { status = Verified; lb = cheap_lb; bounds = Some bounds; zono; cert = None }
      else
        (* Specialize the persistent per-property encoding to this node;
           fall back to a fresh one-shot LP when the node is outside the
           encoding's shape (e.g. a split on a root-stable unit when
           replaying a specification tree against an updated network). *)
        let lp, const, reusable =
          match triangle_encoding net prop with
          | Some enc -> (
              try
                Encoding.Triangle.specialize enc ~box ~splits ~bounds;
                (Encoding.Triangle.lp enc, Encoding.Triangle.const enc, true)
              with Encoding.Mismatch ->
                let lp, const = Encoding.build_lp net ~prop ~box ~splits ~bounds in
                (lp, const, false))
          | None ->
              let lp, const = Encoding.build_lp net ~prop ~box ~splits ~bounds in
              (lp, const, false)
        in
        let hint = Warm.take_hint () in
        let solved =
          try
            `Result
              (match hint with
              | Some b when warm && reusable -> Lp.solve_from lp b
              | _ -> Lp.solve lp)
          with Lp.Iteration_limit | Lp.Numerical_failure _ -> `Solver_failed
        in
        match solved with
        | `Solver_failed ->
            (* Numerical failure: fall back on the sound cheap bound. *)
            if cheap_lb >= 0.0 then { status = Verified; lb = cheap_lb; bounds = Some bounds; zono; cert = None }
            else { status = Unknown; lb = cheap_lb; bounds = Some bounds; zono; cert = None }
        | `Result r -> (
            record_lp_info lp ~reusable;
            let cert = if certify then evidence_of lp ~const else None in
            match r with
            | Lp.Infeasible ->
                (* The relaxation is a superset of the true region, so an
                   infeasible relaxation proves the region empty. *)
                { vacuous with bounds = Some bounds; zono; cert }
            | Lp.Unbounded ->
                (* Cannot happen with a bounded input box, but stay sound. *)
                { status = Unknown; lb = cheap_lb; bounds = Some bounds; zono; cert = None }
            | Lp.Optimal { objective; primal; _ } ->
                let lb = Float.max (objective +. const) cheap_lb in
                if lb >= 0.0 then { status = Verified; lb; bounds = Some bounds; zono; cert }
                else
                  let candidate = Array.sub primal 0 (Box.dim box) in
                  let status = concrete_status net ~prop candidate in
                  { status; lb; bounds = Some bounds; zono; cert = None }))

let lp_triangle ?(deeppoly_shortcut = true) ?(warm = true) ?(certify = false) () =
  (* A shortcut verdict has no LP behind it, hence no certificate. *)
  let deeppoly_shortcut = deeppoly_shortcut && not certify in
  { name = "lp-triangle"; run = lp_triangle_run ~deeppoly_shortcut ~warm ~certify }

(* ------------------------------------------------------------------ *)
(* Exact MILP analyzer: big-M indicator encoding of every ambiguous
   ReLU, solved by branch and bound over the phase binaries.  One call
   decides the subproblem exactly (the "one-shot complete verifier"
   style the paper compares against in its §7 MILP discussion). *)

type milp_outcome = {
  milp_status : status;
  milp_lb : float;
  nodes : int;
  lp_solves : int;
  witness : Vec.t option;
}

let milp_verify ?(max_nodes = 100_000) ?incumbent ?(warm = true) net ~prop ~box ~splits =
  match Deeppoly.analyze net ~box ~splits with
  | Deeppoly.Infeasible ->
      { milp_status = Verified; milp_lb = infinity; nodes = 0; lp_solves = 0; witness = None }
  | Deeppoly.Feasible dp -> (
      let bounds = Deeppoly.bounds dp in
      let lp, const, binaries =
        match milp_encoding net prop with
        | Some enc -> (
            try
              Encoding.Milp.specialize enc ~box ~splits ~bounds;
              (Encoding.Milp.lp enc, Encoding.Milp.const enc, Encoding.Milp.binaries enc)
            with Encoding.Mismatch -> Encoding.build_milp net ~prop ~box ~splits ~bounds)
        | None -> Encoding.build_milp net ~prop ~box ~splits ~bounds
      in
      (* Verification cutoff: branches that cannot push the objective
         below 0 cannot yield a counterexample, so the search always
         prunes at 0; a caller-supplied incumbent can only tighten the
         cutoff further (this is what "warm starting" amounts to). *)
      let cutoff = match incumbent with None -> 0.0 | Some v -> Float.min 0.0 v in
      let report (stats : Ivan_lp.Milp.stats) =
        Warm.record
          {
            Warm.warm_hits = stats.Ivan_lp.Milp.warm_hits;
            warm_misses = 0;
            cold_solves = stats.Ivan_lp.Milp.lp_solves - stats.Ivan_lp.Milp.warm_hits;
            pivots = stats.Ivan_lp.Milp.simplex_pivots;
            basis = None;
          }
      in
      match Ivan_lp.Milp.solve ~max_nodes ~incumbent:(cutoff -. const) ~warm lp ~integer:binaries with
      | Ivan_lp.Milp.Infeasible stats ->
          (* Either the region is empty or nothing goes below the
             cutoff.  With the default cutoff 0 that proves the
             property; with a negative warm cutoff it only bounds the
             minimum from below. *)
          report stats;
          {
            milp_status = (if cutoff >= 0.0 then Verified else Unknown);
            milp_lb = cutoff;
            nodes = stats.Ivan_lp.Milp.nodes;
            lp_solves = stats.Ivan_lp.Milp.lp_solves;
            witness = None;
          }
      | Ivan_lp.Milp.Node_limit stats | Ivan_lp.Milp.Solver_failure stats ->
          (* Capped or numerically failed search: inconclusive either
             way, never a fabricated answer. *)
          report stats;
          {
            milp_status = Unknown;
            milp_lb = neg_infinity;
            nodes = stats.Ivan_lp.Milp.nodes;
            lp_solves = stats.Ivan_lp.Milp.lp_solves;
            witness = None;
          }
      | Ivan_lp.Milp.Optimal { objective; primal; stats } ->
          report stats;
          let lb = objective +. const in
          let witness = Array.sub primal 0 (Box.dim box) in
          let status =
            if lb >= 0.0 then Verified
            else
              match concrete_status net ~prop witness with
              | Counterexample x -> Counterexample x
              | Verified | Unknown -> Unknown
          in
          {
            milp_status = status;
            milp_lb = lb;
            nodes = stats.Ivan_lp.Milp.nodes;
            lp_solves = stats.Ivan_lp.Milp.lp_solves;
            witness = Some witness;
          })

let milp_exact ?(max_nodes = 100_000) ?(warm = true) () =
  let run net ~prop ~box ~splits =
    let o = milp_verify ~max_nodes ~warm net ~prop ~box ~splits in
    { status = o.milp_status; lb = o.milp_lb; bounds = None; zono = None; cert = None }
  in
  { name = "milp-exact"; run }

(* ------------------------------------------------------------------ *)
(* Resilience: retry-then-degrade fallback chains *)

type policy = { max_retries : int; node_timeout : float; fallback : bool }

let default_policy = { max_retries = 1; node_timeout = infinity; fallback = true }

type fallback_event =
  | Retried of { analyzer : string; attempt : int; reason : string }
  | Fell_back of { analyzer : string; reason : string }
  | Absorbed of { analyzer : string; reason : string }

(* Conditions the resilience layer must never swallow: they signal the
   process itself is in trouble, not one analyzer call. *)
let fatal_exn = function Out_of_memory | Stack_overflow | Sys.Break -> true | _ -> false

let degraded_outcome = { status = Unknown; lb = neg_infinity; bounds = None; zono = None; cert = None }

(* An outcome produced under possible faults is only trusted when it
   cannot violate soundness: no NaN bound, [Verified] only with a
   non-negative bound, and counterexamples re-checked concretely (one
   forward pass — cheap next to any analysis). *)
let trustworthy net ~prop o =
  (not (Float.is_nan o.lb))
  &&
  match o.status with
  | Verified -> o.lb >= 0.0
  | Counterexample x -> check_concrete net ~prop x
  | Unknown -> true

let with_fallback ?chain ?(notify = fun (_ : fallback_event) -> ()) ~policy primary =
  if policy.max_retries < 0 then invalid_arg "Analyzer.with_fallback: negative max_retries";
  if policy.node_timeout <= 0.0 then invalid_arg "Analyzer.with_fallback: non-positive node_timeout";
  let chain =
    match chain with
    | Some c -> c
    | None ->
        if policy.fallback then
          List.filter (fun a -> a.name <> primary.name) [ deeppoly (); interval () ]
        else []
  in
  let run net ~prop ~box ~splits =
    (* Monotonic deadline: a wall-clock step (NTP) must not extend or
       shrink a node budget. *)
    let deadline =
      if policy.node_timeout < infinity then Clock.monotonic () +. policy.node_timeout
      else infinity
    in
    let timed_out () = deadline < infinity && Clock.monotonic () >= deadline in
    (* Try one analyzer with up to [max_retries] re-attempts.  The
       timeout is cooperative: analyzers are not preempted mid-call, but
       no further attempt starts past the deadline. *)
    let rec attempt a k =
      let result =
        try `Outcome (a.run net ~prop ~box ~splits)
        with e -> if fatal_exn e then raise e else `Raised (Printexc.to_string e)
      in
      let failure =
        match result with
        | `Outcome o when trustworthy net ~prop o -> None
        | `Outcome _ -> Some "untrustworthy outcome (NaN or unsound bound)"
        | `Raised msg -> Some msg
      in
      match failure with
      | None -> ( match result with `Outcome o -> `Ok o | `Raised _ -> assert false)
      | Some reason ->
          notify (Absorbed { analyzer = a.name; reason });
          if k < policy.max_retries && not (timed_out ()) then begin
            notify (Retried { analyzer = a.name; attempt = k + 1; reason });
            attempt a (k + 1)
          end
          else `Failed reason
    in
    let rec try_chain = function
      | [] -> degraded_outcome
      | a :: rest -> (
          match attempt a 0 with
          | `Ok o ->
              if a.name <> primary.name then
                notify (Fell_back { analyzer = a.name; reason = "degraded from " ^ primary.name });
              o
          | `Failed _ -> if timed_out () then degraded_outcome else try_chain rest)
    in
    try_chain (primary :: chain)
  in
  { name = primary.name; run }
