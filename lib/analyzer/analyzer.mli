(** Sound analyzers (Definition 5).

    An analyzer bounds the property objective [c . N(x) + offset] over a
    subproblem — an input box plus ReLU split assumptions — and returns
    [Verified], a concrete [Counterexample], or [Unknown].  Soundness:
    [Verified] implies the property holds on the subproblem;
    [Counterexample x] implies [x] lies in the property's input region
    and concretely violates [psi].

    Three analyzers are provided:
    - {!lp_triangle}: DeepPoly bounds + LP with the triangle relaxation —
      the paper's baseline for ReLU-splitting BaB [Bunel et al. 2020;
      Ehlers 2017], with GUROBI replaced by {!Ivan_lp.Lp}.
    - {!zonotope}: DeepZ affine forms — the bounding engine of the
      RefineZono-style input-splitting baseline (paper §6.4).
    - {!interval}: plain box propagation, mainly for tests. *)

type status = Verified | Counterexample of Ivan_tensor.Vec.t | Unknown

type outcome = {
  status : status;
  lb : float;
      (** lower bound on the objective; [+inf] for a vacuously verified
          (empty) subproblem *)
  bounds : Ivan_domains.Bounds.t option;
      (** per-neuron bounds, absent when the subproblem region is empty *)
  zono : Ivan_domains.Zonotope.analysis option;
      (** zonotope run used for branching scores, when available *)
  cert : Ivan_cert.Cert.evidence option;
      (** checkable evidence for the node's LP verdict (dual multipliers
          with the frozen LP, or a Farkas witness); only produced by
          {!lp_triangle} with [certify] set — [None] from every other
          analyzer and from cheap-bound shortcuts, which the engine
          counts as certificate-unavailable *)
}

type t = {
  name : string;
  run :
    Ivan_nn.Network.t ->
    prop:Ivan_spec.Prop.t ->
    box:Ivan_spec.Box.t ->
    splits:Ivan_domains.Splits.t ->
    outcome;
}
(** [box] is the subproblem's input region (equal to [prop.input] under
    ReLU splitting; a sub-box under input splitting). *)

val instrument :
  on_run:(name:string -> elapsed:float -> outcome:outcome -> unit) -> t -> t
(** [instrument ~on_run a] is [a] with every [run] timed: [on_run] fires
    after each call with the analyzer's name, the wall-clock seconds the
    call took, and its outcome.  The BaB engine uses this hook to
    attribute time to the analyzer boundary; it composes (instrumenting
    twice fires both hooks). *)

val lp_triangle : ?deeppoly_shortcut:bool -> ?warm:bool -> ?certify:bool -> unit -> t
(** The LP analyzer.  When [deeppoly_shortcut] is true (default), a
    subproblem already proved by the DeepPoly pass skips the LP solve;
    the returned [lb] is then DeepPoly's.  Each [run] also performs a
    zonotope pass so branching heuristics can score ReLUs.

    [certify] (default false) makes every LP-decided outcome carry
    {!Ivan_cert.Cert.evidence}: the solver's dual or Farkas multipliers
    together with a frozen copy of the node's LP, ready for exact
    re-checking.  Certification disables the DeepPoly shortcut (a
    shortcut verdict has no LP certificate) and snapshots each solved
    LP, so it costs extra time and memory — the [--certify] bench suite
    quantifies it.  Verdicts and bounds are unchanged.

    Node LPs come from a persistent per-(network, property) encoding
    ({!Encoding.Triangle}) specialized in place per subproblem, and when
    [warm] is true (default) a parent basis offered through {!Warm} is
    used to warm-start the simplex ({!Ivan_lp.Lp.solve_from}).  [warm]
    only toggles the solver entry point — warm and cold runs share the
    identical specialized LP, so verdicts and bounds are unchanged. *)

(** {2 Warm-start side channel}

    The BaB engine offers a parent node's simplex basis before an
    analyzer call and collects the solve report afterwards.  Both slots
    are domain-local and consumed on read: parallel runner workers never
    observe each other's bases, and an analyzer retry (under
    {!with_fallback}) runs cold rather than re-using a hint that may
    have contributed to the failure.  Analyzers without an LP back-end
    simply never touch the channel. *)
module Warm : sig
  type lp_info = {
    warm_hits : int;  (** solves warm-started successfully *)
    warm_misses : int;  (** {!Ivan_lp.Lp.solve_from} fell back to cold *)
    cold_solves : int;  (** solves that never attempted a warm start *)
    pivots : int;  (** total simplex pivots across the call's solves *)
    basis : Ivan_lp.Lp.Basis.t option;
        (** basis to offer to child nodes; [None] when the solve used a
            one-shot (non-reusable) encoding or did not end [Optimal] *)
  }

  val offer : Ivan_lp.Lp.Basis.t -> unit
  (** Stage a parent basis for the next LP-backed analyzer call on this
      domain. *)

  val clear : unit -> unit
  (** Drop any staged hint and pending report (call before analyzing a
      node with no usable parent basis). *)

  val collect : unit -> lp_info option
  (** The report of the most recent LP-backed analyzer call, if any;
      consumes the slot. *)
end

val zonotope : unit -> t

val deeppoly : unit -> t
(** DeepPoly back-substituted bounds without the LP pass — the middle
    rung of the degradation ladder used by {!with_fallback}: cheaper and
    numerically simpler than {!lp_triangle}, tighter than {!interval}. *)

val interval : unit -> t

val check_concrete :
  Ivan_nn.Network.t -> prop:Ivan_spec.Prop.t -> Ivan_tensor.Vec.t -> bool
(** [check_concrete net ~prop x] is true when [x] is a genuine
    counterexample: inside the property's input region and violating
    [psi] on the concrete network. *)

(** {2 Exact MILP verification}

    The "one-shot" alternative to BaB: a big-M indicator encoding of
    every ambiguous ReLU solved by {!Ivan_lp.Milp}.  Used as an exact
    oracle in tests and to reproduce the paper's §7 observation that
    MILP warm-starting yields insignificant incremental speedup.
    Supports plain-ReLU networks only. *)

type milp_outcome = {
  milp_status : status;
  milp_lb : float;
      (** the exact objective minimum when a violating point exists;
          otherwise the cutoff that nothing beat (0 for a plain verified
          run) *)
  nodes : int;  (** branch-and-bound nodes explored *)
  lp_solves : int;
  witness : Ivan_tensor.Vec.t option;  (** minimizing input, if found *)
}

val milp_verify :
  ?max_nodes:int ->
  ?incumbent:float ->
  ?warm:bool ->
  Ivan_nn.Network.t ->
  prop:Ivan_spec.Prop.t ->
  box:Ivan_spec.Box.t ->
  splits:Ivan_domains.Splits.t ->
  milp_outcome
(** The search always prunes branches that cannot push the objective
    below 0 (they cannot yield counterexamples).  [incumbent] — a known
    achievable margin, e.g. of the previous network's minimizing input
    evaluated on this network — tightens the cutoff further when
    negative; this is MILP warm starting, and exactly as the paper's §7
    observes, it cannot help on instances that end up verified.
    [warm] (default true) warm-starts each MILP node's LP relaxation
    from its parent's simplex basis; verdict and optimum are unchanged,
    only the pivot count drops.
    @raise Invalid_argument on leaky-ReLU networks. *)

val milp_exact : ?max_nodes:int -> ?warm:bool -> unit -> t
(** {!milp_verify} wrapped as an analyzer: complete in one call. *)

(** {2 Resilience}

    Retry-then-degrade combinator.  A wrapped analyzer never lets a
    non-fatal exception escape and never returns an outcome that could
    violate soundness: results are sanity-checked (no NaN bound, no
    [Verified] with a negative bound, counterexamples re-checked
    concretely), failing analyzers are retried a bounded number of
    times, and persistent failures fall through a chain of progressively
    cheaper analyzers before finally degrading to [Unknown]. *)

type policy = {
  max_retries : int;  (** re-attempts per analyzer before falling back *)
  node_timeout : float;
      (** cooperative wall-clock cap in seconds per node: no new attempt
          starts past the deadline (a running call is not preempted) *)
  fallback : bool;  (** when false the default chain is empty *)
}

val default_policy : policy
(** [{ max_retries = 1; node_timeout = infinity; fallback = true }] *)

type fallback_event =
  | Retried of { analyzer : string; attempt : int; reason : string }
      (** an analyzer failed and is being re-attempted *)
  | Fell_back of { analyzer : string; reason : string }
      (** a non-primary analyzer's outcome was accepted (once per node) *)
  | Absorbed of { analyzer : string; reason : string }
      (** a failure (exception or untrustworthy outcome) was swallowed *)

val fatal_exn : exn -> bool
(** True for conditions the resilience layer must re-raise rather than
    absorb: [Out_of_memory], [Stack_overflow], [Sys.Break]. *)

val with_fallback :
  ?chain:t list -> ?notify:(fallback_event -> unit) -> policy:policy -> t -> t
(** [with_fallback ~policy primary] is [primary] hardened per the policy.
    [chain] overrides the degradation ladder (default: {!deeppoly} then
    {!interval}, minus any analyzer sharing the primary's name; empty
    when [policy.fallback] is false).  [notify] observes resilience
    events — the BaB engine uses it to count retries, fallback bounds
    and absorbed faults.  When the chain is exhausted or the node
    deadline passes, the result is a degraded [Unknown] outcome with
    [lb = neg_infinity].
    @raise Invalid_argument on a negative [max_retries] or non-positive
    [node_timeout]. *)
