(* Exact dyadic rationals: sign * mag * 2^exp.

   The magnitude is a little-endian array of base-2^30 limbs with no
   leading (most-significant) zero limbs.  Limb products fit a native
   63-bit int with room for carries, so schoolbook multiplication needs
   no intermediate bignum.  The only float operation anywhere in this
   file is [Int64.bits_of_float] — a bit copy, not arithmetic. *)

let base_bits = 30

let base = 1 lsl base_bits

let mask = base - 1

(* ---------------- natural-number magnitudes ---------------- *)

let nat_zero = [||]

let nat_is_zero m = Array.length m = 0

(* Strip leading zero limbs so comparisons can use limb counts. *)
let nat_trim m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let nat_of_int v =
  if v < 0 then invalid_arg "Q.nat_of_int";
  let rec limbs v = if v = 0 then [] else (v land mask) :: limbs (v lsr base_bits) in
  Array.of_list (limbs v)

let nat_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let c = ref 0 in
    let i = ref (la - 1) in
    while !c = 0 && !i >= 0 do
      c := Stdlib.compare a.(!i) b.(!i);
      decr i
    done;
    !c
  end

let nat_add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  out.(n) <- !carry;
  nat_trim out

(* Requires a >= b. *)
let nat_sub a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Q.nat_sub: negative result";
  nat_trim out

let nat_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then nat_zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- t land mask;
        carry := t lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = out.(!k) + !carry in
        out.(!k) <- t land mask;
        carry := t lsr base_bits;
        incr k
      done
    done;
    nat_trim out
  end

let nat_shift_left m bits =
  if bits = 0 || nat_is_zero m then m
  else begin
    let limbs = bits / base_bits and rem = bits mod base_bits in
    let lm = Array.length m in
    let out = Array.make (lm + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to lm - 1 do
      let t = (m.(i) lsl rem) lor !carry in
      out.(i + limbs) <- t land mask;
      carry := t lsr base_bits
    done;
    out.(lm + limbs) <- !carry;
    nat_trim out
  end

(* ---------------- dyadic rationals ---------------- *)

type t = { sign : int; mag : int array; exp : int }

let zero = { sign = 0; mag = nat_zero; exp = 0 }

(* Canonical form: zero has sign 0 and exp 0; otherwise shift whole
   trailing zero limbs into the exponent to bound growth. *)
let make sign mag exp =
  if nat_is_zero mag || sign = 0 then zero
  else begin
    let k = ref 0 in
    let lm = Array.length mag in
    while !k < lm && mag.(!k) = 0 do
      incr k
    done;
    let mag = if !k = 0 then mag else Array.sub mag !k (lm - !k) in
    { sign; mag; exp = exp + (!k * base_bits) }
  end

let of_int v =
  if v = 0 then zero
  else if v > 0 then make 1 (nat_of_int v) 0
  else make (-1) (nat_of_int (-v)) 0

let one = of_int 1

let of_float_opt f =
  let bits = Int64.bits_of_float f in
  let biased = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL) in
  let frac = Int64.to_int (Int64.logand bits 0xF_FFFF_FFFF_FFFFL) in
  let sign = if Int64.compare bits 0L < 0 then -1 else 1 in
  if biased = 0x7FF then None (* nan or infinity *)
  else if biased = 0 then
    (* subnormal (or zero when frac = 0): frac * 2^-1074 *)
    Some (make sign (nat_of_int frac) (-1074))
  else Some (make sign (nat_of_int (frac + (1 lsl 52))) (biased - 1075))

let of_float f =
  match of_float_opt f with
  | Some q -> q
  | None -> invalid_arg "Q.of_float: not finite"

let sign t = t.sign

let neg t = { t with sign = -t.sign }

let is_zero t = t.sign = 0

(* Align two magnitudes to the smaller exponent. *)
let align a b =
  let e = min a.exp b.exp in
  let ma = nat_shift_left a.mag (a.exp - e) in
  let mb = nat_shift_left b.mag (b.exp - e) in
  (ma, mb, e)

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else begin
    let ma, mb, e = align a b in
    if a.sign = b.sign then make a.sign (nat_add ma mb) e
    else begin
      match nat_cmp ma mb with
      | 0 -> zero
      | c when c > 0 -> make a.sign (nat_sub ma mb) e
      | _ -> make b.sign (nat_sub mb ma) e
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (nat_mul a.mag b.mag) (a.exp + b.exp)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign = 0 then 0
  else begin
    let ma, mb, _ = align a b in
    a.sign * nat_cmp ma mb
  end

let equal a b = compare a b = 0

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char buf '-';
    Buffer.add_string buf "0x";
    (* Hex digits of the magnitude, most significant first: regroup the
       30-bit limbs through a bit accumulator. *)
    let digits = ref [] in
    let acc = ref 0 and acc_bits = ref 0 in
    Array.iter
      (fun limb ->
        acc := !acc lor (limb lsl !acc_bits);
        acc_bits := !acc_bits + base_bits;
        while !acc_bits >= 4 do
          digits := (!acc land 0xF) :: !digits;
          acc := !acc lsr 4;
          acc_bits := !acc_bits - 4
        done)
      t.mag;
    if !acc_bits > 0 then digits := !acc :: !digits;
    let rec drop_zeros = function 0 :: (_ :: _ as tl) -> drop_zeros tl | ds -> ds in
    let digits = match drop_zeros !digits with [] -> [ 0 ] | ds -> ds in
    List.iter (fun d -> Buffer.add_char buf "0123456789abcdef".[d]) digits;
    if t.exp <> 0 then Buffer.add_string buf (Printf.sprintf "*2^%d" t.exp);
    Buffer.contents buf
  end
