(** Exact dyadic rationals for the trusted proof checker.

    A value is [sign * mag * 2^exp] with [mag] an arbitrary-precision
    natural number.  Every IEEE-754 binary64 float is a dyadic rational,
    so floats convert {e exactly} — the conversion decodes the mantissa
    and exponent from the bit pattern and never rounds.  Addition,
    subtraction and multiplication are closed over dyadic rationals,
    which is all weak-duality checking needs; no division ever happens.

    This module performs {b zero floating-point arithmetic}: floats are
    only decoded bit-for-bit ([Int64.bits_of_float]); every comparison
    is exact. *)

type t

val zero : t

val one : t

val of_int : int -> t

val of_float : float -> t
(** Exact conversion of a finite float (subnormals included; both
    zeros map to {!zero}).
    @raise Invalid_argument on nan or an infinity. *)

val of_float_opt : float -> t option
(** [None] on nan or an infinity. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val is_zero : t -> bool

val to_string : t -> string
(** Exact, for error messages: ["-0x1a3*2^-52"] style (hex magnitude,
    binary exponent). *)
