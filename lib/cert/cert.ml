(* Exact-arithmetic proof checking.  See cert.mli for the trust story.

   Discipline for this file: no floating-point arithmetic, anywhere.
   Floats may be pattern-matched, classified and decoded into Q values
   (both bit-exact operations), and serialized; they are never added,
   multiplied, compared or otherwise computed with.  All numeric
   reasoning happens in Q. *)

module Lp = Ivan_lp.Lp
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Serialize = Ivan_nn.Serialize
module Mat = Ivan_tensor.Mat
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Tree = Ivan_spectree.Tree
module Decision = Ivan_spectree.Decision
module Relu_id = Ivan_nn.Relu_id

module Snapshot = struct
  type row = { idx : int array; cf : float array; cmp : Lp.cmp; rhs : float }

  type t = {
    nvars : int;
    obj : float array;
    lo : float array;
    hi : float array;
    rows : row array;
  }

  let of_problem p =
    let nvars = Lp.num_vars p in
    let lo = Array.make nvars 0.0 and hi = Array.make nvars 0.0 in
    for j = 0 to nvars - 1 do
      let l, h = Lp.get_bounds p j in
      lo.(j) <- l;
      hi.(j) <- h
    done;
    {
      nvars;
      obj = Lp.objective_coeffs p;
      lo;
      hi;
      rows =
        Array.init (Lp.num_rows p) (fun i ->
            let idx, cf, cmp, rhs = Lp.row p i in
            { idx; cf; cmp; rhs });
    }
end

type evidence = { const : float; snapshot : Snapshot.t; witness : Lp.Certificate.t }

type leaf = { node : int; splits : string; evidence : evidence }

let splits_fingerprint path =
  String.concat ","
    (List.map
       (fun (d, side) ->
         match d with
         | Decision.Relu_split r ->
             Printf.sprintf "%cL%dN%d"
               (match side with Decision.Left -> '+' | Decision.Right -> '-')
               r.Relu_id.layer r.Relu_id.index
         | Decision.Input_split dim ->
             Printf.sprintf "%cI%d"
               (match side with Decision.Left -> '<' | Decision.Right -> '>')
               dim)
       path)

(* ------------------------------------------------------------------ *)
(* Exact weak-duality checking *)

let ( let* ) = Result.bind

let q_of ~what i v =
  match Q.of_float_opt v with
  | Some q -> Ok q
  | None -> Error (Printf.sprintf "%s %d is not finite (%h)" what i v)

(* The bound implied by multipliers [y] on a snapshot, optionally with
   the objective zeroed (the Farkas reading).  Writing the LP with
   explicit slacks,  a_i^T x + s_i = b_i  with the slack bounds encoding
   the comparison, weak duality gives for any y:

     c^T x  >=  y^T b
             + sum_j  min over [lo_j, hi_j] of (c_j - y^T A_.j) x_j
             + sum_i  min over [slo_i, shi_i] of (-y_i) s_i

   Each min term is d*lo when the coefficient d is positive, d*hi when
   negative, 0 when zero — and -inf when the needed bound is infinite,
   which we reject.  For slacks the bounds are (0, inf) for Le,
   (-inf, 0) for Ge and (0, 0) for Eq, so the slack terms reduce to the
   familiar sign conditions on y and contribute nothing to the sum. *)
let implied_bound_gen (s : Snapshot.t) ~zero_obj ~y =
  let m = Array.length s.rows in
  if Array.length y <> m then
    Error (Printf.sprintf "multiplier count %d does not match row count %d" (Array.length y) m)
  else begin
    let exception Reject of string in
    try
      let qy =
        Array.mapi
          (fun i v ->
            match q_of ~what:"multiplier for row" i v with
            | Ok q -> q
            | Error e -> raise (Reject e))
          y
      in
      (* Sign conditions (the slack terms of the dual). *)
      Array.iteri
        (fun i (r : Snapshot.row) ->
          match r.cmp with
          | Lp.Le ->
              if Q.sign qy.(i) > 0 then
                raise
                  (Reject
                     (Printf.sprintf "row %d: multiplier %h must be <= 0 for a <= row" i y.(i)))
          | Lp.Ge ->
              if Q.sign qy.(i) < 0 then
                raise
                  (Reject
                     (Printf.sprintf "row %d: multiplier %h must be >= 0 for a >= row" i y.(i)))
          | Lp.Eq -> ())
        s.rows;
      (* Reduced costs d_j = c_j - sum_i y_i A_ij, exactly. *)
      let d =
        if zero_obj then Array.make s.nvars Q.zero
        else
          Array.mapi
            (fun j v ->
              match q_of ~what:"objective coefficient on variable" j v with
              | Ok q -> q
              | Error e -> raise (Reject e))
            s.obj
      in
      let bound = ref Q.zero in
      Array.iteri
        (fun i (r : Snapshot.row) ->
          if Array.length r.idx <> Array.length r.cf then
            raise (Reject (Printf.sprintf "row %d: index/coefficient length mismatch" i));
          (match q_of ~what:"right-hand side of row" i r.rhs with
          | Ok b -> bound := Q.add !bound (Q.mul qy.(i) b)
          | Error e -> raise (Reject e));
          if not (Q.is_zero qy.(i)) then
            Array.iteri
              (fun k j ->
                if j < 0 || j >= s.nvars then
                  raise (Reject (Printf.sprintf "row %d: variable index %d out of range" i j));
                match q_of ~what:"coefficient on variable" j r.cf.(k) with
                | Ok a -> d.(j) <- Q.sub d.(j) (Q.mul qy.(i) a)
                | Error e -> raise (Reject e))
              r.idx)
        s.rows;
      (* Bound terms: each variable rests at whichever bound its reduced
         cost pushes against; an infinite bound there sinks the whole
         certificate. *)
      Array.iteri
        (fun j dj ->
          let sg = Q.sign dj in
          if sg > 0 then begin
            match Q.of_float_opt s.lo.(j) with
            | Some l -> bound := Q.add !bound (Q.mul dj l)
            | None ->
                raise
                  (Reject
                     (Printf.sprintf
                        "variable %d: positive reduced cost %s against non-finite lower bound %h"
                        j (Q.to_string dj) s.lo.(j)))
          end
          else if sg < 0 then begin
            match Q.of_float_opt s.hi.(j) with
            | Some h -> bound := Q.add !bound (Q.mul dj h)
            | None ->
                raise
                  (Reject
                     (Printf.sprintf
                        "variable %d: negative reduced cost %s against non-finite upper bound %h"
                        j (Q.to_string dj) s.hi.(j)))
          end)
        d;
      Ok !bound
    with Reject msg -> Error msg
  end

let implied_bound s ~y = implied_bound_gen s ~zero_obj:false ~y

let check_dual s ~y ~threshold =
  let* bound = implied_bound s ~y in
  if Q.compare bound threshold >= 0 then Ok bound
  else
    Error
      (Printf.sprintf "certified bound %s is below the required threshold %s" (Q.to_string bound)
         (Q.to_string threshold))

let check_farkas s ~y =
  let* bound = implied_bound_gen s ~zero_obj:true ~y in
  if Q.sign bound > 0 then Ok ()
  else
    Error
      (Printf.sprintf "Farkas witness implies only %s > 0 is false (needed strictly positive)"
         (Q.to_string bound))

let check_snapshot_shape (s : Snapshot.t) =
  if
    Array.length s.obj <> s.nvars
    || Array.length s.lo <> s.nvars
    || Array.length s.hi <> s.nvars
  then Error "snapshot arrays do not match the variable count"
  else Ok ()

(* Input variables of every LP encoding are variables [0, dim box); a
   certificate is bound to its property (and, under ReLU-only splitting,
   to its leaf) by their bounds matching the box bit-for-bit. *)
let check_input_binding (s : Snapshot.t) ~box =
  let d = Box.dim box in
  if s.nvars < d then
    Error (Printf.sprintf "snapshot has %d variables, fewer than the %d inputs" s.nvars d)
  else begin
    let exception Reject of string in
    try
      for j = 0 to d - 1 do
        let bind what have want =
          match (Q.of_float_opt have, Q.of_float_opt want) with
          | Some a, Some b when Q.equal a b -> ()
          | _ ->
              raise
                (Reject
                   (Printf.sprintf
                      "input %d: snapshot %s bound %h does not match the property box %h" j what
                      have want))
        in
        bind "lower" s.lo.(j) (Box.lo_at box j);
        bind "upper" s.hi.(j) (Box.hi_at box j)
      done;
      Ok ()
    with Reject msg -> Error msg
  end

let check_leaf ~box (l : leaf) =
  let s = l.evidence.snapshot in
  let fail msg = Error (Printf.sprintf "leaf %d: %s" l.node msg) in
  match
    let* () = check_snapshot_shape s in
    let* () = check_input_binding s ~box in
    match l.evidence.witness with
    | Lp.Certificate.Dual y -> begin
        match Q.of_float_opt l.evidence.const with
        | None -> Error (Printf.sprintf "objective constant %h is not finite" l.evidence.const)
        | Some const -> (
            match check_dual s ~y ~threshold:(Q.neg const) with
            | Ok _ -> Ok ()
            | Error e -> Error e)
      end
    | Lp.Certificate.Farkas y -> check_farkas s ~y
  with
  | Ok () -> Ok ()
  | Error msg -> fail msg

(* ------------------------------------------------------------------ *)
(* Exact network evaluation (counterexample checking) *)

let exact_forward net (x : Q.t array) =
  let v = ref x in
  let layers = Network.layers net in
  let* () =
    Array.fold_left
      (fun acc layer ->
        let* () = acc in
        match (Layer.affine layer, Layer.activation layer) with
        | Layer.Conv2d _, _ -> Error "exact evaluation does not support convolutional layers"
        | Layer.Dense _, (Layer.Sigmoid | Layer.Tanh) ->
            Error "exact evaluation does not support smooth activations"
        | Layer.Dense { weights; bias }, act ->
            let rows = Mat.rows weights and cols = Mat.cols weights in
            if Array.length !v <> cols then Error "layer input dimension mismatch"
            else begin
              let out =
                Array.init rows (fun i ->
                    let acc = ref (Q.of_float bias.(i)) in
                    for j = 0 to cols - 1 do
                      acc := Q.add !acc (Q.mul (Q.of_float (Mat.get weights i j)) !v.(j))
                    done;
                    !acc)
              in
              let out =
                match act with
                | Layer.Identity -> out
                | Layer.Relu ->
                    Array.map (fun q -> if Q.sign q < 0 then Q.zero else q) out
                | Layer.Leaky_relu a ->
                    let qa = Q.of_float a in
                    Array.map (fun q -> if Q.sign q < 0 then Q.mul qa q else q) out
                | Layer.Sigmoid | Layer.Tanh -> assert false
              in
              v := out;
              Ok ()
            end)
      (Ok ()) layers
  in
  Ok !v

let check_counterexample ~net ~(prop : Prop.t) x =
  let d = Box.dim prop.Prop.input in
  if Array.length x <> d then
    Error (Printf.sprintf "counterexample has %d coordinates, input dimension is %d"
             (Array.length x) d)
  else begin
    let exception Reject of string in
    try
      let qx =
        Array.mapi
          (fun j v ->
            match q_of ~what:"counterexample coordinate" j v with
            | Ok q -> q
            | Error e -> raise (Reject e))
          x
      in
      Array.iteri
        (fun j q ->
          let lo = Q.of_float (Box.lo_at prop.Prop.input j) in
          let hi = Q.of_float (Box.hi_at prop.Prop.input j) in
          if Q.compare q lo < 0 || Q.compare q hi > 0 then
            raise
              (Reject (Printf.sprintf "counterexample coordinate %d (%h) lies outside the box" j
                         x.(j))))
        qx;
      let* out = exact_forward net qx in
      if Array.length out <> Array.length prop.Prop.c then
        Error "network output dimension does not match the property"
      else begin
        let margin = ref (Q.of_float prop.Prop.offset) in
        Array.iteri (fun i q -> margin := Q.add !margin (Q.mul (Q.of_float prop.Prop.c.(i)) q)) out;
        if Q.sign !margin < 0 then Ok ()
        else
          Error
            (Printf.sprintf "counterexample's exact margin %s is not negative"
               (Q.to_string !margin))
      end
    with Reject msg -> Error msg
  end

(* ------------------------------------------------------------------ *)
(* Artifacts *)

module Artifact = struct
  type verdict = Proved | Disproved of float array

  type t = {
    net : Network.t;
    prop : Prop.t;
    verdict : verdict;
    tree : Tree.t;
    leaves : leaf list;
  }

  let ftok v = Printf.sprintf "%h" v

  let ftoks a = String.concat " " (Array.to_list (Array.map ftok a))

  let block_lines s =
    let lines = String.split_on_char '\n' s in
    let rec drop_trailing = function
      | [ "" ] -> []
      | [] -> []
      | l :: tl -> l :: drop_trailing tl
    in
    drop_trailing lines

  let to_string (t : t) =
    let buf = Buffer.create 65536 in
    let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
    addf "ivan-proof 1";
    addf "name: %S" t.prop.Prop.name;
    addf "offset: %s" (ftok t.prop.Prop.offset);
    addf "c: %d %s" (Array.length t.prop.Prop.c) (ftoks t.prop.Prop.c);
    let box = t.prop.Prop.input in
    let d = Box.dim box in
    addf "box: %d" d;
    addf "lo: %s" (ftoks (Box.lo box));
    addf "hi: %s" (ftoks (Box.hi box));
    (match t.verdict with
    | Proved -> addf "verdict: proved"
    | Disproved x -> addf "verdict: disproved %s" (ftoks x));
    let net_lines = block_lines (Serialize.to_string t.net) in
    addf "net: %d" (List.length net_lines);
    List.iter (addf "%s") net_lines;
    let tree_lines = block_lines (Tree.to_string t.tree) in
    addf "tree: %d" (List.length tree_lines);
    List.iter (addf "%s") tree_lines;
    addf "leaves: %d" (List.length t.leaves);
    List.iter
      (fun (l : leaf) ->
        addf "leaf: %d" l.node;
        addf "splits: %S" l.splits;
        addf "const: %s" (ftok l.evidence.const);
        (match l.evidence.witness with
        | Lp.Certificate.Dual y -> addf "witness: dual %d %s" (Array.length y) (ftoks y)
        | Lp.Certificate.Farkas y -> addf "witness: farkas %d %s" (Array.length y) (ftoks y));
        let s = l.evidence.snapshot in
        addf "snapshot: %d %d" s.Snapshot.nvars (Array.length s.Snapshot.rows);
        addf "obj: %s" (ftoks s.Snapshot.obj);
        addf "vlo: %s" (ftoks s.Snapshot.lo);
        addf "vhi: %s" (ftoks s.Snapshot.hi);
        Array.iter
          (fun (r : Snapshot.row) ->
            addf "row: %s %s %d %s %s"
              (match r.Snapshot.cmp with Lp.Le -> "le" | Lp.Ge -> "ge" | Lp.Eq -> "eq")
              (ftok r.Snapshot.rhs) (Array.length r.Snapshot.idx)
              (String.concat " " (Array.to_list (Array.map string_of_int r.Snapshot.idx)))
              (ftoks r.Snapshot.cf))
          s.Snapshot.rows)
      t.leaves;
    Buffer.contents buf

  let of_string text =
    let fail fmt = Printf.ksprintf (fun s -> failwith ("Cert.Artifact.of_string: " ^ s)) fmt in
    let lines = Array.of_list (String.split_on_char '\n' text) in
    let pos = ref 0 in
    let next () =
      if !pos >= Array.length lines then fail "truncated artifact";
      let l = lines.(!pos) in
      incr pos;
      l
    in
    let field name =
      let l = next () in
      let prefix = name ^ ":" in
      let pl = String.length prefix in
      if String.length l < pl || String.sub l 0 pl <> prefix then
        fail "expected %S line, got %S" prefix l;
      String.trim (String.sub l pl (String.length l - pl))
    in
    let tokens s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
    let float_tok t = try float_of_string t with _ -> fail "bad float token %S" t in
    let int_tok t = try int_of_string t with _ -> fail "bad integer token %S" t in
    (* Counts drive allocations; a corrupt count must be a parse error,
       not an attempted giga-element array. *)
    let count_tok t =
      let n = int_tok t in
      if n < 0 || n > 1_000_000 then fail "count %d out of range" n;
      n
    in
    let floats_exactly n s =
      let fs = List.map float_tok (tokens s) in
      if List.length fs <> n then fail "expected %d floats, got %d" n (List.length fs);
      Array.of_list fs
    in
    let counted_floats s =
      match tokens s with
      | n :: rest ->
          let n = count_tok n in
          let fs = List.map float_tok rest in
          if List.length fs <> n then fail "expected %d floats, got %d" n (List.length fs);
          Array.of_list fs
      | [] -> fail "expected a counted float list"
    in
    let quoted s = try Scanf.sscanf s "%S" Fun.id with _ -> fail "bad quoted string %S" s in
    let block n =
      let buf = Buffer.create 1024 in
      for _ = 1 to n do
        Buffer.add_string buf (next ());
        Buffer.add_char buf '\n'
      done;
      Buffer.contents buf
    in
    if String.trim (next ()) <> "ivan-proof 1" then fail "missing ivan-proof header";
    let name = quoted (field "name") in
    let offset = float_tok (field "offset") in
    let c = counted_floats (field "c") in
    let d = count_tok (field "box") in
    let lo = floats_exactly d (field "lo") in
    let hi = floats_exactly d (field "hi") in
    let verdict =
      match tokens (field "verdict") with
      | [ "proved" ] -> Proved
      | "disproved" :: rest ->
          let x = List.map float_tok rest in
          if List.length x <> d then fail "counterexample dimension mismatch";
          Disproved (Array.of_list x)
      | _ -> fail "bad verdict line"
    in
    let net = try Serialize.of_string (block (count_tok (field "net"))) with Failure e -> fail "embedded network: %s" e in
    let tree = try Tree.of_string (block (count_tok (field "tree"))) with Failure e -> fail "embedded tree: %s" e in
    let nleaves = count_tok (field "leaves") in
    let leaves = ref [] in
    for _ = 1 to nleaves do
      let node = int_tok (field "leaf") in
      let splits = quoted (field "splits") in
      let const = float_tok (field "const") in
      let witness =
        match tokens (field "witness") with
        | kind :: n :: rest ->
            let n = count_tok n in
            let y = List.map float_tok rest in
            if List.length y <> n then fail "witness length mismatch on leaf %d" node;
            let y = Array.of_list y in
            (match kind with
            | "dual" -> Lp.Certificate.Dual y
            | "farkas" -> Lp.Certificate.Farkas y
            | k -> fail "unknown witness kind %S" k)
        | _ -> fail "bad witness line on leaf %d" node
      in
      let nvars, nrows =
        match tokens (field "snapshot") with
        | [ nv; nr ] -> (count_tok nv, count_tok nr)
        | _ -> fail "bad snapshot line on leaf %d" node
      in
      let obj = floats_exactly nvars (field "obj") in
      let vlo = floats_exactly nvars (field "vlo") in
      let vhi = floats_exactly nvars (field "vhi") in
      let rows =
        Array.init nrows (fun _ ->
            match tokens (field "row") with
            | cmp :: rhs :: nnz :: rest ->
                let cmp =
                  match cmp with
                  | "le" -> Lp.Le
                  | "ge" -> Lp.Ge
                  | "eq" -> Lp.Eq
                  | c -> fail "unknown row comparison %S" c
                in
                let nnz = count_tok nnz in
                if List.length rest <> 2 * nnz then fail "row token count mismatch on leaf %d" node;
                let rest = Array.of_list rest in
                let idx = Array.init nnz (fun k -> int_tok rest.(k)) in
                let cf = Array.init nnz (fun k -> float_tok rest.(nnz + k)) in
                { Snapshot.idx; cf; cmp; rhs = float_tok rhs }
            | _ -> fail "bad row line on leaf %d" node)
      in
      leaves :=
        {
          node;
          splits;
          evidence =
            { const; snapshot = { Snapshot.nvars; obj; lo = vlo; hi = vhi; rows }; witness };
        }
        :: !leaves
    done;
    while !pos < Array.length lines && String.trim lines.(!pos) = "" do
      incr pos
    done;
    if !pos < Array.length lines then fail "trailing input after artifact";
    let input = Box.make ~lo ~hi in
    let prop = Prop.make ~name ~input ~c ~offset in
    { net; prop; verdict; tree; leaves = List.rev !leaves }

  let to_file path t =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t));
    Sys.rename tmp path

  let of_file path =
    let ic = open_in path in
    let len = in_channel_length ic in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic len))
end

type report = { leaves : int; dual_certs : int; farkas_certs : int }

let check_artifact (a : Artifact.t) =
  let net = a.Artifact.net and prop = a.Artifact.prop in
  let d = Box.dim prop.Prop.input in
  if Network.input_dim net <> d then
    Error "embedded network input dimension does not match the property box"
  else if Network.output_dim net <> Array.length prop.Prop.c then
    Error "embedded network output dimension does not match the property"
  else begin
    match a.Artifact.verdict with
    | Artifact.Disproved x ->
        if a.Artifact.leaves <> [] then
          Error "a disproved artifact must not carry leaf certificates"
        else
          let* () = check_counterexample ~net ~prop x in
          Ok { leaves = 0; dual_certs = 0; farkas_certs = 0 }
    | Artifact.Proved ->
        let tree = a.Artifact.tree in
        if not (Tree.well_formed tree) then Error "specification tree is not well-formed"
        else begin
          let input_split = ref false in
          Tree.iter_nodes tree (fun n ->
              match Tree.decision n with
              | Some (Decision.Input_split _) -> input_split := true
              | _ -> ());
          if !input_split then
            Error "tree contains input splits, which certification does not support"
          else begin
            let by_node = Hashtbl.create 64 in
            let dup = ref None in
            List.iter
              (fun (l : leaf) ->
                if Hashtbl.mem by_node l.node then dup := Some l.node
                else Hashtbl.add by_node l.node l)
              a.Artifact.leaves;
            match !dup with
            | Some n -> Error (Printf.sprintf "duplicate certificate for leaf %d" n)
            | None ->
                let tree_leaves = Tree.leaves tree in
                let leaf_ids =
                  List.fold_left
                    (fun acc n -> (Tree.node_id n) :: acc)
                    [] tree_leaves
                in
                let unknown =
                  List.find_opt (fun (l : leaf) -> not (List.mem l.node leaf_ids)) a.Artifact.leaves
                in
                (match unknown with
                | Some l ->
                    Error
                      (Printf.sprintf "certificate for node %d, which is not a leaf of the tree"
                         l.node)
                | None ->
                    let rec check_all dual farkas = function
                      | [] -> Ok { leaves = List.length tree_leaves; dual_certs = dual; farkas_certs = farkas }
                      | n :: rest -> (
                          let id = Tree.node_id n in
                          match Hashtbl.find_opt by_node id with
                          | None -> Error (Printf.sprintf "leaf %d has no certificate" id)
                          | Some l ->
                              let expected = splits_fingerprint (Tree.path_decisions n) in
                              if l.splits <> expected then
                                Error
                                  (Printf.sprintf
                                     "leaf %d: certificate is bound to splits %S, leaf path is %S"
                                     id l.splits expected)
                              else
                                let* () = check_leaf ~box:prop.Prop.input l in
                                let dual, farkas =
                                  match l.evidence.witness with
                                  | Lp.Certificate.Dual _ -> (dual + 1, farkas)
                                  | Lp.Certificate.Farkas _ -> (dual, farkas + 1)
                                in
                                check_all dual farkas rest)
                    in
                    check_all 0 0 tree_leaves)
          end
        end
  end

let pp_report fmt r =
  Format.fprintf fmt "%d leaves checked (%d dual, %d Farkas)" r.leaves r.dual_certs r.farkas_certs
