(** Exact-arithmetic proof checking for BaB verdicts.

    This module is the {b trusted base} of proof-carrying verification.
    Together with {!Q} it re-derives, in exact dyadic-rational
    arithmetic, the bound every leaf certificate claims — so a verdict
    can be audited long after the run without trusting the float
    simplex, warm starts, fallback analyzers, or fault injection that
    produced it.  No function below performs floating-point arithmetic:
    floats are decoded bit-exactly into {!Q} values and only ever
    compared there.

    What checking establishes, per artifact:
    - [Proved]: the specification tree is structurally well-formed and
      covers the property's input region (complementary ReLU phases on
      every internal node; input-splitting trees are {e rejected} as
      uncertifiable), and every leaf carries a certificate whose
      exactly-recomputed LP bound proves the leaf's sub-property.
    - [Disproved]: the recorded counterexample lies in the input box and
      exactly evaluates, through the embedded network, to a negative
      property margin.

    What remains trusted (out of scope for the checker, see DESIGN.md):
    that the per-leaf LP snapshots are sound relaxations of the
    network's semantics under the leaf's split assumptions.  Snapshots
    are bound to their leaf structurally — input-variable bounds must
    equal the property box exactly, and the recorded split fingerprint
    must match the leaf's path in the tree — which is what rejects
    transplanted or re-keyed certificates. *)

module Lp = Ivan_lp.Lp

(** The LP a certificate refers to, frozen at solve time. *)
module Snapshot : sig
  type row = { idx : int array; cf : float array; cmp : Lp.cmp; rhs : float }

  type t = {
    nvars : int;
    obj : float array;  (** length [nvars] *)
    lo : float array;  (** variable bounds; infinities allowed *)
    hi : float array;
    rows : row array;
  }

  val of_problem : Lp.problem -> t
  (** Copy the current rows, bounds and objective of a problem — call
      immediately after the solve whose certificate is kept. *)
end

type evidence = {
  const : float;
      (** constant folded out of the LP objective by the encoder; the
          certified property margin is [LP bound + const] *)
  snapshot : Snapshot.t;
  witness : Lp.Certificate.t;
}

type leaf = {
  node : int;  (** specification-tree node id *)
  splits : string;  (** {!splits_fingerprint} of the leaf's path *)
  evidence : evidence;
}

val splits_fingerprint : (Ivan_spectree.Decision.t * Ivan_spectree.Decision.side) list -> string
(** Canonical token binding a certificate to its leaf's split
    assumptions, e.g. ["+L1N3,-L2N0"] (root-to-leaf order). *)

(** {2 Exact checking} *)

val implied_bound : Snapshot.t -> y:float array -> (Q.t, string) result
(** The lower bound on the snapshot's objective implied by row
    multipliers [y], by weak duality — sound for {e any} finite [y] of
    the right signs.  [Error] when a multiplier has a sign its row's
    comparison does not admit, when a reduced cost pushes against an
    infinite variable bound (the implied bound would be [-inf]), or when
    any datum is non-finite. *)

val check_dual : Snapshot.t -> y:float array -> threshold:Q.t -> (Q.t, string) result
(** Check that the implied bound is [>= threshold]; returns the exact
    bound on success. *)

val check_farkas : Snapshot.t -> y:float array -> (unit, string) result
(** Validate a Farkas witness: with the objective zeroed, the implied
    bound must be strictly positive — no point satisfies the rows and
    bounds. *)

val check_leaf : box:Ivan_spec.Box.t -> leaf -> (unit, string) result
(** Full per-leaf check: snapshot well-formedness, input-variable bounds
    exactly equal to the property box, and the witness — a [Dual]
    multiplier vector must certify [bound + const >= 0], a [Farkas] one
    must certify the leaf's LP infeasible (a vacuous sub-property). *)

(** {2 Proof artifacts} *)

module Artifact : sig
  type verdict = Proved | Disproved of float array

  type t = {
    net : Ivan_nn.Network.t;  (** embedded, bit-exact *)
    prop : Ivan_spec.Prop.t;
    verdict : verdict;
    tree : Ivan_spectree.Tree.t;
    leaves : leaf list;  (** one certificate per tree leaf ([Proved]) *)
  }

  val to_string : t -> string
  (** Line-oriented text, hex floats throughout; self-contained (the
      network and property are embedded, so checking needs no other
      file).  See DESIGN.md for the format. *)

  val of_string : string -> t
  (** @raise Failure on malformed input. *)

  val to_file : string -> t -> unit
  (** Atomic (write to a temp file, then rename). *)

  val of_file : string -> t
  (** @raise Sys_error / [Failure]. *)
end

type report = {
  leaves : int;  (** tree leaves checked (0 for [Disproved]) *)
  dual_certs : int;
  farkas_certs : int;
}

val check_artifact : Artifact.t -> (report, string) result
(** End-to-end validation of an artifact, without rerunning the
    verifier.  The [Error] string pinpoints the first failing leaf or
    structural defect. *)

val pp_report : Format.formatter -> report -> unit
