let wall = Unix.gettimeofday

let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let now = wall

let timed f =
  let t0 = monotonic () in
  let r = f () in
  (r, monotonic () -. t0)
