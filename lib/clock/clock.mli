(** Time sources shared by every layer that measures or enforces time.

    Two distinct clocks, for two distinct jobs:

    - {!wall} is [Unix.gettimeofday]: seconds since the epoch, for
      timestamps shown to humans.  It is subject to NTP steps and manual
      adjustment, so it must never back a deadline.
    - {!monotonic} is the kernel's [CLOCK_MONOTONIC] (via bechamel's
      noalloc stub): seconds from an arbitrary origin that only ever
      move forward.  All deadline and timeout arithmetic — the engine's
      wall-clock budget, the resilience layer's per-node timeout,
      elapsed-time measurement — uses this source, so a clock step
      cannot spuriously fire or suppress a timeout. *)

val wall : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]).
    Timestamps only; never deadlines. *)

val monotonic : unit -> float
(** Monotonic seconds from an arbitrary origin ([CLOCK_MONOTONIC]).
    Only differences are meaningful. *)

val now : unit -> float
(** Alias of {!wall}, kept for the harness's historical interface. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result together with the
    elapsed seconds, measured on the monotonic clock. *)
