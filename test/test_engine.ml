(* Tests for the pluggable verification engine: a golden regression
   against the original (pre-Engine) BaB loop, frontier ordering,
   explicit stepping/cancellation, trace JSONL round-tripping, and the
   stuck-heuristic accounting. *)

module Vec = Ivan_tensor.Vec
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Network = Ivan_nn.Network
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Engine = Ivan_bab.Engine
module Frontier = Ivan_bab.Frontier
module Trace = Ivan_bab.Trace
module Tree = Ivan_spectree.Tree
module Decision = Ivan_spectree.Decision

let lp = Analyzer.lp_triangle ()

(* ------------------------------------------------------------------ *)
(* Golden regression: a verbatim copy of the seed implementation's BaB
   loop (the recursive Queue-based [Bab.verify] this engine replaced).
   The refactored verifier under the default Fifo strategy must produce
   the identical verdict, analyzer-call count, branching count, and tree
   shape on every instance. *)

type seed_verdict = Seed_proved | Seed_disproved of Vec.t | Seed_exhausted

let seed_verify ~analyzer ~heuristic ?(budget = Bab.default_budget) ?initial_tree ~net ~prop () =
  let tree = match initial_tree with None -> Tree.create () | Some t -> Tree.copy t in
  let calls = ref 0 in
  let branchings = ref 0 in
  let active = Queue.create () in
  List.iter (fun n -> Queue.add n active) (Tree.leaves tree);
  let out_of_budget () = !calls >= budget.Bab.max_analyzer_calls in
  let rec loop () =
    if Queue.is_empty active then Seed_proved
    else if out_of_budget () then Seed_exhausted
    else begin
      let node = Queue.pop active in
      let box, splits = Tree.subproblem ~root_box:prop.Prop.input node in
      incr calls;
      let outcome = analyzer.Analyzer.run net ~prop ~box ~splits in
      Tree.set_lb node outcome.Analyzer.lb;
      match outcome.Analyzer.status with
      | Analyzer.Verified -> loop ()
      | Analyzer.Counterexample x -> Seed_disproved x
      | Analyzer.Unknown -> (
          let ctx = { Heuristic.net; prop; box; splits; outcome } in
          match Heuristic.best (heuristic.Heuristic.scores ctx) with
          | None -> Seed_exhausted
          | Some d ->
              let left, right = Tree.split tree node d in
              incr branchings;
              Queue.add left active;
              Queue.add right active;
              loop ())
    end
  in
  let verdict = loop () in
  (verdict, tree, !calls, !branchings)

let check_matches_seed ?budget ?initial_tree ~analyzer ~heuristic ~net ~prop label =
  let seed_verdict, seed_tree, seed_calls, seed_branchings =
    seed_verify ~analyzer ~heuristic ?budget ?initial_tree ~net ~prop ()
  in
  let run = Bab.verify ~analyzer ~heuristic ?budget ?initial_tree ~net ~prop () in
  (match (seed_verdict, run.Bab.verdict) with
  | Seed_proved, Bab.Proved | Seed_exhausted, Bab.Exhausted -> ()
  | Seed_disproved x, Bab.Disproved y ->
      Alcotest.(check bool) (label ^ ": same counterexample") true (x = y)
  | _ -> Alcotest.failf "%s: verdict differs from the seed implementation" label);
  Alcotest.(check int) (label ^ ": analyzer calls") seed_calls run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) (label ^ ": branchings") seed_branchings run.Bab.stats.Bab.branchings;
  Alcotest.(check string) (label ^ ": tree shape") (Tree.to_string seed_tree)
    (Tree.to_string run.Bab.tree)

let test_golden_fifo_matches_seed () =
  let net = Fixtures.paper_net () in
  List.iter
    (fun offset ->
      let prop = Fixtures.paper_prop_with_offset offset in
      check_matches_seed ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop
        (Printf.sprintf "offset %g" offset))
    [ 1.3; 1.45; 1.55; 1.6; 1.7; 2.0 ]

let test_golden_call_budget () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  List.iter
    (fun max_analyzer_calls ->
      let budget = { Bab.max_analyzer_calls; max_seconds = infinity } in
      check_matches_seed ~budget ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop
        (Printf.sprintf "budget %d" max_analyzer_calls))
    [ 1; 2; 3; 5 ]

let test_golden_initial_tree_reuse () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let first = Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  check_matches_seed ~initial_tree:first.Bab.tree ~analyzer:lp ~heuristic:Heuristic.zono_coeff
    ~net ~prop "reused tree"

let test_golden_input_splitting () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  check_matches_seed ~analyzer:(Analyzer.zonotope ()) ~heuristic:Heuristic.input_smear ~net ~prop
    "input splitting"

(* ------------------------------------------------------------------ *)
(* Frontier ordering *)

let drain f =
  let rec go acc = match Frontier.pop f with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let test_frontier_fifo_order () =
  let f = Frontier.create Frontier.Fifo in
  List.iter (fun i -> Frontier.push f ~priority:(float_of_int (-i)) i) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "fifo ignores priority" [ 1; 2; 3; 4 ] (drain f)

let test_frontier_lifo_order () =
  let f = Frontier.create Frontier.Lifo in
  List.iter (fun i -> Frontier.push f ~priority:0.0 i) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "lifo reverses" [ 4; 3; 2; 1 ] (drain f)

let test_frontier_best_order () =
  let f = Frontier.create Frontier.Best_first in
  List.iter
    (fun (p, x) -> Frontier.push f ~priority:p x)
    [ (3.0, 30); (1.0, 10); (2.0, 20); (0.5, 5) ];
  Alcotest.(check (list int)) "lowest bound first" [ 5; 10; 20; 30 ] (drain f)

let test_frontier_best_ties_and_nan () =
  let f = Frontier.create Frontier.Best_first in
  List.iter
    (fun (p, x) -> Frontier.push f ~priority:p x)
    [ (1.0, 1); (1.0, 2); (nan, 99); (1.0, 3) ];
  (* NaN normalizes to -inf (most urgent); ties pop in insertion order. *)
  Alcotest.(check (list int)) "nan first, then insertion order" [ 99; 1; 2; 3 ] (drain f);
  Alcotest.(check bool) "empty after drain" true (Frontier.is_empty f)

let test_frontier_length () =
  let f = Frontier.create Frontier.Best_first in
  Alcotest.(check int) "empty" 0 (Frontier.length f);
  Frontier.push f ~priority:1.0 1;
  Frontier.push f ~priority:2.0 2;
  Alcotest.(check int) "two" 2 (Frontier.length f);
  ignore (Frontier.pop f);
  Alcotest.(check int) "one" 1 (Frontier.length f)

let test_strategy_of_string () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool) s true (Frontier.strategy_of_string s = expected))
    [
      ("fifo", Some Frontier.Fifo);
      ("BFS", Some Frontier.Fifo);
      ("dfs", Some Frontier.Lifo);
      ("best-first", Some Frontier.Best_first);
      ("nonsense", None);
    ]

(* All strategies remain complete verifiers: same verdict, possibly
   different traversal. *)
let test_all_strategies_complete () =
  let net = Fixtures.paper_net () in
  List.iter
    (fun offset ->
      let prop = Fixtures.paper_prop_with_offset offset in
      List.iter
        (fun strategy ->
          let run =
            Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~strategy ~net ~prop ()
          in
          match run.Bab.verdict with
          | Bab.Proved ->
              Alcotest.(check bool)
                (Printf.sprintf "%s offset %g proved" (Frontier.strategy_name strategy) offset)
                true (offset > 1.5)
          | Bab.Disproved x ->
              Alcotest.(check bool) "genuine CE" true (Analyzer.check_concrete net ~prop x);
              Alcotest.(check bool)
                (Printf.sprintf "%s offset %g disproved" (Frontier.strategy_name strategy) offset)
                true (offset < 1.5)
          | Bab.Exhausted -> Alcotest.failf "offset %g exhausted" offset)
        Frontier.all_strategies)
    [ 1.3; 1.6 ]

(* ------------------------------------------------------------------ *)
(* Explicit stepping *)

let test_step_loop_equals_run () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let reference = Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let engine = Engine.create ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let steps = ref 0 in
  let rec go () =
    match Engine.step engine with
    | Engine.Running ->
        incr steps;
        go ()
    | Engine.Finished run -> run
  in
  let run = go () in
  Alcotest.(check bool) "proved" true (run.Bab.verdict = Bab.Proved);
  (* Every analyzer call is one Running step; the final step only
     observes the empty frontier. *)
  Alcotest.(check int) "one step per analyzer call" run.Bab.stats.Bab.analyzer_calls !steps;
  Alcotest.(check int) "same calls as Bab.verify" reference.Bab.stats.Bab.analyzer_calls
    run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check string) "same tree" (Tree.to_string reference.Bab.tree)
    (Tree.to_string run.Bab.tree);
  (* Idempotent after completion. *)
  (match Engine.step engine with
  | Engine.Finished again ->
      Alcotest.(check int) "stable calls" run.Bab.stats.Bab.analyzer_calls
        again.Bab.stats.Bab.analyzer_calls
  | Engine.Running -> Alcotest.fail "engine resumed after finishing");
  match Engine.finished engine with
  | Some _ -> ()
  | None -> Alcotest.fail "finished engine reports None"

let test_cancel_mid_run () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let engine = Engine.create ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  (match Engine.step engine with
  | Engine.Running -> ()
  | Engine.Finished _ -> Alcotest.fail "tight instance finished in one step");
  let run = Engine.cancel engine in
  Alcotest.(check bool) "cancelled run is Exhausted" true (run.Bab.verdict = Bab.Exhausted);
  Alcotest.(check int) "one analyzer call happened" 1 run.Bab.stats.Bab.analyzer_calls;
  (* Cancellation is terminal and stable. *)
  match Engine.step engine with
  | Engine.Finished again ->
      Alcotest.(check bool) "still exhausted" true (again.Bab.verdict = Bab.Exhausted)
  | Engine.Running -> Alcotest.fail "engine resumed after cancel"

(* A sound-but-useless analyzer plus a bone-dry heuristic: the engine
   must report the distinct heuristic-failure accounting, not plain
   budget exhaustion. *)
let test_stuck_heuristic_accounted () =
  let stuck_analyzer =
    {
      Analyzer.name = "always-unknown";
      run = (fun _net ~prop:_ ~box:_ ~splits:_ ->
          { Analyzer.status = Analyzer.Unknown; lb = -1.0; bounds = None; zono = None; cert = None });
    }
  in
  let no_decisions = { Heuristic.name = "none"; scores = (fun _ -> []) } in
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let ring = Trace.ring ~capacity:16 in
  let run =
    Bab.verify ~analyzer:stuck_analyzer ~heuristic:no_decisions ~trace:ring ~net ~prop ()
  in
  Alcotest.(check bool) "verdict stays Exhausted" true (run.Bab.verdict = Bab.Exhausted);
  Alcotest.(check int) "one analyzer call" 1 run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "heuristic failure counted" 1 run.Bab.stats.Bab.heuristic_failures;
  let stuck_events =
    List.filter (function Trace.Stuck _ -> true | _ -> false) (Trace.ring_contents ring)
  in
  Alcotest.(check int) "Stuck event emitted" 1 (List.length stuck_events)

(* ------------------------------------------------------------------ *)
(* Trace serialization *)

let sample_events =
  [
    Trace.Dequeued { node = 0; depth = 0; frontier = 1 };
    Trace.Analyzed { node = 0; status = "unknown"; lb = -0.12345678901234567; seconds = 0.0625 };
    Trace.Split
      {
        node = 0;
        decision = Decision.Relu_split (Ivan_nn.Relu_id.make ~layer:1 ~index:3);
        left = 1;
        right = 2;
      };
    Trace.Split { node = 1; decision = Decision.Input_split 0; left = 3; right = 4 };
    Trace.Pruned { node = 2 };
    Trace.Stuck { node = 3 };
    Trace.Retried { node = 4; analyzer = "lp-triangle"; attempt = 2; reason = "Lp.Iteration_limit" };
    Trace.Fallback { node = 4; analyzer = "interval"; reason = "degraded after retries" };
    Trace.Absorbed { node = 5; analyzer = "lp-triangle"; reason = "injected \"fault\"" };
    Trace.Analyzed { node = 1; status = "verified"; lb = neg_infinity; seconds = nan };
    Trace.Verdict { verdict = "proved"; calls = 7; seconds = 1.5 };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun e ->
      let json = Trace.event_to_json e in
      let back = Trace.event_of_json json in
      (* Structural equality, except NaN fields compare by being NaN. *)
      match (e, back) with
      | Trace.Analyzed a, Trace.Analyzed b when Float.is_nan a.seconds ->
          Alcotest.(check bool) json true
            (a.node = b.node && a.status = b.status && a.lb = b.lb && Float.is_nan b.seconds)
      | _ -> Alcotest.(check bool) json true (e = back))
    sample_events

let test_jsonl_file_roundtrip_and_aggregate () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let path = Filename.temp_file "ivan_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let run =
        Trace.with_jsonl_file path (fun trace ->
            Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~trace ~net ~prop ())
      in
      let events = Trace.read_jsonl path in
      let agg = Trace.aggregate events in
      (* The replayed trace reproduces the run's aggregate statistics. *)
      Alcotest.(check int) "calls" run.Bab.stats.Bab.analyzer_calls agg.Trace.analyzer_calls;
      Alcotest.(check int) "branchings" run.Bab.stats.Bab.branchings agg.Trace.branchings;
      Alcotest.(check int) "max frontier" run.Bab.stats.Bab.max_frontier agg.Trace.max_frontier;
      Alcotest.(check int) "max depth" run.Bab.stats.Bab.max_depth agg.Trace.max_depth;
      Alcotest.(check (float 1e-12)) "analyzer seconds" run.Bab.stats.Bab.analyzer_seconds
        agg.Trace.analyzer_seconds;
      Alcotest.(check int) "no pruning in a plain run" 0 agg.Trace.pruned;
      Alcotest.(check bool) "verdict recorded" true (agg.Trace.verdict = Some "proved");
      (* Each line parses back to the event that produced it. *)
      Alcotest.(check int) "event count stable" agg.Trace.events (List.length events);
      List.iter
        (fun e ->
          Alcotest.(check bool) "re-encoding stable" true
            (Trace.event_to_json (Trace.event_of_json (Trace.event_to_json e))
            = Trace.event_to_json e))
        events)

let test_ring_capacity () =
  let ring = Trace.ring ~capacity:3 in
  List.iter (fun i -> Trace.emit ring (Trace.Pruned { node = i })) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "keeps the most recent"
    true
    (Trace.ring_contents ring
    = [ Trace.Pruned { node = 3 }; Trace.Pruned { node = 4 }; Trace.Pruned { node = 5 } ])

let test_tee_and_hook () =
  let seen = ref [] in
  let sink = Trace.tee (Trace.hook (fun e -> seen := e :: !seen)) (Trace.ring ~capacity:4) in
  Trace.emit sink (Trace.Pruned { node = 7 });
  Alcotest.(check int) "hook fired" 1 (List.length !seen)

(* Engine stats vs trace aggregate under the non-default strategy too:
   the equality is by construction, not an accident of Fifo. *)
let test_best_first_trace_consistent () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let ring = Trace.ring ~capacity:10_000 in
  let run =
    Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~strategy:Frontier.Best_first
      ~trace:ring ~net ~prop ()
  in
  Alcotest.(check bool) "proved" true (run.Bab.verdict = Bab.Proved);
  let agg = Trace.aggregate (Trace.ring_contents ring) in
  Alcotest.(check int) "calls" run.Bab.stats.Bab.analyzer_calls agg.Trace.analyzer_calls;
  Alcotest.(check int) "max frontier" run.Bab.stats.Bab.max_frontier agg.Trace.max_frontier;
  Alcotest.(check int) "max depth" run.Bab.stats.Bab.max_depth agg.Trace.max_depth

let suite =
  [
    ("golden: fifo matches seed loop", `Quick, test_golden_fifo_matches_seed);
    ("golden: call budgets match seed", `Quick, test_golden_call_budget);
    ("golden: initial-tree reuse matches seed", `Quick, test_golden_initial_tree_reuse);
    ("golden: input splitting matches seed", `Quick, test_golden_input_splitting);
    ("frontier fifo order", `Quick, test_frontier_fifo_order);
    ("frontier lifo order", `Quick, test_frontier_lifo_order);
    ("frontier best order", `Quick, test_frontier_best_order);
    ("frontier ties and nan", `Quick, test_frontier_best_ties_and_nan);
    ("frontier length", `Quick, test_frontier_length);
    ("strategy of string", `Quick, test_strategy_of_string);
    ("all strategies complete", `Quick, test_all_strategies_complete);
    ("step loop equals run", `Quick, test_step_loop_equals_run);
    ("cancel mid-run", `Quick, test_cancel_mid_run);
    ("stuck heuristic accounted", `Quick, test_stuck_heuristic_accounted);
    ("event json roundtrip", `Quick, test_event_json_roundtrip);
    ("jsonl file roundtrip + aggregate", `Quick, test_jsonl_file_roundtrip_and_aggregate);
    ("ring capacity", `Quick, test_ring_capacity);
    ("tee and hook", `Quick, test_tee_and_hook);
    ("best-first trace consistent", `Quick, test_best_first_trace_consistent);
  ]
