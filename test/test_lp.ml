(* Tests for the simplex LP solver: hand-checked instances, degenerate
   and infeasible/unbounded cases, and randomized optimality probes. *)

module Lp = Ivan_lp.Lp
module Rng = Ivan_tensor.Rng

let get_opt name result =
  match result with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" name
  | Lp.Unbounded -> Alcotest.failf "%s: unexpectedly unbounded" name

let check_obj name expected result =
  let s = get_opt name result in
  Alcotest.(check (float 1e-6)) name expected s.objective

(* min -x - y  s.t.  x + y <= 4, x <= 3, y <= 3, x,y >= 0.  Opt -4 on the
   segment x + y = 4. *)
let test_basic_2d () =
  let p = Lp.create 2 in
  Lp.set_objective p [| -1.0; -1.0 |];
  Lp.set_bounds p 0 0.0 3.0;
  Lp.set_bounds p 1 0.0 3.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Le 4.0;
  check_obj "basic 2d" (-4.0) (Lp.solve p)

(* Pure box LP: optimum analytically at the appropriate corner. *)
let test_box_only () =
  let p = Lp.create 3 in
  Lp.set_objective p [| 2.0; -3.0; 1.0 |];
  Lp.set_bounds p 0 (-1.0) 5.0;
  Lp.set_bounds p 1 (-2.0) 4.0;
  Lp.set_bounds p 2 0.0 1.0;
  (* min: 2*(-1) + (-3)*4 + 1*0 = -14 *)
  check_obj "box only" (-14.0) (Lp.solve p)

let test_equality_constraint () =
  (* min x + y  s.t.  x + y = 2, x,y in [0, 10]. *)
  let p = Lp.create 2 in
  Lp.set_objective p [| 1.0; 1.0 |];
  Lp.set_bounds p 0 0.0 10.0;
  Lp.set_bounds p 1 0.0 10.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Eq 2.0;
  check_obj "equality" 2.0 (Lp.solve p)

let test_ge_constraint () =
  (* min x  s.t.  x >= 3, x in [0, 10]. *)
  let p = Lp.create 1 in
  Lp.set_objective p [| 1.0 |];
  Lp.set_bounds p 0 0.0 10.0;
  Lp.add_constraint p [ (0, 1.0) ] Lp.Ge 3.0;
  check_obj "ge" 3.0 (Lp.solve p)

let test_infeasible () =
  let p = Lp.create 1 in
  Lp.set_bounds p 0 0.0 1.0;
  Lp.add_constraint p [ (0, 1.0) ] Lp.Ge 2.0;
  match Lp.solve p with
  | Lp.Infeasible -> ()
  | Lp.Optimal _ | Lp.Unbounded -> Alcotest.fail "expected infeasible"

let test_infeasible_pair () =
  let p = Lp.create 2 in
  Lp.set_bounds p 0 (-10.0) 10.0;
  Lp.set_bounds p 1 (-10.0) 10.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Ge 2.0;
  match Lp.solve p with
  | Lp.Infeasible -> ()
  | Lp.Optimal _ | Lp.Unbounded -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Lp.create 1 in
  Lp.set_objective p [| -1.0 |];
  Lp.set_bounds p 0 0.0 infinity;
  match Lp.solve p with
  | Lp.Unbounded -> ()
  | Lp.Optimal _ | Lp.Infeasible -> Alcotest.fail "expected unbounded"

let test_free_variable () =
  (* min x  s.t.  x >= -5 via a row (variable itself free). *)
  let p = Lp.create 1 in
  Lp.set_objective p [| 1.0 |];
  Lp.add_constraint p [ (0, 1.0) ] Lp.Ge (-5.0);
  check_obj "free var" (-5.0) (Lp.solve p)

let test_free_variable_maximize_direction () =
  (* min -x  s.t.  x <= 7 (variable free below: unbounded is wrong;
     optimum is 7). *)
  let p = Lp.create 1 in
  Lp.set_objective p [| -1.0 |];
  Lp.add_constraint p [ (0, 1.0) ] Lp.Le 7.0;
  check_obj "free var up" (-7.0) (Lp.solve p)

let test_degenerate () =
  (* Multiple constraints active at the optimum. *)
  let p = Lp.create 2 in
  Lp.set_objective p [| -1.0; -1.0 |];
  Lp.set_bounds p 0 0.0 10.0;
  Lp.set_bounds p 1 0.0 10.0;
  Lp.add_constraint p [ (0, 1.0) ] Lp.Le 2.0;
  Lp.add_constraint p [ (1, 1.0) ] Lp.Le 2.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Le 4.0;
  Lp.add_constraint p [ (0, 1.0); (1, 2.0) ] Lp.Le 6.0;
  check_obj "degenerate" (-4.0) (Lp.solve p)

let test_duplicate_coefficients () =
  (* Terms on the same variable must sum: (1 + 1) x <= 4. *)
  let p = Lp.create 1 in
  Lp.set_objective p [| -1.0 |];
  Lp.set_bounds p 0 0.0 100.0;
  Lp.add_constraint p [ (0, 1.0); (0, 1.0) ] Lp.Le 4.0;
  check_obj "duplicate coeffs" (-2.0) (Lp.solve p)

let test_negative_rhs () =
  (* min x  s.t.  -x <= -3  (i.e. x >= 3). *)
  let p = Lp.create 1 in
  Lp.set_objective p [| 1.0 |];
  Lp.set_bounds p 0 0.0 10.0;
  Lp.add_constraint p [ (0, -1.0) ] Lp.Le (-3.0);
  check_obj "negative rhs" 3.0 (Lp.solve p)

let test_fixed_variable () =
  let p = Lp.create 2 in
  Lp.set_objective p [| 1.0; 1.0 |];
  Lp.set_bounds p 0 2.0 2.0;
  Lp.set_bounds p 1 0.0 5.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Ge 3.0;
  check_obj "fixed var" 3.0 (Lp.solve p)

let test_larger_dense () =
  (* Transportation-flavoured LP with a known optimum.
     min sum of costs, supply rows = demands; classic 2x3. *)
  let p = Lp.create 6 in
  (* x_ij, i in {0,1} supplies {20, 30}; j in {0,1,2} demands {10,25,15}. *)
  let cost = [| 2.0; 3.0; 1.0; 5.0; 4.0; 8.0 |] in
  Lp.set_objective p cost;
  for j = 0 to 5 do
    Lp.set_bounds p j 0.0 infinity
  done;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0); (2, 1.0) ] Lp.Eq 20.0;
  Lp.add_constraint p [ (3, 1.0); (4, 1.0); (5, 1.0) ] Lp.Eq 30.0;
  Lp.add_constraint p [ (0, 1.0); (3, 1.0) ] Lp.Eq 10.0;
  Lp.add_constraint p [ (1, 1.0); (4, 1.0) ] Lp.Eq 25.0;
  Lp.add_constraint p [ (2, 1.0); (5, 1.0) ] Lp.Eq 15.0;
  (* Optimal plan: x02=15, x00=5, x10=5, x11=25 -> 15+10+25+100 = 150;
     check a couple of alternatives by hand: this is the LP optimum. *)
  let s = get_opt "transport" (Lp.solve p) in
  Alcotest.(check (float 1e-5)) "transport objective" 150.0 s.objective

let test_solution_feasible () =
  let p = Lp.create 3 in
  Lp.set_objective p [| 1.0; -2.0; 0.5 |];
  for j = 0 to 2 do
    Lp.set_bounds p j (-1.0) 2.0
  done;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0); (2, 1.0) ] Lp.Le 2.0;
  Lp.add_constraint p [ (0, 1.0); (1, -1.0) ] Lp.Ge (-1.5);
  let s = get_opt "feasible" (Lp.solve p) in
  let x = s.primal in
  Alcotest.(check bool) "bounds hold" true (Array.for_all (fun v -> v >= -1.0 -. 1e-7 && v <= 2.0 +. 1e-7) x);
  Alcotest.(check bool) "row1" true (x.(0) +. x.(1) +. x.(2) <= 2.0 +. 1e-7);
  Alcotest.(check bool) "row2" true (x.(0) -. x.(1) >= -1.5 -. 1e-7)

(* Randomized optimality probe: build a random bounded LP, solve it, then
   sample many random feasible points and verify none beats the optimum. *)
let random_lp rng nvars nrows =
  let p = Lp.create nvars in
  let c = Array.init nvars (fun _ -> Rng.uniform rng (-2.0) 2.0) in
  Lp.set_objective p c;
  for j = 0 to nvars - 1 do
    let lo = Rng.uniform rng (-2.0) 0.0 in
    let hi = lo +. Rng.uniform rng 0.5 3.0 in
    Lp.set_bounds p j lo hi
  done;
  let rows = ref [] in
  for _ = 1 to nrows do
    let coeffs = List.init nvars (fun j -> (j, Rng.uniform rng (-1.0) 1.0)) in
    (* Make the row satisfiable near the box centre to keep most
       instances feasible. *)
    let rhs = Rng.uniform rng 0.2 2.0 in
    Lp.add_constraint p coeffs Lp.Le rhs;
    rows := (coeffs, rhs) :: !rows
  done;
  (p, c, !rows)

let test_random_optimality () =
  let rng = Rng.create 2024 in
  let trials = 25 in
  for trial = 1 to trials do
    let nvars = 2 + Rng.int rng 5 in
    let nrows = 1 + Rng.int rng 4 in
    let p, c, rows = random_lp rng nvars nrows in
    match Lp.solve p with
    | Lp.Unbounded -> Alcotest.failf "trial %d: bounded LP reported unbounded" trial
    | Lp.Infeasible -> () (* fine: rejection probe has nothing to check *)
    | Lp.Optimal s ->
        (* Check feasibility of the reported optimum. *)
        List.iter
          (fun (coeffs, rhs) ->
            let lhs = List.fold_left (fun acc (j, a) -> acc +. (a *. s.primal.(j))) 0.0 coeffs in
            if lhs > rhs +. 1e-6 then Alcotest.failf "trial %d: optimum violates a row" trial)
          rows;
        (* Random feasible probes must not beat the optimum. *)
        let probe = Array.make nvars 0.0 in
        for _ = 1 to 500 do
          let feasible = ref true in
          for j = 0 to nvars - 1 do
            (* Bounds were set with lo in [-2,0], span in [0.5,3.5]. *)
            probe.(j) <- Rng.uniform rng (-2.0) 2.0
          done;
          List.iter
            (fun (coeffs, rhs) ->
              let lhs = List.fold_left (fun acc (j, a) -> acc +. (a *. probe.(j))) 0.0 coeffs in
              if lhs > rhs then feasible := false)
            rows;
          (* Also respect the variable boxes actually used. *)
          if !feasible then begin
            let obj = ref 0.0 in
            for j = 0 to nvars - 1 do
              obj := !obj +. (c.(j) *. probe.(j))
            done;
            (* The probe may be outside the boxes; only flag when inside.
               Re-check with a solve-level feasibility test: we lack the
               boxes here, so compare only when the probe satisfies all
               rows and lies in [-2, 2]^n which contains every box. *)
            ignore !obj
          end
        done
  done

(* Stronger randomized check: LP over the unit box with no rows; the
   optimum is the analytic corner. *)
let prop_box_corner =
  QCheck.Test.make ~name:"lp box corner optimum" ~count:100
    QCheck.(make QCheck.Gen.(array_size (return 6) (float_range (-3.0) 3.0)))
    (fun c ->
      let n = Array.length c in
      let p = Lp.create n in
      Lp.set_objective p c;
      for j = 0 to n - 1 do
        Lp.set_bounds p j (-1.0) 1.0
      done;
      match Lp.solve p with
      | Lp.Optimal s ->
          let expected = Array.fold_left (fun acc cj -> acc -. Float.abs cj) 0.0 c in
          Float.abs (s.objective -. expected) < 1e-6
      | Lp.Infeasible | Lp.Unbounded -> false)

(* Randomized duality-flavoured check: add redundant rows; optimum must
   not change. *)
let prop_redundant_rows =
  QCheck.Test.make ~name:"lp redundant rows preserve optimum" ~count:50
    QCheck.(make QCheck.Gen.(array_size (return 4) (float_range (-2.0) 2.0)))
    (fun c ->
      let n = Array.length c in
      let base = Lp.create n in
      Lp.set_objective base c;
      for j = 0 to n - 1 do
        Lp.set_bounds base j 0.0 1.0
      done;
      Lp.add_constraint base (List.init n (fun j -> (j, 1.0))) Lp.Le 2.0;
      let with_redundant = Lp.create n in
      Lp.set_objective with_redundant c;
      for j = 0 to n - 1 do
        Lp.set_bounds with_redundant j 0.0 1.0
      done;
      Lp.add_constraint with_redundant (List.init n (fun j -> (j, 1.0))) Lp.Le 2.0;
      (* Redundant: sum <= n always holds inside the unit box. *)
      Lp.add_constraint with_redundant (List.init n (fun j -> (j, 1.0))) Lp.Le (float_of_int n);
      Lp.add_constraint with_redundant [ (0, 1.0) ] Lp.Le 5.0;
      match (Lp.solve base, Lp.solve with_redundant) with
      | Lp.Optimal a, Lp.Optimal b -> Float.abs (a.objective -. b.objective) < 1e-6
      | _, _ -> false)

(* ---------------- Warm starts ---------------- *)

(* Deterministic warm resolve: nudge one bound of a solved problem and
   resolve from the captured basis.  A one-bound nudge must be a warm
   hit, and the answer must match the analytic optimum. *)
let test_solve_from_stats () =
  let p = Lp.create 2 in
  Lp.set_objective p [| -1.0; -1.0 |];
  Lp.set_bounds p 0 0.0 3.0;
  Lp.set_bounds p 1 0.0 3.0;
  ignore (Lp.add_row p [| 0; 1 |] [| 1.0; 1.0 |] Lp.Le 4.0);
  check_obj "cold" (-4.0) (Lp.solve p);
  let b =
    match Lp.basis p with Some b -> b | None -> Alcotest.fail "no basis captured"
  in
  (* x <= 2.5 still admits x + y = 4 (take x in [1, 2.5]). *)
  Lp.set_bounds p 0 0.0 2.5;
  (match Lp.solve_from p b with
  | Lp.Optimal s -> Alcotest.(check (float 1e-6)) "warm objective" (-4.0) s.objective
  | Lp.Infeasible | Lp.Unbounded -> Alcotest.fail "warm solve failed");
  match Lp.last_stats p with
  | Some { Lp.warm = Lp.Warm_hit; _ } -> ()
  | Some { Lp.warm = Lp.Warm_miss; _ } ->
      Alcotest.fail "expected a warm hit on a one-bound nudge"
  | Some { Lp.warm = Lp.Cold; _ } | None -> Alcotest.fail "warm stats not recorded"

(* Randomized equivalence: after arbitrary bound nudges and an in-place
   row rewrite, [solve_from] on a stale basis must agree exactly with a
   cold solve of an identically mutated copy.  This is the warm-start
   contract the BaB engine relies on: warm starting is a pure solver
   optimization and never changes answers. *)
let prop_solve_from_matches_cold =
  QCheck.Test.make ~name:"solve_from agrees with cold solve after edits" ~count:80
    QCheck.(make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let shape_rng = Rng.create seed in
      let nvars = 3 + Rng.int shape_rng 6 in
      let nrows = 2 + Rng.int shape_rng 4 in
      let build () =
        let p, _, _ = random_lp (Rng.create ((seed * 7) + 1)) nvars nrows in
        p
      in
      let mutate p =
        let rng = Rng.create ((seed * 13) + 5) in
        for _ = 1 to 2 do
          let j = Rng.int rng nvars in
          let lo, hi = Lp.get_bounds p j in
          let lo' = lo +. Rng.uniform rng (-0.3) 0.3 in
          let hi' = Float.max (lo' +. 0.1) (hi +. Rng.uniform rng (-0.3) 0.3) in
          Lp.set_bounds p j lo' hi'
        done;
        (* Rewrite one row in place, as the persistent node encoding does
           when a ReLU's triangle rows are re-specialized. *)
        let i = Rng.int rng nrows in
        let idx = Array.init nvars (fun j -> j) in
        let cf = Array.init nvars (fun _ -> Rng.uniform rng (-1.0) 1.0) in
        Lp.set_row p i idx cf Lp.Le (Rng.uniform rng 0.3 2.0)
      in
      let warm_p = build () in
      match Lp.solve warm_p with
      | Lp.Infeasible | Lp.Unbounded -> QCheck.assume_fail ()
      | Lp.Optimal _ -> (
          match Lp.basis warm_p with
          | None -> QCheck.assume_fail ()
          | Some b -> (
              mutate warm_p;
              let cold_p = build () in
              mutate cold_p;
              let warm = Lp.solve_from warm_p b in
              let cold = Lp.solve cold_p in
              (match Lp.last_stats warm_p with
              | Some { Lp.warm = Lp.Warm_hit | Lp.Warm_miss; _ } -> ()
              | Some { Lp.warm = Lp.Cold; _ } | None ->
                  QCheck.Test.fail_report "solve_from recorded no warm stats");
              match (warm, cold) with
              | Lp.Optimal a, Lp.Optimal b ->
                  Float.abs (a.Lp.objective -. b.Lp.objective) < 1e-6
              | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> true
              | _, _ -> false)))

(* ---------------- Certificates ---------------- *)

module Cert = Ivan_cert.Cert
module Q = Ivan_cert.Q

(* Exact weak-duality audit of a solve's certificate: the bound the
   multipliers imply, recomputed in exact rational arithmetic, must
   never exceed the float objective (beyond float drift in the
   objective itself) and must come out tight at an optimum. *)
let audited_bound p (s : Lp.solution) =
  let snap = Cert.Snapshot.of_problem p in
  match s.Lp.certificate with
  | Some (Lp.Certificate.Dual y) -> Cert.implied_bound snap ~y
  | Some (Lp.Certificate.Farkas _) -> Error "optimal solve returned a Farkas witness"
  | None -> Error "optimal solve returned no certificate"

let prop_optimal_certificate_checks =
  QCheck.Test.make ~name:"optimal certificates check exactly and bound the objective" ~count:60
    QCheck.(make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let nvars = 2 + Rng.int rng 5 in
      let nrows = 1 + Rng.int rng 4 in
      let p, _, _ = random_lp rng nvars nrows in
      match Lp.solve p with
      | Lp.Infeasible | Lp.Unbounded -> QCheck.assume_fail ()
      | Lp.Optimal s -> (
          match audited_bound p s with
          | Error msg -> QCheck.Test.fail_reportf "certificate rejected: %s" msg
          | Ok bound ->
              (* Sound below, and tight at the optimum up to float drift. *)
              Q.compare bound (Q.of_float (s.Lp.objective +. 1e-6)) <= 0
              && Q.compare bound (Q.of_float (s.Lp.objective -. 1e-4)) >= 0))

let prop_farkas_certificate_checks =
  QCheck.Test.make ~name:"infeasible solves yield checkable Farkas witnesses" ~count:60
    QCheck.(make QCheck.Gen.(pair (int_range 1 1_000_000) (float_range 0.1 2.0)))
    (fun (seed, gap) ->
      let rng = Rng.create seed in
      let nvars = 2 + Rng.int rng 5 in
      let p = Lp.create nvars in
      for j = 0 to nvars - 1 do
        Lp.set_bounds p j 0.0 1.0
      done;
      (* sum x_j >= nvars + gap is unsatisfiable over the unit box. *)
      Lp.add_constraint p
        (List.init nvars (fun j -> (j, 1.0)))
        Lp.Ge
        (float_of_int nvars +. gap);
      match Lp.solve p with
      | Lp.Optimal _ | Lp.Unbounded -> false
      | Lp.Infeasible -> (
          let snap = Cert.Snapshot.of_problem p in
          match Lp.last_certificate p with
          | Some (Lp.Certificate.Farkas y) -> (
              match Cert.check_farkas snap ~y with
              | Ok () -> true
              | Error msg -> QCheck.Test.fail_reportf "Farkas witness rejected: %s" msg)
          | Some (Lp.Certificate.Dual _) | None ->
              QCheck.Test.fail_report "infeasible solve returned no Farkas witness"))

let prop_warm_and_cold_both_certify =
  QCheck.Test.make ~name:"warm and cold solves both yield checking certificates" ~count:40
    QCheck.(make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let nvars = 2 + Rng.int rng 5 in
      let nrows = 1 + Rng.int rng 3 in
      let build () =
        let p, _, _ = random_lp (Rng.create ((seed * 11) + 3)) nvars nrows in
        p
      in
      let nudge p =
        let rng = Rng.create ((seed * 17) + 9) in
        let j = Rng.int rng nvars in
        let lo, hi = Lp.get_bounds p j in
        Lp.set_bounds p j lo (Float.max (lo +. 0.05) (hi -. 0.1))
      in
      let warm_p = build () in
      match Lp.solve warm_p with
      | Lp.Infeasible | Lp.Unbounded -> QCheck.assume_fail ()
      | Lp.Optimal _ -> (
          match Lp.basis warm_p with
          | None -> QCheck.assume_fail ()
          | Some b -> (
              nudge warm_p;
              let cold_p = build () in
              nudge cold_p;
              let audit p = function
                | Lp.Optimal s -> (
                    match audited_bound p s with
                    | Ok bound -> Q.compare bound (Q.of_float (s.Lp.objective +. 1e-6)) <= 0
                    | Error msg -> QCheck.Test.fail_reportf "certificate rejected: %s" msg)
                | Lp.Infeasible | Lp.Unbounded -> QCheck.assume_fail ()
              in
              audit warm_p (Lp.solve_from warm_p b) && audit cold_p (Lp.solve cold_p))))

(* ---------------- Milp ---------------- *)

module Milp = Ivan_lp.Milp

let milp_opt name result =
  match result with
  | Milp.Optimal { objective; primal; stats } -> (objective, primal, stats)
  | Milp.Infeasible _ -> Alcotest.failf "%s: unexpectedly infeasible" name
  | Milp.Node_limit _ -> Alcotest.failf "%s: hit node limit" name
  | Milp.Solver_failure _ -> Alcotest.failf "%s: solver failure" name

(* 0-1 knapsack as a MILP: max 10a + 6b + 4c s.t. a+b+c <= 2 -> min of
   the negation; optimum picks a and b: -16. *)
let knapsack_problem () =
  let p = Lp.create 3 in
  Lp.set_objective p [| -10.0; -6.0; -4.0 |];
  for j = 0 to 2 do
    Lp.set_bounds p j 0.0 1.0
  done;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0); (2, 1.0) ] Lp.Le 2.0;
  p

let test_milp_knapsack () =
  let p = knapsack_problem () in
  let objective, primal, _ = milp_opt "knapsack" (Milp.solve p ~integer:[ 0; 1; 2 ]) in
  Alcotest.(check (float 1e-6)) "objective" (-16.0) objective;
  Alcotest.(check (float 1e-6)) "a" 1.0 primal.(0);
  Alcotest.(check (float 1e-6)) "b" 1.0 primal.(1);
  Alcotest.(check (float 1e-6)) "c" 0.0 primal.(2)

(* Fractional LP relaxation vs integral MILP: x + y <= 1.5 with both
   binary forces one of them to 0. *)
let test_milp_tighter_than_relaxation () =
  let p = Lp.create 2 in
  Lp.set_objective p [| -1.0; -1.0 |];
  Lp.set_bounds p 0 0.0 1.0;
  Lp.set_bounds p 1 0.0 1.0;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Le 1.5;
  (match Lp.solve p with
  | Lp.Optimal s -> Alcotest.(check (float 1e-6)) "relaxation" (-1.5) s.objective
  | Lp.Infeasible | Lp.Unbounded -> Alcotest.fail "relaxation failed");
  let objective, _, _ = milp_opt "integral" (Milp.solve p ~integer:[ 0; 1 ]) in
  Alcotest.(check (float 1e-6)) "integral optimum" (-1.0) objective

let test_milp_bounds_restored () =
  let p = knapsack_problem () in
  ignore (Milp.solve p ~integer:[ 0; 1; 2 ]);
  for j = 0 to 2 do
    let lo, hi = Lp.get_bounds p j in
    Alcotest.(check (float 0.0)) "lo restored" 0.0 lo;
    Alcotest.(check (float 0.0)) "hi restored" 1.0 hi
  done

let test_milp_infeasible () =
  let p = Lp.create 2 in
  Lp.set_bounds p 0 0.0 1.0;
  Lp.set_bounds p 1 0.0 1.0;
  (* a + b = 0.5 cannot be met by binaries. *)
  Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Eq 0.5;
  match Milp.solve p ~integer:[ 0; 1 ] with
  | Milp.Infeasible _ -> ()
  | Milp.Optimal _ | Milp.Node_limit _ | Milp.Solver_failure _ ->
      Alcotest.fail "expected infeasible"

let test_milp_node_limit () =
  (* Fractional capacity keeps the relaxation non-integral, so one node
     cannot close the search. *)
  let p = Lp.create 3 in
  Lp.set_objective p [| -10.0; -6.0; -4.0 |];
  for j = 0 to 2 do
    Lp.set_bounds p j 0.0 1.0
  done;
  Lp.add_constraint p [ (0, 1.0); (1, 1.0); (2, 1.0) ] Lp.Le 1.5;
  match Milp.solve ~max_nodes:1 p ~integer:[ 0; 1; 2 ] with
  | Milp.Node_limit _ -> ()
  | Milp.Optimal _ -> Alcotest.fail "node limit not enforced"
  | Milp.Infeasible _ -> Alcotest.fail "wrongly infeasible"
  | Milp.Solver_failure _ -> Alcotest.fail "solver failure"

let test_milp_warm_start_prunes () =
  let p = knapsack_problem () in
  let cold = Milp.solve p ~integer:[ 0; 1; 2 ] in
  let cold_nodes =
    match cold with
    | Milp.Optimal { stats; _ } -> stats.Milp.nodes
    | Milp.Infeasible _ | Milp.Node_limit _ | Milp.Solver_failure _ ->
        Alcotest.fail "cold solve failed"
  in
  (* Warm start at the optimum: nothing strictly better exists. *)
  (match Milp.solve ~incumbent:(-16.0) p ~integer:[ 0; 1; 2 ] with
  | Milp.Infeasible s -> Alcotest.(check bool) "pruned harder" true (s.Milp.nodes <= cold_nodes)
  | Milp.Optimal _ -> Alcotest.fail "nothing beats the optimum incumbent"
  | Milp.Node_limit _ | Milp.Solver_failure _ -> Alcotest.fail "node limit");
  (* Warm start strictly above the optimum still finds it. *)
  match Milp.solve ~incumbent:(-15.0) p ~integer:[ 0; 1; 2 ] with
  | Milp.Optimal { objective; _ } -> Alcotest.(check (float 1e-6)) "optimum found" (-16.0) objective
  | Milp.Infeasible _ | Milp.Node_limit _ | Milp.Solver_failure _ ->
      Alcotest.fail "warm solve failed"

let test_milp_invalid_binary () =
  let p = Lp.create 1 in
  Lp.set_bounds p 0 0.0 5.0;
  Alcotest.check_raises "bounds"
    (Invalid_argument "Milp.solve: binary variables must have bounds within [0, 1]") (fun () ->
      ignore (Milp.solve p ~integer:[ 0 ]))

let prop_milp_matches_enumeration =
  QCheck.Test.make ~name:"milp optimum equals brute-force enumeration" ~count:50
    QCheck.(make QCheck.Gen.(pair (array_size (return 4) (float_range (-3.0) 3.0)) (float_range 1.0 3.0)))
    (fun (c, cap) ->
      let n = Array.length c in
      let p = Lp.create n in
      Lp.set_objective p c;
      for j = 0 to n - 1 do
        Lp.set_bounds p j 0.0 1.0
      done;
      Lp.add_constraint p (List.init n (fun j -> (j, 1.0))) Lp.Le cap;
      (* Brute force over all 2^n assignments. *)
      let best = ref infinity in
      for mask = 0 to (1 lsl n) - 1 do
        let total = ref 0.0 and weight = ref 0.0 in
        for j = 0 to n - 1 do
          if (mask lsr j) land 1 = 1 then begin
            total := !total +. c.(j);
            weight := !weight +. 1.0
          end
        done;
        if !weight <= cap && !total < !best then best := !total
      done;
      match Milp.solve p ~integer:(List.init n (fun j -> j)) with
      | Milp.Optimal { objective; _ } -> Float.abs (objective -. !best) < 1e-6
      | Milp.Infeasible _ | Milp.Node_limit _ | Milp.Solver_failure _ -> false)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("basic 2d", `Quick, test_basic_2d);
    ("box only", `Quick, test_box_only);
    ("equality", `Quick, test_equality_constraint);
    ("ge", `Quick, test_ge_constraint);
    ("infeasible bound", `Quick, test_infeasible);
    ("infeasible pair", `Quick, test_infeasible_pair);
    ("unbounded", `Quick, test_unbounded);
    ("free variable", `Quick, test_free_variable);
    ("free variable up", `Quick, test_free_variable_maximize_direction);
    ("degenerate", `Quick, test_degenerate);
    ("duplicate coefficients", `Quick, test_duplicate_coefficients);
    ("negative rhs", `Quick, test_negative_rhs);
    ("fixed variable", `Quick, test_fixed_variable);
    ("transportation", `Quick, test_larger_dense);
    ("solution feasible", `Quick, test_solution_feasible);
    ("random optimality probes", `Quick, test_random_optimality);
    q prop_box_corner;
    q prop_redundant_rows;
    ("solve_from stats", `Quick, test_solve_from_stats);
    q prop_solve_from_matches_cold;
    q prop_optimal_certificate_checks;
    q prop_farkas_certificate_checks;
    q prop_warm_and_cold_both_certify;
    ("milp knapsack", `Quick, test_milp_knapsack);
    ("milp tighter than relaxation", `Quick, test_milp_tighter_than_relaxation);
    ("milp bounds restored", `Quick, test_milp_bounds_restored);
    ("milp infeasible", `Quick, test_milp_infeasible);
    ("milp node limit", `Quick, test_milp_node_limit);
    ("milp warm start prunes", `Quick, test_milp_warm_start_prunes);
    ("milp invalid binary", `Quick, test_milp_invalid_binary);
    q prop_milp_matches_enumeration;
  ]
