(* Chaos matrix: kill/resume sweeps over journaled verification runs.

   For every workload the harness runs one uninterrupted golden run,
   then simulates kills after every journal append, torn writes at
   every byte offset of the final frame, a corrupted byte in every
   frame, and a double-kill chain — resuming each time from the
   surviving journal bytes and asserting the resumed run reproduces the
   golden verdict and stats exactly, with at most one node of rework.

   Run via the alias:  dune build @chaos-matrix *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Frontier = Ivan_bab.Frontier
module Engine = Ivan_bab.Engine
module Chaos = Ivan_supervise.Chaos

(* The paper's running example (Fig. 2), self-contained: this
   executable builds in its own directory and cannot see test/
   fixtures. *)
let net =
  let dense ?(activation = Layer.Relu) weights bias =
    Layer.make (Layer.Dense { weights = Mat.of_arrays weights; bias }) activation
  in
  Network.make
    [
      dense [| [| 2.0; -1.0 |]; [| 1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense [| [| 1.0; -2.0 |]; [| -1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense ~activation:Layer.Identity [| [| 1.0; -1.0 |] |] [| 0.0 |];
    ]

(* psi = (o1 + k >= 0) over [0,1]^2; the exact minimum of o1 is -1.5,
   so k = 1.3 is violated and k = 1.7 holds. *)
let prop offset =
  let input = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  Prop.make
    ~name:(Printf.sprintf "paper+%g" offset)
    ~input ~c:(Vec.of_list [ 1.0 ]) ~offset

(* Warm starts stay off in chaos workloads: parked simplex bases are a
   performance cache that is deliberately not journaled, so a resumed
   run solves colder — with [~warm:false] every LP stat is
   deterministic and must replay exactly. *)
let workloads =
  [
    Chaos.workload ~name:"lp/proved" ~net ~prop:(prop 1.7)
      ~analyzer:(fun () -> Analyzer.lp_triangle ~warm:false ())
      ~heuristic:Heuristic.zono_coeff ();
    Chaos.workload ~name:"lp/disproved" ~net ~prop:(prop 1.3)
      ~analyzer:(fun () -> Analyzer.lp_triangle ~warm:false ())
      ~heuristic:Heuristic.zono_coeff ();
    Chaos.workload ~name:"lp/exhausted" ~net ~prop:(prop 1.7)
      ~analyzer:(fun () -> Analyzer.lp_triangle ~warm:false ())
      ~heuristic:Heuristic.zono_coeff
      ~budget:{ Engine.max_analyzer_calls = 3; max_seconds = infinity }
      ();
    Chaos.workload ~name:"lp/certified" ~net ~prop:(prop 1.7)
      ~analyzer:(fun () -> Analyzer.lp_triangle ~warm:false ~certify:true ())
      ~heuristic:Heuristic.zono_coeff ~certify:true ();
    Chaos.workload ~name:"zono/proved-bestfirst" ~net ~prop:(prop 1.7)
      ~analyzer:(fun () -> Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~strategy:Frontier.Best_first ();
    Chaos.workload ~name:"zono/disproved-lifo" ~net ~prop:(prop 1.3)
      ~analyzer:(fun () -> Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~strategy:Frontier.Lifo ();
    (* journal_every = 1 checkpoints after every step — the densest
       cadence, so every kill lands at most one Step frame from a
       Checkpoint. *)
    Chaos.workload ~name:"lp/ckpt-every-step" ~net ~prop:(prop 1.7)
      ~analyzer:(fun () -> Analyzer.lp_triangle ~warm:false ())
      ~heuristic:Heuristic.zono_coeff ~journal_every:1 ();
    (* A sparse cadence exercises long replays. *)
    Chaos.workload ~name:"zono/ckpt-sparse" ~net ~prop:(prop 1.7)
      ~analyzer:(fun () -> Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~journal_every:64 ();
  ]

let () =
  let report = Chaos.run_matrix workloads in
  Format.printf "%a@." Chaos.pp_report report;
  if report.Chaos.failures <> [] then begin
    Format.printf "chaos matrix FAILED@.";
    exit 1
  end;
  if report.Chaos.schedules = 0 then begin
    Format.printf "chaos matrix ran no schedules@.";
    exit 1
  end
