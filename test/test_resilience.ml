(* Tests for the fault-tolerance layer: LP input validation and
   numerical guards, MILP failure surfacing, deterministic fault
   injection, the retry/fallback analyzer combinator, engine-level fault
   absorption, seeded fault campaigns, and checkpoint/resume. *)

module Vec = Ivan_tensor.Vec
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Splits = Ivan_domains.Splits
module Lp = Ivan_lp.Lp
module Milp = Ivan_lp.Milp
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Engine = Ivan_bab.Engine
module Frontier = Ivan_bab.Frontier
module Trace = Ivan_bab.Trace
module Tree = Ivan_spectree.Tree
module Fault = Ivan_resilience.Fault
module Ivan = Ivan_core.Ivan
module Diffverify = Ivan_core.Diffverify

let lp = Analyzer.lp_triangle ()

(* ------------------------------------------------------------------ *)
(* Satellite: NaN/inf guards in the simplex *)

let test_lp_rejects_nan_input () =
  let p = Lp.create 2 in
  Lp.set_objective p [| 1.0; 1.0 |];
  Lp.set_bounds p 0 nan 1.0;
  Lp.set_bounds p 1 0.0 1.0;
  (match Lp.solve p with
  | exception Lp.Numerical_failure _ -> ()
  | exception Lp.Iteration_limit -> Alcotest.fail "NaN bound misreported as iteration limit"
  | _ -> Alcotest.fail "NaN bound accepted");
  let q = Lp.create 1 in
  Lp.set_objective q [| nan |];
  (match Lp.solve q with
  | exception Lp.Numerical_failure _ -> ()
  | _ -> Alcotest.fail "NaN objective accepted");
  let r = Lp.create 1 in
  Lp.set_objective r [| 1.0 |];
  Lp.set_bounds r 0 0.0 2.0;
  Lp.add_constraint r [ (0, infinity) ] Lp.Le 1.0;
  match Lp.solve r with
  | exception Lp.Numerical_failure _ -> ()
  | _ -> Alcotest.fail "infinite coefficient accepted"

(* Unbounded variable ranges are legal input; only NaN and non-finite
   matrix/objective entries are malformed. *)
let test_lp_accepts_infinite_bounds () =
  let p = Lp.create 2 in
  Lp.set_objective p [| 1.0; 1.0 |];
  Lp.set_bounds p 0 neg_infinity infinity;
  Lp.set_bounds p 1 neg_infinity infinity;
  Lp.add_constraint p [ (0, 1.0) ] Lp.Ge 2.0;
  Lp.add_constraint p [ (1, 1.0) ] Lp.Ge 3.0;
  match Lp.solve p with
  | Lp.Optimal { objective; _ } -> Alcotest.(check (float 1e-9)) "objective" 5.0 objective
  | _ -> Alcotest.fail "free-variable LP should be optimal"

let test_lp_solve_hook_fires () =
  let p = Lp.create 1 in
  Lp.set_objective p [| 1.0 |];
  Lp.set_bounds p 0 0.0 1.0;
  let hits = ref 0 in
  Lp.set_solve_hook (Some (fun _ -> incr hits));
  Fun.protect
    ~finally:(fun () -> Lp.set_solve_hook None)
    (fun () ->
      ignore (Lp.solve p);
      ignore (Lp.solve p));
  Alcotest.(check int) "hook saw both solves" 2 !hits

(* Satellite: MILP surfaces inner-LP failures as a result constructor
   instead of an exception. *)
let test_milp_solver_failure () =
  let make () =
    let p = Lp.create 2 in
    Lp.set_objective p [| 1.0; 1.0 |];
    Lp.set_bounds p 0 0.0 1.0;
    Lp.set_bounds p 1 0.0 1.0;
    Lp.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp.Ge 1.0;
    p
  in
  (match Milp.solve (make ()) ~integer:[ 0; 1 ] with
  | Milp.Optimal { objective; _ } -> Alcotest.(check (float 1e-9)) "clean optimum" 1.0 objective
  | _ -> Alcotest.fail "clean MILP should be optimal");
  let plan = Fault.plan ~lp_rate:1.0 ~kinds:[ Fault.Lp_numerical ] ~seed:7 () in
  match Fault.with_lp_faults plan (fun () -> Milp.solve (make ()) ~integer:[ 0; 1 ]) with
  | Milp.Solver_failure stats ->
      Alcotest.(check bool) "at least one LP attempted" true (stats.Milp.lp_solves >= 1)
  | _ -> Alcotest.fail "injected LP failure should surface as Solver_failure"

(* ------------------------------------------------------------------ *)
(* Fault plans *)

let decisions plan site n = List.init n (fun _ -> Fault.decide plan site)

let test_plan_deterministic () =
  let make () = Fault.plan ~lp_rate:0.5 ~analyzer_rate:0.5 ~seed:42 () in
  let a = make () and b = make () in
  Alcotest.(check bool) "same seed, same LP schedule" true
    (decisions a Fault.Lp_solve 200 = decisions b Fault.Lp_solve 200);
  Alcotest.(check bool) "same seed, same analyzer schedule" true
    (decisions a Fault.Analyzer_run 200 = decisions b Fault.Analyzer_run 200);
  Alcotest.(check bool) "faults actually fired" true (Fault.injected a > 0);
  Alcotest.(check int) "calls counted" 200 (Fault.calls a Fault.Lp_solve);
  let c = Fault.plan ~lp_rate:0.5 ~analyzer_rate:0.5 ~seed:43 () in
  Alcotest.(check bool) "different seed, different schedule" false
    (decisions a Fault.Lp_solve 200 = decisions c Fault.Lp_solve 200)

let test_plan_rates () =
  let quiet = Fault.plan ~seed:1 () in
  Alcotest.(check bool) "zero rate never fires" true
    (List.for_all (( = ) None) (decisions quiet Fault.Lp_solve 100));
  let loud = Fault.plan ~lp_rate:1.0 ~seed:1 () in
  Alcotest.(check bool) "unit rate always fires" true
    (List.for_all (( <> ) None) (decisions loud Fault.Lp_solve 100));
  Alcotest.(check int) "injections counted" 100 (Fault.injected loud)

let test_plan_validation () =
  (match Fault.plan ~lp_rate:1.5 ~seed:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate > 1 accepted");
  (match Fault.plan ~analyzer_rate:nan ~seed:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN rate accepted");
  match Fault.plan ~kinds:[] ~seed:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty kind list accepted"

(* ------------------------------------------------------------------ *)
(* The retry / fallback combinator *)

let constant name outcome =
  { Analyzer.name; run = (fun _net ~prop:_ ~box:_ ~splits:_ -> outcome) }

let crashing name = { Analyzer.name; run = (fun _ ~prop:_ ~box:_ ~splits:_ -> raise (Fault.Injected "boom")) }

let run_on_paper a =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop () in
  a.Analyzer.run net ~prop ~box:prop.Prop.input ~splits:Splits.empty

let collect () =
  let events = ref [] in
  let notify e = events := e :: !events in
  let count p = List.length (List.filter p !events) in
  let retried = function Analyzer.Retried _ -> true | _ -> false in
  let fell_back = function Analyzer.Fell_back _ -> true | _ -> false in
  let absorbed = function Analyzer.Absorbed _ -> true | _ -> false in
  (notify, fun () -> (count retried, count fell_back, count absorbed))

let test_fallback_retry_recovers () =
  let verified = { Analyzer.status = Analyzer.Verified; lb = 0.5; bounds = None; zono = None; cert = None } in
  let attempts = ref 0 in
  let flaky =
    {
      Analyzer.name = "flaky";
      run =
        (fun _ ~prop:_ ~box:_ ~splits:_ ->
          incr attempts;
          if !attempts <= 2 then raise (Fault.Injected "transient") else verified);
    }
  in
  let notify, counts = collect () in
  let policy = { Analyzer.max_retries = 3; node_timeout = infinity; fallback = true } in
  let hardened = Analyzer.with_fallback ~notify ~policy flaky in
  Alcotest.(check string) "keeps the primary's name" "flaky" hardened.Analyzer.name;
  let o = run_on_paper hardened in
  Alcotest.(check bool) "recovered outcome" true (o.Analyzer.status = Analyzer.Verified);
  let retried, fell_back, absorbed = counts () in
  Alcotest.(check int) "two retries" 2 retried;
  Alcotest.(check int) "no fallback needed" 0 fell_back;
  Alcotest.(check int) "both failures reported" 2 absorbed

let test_fallback_degrades_to_chain () =
  let notify, counts = collect () in
  let hardened =
    Analyzer.with_fallback ~notify ~policy:Analyzer.default_policy (crashing "lp-triangle")
  in
  let o = run_on_paper hardened in
  (* The accepted outcome is the first chain analyzer's own answer. *)
  let reference = run_on_paper (Analyzer.deeppoly ()) in
  Alcotest.(check bool) "chain outcome adopted" true
    (o.Analyzer.status = reference.Analyzer.status && o.Analyzer.lb = reference.Analyzer.lb);
  let _, fell_back, _ = counts () in
  Alcotest.(check int) "exactly one fallback event" 1 fell_back

let test_fallback_off_degrades_unknown () =
  let notify, counts = collect () in
  let policy = { Analyzer.max_retries = 0; node_timeout = infinity; fallback = false } in
  let o = run_on_paper (Analyzer.with_fallback ~notify ~policy (crashing "lp-triangle")) in
  Alcotest.(check bool) "degraded to unknown" true
    (o.Analyzer.status = Analyzer.Unknown && o.Analyzer.lb = neg_infinity);
  let retried, fell_back, absorbed = counts () in
  Alcotest.(check int) "no retries allowed" 0 retried;
  Alcotest.(check int) "no fallback allowed" 0 fell_back;
  Alcotest.(check int) "failure still reported" 1 absorbed

(* Outcome sanitation: corrupt claims are rejected even though the
   analyzer returned normally. *)
let test_fallback_sanitizes_outcomes () =
  let policy = { Analyzer.max_retries = 0; node_timeout = infinity; fallback = false } in
  let degraded o =
    o.Analyzer.status = Analyzer.Unknown && o.Analyzer.lb = neg_infinity
  in
  (* NaN lower bound. *)
  let nan_lb = { Analyzer.status = Analyzer.Unknown; lb = nan; bounds = None; zono = None; cert = None } in
  Alcotest.(check bool) "NaN bound rejected" true
    (degraded (run_on_paper (Analyzer.with_fallback ~policy (constant "a" nan_lb))));
  (* Verified with a negative bound contradicts itself. *)
  let lying =
    { Analyzer.status = Analyzer.Verified; lb = -1.0; bounds = None; zono = None; cert = None }
  in
  Alcotest.(check bool) "inconsistent Verified rejected" true
    (degraded (run_on_paper (Analyzer.with_fallback ~policy (constant "b" lying))));
  (* A claimed counterexample that the network refutes concretely: the
     paper property holds everywhere, so any witness is bogus. *)
  let bogus_ce =
    {
      Analyzer.status = Analyzer.Counterexample (Vec.of_list [ 0.5; 0.5 ]);
      lb = -1.0;
      bounds = None;
      zono = None;
      cert = None;
    }
  in
  Alcotest.(check bool) "bogus counterexample rejected" true
    (degraded (run_on_paper (Analyzer.with_fallback ~policy (constant "c" bogus_ce))))

let test_fallback_node_timeout () =
  let notify, counts = collect () in
  let policy = { Analyzer.max_retries = 1000; node_timeout = 1e-6; fallback = true } in
  let slow_crash =
    {
      Analyzer.name = "slow";
      run =
        (fun _ ~prop:_ ~box:_ ~splits:_ ->
          Unix.sleepf 0.002;
          raise (Fault.Injected "boom"));
    }
  in
  let o = run_on_paper (Analyzer.with_fallback ~notify ~policy slow_crash) in
  Alcotest.(check bool) "timed-out node degrades" true (o.Analyzer.status = Analyzer.Unknown);
  let retried, _, _ = counts () in
  Alcotest.(check bool) "timeout cuts the retry budget short" true (retried < 1000)

let test_fallback_rejects_bad_policy () =
  (match
     Analyzer.with_fallback
       ~policy:{ Analyzer.max_retries = -1; node_timeout = infinity; fallback = true }
       lp
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative max_retries accepted");
  match
    Analyzer.with_fallback
      ~policy:{ Analyzer.max_retries = 0; node_timeout = 0.0; fallback = true }
      lp
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero node_timeout accepted"

(* Fatal conditions must pass straight through the combinator. *)
let test_fallback_fatal_passthrough () =
  let fatal = { Analyzer.name = "oom"; run = (fun _ ~prop:_ ~box:_ ~splits:_ -> raise Out_of_memory) } in
  match run_on_paper (Analyzer.with_fallback ~policy:Analyzer.default_policy fatal) with
  | exception Out_of_memory -> ()
  | _ -> Alcotest.fail "Out_of_memory swallowed by the resilience layer"

(* ------------------------------------------------------------------ *)
(* Engine-level degradation *)

let test_engine_absorbs_crashing_analyzer () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let ring = Trace.ring ~capacity:64 in
  let run =
    Bab.verify ~analyzer:(crashing "lp-triangle") ~heuristic:Heuristic.zono_coeff ~trace:ring ~net
      ~prop ()
  in
  Alcotest.(check bool) "crash becomes Exhausted, not an exception" true
    (run.Bab.verdict = Bab.Exhausted);
  Alcotest.(check bool) "absorption counted" true (run.Bab.stats.Bab.faults_absorbed >= 1);
  let absorbed =
    List.filter (function Trace.Absorbed _ -> true | _ -> false) (Trace.ring_contents ring)
  in
  Alcotest.(check bool) "Absorbed event emitted" true (absorbed <> []);
  Alcotest.(check bool) "tree still well-formed" true (Tree.well_formed run.Bab.tree)

(* A deterministic once-per-node flake: with one retry allowed the run
   must be indistinguishable from the fault-free one, except for the
   retry counters. *)
let test_engine_policy_retries_preserve_run () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let reference = Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let attempts = ref 0 in
  let flaky =
    {
      Analyzer.name = "lp-triangle";
      run =
        (fun n ~prop ~box ~splits ->
          incr attempts;
          if !attempts mod 2 = 1 then raise (Fault.Injected "first attempt always fails")
          else lp.Analyzer.run n ~prop ~box ~splits);
    }
  in
  let ring = Trace.ring ~capacity:4096 in
  let run =
    Bab.verify ~analyzer:flaky ~heuristic:Heuristic.zono_coeff ~trace:ring
      ~policy:Analyzer.default_policy ~net ~prop ()
  in
  Alcotest.(check bool) "verdict preserved" true (run.Bab.verdict = reference.Bab.verdict);
  Alcotest.(check string) "tree preserved" (Tree.to_string reference.Bab.tree)
    (Tree.to_string run.Bab.tree);
  Alcotest.(check int) "analyzer calls preserved" reference.Bab.stats.Bab.analyzer_calls
    run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "every node retried once" run.Bab.stats.Bab.analyzer_calls
    run.Bab.stats.Bab.retries;
  Alcotest.(check int) "no fallback bounds" 0 run.Bab.stats.Bab.fallback_bounds;
  let retried =
    List.filter (function Trace.Retried _ -> true | _ -> false) (Trace.ring_contents ring)
  in
  Alcotest.(check int) "Retried events match the counter" run.Bab.stats.Bab.retries
    (List.length retried)

(* ------------------------------------------------------------------ *)
(* Seeded fault campaign: across many schedules, a faulted run never
   crashes, never flips a decisive verdict, and any counterexample it
   reports is concretely genuine. *)

let campaign_stacks =
  [
    ("classifier", Analyzer.lp_triangle (), Heuristic.zono_coeff);
    ("acas", Analyzer.zonotope (), Heuristic.input_smear);
  ]

let test_fault_campaign () =
  let net = Fixtures.paper_net () in
  let budget = { Bab.max_analyzer_calls = 300; max_seconds = 20.0 } in
  let total_injected = ref 0 in
  List.iter
    (fun (stack, analyzer, heuristic) ->
      List.iter
        (fun offset ->
          let prop = Fixtures.paper_prop_with_offset offset in
          let reference = Bab.verify ~analyzer ~heuristic ~budget ~net ~prop () in
          for seed = 1 to 6 do
            let label = Printf.sprintf "%s offset %g seed %d" stack offset seed in
            let plan = Fault.plan ~lp_rate:0.15 ~analyzer_rate:0.15 ~seed () in
            let faulted =
              Fault.with_lp_faults plan (fun () ->
                  Bab.verify
                    ~analyzer:(Fault.wrap_analyzer plan analyzer)
                    ~heuristic ~budget ~policy:Analyzer.default_policy ~net ~prop ())
            in
            total_injected := !total_injected + Fault.injected plan;
            (match (reference.Bab.verdict, faulted.Bab.verdict) with
            | Bab.Proved, (Bab.Proved | Bab.Exhausted)
            | Bab.Disproved _, (Bab.Disproved _ | Bab.Exhausted)
            | Bab.Exhausted, _ ->
                ()
            | _ -> Alcotest.failf "%s: faulted run flipped the verdict" label);
            (match faulted.Bab.verdict with
            | Bab.Disproved x ->
                Alcotest.(check bool) (label ^ ": genuine CE") true
                  (Analyzer.check_concrete net ~prop x)
            | _ -> ());
            Alcotest.(check bool) (label ^ ": tree well-formed") true
              (Tree.well_formed faulted.Bab.tree)
          done)
        [ 1.3; 1.7 ])
    campaign_stacks;
  Alcotest.(check bool) "campaign exercised real faults" true (!total_injected > 0)

(* ------------------------------------------------------------------ *)
(* Satellite: explicit fault schedules — edge cases a seeded rate
   cannot pin to an exact call. *)

(* The very first LP solve fails.  lp_triangle absorbs solver failures
   below the resilience layer — it falls back on its sound cheap bound —
   so the retry machinery must stay untouched and the verdict must
   survive on a (possibly) weaker root bound. *)
let test_fault_at_first_lp_solve () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let reference =
    Bab.verify ~analyzer:(Analyzer.lp_triangle ()) ~heuristic:Heuristic.zono_coeff ~net ~prop ()
  in
  let plan = Fault.plan ~at:[ (Fault.Lp_solve, 0, Fault.Lp_numerical) ] ~seed:0 () in
  let run =
    Fault.with_lp_faults plan (fun () ->
        Bab.verify
          ~analyzer:(Analyzer.lp_triangle ())
          ~heuristic:Heuristic.zono_coeff ~policy:Analyzer.default_policy ~net ~prop ())
  in
  Alcotest.(check int) "exactly the scheduled fault fired" 1 (Fault.injected plan);
  Alcotest.(check bool) "verdict preserved" true (run.Bab.verdict = reference.Bab.verdict);
  Alcotest.(check int) "absorbed below the resilience layer" 0
    run.Bab.stats.Bab.faults_absorbed;
  Alcotest.(check int) "no retries" 0 run.Bab.stats.Bab.retries;
  Alcotest.(check int) "no fallback bounds" 0 run.Bab.stats.Bab.fallback_bounds;
  Alcotest.(check bool) "tree well-formed" true (Tree.well_formed run.Bab.tree)

(* The fault lands on the last frontier node of the run: the reference
   run's final analyzer call.  One retry must recover it and leave the
   run otherwise indistinguishable. *)
let test_fault_at_final_frontier_node () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let analyzer = Analyzer.lp_triangle () in
  let reference = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let last = reference.Bab.stats.Bab.analyzer_calls - 1 in
  Alcotest.(check bool) "reference run does analyze nodes" true (last >= 0);
  let plan =
    Fault.plan
      ~at:[ (Fault.Analyzer_run, last, Fault.Transient "final node dies") ]
      ~seed:0 ()
  in
  let run =
    Bab.verify
      ~analyzer:(Fault.wrap_analyzer plan analyzer)
      ~heuristic:Heuristic.zono_coeff ~policy:Analyzer.default_policy ~net ~prop ()
  in
  Alcotest.(check int) "exactly the scheduled fault fired" 1 (Fault.injected plan);
  Alcotest.(check bool) "verdict preserved" true (run.Bab.verdict = reference.Bab.verdict);
  Alcotest.(check string) "tree preserved" (Tree.to_string reference.Bab.tree)
    (Tree.to_string run.Bab.tree);
  Alcotest.(check int) "analyzer calls preserved" reference.Bab.stats.Bab.analyzer_calls
    run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "one absorbed failure" 1 run.Bab.stats.Bab.faults_absorbed;
  Alcotest.(check int) "one retry" 1 run.Bab.stats.Bab.retries;
  Alcotest.(check int) "no fallback bounds" 0 run.Bab.stats.Bab.fallback_bounds

(* Two faults race the fallback chain on one node: the first attempt
   and its single retry (default policy) both die, so the chain must
   degrade that node to the next analyzer — exactly one fallback bound,
   exactly two absorbed failures, exactly one retry. *)
let test_two_faults_race_fallback_chain () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let analyzer = Analyzer.lp_triangle () in
  let reference = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let plan =
    Fault.plan
      ~at:
        [
          (Fault.Analyzer_run, 0, Fault.Transient "first attempt dies");
          (Fault.Analyzer_run, 1, Fault.Transient "retry dies too");
        ]
      ~seed:0 ()
  in
  let run =
    Bab.verify
      ~analyzer:(Fault.wrap_analyzer plan analyzer)
      ~heuristic:Heuristic.zono_coeff ~policy:Analyzer.default_policy ~net ~prop ()
  in
  Alcotest.(check int) "both scheduled faults fired" 2 (Fault.injected plan);
  Alcotest.(check bool) "verdict preserved" true (run.Bab.verdict = reference.Bab.verdict);
  Alcotest.(check int) "two absorbed failures" 2 run.Bab.stats.Bab.faults_absorbed;
  Alcotest.(check int) "one retry" 1 run.Bab.stats.Bab.retries;
  Alcotest.(check int) "exactly one fallback bound" 1 run.Bab.stats.Bab.fallback_bounds;
  Alcotest.(check bool) "tree well-formed" true (Tree.well_formed run.Bab.tree)

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume *)

let paper_engine ?policy ?budget () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  ( Engine.create ~analyzer:lp ~heuristic:Heuristic.zono_coeff ?policy ?budget ~net ~prop (),
    net,
    prop )

let finish engine =
  let rec go () = match Engine.step engine with Engine.Running -> go () | Engine.Finished r -> r in
  go ()

let restore_ok = function
  | Ok engine -> engine
  | Error msg -> Alcotest.failf "restore failed: %s" msg

let test_checkpoint_midrun_roundtrip () =
  let engine, net, prop = paper_engine () in
  for _ = 1 to 3 do
    match Engine.step engine with
    | Engine.Running -> ()
    | Engine.Finished _ -> Alcotest.fail "instance finished before the checkpoint"
  done;
  let snapshot = Engine.checkpoint engine in
  let original = finish engine in
  let restored =
    restore_ok (Engine.restore ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop snapshot)
  in
  let resumed = finish restored in
  Alcotest.(check bool) "same verdict" true (original.Bab.verdict = resumed.Bab.verdict);
  Alcotest.(check int) "same analyzer calls" original.Bab.stats.Bab.analyzer_calls
    resumed.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "same branchings" original.Bab.stats.Bab.branchings
    resumed.Bab.stats.Bab.branchings;
  Alcotest.(check string) "same final tree" (Tree.to_string original.Bab.tree)
    (Tree.to_string resumed.Bab.tree)

let test_checkpoint_terminal_roundtrip () =
  let engine, net, prop = paper_engine () in
  let run = finish engine in
  let restored =
    restore_ok
      (Engine.restore ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop
         (Engine.checkpoint engine))
  in
  (match Engine.finished restored with
  | Some r ->
      Alcotest.(check bool) "terminal verdict survives" true (r.Bab.verdict = run.Bab.verdict);
      Alcotest.(check int) "terminal calls survive" run.Bab.stats.Bab.analyzer_calls
        r.Bab.stats.Bab.analyzer_calls
  | None -> Alcotest.fail "terminal checkpoint restored as running");
  match Engine.step restored with
  | Engine.Finished r ->
      Alcotest.(check bool) "stepping stays terminal" true (r.Bab.verdict = run.Bab.verdict)
  | Engine.Running -> Alcotest.fail "terminal engine resumed"

let test_checkpoint_file_roundtrip () =
  let engine, net, prop = paper_engine () in
  (match Engine.step engine with Engine.Running -> () | Engine.Finished _ -> ());
  let path = Filename.temp_file "ivan_ckpt" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Engine.checkpoint_to_file engine path;
      let original = finish engine in
      let resumed =
        finish
          (restore_ok
             (Engine.restore_from_file ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop
                path))
      in
      Alcotest.(check bool) "file roundtrip verdict" true
        (original.Bab.verdict = resumed.Bab.verdict);
      Alcotest.(check string) "file roundtrip tree" (Tree.to_string original.Bab.tree)
        (Tree.to_string resumed.Bab.tree))

(* The budget-exhausted continuation: a run that ran out of calls is
   checkpointed terminal, but restoring with a fresh budget resumes the
   search and reaches the unrestricted run's verdict and tree. *)
let test_checkpoint_exhausted_then_more_budget () =
  let tight = { Bab.max_analyzer_calls = 2; max_seconds = infinity } in
  let engine, net, prop = paper_engine ~budget:tight () in
  let cut = finish engine in
  Alcotest.(check bool) "tight run exhausted" true (cut.Bab.verdict = Bab.Exhausted);
  let snapshot = Engine.checkpoint engine in
  (* Without a budget override the recorded Exhausted verdict replays. *)
  (match
     Engine.finished
       (restore_ok
          (Engine.restore ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop snapshot))
   with
  | Some r -> Alcotest.(check bool) "replayed as exhausted" true (r.Bab.verdict = Bab.Exhausted)
  | None -> Alcotest.fail "no-override restore should stay terminal");
  (* With one, the search continues to the true verdict. *)
  let resumed =
    finish
      (restore_ok
         (Engine.restore ~analyzer:lp ~heuristic:Heuristic.zono_coeff
            ~budget:{ Bab.max_analyzer_calls = 10_000; max_seconds = infinity }
            ~net ~prop snapshot))
  in
  let reference = Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  Alcotest.(check bool) "resumed run proves the property" true
    (resumed.Bab.verdict = reference.Bab.verdict);
  Alcotest.(check int) "no analyzer call repeated" reference.Bab.stats.Bab.analyzer_calls
    resumed.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check string) "same tree as the uninterrupted run"
    (Tree.to_string reference.Bab.tree) (Tree.to_string resumed.Bab.tree)

let test_checkpoint_rejects_garbage () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  List.iter
    (fun doc ->
      match Engine.restore ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~net ~prop doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed checkpoint %S accepted" doc
      | exception e ->
          Alcotest.failf "malformed checkpoint %S raised %s instead of returning Error" doc
            (Printexc.to_string e))
    [ ""; "nonsense"; "ivan-checkpoint 99\ntree:\n" ]

(* ------------------------------------------------------------------ *)
(* Interrupted trees stay usable downstream *)

let test_cancelled_tree_reusable () =
  let plan = Fault.plan ~analyzer_rate:0.3 ~seed:11 () in
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let engine =
    Engine.create
      ~analyzer:(Fault.wrap_analyzer plan lp)
      ~heuristic:Heuristic.zono_coeff ~policy:Analyzer.default_policy ~net ~prop ()
  in
  for _ = 1 to 2 do
    ignore (Engine.step engine)
  done;
  let cancelled = Engine.cancel engine in
  Alcotest.(check bool) "cancelled mid-campaign is Exhausted" true
    (cancelled.Bab.verdict = Bab.Exhausted);
  Alcotest.(check bool) "cancelled tree well-formed" true (Tree.well_formed cancelled.Bab.tree);
  (* The partial tree seeds incremental re-verification of an update. *)
  let updated = Quant.network Quant.Int16 net in
  let rerun =
    Ivan.verify_updated_with_tree ~analyzer:lp ~heuristic:Heuristic.zono_coeff
      ~config:Ivan.default_config ~original_tree:cancelled.Bab.tree ~updated ~prop
  in
  Alcotest.(check bool) "incremental run completes from the partial tree" true
    (rerun.Bab.verdict <> Bab.Exhausted)

let test_diffverify_reuses_exhausted_trees () =
  let net = Fixtures.paper_net () in
  let updated = Quant.network Quant.Int16 net in
  let box = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  let tight = { Bab.max_analyzer_calls = 1; max_seconds = infinity } in
  let partial =
    Diffverify.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~budget:tight net updated ~box
      ~delta:0.5
  in
  List.iter
    (fun (r : Bab.run) ->
      Alcotest.(check bool) "partial proof trees well-formed" true (Tree.well_formed r.Bab.tree))
    partial.Diffverify.runs;
  let complete =
    Diffverify.verify_incremental ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~previous:partial
      net updated ~box ~delta:0.5
  in
  Alcotest.(check bool) "incremental pass completes from partial trees" true
    (complete.Diffverify.verdict = Diffverify.Equivalent)

let suite =
  [
    ("lp rejects NaN/inf input", `Quick, test_lp_rejects_nan_input);
    ("lp accepts infinite bounds", `Quick, test_lp_accepts_infinite_bounds);
    ("lp solve hook fires", `Quick, test_lp_solve_hook_fires);
    ("milp surfaces solver failure", `Quick, test_milp_solver_failure);
    ("fault plan deterministic", `Quick, test_plan_deterministic);
    ("fault plan rates", `Quick, test_plan_rates);
    ("fault plan validation", `Quick, test_plan_validation);
    ("fallback: retry recovers", `Quick, test_fallback_retry_recovers);
    ("fallback: degrades to chain", `Quick, test_fallback_degrades_to_chain);
    ("fallback: off degrades to unknown", `Quick, test_fallback_off_degrades_unknown);
    ("fallback: sanitizes outcomes", `Quick, test_fallback_sanitizes_outcomes);
    ("fallback: node timeout", `Quick, test_fallback_node_timeout);
    ("fallback: rejects bad policy", `Quick, test_fallback_rejects_bad_policy);
    ("fallback: fatal exceptions pass through", `Quick, test_fallback_fatal_passthrough);
    ("engine absorbs crashing analyzer", `Quick, test_engine_absorbs_crashing_analyzer);
    ("engine retries preserve the run", `Quick, test_engine_policy_retries_preserve_run);
    ("seeded fault campaign", `Slow, test_fault_campaign);
    ("fault at the first LP solve", `Quick, test_fault_at_first_lp_solve);
    ("fault at the final frontier node", `Quick, test_fault_at_final_frontier_node);
    ("two faults race the fallback chain", `Quick, test_two_faults_race_fallback_chain);
    ("checkpoint mid-run roundtrip", `Quick, test_checkpoint_midrun_roundtrip);
    ("checkpoint terminal roundtrip", `Quick, test_checkpoint_terminal_roundtrip);
    ("checkpoint file roundtrip", `Quick, test_checkpoint_file_roundtrip);
    ("checkpoint exhausted + more budget", `Quick, test_checkpoint_exhausted_then_more_budget);
    ("checkpoint rejects garbage", `Quick, test_checkpoint_rejects_garbage);
    ("cancelled tree reusable", `Quick, test_cancelled_tree_reusable);
    ("diffverify reuses exhausted trees", `Quick, test_diffverify_reuses_exhausted_trees);
  ]
