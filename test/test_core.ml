(* Tests for the IVAN core: effectiveness scores (Eq. 5-6), H_Delta
   (Eq. 7), pruning (Alg. 4), Theorem 4 bounds, and the end-to-end
   incremental algorithm (Alg. 5). *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng
module Relu_id = Ivan_nn.Relu_id
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Perturb = Ivan_nn.Perturb
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Decision = Ivan_spectree.Decision
module Tree = Ivan_spectree.Tree
module Effectiveness = Ivan_core.Effectiveness
module Hdelta = Ivan_core.Hdelta
module Prune = Ivan_core.Prune
module Theory = Ivan_core.Theory
module Ivan = Ivan_core.Ivan

let r l i = Decision.Relu_split (Relu_id.make ~layer:l ~index:i)

(* Hand-built tree shaped like the paper's running example (Fig. 3/5):
   n0 -r1-> (n1, n2); n1 -r4-> (n3, n4); n2 -r4-> (n5, n6);
   n6 -r3-> (n7, n8).  LB values chosen so that the r1 split at the root
   is ineffective and Eq. 8 keeps n2's subtree. *)
let example_tree () =
  let t = Tree.create () in
  let n0 = Tree.root t in
  let n1, n2 = Tree.split t n0 (r 0 0) in
  let n3, n4 = Tree.split t n1 (r 1 1) in
  let n5, n6 = Tree.split t n2 (r 1 1) in
  let n7, n8 = Tree.split t n6 (r 1 0) in
  Tree.set_lb n0 (-7.0);
  Tree.set_lb n1 (-1.0);
  (* I(n0, r1) = min(-1 - -7, -6.5 - -7) = 0.5: a bad split. *)
  Tree.set_lb n2 (-6.5);
  Tree.set_lb n3 1.0;
  Tree.set_lb n4 2.0;
  Tree.set_lb n5 1.5;
  Tree.set_lb n6 (-2.0);
  Tree.set_lb n7 2.5;
  Tree.set_lb n8 3.0;
  t

let test_improvement () =
  let t = example_tree () in
  let root = Tree.root t in
  Alcotest.(check (option (float 1e-9))) "I(n0, r1)" (Some 0.5) (Effectiveness.improvement root);
  (match Tree.children root with
  | Some (n1, n2) ->
      (* I(n1, r4) = min(1 - -1, 2 - -1) = 2;
         I(n2, r4) = min(1.5 - -6.5, -2 - -6.5) = 4.5. *)
      Alcotest.(check (option (float 1e-9))) "I(n1, r4)" (Some 2.0) (Effectiveness.improvement n1);
      Alcotest.(check (option (float 1e-9))) "I(n2, r4)" (Some 4.5) (Effectiveness.improvement n2)
  | None -> Alcotest.fail "root lost children");
  (* Leaves have no improvement. *)
  List.iter
    (fun leaf ->
      Alcotest.(check bool) "leaf none" true (Effectiveness.improvement leaf = None))
    (Tree.leaves t)

let test_h_obs () =
  let t = example_tree () in
  let table = Effectiveness.observe t in
  (* r4 = r[1,1] was split at n1 and n2: mean (2 + 4.5) / 2 = 3.25.
     r3 = r[1,0] at n6: min(2.5 - -2, 3 - -2) = 4.5.
     r1 = r[0,0] at n0: 0.5. *)
  Alcotest.(check (option (float 1e-9))) "H_obs r1" (Some 0.5) (Effectiveness.score table (r 0 0));
  Alcotest.(check (option (float 1e-9))) "H_obs r4" (Some 3.25) (Effectiveness.score table (r 1 1));
  Alcotest.(check (option (float 1e-9))) "H_obs r3" (Some 4.5) (Effectiveness.score table (r 1 0));
  Alcotest.(check (option (float 1e-9))) "unobserved" None (Effectiveness.score table (r 0 1));
  Alcotest.(check (float 1e-9)) "max abs" 4.5 (Effectiveness.max_abs_score table)

let test_improvement_clamps_infinite () =
  let t = Tree.create () in
  let n0 = Tree.root t in
  let n1, n2 = Tree.split t n0 (r 0 0) in
  Tree.set_lb n0 (-1.0);
  Tree.set_lb n1 infinity;
  Tree.set_lb n2 0.5;
  match Effectiveness.improvement n0 with
  | Some i -> Alcotest.(check bool) "finite" true (Float.is_finite i)
  | None -> Alcotest.fail "expected clamped improvement"

(* H_Delta: with alpha = 1 the base ranking is unchanged; with alpha = 0
   the observed ranking dominates. *)
let constant_base scores =
  {
    Heuristic.name = "const";
    scores = (fun _ -> List.map (fun (d, s) -> (d, s)) scores);
  }

let dummy_ctx () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop () in
  {
    Heuristic.net;
    prop;
    box = prop.Prop.input;
    splits = Ivan_domains.Splits.empty;
    outcome = { Analyzer.status = Analyzer.Unknown; lb = -1.0; bounds = None; zono = None; cert = None };
  }

let test_hdelta_alpha_extremes () =
  let t = example_tree () in
  let observed = Effectiveness.observe t in
  (* Base prefers r1; observations prefer r3. *)
  let base = constant_base [ (r 0 0, 10.0); (r 1 0, 1.0); (r 1 1, 2.0) ] in
  let ctx = dummy_ctx () in
  let top heuristic =
    match Heuristic.best (heuristic.Heuristic.scores ctx) with
    | Some d -> d
    | None -> Alcotest.fail "no decision"
  in
  let h1 = Hdelta.make ~base ~observed ~alpha:1.0 ~theta:0.01 in
  Alcotest.(check bool) "alpha=1 keeps base top" true (Decision.equal (top h1) (r 0 0));
  let h0 = Hdelta.make ~base ~observed ~alpha:0.0 ~theta:0.01 in
  Alcotest.(check bool) "alpha=0 follows observations" true (Decision.equal (top h0) (r 1 0))

let test_hdelta_theta_penalizes () =
  let t = example_tree () in
  let observed = Effectiveness.observe t in
  (* Two decisions with equal base scores; r1 has a small observed score
     (0.5 / 4.5 normalized ~ 0.11), below theta = 0.5, so it must rank
     below the unobserved decision. *)
  let base = constant_base [ (r 0 0, 1.0); (r 0 1, 1.0) ] in
  let h = Hdelta.make ~base ~observed ~alpha:0.5 ~theta:0.5 in
  let scores = h.Heuristic.scores (dummy_ctx ()) in
  let score d = List.assoc d scores in
  Alcotest.(check bool) "observed-bad below unobserved" true (score (r 0 0) < score (r 0 1))

let test_hdelta_invalid_alpha () =
  let observed = Effectiveness.observe (example_tree ()) in
  Alcotest.check_raises "alpha" (Invalid_argument "Hdelta.make: alpha must be in [0, 1]")
    (fun () -> ignore (Hdelta.make ~base:Heuristic.width ~observed ~alpha:1.5 ~theta:0.0))

(* Pruning the example tree with theta above 0.5/4.5 removes the root's
   r1 split and keeps n2's subtree (the child with the smaller LB
   increase), exactly the paper's Fig. 5. *)
let test_prune_removes_bad_root_split () =
  let t = example_tree () in
  let p = Prune.prune ~theta:0.2 t in
  Alcotest.(check bool) "well formed" true (Tree.well_formed p);
  (* New root splits on r4 (the decision of kept child n2). *)
  Alcotest.(check bool) "root decision is r4" true
    (match Tree.decision (Tree.root p) with Some d -> Decision.equal d (r 1 1) | None -> false);
  (* 9 nodes -> 5: exactly n2's subtree survives under the root
     (paper Fig. 5): root -r4-> (leaf n5, n6 -r3-> (n7, n8)). *)
  Alcotest.(check int) "pruned size" 5 (Tree.size p);
  Alcotest.(check int) "pruned leaves" 3 (Tree.num_leaves p);
  (match Tree.children (Tree.root p) with
  | Some (_, kept_n6) ->
      Alcotest.(check bool) "inner split is r3" true
        (match Tree.decision kept_n6 with Some d -> Decision.equal d (r 1 0) | None -> false)
  | None -> Alcotest.fail "pruned root is a leaf");
  (* Original untouched. *)
  Alcotest.(check int) "original intact" 9 (Tree.size t)

let test_prune_keeps_good_tree () =
  let t = example_tree () in
  (* theta = 0.05: normalized bad threshold below 0.5/4.5 = 0.111, so
     nothing is pruned. *)
  let p = Prune.prune ~theta:0.05 t in
  Alcotest.(check int) "size unchanged" (Tree.size t) (Tree.size p);
  Alcotest.(check int) "leaves unchanged" (Tree.num_leaves t) (Tree.num_leaves p)

let test_prune_single_node () =
  let t = Tree.create () in
  Tree.set_lb (Tree.root t) 1.0;
  let p = Prune.prune ~theta:0.5 t in
  Alcotest.(check int) "single node" 1 (Tree.size p);
  Alcotest.(check (float 0.0)) "lb copied" 1.0 (Tree.lb (Tree.root p))

let test_prune_bad_split_with_leaf_child () =
  (* Bad split whose kept child is a leaf: the subtree collapses. *)
  let t = Tree.create () in
  let n1, n2 = Tree.split t (Tree.root t) (r 0 0) in
  let _ = Tree.split t n2 (r 0 1) in
  Tree.set_lb (Tree.root t) (-1.0);
  Tree.set_lb n1 (-0.99);
  (* n1 closest to parent *)
  Tree.set_lb n2 5.0;
  (match Tree.children n2 with
  | Some (a, b) ->
      Tree.set_lb a 6.0;
      Tree.set_lb b 7.0
  | None -> assert false);
  let p = Prune.prune ~theta:0.9 t in
  (* I(root) = min(0.01, 6) = 0.01, normalized by max improvement 1.0
     -> 0.01 < 0.9: bad.  Kept child is n1 (leaf) -> pruned tree is a
     single node. *)
  Alcotest.(check int) "collapsed" 1 (Tree.size p)

let analyzer = Analyzer.lp_triangle ()

(* Theorem 4: after verifying a property, perturbing the last layer
   within the delta bound preserves provability with the same tree. *)
let theorem4_fixture () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let run = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  Alcotest.(check bool) "fixture proved" true (run.Bab.verdict = Bab.Proved);
  (net, prop, run.Bab.tree)

let test_theorem4_quantities () =
  let net, prop, tree = theorem4_fixture () in
  let lb = Theory.leaf_objective_lb ~analyzer net ~prop tree in
  Alcotest.(check bool) "leaf lb >= 0 (verified)" true (lb >= 0.0);
  let eta = Theory.eta ~analyzer net ~prop tree in
  Alcotest.(check bool) "eta positive" true (eta > 0.0);
  let delta = Theory.delta_bound ~analyzer net ~prop tree in
  Alcotest.(check bool) "delta positive and finite" true (delta > 0.0 && Float.is_finite delta);
  Alcotest.(check bool) "tree proves the property" true
    (Theory.verified_with_tree ~analyzer net ~prop tree)

let test_theorem4_perturbation_preserved () =
  let net, prop, tree = theorem4_fixture () in
  let delta = Theory.delta_bound ~analyzer net ~prop tree in
  let rng = Rng.create 77 in
  for _ = 1 to 10 do
    let perturbed = Perturb.last_layer ~rng ~delta:(0.9 *. delta) net in
    Alcotest.(check bool) "still proved with the same tree" true
      (Theory.verified_with_tree ~analyzer perturbed ~prop tree)
  done

(* End-to-end Algorithm 5 across all four techniques on a quantized
   update. *)
let incremental_fixture () =
  let net = Fixtures.paper_net () in
  (* Perturb weights slightly to act as "trained" float weights, then
     quantize. *)
  let rng = Rng.create 5 in
  let float_net = Perturb.random_relative ~rng ~fraction:0.02 net in
  let updated = Quant.network Quant.Int8 float_net in
  let prop = Fixtures.paper_prop_with_offset 1.7 in
  (float_net, updated, prop)


let test_incremental_all_techniques () =
  let net, updated, prop = incremental_fixture () in
  List.iter
    (fun technique ->
      let config = { Ivan.default_config with technique } in
      let result =
        Ivan.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff ~config ~net ~updated
          ~prop ()
      in
      Alcotest.(check bool)
        (Ivan.technique_name technique ^ " proves original")
        true
        (result.Ivan.original.Bab.verdict = Bab.Proved);
      Alcotest.(check bool)
        (Ivan.technique_name technique ^ " proves update")
        true
        (result.Ivan.updated.Bab.verdict = Bab.Proved))
    [ Ivan.Baseline; Ivan.Reuse; Ivan.Reorder; Ivan.Full ]

let test_reuse_identical_network_is_optimal () =
  (* Theorem 6 situation: N^a = N.  Reuse bounds exactly the leaves. *)
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let original = Ivan.verify_original ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let config = { Ivan.default_config with technique = Ivan.Reuse } in
  let rerun =
    Ivan.verify_updated ~analyzer ~heuristic:Heuristic.zono_coeff ~config ~original_run:original
      ~updated:net ~prop
  in
  Alcotest.(check bool) "proved" true (rerun.Bab.verdict = Bab.Proved);
  Alcotest.(check int) "calls = leaves"
    original.Bab.stats.Bab.tree_leaves rerun.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check bool) "speedup vs baseline calls" true
    (rerun.Bab.stats.Bab.analyzer_calls <= original.Bab.stats.Bab.analyzer_calls)

let test_incremental_architecture_mismatch () =
  let net = Fixtures.paper_net () in
  let other = Fixtures.random_net ~seed:1 ~dims:[ 2; 3; 1 ] in
  let prop = Fixtures.paper_prop () in
  Alcotest.check_raises "arch"
    (Invalid_argument "Ivan.verify_incremental: networks must share an architecture") (fun () ->
      ignore
        (Ivan.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~updated:other
           ~prop ()))

let test_incremental_counterexample_case () =
  (* A property that is false on the update must yield a genuine CE. *)
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.52 in
  (* Large perturbation can push the minimum below the offset. *)
  let rng = Rng.create 9 in
  let updated = Perturb.random_relative ~rng ~fraction:0.10 net in
  let result =
    Ivan.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~updated ~prop ()
  in
  match result.Ivan.updated.Bab.verdict with
  | Bab.Proved -> Alcotest.(check bool) "sound if proved" true (Fixtures.approx_min_margin ~seed:9 updated prop >= -1e-6)
  | Bab.Disproved x ->
      Alcotest.(check bool) "genuine CE" true (Analyzer.check_concrete updated ~prop x)
  | Bab.Exhausted -> Alcotest.fail "tiny instance exhausted"

let prop_incremental_matches_baseline_verdict =
  QCheck.Test.make ~name:"incremental verdict equals baseline verdict" ~count:10
    QCheck.(make QCheck.Gen.(pair (int_range 1 100_000) (float_range 1.4 1.9)))
    (fun (seed, offset) ->
      let net = Fixtures.paper_net () in
      let rng = Rng.create seed in
      let updated = Perturb.random_relative ~rng ~fraction:0.05 net in
      let prop = Fixtures.paper_prop_with_offset offset in
      let run technique =
        let config = { Ivan.default_config with technique } in
        let result =
          Ivan.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff ~config ~net ~updated
            ~prop ()
        in
        result.Ivan.updated.Bab.verdict
      in
      let same a b =
        match (a, b) with
        | Bab.Proved, Bab.Proved -> true
        | Bab.Disproved _, Bab.Disproved _ -> true
        | Bab.Exhausted, _ | _, Bab.Exhausted -> true (* budget-dependent *)
        | _, _ -> false
      in
      let baseline = run Ivan.Baseline in
      same baseline (run Ivan.Reuse) && same baseline (run Ivan.Reorder) && same baseline (run Ivan.Full))



(* ---------------- Proof persistence ---------------- *)

module Proof = Ivan_core.Proof

let test_proof_roundtrip () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let run = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let proof = Proof.of_run ~prop run in
  Alcotest.(check bool) "verdict" true (proof.Proof.verdict = Proof.Proved);
  let proof' = Proof.of_string (Proof.to_string proof) in
  Alcotest.(check string) "name" proof.Proof.property_name proof'.Proof.property_name;
  Alcotest.(check int) "calls" proof.Proof.analyzer_calls proof'.Proof.analyzer_calls;
  Alcotest.(check int) "tree size" (Tree.size proof.Proof.tree) (Tree.size proof'.Proof.tree);
  Alcotest.(check string) "tree identical" (Tree.to_string proof.Proof.tree)
    (Tree.to_string proof'.Proof.tree)

let test_proof_file_roundtrip () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let run = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~prop () in
  let path = Filename.temp_file "ivan_proof" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Proof.to_file path (Proof.of_run ~prop run);
      let proof = Proof.of_file path in
      (* Resume incremental verification from the reloaded proof. *)
      let updated = Quant.network Quant.Int8 net in
      let rerun =
        Ivan.verify_updated_with_tree ~analyzer ~heuristic:Heuristic.zono_coeff
          ~config:Ivan.default_config ~original_tree:proof.Proof.tree ~updated ~prop
      in
      match rerun.Bab.verdict with
      | Bab.Proved | Bab.Disproved _ -> ()
      | Bab.Exhausted -> Alcotest.fail "resumed verification exhausted")

let test_proof_malformed () =
  (match Proof.of_string "garbage" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  match Proof.of_string "ivan-proof 1\nproperty: x\nverdict: bogus\ncalls: 1\ntree:\nleaf 0 nan" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on bad verdict"



(* ---------------- Differential verification ---------------- *)

module Diffverify = Ivan_core.Diffverify

let diff_fixture () =
  let net = Fixtures.random_net ~seed:91 ~dims:[ 2; 5; 2 ] in
  let box = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
  (net, box)

let test_diffverify_identical () =
  let net, box = diff_fixture () in
  let proof =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net net ~box ~delta:1e-6
  in
  Alcotest.(check bool) "identical nets equivalent" true (proof.Diffverify.verdict = Diffverify.Equivalent);
  Alcotest.(check int) "2m properties" 4 (List.length proof.Diffverify.runs)

let test_diffverify_quantization_bounded () =
  let net, box = diff_fixture () in
  let updated = Quant.network Quant.Int16 net in
  let proof =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net updated ~box ~delta:0.5
  in
  Alcotest.(check bool) "int16 within 0.5" true (proof.Diffverify.verdict = Diffverify.Equivalent)

let test_diffverify_detects_deviation () =
  let net, box = diff_fixture () in
  let rng = Rng.create 92 in
  let changed = Perturb.random_additive ~rng ~magnitude:0.5 net in
  let proof =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net changed ~box ~delta:1e-4
  in
  match proof.Diffverify.verdict with
  | Diffverify.Deviation x ->
      let d =
        Vec.norm_inf (Vec.sub (Network.forward net x) (Network.forward changed x))
      in
      Alcotest.(check bool) "genuine deviation" true (d > 1e-4)
  | Diffverify.Equivalent -> Alcotest.fail "missed an obvious deviation"
  | Diffverify.Unknown -> Alcotest.fail "tiny instance exhausted"

let test_diffverify_verdict_matches_sampling () =
  (* The exact differential verdict must be consistent with sampling. *)
  let net, box = diff_fixture () in
  let updated = Quant.network Quant.Int8 net in
  let rng = Rng.create 93 in
  let sampled_max = ref 0.0 in
  for _ = 1 to 2000 do
    let x = Box.sample ~rng box in
    let d = Vec.norm_inf (Vec.sub (Network.forward net x) (Network.forward updated x)) in
    sampled_max := Float.max !sampled_max d
  done;
  (* delta above the sampled max with slack: must be Equivalent if the
     verifier is right (sampling cannot exceed the true max). *)
  let proof =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net updated ~box
      ~delta:(!sampled_max *. 3.0 +. 0.1)
  in
  Alcotest.(check bool) "equivalent above sampled max" true
    (proof.Diffverify.verdict = Diffverify.Equivalent);
  (* delta below the sampled max: must NOT be Equivalent. *)
  if !sampled_max > 1e-6 then begin
    let proof2 =
      Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net updated ~box
        ~delta:(!sampled_max /. 2.0)
    in
    match proof2.Diffverify.verdict with
    | Diffverify.Equivalent -> Alcotest.fail "claimed equivalence below a witnessed deviation"
    | Diffverify.Deviation _ | Diffverify.Unknown -> ()
  end

let test_diffverify_incremental () =
  (* Verify (N, int16) from scratch, then (N, int8) incrementally. *)
  let net, box = diff_fixture () in
  let u16 = Quant.network Quant.Int16 net in
  let u8 = Quant.network Quant.Int8 net in
  let first =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net u16 ~box ~delta:0.5
  in
  let second =
    Diffverify.verify_incremental ~analyzer ~heuristic:Heuristic.zono_coeff ~previous:first net
      u8 ~box ~delta:0.5
  in
  Alcotest.(check bool) "incremental verdict" true
    (second.Diffverify.verdict = Diffverify.Equivalent);
  (* The from-scratch second proof costs at least as much. *)
  let scratch =
    Diffverify.verify ~analyzer ~heuristic:Heuristic.zono_coeff net u8 ~box ~delta:0.5
  in
  Alcotest.(check bool) "incremental no more calls" true
    (second.Diffverify.total_calls <= scratch.Diffverify.total_calls)



(* ---------------- Pruning invariants (property tests) ---------------- *)

(* Random LB-annotated trees for property testing. *)
let random_annotated_tree seed =
  let rng = Rng.create seed in
  let t = Tree.create () in
  Tree.set_lb (Tree.root t) (Rng.uniform rng (-10.0) 0.0);
  for _ = 1 to 1 + Rng.int rng 12 do
    let leaves = Array.of_list (Tree.leaves t) in
    let leaf = leaves.(Rng.int rng (Array.length leaves)) in
    let d = r (Rng.int rng 3) (Rng.int rng 5) in
    let on_path =
      List.exists (fun (pd, _) -> Decision.equal pd d) (Tree.path_decisions leaf)
    in
    if not on_path && Tree.is_leaf leaf then begin
      let l, rr = Tree.split t leaf d in
      (* Children improve on the parent most of the time, like real
         analyzer bounds. *)
      let base = Tree.lb leaf in
      Tree.set_lb l (base +. Rng.uniform rng (-0.5) 3.0);
      Tree.set_lb rr (base +. Rng.uniform rng (-0.5) 3.0)
    end
  done;
  t

let prop_prune_well_formed =
  QCheck.Test.make ~name:"pruned trees stay well-formed and smaller" ~count:100
    QCheck.(make QCheck.Gen.(pair (int_range 0 100_000) (float_range 0.0 0.5)))
    (fun (seed, theta) ->
      let t = random_annotated_tree seed in
      let p = Prune.prune ~theta t in
      Tree.well_formed p
      && Tree.size p <= Tree.size t
      && Tree.size p = (2 * Tree.num_leaves p) - 1)

let prop_prune_theta_zero_keeps_positive_trees =
  QCheck.Test.make ~name:"theta=0 prunes only negative-improvement splits" ~count:50
    QCheck.(make QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      let t = random_annotated_tree seed in
      let all_improvements_nonneg =
        let ok = ref true in
        Tree.iter_nodes t (fun n ->
            match Effectiveness.improvement n with
            | Some i when i < 0.0 -> ok := false
            | Some _ | None -> ());
        !ok
      in
      let p = Prune.prune ~theta:0.0 t in
      (not all_improvements_nonneg) || Tree.size p = Tree.size t)

let prop_prune_decisions_subset =
  QCheck.Test.make ~name:"pruned decisions come from the original tree" ~count:50
    QCheck.(make QCheck.Gen.(pair (int_range 0 100_000) (float_range 0.0 0.5)))
    (fun (seed, theta) ->
      let t = random_annotated_tree seed in
      let decisions tree =
        let acc = ref [] in
        Tree.iter_nodes tree (fun n ->
            match Tree.decision n with Some d -> acc := d :: !acc | None -> ());
        !acc
      in
      let original = decisions t in
      let p = Prune.prune ~theta t in
      List.for_all (fun d -> List.exists (Decision.equal d) original) (decisions p))



(* ---------------- Chained incremental verification ---------------- *)

let test_verify_chain () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.7 in
  let rng = Rng.create 101 in
  (* Drifting deployment: successive small perturbations. *)
  let u1 = Perturb.random_relative ~rng ~fraction:0.01 net in
  let u2 = Perturb.random_relative ~rng ~fraction:0.01 u1 in
  let u3 = Quant.network Quant.Int8 u2 in
  let original, runs =
    Ivan.verify_chain ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~updates:[ u1; u2; u3 ]
      ~prop ()
  in
  Alcotest.(check int) "three runs" 3 (List.length runs);
  Alcotest.(check bool) "original proved" true (original.Bab.verdict = Bab.Proved);
  List.iter
    (fun (run : Bab.run) ->
      match run.Bab.verdict with
      | Bab.Proved | Bab.Disproved _ -> ()
      | Bab.Exhausted -> Alcotest.fail "chain step exhausted")
    runs

let test_verify_chain_architecture_check () =
  let net = Fixtures.paper_net () in
  let other = Fixtures.random_net ~seed:1 ~dims:[ 2; 3; 1 ] in
  let prop = Fixtures.paper_prop () in
  Alcotest.check_raises "arch"
    (Invalid_argument "Ivan.verify_chain: every update must share the architecture") (fun () ->
      ignore
        (Ivan.verify_chain ~analyzer ~heuristic:Heuristic.zono_coeff ~net ~updates:[ other ]
           ~prop ()))

(* ---------------- DOT export ---------------- *)

let test_tree_to_dot () =
  let t = example_tree () in
  let dot = Tree.to_dot t in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph spectree");
  Alcotest.(check bool) "root node" true (contains "n0 [label=");
  Alcotest.(check bool) "edge labels" true (contains "r[0,0]+");
  Alcotest.(check bool) "nine nodes" true (contains "n8 [label=")

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("improvement", `Quick, test_improvement);
    ("h_obs", `Quick, test_h_obs);
    ("improvement clamps infinities", `Quick, test_improvement_clamps_infinite);
    ("hdelta alpha extremes", `Quick, test_hdelta_alpha_extremes);
    ("hdelta theta penalizes", `Quick, test_hdelta_theta_penalizes);
    ("hdelta invalid alpha", `Quick, test_hdelta_invalid_alpha);
    ("prune removes bad root split", `Quick, test_prune_removes_bad_root_split);
    ("prune keeps good tree", `Quick, test_prune_keeps_good_tree);
    ("prune single node", `Quick, test_prune_single_node);
    ("prune bad split with leaf child", `Quick, test_prune_bad_split_with_leaf_child);
    ("theorem4 quantities", `Quick, test_theorem4_quantities);
    ("theorem4 perturbation preserved", `Quick, test_theorem4_perturbation_preserved);
    ("incremental all techniques", `Quick, test_incremental_all_techniques);
    ("reuse identical network optimal", `Quick, test_reuse_identical_network_is_optimal);
    ("incremental architecture mismatch", `Quick, test_incremental_architecture_mismatch);
    ("incremental counterexample case", `Quick, test_incremental_counterexample_case);
    q prop_incremental_matches_baseline_verdict;
    ("proof roundtrip", `Quick, test_proof_roundtrip);
    ("proof file roundtrip", `Quick, test_proof_file_roundtrip);
    ("proof malformed", `Quick, test_proof_malformed);
    ("diffverify identical", `Quick, test_diffverify_identical);
    ("diffverify quantization bounded", `Quick, test_diffverify_quantization_bounded);
    ("diffverify detects deviation", `Quick, test_diffverify_detects_deviation);
    ("diffverify matches sampling", `Quick, test_diffverify_verdict_matches_sampling);
    ("diffverify incremental", `Quick, test_diffverify_incremental);
    q prop_prune_well_formed;
    q prop_prune_theta_zero_keeps_positive_trees;
    q prop_prune_decisions_subset;
    ("verify chain", `Quick, test_verify_chain);
    ("verify chain architecture check", `Quick, test_verify_chain_architecture_check);
    ("tree to dot", `Quick, test_tree_to_dot);
  ]
