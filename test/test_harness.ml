(* Tests for the experiment harness: workload generation, the runner,
   and report aggregation. *)

module Vec = Ivan_tensor.Vec
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Prop = Ivan_spec.Prop
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Zoo = Ivan_data.Zoo
module Workload = Ivan_harness.Workload
module Runner = Ivan_harness.Runner
module Report = Ivan_harness.Report

(* A tiny trained model shared by the harness tests (trains in well
   under a second). *)
let spec = Zoo.fcn_mnist

let net = lazy (Zoo.train spec)

let test_robustness_instances () =
  let net = Lazy.force net in
  let instances = Workload.robustness_instances ~spec ~net ~count:5 in
  Alcotest.(check int) "count" 5 (List.length instances);
  List.iteri
    (fun i (inst : Workload.instance) ->
      Alcotest.(check int) "ids sequential" i inst.Workload.id;
      (* Robustness properties must hold at the center (correctly
         classified by construction). *)
      let center = Ivan_spec.Box.center inst.Workload.prop.Prop.input in
      Alcotest.(check bool) "holds at center" true
        (Prop.holds_at inst.Workload.prop (Network.forward net center)))
    instances

let test_robustness_instances_clip () =
  let net = Lazy.force net in
  let instances = Workload.robustness_instances ~spec ~net ~count:3 in
  List.iter
    (fun (inst : Workload.instance) ->
      let box = inst.Workload.prop.Prop.input in
      for j = 0 to Ivan_spec.Box.dim box - 1 do
        Alcotest.(check bool) "clipped to [0,1]" true
          (Ivan_spec.Box.lo_at box j >= 0.0 && Ivan_spec.Box.hi_at box j <= 1.0)
      done)
    instances

let test_acas_instances () =
  let net = Ivan_nn.Builder.dense_net ~rng:(Ivan_tensor.Rng.create 1) ~dims:[ 5; 8; 5 ] in
  let instances = Workload.acas_instances ~net ~margins:[ 0.2; 0.4 ] ~seed:1 in
  Alcotest.(check int) "4 regions x 2 margins" 8 (List.length instances);
  let ids = List.map (fun i -> i.Workload.id) instances in
  Alcotest.(check (list int)) "ids" [ 0; 1; 2; 3; 4; 5; 6; 7 ] ids

let test_runner_comparison () =
  let net = Lazy.force net in
  let updated = Quant.network Quant.Int16 net in
  let setting =
    Runner.classifier_setting ~budget:{ Bab.max_analyzer_calls = 150; max_seconds = 20.0 } ()
  in
  let instances = Workload.robustness_instances ~spec ~net ~count:3 in
  let comparisons =
    Runner.run_all setting ~net ~updated ~techniques:[ Ivan.Reuse; Ivan.Full ] ~alpha:0.25
      ~theta:0.01 instances
  in
  Alcotest.(check int) "one comparison per instance" 3 (List.length comparisons);
  List.iter
    (fun (c : Runner.comparison) ->
      Alcotest.(check int) "two techniques" 2 (List.length c.Runner.techniques);
      Alcotest.(check bool) "calls positive" true (c.Runner.baseline.Runner.calls >= 1);
      (* Verdicts agree across techniques when all are solved (the
         verifier is complete). *)
      let verdict_kind (m : Runner.measurement) =
        match m.Runner.verdict with
        | Bab.Proved -> `P
        | Bab.Disproved _ -> `D
        | Bab.Exhausted -> `E
      in
      let base = verdict_kind c.Runner.baseline in
      List.iter
        (fun (_, m) ->
          let tech = verdict_kind m in
          if base <> `E && tech <> `E then
            Alcotest.(check bool) "verdicts agree" true (base = tech))
        c.Runner.techniques)
    comparisons

let test_report_summarize () =
  (* Synthetic comparisons with known ratios. *)
  let dummy_prop =
    Prop.make ~name:"d"
      ~input:(Ivan_spec.Box.make ~lo:(Vec.zeros 1) ~hi:(Vec.create 1 1.0))
      ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0
  in
  let m ?(verdict = Bab.Proved) calls seconds =
    {
      Runner.verdict;
      calls;
      seconds;
      tree_size = 1;
      tree_leaves = 1;
      retries = 0;
      fallback_bounds = 0;
      faults_absorbed = 0;
      certs_emitted = 0;
      certs_unavailable = 0;
      artifact = None;
    }
  in
  let comparison id base tech =
    {
      Runner.instance = { Workload.id; prop = dummy_prop };
      original = m 1 0.0;
      baseline = base;
      techniques = [ (Ivan.Full, tech) ];
    }
  in
  let comparisons =
    [
      comparison 0 (m 10 2.0) (m 5 1.0);
      (* 2x on both *)
      comparison 1 (m 8 4.0) (m 8 2.0);
      (* 1x calls, 2x time *)
      comparison 2 (m ~verdict:Bab.Exhausted 100 50.0) (m 4 0.5);
      (* baseline unsolved: excluded from Sp, counted in +Solved *)
    ]
  in
  let s = Report.summarize comparisons Ivan.Full in
  Alcotest.(check int) "cases" 3 s.Report.cases;
  Alcotest.(check int) "base solved" 2 s.Report.base_solved;
  Alcotest.(check int) "tech solved" 3 s.Report.tech_solved;
  Alcotest.(check int) "+solved" 1 s.Report.plus_solved;
  Alcotest.(check (float 1e-9)) "sp time" 2.0 s.Report.sp_time;
  Alcotest.(check (float 1e-9)) "sp calls" (18.0 /. 13.0) s.Report.sp_calls;
  Alcotest.(check (float 1e-9)) "geomean time" 2.0 s.Report.geomean_time

let test_report_verdict_counts () =
  let m verdict =
    {
      Runner.verdict;
      calls = 1;
      seconds = 0.0;
      tree_size = 1;
      tree_leaves = 1;
      retries = 0;
      fallback_bounds = 0;
      faults_absorbed = 0;
      certs_emitted = 0;
      certs_unavailable = 0;
      artifact = None;
    }
  in
  let v, c, u =
    Report.verdict_counts
      [ m Bab.Proved; m Bab.Proved; m (Bab.Disproved [| 0.0 |]); m Bab.Exhausted ]
  in
  Alcotest.(check (triple int int int)) "v/c/u" (2, 1, 1) (v, c, u)

let test_report_geomean () =
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Report.geomean []);
  Alcotest.(check (float 1e-9)) "pair" 2.0 (Report.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "single" 3.0 (Report.geomean [ 3.0 ])

let test_report_split_hard () =
  let dummy_prop =
    Prop.make ~name:"d"
      ~input:(Ivan_spec.Box.make ~lo:(Vec.zeros 1) ~hi:(Vec.create 1 1.0))
      ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0
  in
  let with_tree_size id tree_size =
    {
      Runner.instance = { Workload.id; prop = dummy_prop };
      original =
        {
          Runner.verdict = Bab.Proved;
          calls = 1;
          seconds = 0.0;
          tree_size;
          tree_leaves = 1;
          retries = 0;
          fallback_bounds = 0;
          faults_absorbed = 0;
          certs_emitted = 0;
          certs_unavailable = 0;
          artifact = None;
        };
      baseline =
        {
          Runner.verdict = Bab.Proved;
          calls = 1;
          seconds = 0.0;
          tree_size = 1;
          tree_leaves = 1;
          retries = 0;
          fallback_bounds = 0;
          faults_absorbed = 0;
          certs_emitted = 0;
          certs_unavailable = 0;
          artifact = None;
        };
      techniques = [];
    }
  in
  let easy, hard = Report.split_hard [ with_tree_size 0 1; with_tree_size 1 5; with_tree_size 2 7 ] in
  Alcotest.(check int) "easy" 2 (List.length easy);
  Alcotest.(check int) "hard" 1 (List.length hard)



(* ---------------- Tune ---------------- *)

module Tune = Ivan_harness.Tune

let test_tune_search () =
  let net = Lazy.force net in
  let updated = Quant.network Quant.Int16 net in
  let setting =
    Runner.classifier_setting ~budget:{ Bab.max_analyzer_calls = 120; max_seconds = 10.0 } ()
  in
  let instances = Workload.robustness_instances ~spec ~net ~count:3 in
  let outcome = Tune.search ~trials:5 ~setting ~technique:Ivan.Full ~net ~updated instances in
  Alcotest.(check int) "five trials" 5 (List.length outcome.Tune.trials);
  (* First trial is the paper default. *)
  (match outcome.Tune.trials with
  | first :: _ ->
      Alcotest.(check (float 1e-12)) "default alpha" 0.25 first.Tune.alpha;
      Alcotest.(check (float 1e-12)) "default theta" 0.01 first.Tune.theta
  | [] -> Alcotest.fail "no trials");
  (* Best is at least as good as every trial. *)
  List.iter
    (fun (t : Tune.trial) ->
      Alcotest.(check bool) "best dominates" true
        (outcome.Tune.best.Tune.speedup >= t.Tune.speedup))
    outcome.Tune.trials;
  (* Hyperparameters stay in range. *)
  List.iter
    (fun (t : Tune.trial) ->
      Alcotest.(check bool) "alpha in [0,1]" true (t.Tune.alpha >= 0.0 && t.Tune.alpha <= 1.0);
      Alcotest.(check bool) "theta >= 0" true (t.Tune.theta >= 0.0))
    outcome.Tune.trials

let test_tune_empty () =
  let net = Lazy.force net in
  let setting = Runner.classifier_setting () in
  Alcotest.check_raises "empty" (Invalid_argument "Tune.search: empty calibration workload")
    (fun () ->
      ignore (Tune.search ~setting ~technique:Ivan.Full ~net ~updated:net []))



(* ---------------- Parallel runner ---------------- *)

let test_parallel_matches_sequential () =
  let net = Lazy.force net in
  let updated = Quant.network Quant.Int16 net in
  let setting =
    Runner.classifier_setting ~budget:{ Bab.max_analyzer_calls = 150; max_seconds = 20.0 } ()
  in
  let instances = Workload.robustness_instances ~spec ~net ~count:6 in
  let run domains =
    Runner.run_all ~domains setting ~net ~updated ~techniques:[ Ivan.Full ] ~alpha:0.25
      ~theta:0.01 instances
  in
  let seq = run 1 and par = run 3 in
  List.iter2
    (fun (a : Runner.comparison) (b : Runner.comparison) ->
      Alcotest.(check int) "same instance" a.Runner.instance.Workload.id
        b.Runner.instance.Workload.id;
      (* Deterministic: identical call counts and verdict kinds. *)
      Alcotest.(check int) "baseline calls equal" a.Runner.baseline.Runner.calls
        b.Runner.baseline.Runner.calls;
      let kind (m : Runner.measurement) =
        match m.Runner.verdict with Bab.Proved -> 0 | Bab.Disproved _ -> 1 | Bab.Exhausted -> 2
      in
      Alcotest.(check int) "baseline verdicts equal" (kind a.Runner.baseline)
        (kind b.Runner.baseline);
      let am = Report.technique_measurement a Ivan.Full
      and bm = Report.technique_measurement b Ivan.Full in
      Alcotest.(check int) "ivan calls equal" am.Runner.calls bm.Runner.calls)
    seq par

let suite =
  [
    ("robustness instances", `Quick, test_robustness_instances);
    ("robustness instances clipped", `Quick, test_robustness_instances_clip);
    ("acas instances", `Quick, test_acas_instances);
    ("runner comparison", `Quick, test_runner_comparison);
    ("report summarize", `Quick, test_report_summarize);
    ("report verdict counts", `Quick, test_report_verdict_counts);
    ("report geomean", `Quick, test_report_geomean);
    ("report split hard", `Quick, test_report_split_hard);
    ("tune search", `Quick, test_tune_search);
    ("tune empty", `Quick, test_tune_empty);
    ("parallel matches sequential", `Quick, test_parallel_matches_sequential);
  ]
