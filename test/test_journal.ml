(* Journal framing, kill recovery, journal resume, and supervised runs. *)

module Journal = Ivan_resilience.Journal
module Supervisor = Ivan_supervise.Supervisor
module Engine = Ivan_bab.Engine
module Heuristic = Ivan_bab.Heuristic
module Analyzer = Ivan_analyzer.Analyzer

let scan_shape = Alcotest.(triple int int int)

let shape (r : Journal.recovery) =
  (List.length r.records, r.valid_bytes, r.dropped_bytes)

(* --- framing ------------------------------------------------------- *)

let test_roundtrip () =
  let buf = Buffer.create 256 in
  let w = Journal.to_buffer buf in
  Journal.append w Journal.Header "fingerprint";
  Journal.append w Journal.Step "{\"event\":\"dequeued\"}\n";
  Journal.append w Journal.Checkpoint "ivan-checkpoint 3\n...";
  Journal.append w Journal.Step "";
  Journal.close w;
  let bytes = Buffer.contents buf in
  let r = Journal.scan bytes in
  Alcotest.(check scan_shape)
    "all frames recovered, nothing dropped"
    (4, String.length bytes, 0)
    (shape r);
  Alcotest.(check (list (pair string string)))
    "kinds and payloads survive the round trip"
    [
      ("header", "fingerprint");
      ("step", "{\"event\":\"dequeued\"}\n");
      ("checkpoint", "ivan-checkpoint 3\n...");
      ("step", "");
    ]
    (List.map
       (fun (rec_ : Journal.record) ->
         (Journal.kind_name rec_.kind, rec_.payload))
       r.records)

let test_scan_empty () =
  Alcotest.(check scan_shape) "empty input" (0, 0, 0) (shape (Journal.scan ""))

let test_scan_garbage () =
  let garbage = "this is not a journal, not even close........" in
  Alcotest.(check scan_shape)
    "arbitrary bytes are all dropped"
    (0, 0, String.length garbage)
    (shape (Journal.scan garbage))

let frames payloads =
  let buf = Buffer.create 256 in
  let w = Journal.to_buffer buf in
  List.iter (fun (k, p) -> Journal.append w k p) payloads;
  Buffer.contents buf

let test_torn_tail_every_offset () =
  let two =
    frames [ (Journal.Header, "fp"); (Journal.Step, "payload-one") ]
  in
  let three = two ^ Journal.encode_frame Journal.Step "payload-two" in
  (* Cutting anywhere strictly inside the third frame must recover
     exactly the first two and drop the partial bytes. *)
  for cut = String.length two + 1 to String.length three - 1 do
    let r = Journal.scan (String.sub three 0 cut) in
    Alcotest.(check scan_shape)
      (Printf.sprintf "torn at byte %d" cut)
      (2, String.length two, cut - String.length two)
      (shape r)
  done

let test_corrupt_byte_truncates () =
  let one = frames [ (Journal.Header, "fp") ] in
  let three =
    frames
      [
        (Journal.Header, "fp");
        (Journal.Step, "payload-one");
        (Journal.Step, "payload-two");
      ]
  in
  (* Flip one byte of the second frame's payload: CRC must reject it and
     recovery must keep only the first frame. *)
  let b = Bytes.of_string three in
  let off = String.length one + 13 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF));
  let r = Journal.scan (Bytes.to_string b) in
  Alcotest.(check scan_shape)
    "recovery stops at the corrupt frame"
    (1, String.length one, String.length three - String.length one)
    (shape r)

let test_impossible_length_rejected () =
  let one = frames [ (Journal.Header, "fp") ] in
  (* Hand-build a frame claiming a payload far beyond the cap. *)
  let bogus = Bytes.of_string (Journal.encode_frame Journal.Step "x") in
  Bytes.set bogus 5 '\x7f';
  let r = Journal.scan (one ^ Bytes.to_string bogus) in
  Alcotest.(check int) "only the valid frame survives" 1
    (List.length r.records);
  Alcotest.(check int) "valid prefix length" (String.length one) r.valid_bytes

let test_last_run () =
  let records =
    [
      { Journal.kind = Journal.Header; payload = "a" };
      { Journal.kind = Journal.Step; payload = "1" };
      { Journal.kind = Journal.Header; payload = "b" };
      { Journal.kind = Journal.Step; payload = "2" };
      { Journal.kind = Journal.Checkpoint; payload = "3" };
    ]
  in
  let suffix = Journal.last_run records in
  Alcotest.(check (list string))
    "suffix from the newest header"
    [ "b"; "2"; "3" ]
    (List.map (fun (r : Journal.record) -> r.payload) suffix);
  Alcotest.(check int) "headerless journal is returned whole" 2
    (List.length (Journal.last_run (List.tl (List.tl (List.tl records)))))

let test_writer_close_semantics () =
  let buf = Buffer.create 64 in
  let w = Journal.to_buffer buf in
  Journal.append w Journal.Header "fp";
  Alcotest.(check int) "appends counted" 1 (Journal.appends w);
  Journal.close w;
  Journal.close w;
  (* idempotent *)
  match Journal.append w Journal.Step "late" with
  | () -> Alcotest.fail "append after close must raise"
  | exception Invalid_argument _ -> ()

let test_file_round_trip () =
  let path = Filename.temp_file "ivan_journal" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w = Journal.open_file path in
      Journal.append w Journal.Header "fp";
      Journal.append w Journal.Step "s";
      Journal.close w;
      match Journal.scan_file path with
      | Error msg -> Alcotest.failf "scan_file failed: %s" msg
      | Ok r ->
          Alcotest.(check int) "both frames read back" 2
            (List.length r.records);
          Alcotest.(check int) "no tail" 0 r.dropped_bytes)

let test_scan_file_missing () =
  match Journal.scan_file "/nonexistent/ivan.wal" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scan_file on a missing path must be Error"

(* --- engine journaling + resume ------------------------------------ *)

let verdict_name = function
  | Engine.Proved -> "proved"
  | Engine.Disproved _ -> "disproved"
  | Engine.Exhausted -> "exhausted"

let journaled_run ?(offset = 1.7) ?(journal_every = 4) () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset offset in
  let buf = Buffer.create 4096 in
  let journal = Journal.to_buffer buf in
  let engine =
    Engine.create
      ~analyzer:(Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~journal ~journal_every ~net ~prop ()
  in
  let run = Engine.run engine in
  Journal.close journal;
  (net, prop, run, Buffer.contents buf)

let test_journal_structure () =
  let net, prop, _run, bytes = journaled_run () in
  let r = Journal.scan bytes in
  Alcotest.(check int) "journal has no torn tail" 0 r.dropped_bytes;
  (match r.records with
  | { Journal.kind = Journal.Header; payload } :: _ ->
      Alcotest.(check string)
        "header carries the config fingerprint"
        (Engine.fingerprint ~net ~prop)
        payload
  | _ -> Alcotest.fail "first frame must be a Header");
  (match List.rev r.records with
  | { Journal.kind = Journal.Checkpoint; _ } :: _ -> ()
  | _ -> Alcotest.fail "terminal frame must be a Checkpoint")

let test_resume_full_journal () =
  let net, prop, golden, bytes = journaled_run () in
  match
    Engine.resume_journal
      ~analyzer:(Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~net ~prop bytes
  with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok (engine, info) ->
      let resumed = Engine.run engine in
      Alcotest.(check string)
        "same verdict" (verdict_name golden.verdict)
        (verdict_name resumed.verdict);
      Alcotest.(check int)
        "same analyzer calls" golden.stats.analyzer_calls
        resumed.stats.analyzer_calls;
      Alcotest.(check int)
        "replay is bookkeeping only: no calls re-made before run"
        golden.stats.analyzer_calls
        (info.replayed_calls
        + (Engine.calls engine - info.replayed_calls));
      Alcotest.(check int) "nothing dropped" 0 info.dropped_bytes

let test_resume_truncated_journal () =
  let net, prop, golden, bytes = journaled_run ~journal_every:2 () in
  let r = Journal.scan bytes in
  (* Kill roughly mid-run: keep the first half of the frames. *)
  let keep = List.length r.records / 2 in
  let cut =
    (* byte offset after the keep-th frame *)
    let rec advance bytes_seen n records =
      if n = 0 then bytes_seen
      else
        match records with
        | [] -> bytes_seen
        | (rec_ : Journal.record) :: rest ->
            advance
              (bytes_seen
              + String.length (Journal.encode_frame rec_.kind rec_.payload))
              (n - 1) rest
    in
    advance 0 keep r.records
  in
  match
    Engine.resume_journal
      ~analyzer:(Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~net ~prop
      (String.sub bytes 0 cut)
  with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok (engine, _info) ->
      let resumed = Engine.run engine in
      Alcotest.(check string)
        "killed-and-resumed run reproduces the verdict"
        (verdict_name golden.verdict)
        (verdict_name resumed.verdict);
      Alcotest.(check int)
        "and the analyzer-call count" golden.stats.analyzer_calls
        resumed.stats.analyzer_calls

let test_resume_wrong_fingerprint () =
  let _net, _prop, _run, bytes = journaled_run ~offset:1.7 () in
  let net = Fixtures.paper_net () in
  let other = Fixtures.paper_prop_with_offset 1.3 in
  match
    Engine.resume_journal
      ~analyzer:(Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~net ~prop:other bytes
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume against the wrong property must be Error"

let test_resume_empty_journal () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.7 in
  match
    Engine.resume_journal
      ~analyzer:(Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~net ~prop ""
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume from an empty journal must be Error"

(* --- supervisor ----------------------------------------------------- *)

let test_supervise_clean_run () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.7 in
  let engine =
    Engine.create
      ~analyzer:(Analyzer.zonotope ())
      ~heuristic:Heuristic.input_smear ~net ~prop ()
  in
  let outcome =
    Supervisor.supervise ~limits:Supervisor.default_limits
      ~heuristic:Heuristic.input_smear ~net ~prop engine
  in
  Alcotest.(check string) "clean verdict" "proved"
    (verdict_name outcome.run.verdict);
  Alcotest.(check int) "no escalations" 0 (List.length outcome.escalations);
  (* a short run may finish before the first scheduled sample *)
  Alcotest.(check bool) "check counter sane" true (outcome.checks >= 0)

let test_supervise_deadline_ladder () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.7 in
  let buf = Buffer.create 4096 in
  let journal = Journal.to_buffer buf in
  let engine =
    Engine.create
      ~analyzer:(Analyzer.interval ())
      ~heuristic:Heuristic.input_smear ~journal ~net ~prop ()
  in
  let limits =
    {
      Supervisor.max_seconds = 0.0 (* breached from the first check *);
      max_major_words = infinity;
      check_every = 1;
      grace_seconds = 0.0;
    }
  in
  let outcome =
    Supervisor.supervise ~limits
      ~fallbacks:[ Analyzer.interval () ]
      ~heuristic:Heuristic.input_smear ~journal ~net ~prop engine
  in
  Journal.close journal;
  Alcotest.(check string) "cancelled cleanly" "exhausted"
    (verdict_name outcome.run.verdict);
  let names =
    List.map
      (function
        | Supervisor.Compacted _ -> "compacted"
        | Supervisor.Degraded _ -> "degraded"
        | Supervisor.Shed _ -> "shed"
        | Supervisor.Cancelled _ -> "cancelled")
      outcome.escalations
  in
  Alcotest.(check bool) "ladder ends in a cancel" true
    (List.mem "cancelled" names);
  Alcotest.(check bool) "degradation was attempted first" true
    (List.mem "degraded" names);
  (* The journal must be intact — no torn tail — and resumable even
     after the ladder rebuilt and then cancelled the engine. *)
  let r = Journal.scan (Buffer.contents buf) in
  Alcotest.(check int) "journal flushed cleanly" 0 r.dropped_bytes;
  match
    Engine.resume_journal
      ~analyzer:(Analyzer.interval ())
      ~heuristic:Heuristic.input_smear ~net ~prop (Buffer.contents buf)
  with
  | Error msg -> Alcotest.failf "post-cancel journal not resumable: %s" msg
  | Ok _ -> ()

let test_mb_words () =
  (* 1 MB = 131072 8-byte words. *)
  Alcotest.(check (float 1e-9)) "mb_words" 131072.0 (Supervisor.mb_words 1.0)

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_roundtrip;
    Alcotest.test_case "scan: empty input" `Quick test_scan_empty;
    Alcotest.test_case "scan: garbage input" `Quick test_scan_garbage;
    Alcotest.test_case "scan: torn tail at every offset" `Quick
      test_torn_tail_every_offset;
    Alcotest.test_case "scan: corrupt byte truncates" `Quick
      test_corrupt_byte_truncates;
    Alcotest.test_case "scan: impossible length rejected" `Quick
      test_impossible_length_rejected;
    Alcotest.test_case "last_run picks the newest header" `Quick
      test_last_run;
    Alcotest.test_case "writer close semantics" `Quick
      test_writer_close_semantics;
    Alcotest.test_case "file round trip" `Quick test_file_round_trip;
    Alcotest.test_case "scan_file: missing path" `Quick test_scan_file_missing;
    Alcotest.test_case "engine journal structure" `Quick
      test_journal_structure;
    Alcotest.test_case "resume from a complete journal" `Quick
      test_resume_full_journal;
    Alcotest.test_case "resume from a truncated journal" `Quick
      test_resume_truncated_journal;
    Alcotest.test_case "resume rejects a foreign fingerprint" `Quick
      test_resume_wrong_fingerprint;
    Alcotest.test_case "resume rejects an empty journal" `Quick
      test_resume_empty_journal;
    Alcotest.test_case "supervise: clean run" `Quick test_supervise_clean_run;
    Alcotest.test_case "supervise: deadline escalation ladder" `Quick
      test_supervise_deadline_ladder;
    Alcotest.test_case "mb_words" `Quick test_mb_words;
  ]
