(* Fault-matrix sweep: seeds x fault kinds x verification stacks.

   Property checked on every schedule: a verification run under
   injected faults (LP blowups, NaN/inf bounds, latency, transient
   exceptions) never escapes an exception, never flips a decisive
   verdict relative to the fault-free reference run — it may only
   weaken to Exhausted — reports only concretely-genuine
   counterexamples, and always leaves a well-formed specification
   tree.

   Run via the alias:  dune build @fault-matrix *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Tree = Ivan_spectree.Tree
module Fault = Ivan_resilience.Fault
module Cert = Ivan_cert.Cert

(* The paper's running example (Fig. 2), self-contained: this
   executable builds in its own directory and cannot see test/
   fixtures. *)
let net =
  let dense ?(activation = Layer.Relu) weights bias =
    Layer.make (Layer.Dense { weights = Mat.of_arrays weights; bias }) activation
  in
  Network.make
    [
      dense [| [| 2.0; -1.0 |]; [| 1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense [| [| 1.0; -2.0 |]; [| -1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense ~activation:Layer.Identity [| [| 1.0; -1.0 |] |] [| 0.0 |];
    ]

(* psi = (o1 + k >= 0) over [0,1]^2; the exact minimum of o1 is -1.5,
   so k = 1.3 is violated and k = 1.7 holds. *)
let prop offset =
  let input = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  Prop.make
    ~name:(Printf.sprintf "paper+%g" offset)
    ~input ~c:(Vec.of_list [ 1.0 ]) ~offset

let stacks =
  [
    ("classifier", Analyzer.lp_triangle (), Heuristic.zono_coeff);
    ("acas", Analyzer.zonotope (), Heuristic.input_smear);
  ]

let budget = { Bab.max_analyzer_calls = 300; max_seconds = 20.0 }

let schedules = ref 0
let injected = ref 0
let weakened = ref 0
let failures = ref 0

let fail label fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-40s %s\n%!" label msg)
    fmt

let run_schedule label analyzer heuristic property reference plan =
  incr schedules;
  match
    Fault.with_lp_faults plan (fun () ->
        Bab.verify
          ~analyzer:(Fault.wrap_analyzer plan analyzer)
          ~heuristic ~budget ~policy:Analyzer.default_policy ~net ~prop:property ())
  with
  | exception e -> fail label "uncaught exception %s" (Printexc.to_string e)
  | faulted -> (
      injected := !injected + Fault.injected plan;
      (match (reference.Bab.verdict, faulted.Bab.verdict) with
      | Bab.Proved, Bab.Proved | Bab.Disproved _, Bab.Disproved _ | Bab.Exhausted, _ -> ()
      | (Bab.Proved | Bab.Disproved _), Bab.Exhausted -> incr weakened
      | _ -> fail label "verdict flipped under faults");
      (match faulted.Bab.verdict with
      | Bab.Disproved x when not (Analyzer.check_concrete net ~prop:property x) ->
          fail label "counterexample does not reproduce concretely"
      | _ -> ());
      if not (Tree.well_formed faulted.Bab.tree) then fail label "malformed tree")

(* Certificate-corruption schedules.  Property checked: injected
   certificate faults can lose certificates (the leaf is counted
   unavailable, the artifact fails the independent checker) but never
   forge one — a corrupted artifact is always rejected, and the verdict
   itself never changes. *)
let certificate_schedules () =
  let property = prop 1.7 in
  let certified ?plan () =
    let analyzer = Analyzer.lp_triangle ~certify:true () in
    let analyzer, wrap =
      match plan with
      | None -> (analyzer, fun f -> f ())
      | Some p -> (Fault.wrap_analyzer p analyzer, Fault.with_lp_faults p)
    in
    wrap (fun () ->
        Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~budget ~certify:true ~net
          ~prop:property ())
  in
  (* Fault-free reference: every leaf certified, artifact checks. *)
  let reference = certified () in
  incr schedules;
  let label = "certificates fault-free" in
  (match reference.Bab.verdict with
  | Bab.Proved -> ()
  | _ -> fail label "reference run did not prove the property");
  (match reference.Bab.artifact with
  | None -> fail label "certified run produced no artifact"
  | Some artifact -> (
      (match Cert.check_artifact artifact with
      | Ok _ -> ()
      | Error msg -> fail label "pristine artifact rejected: %s" msg);
      (* Post-hoc corruption of a checked artifact: both kinds must be
         rejected by the independent checker. *)
      List.iter
        (fun kind ->
          incr schedules;
          let label = Printf.sprintf "certificates corrupt-artifact %s" (Fault.kind_name kind) in
          match Cert.check_artifact (Fault.corrupt_artifact kind artifact) with
          | Ok _ -> fail label "corrupted artifact was accepted"
          | Error _ -> ())
        [ Fault.Cert_perturb_dual; Fault.Cert_drop ]));
  (* In-flight corruption at the analyzer boundary: the engine's
     emission-time self-check must reject damaged evidence (certificates
     are lost, never forged) while the verdict stays Proved. *)
  List.iter
    (fun kind ->
      for seed = 1 to 3 do
        incr schedules;
        let label =
          Printf.sprintf "certificates in-flight %s seed=%d" (Fault.kind_name kind) seed
        in
        let plan = Fault.plan ~analyzer_rate:1.0 ~kinds:[ kind ] ~seed () in
        match certified ~plan () with
        | exception e -> fail label "uncaught exception %s" (Printexc.to_string e)
        | faulted -> (
            injected := !injected + Fault.injected plan;
            (match faulted.Bab.verdict with
            | Bab.Proved -> ()
            | _ -> fail label "certificate fault changed the verdict");
            if faulted.Bab.stats.Bab.certs_unavailable = 0 then
              fail label "no certificate was lost despite rate-1.0 corruption";
            match faulted.Bab.artifact with
            | None -> fail label "certified run produced no artifact"
            | Some artifact -> (
                match Cert.check_artifact artifact with
                | Ok _ -> fail label "artifact with lost certificates was accepted"
                | Error _ -> ()))
      done)
    [ Fault.Cert_perturb_dual; Fault.Cert_drop ]

let () =
  List.iter
    (fun (stack, analyzer, heuristic) ->
      List.iter
        (fun offset ->
          let property = prop offset in
          let reference = Bab.verify ~analyzer ~heuristic ~budget ~net ~prop:property () in
          (* Mixed-kind schedules over many seeds. *)
          for seed = 1 to 15 do
            run_schedule
              (Printf.sprintf "%s k=%g mixed seed=%d" stack offset seed)
              analyzer heuristic property reference
              (Fault.plan ~lp_rate:0.15 ~analyzer_rate:0.15 ~seed ());
          done;
          (* Each fault kind in isolation, at a higher rate. *)
          List.iter
            (fun kind ->
              for seed = 1 to 3 do
                run_schedule
                  (Printf.sprintf "%s k=%g %s seed=%d" stack offset (Fault.kind_name kind) seed)
                  analyzer heuristic property reference
                  (Fault.plan ~lp_rate:0.25 ~analyzer_rate:0.25 ~kinds:[ kind ] ~seed ())
              done)
            Fault.all_kinds)
        [ 1.3; 1.7 ])
    stacks;
  certificate_schedules ();
  Printf.printf "fault-matrix: %d schedules, %d faults injected, %d weakened to unknown, %d failures\n"
    !schedules !injected !weakened !failures;
  if !failures > 0 then exit 1
