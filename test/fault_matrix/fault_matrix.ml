(* Fault-matrix sweep: seeds x fault kinds x verification stacks.

   Property checked on every schedule: a verification run under
   injected faults (LP blowups, NaN/inf bounds, latency, transient
   exceptions) never escapes an exception, never flips a decisive
   verdict relative to the fault-free reference run — it may only
   weaken to Exhausted — reports only concretely-genuine
   counterexamples, and always leaves a well-formed specification
   tree.

   Run via the alias:  dune build @fault-matrix *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Tree = Ivan_spectree.Tree
module Fault = Ivan_resilience.Fault

(* The paper's running example (Fig. 2), self-contained: this
   executable builds in its own directory and cannot see test/
   fixtures. *)
let net =
  let dense ?(activation = Layer.Relu) weights bias =
    Layer.make (Layer.Dense { weights = Mat.of_arrays weights; bias }) activation
  in
  Network.make
    [
      dense [| [| 2.0; -1.0 |]; [| 1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense [| [| 1.0; -2.0 |]; [| -1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense ~activation:Layer.Identity [| [| 1.0; -1.0 |] |] [| 0.0 |];
    ]

(* psi = (o1 + k >= 0) over [0,1]^2; the exact minimum of o1 is -1.5,
   so k = 1.3 is violated and k = 1.7 holds. *)
let prop offset =
  let input = Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ 1.0; 1.0 ]) in
  Prop.make
    ~name:(Printf.sprintf "paper+%g" offset)
    ~input ~c:(Vec.of_list [ 1.0 ]) ~offset

let stacks =
  [
    ("classifier", Analyzer.lp_triangle (), Heuristic.zono_coeff);
    ("acas", Analyzer.zonotope (), Heuristic.input_smear);
  ]

let budget = { Bab.max_analyzer_calls = 300; max_seconds = 20.0 }

let schedules = ref 0
let injected = ref 0
let weakened = ref 0
let failures = ref 0

let fail label fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-40s %s\n%!" label msg)
    fmt

let run_schedule label analyzer heuristic property reference plan =
  incr schedules;
  match
    Fault.with_lp_faults plan (fun () ->
        Bab.verify
          ~analyzer:(Fault.wrap_analyzer plan analyzer)
          ~heuristic ~budget ~policy:Analyzer.default_policy ~net ~prop:property ())
  with
  | exception e -> fail label "uncaught exception %s" (Printexc.to_string e)
  | faulted -> (
      injected := !injected + Fault.injected plan;
      (match (reference.Bab.verdict, faulted.Bab.verdict) with
      | Bab.Proved, Bab.Proved | Bab.Disproved _, Bab.Disproved _ | Bab.Exhausted, _ -> ()
      | (Bab.Proved | Bab.Disproved _), Bab.Exhausted -> incr weakened
      | _ -> fail label "verdict flipped under faults");
      (match faulted.Bab.verdict with
      | Bab.Disproved x when not (Analyzer.check_concrete net ~prop:property x) ->
          fail label "counterexample does not reproduce concretely"
      | _ -> ());
      if not (Tree.well_formed faulted.Bab.tree) then fail label "malformed tree")

let () =
  List.iter
    (fun (stack, analyzer, heuristic) ->
      List.iter
        (fun offset ->
          let property = prop offset in
          let reference = Bab.verify ~analyzer ~heuristic ~budget ~net ~prop:property () in
          (* Mixed-kind schedules over many seeds. *)
          for seed = 1 to 15 do
            run_schedule
              (Printf.sprintf "%s k=%g mixed seed=%d" stack offset seed)
              analyzer heuristic property reference
              (Fault.plan ~lp_rate:0.15 ~analyzer_rate:0.15 ~seed ());
          done;
          (* Each fault kind in isolation, at a higher rate. *)
          List.iter
            (fun kind ->
              for seed = 1 to 3 do
                run_schedule
                  (Printf.sprintf "%s k=%g %s seed=%d" stack offset (Fault.kind_name kind) seed)
                  analyzer heuristic property reference
                  (Fault.plan ~lp_rate:0.25 ~analyzer_rate:0.25 ~kinds:[ kind ] ~seed ())
              done)
            Fault.all_kinds)
        [ 1.3; 1.7 ])
    stacks;
  Printf.printf "fault-matrix: %d schedules, %d faults injected, %d weakened to unknown, %d failures\n"
    !schedules !injected !weakened !failures;
  if !failures > 0 then exit 1
