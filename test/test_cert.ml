(* Tests for the trusted proof checker: exact dyadic rationals, the
   weak-duality and Farkas checks on hand-built LPs, artifact round
   trips, and adversarial certificate corruption — every forged or
   transplanted certificate must be rejected with a precise error. *)

module Q = Ivan_cert.Q
module Cert = Ivan_cert.Cert
module Lp = Ivan_lp.Lp
module Vec = Ivan_tensor.Vec
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Quant = Ivan_nn.Quant
module Zoo = Ivan_data.Zoo
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Workload = Ivan_harness.Workload
module Runner = Ivan_harness.Runner
module Fault = Ivan_resilience.Fault

(* ---------------- Exact dyadic rationals ---------------- *)

let test_q_exactness () =
  (* Exact decoding does not round: the exact sum of the rationals
     behind 0.1 and 0.2 is neither the float 0.3 nor the float
     0.1 +. 0.2 (both are rounded). *)
  let a = Q.of_float 0.1 and b = Q.of_float 0.2 in
  let s = Q.add a b in
  Alcotest.(check bool) "0.1 + 0.2 <> float 0.3" false (Q.equal s (Q.of_float 0.3));
  Alcotest.(check bool) "0.1 + 0.2 <> rounded float sum" false
    (Q.equal s (Q.of_float (0.1 +. 0.2)));
  (* But exactly representable arithmetic is exact. *)
  Alcotest.(check bool) "0.25 + 0.5 = 0.75" true
    (Q.equal (Q.add (Q.of_float 0.25) (Q.of_float 0.5)) (Q.of_float 0.75));
  Alcotest.(check bool) "3 * 0.5 = 1.5" true
    (Q.equal (Q.mul (Q.of_int 3) (Q.of_float 0.5)) (Q.of_float 1.5))

let test_q_subnormals () =
  let tiny = Float.of_string "0x1p-1074" in
  let q = Q.of_float tiny in
  Alcotest.(check int) "positive" 1 (Q.sign q);
  Alcotest.(check bool) "doubling is exact" true
    (Q.equal (Q.add q q) (Q.of_float (Float.of_string "0x1p-1073")));
  Alcotest.(check bool) "smaller than epsilon" true (Q.compare q (Q.of_float epsilon_float) < 0)

let test_q_signs_and_compare () =
  let m = Q.of_float (-1.5) in
  Alcotest.(check int) "negative sign" (-1) (Q.sign m);
  Alcotest.(check bool) "below zero" true (Q.compare m Q.zero < 0);
  Alcotest.(check bool) "neg involution" true (Q.equal (Q.neg (Q.neg m)) m);
  Alcotest.(check bool) "sub to zero" true (Q.is_zero (Q.sub m m));
  Alcotest.(check bool) "both zeros collapse" true (Q.is_zero (Q.of_float (-0.0)));
  Alcotest.(check bool) "ordering" true (Q.compare (Q.of_int (-2)) (Q.of_float (-1.5)) < 0)

let test_q_non_finite () =
  Alcotest.(check bool) "nan" true (Q.of_float_opt Float.nan = None);
  Alcotest.(check bool) "inf" true (Q.of_float_opt Float.infinity = None);
  Alcotest.(check bool) "-inf" true (Q.of_float_opt Float.neg_infinity = None);
  Alcotest.check_raises "of_float nan" (Invalid_argument "Q.of_float: not finite") (fun () ->
      ignore (Q.of_float Float.nan))

let test_q_to_string () =
  Alcotest.(check string) "zero" "0" (Q.to_string Q.zero);
  Alcotest.(check string) "three" "0x3" (Q.to_string (Q.of_int 3));
  Alcotest.(check string) "minus three" "-0x3" (Q.to_string (Q.of_int (-3)));
  (* Floats decode with their full 53-bit mantissa (no normalization). *)
  Alcotest.(check string) "one" "0x400000*2^-22" (Q.to_string (Q.of_float 1.0))

(* ---------------- Hand-built LP checks ---------------- *)

(* min x  s.t.  x >= 3, x in [0, 10]: the row multiplier 1 certifies the
   bound 3 by weak duality. *)
let ge_snapshot () =
  {
    Cert.Snapshot.nvars = 1;
    obj = [| 1.0 |];
    lo = [| 0.0 |];
    hi = [| 10.0 |];
    rows = [| { Cert.Snapshot.idx = [| 0 |]; cf = [| 1.0 |]; cmp = Lp.Ge; rhs = 3.0 } |];
  }

let test_check_dual_hand_built () =
  let s = ge_snapshot () in
  (match Cert.check_dual s ~y:[| 1.0 |] ~threshold:(Q.of_int 3) with
  | Ok bound -> Alcotest.(check bool) "bound is exactly 3" true (Q.equal bound (Q.of_int 3))
  | Error msg -> Alcotest.failf "valid dual rejected: %s" msg);
  (* A weaker multiplier certifies a weaker bound, still soundly. *)
  (match Cert.check_dual s ~y:[| 0.5 |] ~threshold:(Q.of_float 1.5) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "weaker dual rejected: %s" msg);
  (* ... but not the stronger threshold. *)
  match Cert.check_dual s ~y:[| 0.5 |] ~threshold:(Q.of_int 3) with
  | Ok _ -> Alcotest.fail "threshold 3 certified by a bound of 1.5"
  | Error _ -> ()

let test_check_dual_wrong_sign () =
  let s = ge_snapshot () in
  match Cert.check_dual s ~y:[| -1.0 |] ~threshold:(Q.of_int 0) with
  | Ok _ -> Alcotest.fail "negative multiplier accepted on a Ge row"
  | Error msg ->
      Alcotest.(check bool) "mentions the sign" true
        (String.length msg > 0 && Option.is_some (String.index_opt msg 's'))

let test_implied_bound_infinite_escape () =
  (* Unbounded variable pushed by a reduced cost: the implied bound
     would be -inf, which the checker must refuse to certify. *)
  let s = { (ge_snapshot ()) with Cert.Snapshot.hi = [| Float.infinity |]; obj = [| -1.0 |] } in
  match Cert.implied_bound s ~y:[| 1.0 |] with
  | Ok b -> Alcotest.failf "certified %s against an infinite bound" (Q.to_string b)
  | Error _ -> ()

let test_check_farkas_hand_built () =
  (* x >= 2 with x in [0, 1] is infeasible; multiplier 1 shows it. *)
  let s =
    {
      Cert.Snapshot.nvars = 1;
      obj = [| 0.0 |];
      lo = [| 0.0 |];
      hi = [| 1.0 |];
      rows = [| { Cert.Snapshot.idx = [| 0 |]; cf = [| 1.0 |]; cmp = Lp.Ge; rhs = 2.0 } |];
    }
  in
  (match Cert.check_farkas s ~y:[| 1.0 |] with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid Farkas witness rejected: %s" msg);
  (* The zero vector proves nothing. *)
  (match Cert.check_farkas s ~y:[| 0.0 |] with
  | Ok () -> Alcotest.fail "zero Farkas witness accepted"
  | Error _ -> ());
  (* A satisfiable system admits no witness: any admissible y yields a
     non-positive bound. *)
  let sat = { s with Cert.Snapshot.rows = [| { (s.rows.(0)) with Cert.Snapshot.rhs = 0.5 } |] } in
  match Cert.check_farkas sat ~y:[| 1.0 |] with
  | Ok () -> Alcotest.fail "Farkas witness accepted for a feasible system"
  | Error _ -> ()

(* ---------------- Golden certified run ---------------- *)

(* The paper's running example: min of o1 over [0,1]^2 is -1.5, so
   psi = (o1 + 1.6 >= 0) holds — tightly enough that the root LP cannot
   close it alone, forcing at least one split (two certified leaves). *)
let paper_prop ?(hi = 1.0) ?(offset = 1.6) () =
  Prop.make ~name:"paper-cert"
    ~input:(Box.make ~lo:(Vec.of_list [ 0.0; 0.0 ]) ~hi:(Vec.of_list [ hi; 1.0 ]))
    ~c:(Vec.of_list [ 1.0 ]) ~offset

let certified_run ?hi ?offset () =
  let prop = paper_prop ?hi ?offset () in
  let run =
    Bab.verify
      ~analyzer:(Analyzer.lp_triangle ~warm:true ~certify:true ())
      ~heuristic:Heuristic.zono_coeff ~certify:true ~net:(Fixtures.paper_net ()) ~prop ()
  in
  (match run.Bab.verdict with
  | Bab.Proved -> ()
  | _ -> Alcotest.fail "paper property did not prove");
  match run.Bab.artifact with
  | Some a -> (run, a)
  | None -> Alcotest.fail "certified run emitted no artifact"

let expect_invalid name artifact =
  match Cert.check_artifact artifact with
  | Ok _ -> Alcotest.failf "%s: corrupted artifact was accepted" name
  | Error msg ->
      if String.length msg = 0 then Alcotest.failf "%s: empty rejection message" name

let test_golden_run_certifies () =
  let run, artifact = certified_run () in
  Alcotest.(check int) "no cert went missing" 0 run.Bab.stats.Bab.certs_unavailable;
  Alcotest.(check bool) "every leaf certified" true (run.Bab.stats.Bab.certs_emitted >= 1);
  match Cert.check_artifact artifact with
  | Ok report ->
      Alcotest.(check int) "one certificate per tree leaf" report.Cert.leaves
        (List.length artifact.Cert.Artifact.leaves)
  | Error msg -> Alcotest.failf "pristine artifact rejected: %s" msg

let test_artifact_round_trip () =
  let _, artifact = certified_run () in
  let text = Cert.Artifact.to_string artifact in
  let artifact' = Cert.Artifact.of_string text in
  (match Cert.check_artifact artifact' with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "re-parsed artifact rejected: %s" msg);
  Alcotest.(check string) "print/parse/print is stable" text (Cert.Artifact.to_string artifact')

(* ---------------- Adversarial mutations ---------------- *)

(* Rewrite the witness multipliers of the [i]th leaf. *)
let mutate_leaf_witness artifact i f =
  let leaves =
    List.mapi
      (fun j (l : Cert.leaf) ->
        if j <> i then l
        else
          let witness =
            match l.Cert.evidence.Cert.witness with
            | Lp.Certificate.Dual y -> Lp.Certificate.Dual (f (Array.copy y))
            | Lp.Certificate.Farkas y -> Lp.Certificate.Farkas (f (Array.copy y))
          in
          { l with Cert.evidence = { l.Cert.evidence with Cert.witness } })
      artifact.Cert.Artifact.leaves
  in
  { artifact with Cert.Artifact.leaves }

let first_nonzero y =
  let rec go i = if i >= Array.length y then None else if y.(i) <> 0.0 then Some i else go (i + 1) in
  go 0

let test_every_leaf_mutation_rejected () =
  (* Corrupting any single leaf certificate — a sign-constrained
     multiplier pushed out of its half-space, or the certificate dropped
     when the snapshot has only equality rows — invalidates the whole
     artifact. *)
  let _, artifact = certified_run () in
  let n = List.length artifact.Cert.Artifact.leaves in
  Alcotest.(check bool) "at least two leaves" true (n >= 2);
  for i = 0 to n - 1 do
    let mutated =
      {
        artifact with
        Cert.Artifact.leaves =
          List.concat
            (List.mapi
               (fun j (l : Cert.leaf) ->
                 if j <> i then [ l ]
                 else
                   match Fault.corrupt_evidence Fault.Cert_perturb_dual l.Cert.evidence with
                   | Some evidence -> [ { l with Cert.evidence } ]
                   | None -> [] (* all-equality snapshot: drop instead *))
               artifact.Cert.Artifact.leaves);
      }
    in
    expect_invalid (Printf.sprintf "corrupted leaf %d" i) mutated
  done

let test_bit_flip_rejected () =
  (* Flip a high exponent bit of one multiplier: the value stays finite
     and sign-admissible but huge, so the exactly recomputed bound
     collapses far below the threshold. *)
  let _, artifact = certified_run () in
  let mutated =
    mutate_leaf_witness artifact 0 (fun y ->
        (match first_nonzero y with
        | Some j -> y.(j) <- Int64.float_of_bits (Int64.logxor (Int64.bits_of_float y.(j)) 0x4000_0000_0000_0000L)
        | None -> ());
        y)
  in
  expect_invalid "exponent bit flip" mutated

let test_deleted_leaf_rejected () =
  let _, artifact = certified_run () in
  let dropped =
    { artifact with Cert.Artifact.leaves = List.tl artifact.Cert.Artifact.leaves }
  in
  (match Cert.check_artifact dropped with
  | Ok _ -> Alcotest.fail "artifact with a deleted leaf accepted"
  | Error msg ->
      Alcotest.(check bool) "names the uncertified leaf" true
        (String.length msg >= 14 && String.sub msg 0 4 = "leaf"))

let test_rekeyed_leaves_rejected () =
  (* Swap the node bindings of the first two certificates: each now
     claims the other leaf's split path, which the fingerprint check
     refuses. *)
  let _, artifact = certified_run () in
  match artifact.Cert.Artifact.leaves with
  | a :: b :: rest ->
      let swapped =
        { a with Cert.node = b.Cert.node } :: { b with Cert.node = a.Cert.node } :: rest
      in
      expect_invalid "re-keyed leaves" { artifact with Cert.Artifact.leaves = swapped }
  | _ -> Alcotest.fail "expected at least two leaves"

let test_transplanted_artifact_rejected () =
  (* Re-key a whole proof to a different property: the certificates'
     snapshots are bound to the original input box bit-for-bit, so
     every leaf check fails on the narrowed box. *)
  let _, artifact = certified_run () in
  let transplanted = { artifact with Cert.Artifact.prop = paper_prop ~hi:0.9 () } in
  expect_invalid "transplanted proof" transplanted

let test_transplanted_evidence_rejected () =
  (* Transplant evidence grown under a narrower box into the wide-box
     proof: the input-binding check rejects each foreign snapshot. *)
  let _, wide = certified_run () in
  let _, narrow = certified_run ~hi:0.9 () in
  match narrow.Cert.Artifact.leaves with
  | foreign :: _ ->
      let leaves =
        List.map
          (fun (l : Cert.leaf) -> { l with Cert.evidence = foreign.Cert.evidence })
          wide.Cert.Artifact.leaves
      in
      expect_invalid "transplanted evidence" { wide with Cert.Artifact.leaves = leaves }
  | [] -> Alcotest.fail "narrow-box run emitted no certificates"

(* ---------------- Determinism across domains ---------------- *)

let test_parallel_certified_runs () =
  (* Certification under the parallel runner: verdicts match the
     sequential run and every emitted artifact passes the checker. *)
  let spec = Zoo.fcn_mnist in
  let net = Zoo.train spec in
  let updated = Quant.network Quant.Int16 net in
  let setting =
    Runner.classifier_setting
      ~budget:{ Bab.max_analyzer_calls = 150; max_seconds = 20.0 }
      ~certify:true ()
  in
  let instances = Workload.robustness_instances ~spec ~net ~count:4 in
  let run domains =
    Runner.run_all ~domains setting ~net ~updated ~techniques:[ Ivan.Full ] ~alpha:0.25
      ~theta:0.01 instances
  in
  let seq = run 1 and par = run 4 in
  let kind (m : Runner.measurement) =
    match m.Runner.verdict with Bab.Proved -> 0 | Bab.Disproved _ -> 1 | Bab.Exhausted -> 2
  in
  let check_measurement label (m : Runner.measurement) =
    match m.Runner.artifact with
    | None ->
        (* Only an exhausted run may fail to produce an artifact under
           certify. *)
        Alcotest.(check int) (label ^ " artifact only missing when exhausted") 2 (kind m)
    | Some artifact -> (
        match Cert.check_artifact artifact with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "%s: artifact rejected: %s" label msg)
  in
  List.iter2
    (fun (a : Runner.comparison) (b : Runner.comparison) ->
      Alcotest.(check int) "verdicts identical across domains" (kind a.Runner.baseline)
        (kind b.Runner.baseline);
      Alcotest.(check int) "emitted counts identical across domains"
        a.Runner.baseline.Runner.certs_emitted b.Runner.baseline.Runner.certs_emitted;
      check_measurement "seq original" a.Runner.original;
      check_measurement "seq baseline" a.Runner.baseline;
      check_measurement "par baseline" b.Runner.baseline;
      List.iter (fun (_, m) -> check_measurement "seq technique" m) a.Runner.techniques;
      List.iter (fun (_, m) -> check_measurement "par technique" m) b.Runner.techniques)
    seq par

let suite =
  [
    ("q exactness", `Quick, test_q_exactness);
    ("q subnormals", `Quick, test_q_subnormals);
    ("q signs and compare", `Quick, test_q_signs_and_compare);
    ("q non-finite", `Quick, test_q_non_finite);
    ("q to_string", `Quick, test_q_to_string);
    ("check_dual hand-built", `Quick, test_check_dual_hand_built);
    ("check_dual wrong sign", `Quick, test_check_dual_wrong_sign);
    ("implied_bound infinite escape", `Quick, test_implied_bound_infinite_escape);
    ("check_farkas hand-built", `Quick, test_check_farkas_hand_built);
    ("golden run certifies", `Quick, test_golden_run_certifies);
    ("artifact round trip", `Quick, test_artifact_round_trip);
    ("every leaf mutation rejected", `Quick, test_every_leaf_mutation_rejected);
    ("bit flip rejected", `Quick, test_bit_flip_rejected);
    ("deleted leaf rejected", `Quick, test_deleted_leaf_rejected);
    ("re-keyed leaves rejected", `Quick, test_rekeyed_leaves_rejected);
    ("transplanted artifact rejected", `Quick, test_transplanted_artifact_rejected);
    ("transplanted evidence rejected", `Quick, test_transplanted_evidence_rejected);
    ("parallel certified runs", `Quick, test_parallel_certified_runs);
  ]
