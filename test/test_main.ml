let () =
  Alcotest.run "ivan"
    [
      ("tensor", Test_tensor.suite);
      ("lp", Test_lp.suite);
      ("nn", Test_nn.suite);
      ("spec", Test_spec.suite);
      ("train", Test_train.suite);
      ("data", Test_data.suite);
      ("domains", Test_domains.suite);
      ("analyzer", Test_analyzer.suite);
      ("spectree", Test_spectree.suite);
      ("cert", Test_cert.suite);
      ("bab", Test_bab.suite);
      ("engine", Test_engine.suite);
      ("resilience", Test_resilience.suite);
      ("journal", Test_journal.suite);
      ("fuzz", Test_fuzz.suite);
      ("core", Test_core.suite);
      ("harness", Test_harness.suite);
      ("leaky", Test_leaky.suite);
      ("smooth", Test_smooth.suite);
      ("integration", Test_integration.suite);
    ]
