(* Fuzz properties: every textual parser in the trust path must reject
   arbitrary and mutated input with its documented typed error —
   [Failure] for the parsers, [Error] for [Engine.restore] /
   [resume_journal] — and never let [Invalid_argument], [Not_found],
   out-of-bounds or an allocation blow-up escape. *)

module Journal = Ivan_resilience.Journal
module Engine = Ivan_bab.Engine
module Heuristic = Ivan_bab.Heuristic
module Analyzer = Ivan_analyzer.Analyzer
module Serialize = Ivan_nn.Serialize
module Vnnlib = Ivan_spec.Vnnlib
module Cert = Ivan_cert.Cert

(* A mutation of a valid base document: truncate, flip a byte, delete a
   slice, duplicate a slice, or splice in noise — the shapes a crash,
   a bad disk or a hostile editor actually produces. *)
let mutant base =
  let open QCheck.Gen in
  let n = String.length base in
  let truncate = map (fun k -> String.sub base 0 k) (int_bound n) in
  let flip =
    map2
      (fun pos mask ->
        if n = 0 then base
        else begin
          let b = Bytes.of_string base in
          let pos = pos mod n in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + mask)));
          Bytes.to_string b
        end)
      (int_bound (max 0 (n - 1)))
      (int_bound 254)
  in
  let delete =
    map2
      (fun pos len ->
        if n = 0 then base
        else begin
          let pos = pos mod n in
          let len = min len (n - pos) in
          String.sub base 0 pos ^ String.sub base (pos + len) (n - pos - len)
        end)
      (int_bound (max 0 (n - 1)))
      (int_bound 40)
  in
  let duplicate =
    map2
      (fun pos len ->
        if n = 0 then base
        else begin
          let pos = pos mod n in
          let len = min len (n - pos) in
          String.sub base 0 (pos + len) ^ String.sub base pos (n - pos)
        end)
      (int_bound (max 0 (n - 1)))
      (int_bound 40)
  in
  let splice =
    map2
      (fun pos noise ->
        let pos = if n = 0 then 0 else pos mod n in
        String.sub base 0 pos ^ noise ^ String.sub base pos (n - pos))
      (int_bound (max 0 (n - 1)))
      (string_size ~gen:printable (int_bound 30))
  in
  frequency [ (2, truncate); (3, flip); (2, delete); (1, duplicate); (2, splice) ]

let arbitrary_doc base =
  QCheck.make ~print:String.escaped
    (QCheck.Gen.frequency
       [
         (4, mutant base);
         (1, QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.int_bound 200));
       ])

(* Accept a normal result or [Failure]; anything else is the bug. *)
let total_modulo_failure parse input =
  match parse input with _ -> true | exception Failure _ -> true

let fuzz ~name ?(count = 300) base parse =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count (arbitrary_doc base) (total_modulo_failure parse))

(* --- base documents -------------------------------------------------- *)

let net () = Fixtures.paper_net ()
let prop () = Fixtures.paper_prop_with_offset 1.7

let net_doc = lazy (Serialize.to_string (net ()))

let vnnlib_doc =
  lazy
    ("; fuzz base\n"
    ^ "(declare-const X_0 Real)\n(declare-const X_1 Real)\n"
    ^ "(declare-const Y_0 Real)\n"
    ^ "(assert (>= X_0 0.0))\n(assert (<= X_0 1.0))\n"
    ^ "(assert (>= X_1 0.0))\n(assert (<= X_1 1.0))\n"
    ^ "(assert (>= (* -1.0 Y_0) 1.7))\n")

let checkpoint_doc =
  lazy
    (let engine =
       Engine.create
         ~analyzer:(Analyzer.zonotope ())
         ~heuristic:Heuristic.input_smear ~net:(net ()) ~prop:(prop ()) ()
     in
     for _ = 1 to 3 do
       ignore (Engine.step engine)
     done;
     Engine.checkpoint engine)

let artifact_doc =
  lazy
    (let run =
       Engine.run
         (Engine.create
            ~analyzer:(Analyzer.lp_triangle ~warm:false ~certify:true ())
            ~heuristic:Heuristic.zono_coeff ~certify:true ~net:(net ())
            ~prop:(prop ()) ())
     in
     match run.Engine.artifact with
     | Some a -> Cert.Artifact.to_string a
     | None -> Alcotest.fail "certified run produced no artifact")

let journal_doc =
  lazy
    (let buf = Buffer.create 2048 in
     let journal = Journal.to_buffer buf in
     let engine =
       Engine.create
         ~analyzer:(Analyzer.zonotope ())
         ~heuristic:Heuristic.input_smear ~journal ~journal_every:2 ~net:(net ())
         ~prop:(prop ()) ()
     in
     ignore (Engine.run engine);
     Journal.close journal;
     Buffer.contents buf)

(* --- properties ------------------------------------------------------ *)

let serialize_fuzz () = fuzz ~name:"Serialize.of_string" (Lazy.force net_doc) Serialize.of_string

let vnnlib_fuzz () =
  fuzz ~name:"Vnnlib.parse" (Lazy.force vnnlib_doc) (Vnnlib.parse ~name:"fuzz")

let artifact_fuzz () =
  fuzz ~name:"Cert.Artifact.of_string" ~count:150 (Lazy.force artifact_doc)
    Cert.Artifact.of_string

let restore_fuzz () =
  fuzz ~name:"Engine.restore" ~count:150 (Lazy.force checkpoint_doc) (fun doc ->
      (* restore is total by contract: Ok or Error, no exception at all. *)
      match
        Engine.restore
          ~analyzer:(Analyzer.zonotope ())
          ~heuristic:Heuristic.input_smear ~net:(net ()) ~prop:(prop ()) doc
      with
      | Ok _ | Error _ -> ())

let resume_fuzz () =
  fuzz ~name:"Engine.resume_journal" ~count:150 (Lazy.force journal_doc) (fun bytes ->
      match
        Engine.resume_journal
          ~analyzer:(Analyzer.zonotope ())
          ~heuristic:Heuristic.input_smear ~net:(net ()) ~prop:(prop ()) bytes
      with
      | Ok _ | Error _ -> ())

let scan_total =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Journal.scan accounts for every byte" ~count:500
       QCheck.(string_gen Gen.char)
       (fun s ->
         let r = Journal.scan s in
         r.Journal.valid_bytes + r.Journal.dropped_bytes = String.length s))

let suite =
  [
    serialize_fuzz ();
    vnnlib_fuzz ();
    artifact_fuzz ();
    restore_fuzz ();
    resume_fuzz ();
    scan_total;
  ]
