(* Tests for the BaB verifier: completeness on small instances,
   counterexample validity, budgets, tree/stat accounting, reuse of an
   initial tree. *)

module Vec = Ivan_tensor.Vec
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Tree = Ivan_spectree.Tree

let lp = Analyzer.lp_triangle ()

let verify ?budget ?initial_tree ?(heuristic = Heuristic.zono_coeff) ?(analyzer = lp) net prop =
  Bab.verify ~analyzer ~heuristic ?budget ?initial_tree ~net ~prop ()

let test_easy_proved () =
  let run = verify (Fixtures.paper_net ()) (Fixtures.paper_prop ()) in
  Alcotest.(check bool) "proved" true (run.Bab.verdict = Bab.Proved);
  Alcotest.(check int) "single analyzer call" 1 run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "tree stays trivial" 1 run.Bab.stats.Bab.tree_size

let test_hard_proved_with_branching () =
  (* offset 1.6 > 1.5: true but tight, forcing branching. *)
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let run = verify net prop in
  Alcotest.(check bool) "proved" true (run.Bab.verdict = Bab.Proved);
  Alcotest.(check bool) "needed branching" true (run.Bab.stats.Bab.branchings >= 1);
  (* Theorem 1 accounting for a from-scratch proof: every node of the
     final tree was bounded exactly once. *)
  Alcotest.(check int) "calls = nodes" run.Bab.stats.Bab.tree_size run.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "size = 2*branchings + 1"
    ((2 * run.Bab.stats.Bab.branchings) + 1)
    run.Bab.stats.Bab.tree_size

let test_false_disproved () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.4 in
  let run = verify net prop in
  match run.Bab.verdict with
  | Bab.Disproved x ->
      Alcotest.(check bool) "genuine CE" true (Analyzer.check_concrete net ~prop x)
  | Bab.Proved -> Alcotest.fail "disproved property reported Proved"
  | Bab.Exhausted -> Alcotest.fail "budget exhausted on tiny instance"

let test_budget_exhaustion () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let budget = { Bab.max_analyzer_calls = 1; max_seconds = infinity } in
  let run = verify ~budget net prop in
  Alcotest.(check bool) "exhausted" true (run.Bab.verdict = Bab.Exhausted)

let test_lbs_recorded () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let run = verify net prop in
  Tree.iter_nodes run.Bab.tree (fun n ->
      Alcotest.(check bool) "lb recorded" true (not (Float.is_nan (Tree.lb n))))

let test_initial_tree_reuse () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let first = verify net prop in
  Alcotest.(check bool) "first proved" true (first.Bab.verdict = Bab.Proved);
  (* Re-verify the same network starting from the final tree: only the
     leaves get analyzer calls (Theorem 5 / 6 situation). *)
  let second = verify ~initial_tree:first.Bab.tree net prop in
  Alcotest.(check bool) "second proved" true (second.Bab.verdict = Bab.Proved);
  Alcotest.(check int) "calls = leaves of reused tree"
    first.Bab.stats.Bab.tree_leaves second.Bab.stats.Bab.analyzer_calls;
  Alcotest.(check int) "no new branching" 0 second.Bab.stats.Bab.branchings;
  (* The original tree was not mutated. *)
  Alcotest.(check int) "original intact" first.Bab.stats.Bab.tree_size (Tree.size first.Bab.tree)

let test_input_splitting_mode () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let run = verify ~analyzer:(Analyzer.zonotope ()) ~heuristic:Heuristic.input_smear net prop in
  Alcotest.(check bool) "proved with input splitting" true (run.Bab.verdict = Bab.Proved);
  (* All decisions in the tree are input splits. *)
  Tree.iter_nodes run.Bab.tree (fun n ->
      match Tree.decision n with
      | Some (Ivan_spectree.Decision.Input_split _) | None -> ()
      | Some (Ivan_spectree.Decision.Relu_split _) -> Alcotest.fail "unexpected relu split")

let test_heuristics_all_complete () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  List.iter
    (fun h ->
      let run = verify ~heuristic:h net prop in
      Alcotest.(check bool) (h.Heuristic.name ^ " proves") true (run.Bab.verdict = Bab.Proved))
    [ Heuristic.zono_coeff; Heuristic.width; Heuristic.random ~seed:3 ]

let test_dimension_mismatch () =
  let net = Fixtures.paper_net () in
  let input = Box.make ~lo:(Vec.zeros 3) ~hi:(Vec.create 3 1.0) in
  let prop = Prop.make ~name:"bad" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset:0.0 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bab.verify: property dimension does not match the network") (fun () ->
      ignore (verify net prop))

(* Completeness sweep: for offsets straddling the exact minimum (-1.5),
   BaB must prove exactly those with offset > 1.5 and disprove those
   with offset < 1.5. *)
let test_decision_boundary () =
  let net = Fixtures.paper_net () in
  List.iter
    (fun offset ->
      let prop = Fixtures.paper_prop_with_offset offset in
      let run = verify net prop in
      if offset > 1.5 then
        Alcotest.(check bool) (Printf.sprintf "offset %g proved" offset) true (run.Bab.verdict = Bab.Proved)
      else
        match run.Bab.verdict with
        | Bab.Disproved _ -> ()
        | Bab.Proved -> Alcotest.failf "offset %g wrongly proved" offset
        | Bab.Exhausted -> Alcotest.failf "offset %g exhausted" offset)
    [ 1.3; 1.45; 1.55; 1.7; 2.0 ]

let prop_bab_sound_random =
  QCheck.Test.make ~name:"bab verdicts sound on random nets" ~count:10
    QCheck.(make QCheck.Gen.(pair (int_range 1 100_000) (float_range (-1.0) 1.0)))
    (fun (seed, offset) ->
      let net = Fixtures.random_net ~seed ~dims:[ 2; 4; 3; 1 ] in
      let input = Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0) in
      let prop = Prop.make ~name:"q" ~input ~c:(Vec.of_list [ 1.0 ]) ~offset in
      let budget = { Bab.max_analyzer_calls = 300; max_seconds = infinity } in
      let run =
        Bab.verify ~analyzer:lp ~heuristic:Heuristic.zono_coeff ~budget ~net ~prop ()
      in
      match run.Bab.verdict with
      | Bab.Proved -> Fixtures.approx_min_margin ~seed net prop >= -1e-6
      | Bab.Disproved x -> Analyzer.check_concrete net ~prop x
      | Bab.Exhausted -> true)



(* Golden warm-vs-cold run: LP warm starting is a pure solver-level
   optimization, so a branching verification must produce the identical
   verdict, tree, node count and per-node lower bounds either way — only
   the warm-start counters may differ. *)
let test_warm_cold_identical () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  let cold = verify ~analyzer:(Analyzer.lp_triangle ~warm:false ()) net prop in
  let warm = verify ~analyzer:(Analyzer.lp_triangle ~warm:true ()) net prop in
  Alcotest.(check bool) "branching exercised" true (cold.Bab.stats.Bab.branchings >= 1);
  Alcotest.(check bool) "same verdict" true (cold.Bab.verdict = warm.Bab.verdict);
  Alcotest.(check int) "same tree size" cold.Bab.stats.Bab.tree_size warm.Bab.stats.Bab.tree_size;
  Alcotest.(check int) "same analyzer calls" cold.Bab.stats.Bab.analyzer_calls
    warm.Bab.stats.Bab.analyzer_calls;
  let lbs run =
    let acc = ref [] in
    Tree.iter_nodes run.Bab.tree (fun n -> acc := Tree.lb n :: !acc);
    List.rev !acc
  in
  List.iter2
    (fun a b -> Alcotest.(check (float 1e-6)) "node lb identical" a b)
    (lbs cold) (lbs warm);
  Alcotest.(check int) "cold run never warm-starts" 0
    (cold.Bab.stats.Bab.lp_warm_hits + cold.Bab.stats.Bab.lp_warm_misses);
  Alcotest.(check bool) "warm run attempts warm starts" true
    (warm.Bab.stats.Bab.lp_warm_hits + warm.Bab.stats.Bab.lp_warm_misses >= 1);
  Alcotest.(check bool) "warm run achieves warm hits" true
    (warm.Bab.stats.Bab.lp_warm_hits >= 1)

let test_time_budget_exhaustion () =
  let net = Fixtures.paper_net () in
  let prop = Fixtures.paper_prop_with_offset 1.6 in
  (* A zero wall-clock budget: the first budget check fires before any
     analyzer call completes a proof. *)
  let budget = { Bab.max_analyzer_calls = 1000; max_seconds = 0.0 } in
  let run = verify ~budget net prop in
  Alcotest.(check bool) "exhausted by time" true (run.Bab.verdict = Bab.Exhausted)

let test_heuristic_best_deterministic () =
  let d1 = Ivan_spectree.Decision.Relu_split (Ivan_nn.Relu_id.make ~layer:0 ~index:0) in
  let d2 = Ivan_spectree.Decision.Relu_split (Ivan_nn.Relu_id.make ~layer:0 ~index:1) in
  (* Ties break toward the smaller decision, independent of list order. *)
  Alcotest.(check bool) "tie order 1" true
    (Heuristic.best [ (d1, 1.0); (d2, 1.0) ] = Some d1);
  Alcotest.(check bool) "tie order 2" true
    (Heuristic.best [ (d2, 1.0); (d1, 1.0) ] = Some d1);
  Alcotest.(check bool) "empty" true (Heuristic.best [] = None);
  Alcotest.(check bool) "max wins" true (Heuristic.best [ (d1, 0.5); (d2, 2.0) ] = Some d2)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("easy proved", `Quick, test_easy_proved);
    ("hard proved with branching", `Quick, test_hard_proved_with_branching);
    ("false disproved", `Quick, test_false_disproved);
    ("budget exhaustion", `Quick, test_budget_exhaustion);
    ("lbs recorded", `Quick, test_lbs_recorded);
    ("initial tree reuse", `Quick, test_initial_tree_reuse);
    ("input splitting mode", `Quick, test_input_splitting_mode);
    ("heuristics all complete", `Quick, test_heuristics_all_complete);
    ("dimension mismatch", `Quick, test_dimension_mismatch);
    ("decision boundary", `Quick, test_decision_boundary);
    q prop_bab_sound_random;
    ("warm and cold runs identical", `Quick, test_warm_cold_identical);
    ("time budget exhaustion", `Quick, test_time_budget_exhaustion);
    ("heuristic best deterministic", `Quick, test_heuristic_best_deterministic);
  ]
