(* End-to-end integration tests: trained models through the full
   verification and incremental-verification pipeline, and the
   experiment drivers producing their reports. *)

module Vec = Ivan_tensor.Vec
module Rng = Ivan_tensor.Rng
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Ivan = Ivan_core.Ivan
module Zoo = Ivan_data.Zoo
module Acas = Ivan_data.Acas
module Workload = Ivan_harness.Workload
module Runner = Ivan_harness.Runner
module Report = Ivan_harness.Report
module Experiments = Ivan_harness.Experiments

let fcn = lazy (Zoo.train Zoo.fcn_mnist)

(* A trained classifier's robustness instances go through BaB with the
   LP analyzer; verdicts must be concretely sound. *)
let test_classifier_pipeline_sound () =
  let net = Lazy.force fcn in
  let instances = Workload.robustness_instances ~spec:Zoo.fcn_mnist ~net ~count:6 in
  let analyzer = Analyzer.lp_triangle () in
  let budget = { Bab.max_analyzer_calls = 200; max_seconds = 20.0 } in
  List.iter
    (fun (inst : Workload.instance) ->
      let prop = inst.Workload.prop in
      let run = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~budget ~net ~prop () in
      match run.Bab.verdict with
      | Bab.Proved ->
          (* Adversarial probing must not find a violation. *)
          let rng = Rng.create (1000 + inst.Workload.id) in
          for _ = 1 to 300 do
            let x = Ivan_spec.Box.sample ~rng prop.Ivan_spec.Prop.input in
            Alcotest.(check bool) "no violation inside proved ball" true
              (Ivan_spec.Prop.holds_at prop (Network.forward net x))
          done
      | Bab.Disproved x ->
          Alcotest.(check bool) "genuine adversarial example" true
            (Analyzer.check_concrete net ~prop x)
      | Bab.Exhausted -> ())
    instances

(* Incremental verification after quantization agrees with the baseline
   verdict on every solved instance, for every technique. *)
let test_incremental_agrees_after_quantization () =
  let net = Lazy.force fcn in
  let updated = Quant.network Quant.Int8 net in
  let setting =
    Runner.classifier_setting ~budget:{ Bab.max_analyzer_calls = 200; max_seconds = 20.0 } ()
  in
  let instances = Workload.robustness_instances ~spec:Zoo.fcn_mnist ~net ~count:6 in
  let comparisons =
    Runner.run_all setting ~net ~updated
      ~techniques:[ Ivan.Reuse; Ivan.Reorder; Ivan.Full ]
      ~alpha:0.25 ~theta:0.01 instances
  in
  List.iter
    (fun (c : Runner.comparison) ->
      List.iter
        (fun (technique, (m : Runner.measurement)) ->
          match (c.Runner.baseline.Runner.verdict, m.Runner.verdict) with
          | Bab.Proved, Bab.Disproved _ | Bab.Disproved _, Bab.Proved ->
              Alcotest.failf "technique %s disagrees with the baseline verdict"
                (Ivan.technique_name technique)
          | _, _ -> ())
        c.Runner.techniques)
    comparisons

(* The reuse bound: re-verifying the *same* network touches exactly the
   leaves of the proof tree (Theorem 6's optimal case), on a real
   trained model. *)
let test_reuse_bound_on_trained_model () =
  let net = Lazy.force fcn in
  let setting =
    Runner.classifier_setting ~budget:{ Bab.max_analyzer_calls = 200; max_seconds = 20.0 } ()
  in
  let instances = Workload.robustness_instances ~spec:Zoo.fcn_mnist ~net ~count:4 in
  List.iter
    (fun (inst : Workload.instance) ->
      let prop = inst.Workload.prop in
      let original =
        Bab.verify ~analyzer:setting.Runner.analyzer ~heuristic:setting.Runner.heuristic
          ~budget:setting.Runner.budget ~net ~prop ()
      in
      if original.Bab.verdict = Bab.Proved then begin
        let rerun =
          Ivan.verify_updated ~analyzer:setting.Runner.analyzer
            ~heuristic:setting.Runner.heuristic
            ~config:
              { Ivan.default_config with technique = Ivan.Reuse; budget = setting.Runner.budget }
            ~original_run:original ~updated:net ~prop
        in
        Alcotest.(check int) "calls = leaves" original.Bab.stats.Bab.tree_leaves
          rerun.Bab.stats.Bab.analyzer_calls
      end)
    instances

(* ACAS pipeline: a (quickly) trained surrogate with input splitting. *)
let test_acas_pipeline () =
  let rng = Rng.create 55 in
  let net = Acas.train ~rng ~epochs:8 ~samples:600 () in
  let props = Acas.properties ~net ~margin:0.4 ~rng:(Rng.create 66) in
  let analyzer = Analyzer.zonotope () in
  let budget = { Bab.max_analyzer_calls = 1000; max_seconds = 30.0 } in
  List.iter
    (fun prop ->
      let run = Bab.verify ~analyzer ~heuristic:Heuristic.input_smear ~budget ~net ~prop () in
      match run.Bab.verdict with
      | Bab.Proved ->
          let sample_rng = Rng.create 77 in
          for _ = 1 to 200 do
            let x = Ivan_spec.Box.sample ~rng:sample_rng prop.Ivan_spec.Prop.input in
            Alcotest.(check bool) "global property holds at samples" true
              (Ivan_spec.Prop.holds_at prop (Network.forward net x))
          done
      | Bab.Disproved x ->
          Alcotest.(check bool) "genuine violation" true (Analyzer.check_concrete net ~prop x)
      | Bab.Exhausted -> ())
    props

(* The experiment drivers run end to end at a micro scale and print
   non-empty reports. *)
let test_experiment_drivers () =
  let scale =
    {
      Experiments.quick with
      Experiments.classifier_instances = 2;
      sweep_instances = 2;
      perturb_instances = 1;
    }
  in
  let dir = Filename.temp_file "ivan_exp" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let ctx = Experiments.create ~cache_dir:dir scale in
      let render f =
        let buf = Buffer.create 1024 in
        let fmt = Format.formatter_of_buffer buf in
        f ctx fmt;
        Format.pp_print_flush fmt ();
        Buffer.contents buf
      in
      let contains haystack needle =
        let n = String.length needle and h = String.length haystack in
        let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
        go 0
      in
      (* Only the fcn-mnist-backed drivers, to keep the test fast. *)
      let t1 = render Experiments.fig6 in
      Alcotest.(check bool) "fig6 mentions overall speedup" true (contains t1 "overall:");
      let t2 = render Experiments.fig8 in
      Alcotest.(check bool) "fig8 has grids" true (contains t2 "theta"))

let suite =
  [
    ("classifier pipeline sound", `Slow, test_classifier_pipeline_sound);
    ("incremental agrees after quantization", `Slow, test_incremental_agrees_after_quantization);
    ("reuse bound on trained model", `Slow, test_reuse_bound_on_trained_model);
    ("acas pipeline", `Slow, test_acas_pipeline);
    ("experiment drivers", `Slow, test_experiment_drivers);
  ]
