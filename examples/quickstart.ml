(* Quickstart: the paper's running example, end to end.

   Builds the Figure-2 network N, verifies a property with BaB while
   recording the specification tree, perturbs the network to N^a, and
   re-verifies incrementally — printing the trees and cost savings.

   Run with:  dune exec examples/quickstart.exe *)

module Vec = Ivan_tensor.Vec
module Mat = Ivan_tensor.Mat
module Rng = Ivan_tensor.Rng
module Layer = Ivan_nn.Layer
module Network = Ivan_nn.Network
module Quant = Ivan_nn.Quant
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop
module Analyzer = Ivan_analyzer.Analyzer
module Heuristic = Ivan_bab.Heuristic
module Bab = Ivan_bab.Bab
module Frontier = Ivan_bab.Frontier
module Trace = Ivan_bab.Trace
module Tree = Ivan_spectree.Tree
module Ivan = Ivan_core.Ivan

let dense ?(activation = Layer.Relu) weights bias =
  Layer.make (Layer.Dense { weights = Mat.of_arrays weights; bias }) activation

(* The paper's Figure-2 network: 2 inputs, two hidden ReLU layers of
   width 2, one output. *)
let network =
  Network.make
    [
      dense [| [| 2.0; -1.0 |]; [| 1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense [| [| 1.0; -2.0 |]; [| -1.0; 1.0 |] |] [| 0.0; 0.0 |];
      dense ~activation:Layer.Identity [| [| 1.0; -1.0 |] |] [| 0.0 |];
    ]

(* phi = [0,1]^2; psi = (o1 + 1.6 >= 0).  The true minimum of o1 on the
   box is -1.5, so the property holds but needs branching to prove —
   like the paper's (o1 + 14 >= 0), only tight enough to be
   interesting. *)
let prop =
  Prop.make ~name:"quickstart"
    ~input:(Box.make ~lo:(Vec.zeros 2) ~hi:(Vec.create 2 1.0))
    ~c:(Vec.of_list [ 1.0 ]) ~offset:1.6

let describe name (run : Bab.run) =
  let verdict =
    match run.Bab.verdict with
    | Bab.Proved -> "VERIFIED"
    | Bab.Disproved _ -> "COUNTEREXAMPLE"
    | Bab.Exhausted -> "UNKNOWN (budget)"
  in
  Format.printf "@.%s: %s after %d analyzer calls, %d branchings@." name verdict
    run.Bab.stats.Bab.analyzer_calls run.Bab.stats.Bab.branchings;
  Format.printf "specification tree (%d nodes, %d leaves):@.%a" run.Bab.stats.Bab.tree_size
    run.Bab.stats.Bab.tree_leaves Tree.pp run.Bab.tree

let () =
  Format.printf "network:@.%a@." Network.pp_summary network;
  Format.printf "property: %a@." Prop.pp prop;

  (* Step 1: verify N from scratch with the LP analyzer and the
     zonotope-coefficient branching heuristic.  A ring-buffer trace sink
     keeps the last engine events so we can show what the verifier did. *)
  let analyzer = Analyzer.lp_triangle () in
  let ring = Trace.ring ~capacity:8 in
  let original =
    Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~trace:ring ~net:network ~prop ()
  in
  describe "original network" original;
  Format.printf "engine stats: analyzer %.1f%% of %.4fs, frontier peak %d, max depth %d@."
    (if original.Bab.stats.Bab.elapsed_seconds > 0.0 then
       100.0 *. original.Bab.stats.Bab.analyzer_seconds
       /. original.Bab.stats.Bab.elapsed_seconds
     else 0.0)
    original.Bab.stats.Bab.elapsed_seconds original.Bab.stats.Bab.max_frontier
    original.Bab.stats.Bab.max_depth;
  Format.printf "last engine events:@.";
  List.iter
    (fun e -> Format.printf "  %s@." (Trace.event_to_json e))
    (Trace.ring_contents ring);

  (* The frontier is pluggable: the same problem under each exploration
     order.  All three prove the property; the traversal differs. *)
  Format.printf "@.frontier strategies on the same problem:@.";
  List.iter
    (fun strategy ->
      let run = Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~strategy ~net:network ~prop () in
      Format.printf "  %-5s %d analyzer calls, frontier peak %d, max depth %d@."
        (Frontier.strategy_name strategy)
        run.Bab.stats.Bab.analyzer_calls run.Bab.stats.Bab.max_frontier
        run.Bab.stats.Bab.max_depth)
    Frontier.all_strategies;

  (* Step 2: update the network (int8 post-training quantization). *)
  let updated = Quant.network Quant.Int8 network in
  Format.printf "@.update: int8 quantization of every weight tensor@.";

  (* Step 3a: the baseline re-verifies from scratch... *)
  let baseline =
    Bab.verify ~analyzer ~heuristic:Heuristic.zono_coeff ~net:updated ~prop ()
  in
  describe "updated network, from scratch" baseline;

  (* Step 3b: ...IVAN reuses the pruned proof tree and the reordered
     heuristic. *)
  let incremental =
    Ivan.verify_updated ~analyzer ~heuristic:Heuristic.zono_coeff ~config:Ivan.default_config
      ~original_run:original ~updated ~prop
  in
  describe "updated network, incremental (IVAN)" incremental;

  let speedup =
    float_of_int baseline.Bab.stats.Bab.analyzer_calls
    /. float_of_int incremental.Bab.stats.Bab.analyzer_calls
  in
  Format.printf "@.analyzer-call speedup of IVAN over the baseline: %.2fx@." speedup
