(* Microprofiler: per-call cost of the bound engines and the LP analyzer
   on a zoo model.  A development tool, handy when tuning the domains.

   Usage:  dune exec bin/profile.exe <model-name>  *)

module Zoo = Ivan_data.Zoo
module Splits = Ivan_domains.Splits
module Deeppoly = Ivan_domains.Deeppoly
module Zonotope = Ivan_domains.Zonotope
module Analyzer = Ivan_analyzer.Analyzer
module Box = Ivan_spec.Box
module Prop = Ivan_spec.Prop

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "fcn-mnist" in
  let spec = Zoo.find name in
  let net = Zoo.load_or_train spec in
  let inputs, labels = Zoo.test_set spec in
  let prop =
    Prop.robustness ~name:"profile" ~center:inputs.(0) ~eps:spec.Zoo.eps ~target:labels.(0)
      ~adversary:((labels.(0) + 1) mod 10)
      ~num_outputs:10 ~clip:(Some (0.0, 1.0))
  in
  let box = prop.Prop.input in
  let time name n f =
    let (), seconds =
      Ivan_harness.Clock.timed (fun () ->
          for _ = 1 to n do
            ignore (f ())
          done)
    in
    Printf.printf "%-14s %7.2f ms/call\n%!" name (seconds /. float_of_int n *. 1000.0)
  in
  time "deeppoly" 20 (fun () -> Deeppoly.analyze net ~box ~splits:Splits.empty);
  time "zonotope" 20 (fun () -> Zonotope.analyze net ~box ~splits:Splits.empty);
  let lp = Analyzer.lp_triangle ~deeppoly_shortcut:false () in
  time "lp-analyzer" 5 (fun () -> lp.Analyzer.run net ~prop ~box ~splits:Splits.empty)
